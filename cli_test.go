package memotable_test

// os/exec table tests for the three commands: every failure mode must
// print to stderr and exit with its documented code — usage errors 2,
// I/O failures 1, corrupt traces 3 (tracereplay), and partial results 2
// (memosim -keep-going). The binaries are built once per test run from
// the checked-out tree, so these tests exercise exactly the shipped
// main packages, flag parsing included.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	cliBuildOnce sync.Once
	cliBinDir    string
	cliBuildErr  error
)

// cliBin builds (once) and returns the path of a command's binary.
func cliBin(t *testing.T, name string) string {
	t.Helper()
	cliBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "memotable-cli-*")
		if err != nil {
			cliBuildErr = err
			return
		}
		cliBinDir = dir
		for _, cmd := range []string{"memosim", "tracecap", "tracereplay"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(dir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				cliBuildErr = err
				t.Logf("go build ./cmd/%s: %s", cmd, out)
				return
			}
		}
	})
	if cliBuildErr != nil {
		t.Fatalf("building commands: %v", cliBuildErr)
	}
	return filepath.Join(cliBinDir, name)
}

// runCLI executes a built command and returns stdout, stderr and the
// exit code (0 when the process succeeded).
func runCLI(t *testing.T, env []string, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// captureTrace writes a small kernel trace with tracecap and returns
// its path.
func captureTrace(t *testing.T, dir, format string) string {
	t.Helper()
	path := filepath.Join(dir, "trace-"+format+".mtrc")
	stdout, stderr, code := runCLI(t, nil, cliBin(t, "tracecap"),
		"-out", path, "-kernel", "TRFD", "-format", format)
	if code != 0 {
		t.Fatalf("tracecap exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "captured ") {
		t.Fatalf("tracecap stdout = %q, want capture summary", stdout)
	}
	return path
}

func TestTracecapCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "t.mtrc")
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr when non-zero
	}{
		{"missing out", []string{"-kernel", "TRFD"}, 2, "need -out"},
		{"app and kernel", []string{"-out", out, "-app", "vspatial", "-kernel", "TRFD"}, 2, "exactly one"},
		{"unknown kernel", []string{"-out", out, "-kernel", "nope"}, 2, "unknown kernel"},
		{"unknown app", []string{"-out", out, "-app", "nope"}, 2, "unknown"},
		{"unknown input", []string{"-out", out, "-app", "vspatial", "-input", "nope"}, 2, "unknown input"},
		{"bad format", []string{"-out", out, "-kernel", "TRFD", "-format", "v9"}, 2, "unknown format"},
		{"compress without v2", []string{"-out", out, "-kernel", "TRFD", "-compress"}, 2, "requires -format v2"},
		{"unwritable out", []string{"-out", filepath.Join(dir, "no-such-dir", "t.mtrc"), "-kernel", "TRFD"}, 1, "no-such-dir"},
		{"ok", []string{"-out", out, "-kernel", "TRFD", "-format", "v2"}, 0, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, nil, cliBin(t, "tracecap"), tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr)
			}
			if tc.wantCode != 0 && !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr, tc.wantErr)
			}
		})
	}
}

func TestTracereplayCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	dir := t.TempDir()

	good := captureTrace(t, dir, "v2")

	garbage := filepath.Join(dir, "garbage.mtrc")
	if err := os.WriteFile(garbage, []byte("this is not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A truncated v2 file: the header survives but the last frame is
	// torn, which the CRC framing must reject.
	truncated := filepath.Join(dir, "truncated.mtrc")
	buf, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncated, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"missing in", nil, 2, "need -in"},
		{"bad policy", []string{"-in", good, "-policy", "nope"}, 2, "unknown policy"},
		{"missing file", []string{"-in", filepath.Join(dir, "absent.mtrc")}, 1, "absent.mtrc"},
		{"garbage input", []string{"-in", garbage}, 3, "corrupt or truncated"},
		{"truncated input", []string{"-in", truncated}, 3, "corrupt or truncated"},
		{"ok", []string{"-in", good}, 0, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, nil, cliBin(t, "tracereplay"), tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.wantCode, stderr)
			}
			if tc.wantCode != 0 && !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr, tc.wantErr)
			}
			if tc.wantCode == 0 && !strings.Contains(stdout, "hit ratio") {
				t.Fatalf("stdout = %q, want hit ratio report", stdout)
			}
		})
	}
}

func TestMemosimCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	bin := cliBin(t, "memosim")
	tracedir := t.TempDir()
	base := []string{"-scale", "tiny", "-tracedir", tracedir, "-run", "table5"}

	t.Run("usage errors", func(t *testing.T) {
		for _, tc := range []struct {
			name    string
			args    []string
			wantErr string
		}{
			{"unknown scale", []string{"-scale", "huge"}, "unknown scale"},
			{"unknown experiment", []string{"-scale", "tiny", "-run", "tableX"}, "unknown experiment"},
			{"bad faults spec", append(base, "-faults", "bogus.point"), "unknown injection point"},
		} {
			stdout, stderr, code := runCLI(t, nil, bin, tc.args...)
			if code != 2 {
				t.Fatalf("%s: exit code = %d, want 2 (stderr: %s)", tc.name, code, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("%s: stderr = %q, want substring %q", tc.name, stderr, tc.wantErr)
			}
			if stdout != "" {
				t.Fatalf("%s: stdout = %q, want empty", tc.name, stdout)
			}
		}
	})

	t.Run("clean run", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, nil, bin, base...)
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(stdout, "(table5)") || strings.Contains(stdout, "errors:") {
			t.Fatalf("stdout = %q, want table5 output without errors section", stdout)
		}
	})

	// A panicking sink fails exactly one workload cell. Without
	// -keep-going that is a hard failure (exit 1, no results); with it,
	// partial results print with an errors section and exit 2.
	faultArgs := append(base, "-faults", "seed=1;engine.sink.emit:count=1:panic")

	t.Run("faulted aborts", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, nil, bin, faultArgs...)
		if code != 1 {
			t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(stderr, "sink panicked") {
			t.Fatalf("stderr = %q, want sink panic report", stderr)
		}
		if strings.Contains(stdout, "(table5)") {
			t.Fatalf("stdout = %q, want no results on hard failure", stdout)
		}
	})

	t.Run("faulted keep-going text", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, nil, bin, append(faultArgs, "-keep-going")...)
		if code != 2 {
			t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(stdout, "errors:") || !strings.Contains(stdout, "[sink]") {
			t.Fatalf("stdout = %q, want rendered errors section", stdout)
		}
		if !strings.Contains(stderr, "sink panicked") {
			t.Fatalf("stderr = %q, want sink panic report", stderr)
		}
	})

	t.Run("faulted keep-going json", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, nil, bin, append(faultArgs, "-keep-going", "-json")...)
		if code != 2 {
			t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(stdout, `"errors"`) || !strings.Contains(stdout, `"stage": "sink"`) {
			t.Fatalf("stdout = %q, want errors array in JSON", stdout)
		}
	})

	// A persistent store across two invocations: the cold run captures
	// and publishes everything; the warm run executes no workload at all
	// and its tables are byte-identical to the cold run's.
	t.Run("warm store", func(t *testing.T) {
		storeArgs := append(base, "-store", t.TempDir())

		cold, stderr, code := runCLI(t, nil, bin, storeArgs...)
		if code != 0 {
			t.Fatalf("cold run exit code = %d, want 0 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(cold, "trace store:") || strings.Contains(cold, "engine: 0 captures") {
			t.Fatalf("cold stdout = %q, want store summary and nonzero captures", cold)
		}

		warm, stderr, code := runCLI(t, nil, bin, storeArgs...)
		if code != 0 {
			t.Fatalf("warm run exit code = %d, want 0 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(warm, "engine: 0 captures") {
			t.Fatalf("warm stdout = %q, want zero captures", warm)
		}
		// Everything above the suite summary — the rendered tables — must
		// not move by a byte between cold and warm.
		tables := func(out string) string { return strings.SplitN(out, "suite:", 2)[0] }
		if tables(cold) != tables(warm) {
			t.Fatalf("warm tables differ from cold\n--- cold ---\n%s\n--- warm ---\n%s",
				tables(cold), tables(warm))
		}
	})

	// The FAULTS environment variable arms injection too (the flag
	// overrides it); an empty -faults flag leaves the env spec active.
	t.Run("faults via env", func(t *testing.T) {
		_, stderr, code := runCLI(t, []string{"FAULTS=seed=1;engine.sink.emit:count=1:panic"}, bin, base...)
		if code != 1 {
			t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
		}
	})
}
