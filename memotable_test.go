package memotable_test

import (
	"bytes"
	"strings"
	"testing"

	"memotable"
	"memotable/internal/isa"
)

func TestFacadeTableAndUnit(t *testing.T) {
	table := memotable.NewTable(memotable.FDiv, memotable.Paper32x4())
	unit := memotable.NewUnit(table, memotable.NonTrivialOnly, nil)
	if res, out := unit.FDiv(10, 4); res != 2.5 || out != memotable.Miss {
		t.Fatalf("first division: %g %v", res, out)
	}
	if res, out := unit.FDiv(10, 4); res != 2.5 || out != memotable.Hit {
		t.Fatalf("second division: %g %v", res, out)
	}
	if _, out := unit.FDiv(10, 1); out != memotable.Trivial {
		t.Fatal("x/1 not detected as trivial")
	}
	if table.Stats().Hits != 1 {
		t.Fatal("stats not visible through the facade")
	}
}

func TestFacadeCaptureReplay(t *testing.T) {
	var buf bytes.Buffer
	n, err := memotable.Capture(&buf, func(p *memotable.Probe) {
		for i := 0; i < 50; i++ {
			p.FDiv(float64(i%5)+1, 2)
			p.IMul(int64(i%3), 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("captured %d events, want 100", n)
	}
	stats, err := memotable.Replay(&buf, memotable.Paper32x4(), memotable.NonTrivialOnly)
	if err != nil {
		t.Fatal(err)
	}
	div := stats[memotable.FDiv]
	if div.Lookups != 50 || div.Hits != 45 {
		t.Fatalf("fdiv stats %+v, want 50 lookups / 45 hits", div)
	}
	imul, ok := stats[memotable.IMul]
	if !ok {
		t.Fatal("imul stats missing")
	}
	// i%3 in {0,1,2}: 0*7 and 1*7 are trivial, only 2*7 reaches the table.
	if imul.Trivial == 0 || imul.Lookups == 0 {
		t.Fatalf("imul stats %+v", imul)
	}
	if _, ok := stats[memotable.FSqrt]; ok {
		t.Fatal("absent class reported")
	}
}

func TestFacadeSharedTable(t *testing.T) {
	sh := memotable.NewShared(memotable.NewTable(memotable.FMul, memotable.Paper32x4()), 2)
	sh.Insert(2, 3, 6)
	if _, hit := sh.Lookup(2, 3); !hit {
		t.Fatal("shared table lost an entry")
	}
}

func TestExperimentsListAndRun(t *testing.T) {
	names := memotable.Experiments()
	if len(names) != 16 {
		t.Fatalf("%d experiments, want 16 (tables 1,5-13, figures 2-4, 3 extensions)", len(names))
	}
	out, err := memotable.RunExperiment("table1", memotable.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Pentium Pro") {
		t.Fatal("table1 output incomplete")
	}
	if _, err := memotable.RunExperiment("table99", memotable.Tiny); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeOpAliases(t *testing.T) {
	if memotable.IMul != isa.OpIMul || memotable.FSqrt != isa.OpFSqrt {
		t.Fatal("op aliases drifted from the ISA definitions")
	}
	if !memotable.FMul.Commutative() || memotable.FDiv.Commutative() {
		t.Fatal("commutativity through the alias is wrong")
	}
}
