package arith

import "math"

// Triviality classifies an operand pair as trivial or not for a given
// operation. The paper (§2.1, §3.2, Table 9) distinguishes "trivial"
// operations — those a small amount of detection logic can answer without
// engaging the multi-cycle unit — from operations that genuinely require
// computation. Trivial operations complete in a few cycles regardless, so
// caching them wastes MEMO-TABLE capacity; detecting them *before* the
// table and returning their result immediately (the "integrated" policy)
// gives the best hit ratios.
type Triviality int

// Triviality values. NonTrivial means the operation must be computed (or
// found in a MEMO-TABLE); every other value names the short-circuit rule
// that applies.
const (
	NonTrivial Triviality = iota
	MulByZero             // x*0 or 0*x = ±0
	MulByOne              // x*1 or 1*x = x
	DivZero               // 0/x = ±0 (x nonzero)
	DivByOne              // x/1 = x
	SqrtZero              // sqrt(±0) = ±0
	SqrtOne               // sqrt(1) = 1
	IMulByZero            // integer x*0
	IMulByOne             // integer x*1
)

// String returns the rule name.
func (t Triviality) String() string {
	switch t {
	case NonTrivial:
		return "non-trivial"
	case MulByZero:
		return "fmul-by-zero"
	case MulByOne:
		return "fmul-by-one"
	case DivZero:
		return "fdiv-zero-dividend"
	case DivByOne:
		return "fdiv-by-one"
	case SqrtZero:
		return "fsqrt-zero"
	case SqrtOne:
		return "fsqrt-one"
	case IMulByZero:
		return "imul-by-zero"
	case IMulByOne:
		return "imul-by-one"
	default:
		return "unknown"
	}
}

// Trivial reports whether t names a trivial operation.
func (t Triviality) Trivial() bool { return t != NonTrivial }

// ClassifyFMul classifies a floating-point multiplication a*b.
// NaN and Inf operands are never trivial: they engage the unit's special
// handling paths rather than the early-out detectors.
func ClassifyFMul(a, b float64) (Triviality, float64) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return NonTrivial, 0
	}
	switch {
	case b == 0:
		return MulByZero, a * b // preserves signed zero
	case a == 0:
		return MulByZero, a * b
	case b == 1:
		return MulByOne, a
	case a == 1:
		return MulByOne, b
	}
	return NonTrivial, 0
}

// ClassifyFDiv classifies a floating-point division a/b.
func ClassifyFDiv(a, b float64) (Triviality, float64) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) || b == 0 {
		return NonTrivial, 0
	}
	switch {
	case a == 0:
		return DivZero, a / b
	case b == 1:
		return DivByOne, a
	}
	return NonTrivial, 0
}

// ClassifyFSqrt classifies a floating-point square root sqrt(a).
func ClassifyFSqrt(a float64) (Triviality, float64) {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return NonTrivial, 0
	}
	switch {
	case a == 0:
		return SqrtZero, a
	case a == 1:
		return SqrtOne, 1
	}
	return NonTrivial, 0
}

// ClassifyIMul classifies an integer multiplication a*b.
func ClassifyIMul(a, b int64) (Triviality, int64) {
	switch {
	case a == 0 || b == 0:
		return IMulByZero, 0
	case b == 1:
		return IMulByOne, a
	case a == 1:
		return IMulByOne, b
	}
	return NonTrivial, 0
}
