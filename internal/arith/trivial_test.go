package arith

import (
	"math"
	"testing"
)

func TestClassifyFMul(t *testing.T) {
	cases := []struct {
		a, b float64
		want Triviality
		res  float64
	}{
		{3, 0, MulByZero, 0},
		{0, 3, MulByZero, 0},
		{-3, 0, MulByZero, math.Copysign(0, -1)},
		{7, 1, MulByOne, 7},
		{1, 7, MulByOne, 7},
		{3, 4, NonTrivial, 0},
		{1.5, 2.5, NonTrivial, 0},
	}
	for _, c := range cases {
		tr, res := ClassifyFMul(c.a, c.b)
		if tr != c.want {
			t.Errorf("ClassifyFMul(%g,%g) = %v, want %v", c.a, c.b, tr, c.want)
		}
		if tr.Trivial() && math.Float64bits(res) != math.Float64bits(c.res) {
			t.Errorf("ClassifyFMul(%g,%g) result = %g, want %g", c.a, c.b, res, c.res)
		}
	}
}

func TestClassifyFMulSpecialsNeverTrivial(t *testing.T) {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, s := range specials {
		for _, o := range []float64{0, 1, 3} {
			if tr, _ := ClassifyFMul(s, o); tr.Trivial() {
				t.Errorf("ClassifyFMul(%g,%g) trivial", s, o)
			}
			if tr, _ := ClassifyFMul(o, s); tr.Trivial() {
				t.Errorf("ClassifyFMul(%g,%g) trivial", o, s)
			}
		}
	}
}

func TestClassifyFDiv(t *testing.T) {
	cases := []struct {
		a, b float64
		want Triviality
	}{
		{0, 3, DivZero},
		{5, 1, DivByOne},
		{5, 2, NonTrivial},
		{5, 0, NonTrivial}, // division by zero engages the exception path
		{0, 0, NonTrivial},
		{1, 3, NonTrivial},
	}
	for _, c := range cases {
		if tr, _ := ClassifyFDiv(c.a, c.b); tr != c.want {
			t.Errorf("ClassifyFDiv(%g,%g) = %v, want %v", c.a, c.b, tr, c.want)
		}
	}
	if tr, res := ClassifyFDiv(42, 1); tr != DivByOne || res != 42 {
		t.Errorf("ClassifyFDiv(42,1) = %v,%g", tr, res)
	}
}

func TestClassifyFSqrt(t *testing.T) {
	if tr, res := ClassifyFSqrt(0); tr != SqrtZero || res != 0 {
		t.Errorf("ClassifyFSqrt(0) = %v,%g", tr, res)
	}
	if tr, res := ClassifyFSqrt(1); tr != SqrtOne || res != 1 {
		t.Errorf("ClassifyFSqrt(1) = %v,%g", tr, res)
	}
	if tr, _ := ClassifyFSqrt(2); tr != NonTrivial {
		t.Errorf("ClassifyFSqrt(2) = %v", tr)
	}
	if tr, _ := ClassifyFSqrt(math.NaN()); tr.Trivial() {
		t.Error("ClassifyFSqrt(NaN) trivial")
	}
}

func TestClassifyIMul(t *testing.T) {
	cases := []struct {
		a, b int64
		want Triviality
		res  int64
	}{
		{0, 9, IMulByZero, 0},
		{9, 0, IMulByZero, 0},
		{1, 9, IMulByOne, 9},
		{9, 1, IMulByOne, 9},
		{3, 9, NonTrivial, 0},
		{-1, 9, NonTrivial, 0}, // -1 is not a paper-trivial operand
	}
	for _, c := range cases {
		tr, res := ClassifyIMul(c.a, c.b)
		if tr != c.want {
			t.Errorf("ClassifyIMul(%d,%d) = %v, want %v", c.a, c.b, tr, c.want)
		}
		if tr.Trivial() && res != c.res {
			t.Errorf("ClassifyIMul(%d,%d) result = %d, want %d", c.a, c.b, res, c.res)
		}
	}
}

func TestTrivialityStrings(t *testing.T) {
	all := []Triviality{NonTrivial, MulByZero, MulByOne, DivZero, DivByOne,
		SqrtZero, SqrtOne, IMulByZero, IMulByOne, Triviality(99)}
	seen := map[string]bool{}
	for _, tr := range all {
		s := tr.String()
		if s == "" {
			t.Errorf("empty String for %d", tr)
		}
		if seen[s] {
			t.Errorf("duplicate String %q", s)
		}
		seen[s] = true
	}
	if NonTrivial.Trivial() {
		t.Error("NonTrivial reports trivial")
	}
	if !MulByOne.Trivial() {
		t.Error("MulByOne not trivial")
	}
}
