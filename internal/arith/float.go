// Package arith provides IEEE-754 double-precision decomposition helpers,
// trivial-operand classification, and bit-exact models of the multi-cycle
// computation units the paper's MEMO-TABLEs shadow: a Booth-recoded integer
// multiplier, a radix-4 SRT divider (with its quotient-selection lookup
// table), and a digit-recurrence square root.
//
// The MEMO-TABLE proposal (Citron, Feitelson, Rudolph; ASPLOS 1998) bypasses
// these units on a tag hit; this package supplies both the unit semantics
// (so bypassed results can be checked bit-for-bit) and the latency models
// used by the cycle simulator.
package arith

import "math"

// IEEE-754 double-precision field widths and masks.
const (
	// MantissaBits is the number of explicitly stored significand bits.
	MantissaBits = 52
	// ExponentBits is the width of the biased exponent field.
	ExponentBits = 11
	// ExponentBias is the bias applied to the stored exponent.
	ExponentBias = 1023
	// ExponentMax is the largest biased exponent (all ones: Inf/NaN).
	ExponentMax = 1<<ExponentBits - 1

	mantissaMask = 1<<MantissaBits - 1
	exponentMask = uint64(ExponentMax) << MantissaBits
	signMask     = uint64(1) << 63

	// HiddenBit is the implicit leading significand bit of a normal number.
	HiddenBit = uint64(1) << MantissaBits
)

// Fields holds the unpacked fields of a double-precision value.
type Fields struct {
	Sign     bool   // true if negative
	Exponent int    // biased exponent as stored (0..2047)
	Mantissa uint64 // 52 stored bits, hidden bit NOT included
}

// Unpack splits x into its IEEE-754 fields.
func Unpack(x float64) Fields {
	b := math.Float64bits(x)
	return Fields{
		Sign:     b&signMask != 0,
		Exponent: int((b & exponentMask) >> MantissaBits),
		Mantissa: b & mantissaMask,
	}
}

// Pack reassembles IEEE-754 fields into a float64. The mantissa is masked to
// its 52-bit field; the exponent is masked to 11 bits.
func Pack(f Fields) float64 {
	var b uint64
	if f.Sign {
		b = signMask
	}
	b |= uint64(f.Exponent&ExponentMax) << MantissaBits
	b |= f.Mantissa & mantissaMask
	return math.Float64frombits(b)
}

// Significand returns the full significand of x including the hidden bit for
// normal numbers (53 bits), or the raw mantissa for subnormals, along with
// the unbiased exponent of the leading stored-bit position. For zero it
// returns (0, 0).
func Significand(x float64) (sig uint64, exp int) {
	f := Unpack(x)
	switch {
	case f.Exponent == 0 && f.Mantissa == 0:
		return 0, 0
	case f.Exponent == 0: // subnormal
		return f.Mantissa, 1 - ExponentBias
	default:
		return f.Mantissa | HiddenBit, f.Exponent - ExponentBias
	}
}

// Mantissa returns the 52 stored mantissa bits of x. This is the quantity a
// mantissa-only MEMO-TABLE tags on (§2.1 of the paper).
func Mantissa(x float64) uint64 {
	return math.Float64bits(x) & mantissaMask
}

// MantissaMSBs returns the n most significant bits of the stored mantissa of
// x. The paper's floating-point index hash XORs these between the two
// operands to form a MEMO-TABLE set index (§3.1).
func MantissaMSBs(x float64, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n > MantissaBits {
		n = MantissaBits
	}
	return Mantissa(x) >> (MantissaBits - n)
}

// IsNaN reports whether the bit pattern b encodes a NaN.
func IsNaN(b uint64) bool {
	return b&exponentMask == exponentMask && b&mantissaMask != 0
}

// IsInf reports whether the bit pattern b encodes ±Inf.
func IsInf(b uint64) bool {
	return b&exponentMask == exponentMask && b&mantissaMask == 0
}

// IsSubnormal reports whether x is subnormal (nonzero with a zero exponent
// field).
func IsSubnormal(x float64) bool {
	f := Unpack(x)
	return f.Exponent == 0 && f.Mantissa != 0
}

// quietNaN is the canonical quiet NaN returned by the arithmetic units.
func quietNaN() float64 {
	return math.Float64frombits(exponentMask | 1<<(MantissaBits-1))
}
