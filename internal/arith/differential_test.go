package arith

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// The differential suite pins every unit model against the host's IEEE-754
// arithmetic over a shared operand corpus: an explicit edge grid (signed
// zeros, infinities, NaN, denormals, exact powers of two, the identity
// operands x*1, x/1, sqrt(1)) crossed with fixed-seed random operands drawn
// both as values and as raw bit patterns (the latter reach NaN payloads,
// denormal ranges and exponent extremes that value-space draws never hit).
//
// Bit-exactness is required everywhere except the one documented
// divergence: any NaN result is returned as the canonical quiet NaN
// (quietNaN()), where the host may propagate an input payload. For NaN
// results the suite therefore asserts NaN-ness and canonical bits instead
// of host bits.

// edgeFloats is the explicit edge grid.
var edgeFloats = []float64{
	0, math.Copysign(0, -1),
	1, -1, 2, -2, 0.5, -0.5,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.Float64frombits(0x000fffffffffffff), // largest subnormal
	math.Float64frombits(0x0010000000000000), // smallest normal
	math.Float64frombits(0x7ff8000000000001), // NaN with payload
	1e308, 1e-308, 3, 10, 1.0 / 3.0, math.Pi,
}

// randomFloats draws n operands per flavour with a fixed seed: raw bit
// patterns, normal-range values, and forced denormals.
func randomFloats(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		out = append(out, math.Float64frombits(rng.Uint64()))
		out = append(out, (rng.Float64()-0.5)*math.Pow(2, float64(rng.Intn(120)-60)))
		out = append(out, math.Float64frombits(rng.Uint64()&0x800fffffffffffff)) // denormal
	}
	return out
}

// checkDiff asserts got matches the host result want, with the canonical
// quiet-NaN divergence applied.
func checkDiff(t *testing.T, opName string, a, b, got, want float64) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Fatalf("%s(%g [%#x], %g [%#x]) = %g, want NaN",
				opName, a, math.Float64bits(a), b, math.Float64bits(b), got)
		}
		if math.Float64bits(got) != math.Float64bits(quietNaN()) {
			t.Fatalf("%s(%g, %g): NaN result %#x is not the canonical quiet NaN %#x",
				opName, a, b, math.Float64bits(got), math.Float64bits(quietNaN()))
		}
		return
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s(%g [%#x], %g [%#x]) = %g [%#x], want %g [%#x]",
			opName, a, math.Float64bits(a), b, math.Float64bits(b),
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestDifferentialMulFloat64(t *testing.T) {
	var m Multiplier
	for _, a := range edgeFloats {
		for _, b := range edgeFloats {
			checkDiff(t, "MulFloat64", a, b, m.MulFloat64(a, b), a*b)
		}
	}
	ops := randomFloats(11, 1500)
	for i := 0; i+1 < len(ops); i += 2 {
		a, b := ops[i], ops[i+1]
		checkDiff(t, "MulFloat64", a, b, m.MulFloat64(a, b), a*b)
		checkDiff(t, "MulFloat64", a, 1, m.MulFloat64(a, 1), a*1) // identity operand
	}
}

func TestDifferentialDivFloat64(t *testing.T) {
	exact := &Divider{}
	table := &Divider{QSel: NewQST()}
	for name, d := range map[string]*Divider{"exact": exact, "qst": table} {
		for _, a := range edgeFloats {
			for _, b := range edgeFloats {
				checkDiff(t, "DivFloat64/"+name, a, b, d.DivFloat64(a, b), a/b)
			}
			// The paper's trivial operands: x/1 must be exact, x/x exactly 1.
			checkDiff(t, "DivFloat64/"+name, a, 1, d.DivFloat64(a, 1), a/1)
			checkDiff(t, "DivFloat64/"+name, a, a, d.DivFloat64(a, a), a/a)
		}
		ops := randomFloats(13, 1200)
		for i := 0; i+1 < len(ops); i += 2 {
			a, b := ops[i], ops[i+1]
			checkDiff(t, "DivFloat64/"+name, a, b, d.DivFloat64(a, b), a/b)
		}
	}
}

func TestDifferentialSqrtFloat64(t *testing.T) {
	var sq Sqrter
	for _, a := range edgeFloats {
		checkDiff(t, "SqrtFloat64", a, 0, sq.SqrtFloat64(a), math.Sqrt(a))
	}
	// sqrt(1) is the unary trivial case; negative operands must yield NaN.
	checkDiff(t, "SqrtFloat64", 1, 0, sq.SqrtFloat64(1), 1)
	checkDiff(t, "SqrtFloat64", -4, 0, sq.SqrtFloat64(-4), math.Sqrt(-4))
	for _, a := range randomFloats(17, 2000) {
		checkDiff(t, "SqrtFloat64", a, 0, sq.SqrtFloat64(a), math.Sqrt(a))
	}
}

func TestDifferentialMulInt64(t *testing.T) {
	var m Multiplier
	edges := []int64{0, 1, -1, 2, -2, 3, -3,
		math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1,
		1 << 31, -(1 << 31), 1 << 62, 0x5555555555555555, -0x5555555555555555}
	rng := rand.New(rand.NewSource(19))
	vals := append([]int64(nil), edges...)
	for i := 0; i < 400; i++ {
		vals = append(vals, int64(rng.Uint64()))
	}
	check := func(a, b int64) {
		hi, lo := m.MulInt64(a, b)
		// Reference full signed product via arbitrary precision.
		got := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		got.Add(got, new(big.Int).SetUint64(lo))
		if hi>>63 == 1 {
			got.Sub(got, new(big.Int).Lsh(big.NewInt(1), 128))
		}
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		if got.Cmp(want) != 0 {
			t.Fatalf("MulInt64(%d, %d) = %s, want %s", a, b, got, want)
		}
	}
	for _, a := range edges {
		for _, b := range edges {
			check(a, b)
		}
	}
	for i := 0; i+1 < len(vals); i += 2 {
		check(vals[i], vals[i+1])
	}
}
