package arith

import "math"

// Sqrter is a bit-exact model of a digit-recurrence (restoring, one result
// bit per iteration) floating-point square-root unit. Square root shares
// datapath structure with SRT division and is the first of the paper's
// "future work" targets for memoization (§4); this repo implements that
// extension end-to-end, so the unit model is needed alongside mul/div.
type Sqrter struct {
	// Steps counts result-bit iterations performed.
	Steps uint64
	// Ops counts square roots performed.
	Ops uint64
}

// sqrtResultBits is the number of result bits developed: 53 significand
// bits plus one guard bit; the remainder supplies an exact sticky.
const sqrtResultBits = 54

// SqrtFloat64 computes the IEEE-754 double-precision square root with
// round-to-nearest-even, bit-exact with the host FPU.
func (sq *Sqrter) SqrtFloat64(a float64) float64 {
	sq.Ops++
	switch {
	case math.IsNaN(a):
		return quietNaN()
	case a == 0:
		return a // preserves -0
	case a < 0:
		return quietNaN()
	case math.IsInf(a, 1):
		return a
	}

	sa, ea := normSignificand(a)
	// |a| = sa * 2^(ea-52), sa in [2^52, 2^53).
	// Choose p so that (ea-52-p) is even and rad = sa<<p is in
	// [2^106, 2^108); then sqrt(a) = isqrt(rad) * 2^((ea-52-p)/2) with
	// isqrt(rad) in [2^53, 2^54).
	p := 54
	if (ea-52-p)&1 != 0 {
		p = 55
	}
	radHi := sa >> uint(64-p)
	radLo := sa << uint(p)

	root, rem := sq.isqrt128(radHi, radLo)
	// root = floor(sqrt(rad)) in [2^53, 2^54): 53 bits + 1 guard bit.
	// sqrt of a non-square is irrational, so floor + sticky suffices for a
	// correct round-to-nearest-even at 53 bits.
	e2 := (ea - 52 - p) / 2
	return composeFromWide(false, 0, root, e2, rem != 0)
}

// isqrt128 computes the integer square root of the 128-bit radicand hi:lo
// by the classic two-bits-per-step restoring recurrence, developing
// sqrtResultBits result bits. It returns floor(sqrt(hi:lo)) for radicands
// of exactly 2*sqrtResultBits significant bits (callers guarantee the
// radicand is in [2^106, 2^108)) together with the final remainder.
func (sq *Sqrter) isqrt128(hi, lo uint64) (root, rem uint64) {
	for i := sqrtResultBits - 1; i >= 0; i-- {
		sq.Steps++
		// Bring down the next two radicand bits (from the top).
		// Radicand bit pairs are aligned, so a pair never straddles the
		// hi/lo word boundary.
		var two uint64
		shift := uint(2 * i)
		if shift >= 64 {
			two = (hi >> (shift - 64)) & 3
		} else {
			two = (lo >> shift) & 3
		}
		rem = rem<<2 | two
		trial := root<<2 | 1 // (2*root + 1) at the current digit weight
		if rem >= trial {
			rem -= trial
			root = root<<1 | 1
		} else {
			root <<= 1
		}
	}
	return root, rem
}

// Latency returns the cycle count of the iterative square root: one cycle
// per result bit plus normalization and rounding stages.
func (sq *Sqrter) Latency() int { return sqrtResultBits + 3 }
