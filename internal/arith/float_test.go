package arith

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnpackPackRoundTrip(t *testing.T) {
	f := func(bits uint64) bool {
		x := math.Float64frombits(bits)
		y := Pack(Unpack(x))
		return math.Float64bits(x) == math.Float64bits(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackKnownValues(t *testing.T) {
	cases := []struct {
		x    float64
		sign bool
		exp  int
		mant uint64
	}{
		{0, false, 0, 0},
		{math.Copysign(0, -1), true, 0, 0},
		{1, false, ExponentBias, 0},
		{2, false, ExponentBias + 1, 0},
		{0.5, false, ExponentBias - 1, 0},
		{-1.5, true, ExponentBias, 1 << (MantissaBits - 1)},
		{math.Inf(1), false, ExponentMax, 0},
		{math.Inf(-1), true, ExponentMax, 0},
	}
	for _, c := range cases {
		f := Unpack(c.x)
		if f.Sign != c.sign || f.Exponent != c.exp || f.Mantissa != c.mant {
			t.Errorf("Unpack(%v) = %+v, want sign=%v exp=%d mant=%#x",
				c.x, f, c.sign, c.exp, c.mant)
		}
	}
}

func TestSignificandReconstructs(t *testing.T) {
	f := func(bits uint64) bool {
		x := math.Float64frombits(bits)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		sig, exp := Significand(x)
		if x == 0 {
			return sig == 0
		}
		got := math.Ldexp(float64(sig), exp-MantissaBits)
		return got == math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormSignificandRange(t *testing.T) {
	f := func(bits uint64) bool {
		x := math.Float64frombits(bits)
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return true
		}
		sig, _ := normSignificand(x)
		return sig >= HiddenBit && sig < 2*HiddenBit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormSignificandSubnormal(t *testing.T) {
	x := math.Float64frombits(1) // smallest positive subnormal = 2^-1074
	sig, e := normSignificand(x)
	if sig != HiddenBit {
		t.Fatalf("sig = %#x, want %#x", sig, HiddenBit)
	}
	if got := math.Ldexp(float64(sig), e-MantissaBits); got != x {
		t.Fatalf("reconstructed %g, want %g", got, x)
	}
}

func TestMantissaMSBs(t *testing.T) {
	x := math.Float64frombits(0xABC << (MantissaBits - 12))
	if got := MantissaMSBs(x, 12); got != 0xABC {
		t.Fatalf("MantissaMSBs = %#x, want 0xABC", got)
	}
	if got := MantissaMSBs(x, 0); got != 0 {
		t.Fatalf("MantissaMSBs(n=0) = %#x, want 0", got)
	}
	if got := MantissaMSBs(x, 64); got != Mantissa(x) {
		t.Fatalf("MantissaMSBs(n=64) = %#x, want full mantissa", got)
	}
}

func TestClassifiers(t *testing.T) {
	if !IsNaN(math.Float64bits(math.NaN())) {
		t.Error("IsNaN(NaN) = false")
	}
	if IsNaN(math.Float64bits(math.Inf(1))) {
		t.Error("IsNaN(Inf) = true")
	}
	if !IsInf(math.Float64bits(math.Inf(-1))) {
		t.Error("IsInf(-Inf) = false")
	}
	if IsInf(math.Float64bits(1.0)) {
		t.Error("IsInf(1) = true")
	}
	if !IsSubnormal(math.Float64frombits(1)) {
		t.Error("IsSubnormal(minSubnormal) = false")
	}
	if IsSubnormal(1.0) || IsSubnormal(0) {
		t.Error("IsSubnormal misclassifies normal/zero")
	}
}

func TestRoundShift64(t *testing.T) {
	cases := []struct {
		q      uint64
		s      uint
		sticky bool
		want   uint64
	}{
		{0b1011, 1, false, 0b110}, // 5.5 -> 6 (tie to even... 1011/2=101.1 tie -> 110)
		{0b1001, 1, false, 0b100}, // 4.5 -> 4 (tie to even)
		{0b1001, 1, true, 0b101},  // 4.5+eps -> 5
		{0b1000, 2, false, 0b10},  // exact
		{0xFF, 4, false, 0x10},    // 15.9375 -> 16
		{1, 64, false, 0},
		{1 << 63, 64, false, 0},   // exactly 1/2 -> 0 (even)
		{1<<63 | 1, 64, false, 1}, // just over 1/2 -> 1
		{1 << 63, 64, true, 1},    // 1/2 + sticky -> 1
		{42, 0, false, 42},        // no shift
		{3, 200, false, 0},        // everything gone
	}
	for _, c := range cases {
		if got := roundShift64(c.q, c.s, c.sticky); got != c.want {
			t.Errorf("roundShift64(%#b, %d, %v) = %#b, want %#b",
				c.q, c.s, c.sticky, got, c.want)
		}
	}
}

func TestRound128MatchesRoundShift64(t *testing.T) {
	f := func(lo uint64, s8 uint8, sticky bool) bool {
		s := uint(s8 % 64)
		return round128(0, lo, s, sticky) == roundShift64(lo, s, sticky)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitLen128(t *testing.T) {
	cases := []struct {
		hi, lo uint64
		want   int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 1 << 63, 64},
		{1, 0, 65},
		{1 << 41, 0, 106},
	}
	for _, c := range cases {
		if got := bitLen128(c.hi, c.lo); got != c.want {
			t.Errorf("bitLen128(%#x,%#x) = %d, want %d", c.hi, c.lo, got, c.want)
		}
	}
}
