package arith

import (
	"math"
	"math/bits"
)

// Multiplier is a bit-exact model of a radix-4 Booth-recoded multiplier.
// It is the multi-cycle integer and floating-point multiplication unit that
// a MEMO-TABLE shadows: on a table miss the pipeline waits Latency cycles
// for this unit; on a hit the unit's computation is aborted (§2.2).
//
// The model is iterative — one radix-4 digit (two multiplier bits) per
// step — and records the number of recoding steps performed, so tests and
// ablations can relate table hit ratios to cycles actually saved.
type Multiplier struct {
	// Steps counts radix-4 recoding iterations performed since creation.
	Steps uint64
	// Ops counts multiplications performed since creation.
	Ops uint64
}

// boothDigits is the number of radix-4 digits consumed for a 64-bit
// multiplier operand.
const boothDigits = 32

// MulInt64 multiplies two signed 64-bit integers with radix-4 Booth
// recoding, returning the full 128-bit product (hi:lo, two's complement).
func (m *Multiplier) MulInt64(a, b int64) (hi, lo uint64) {
	m.Ops++
	// Partial products are d*a for d in {-2..2}, sign-extended to 128 bits.
	var accHi, accLo uint64
	ua := uint64(a)
	// Sign extension of a to 128 bits.
	var aHi uint64
	if a < 0 {
		aHi = ^uint64(0)
	}
	ub := uint64(b)
	prev := uint64(0) // bit at index -1
	for i := 0; i < boothDigits; i++ {
		m.Steps++
		trip := (ub>>(2*i))&3<<1 | prev
		prev = (ub >> (2*i + 1)) & 1
		var ppHi, ppLo uint64
		switch trip {
		case 0, 7: // 0
			continue
		case 1, 2: // +a
			ppHi, ppLo = aHi, ua
		case 3: // +2a
			ppHi = aHi<<1 | ua>>63
			ppLo = ua << 1
		case 4: // -2a
			ppHi = aHi<<1 | ua>>63
			ppLo = ua << 1
			ppHi, ppLo = neg128(ppHi, ppLo)
		case 5, 6: // -a
			ppHi, ppLo = neg128(aHi, ua)
		}
		// Shift partial product left by 2i and accumulate.
		sh := uint(2 * i)
		if sh >= 64 {
			ppHi = ppLo << (sh - 64)
			ppLo = 0
		} else if sh > 0 {
			ppHi = ppHi<<sh | ppLo>>(64-sh)
			ppLo <<= sh
		}
		var carry uint64
		accLo, carry = bits.Add64(accLo, ppLo, 0)
		accHi, _ = bits.Add64(accHi, ppHi, carry)
	}
	return accHi, accLo
}

func neg128(hi, lo uint64) (uint64, uint64) {
	lo = ^lo
	hi = ^hi
	var carry uint64
	lo, carry = bits.Add64(lo, 1, 0)
	hi += carry
	return hi, lo
}

// MulUint64 multiplies two unsigned 64-bit values via the Booth datapath.
// Both operands must fit in 63 bits (true for IEEE significands).
func (m *Multiplier) MulUint64(a, b uint64) (hi, lo uint64) {
	if a>>63 != 0 || b>>63 != 0 {
		panic("arith: MulUint64 operand exceeds 63 bits")
	}
	return m.MulInt64(int64(a), int64(b))
}

// MulFloat64 performs an IEEE-754 double-precision multiplication with
// round-to-nearest-even, bit-exact with the host FPU. The significand
// product is formed on the Booth datapath.
func (m *Multiplier) MulFloat64(a, b float64) float64 {
	fa, fb := Unpack(a), Unpack(b)
	sign := fa.Sign != fb.Sign

	// Special operands take the unit's bypass paths.
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return quietNaN()
	case math.IsInf(a, 0) || math.IsInf(b, 0):
		if a == 0 || b == 0 {
			return quietNaN() // Inf * 0
		}
		return Pack(Fields{Sign: sign, Exponent: ExponentMax})
	case a == 0 || b == 0:
		return Pack(Fields{Sign: sign})
	}

	sa, ea := normSignificand(a)
	sb, eb := normSignificand(b)
	hi, lo := m.MulUint64(sa, sb)
	// Product value = (hi:lo) * 2^(ea+eb-104); hi:lo in [2^104, 2^106).
	return composeFromWide(sign, hi, lo, ea+eb-104, false)
}

// normSignificand returns a significand in [2^52, 2^53) and exponent e such
// that |x| = sig * 2^(e-52). Subnormal inputs are normalized. x must be
// finite and nonzero.
func normSignificand(x float64) (sig uint64, e int) {
	sig, e = Significand(x)
	for sig < HiddenBit {
		sig <<= 1
		e--
	}
	return sig, e
}

// composeFromWide builds the IEEE double  ±(hi:lo) * 2^exp2  with a single
// round-to-nearest-even step, handling overflow to Inf and gradual
// underflow to subnormals and zero. sticky flags discarded low-order value.
func composeFromWide(sign bool, hi, lo uint64, exp2 int, sticky bool) float64 {
	if hi == 0 && lo == 0 && !sticky {
		return Pack(Fields{Sign: sign})
	}
	l := bitLen128(hi, lo)
	// Unbiased exponent of the leading bit.
	lead := l - 1 + exp2
	biased := lead + ExponentBias
	shift := l - 53 // bits to discard for a 53-bit significand
	if biased <= 0 {
		shift += 1 - biased
		biased = 0 // subnormal (or zero) domain
	}
	var r uint64
	if shift < 0 {
		// Fewer than 53 bits available: exact left shift, no rounding.
		r = lo << uint(-shift)
	} else {
		r = round128(hi, lo, uint(shift), sticky)
	}
	if biased == 0 {
		// Subnormal domain. Rounding may carry into the hidden-bit
		// position, in which case r == 2^52 and the bit pattern below
		// naturally encodes the smallest normal.
		if r == 0 {
			return Pack(Fields{Sign: sign})
		}
		if r > HiddenBit {
			panic("arith: subnormal rounding produced out-of-range value")
		}
		return packRaw(sign, 0, r)
	}
	if r == 1<<53 { // rounding carried out of the significand
		r >>= 1
		biased++
	}
	if biased >= ExponentMax {
		return Pack(Fields{Sign: sign, Exponent: ExponentMax}) // ±Inf
	}
	return packRaw(sign, biased, r&^HiddenBit)
}

// packRaw assembles sign, biased exponent and mantissa-field bits. Unlike
// Pack it permits the subnormal carry case where mantissa == 2^52.
func packRaw(sign bool, biased int, mant uint64) float64 {
	var b uint64
	if sign {
		b = signMask
	}
	b |= uint64(biased) << MantissaBits
	b += mant // carry from mantissa into exponent is intentional
	return math.Float64frombits(b)
}

// Latency returns the cycle count of a full-width iterative multiply on
// this model: one cycle per radix-4 digit plus recode and final-add stages.
func (m *Multiplier) Latency() int { return boothDigits + 2 }
