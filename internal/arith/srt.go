package arith

import "math"

// Divider is a bit-exact model of a radix-4 SRT floating-point divider with
// quotient digits in {-2..2}. This is the class of unit the paper's Table 1
// latencies describe (and the unit whose quotient-selection lookup table
// caused the Pentium FDIV bug, as the paper notes in §1.1). A MEMO-TABLE
// adjacent to it turns a Latency()-cycle recurrence into a single-cycle
// lookup on a hit.
type Divider struct {
	// QSel selects each quotient digit. The default (nil) uses exact
	// selection — the nearest integer to 4R/D — which is what a
	// full-precision comparison network would compute. Tests install the
	// table-based selector to validate it digit-for-digit.
	QSel QuotientSelector
	// Steps counts digit-recurrence iterations performed.
	Steps uint64
	// Ops counts divisions performed.
	Ops uint64
}

// QuotientSelector picks the next radix-4 quotient digit from the shifted
// partial remainder r4 (= 4R, signed) and the divisor significand d
// (in [2^52, 2^53)). The returned digit must keep |4R - digit*d| <= (2/3)d.
type QuotientSelector interface {
	Select(r4 int64, d int64) int
}

// srtDigits is the number of radix-4 iterations: 28 digits give a 56/57-bit
// integer quotient, enough for a correctly rounded 53-bit significand.
const srtDigits = 28

// exactSelect returns the nearest integer to r4/d (ties toward even are
// irrelevant: any nearest choice keeps the remainder bound).
func exactSelect(r4, d int64) int {
	neg := r4 < 0
	ar4 := r4
	if neg {
		ar4 = -ar4
	}
	q := (ar4 + d/2) / d
	if neg {
		return -int(q)
	}
	return int(q)
}

// DivFloat64 performs an IEEE-754 double-precision division with
// round-to-nearest-even, bit-exact with the host FPU.
func (dv *Divider) DivFloat64(a, b float64) float64 {
	dv.Ops++
	fa, fb := Unpack(a), Unpack(b)
	sign := fa.Sign != fb.Sign

	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		return quietNaN()
	case math.IsInf(a, 0):
		if math.IsInf(b, 0) {
			return quietNaN()
		}
		return Pack(Fields{Sign: sign, Exponent: ExponentMax})
	case math.IsInf(b, 0):
		return Pack(Fields{Sign: sign})
	case b == 0:
		if a == 0 {
			return quietNaN()
		}
		return Pack(Fields{Sign: sign, Exponent: ExponentMax})
	case a == 0:
		return Pack(Fields{Sign: sign})
	}

	sa, ea := normSignificand(a)
	sb, eb := normSignificand(b)

	// Digit recurrence: invariant  sa*4^j = Q*sb + R.  The first iteration
	// uses exact selection regardless of QSel — it plays the role of the
	// prescaling step that brings |R| within the table's (2/3)*d bound.
	r := int64(sa)
	d := int64(sb)
	var q int64
	for j := 0; j < srtDigits; j++ {
		dv.Steps++
		r4 := r << 2
		var dig int
		if j == 0 || dv.QSel == nil {
			dig = exactSelect(r4, d)
		} else {
			dig = dv.QSel.Select(r4, d)
		}
		r = r4 - int64(dig)*d
		q = q<<2 + int64(dig)
	}
	// Convert the redundant (signed-remainder) form to floor division.
	if r < 0 {
		q--
		r += d
	}
	// sa/sb = (q + r/sb) / 4^srtDigits; value = that * 2^(ea-eb).
	sticky := r != 0
	return composeFromWide(sign, 0, uint64(q), ea-eb-2*srtDigits, sticky)
}

// Latency returns the cycle count of the iterative divide: one cycle per
// radix-4 digit plus normalization and rounding stages.
func (dv *Divider) Latency() int { return srtDigits + 3 }

// --- Table-based quotient selection -------------------------------------

// QST is a quotient-selection table: the PLA a hardware SRT divider uses in
// place of a full-width division to pick each digit. It is indexed by a
// truncation of the shifted partial remainder and of the divisor.
//
// Granularity: both estimates drop the low 48 bits, so the divisor index
// spans [16, 32) (5 significant bits including the hidden bit) and the
// remainder index spans [-qstRemMax, qstRemMax] (|4R| <= (8/3)d < 86*2^48).
type QST struct {
	// digit[dIdx-16][rIdx+qstRemMax] holds the digit for that estimate
	// cell; cells that cannot occur hold math.MinInt8.
	digit [16][2*qstRemMax + 1]int8
	// Buggy, when true, emulates the Pentium FDIV flaw: a band of cells
	// that should return +2 reads as digit 0 instead, silently corrupting
	// low-order quotient bits for the operand pairs that reach it.
	Buggy bool
}

const (
	qstShift  = 48
	qstRemMax = 88
)

// NewQST constructs a provably safe quotient-selection table: each cell's
// digit keeps the next remainder within (2/3)*divisor for every exact
// (remainder, divisor) pair that truncates into the cell. Construction
// panics if the estimate granularity were insufficient — that it is not is
// itself a property the tests assert.
func NewQST() *QST {
	t := &QST{}
	for di := 0; di < 16; di++ {
		dLo := int64(16+di) << qstShift     // inclusive
		dHi := int64(16+di+1)<<qstShift - 1 // inclusive
		for ri := -qstRemMax; ri <= qstRemMax; ri++ {
			// Remainder interval covered by this cell.
			rLo := int64(ri) << qstShift
			rHi := rLo + (1<<qstShift - 1)
			// A cell is reachable iff some exact pair in it satisfies the
			// loop invariant |4R| <= (8/3)d, i.e. 3|r| <= 8d.
			minAbsR := int64(0)
			if rLo > 0 {
				minAbsR = rLo
			} else if rHi < 0 {
				minAbsR = -rHi
			}
			if 3*minAbsR > 8*dHi {
				t.digit[di][ri+qstRemMax] = math.MinInt8
				continue
			}
			dig, ok := safeDigit(rLo, rHi, dLo, dHi)
			if !ok {
				panic("arith: QST granularity insufficient for reachable cell")
			}
			t.digit[di][ri+qstRemMax] = int8(dig)
		}
	}
	return t
}

// safeDigit finds a digit in {-2..2} valid across the cell's intersection
// with the reachable region 3|r| <= 8d, i.e. one satisfying
// |r - dig*d| <= (2/3)d there. Digit dig is safe exactly on the band
// (3dig-2)d <= 3r <= (3dig+2)d; for dig = ±2 the outer boundary coincides
// with the reachability boundary and is automatic.
func safeDigit(rLo, rHi, dLo, dHi int64) (int, bool) {
	for dig := -2; dig <= 2; dig++ {
		upOK := dig == 2 ||
			(3*rHi <= int64(3*dig+2)*dLo && 3*rHi <= int64(3*dig+2)*dHi)
		loOK := dig == -2 ||
			(3*rLo >= int64(3*dig-2)*dLo && 3*rLo >= int64(3*dig-2)*dHi)
		if upOK && loOK {
			return dig, true
		}
	}
	return 0, false
}

// Select implements QuotientSelector by truncated-estimate table lookup.
// Out-of-range or unreachable estimates — which only occur once a Buggy
// table has corrupted the recurrence — saturate like the hardware PLA
// would, so a flawed table yields silently wrong quotients rather than a
// simulator fault.
func (t *QST) Select(r4, d int64) int {
	dIdx := int(d>>qstShift) - 16
	if dIdx < 0 {
		dIdx = 0
	} else if dIdx > 15 {
		dIdx = 15
	}
	rIdx := int(r4 >> qstShift) // arithmetic shift floors toward -inf
	if rIdx < -qstRemMax {
		rIdx = -qstRemMax
	} else if rIdx > qstRemMax {
		rIdx = qstRemMax
	}
	dig := t.digit[dIdx][rIdx+qstRemMax]
	if dig == math.MinInt8 {
		if rIdx > 0 {
			return 2
		}
		return -2
	}
	if t.Buggy && dig == 2 && rIdx >= 45 && dIdx >= 12 {
		// The historical flaw: a band of high-remainder cells was left
		// empty in the shipped PLA and read as digit 0.
		return 0
	}
	return int(dig)
}
