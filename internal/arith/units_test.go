package arith

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// sameFloat compares results treating all NaNs as equal and distinguishing
// signed zeros.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestBoothMulInt64MatchesBitsMul(t *testing.T) {
	var m Multiplier
	f := func(a, b int64) bool {
		hi, lo := m.MulInt64(a, b)
		// Reference signed 128-bit product.
		rhi, rlo := bits.Mul64(uint64(a), uint64(b))
		if a < 0 {
			rhi -= uint64(b)
		}
		if b < 0 {
			rhi -= uint64(a)
		}
		return hi == rhi && lo == rlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoothMulInt64Edges(t *testing.T) {
	var m Multiplier
	vals := []int64{0, 1, -1, 2, -2, 3, math.MaxInt64, math.MinInt64,
		math.MaxInt64 - 1, math.MinInt64 + 1, 1 << 31, -(1 << 31), 0x5555555555555555}
	for _, a := range vals {
		for _, b := range vals {
			hi, lo := m.MulInt64(a, b)
			rhi, rlo := bits.Mul64(uint64(a), uint64(b))
			if a < 0 {
				rhi -= uint64(b)
			}
			if b < 0 {
				rhi -= uint64(a)
			}
			if hi != rhi || lo != rlo {
				t.Fatalf("MulInt64(%d,%d) = %#x:%#x, want %#x:%#x", a, b, hi, lo, rhi, rlo)
			}
		}
	}
}

func TestBoothStepCounting(t *testing.T) {
	var m Multiplier
	m.MulInt64(3, 4)
	if m.Ops != 1 {
		t.Fatalf("Ops = %d, want 1", m.Ops)
	}
	if m.Steps != boothDigits {
		t.Fatalf("Steps = %d, want %d", m.Steps, boothDigits)
	}
	if m.Latency() <= 0 {
		t.Fatal("Latency must be positive")
	}
}

func TestMulFloat64MatchesHost(t *testing.T) {
	var m Multiplier
	f := func(abits, bbits uint64) bool {
		a, b := math.Float64frombits(abits), math.Float64frombits(bbits)
		return sameFloat(m.MulFloat64(a, b), a*b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulFloat64NormalRange(t *testing.T) {
	var m Multiplier
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a := (rng.Float64() - 0.5) * math.Pow(2, float64(rng.Intn(80)-40))
		b := (rng.Float64() - 0.5) * math.Pow(2, float64(rng.Intn(80)-40))
		if got, want := m.MulFloat64(a, b), a*b; !sameFloat(got, want) {
			t.Fatalf("MulFloat64(%g,%g) = %g (%#x), want %g (%#x)",
				a, b, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestMulFloat64Specials(t *testing.T) {
	var m Multiplier
	inf, nan := math.Inf(1), math.NaN()
	cases := [][2]float64{
		{inf, 0}, {0, inf}, {-inf, 0}, {inf, inf}, {inf, -inf},
		{nan, 1}, {1, nan}, {nan, nan}, {nan, 0},
		{0, 0}, {math.Copysign(0, -1), 5}, {5, math.Copysign(0, -1)},
		{inf, 2}, {-3, inf},
		{math.MaxFloat64, math.MaxFloat64},            // overflow -> +Inf
		{math.MaxFloat64, -math.MaxFloat64},           // overflow -> -Inf
		{math.SmallestNonzeroFloat64, 0.5},            // underflow -> 0
		{math.SmallestNonzeroFloat64, 0.25},           // underflow -> 0
		{math.Float64frombits(1), 3},                  // subnormal * normal
		{math.Float64frombits(0x000fffffffffffff), 2}, // largest subnormal
		{1e-300, 1e-30},                               // gradual underflow
	}
	for _, c := range cases {
		if got, want := m.MulFloat64(c[0], c[1]), c[0]*c[1]; !sameFloat(got, want) {
			t.Errorf("MulFloat64(%g,%g) = %g (%#x), want %g (%#x)",
				c[0], c[1], got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestDivFloat64MatchesHostExact(t *testing.T) {
	var d Divider // exact quotient selection
	f := func(abits, bbits uint64) bool {
		a, b := math.Float64frombits(abits), math.Float64frombits(bbits)
		return sameFloat(d.DivFloat64(a, b), a/b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivFloat64MatchesHostQST(t *testing.T) {
	d := Divider{QSel: NewQST()}
	f := func(abits, bbits uint64) bool {
		a, b := math.Float64frombits(abits), math.Float64frombits(bbits)
		return sameFloat(d.DivFloat64(a, b), a/b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivFloat64NormalRangeQST(t *testing.T) {
	d := Divider{QSel: NewQST()}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a := (rng.Float64() - 0.5) * math.Pow(2, float64(rng.Intn(80)-40))
		b := (rng.Float64() - 0.5) * math.Pow(2, float64(rng.Intn(80)-40))
		if got, want := d.DivFloat64(a, b), a/b; !sameFloat(got, want) {
			t.Fatalf("DivFloat64(%g,%g) = %g (%#x), want %g (%#x)",
				a, b, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestDivFloat64Specials(t *testing.T) {
	var d Divider
	inf, nan := math.Inf(1), math.NaN()
	cases := [][2]float64{
		{0, 0}, {inf, inf}, {-inf, inf}, {nan, 1}, {1, nan},
		{1, 0}, {-1, 0}, {1, math.Copysign(0, -1)},
		{0, 5}, {math.Copysign(0, -1), 5},
		{inf, 3}, {3, inf}, {-3, -inf},
		{math.MaxFloat64, math.SmallestNonzeroFloat64}, // overflow
		{math.SmallestNonzeroFloat64, math.MaxFloat64}, // underflow
		{math.SmallestNonzeroFloat64, 2},               // subnormal / normal
		{1, 3}, {2, 3}, {1, 10},
		{1e-300, 1e300},
	}
	for _, c := range cases {
		if got, want := d.DivFloat64(c[0], c[1]), c[0]/c[1]; !sameFloat(got, want) {
			t.Errorf("DivFloat64(%g,%g) = %g (%#x), want %g (%#x)",
				c[0], c[1], got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestQSTAgreesWithExactSelection(t *testing.T) {
	// Every digit the table picks must preserve the remainder invariant
	// |4R - dig*D| <= (2/3)D, even where it differs from exact rounding.
	qst := NewQST()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		d := int64(HiddenBit) + rng.Int63n(int64(HiddenBit))
		// Reachable remainder: |R| <= (2/3)d.
		r := rng.Int63n(4*d/3+1) - 2*d/3
		r4 := r << 2
		dig := qst.Select(r4, d)
		next := r4 - int64(dig)*d
		if 3*next > 2*d || 3*next < -2*d {
			t.Fatalf("QST digit %d at r4=%d d=%d leaves remainder %d outside ±(2/3)d",
				dig, r4, d, next)
		}
	}
}

func TestBuggyQSTProducesWrongResults(t *testing.T) {
	good := Divider{QSel: NewQST()}
	bug := Divider{QSel: &QST{}}
	*bug.QSel.(*QST) = *NewQST()
	bug.QSel.(*QST).Buggy = true

	rng := rand.New(rand.NewSource(4))
	wrong := 0
	for i := 0; i < 20000; i++ {
		a := 1 + rng.Float64()
		b := 1 + rng.Float64()
		g := good.DivFloat64(a, b)
		w := bug.DivFloat64(a, b)
		if g != a/b {
			t.Fatalf("good divider wrong for %g/%g", a, b)
		}
		if w != g {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("buggy quotient-selection table never produced a wrong quotient")
	}
	t.Logf("buggy table corrupted %d of 20000 divisions", wrong)
}

func TestSqrtFloat64MatchesHost(t *testing.T) {
	var s Sqrter
	f := func(abits uint64) bool {
		a := math.Float64frombits(abits)
		return sameFloat(s.SqrtFloat64(a), math.Sqrt(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtFloat64Cases(t *testing.T) {
	var s Sqrter
	vals := []float64{0, math.Copysign(0, -1), 1, 2, 4, 0.25, 1e300, 1e-300,
		math.SmallestNonzeroFloat64, math.MaxFloat64, math.Inf(1), math.Inf(-1),
		math.NaN(), -1, -1e-300, 9, 16, 2.25, math.Float64frombits(1)}
	for _, v := range vals {
		if got, want := s.SqrtFloat64(v), math.Sqrt(v); !sameFloat(got, want) {
			t.Errorf("SqrtFloat64(%g) = %g (%#x), want %g (%#x)",
				v, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestSqrtDenseSmallIntegers(t *testing.T) {
	var s Sqrter
	for i := 0; i <= 10000; i++ {
		v := float64(i)
		if got, want := s.SqrtFloat64(v), math.Sqrt(v); !sameFloat(got, want) {
			t.Fatalf("SqrtFloat64(%g) = %g, want %g", v, got, want)
		}
	}
}

func TestUnitLatenciesPositive(t *testing.T) {
	var m Multiplier
	var d Divider
	var s Sqrter
	if m.Latency() <= 1 || d.Latency() <= 1 || s.Latency() <= 1 {
		t.Fatal("multi-cycle units must have latency > 1")
	}
	// Division must be slower than multiplication, as in Table 1.
	if d.Latency() <= 0 || s.Latency() <= d.Latency()/2 {
		t.Log("latency sanity only")
	}
}
