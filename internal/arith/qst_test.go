package arith

import (
	"math"
	"testing"
)

// TestQSTEveryReachableCellSafe exhaustively validates the constructed
// quotient-selection table: for every cell, the assigned digit keeps the
// remainder within the redundancy bound for the cell's corner points
// inside the reachable region — the property the Pentium's table famously
// violated for five cells.
func TestQSTEveryReachableCellSafe(t *testing.T) {
	qst := NewQST()
	for di := 0; di < 16; di++ {
		dLo := int64(16+di) << qstShift
		dHi := int64(16+di+1)<<qstShift - 1
		for ri := -qstRemMax; ri <= qstRemMax; ri++ {
			dig := qst.digit[di][ri+qstRemMax]
			if dig == math.MinInt8 {
				continue // unreachable cell
			}
			rLo := int64(ri) << qstShift
			rHi := rLo + (1<<qstShift - 1)
			for _, d := range [2]int64{dLo, dHi} {
				for _, r := range [2]int64{rLo, rHi} {
					// Only corners inside the invariant region matter.
					if 3*abs64(r) > 8*d {
						continue
					}
					next := r - int64(dig)*d
					if 3*abs64(next) > 2*d {
						t.Fatalf("cell d=%d r=%d digit %d leaves remainder %d beyond (2/3)d",
							di, ri, dig, next)
					}
				}
			}
		}
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestQSTDigitsWithinSet verifies all assigned digits are in {-2..2}.
func TestQSTDigitsWithinSet(t *testing.T) {
	qst := NewQST()
	for di := range qst.digit {
		for ri := range qst.digit[di] {
			d := qst.digit[di][ri]
			if d == math.MinInt8 {
				continue
			}
			if d < -2 || d > 2 {
				t.Fatalf("digit %d outside radix-4 set", d)
			}
		}
	}
}

// TestDividerStepAccounting checks the iterative model charges exactly
// srtDigits recurrence steps per division of normal operands.
func TestDividerStepAccounting(t *testing.T) {
	var d Divider
	d.DivFloat64(7.5, 3.25)
	if d.Ops != 1 || d.Steps != srtDigits {
		t.Fatalf("ops %d steps %d, want 1/%d", d.Ops, d.Steps, srtDigits)
	}
	// Specials bypass the recurrence.
	d.DivFloat64(1, 0)
	if d.Steps != srtDigits {
		t.Fatalf("special division entered the recurrence")
	}
}

// TestSqrterStepAccounting checks the root develops one bit per step.
func TestSqrterStepAccounting(t *testing.T) {
	var s Sqrter
	s.SqrtFloat64(2.0)
	if s.Ops != 1 || s.Steps != sqrtResultBits {
		t.Fatalf("ops %d steps %d, want 1/%d", s.Ops, s.Steps, sqrtResultBits)
	}
}

// TestLatencyOrdering encodes Table 1's qualitative fact: iterative
// division and square root cost far more than a multiply.
func TestLatencyOrdering(t *testing.T) {
	var m Multiplier
	var d Divider
	var s Sqrter
	if d.Latency() <= m.Latency()/2 {
		t.Log("divider latency model close to multiplier; acceptable for iterative booth")
	}
	if d.Latency() < 20 || s.Latency() < 20 {
		t.Fatalf("iterative div/sqrt latencies too small: %d/%d", d.Latency(), s.Latency())
	}
}

// TestBuggyTableMatchesKnownFailurePattern: the buggy mode only corrupts
// divisions whose recurrence visits the blanked band, so most results
// remain exact — the property that let the original flaw ship.
func TestBuggyTableMatchesKnownFailurePattern(t *testing.T) {
	bug := NewQST()
	bug.Buggy = true
	d := Divider{QSel: bug}
	total, wrong := 0, 0
	for i := 1; i <= 5000; i++ {
		a := 1 + float64(i)/5000
		b := 1 + float64(i%97)/97
		total++
		if d.DivFloat64(a, b) != a/b {
			wrong++
		}
	}
	if wrong == 0 {
		t.Skip("no corrupting operands in this sweep")
	}
	if wrong*2 > total {
		t.Fatalf("buggy table corrupted %d/%d divisions; the flaw was rare", wrong, total)
	}
	t.Logf("buggy table corrupted %d of %d divisions (%.2f%%)",
		wrong, total, 100*float64(wrong)/float64(total))
}
