package arith

// Rounding helpers shared by the multiplier, divider and square-root units.
// All units produce an exact (or exactly-sticky-tagged) intermediate result
// and perform a single IEEE round-to-nearest-even step, so double rounding
// never occurs.

// roundShift64 rounds q/2^s to nearest-even. sticky indicates that bits
// below q (already discarded upstream) were nonzero; it participates in the
// tie decision. For s >= 64 the entire value is fractional.
func roundShift64(q uint64, s uint, sticky bool) uint64 {
	if s == 0 {
		return q
	}
	if s >= 64 {
		// Everything shifts out. The result rounds to 1 only if the value
		// exceeds 1/2, or equals 1/2 with odd... result 0 would be even, so
		// ties round down to 0. It exceeds 1/2 only when s == 64 and the top
		// bit is set with more below.
		if s == 64 && q>>63 == 1 && (q<<1 != 0 || sticky) {
			return 1
		}
		return 0
	}
	kept := q >> s
	guard := (q >> (s - 1)) & 1
	rest := q&(1<<(s-1)-1) != 0 || sticky
	if guard == 1 && (rest || kept&1 == 1) {
		kept++
	}
	return kept
}

// round128 rounds the 128-bit value hi:lo divided by 2^s to nearest-even,
// returning a 64-bit result. The caller guarantees the rounded result fits
// in 64 bits. sticky marks additional discarded low-order value.
func round128(hi, lo uint64, s uint, sticky bool) uint64 {
	if s == 0 {
		if hi != 0 {
			panic("arith: round128 result overflows 64 bits")
		}
		return lo
	}
	if s >= 128 {
		if hi != 0 || lo != 0 {
			sticky = true
		}
		_ = sticky
		return 0
	}
	if s > 64 {
		if lo != 0 {
			sticky = true
		}
		return roundShift64(hi, s-64, sticky)
	}
	if s == 64 {
		if hi > 1<<63 { // would need 65 bits even before rounding
			panic("arith: round128 result overflows 64 bits")
		}
		// Value = hi + lo/2^64.
		kept := hi
		guard := lo >> 63
		rest := lo<<1 != 0 || sticky
		if guard == 1 && (rest || kept&1 == 1) {
			kept++
		}
		return kept
	}
	// 0 < s < 64.
	kept := hi<<(64-s) | lo>>s
	guard := (lo >> (s - 1)) & 1
	rest := lo&(1<<(s-1)-1) != 0 || sticky
	if guard == 1 && (rest || kept&1 == 1) {
		kept++
	}
	return kept
}

// bitLen128 returns the bit length of hi:lo.
func bitLen128(hi, lo uint64) int {
	if hi != 0 {
		return 64 + bitLen64(hi)
	}
	return bitLen64(lo)
}

func bitLen64(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}
