// Package workloads implements the eighteen Khoros image/DSP applications
// of the paper's Table 4 as instrumented Go programs. Each follows its
// original's documented algorithm (Sobel differentiation, surface cost,
// Gaussian generation, frequency-domain filtering, k-means, …) and routes
// every dynamic operation through the probe, so running an application
// reproduces the operand trace Shade captured from the Khoros binaries.
//
// The applications' value behaviour — integer pixel arithmetic over
// byte-quantized inputs, small neighbourhood differences, per-window
// statistics — is what gives Multi-Media codes their low local entropy and
// high MEMO-TABLE hit ratios; the implementations below preserve exactly
// that behaviour.
package workloads

import (
	"fmt"

	"memotable/internal/imaging"
	"memotable/internal/probe"
)

// App is one Multi-Media application.
type App struct {
	Name string
	Desc string
	// Run executes the application on one input image, emitting its
	// dynamic operations through p, and returns the output image. Every
	// image the run allocates comes from as, the capture's private
	// address space, so the operand trace a run emits is a pure function
	// of the workload — independent of what else the process is running.
	Run func(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image
	// Inputs lists the default catalog input names (the paper ran each
	// application on 8–14 inputs).
	Inputs []string
}

// byteInputs are the single/multi-band quantized catalog inputs suitable
// for pixel-domain applications.
var byteInputs = []string{
	"mandrill", "nature", "Muppet1", "guya", "star", "chroms",
	"airport1", "lablabel", "fractal", "lenna.rgb", "mandril.rgb", "lizard.rgb",
}

// floatInputs adds the continuous MRI-like fields.
var floatInputs = []string{
	"mandrill", "nature", "Muppet1", "guya", "star", "chroms",
	"airport1", "fractal", "head", "spine",
}

// smallInputs keeps frequency-domain applications (which crop to
// powers of two and run FFTs) on moderate geometries.
var smallInputs = []string{
	"mandrill", "nature", "Muppet1", "guya", "star", "chroms",
	"airport1", "fractal",
}

// Apps returns the full application registry in the paper's Table 4
// order (plus vsqrt, which Table 4 lists and the speedup study uses).
func Apps() []App {
	return []App{
		{"vspatial", "Statistical spatial feature extraction", VSpatial, byteInputs},
		{"vcost", "Surface arc length from a given pixel", VCost, byteInputs},
		{"vslope", "Slope and aspect images from elevation data", VSlope, byteInputs},
		{"vsqrt", "Square root of each pixel", VSqrt, byteInputs},
		{"vdiff", "Differentiation using two NxN weighted ops", VDiff, byteInputs},
		{"vdetilt", "Best-fit plane subtracted from the image", VDetilt, floatInputs},
		{"vgauss", "Generates Gaussian distributions", VGauss, byteInputs},
		{"venhance", "Local transformation (mean & variance)", VEnhance, byteInputs},
		{"vgef", "Edge detection", VGef, byteInputs},
		{"vwarp", "Polynomial geometric transformation (warp)", VWarp, byteInputs},
		{"vrect2pol", "Conversion of rectangular to polar data", VRect2Pol, floatInputs},
		{"vmpp", "2-D information from COMPLEX images", VMpp, smallInputs},
		{"vbrf", "Band-reject filtering in the frequency domain", VBrf, smallInputs},
		{"vbpf", "Band-pass filtering in the frequency domain", VBpf, smallInputs},
		{"vsurf", "Surface parameters (normal and angle)", VSurf, byteInputs},
		{"vkmeans", "Kmeans clustering algorithm", VKMeans, byteInputs},
		{"vgpwl", "Two dimensional piecewise linear image", VGpwl, byteInputs},
		{"venhpatch", "Stretches contrast based on a local histogram", VEnhPatch, byteInputs},
	}
}

// Lookup returns the named application.
func Lookup(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workloads: unknown application %q", name)
}

// Names returns all application names in registry order.
func Names() []string {
	apps := Apps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}

// --- shared instrumentation helpers --------------------------------------

// loadPix emits the load of (x, y, b) and returns its value.
func loadPix(p *probe.Probe, im *imaging.Image, x, y, b int) float64 {
	p.Load(im.Addr(x, y, b))
	return im.At(x, y, b)
}

// storePix emits the store of (x, y, b) and writes the value.
func storePix(p *probe.Probe, im *imaging.Image, x, y, b int, v float64) {
	p.Store(im.Addr(x, y, b))
	im.Set(x, y, b, v)
}

// pixelOverhead emits the loop bookkeeping a compiled per-pixel loop
// carries: index arithmetic and the loop branch. Applications whose
// compiled form indexed with pointer increments use this variant; Table 7
// marks them '-' in the integer-multiplication column.
func pixelOverhead(p *probe.Probe) {
	p.IAlu()
	p.IAlu()
	p.Branch()
}

// addrOverhead is pixelOverhead for applications compiled with explicit
// img[y*width+x] indexing: 1997-era compilers emitted an integer multiply
// per subscript, and its (row, stride) operands repeat across a whole
// scanline — the source of the paper's large, highly repetitive integer
// multiplication streams (imul hit ratios of .49–.99 in Table 7).
func addrOverhead(p *probe.Probe, im *imaging.Image, y int) {
	p.IMul(int64(y), int64(im.W))
	p.IAlu()
	p.Branch()
}

// clampXY bounds a coordinate into the image.
func clampXY(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v >= hi {
		return hi - 1
	}
	return v
}
