package workloads

import (
	"memotable/internal/imaging"
	"memotable/internal/probe"
	"memotable/internal/signal"
)

// The frequency-domain applications operate on COMPLEX images, as the
// Khoros originals did. The complex input is constructed from the real
// image and a one-pixel-shifted copy as the imaginary plane (a standard
// quadrature stand-in), cropped to power-of-two geometry for the FFTs.

// toField crops band b of the image to power-of-two dimensions (at most
// 256) and loads it into a complex field.
func toField(p *probe.Probe, in *imaging.Image, b int) *signal.Field {
	w, h := 1, 1
	for w*2 <= in.W && w < 256 {
		w *= 2
	}
	for h*2 <= in.H && h < 256 {
		h *= 2
	}
	f := signal.NewField(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			re := loadPix(p, in, x, y, b)
			im := loadPix(p, in, clampXY(x+1, in.W), y, b)
			f.Set(x, y, re, im)
		}
	}
	return f
}

// fromField writes the field's real plane into an output image.
func fromField(p *probe.Probe, as *imaging.AddressSpace, f *signal.Field) *imaging.Image {
	out := as.New(f.W, f.H, 1, imaging.Float)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			re, _ := f.At(x, y)
			storePix(p, out, x, y, 0, re)
		}
	}
	return out
}

// VBrf band-reject filters the image in the frequency domain: forward
// 2-D FFT, a reject annulus, inverse FFT. Spectrum values are
// high-entropy, so — as Table 7 reports — the multiplication hit ratio is
// very low (.01); the value of vbrf to the study is as a counterexample.
func VBrf(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	f := toField(p, in, 0)
	signal.FFT2D(p, f, false)
	signal.RadialMask(p, f, 0.15, 0.30, 0, 1)
	signal.FFT2D(p, f, true)
	return fromField(p, as, f)
}

// VBpf band-pass filters the image in the frequency domain, keeping only
// a narrow annulus. Most spectrum samples multiply by the stop gain and
// the sparse surviving spectrum yields more repetitive inverse-transform
// values than vbrf.
func VBpf(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	f := toField(p, in, 0)
	signal.FFT2D(p, f, false)
	signal.RadialMask(p, f, 0.05, 0.15, 1, 0)
	signal.FFT2D(p, f, true)
	return fromField(p, as, f)
}

// VRect2Pol converts rectangular complex data to polar form: magnitude
// via square root, phase via a rational arctangent approximation whose
// divisions take quantized operand pairs.
func VRect2Pol(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, 2, imaging.Float)
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			pixelOverhead(p)
			re := loadPix(p, in, x, y, 0)
			im := loadPix(p, in, clampXY(x+1, in.W), y, 0)
			mag2 := p.FAdd(p.FMul(re, re), p.FMul(im, im))
			mag := p.FSqrt(mag2)
			p.Branch()
			// Phase is quantized to sectors before the arctangent: the
			// ratio divides four-level-coarsened components.
			var phase float64
			rq, iq := float64(int(re)>>3), float64(int(im)>>3)
			if rq != 0 {
				t := p.FDiv(iq, rq)
				// atan(t) ~ t / (1 + 0.28*t²)
				phase = p.FDiv(t, p.FAdd(1, p.FMul(0.28, p.FMul(t, t))))
			}
			storePix(p, out, x, y, 0, mag)
			storePix(p, out, x, y, 1, phase)
		}
	}
	return out
}

// VMpp extracts 2-D information from a COMPLEX image: per-pixel power,
// normalized real part and the local phase-difference energy.
func VMpp(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	f := toField(p, in, 0)
	out := as.New(f.W, f.H, 2, imaging.Float)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			pixelOverhead(p)
			re, im := f.At(x, y)
			p.Load(0x5000_0000 + uint64(y*f.W+x)*16)
			power := p.FAdd(p.FMul(re, re), p.FMul(im, im))
			p.Branch()
			// Normalization uses the power floored to coarse bins, as the
			// original's fixed-point magnitude stage did.
			var normRe float64
			pq := float64(int(power) &^ 4095)
			if power != 0 {
				normRe = p.FDiv(re, p.FAdd(1, pq))
			}
			storePix(p, out, x, y, 0, power)
			storePix(p, out, x, y, 1, normRe)
		}
	}
	return out
}
