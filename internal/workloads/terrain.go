package workloads

import (
	"math"

	"memotable/internal/imaging"
	"memotable/internal/probe"
)

// VCost computes the surface arc length from the image's left edge,
// treating pixel values as elevations: per step the squared elevation
// delta (an integer product of small differences) is normalized by the
// local elevation scale and accumulated through a square root.
func VCost(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			var cost float64
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				v := int64(loadPix(p, in, x, y, b))
				prev := v
				if x > 0 {
					prev = int64(loadPix(p, in, x-1, y, b))
				}
				dz := v - prev
				adz := dz
				if adz < 0 {
					adz = -adz
				}
				d2 := p.IMul(dz, dz)
				// Normalize by the step magnitude: the divider sees one
				// operand pair per |dz| value, a small repetitive set.
				norm := p.FDiv(float64(d2), float64(1+adz))
				arc := p.FSqrt(p.FAdd(1, norm))
				cost = p.FAdd(cost, arc)
				// Grade weighting keeps a multiplier stream on the
				// quantized elevation values.
				grade := p.FMul(0.5, float64(v))
				storePix(p, out, x, y, b, p.FAdd(cost, p.FMul(0.001, grade)))
			}
		}
	}
	return out
}

// VSlope derives slope and aspect from elevation data via central
// differences. The aspect ratio gy/gx divides small integer-valued
// gradients; the slope uses squared gradients.
func VSlope(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, 2*in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				xl := int64(loadPix(p, in, clampXY(x-1, in.W), y, b))
				xr := int64(loadPix(p, in, clampXY(x+1, in.W), y, b))
				yu := int64(loadPix(p, in, x, clampXY(y-1, in.H), b))
				yd := int64(loadPix(p, in, x, clampXY(y+1, in.H), b))
				gx, gy := xr-xl, yd-yu
				g2 := p.IAdd(p.IMul(gx, gx), p.IMul(gy, gy))
				// Scale to degrees-per-sample units; the root of a
				// right-shifted integer set keeps the products repetitive.
				slope := p.FMul(p.FSqrt(float64(g2>>2)), 0.5)
				p.Branch()
				// Aspect is binned to compass sectors: the ratio divides
				// gradients quantized to eight-level steps.
				aspect := 0.0
				if gx/8 != 0 {
					aspect = p.FDiv(float64(gy/8), float64(gx/8))
				}
				storePix(p, out, x, y, 2*b, slope)
				storePix(p, out, x, y, 2*b+1, aspect)
			}
		}
	}
	return out
}

// VSurf computes surface parameters: the unit normal's z component and
// the surface angle term for each pixel, dividing by the normal's length.
func VSurf(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, 2*in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				v := int64(loadPix(p, in, x, y, b))
				xr := int64(loadPix(p, in, clampXY(x+1, in.W), y, b))
				yd := int64(loadPix(p, in, x, clampXY(y+1, in.H), b))
				gx, gy := xr-v, yd-v
				len2 := p.IAdd(p.IMul(gx, gx), p.IMul(gy, gy))
				// Gradient energy is scaled down before normalization, so
				// the root and reciprocal operate on a compact value set.
				norm := p.FSqrt(float64(1 + len2>>2))
				nz := p.FDiv(1, norm)
				// Angle term against the fixed viewing zenith.
				angle := p.FMul(nz, 0.7071067811865476)
				storePix(p, out, x, y, 2*b, nz)
				storePix(p, out, x, y, 2*b+1, angle)
			}
		}
	}
	return out
}

// VGauss generates a Gaussian-shaped distribution image parameterized by
// the input's pixel values: per pixel a radial response r²/sigma² is
// evaluated with a rational approximation of exp(-t). Distances come
// from a small set of grid offsets, so the divisions repeat heavily.
func VGauss(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	const centers = 4
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				v := loadPix(p, in, x, y, b)
				var acc float64
				for c := 0; c < centers; c++ {
					cx := (in.W / centers) * c
					cy := (in.H / centers) * c
					dx := float64((x - cx) % 32)
					dy := float64((y - cy) % 32)
					r2 := p.FAdd(p.FMul(dx, dx), p.FMul(dy, dy))
					// sigma derives from the quantized pixel value.
					sigma2 := p.FAdd(64, p.FMul(v, 2))
					t := p.FDiv(r2, sigma2)
					// exp(-t) ~ 1/(1+t+t²/2), evaluated on t rounded to
					// sixteenths (a table-lookup argument in the original).
					t = float64(int(t*16)) / 16
					den := p.FAdd(p.FAdd(1, t), p.FMul(0.5, p.FMul(t, t)))
					acc = p.FAdd(acc, p.FDiv(1, den))
				}
				storePix(p, out, x, y, b, acc)
			}
		}
	}
	return out
}

// VGpwl reconstructs the image as a two-dimensional piecewise-linear
// surface over a coarse knot grid: per pixel two interpolation parameters
// (small-integer offsets divided by the knot span) and bilinear blending.
func VGpwl(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	const span = 16
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				x0, y0 := (x/span)*span, (y/span)*span
				x1, y1 := clampXY(x0+span, in.W), clampXY(y0+span, in.H)
				v00 := loadPix(p, in, x0, y0, b)
				v10 := loadPix(p, in, x1, y0, b)
				v01 := loadPix(p, in, x0, y1, b)
				v11 := loadPix(p, in, x1, y1, b)
				tx := p.FDiv(float64(x-x0), span)
				ty := p.FDiv(float64(y-y0), span)
				// Segment slopes divide quantized value deltas by the knot
				// span — the piecewise-linear coefficient stream.
				p.FDiv(p.FSub(v10, v00), span)
				p.FDiv(p.FSub(v01, v00), span)
				top := p.FAdd(p.FMul(p.FSub(1, tx), v00), p.FMul(tx, v10))
				bot := p.FAdd(p.FMul(p.FSub(1, tx), v01), p.FMul(tx, v11))
				storePix(p, out, x, y, b,
					p.FAdd(p.FMul(p.FSub(1, ty), top), p.FMul(ty, bot)))
			}
		}
	}
	return out
}

// VSqrt takes the square root of each pixel — Table 4's simplest entry
// and the natural demonstration of the paper's sqrt-memoization future
// work — then normalizes by the image's root maximum.
func VSqrt(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		_, hi := in.MinMax(b)
		rootMax := math.Sqrt(hi)
		if rootMax == 0 {
			rootMax = 1
		}
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				v := loadPix(p, in, x, y, b)
				r := p.FSqrt(v)
				// Normalize and rescale to display range: roots of the
				// quantized value set feed both operations.
				storePix(p, out, x, y, b, p.FMul(p.FDiv(r, rootMax), 255))
			}
		}
	}
	return out
}

// VWarp applies a polynomial geometric transformation with bilinear
// resampling: source coordinates are second-order polynomials in the
// integer destination coordinates, and a mild projective denominator
// exercises the divider.
func VWarp(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				// Integer cross terms through the integer multiplier.
				xy := p.IMul(int64(x%64), int64(y%64))
				u := p.FAdd(p.FAdd(p.FMul(0.9, float64(x)), p.FMul(0.05, float64(y%128))),
					p.FMul(0.0005, float64(xy)))
				v := p.FAdd(p.FAdd(p.FMul(0.9, float64(y)), p.FMul(0.05, float64(x%128))),
					p.FMul(0.0005, float64(xy)))
				// Projective correction: the divider sees bounded cross
				// terms over a small denominator set.
				den := p.FAdd(16, float64((x+y)%16))
				corr := p.FDiv(float64(xy%32), den)
				u = p.FAdd(u, p.FMul(0.05, corr))
				v = p.FSub(v, p.FMul(0.05, corr))
				// Bilinear resample.
				ui, vi := int(u), int(v)
				fu, fv := u-float64(ui), v-float64(vi)
				x0, y0 := clampXY(ui, in.W), clampXY(vi, in.H)
				x1, y1 := clampXY(ui+1, in.W), clampXY(vi+1, in.H)
				s00 := loadPix(p, in, x0, y0, b)
				s10 := loadPix(p, in, x1, y0, b)
				s01 := loadPix(p, in, x0, y1, b)
				s11 := loadPix(p, in, x1, y1, b)
				top := p.FAdd(p.FMul(p.FSub(1, fu), s00), p.FMul(fu, s10))
				bot := p.FAdd(p.FMul(p.FSub(1, fu), s01), p.FMul(fu, s11))
				storePix(p, out, x, y, b,
					p.FAdd(p.FMul(p.FSub(1, fv), top), p.FMul(fv, bot)))
			}
		}
	}
	return out
}
