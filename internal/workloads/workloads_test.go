package workloads

import (
	"math"
	"testing"

	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/probe"
	"memotable/internal/trace"
)

// testImage builds a small quantized input.
func testImage(w, h int) *imaging.Image {
	im := imaging.Plasma(w, h, 42, 0.6)
	im.Quantize(64)
	im.Kind = imaging.Byte
	return im
}

func countOps(t *testing.T, app App, in *imaging.Image) *trace.Counter {
	t.Helper()
	var c trace.Counter
	p := probe.New(&c)
	out := app.Run(p, imaging.NewAddressSpace(), in)
	if out == nil || out.W <= 0 || out.H <= 0 {
		t.Fatalf("%s returned invalid output", app.Name)
	}
	for _, v := range out.Pix {
		if math.IsNaN(v) {
			t.Fatalf("%s produced NaN", app.Name)
		}
	}
	return &c
}

func TestAllAppsRunAndEmit(t *testing.T) {
	in := testImage(32, 24)
	for _, app := range Apps() {
		c := countOps(t, app, in)
		if c.Total() == 0 {
			t.Errorf("%s emitted no events", app.Name)
		}
		if c.Of(isa.OpLoad) == 0 {
			t.Errorf("%s emitted no loads", app.Name)
		}
		if c.Of(isa.OpFMul) == 0 {
			t.Errorf("%s emitted no fp multiplications", app.Name)
		}
	}
}

// TestOpProfiles checks each application's operation mix against the
// presence/absence pattern of the paper's Table 7 ('-' = class absent).
func TestOpProfiles(t *testing.T) {
	in := testImage(32, 24)
	profiles := map[string]struct{ imul, fdiv bool }{
		"vdiff":     {true, false},
		"vcost":     {true, true},
		"vgauss":    {false, true},
		"vspatial":  {true, true},
		"vslope":    {true, true},
		"vgef":      {true, false},
		"vdetilt":   {false, false},
		"vwarp":     {true, true},
		"venhance":  {false, true},
		"vrect2pol": {false, true},
		"vmpp":      {false, true},
		"vbrf":      {true, true},
		"vbpf":      {true, true},
		"vsurf":     {true, true},
		"vgpwl":     {false, true},
		"venhpatch": {true, false},
		"vkmeans":   {false, true},
		"vsqrt":     {false, true},
	}
	for _, app := range Apps() {
		want, ok := profiles[app.Name]
		if !ok {
			t.Errorf("no profile for %s", app.Name)
			continue
		}
		c := countOps(t, app, in)
		if got := c.Of(isa.OpIMul) > 0; got != want.imul {
			t.Errorf("%s: imul present=%v, want %v", app.Name, got, want.imul)
		}
		if got := c.Of(isa.OpFDiv) > 0; got != want.fdiv {
			t.Errorf("%s: fdiv present=%v, want %v", app.Name, got, want.fdiv)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Apps()) != 18 {
		t.Fatalf("registry has %d apps, want 18", len(Apps()))
	}
	if len(Names()) != 18 {
		t.Fatal("Names mismatch")
	}
	a, err := Lookup("vkmeans")
	if err != nil || a.Name != "vkmeans" {
		t.Fatalf("Lookup(vkmeans) = %v, %v", a.Name, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted unknown app")
	}
	for _, app := range Apps() {
		if len(app.Inputs) < 8 {
			t.Errorf("%s has %d default inputs; the paper used 8-14", app.Name, len(app.Inputs))
		}
		for _, in := range app.Inputs {
			if imaging.Find(in) == nil {
				t.Errorf("%s references unknown input %q", app.Name, in)
			}
		}
	}
}

func TestVSqrtValues(t *testing.T) {
	in := testImage(16, 16)
	out := VSqrt(probe.New(), imaging.NewAddressSpace(), in)
	_, hi := in.MinMax(0)
	rootMax := math.Sqrt(hi)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := math.Sqrt(in.At(x, y, 0)) / rootMax * 255
			if math.Abs(out.At(x, y, 0)-want) > 1e-12 {
				t.Fatalf("vsqrt(%d,%d) = %g, want %g", x, y, out.At(x, y, 0), want)
			}
		}
	}
}

func TestVDiffFlatImageIsZero(t *testing.T) {
	in := imaging.New(16, 16, 1, imaging.Byte)
	for i := range in.Pix {
		in.Pix[i] = 7
	}
	out := VDiff(probe.New(), imaging.NewAddressSpace(), in)
	for _, v := range out.Pix {
		if v != 0 {
			t.Fatalf("gradient of flat image = %g", v)
		}
	}
}

func TestVDetiltRemovesRamp(t *testing.T) {
	in := imaging.Ramp(32, 32)
	out := VDetilt(probe.New(), imaging.NewAddressSpace(), in)
	for _, v := range out.Pix {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("detilt left residual %g on a perfect plane", v)
		}
	}
}

func TestVSlopeOnRamp(t *testing.T) {
	// A diagonal ramp quantized to many levels has near-constant slope in
	// the interior and aspect gy/gx = 1.
	in := imaging.Ramp(32, 32)
	for i := range in.Pix {
		// Steep enough that the eight-level aspect binning sees equal
		// nonzero gradients in both directions.
		in.Pix[i] *= 62 * 8
	}
	out := VSlope(probe.New(), imaging.NewAddressSpace(), in)
	aspect := out.At(16, 16, 1)
	if math.Abs(aspect-1) > 1e-9 {
		t.Fatalf("aspect on diagonal ramp = %g, want 1", aspect)
	}
}

func TestVKMeansQuantizesToK(t *testing.T) {
	in := testImage(24, 24)
	out := VKMeans(probe.New(), imaging.NewAddressSpace(), in)
	distinct := map[float64]bool{}
	for _, v := range out.Pix {
		distinct[v] = true
	}
	if len(distinct) > 6 {
		t.Fatalf("kmeans output has %d levels, want <= 6", len(distinct))
	}
}

func TestVGpwlInterpolatesKnots(t *testing.T) {
	in := testImage(33, 33)
	out := VGpwl(probe.New(), imaging.NewAddressSpace(), in)
	// At knot positions the reconstruction equals the input.
	for y := 0; y < 33; y += 16 {
		for x := 0; x < 33; x += 16 {
			if math.Abs(out.At(x, y, 0)-in.At(x, y, 0)) > 1e-9 {
				t.Fatalf("knot (%d,%d): %g vs %g", x, y, out.At(x, y, 0), in.At(x, y, 0))
			}
		}
	}
}

func TestVEnhPatchStretchesContrast(t *testing.T) {
	in := testImage(32, 32)
	out := VEnhPatch(probe.New(), imaging.NewAddressSpace(), in)
	_, inHi := in.MinMax(0)
	_, outHi := out.MinMax(0)
	if outHi <= inHi {
		t.Fatalf("contrast not stretched: in max %g, out max %g", inHi, outHi)
	}
}

func TestVBpfPreservesGeometry(t *testing.T) {
	in := testImage(40, 24) // crops to 32x16
	out := VBpf(probe.New(), imaging.NewAddressSpace(), in)
	if out.W != 32 || out.H != 16 {
		t.Fatalf("vbpf output %dx%d, want 32x16", out.W, out.H)
	}
}

func TestVBrfRejectsBand(t *testing.T) {
	// An image that is pure DC passes a band-reject filter unchanged.
	in := imaging.New(32, 32, 1, imaging.Byte)
	for i := range in.Pix {
		in.Pix[i] = 9
	}
	out := VBrf(probe.New(), imaging.NewAddressSpace(), in)
	for _, v := range out.Pix {
		if math.Abs(v-9) > 1e-9 {
			t.Fatalf("DC image altered: %g", v)
		}
	}
}

func TestVCostMonotoneAlongRows(t *testing.T) {
	in := testImage(24, 8)
	out := VCost(probe.New(), imaging.NewAddressSpace(), in)
	for y := 0; y < 8; y++ {
		prev := -1.0
		for x := 0; x < 24; x++ {
			v := out.At(x, y, 0)
			if v <= prev {
				t.Fatalf("cost not monotone at (%d,%d)", x, y)
			}
			prev = v
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	in := testImage(24, 16)
	for _, name := range []string{"vspatial", "vgauss", "vkmeans"} {
		app, _ := Lookup(name)
		a := app.Run(probe.New(), imaging.NewAddressSpace(), in)
		b := app.Run(probe.New(), imaging.NewAddressSpace(), in)
		for i := range a.Pix {
			if a.Pix[i] != b.Pix[i] {
				t.Fatalf("%s not deterministic", name)
			}
		}
	}
}
