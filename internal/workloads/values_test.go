package workloads

import (
	"math"
	"testing"

	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/probe"
	"memotable/internal/trace"
)

// Value-domain checks: each application's output must be the documented
// function of its input, not just "some image".

func TestVSurfNormalsBounded(t *testing.T) {
	in := testImage(24, 24)
	out := VSurf(probe.New(), imaging.NewAddressSpace(), in)
	for y := 0; y < 24; y++ {
		for x := 0; x < 24; x++ {
			nz := out.At(x, y, 0)
			if nz <= 0 || nz > 1 {
				t.Fatalf("normal z component %g outside (0,1]", nz)
			}
			angle := out.At(x, y, 1)
			if math.Abs(angle-nz*0.7071067811865476) > 1e-12 {
				t.Fatalf("angle term inconsistent at (%d,%d)", x, y)
			}
		}
	}
	// A flat image has vertical normals everywhere.
	flat := imaging.New(8, 8, 1, imaging.Byte)
	out = VSurf(probe.New(), imaging.NewAddressSpace(), flat)
	for _, b := range []int{0} {
		if v := out.At(4, 4, b); math.Abs(v-1) > 1e-12 {
			t.Fatalf("flat surface normal %g, want 1", v)
		}
	}
}

func TestVGaussPositiveAndBounded(t *testing.T) {
	in := testImage(24, 24)
	out := VGauss(probe.New(), imaging.NewAddressSpace(), in)
	for _, v := range out.Pix {
		if v <= 0 || v > 4 {
			t.Fatalf("gaussian response %g outside (0,4]", v)
		}
	}
}

func TestVEnhanceFlatRegionsUnchanged(t *testing.T) {
	// On a constant image the local mean equals every pixel: enhancement
	// must return the original value.
	in := imaging.New(16, 16, 1, imaging.Byte)
	for i := range in.Pix {
		in.Pix[i] = 100
	}
	out := VEnhance(probe.New(), imaging.NewAddressSpace(), in)
	for _, v := range out.Pix {
		if math.Abs(v-100) > 1e-9 {
			t.Fatalf("flat region altered: %g", v)
		}
	}
}

func TestVKMeansCentroidsWithinRange(t *testing.T) {
	in := testImage(24, 24)
	out := VKMeans(probe.New(), imaging.NewAddressSpace(), in)
	lo, hi := in.MinMax(0)
	olo, ohi := out.MinMax(0)
	if olo < lo-1 || ohi > hi+1 {
		t.Fatalf("centroid range [%g,%g] outside input range [%g,%g]", olo, ohi, lo, hi)
	}
}

func TestVWarpStaysInValueRange(t *testing.T) {
	in := testImage(32, 32)
	out := VWarp(probe.New(), imaging.NewAddressSpace(), in)
	lo, hi := in.MinMax(0)
	for _, v := range out.Pix {
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("bilinear resample %g escaped input range [%g,%g]", v, lo, hi)
		}
	}
}

func TestVRect2PolMagnitude(t *testing.T) {
	in := testImage(16, 16)
	out := VRect2Pol(probe.New(), imaging.NewAddressSpace(), in)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			re := in.At(x, y, 0)
			im := in.At(clampXY(x+1, 16), y, 0)
			want := math.Sqrt(re*re + im*im)
			if math.Abs(out.At(x, y, 0)-want) > 1e-9 {
				t.Fatalf("magnitude at (%d,%d): %g want %g", x, y, out.At(x, y, 0), want)
			}
		}
	}
}

func TestVGefBinaryOutput(t *testing.T) {
	in := testImage(24, 24)
	out := VGef(probe.New(), imaging.NewAddressSpace(), in)
	for _, v := range out.Pix {
		if v != 0 && v != 255 {
			t.Fatalf("edge map value %g, want 0 or 255", v)
		}
	}
}

func TestVSpatialVarianceNonNegativeOnUniform(t *testing.T) {
	in := imaging.New(16, 16, 1, imaging.Byte)
	for i := range in.Pix {
		in.Pix[i] = 64
	}
	out := VSpatial(probe.New(), imaging.NewAddressSpace(), in)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if v := out.At(x, y, 1); math.Abs(v) > 1 {
				t.Fatalf("variance %g on a uniform image", v)
			}
		}
	}
}

func TestMultiBandProcessing(t *testing.T) {
	// Every band of a multi-band image must be processed.
	b0 := testImage(16, 16)
	b1 := testImage(16, 16)
	for i := range b1.Pix {
		b1.Pix[i] = 63 - b1.Pix[i]
	}
	in := imaging.Multi(b0, b1)
	out := VSqrt(probe.New(), imaging.NewAddressSpace(), in)
	if out.Bands != 2 {
		t.Fatalf("output bands = %d", out.Bands)
	}
	same := true
	for y := 0; y < 16 && same; y++ {
		for x := 0; x < 16; x++ {
			if out.At(x, y, 0) != out.At(x, y, 1) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("bands processed identically despite different data")
	}
}

func TestAddressStreamsStayInImages(t *testing.T) {
	// Every Load/Store address an app emits must fall inside one of the
	// images involved (or the app's declared LUT region) — addresses feed
	// the cache model and wild pointers would corrupt its realism.
	for _, name := range []string{"vdiff", "vspatial", "vkmeans", "vgpwl"} {
		app, _ := Lookup(name)
		// Place the input in the capture's own space, the way the engine's
		// capture path does; outputs allocate after it from the same space.
		as := imaging.NewAddressSpace()
		in := as.Clone(testImage(24, 16))
		var bad int
		lo := in.Base
		hi := in.Base + uint64(len(in.Pix)*8)
		app.Run(probe.New(trace.SinkFunc(func(ev trace.Event) {
			if ev.Op != isa.OpLoad && ev.Op != isa.OpStore {
				return
			}
			a := ev.A
			if a >= lo && a < hi {
				return // input image
			}
			if a >= 0x4000_0000 && a < 0x6000_0000 {
				return // declared LUT regions
			}
			// Otherwise it must be an output/aux image allocated after
			// the input: addresses grow monotonically from the arena.
			if a < lo {
				bad++
			}
		})), as, in)
		if bad > 0 {
			t.Errorf("%s emitted %d addresses below the image arena", name, bad)
		}
	}
}
