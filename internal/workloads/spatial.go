package workloads

import (
	"math"

	"memotable/internal/imaging"
	"memotable/internal/probe"
)

// VDiff differentiates the image with two 3×3 weighted (Sobel) operators.
// Pixel-kernel products on quantized inputs are integer multiplications;
// the gradient magnitude is assembled in floating point.
func VDiff(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, in.Kind)
	sobelX := [9]int64{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	sobelY := [9]int64{-1, -2, -1, 0, 0, 0, 1, 2, 1}
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				var gx, gy int64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						v := int64(loadPix(p, in, clampXY(x+dx, in.W), clampXY(y+dy, in.H), b))
						k := (dy+1)*3 + dx + 1
						if sobelX[k] != 0 {
							gx = p.IAdd(gx, p.IMul(v, sobelX[k]))
						}
						if sobelY[k] != 0 {
							gy = p.IAdd(gy, p.IMul(v, sobelY[k]))
						}
					}
				}
				// Magnitude by the classic octagon approximation
				// max + min/2 — the fixed-point practice of the era —
				// keeping the multiplier on one small-set operand.
				ax, ay := gx, gy
				if ax < 0 {
					ax = -ax
				}
				if ay < 0 {
					ay = -ay
				}
				mx, mn := ax, ay
				if mn > mx {
					mx, mn = mn, mx
				}
				mag := p.FAdd(float64(mx), p.FMul(0.5, float64(mn)))
				storePix(p, out, x, y, b, mag)
			}
		}
	}
	return out
}

// VGef is a generalized edge finder: a smoothed gradient from two
// fractional-weight convolution kernels, thresholded against the local
// response. No division appears in the kernel path, matching Table 7.
func VGef(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, in.Kind)
	kx := [9]float64{-0.25, 0, 0.25, -0.5, 0, 0.5, -0.25, 0, 0.25}
	ky := [9]float64{-0.25, -0.5, -0.25, 0, 0, 0, 0.25, 0.5, 0.25}
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				var gx, gy float64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						v := loadPix(p, in, clampXY(x+dx, in.W), clampXY(y+dy, in.H), b)
						k := (dy+1)*3 + dx + 1
						if kx[k] != 0 {
							gx = p.FAdd(gx, p.FMul(kx[k], v))
						}
						if ky[k] != 0 {
							gy = p.FAdd(gy, p.FMul(ky[k], v))
						}
					}
				}
				// Edge strength via integer magnitude comparison.
				igx, igy := int64(math.Abs(gx)*4), int64(math.Abs(gy)*4)
				strength := p.IAdd(p.IMul(igx, igx), p.IMul(igy, igy))
				p.Branch() // threshold test
				v := 0.0
				if strength > 64 {
					v = 255
				}
				storePix(p, out, x, y, b, v)
			}
		}
	}
	return out
}

// VSpatial extracts per-window spatial statistics: 3×3 mean and variance
// maps. Sums of quantized pixels form a small value set, so the
// per-window divisions repeat heavily — this is the paper's best
// fdiv-memoization case (hit ratio .94).
func VSpatial(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, 2*in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				addrOverhead(p, in, y)
				var sum, sumSq int64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						v := int64(loadPix(p, in, clampXY(x+dx, in.W), clampXY(y+dy, in.H), b))
						sum = p.IAdd(sum, v)
						sumSq = p.IAdd(sumSq, p.IMul(v, v))
					}
				}
				// Fixed-point feature scaling (the original works on byte
				// pipelines): window sums are right-shifted before the
				// normalizing division, keeping the divider's operand pairs
				// in a small, locally repetitive set.
				// The mean carries a 1/4 scale and the second moment its
				// square (1/16), so the variance feature is consistently
				// scaled.
				mean := p.FDiv(float64(sum>>2), 9)
				ex2 := p.FDiv(float64(sumSq>>4), 9)
				variance := p.FSub(ex2, p.FMul(mean, mean))
				storePix(p, out, x, y, 2*b, p.FMul(mean, 4))
				storePix(p, out, x, y, 2*b+1, p.FMul(variance, 16))
			}
		}
	}
	return out
}

// VEnhance applies the classic local mean/variance enhancement: each
// pixel is pushed away from its 5×5 window mean by a gain derived from
// the window's standard deviation. All arithmetic is floating point
// (Table 7 shows no integer multiplications for venhance); the gain
// divisions involve a continuous denominator, giving the moderate fdiv
// reuse the paper reports (.12).
func VEnhance(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	const targetSigma = 24.0
	for b := 0; b < in.Bands; b++ {
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				var sum, sumSq float64
				for dy := -2; dy <= 2; dy++ {
					for dx := -2; dx <= 2; dx++ {
						v := loadPix(p, in, clampXY(x+dx, in.W), clampXY(y+dy, in.H), b)
						sum = p.FAdd(sum, v)
						sumSq = p.FAdd(sumSq, p.FMul(v, v))
					}
				}
				mean := p.FMul(sum, 1.0/25)
				variance := p.FSub(p.FMul(sumSq, 1.0/25), p.FMul(mean, mean))
				p.Branch()
				if variance < 1 {
					variance = 1
				}
				// The variance estimate is truncated to integer counts (the
				// original accumulates in fixed point) before the root and
				// the gain division.
				sigma := p.FSqrt(float64(int(variance)))
				gain := p.FDiv(targetSigma, sigma)
				p.Branch()
				if gain > 4 {
					gain = 4
				}
				v := loadPix(p, in, x, y, b)
				enhanced := p.FAdd(mean, p.FMul(gain, p.FSub(v, mean)))
				storePix(p, out, x, y, b, enhanced)
			}
		}
	}
	return out
}

// VEnhPatch stretches contrast patch by patch from the local histogram
// extrema: out = (v - lo) * step with an integer reciprocal step from a
// small lookup set, matching Table 7's profile for venhpatch (heavy
// integer-multiply reuse, no division).
func VEnhPatch(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, in.Kind)
	const patch = 16
	// Fixed-point reciprocal table (host-prepared constant data, as the
	// original prepares its stretch LUT outside the pixel loop).
	recip := make([]int64, 512)
	for i := 1; i < len(recip); i++ {
		recip[i] = int64(255*256) / int64(i)
	}
	for b := 0; b < in.Bands; b++ {
		for y0 := 0; y0 < in.H; y0 += patch {
			for x0 := 0; x0 < in.W; x0 += patch {
				// Local histogram extrema.
				lo, hi := int64(1<<30), int64(-1<<30)
				for y := y0; y < y0+patch && y < in.H; y++ {
					for x := x0; x < x0+patch && x < in.W; x++ {
						addrOverhead(p, in, y)
						v := int64(loadPix(p, in, x, y, b))
						p.Branch()
						if v < lo {
							lo = v
						}
						p.Branch()
						if v > hi {
							hi = v
						}
					}
				}
				span := hi - lo
				if span <= 0 {
					span = 1
				}
				step := recip[span&511]
				p.Load(0x4000_0000 + uint64(span&511)*8) // LUT access
				// Stretch the patch.
				for y := y0; y < y0+patch && y < in.H; y++ {
					for x := x0; x < x0+patch && x < in.W; x++ {
						addrOverhead(p, in, y)
						v := int64(loadPix(p, in, x, y, b))
						stretched := p.IMul(v-lo, step) >> 8
						// Soft blend with the original keeps mid-tones.
						blended := p.FAdd(p.FMul(0.75, float64(stretched)),
							p.FMul(0.25, float64(v)))
						storePix(p, out, x, y, b, blended)
					}
				}
			}
		}
	}
	return out
}

// VDetilt fits a least-squares plane to the image and subtracts it. The
// fit accumulations and the subtraction are floating point only; the
// closed-form 3×3 solve happens once per image in the setup code (no
// dynamic division stream, matching Table 7's '-' entries).
func VDetilt(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	out := as.New(in.W, in.H, in.Bands, imaging.Float)
	for b := 0; b < in.Bands; b++ {
		// Accumulate moments for the normal equations.
		var sz, sxz, syz float64
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				v := loadPix(p, in, x, y, b)
				fx, fy := float64(x), float64(y)
				sz = p.FAdd(sz, v)
				sxz = p.FAdd(sxz, p.FMul(fx, v))
				syz = p.FAdd(syz, p.FMul(fy, v))
			}
		}
		// Closed-form plane for centered, uniform x/y grids (host math:
		// per-image constants).
		w, h := float64(in.W), float64(in.H)
		n := w * h
		mx, my := (w-1)/2, (h-1)/2
		varX := (w*w - 1) / 12
		varY := (h*h - 1) / 12
		mz := sz / n
		bx := (sxz/n - mx*mz) / varX
		by := (syz/n - my*mz) / varY
		// Subtract the plane.
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				v := loadPix(p, in, x, y, b)
				plane := p.FAdd(p.FAdd(mz, p.FMul(bx, float64(x)-mx)),
					p.FMul(by, float64(y)-my))
				storePix(p, out, x, y, b, p.FSub(v, plane))
			}
		}
	}
	return out
}
