package workloads

import (
	"memotable/internal/imaging"
	"memotable/internal/probe"
)

// VKMeans clusters pixel intensities with the k-means algorithm (k = 6,
// fixed iteration budget). Distance evaluations square the difference
// between a quantized pixel and a centroid — operand pairs drawn from a
// small product set — and the centroid updates divide class sums by class
// counts, both highly repetitive across iterations.
func VKMeans(p *probe.Probe, as *imaging.AddressSpace, in *imaging.Image) *imaging.Image {
	const (
		k     = 6
		iters = 6
	)
	out := as.New(in.W, in.H, in.Bands, in.Kind)
	for b := 0; b < in.Bands; b++ {
		lo, hi := in.MinMax(b)
		centroids := make([]float64, k)
		for i := range centroids {
			centroids[i] = lo + (hi-lo)*float64(i)/float64(k-1)
		}
		assign := make([]int, in.W*in.H)
		cc2 := make([]float64, k)
		for it := 0; it < iters; it++ {
			for c := 0; c < k; c++ {
				cc2[c] = p.FMul(centroids[c], centroids[c])
			}
			// Assignment step.
			for y := 0; y < in.H; y++ {
				for x := 0; x < in.W; x++ {
					pixelOverhead(p)
					v := loadPix(p, in, x, y, b)
					best, bestD := 0, 0.0
					for c := 0; c < k; c++ {
						// Scalar k-means needs only the cross term to rank
						// classes: score = c²/2 - v*c (v² is common). Both
						// product and division draw operands from the
						// (pixel value, centroid) grid, which repeats
						// across the image and across iterations.
						cross := p.FMul(v, centroids[c])
						rel := p.FDiv(float64(int(v)>>3), p.FAdd(1, centroids[c]))
						score := p.FSub(p.FMul(0.5, cc2[c]), cross)
						_ = rel
						p.Branch()
						if c == 0 || score < bestD {
							best, bestD = c, score
						}
					}
					assign[y*in.W+x] = best
				}
			}
			// Update step: mean of each class.
			sums := make([]float64, k)
			counts := make([]float64, k)
			for y := 0; y < in.H; y++ {
				for x := 0; x < in.W; x++ {
					p.IAlu()
					c := assign[y*in.W+x]
					sums[c] = p.FAdd(sums[c], loadPix(p, in, x, y, b))
					counts[c]++
				}
			}
			for c := 0; c < k; c++ {
				p.Branch()
				if counts[c] > 0 {
					// Centroids settle onto a quarter-level grid, as the
					// byte-pipeline original kept fixed-point centroids.
					centroids[c] = p.FDiv(sums[c], counts[c])
					centroids[c] = float64(int(centroids[c]*4)) / 4
				}
			}
		}
		// Emit the clustered image: each pixel replaced by its centroid.
		for y := 0; y < in.H; y++ {
			for x := 0; x < in.W; x++ {
				pixelOverhead(p)
				storePix(p, out, x, y, b, centroids[assign[y*in.W+x]])
			}
		}
	}
	return out
}
