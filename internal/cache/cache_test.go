package cache

import (
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 8192, LineBytes: 32, Ways: 2},
		{SizeBytes: 1024, LineBytes: 16, Ways: 1},
		{SizeBytes: 65536, LineBytes: 64, Ways: 4},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{}, {SizeBytes: 1000, LineBytes: 32, Ways: 2},
		{SizeBytes: 1024, LineBytes: 33, Ways: 1},
		{SizeBytes: 1024, LineBytes: 32, Ways: 0},
		{SizeBytes: 1024, LineBytes: 32, Ways: -1},
		{SizeBytes: 1024, LineBytes: 32, Ways: 3},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(Config{})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	if c.Access(0x100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100) {
		t.Fatal("warm access missed")
	}
	if !c.Access(0x11F) { // same 32-byte line
		t.Fatal("same-line access missed")
	}
	if c.Access(0x120) { // next line
		t.Fatal("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %g", st.HitRatio())
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2 ways, 16 sets of 32-byte lines: addresses 32*16 apart collide.
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	stride := uint64(32 * 16)
	c.Access(0 * stride)
	c.Access(1 * stride)
	c.Access(0 * stride) // touch first: second becomes LRU
	c.Access(2 * stride) // evicts 1*stride
	if !c.Access(0) {
		t.Error("MRU line evicted")
	}
	if c.Access(1 * stride) {
		t.Error("LRU line survived")
	}
}

func TestSequentialLocality(t *testing.T) {
	c := New(Config{SizeBytes: 8192, LineBytes: 32, Ways: 2})
	var miss int
	for addr := uint64(0); addr < 4096; addr += 8 {
		if !c.Access(addr) {
			miss++
		}
	}
	// One miss per 32-byte line.
	if miss != 4096/32 {
		t.Fatalf("misses = %d, want %d", miss, 4096/32)
	}
}

func TestResetCache(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	c.Access(0)
	c.Reset()
	if c.Access(0) {
		t.Fatal("hit after reset")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("stats not reset")
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set equal to capacity must, after warmup, hit always.
	c := New(Config{SizeBytes: 4096, LineBytes: 32, Ways: 4})
	addrs := make([]uint64, 4096/32)
	for i := range addrs {
		addrs[i] = uint64(i * 32)
	}
	for _, a := range addrs { // warm
		c.Access(a)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		if !c.Access(addrs[rng.Intn(len(addrs))]) {
			t.Fatal("capacity-resident line missed")
		}
	}
}
