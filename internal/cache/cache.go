// Package cache models a set-associative data cache with LRU replacement.
// The paper's speedup experiments enhance the trace simulator with "a
// memory hierarchy of two caches" so that whole-application cycle counts
// (the denominator of Fraction Enhanced) are realistic; this package is
// that hierarchy's building block.
package cache

import "fmt"

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the line size. Must be a power of two.
	LineBytes int
	// Ways is the set associativity; 0 means direct mapped is NOT implied —
	// it is invalid. Use 1 for direct mapped.
	Ways int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("cache: size %d not a positive power of two", c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line %d not a positive power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways %d not positive", c.Ways)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRatio returns Hits/Accesses.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache. Tags only — the model tracks presence,
// not data.
type Cache struct {
	lineShift uint
	setMask   uint64
	sets      [][]line // MRU-first
	stats     Stats
}

type line struct {
	tag   uint64
	valid bool
}

// New builds a cache, panicking on invalid geometry (a programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{setMask: uint64(numSets - 1)}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineShift++
	}
	c.sets = make([][]line, numSets)
	backing := make([]line, numSets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// Access touches the byte address, returning whether it hit. Misses
// allocate (for both loads and stores: write-allocate).
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	lineAddr := addr >> c.lineShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(popcount(c.setMask))
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			l := set[w]
			copy(set[1:w+1], set[:w])
			set[0] = l
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: tag, valid: true}
	return false
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.stats = Stats{}
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
}
