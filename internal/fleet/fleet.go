package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"memotable/internal/experiments"
	"memotable/internal/faults"
	"memotable/internal/provenance"
	"memotable/internal/report"
)

// Worker exit codes the coordinator accepts as "manifest emitted". The
// contract (documented in the README): 0 = clean manifest on stdout,
// 3 = manifest on stdout with degraded cells, 2 = usage or planning
// error (no manifest), anything else = worker failure. Only 0 and 3
// carry output worth decoding; every other exit retries the shard.
const (
	workerExitClean    = 0
	workerExitDegraded = 3
)

// Config shapes one coordinated fleet run.
type Config struct {
	// Exe is the memosim binary to launch workers from; empty resolves
	// to the running executable.
	Exe string
	// Shards is the worker count; the caller clamps it to the selection
	// size (experiments.ShardCount) so no shard is empty.
	Shards int
	// Scale every worker runs at.
	Scale experiments.Scale
	// Names is the resolved selection, in canonical selection order
	// (experiments.Resolve).
	Names []string
	// Timeout bounds each shard attempt; on expiry the worker is killed
	// and the attempt counts as failed (0 = no limit).
	Timeout time.Duration
	// Retries is how many extra attempts a failed shard gets, each on a
	// fresh worker process.
	Retries int
	// RetryBase seeds the full-jitter backoff between attempts: attempt
	// k sleeps uniform[0, min(RetryBase<<k, 64*RetryBase)). Zero skips
	// the sleep.
	RetryBase time.Duration
	// Args contributes extra worker argv entries per shard — the CLI
	// forwards -parallel/-store/-faults here and points each worker at
	// its own spill directory.
	Args func(shard int) []string
	// Stderr receives every worker's stderr (nil discards it).
	Stderr io.Writer

	// Test seams. SpawnHook observes each launched worker process (the
	// soak test uses it to force-kill one mid-run); Transform rewrites
	// an attempt's collected stdout before decoding (the soak test uses
	// it to bit-flip one shard's output and watch verification reject
	// it).
	SpawnHook func(shard, attempt int, proc *os.Process)
	Transform func(shard, attempt int, out []byte) []byte
}

// ShardRun is one shard's outcome: its assignment, how many worker
// launches it took, and either a verified manifest or the terminal
// error that exhausted its retry budget.
type ShardRun struct {
	Shard    int
	Names    []string
	Attempts int
	// Manifest is the shard's verified output; nil when the shard
	// terminally failed.
	Manifest *Manifest
	// Err is the terminal failure: the last attempt's error once
	// retries ran out. Tampered output wraps provenance.ErrProvenance.
	Err error
}

// Report is a completed fleet run: every shard's outcome plus the
// combined Merkle root over the verified shard roots (failed shards
// contribute a degraded marker, so the root also attests to which
// shards are missing).
type Report struct {
	Scale  experiments.Scale
	Names  []string
	Shards []ShardRun
	Root   string
}

// Run executes the selection across cfg.Shards supervised workers and
// merges their verified manifests. Shard failures never fail the run:
// a shard that exhausts its retries is reported degraded in the
// Report, and only the coordinator's own misconfiguration (no shards,
// no selection) returns an error.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: shard count %d", cfg.Shards)
	}
	if cfg.Shards > len(cfg.Names) {
		return nil, fmt.Errorf("fleet: %d shards for %d experiments (clamp with experiments.ShardCount)",
			cfg.Shards, len(cfg.Names))
	}
	if cfg.Exe == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("fleet: resolving worker executable: %w", err)
		}
		cfg.Exe = exe
	}

	assign := experiments.ShardSelection(cfg.Names, cfg.Shards)
	runs := make([]ShardRun, cfg.Shards)
	var wg sync.WaitGroup
	for i := range runs {
		runs[i] = ShardRun{Shard: i, Names: assign[i]}
		wg.Add(1)
		go func(sr *ShardRun) {
			defer wg.Done()
			sr.Manifest, sr.Attempts, sr.Err = cfg.runShard(ctx, sr.Shard, sr.Names)
		}(&runs[i])
	}
	wg.Wait()

	roots := make([]string, len(runs))
	for i := range runs {
		if runs[i].Manifest != nil {
			roots[i] = runs[i].Manifest.Root
		}
	}
	return &Report{Scale: cfg.Scale, Names: cfg.Names, Shards: runs, Root: provenance.Combine(roots)}, nil
}

// runShard drives one shard through its attempt budget: launch a fresh
// worker, collect and verify, and on any failure back off with full
// jitter and try again — rescheduling onto a new process, never reusing
// a suspect one.
func (cfg *Config) runShard(ctx context.Context, shard int, names []string) (*Manifest, int, error) {
	attempts := 0
	var lastErr error
	for try := 0; try <= cfg.Retries; try++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return nil, attempts, fmt.Errorf("fleet: shard %d: run canceled: %w", shard, lastErr)
		}
		attempts++
		m, err := cfg.attempt(ctx, shard, names, attempts)
		if err == nil {
			return m, attempts, nil
		}
		lastErr = err
		if try < cfg.Retries && cfg.RetryBase > 0 {
			sleep := backoff(cfg.RetryBase, try)
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
			}
		}
	}
	return nil, attempts, lastErr
}

// backoff draws a full-jitter exponential delay: uniform over
// [0, base<<attempt), capped at 64× base — the same shape the engine
// uses for spill-I/O retries.
func backoff(base time.Duration, attempt int) time.Duration {
	ceil := base << attempt
	if lim := 64 * base; ceil > lim || ceil <= 0 {
		ceil = lim
	}
	return time.Duration(rand.Int64N(int64(ceil)))
}

// attempt runs one worker process for the shard and returns its
// verified manifest. Every exit from this function other than success
// is retryable by the caller.
func (cfg *Config) attempt(ctx context.Context, shard int, names []string, attempt int) (*Manifest, error) {
	if err := faults.Inject(faults.FleetSpawn); err != nil {
		return nil, fmt.Errorf("fleet: shard %d spawn: %w", shard, err)
	}
	actx := ctx
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}

	args := []string{
		"-worker",
		"-shard", fmt.Sprintf("%d/%d", shard, cfg.Shards),
		"-scale", cfg.Scale.String(),
		"-run", strings.Join(names, ","),
	}
	if cfg.Args != nil {
		args = append(args, cfg.Args(shard)...)
	}
	cmd := exec.CommandContext(actx, cfg.Exe, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = cfg.Stderr
	// A killed worker must not wedge the coordinator on inherited pipe
	// ends; WaitDelay bounds the post-kill drain.
	cmd.WaitDelay = 5 * time.Second
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: shard %d: starting worker: %w", shard, err)
	}
	if cfg.SpawnHook != nil {
		cfg.SpawnHook(shard, attempt, cmd.Process)
	}
	err := cmd.Wait()
	if cerr := actx.Err(); cerr != nil {
		return nil, fmt.Errorf("fleet: shard %d: worker timed out after %v: %w", shard, cfg.Timeout, cerr)
	}
	exit := workerExitClean
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			return nil, fmt.Errorf("fleet: shard %d: worker: %w", shard, err)
		}
		exit = ee.ExitCode()
	}
	if exit != workerExitClean && exit != workerExitDegraded {
		return nil, fmt.Errorf("fleet: shard %d: worker exited %d", shard, exit)
	}

	if err := faults.Inject(faults.FleetCollect); err != nil {
		return nil, fmt.Errorf("fleet: shard %d collect: %w", shard, err)
	}
	raw := out.Bytes()
	if cfg.Transform != nil {
		raw = cfg.Transform(shard, attempt, raw)
	}
	m, err := DecodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d: %w", shard, err)
	}
	if err := faults.Inject(faults.FleetVerify); err != nil {
		return nil, fmt.Errorf("fleet: shard %d verify: %w", shard, err)
	}
	if err := Verify(m, shard, cfg.Shards, cfg.Scale.String(), names); err != nil {
		return nil, fmt.Errorf("fleet: shard %d: %w", shard, err)
	}
	if m.Degraded != (exit == workerExitDegraded) {
		return nil, fmt.Errorf("fleet: shard %d: worker exit %d contradicts manifest degraded=%v",
			shard, exit, m.Degraded)
	}
	return m, nil
}

// cell returns the merged output bytes for selection position idx: the
// owning shard's carried rendering, or a locally rendered degraded
// result when that shard terminally failed.
func (r *Report) cell(idx int) (ShardResult, error) {
	sr := &r.Shards[idx%len(r.Shards)]
	name := r.Names[idx]
	if sr.Manifest == nil {
		deg := report.NewDegradedResult(name, []report.RunError{{
			Workload: fmt.Sprintf("shard %d/%d", sr.Shard, len(r.Shards)),
			Stage:    "fleet",
			Message:  sr.Err.Error(),
		}})
		doc, err := report.JSON(deg)
		if err != nil {
			return ShardResult{}, err
		}
		return ShardResult{Name: name, JSON: string(doc), Text: report.Text(deg)}, nil
	}
	pos := idx / len(r.Shards)
	return sr.Manifest.Results[pos], nil
}

// MergedJSON assembles the run's `-json` body by splicing the shards'
// carried bytes into the pinned array layout — byte-identical to a
// single-process run for every clean cell — plus the provenance block
// the CLI appends below the array.
func (r *Report) MergedJSON() ([]byte, *report.Provenance, error) {
	docs := make([][]byte, len(r.Names))
	for i := range r.Names {
		c, err := r.cell(i)
		if err != nil {
			return nil, nil, err
		}
		docs[i] = []byte(c.JSON)
	}
	return report.SpliceJSONArray(docs), r.Provenance(), nil
}

// MergedTexts returns each experiment's text rendering in selection
// order, shard-carried bytes for verified shards and locally rendered
// degraded results otherwise.
func (r *Report) MergedTexts() ([]ShardResult, error) {
	out := make([]ShardResult, len(r.Names))
	for i := range r.Names {
		c, err := r.cell(i)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// Provenance summarizes verification for the output's trailing block.
func (r *Report) Provenance() *report.Provenance {
	p := &report.Provenance{Root: r.Root}
	for i := range r.Shards {
		sr := &r.Shards[i]
		sp := report.ShardProvenance{
			Shard:       sr.Shard,
			Experiments: sr.Names,
			Attempts:    sr.Attempts,
		}
		if sr.Manifest != nil {
			sp.Root = sr.Manifest.Root
			sp.Verified = true
			sp.Degraded = sr.Manifest.Degraded
		} else {
			sp.Degraded = true
			if sr.Err != nil {
				sp.Error = sr.Err.Error()
			}
		}
		p.Shards = append(p.Shards, sp)
	}
	return p
}

// Degraded reports whether any cell of the merged output carries
// errors — a terminally failed shard, or worker-side cell failures
// inside a verified manifest.
func (r *Report) Degraded() bool {
	for i := range r.Shards {
		if r.Shards[i].Err != nil || (r.Shards[i].Manifest != nil && r.Shards[i].Manifest.Degraded) {
			return true
		}
	}
	return false
}

// Errors flattens every shard-level failure for stderr reporting.
func (r *Report) Errors() []error {
	var errs []error
	for i := range r.Shards {
		if r.Shards[i].Err != nil {
			errs = append(errs, r.Shards[i].Err)
		}
	}
	return errs
}
