package fleet

import (
	"errors"
	"strings"
	"testing"

	"memotable/internal/experiments"
	"memotable/internal/provenance"
	"memotable/internal/report"
)

// sampleResults builds small typed results named after the selection.
func sampleResults(names ...string) []*report.Result {
	out := make([]*report.Result, len(names))
	for i, n := range names {
		t := report.NewTableResult("Sample "+n, "App", "Ratio")
		t.AddRow(report.Str("mm"), report.RatioCell(0.47))
		t.Name = n
		out[i] = t
	}
	return out
}

func sampleManifest(t *testing.T) *Manifest {
	t.Helper()
	names := []string{"table1", "table5"}
	m, err := BuildManifest(1, 4, "tiny", names, sampleResults(names...),
		[]string{"mm|dec|tiny", "sci|TRFD"})
	if err != nil {
		t.Fatalf("BuildManifest: %v", err)
	}
	return m
}

func TestManifestRoundTripAndVerify(t *testing.T) {
	m := sampleManifest(t)
	enc, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeManifest(enc)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Root != m.Root || got.Chain != m.Chain {
		t.Fatal("round trip changed the provenance")
	}
	if err := Verify(got, 1, 4, "tiny", []string{"table1", "table5"}); err != nil {
		t.Fatalf("Verify(clean): %v", err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	names := []string{"table1", "table5"}
	mutations := map[string]func(m *Manifest){
		"flip result json": func(m *Manifest) {
			m.Results[0].JSON = strings.Replace(m.Results[0].JSON, `"kind"`, `"kund"`, 1)
		},
		"flip result text": func(m *Manifest) { m.Results[1].Text += " " },
		"drop trace":       func(m *Manifest) { m.Traces = m.Traces[:1] },
		"swap traces":      func(m *Manifest) { m.Traces[0], m.Traces[1] = m.Traces[1], m.Traces[0] },
		"forge root":       func(m *Manifest) { m.Root = strings.Repeat("00", 32) },
		"forge chain": func(m *Manifest) {
			c := &provenance.Chain{}
			_ = c.Add(provenance.KindHeader, "run", []byte("forged"))
			m.Chain = string(c.Encode())
		},
	}
	for name, mutate := range mutations {
		m := sampleManifest(t)
		mutate(m)
		err := Verify(m, 1, 4, "tiny", names)
		if err == nil {
			t.Errorf("%s: Verify accepted tampered manifest", name)
			continue
		}
		if !errors.Is(err, provenance.ErrProvenance) {
			t.Errorf("%s: rejection is not ErrProvenance: %v", name, err)
		}
	}
}

func TestVerifyRejectsStaleAssignment(t *testing.T) {
	m := sampleManifest(t)
	cases := map[string]error{
		"wrong shard":     Verify(m, 2, 4, "tiny", []string{"table1", "table5"}),
		"wrong count":     Verify(m, 1, 8, "tiny", []string{"table1", "table5"}),
		"wrong scale":     Verify(m, 1, 4, "quick", []string{"table1", "table5"}),
		"wrong selection": Verify(m, 1, 4, "tiny", []string{"table5", "table1"}),
	}
	for name, err := range cases {
		if !errors.Is(err, provenance.ErrProvenance) {
			t.Errorf("%s: want ErrProvenance, got %v", name, err)
		}
	}
}

func TestDecodeManifestRejects(t *testing.T) {
	valid, err := sampleManifest(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(m *Manifest)) []byte {
		m := sampleManifest(t)
		mutate(m)
		enc, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	cases := map[string][]byte{
		"not json":       []byte("shard output"),
		"trailing data":  append(append([]byte{}, valid...), valid...),
		"unknown field":  []byte(`{"shard":0,"shards":1,"bogus":1}`),
		"bad assignment": corrupt(func(m *Manifest) { m.Shard = 7 }),
		"bad scale":      corrupt(func(m *Manifest) { m.Scale = "huge" }),
		"no names":       corrupt(func(m *Manifest) { m.Names, m.Results = nil, nil }),
		"count mismatch": corrupt(func(m *Manifest) { m.Results = m.Results[:1] }),
		"name mismatch":  corrupt(func(m *Manifest) { m.Results[0].Name = "other" }),
		"missing result json": []byte(`{"shard":0,"shards":1,"scale":"tiny","names":["t"],"traces":[],` +
			`"results":[{"name":"t","text":""}],"chain":"","root":"` + strings.Repeat("00", 32) + `"}`),
		"empty trace": corrupt(func(m *Manifest) { m.Traces[0] = "" }),
		"bad chain":   corrupt(func(m *Manifest) { m.Chain = "garbage" }),
		"short root":  corrupt(func(m *Manifest) { m.Root = "abc" }),
	}
	for name, in := range cases {
		if _, err := DecodeManifest(in); err == nil {
			t.Errorf("%s: DecodeManifest accepted", name)
		}
	}
}

func TestBuildManifestRejects(t *testing.T) {
	names := []string{"table1"}
	if _, err := BuildManifest(4, 4, "tiny", names, sampleResults(names...), nil); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := BuildManifest(0, 1, "tiny", names, sampleResults("table1", "extra"), nil); err == nil {
		t.Error("result-count mismatch accepted")
	}
	if _, err := BuildManifest(0, 1, "tiny", names, sampleResults("other"), nil); err == nil {
		t.Error("result-name mismatch accepted")
	}
}

func TestParseShard(t *testing.T) {
	if i, n, err := ParseShard("2/4"); err != nil || i != 2 || n != 4 {
		t.Fatalf("ParseShard(2/4) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "a/b", "1/0", "1/999999"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestShardSelectionDeterministicAndComplete(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	got := experiments.ShardSelection(names, 3)
	want := [][]string{{"a", "d"}, {"b", "e"}, {"c"}}
	if len(got) != len(want) {
		t.Fatalf("ShardSelection returned %d shards", len(got))
	}
	for i := range want {
		if strings.Join(got[i], ",") != strings.Join(want[i], ",") {
			t.Fatalf("shard %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n := experiments.ShardCount(8, 5); n != 5 {
		t.Fatalf("ShardCount(8, 5) = %d", n)
	}
	if n := experiments.ShardCount(3, 5); n != 3 {
		t.Fatalf("ShardCount(3, 5) = %d", n)
	}
}

// FuzzShardManifest drives arbitrary bytes through DecodeManifest;
// whatever decodes must re-encode to a manifest that decodes again
// with identical provenance fields, and Verify must never panic on it.
func FuzzShardManifest(f *testing.F) {
	f.Add([]byte(`{"shard":0,"shards":1}`))
	f.Add([]byte("not a manifest"))
	seed := &Manifest{}
	names := []string{"table1", "table5"}
	if m, err := BuildManifest(1, 4, "tiny", names, sampleResults(names...), []string{"fp"}); err == nil {
		seed = m
	}
	if enc, err := seed.Encode(); err == nil {
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		again, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest does not decode: %v", err)
		}
		if again.Root != m.Root || again.Chain != m.Chain || again.Degraded != m.Degraded {
			t.Fatal("round trip changed provenance fields")
		}
		// Verify must classify, never panic, whatever the content.
		_ = Verify(m, m.Shard, m.Shards, m.Scale, m.Names)
	})
}
