// Package fleet shards a memosim selection across supervised worker
// processes and merges their typed results back into output
// byte-identical to a single-process run.
//
// The unit of distribution is the registry experiment name: the
// coordinator deals the resolved selection into round-robin shards
// (experiments.ShardSelection), launches one `memosim -worker -shard
// i/N` subprocess per shard, and collects from each a Manifest — the
// shard's rendered result bytes plus a provenance chain over the trace
// fingerprints it settled and the exact bytes it rendered. The
// coordinator recomputes every chain from the carried bytes before
// trusting them; output that fails recomputation is rejected with
// provenance.ErrProvenance and never merged.
//
// Supervision is bounded and isolating: each shard attempt runs under
// its own timeout, failures (crash, hang, torn output, injected
// fleet.* faults) are retried with full-jitter backoff on a fresh
// worker, and a shard that exhausts its budget degrades only its own
// experiments' cells — the rest of the run is unaffected and the
// combined Merkle root attests to exactly which shards those were.
package fleet

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"memotable/internal/experiments"
	"memotable/internal/provenance"
	"memotable/internal/report"
)

// maxShards bounds the shard counts a manifest may claim; anything
// larger is garbage (the CLI clamps real shard counts to the selection
// size, and the registry holds far fewer experiments than this).
const maxShards = 4096

// ShardResult is one experiment's rendered output as the worker
// produced it: the JSON document report.JSON emitted and the text
// report.Text emitted. The JSON document travels as a string — not a
// RawMessage — because the coordinator splices the worker's exact
// bytes into the merged array, and embedding the indented document as
// a nested JSON value would compact it in transit; a string field
// round-trips it byte-for-byte.
type ShardResult struct {
	Name string `json:"name"`
	JSON string `json:"json"`
	Text string `json:"text"`
}

// Manifest is a worker's entire output: its identity (which shard of
// which split, at what scale, over which experiments), the trace
// fingerprints its engine settled, its rendered results, and the
// provenance chain binding all of the above under a Merkle root.
type Manifest struct {
	Shard    int           `json:"shard"`
	Shards   int           `json:"shards"`
	Scale    string        `json:"scale"`
	Names    []string      `json:"names"`
	Traces   []string      `json:"traces"`
	Results  []ShardResult `json:"results"`
	Degraded bool          `json:"degraded,omitempty"`
	Chain    string        `json:"chain"`
	Root     string        `json:"root"`
}

// BuildManifest renders a worker's results and chains them: one header
// leaf (scale, assignment, selection), one leaf per settled trace
// fingerprint (sorted), one leaf per experiment cell (JSON and text
// bytes, length-framed). Degraded is set when any result carries
// errors — the worker's exit code mirrors it.
func BuildManifest(shard, shards int, scale string, names []string, results []*report.Result, traces []string) (*Manifest, error) {
	if shard < 0 || shards < 1 || shard >= shards || shards > maxShards {
		return nil, fmt.Errorf("fleet: shard assignment %d/%d out of range", shard, shards)
	}
	if len(results) != len(names) {
		return nil, fmt.Errorf("fleet: %d results for %d experiments", len(results), len(names))
	}
	m := &Manifest{
		Shard:  shard,
		Shards: shards,
		Scale:  scale,
		Names:  names,
		Traces: traces,
	}
	chain := &provenance.Chain{}
	if err := chain.Add(provenance.KindHeader, "run", headerPayload(scale, shard, shards, names)); err != nil {
		return nil, err
	}
	for _, fp := range traces {
		if err := chain.Add(provenance.KindTrace, fp, []byte(fp)); err != nil {
			return nil, fmt.Errorf("fleet: trace fingerprint %q: %w", fp, err)
		}
	}
	for i, r := range results {
		if r.Name != names[i] {
			return nil, fmt.Errorf("fleet: result %d is %q, selection says %q", i, r.Name, names[i])
		}
		doc, err := report.JSON(r)
		if err != nil {
			return nil, fmt.Errorf("fleet: rendering %s: %w", r.Name, err)
		}
		text := report.Text(r)
		if err := chain.Add(provenance.KindCell, r.Name, cellPayload(doc, text)); err != nil {
			return nil, err
		}
		m.Results = append(m.Results, ShardResult{Name: r.Name, JSON: string(doc), Text: text})
		if len(r.Errs) > 0 {
			m.Degraded = true
		}
	}
	m.Chain = string(chain.Encode())
	m.Root = chain.Root()
	return m, nil
}

// headerPayload is the chain's identity leaf: a shard cannot be
// replayed into a different assignment, scale or selection without
// moving the root.
func headerPayload(scale string, shard, shards int, names []string) []byte {
	return []byte(scale + "|" + strconv.Itoa(shard) + "/" + strconv.Itoa(shards) + "|" + strings.Join(names, ","))
}

// cellPayload length-frames an experiment's JSON and text renderings
// into one leaf payload, so neither can borrow bytes from the other.
func cellPayload(doc []byte, text string) []byte {
	buf := make([]byte, 0, 16+len(doc)+len(text))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(doc)))
	buf = append(buf, doc...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(text)))
	buf = append(buf, text...)
	return buf
}

// Encode serializes the manifest as the single JSON document a worker
// writes to stdout.
func (m *Manifest) Encode() ([]byte, error) {
	buf, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding manifest: %w", err)
	}
	return append(buf, '\n'), nil
}

// DecodeManifest parses and structurally validates worker output. It
// accepts exactly what a worker emits: a well-formed assignment, a
// non-empty selection with one result per name in order, valid JSON
// documents, clean fingerprints, a decodable chain and a hex root.
// Structural garbage fails here with a plain error; bytes that are
// structurally fine but don't match their chain are caught later by
// Verify, with ErrProvenance. It never panics on arbitrary input
// (fuzzed).
func DecodeManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	m := &Manifest{}
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("fleet: manifest does not decode: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fleet: trailing data after manifest")
	}
	if m.Shard < 0 || m.Shards < 1 || m.Shard >= m.Shards || m.Shards > maxShards {
		return nil, fmt.Errorf("fleet: manifest shard assignment %d/%d out of range", m.Shard, m.Shards)
	}
	if _, err := experiments.ParseScale(m.Scale); err != nil || m.Scale == "" {
		return nil, fmt.Errorf("fleet: manifest scale %q invalid", m.Scale)
	}
	if len(m.Names) == 0 {
		return nil, fmt.Errorf("fleet: manifest has no experiments")
	}
	if len(m.Results) != len(m.Names) {
		return nil, fmt.Errorf("fleet: manifest has %d results for %d experiments", len(m.Results), len(m.Names))
	}
	for i, name := range m.Names {
		if name == "" {
			return nil, fmt.Errorf("fleet: manifest name %d is empty", i)
		}
		if m.Results[i].Name != name {
			return nil, fmt.Errorf("fleet: manifest result %d is %q, selection says %q", i, m.Results[i].Name, name)
		}
		if !json.Valid([]byte(m.Results[i].JSON)) {
			return nil, fmt.Errorf("fleet: manifest result %q carries invalid JSON", name)
		}
	}
	for i, fp := range m.Traces {
		if fp == "" {
			return nil, fmt.Errorf("fleet: manifest trace fingerprint %d is empty", i)
		}
	}
	if _, err := provenance.Decode([]byte(m.Chain)); err != nil {
		return nil, fmt.Errorf("fleet: manifest chain: %w", err)
	}
	if len(m.Root) != 64 {
		return nil, fmt.Errorf("fleet: manifest root %q is not a sha256", m.Root)
	}
	return m, nil
}

// Verify checks a decoded manifest against its shard assignment and
// recomputes its provenance from the carried bytes. Every failure —
// identity fields that don't match the assignment (stale or
// misdirected output), a chain that differs from the recomputed one,
// or a root that doesn't match — wraps provenance.ErrProvenance.
func Verify(m *Manifest, shard, shards int, scale string, names []string) error {
	if m.Shard != shard || m.Shards != shards {
		return fmt.Errorf("%w: manifest claims shard %d/%d, assignment is %d/%d",
			provenance.ErrProvenance, m.Shard, m.Shards, shard, shards)
	}
	if m.Scale != scale {
		return fmt.Errorf("%w: manifest scale %q, assignment is %q", provenance.ErrProvenance, m.Scale, scale)
	}
	if len(m.Names) != len(names) {
		return fmt.Errorf("%w: manifest covers %d experiments, assignment has %d",
			provenance.ErrProvenance, len(m.Names), len(names))
	}
	for i, n := range names {
		if m.Names[i] != n {
			return fmt.Errorf("%w: manifest experiment %d is %q, assignment says %q",
				provenance.ErrProvenance, i, m.Names[i], n)
		}
	}

	// Recompute the chain from the carried bytes — identity fields,
	// fingerprints, rendered cells — exactly as the worker built it.
	chain := &provenance.Chain{}
	if err := chain.Add(provenance.KindHeader, "run", headerPayload(m.Scale, m.Shard, m.Shards, m.Names)); err != nil {
		return fmt.Errorf("%w: %v", provenance.ErrProvenance, err)
	}
	for _, fp := range m.Traces {
		if err := chain.Add(provenance.KindTrace, fp, []byte(fp)); err != nil {
			return fmt.Errorf("%w: %v", provenance.ErrProvenance, err)
		}
	}
	for _, r := range m.Results {
		if err := chain.Add(provenance.KindCell, r.Name, cellPayload([]byte(r.JSON), r.Text)); err != nil {
			return fmt.Errorf("%w: %v", provenance.ErrProvenance, err)
		}
	}
	if enc := string(chain.Encode()); enc != m.Chain {
		return fmt.Errorf("%w: carried chain differs from the chain of the carried bytes", provenance.ErrProvenance)
	}
	return chain.VerifyRoot(m.Root)
}

// ParseShard parses the -shard CLI spelling "i/N".
func ParseShard(spec string) (shard, shards int, err error) {
	i, n, ok := strings.Cut(spec, "/")
	if ok {
		shard, err = strconv.Atoi(i)
		if err == nil {
			shards, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil || shard < 0 || shards < 1 || shard >= shards || shards > maxShards {
		return 0, 0, fmt.Errorf("fleet: bad shard spec %q (want i/N with 0 <= i < N)", spec)
	}
	return shard, shards, nil
}
