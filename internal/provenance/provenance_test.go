package provenance

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// buildChain makes a representative chain: a header, a few trace
// fingerprints, a few cells. It panics on Add errors so the fuzz
// target can seed from it too.
func buildChain(t *testing.T) *Chain {
	c := &Chain{}
	for _, l := range []struct {
		kind, name, payload string
	}{
		{KindHeader, "run", "tiny|0/4|table1,table5"},
		{KindTrace, "sci|TRFD", "fingerprint-a"},
		{KindTrace, "mm|dec|tiny", "fingerprint-b"},
		{KindCell, "table1", "json-bytes\x00text-bytes"},
		{KindCell, "table5", "other-json\x00other-text"},
	} {
		if err := c.Add(l.kind, l.name, []byte(l.payload)); err != nil {
			panic(err)
		}
	}
	return c
}

func TestRootDeterministicAndSensitive(t *testing.T) {
	a, b := buildChain(t), buildChain(t)
	if a.Root() != b.Root() {
		t.Fatalf("same chain, different roots: %s vs %s", a.Root(), b.Root())
	}
	if len(a.Root()) != 64 {
		t.Fatalf("root is not a hex sha256: %q", a.Root())
	}

	// Any payload change moves the root.
	c := buildChain(t)
	if err := c.Add(KindCell, "extra", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.Root() == a.Root() {
		t.Fatal("appending a leaf did not change the root")
	}

	// Kind participates in the hash: same name+payload, different kind,
	// different root.
	var k1, k2 Chain
	if err := k1.Add(KindTrace, "n", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := k2.Add(KindCell, "n", []byte("p")); err != nil {
		t.Fatal(err)
	}
	if k1.Root() == k2.Root() {
		t.Fatal("leaf kind is not domain-separated")
	}

	// Order matters: Merkle over a list, not a set.
	var o1, o2 Chain
	for _, n := range []string{"a", "b", "c"} {
		if err := o1.Add(KindTrace, n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"c", "b", "a"} {
		if err := o2.Add(KindTrace, n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	if o1.Root() == o2.Root() {
		t.Fatal("leaf order does not affect the root")
	}
}

func TestEmptyChainRoot(t *testing.T) {
	var c Chain
	if len(c.Root()) != 64 {
		t.Fatalf("empty root: %q", c.Root())
	}
	var one Chain
	if err := one.Add(KindHeader, "h", nil); err != nil {
		t.Fatal(err)
	}
	if c.Root() == one.Root() {
		t.Fatal("empty chain shares a root with a one-leaf chain")
	}
}

// TestOddPromotion pins that a promoted odd node is not confused with a
// duplicated pair: chains of 3 and 4 leaves where the 4th duplicates
// the 3rd must not collide.
func TestOddPromotion(t *testing.T) {
	var three, four Chain
	for _, n := range []string{"a", "b", "c"} {
		if err := three.Add(KindTrace, n, []byte(n)); err != nil {
			t.Fatal(err)
		}
		if err := four.Add(KindTrace, n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := four.Add(KindTrace, "c", []byte("c")); err != nil {
		t.Fatal(err)
	}
	if three.Root() == four.Root() {
		t.Fatal("odd promotion collides with a duplicated leaf")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := buildChain(t)
	enc := c.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode(Encode()): %v", err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("round trip is not byte-identical")
	}
	if got.Root() != c.Root() {
		t.Fatal("round trip changed the root")
	}
	if got.Len() != c.Len() {
		t.Fatalf("round trip changed the length: %d vs %d", got.Len(), c.Len())
	}

	empty, err := Decode(nil)
	if err != nil {
		t.Fatalf("Decode(nil): %v", err)
	}
	if empty.Len() != 0 {
		t.Fatalf("Decode(nil) has %d leaves", empty.Len())
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := string(buildChain(t).Encode())
	cases := map[string]string{
		"missing newline":    strings.TrimSuffix(valid, "\n"),
		"two fields":         "trace\tname\n",
		"four fields":        "trace\tname\tdeadbeef\textra\n",
		"unknown kind":       "blob\tname\t" + strings.Repeat("00", 32) + "\n",
		"short digest":       "trace\tname\tdeadbeef\n",
		"non-hex digest":     "trace\tname\t" + strings.Repeat("zz", 32) + "\n",
		"empty name":         "trace\t\t" + strings.Repeat("00", 32) + "\n",
		"carriage in name":   "trace\ta\rb\t" + strings.Repeat("00", 32) + "\n",
		"oversized name":     "trace\t" + strings.Repeat("n", maxNameLen+1) + "\t" + strings.Repeat("00", 32) + "\n",
		"oversized line":     "trace\t" + strings.Repeat("n", maxNameLen+4096) + "\n",
		"garbage mid-stream": valid + "not a leaf line\n",
	}
	for name, in := range cases {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, in)
		}
	}
}

func TestAddRejects(t *testing.T) {
	var c Chain
	if err := c.Add("blob", "n", nil); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := c.Add(KindTrace, "", nil); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Add(KindTrace, "a\tb", nil); err == nil {
		t.Error("tab in name accepted")
	}
	if err := c.Add(KindTrace, "a\nb", nil); err == nil {
		t.Error("newline in name accepted")
	}
	if c.Len() != 0 {
		t.Fatalf("rejected adds grew the chain to %d", c.Len())
	}
}

func TestVerifyRoot(t *testing.T) {
	c := buildChain(t)
	if err := c.VerifyRoot(c.Root()); err != nil {
		t.Fatalf("VerifyRoot(own root): %v", err)
	}
	err := c.VerifyRoot(strings.Repeat("00", 32))
	if err == nil {
		t.Fatal("VerifyRoot accepted a wrong root")
	}
	if !errors.Is(err, ErrProvenance) {
		t.Fatalf("mismatch is not ErrProvenance: %v", err)
	}
}

func TestCombine(t *testing.T) {
	roots := []string{"aa", "bb", "cc", "dd"}
	if Combine(roots) != Combine(roots) {
		t.Fatal("Combine is not deterministic")
	}
	degraded := []string{"aa", "", "cc", "dd"}
	if Combine(roots) == Combine(degraded) {
		t.Fatal("a degraded shard does not change the combined root")
	}
	// Which shard failed matters, not just how many.
	other := []string{"aa", "bb", "", "dd"}
	if Combine(degraded) == Combine(other) {
		t.Fatal("combined root does not identify the failed shard")
	}
	if len(Combine(nil)) != 64 {
		t.Fatal("Combine(nil) is not a root")
	}
}

func TestRootScalesPastOneLevel(t *testing.T) {
	// Exercise several tree depths, including odd counts at every level.
	var prev string
	for n := 1; n <= 33; n++ {
		var c Chain
		for i := 0; i < n; i++ {
			if err := c.Add(KindTrace, fmt.Sprintf("leaf-%d", i), []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		r := c.Root()
		if r == prev {
			t.Fatalf("chains of %d and %d leaves collide", n-1, n)
		}
		prev = r
	}
}

// FuzzProvenanceChain drives arbitrary bytes through Decode; whatever
// decodes must re-encode byte-identically and carry a stable root.
func FuzzProvenanceChain(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(buildChain(nil).Encode())
	f.Add([]byte("trace\tname\t" + strings.Repeat("00", 32) + "\n"))
	f.Add([]byte("header\ta\tzz\n"))
	f.Add([]byte("cell\t\t\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		enc := c.Encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted input does not round-trip: %q -> %q", data, enc)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Root() != c.Root() {
			t.Fatal("root changed across round trip")
		}
	})
}
