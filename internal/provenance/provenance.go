// Package provenance hash-chains the artifacts of a sharded run into a
// Merkle root, so a coordinator merging worker output can prove the
// cells it reports came from the traces and renderings the worker
// actually produced — and that nothing was substituted, truncated or
// reordered in between.
//
// A Chain is an ordered list of typed leaves. Each leaf binds a kind
// (header, trace fingerprint, result cell, shard root), a name, and the
// SHA-256 of an arbitrary payload; the chain's Root is a Merkle
// reduction over the leaf hashes. Both sides build the chain from the
// same inputs in the same order, so a recomputed root that differs from
// the carried one pins exactly one fact: the carried bytes are not the
// bytes the root was computed over. That mismatch — and every other
// verification failure in the fleet layer — wraps the typed
// ErrProvenance sentinel.
package provenance

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
)

// ErrProvenance is the sentinel every provenance-verification failure
// wraps: a recomputed root that disagrees with the carried one, a chain
// that does not decode, or shard output whose identity fields don't
// match its assignment. Callers classify with errors.Is.
var ErrProvenance = errors.New("provenance verification failed")

// Leaf kinds. The kind participates in the leaf hash (domain
// separation), so a trace fingerprint can never collide with a result
// cell that happens to carry the same name and payload.
const (
	// KindHeader identifies the run: scale, shard assignment, selection.
	KindHeader = "header"
	// KindTrace is one captured-trace fingerprint the shard settled on.
	KindTrace = "trace"
	// KindCell is one experiment's rendered result bytes (JSON and text).
	KindCell = "cell"
	// KindShard is one shard's root inside the coordinator's combined
	// chain.
	KindShard = "shard"
)

// knownKind reports whether k is one of the leaf kinds above.
func knownKind(k string) bool {
	switch k {
	case KindHeader, KindTrace, KindCell, KindShard:
		return true
	}
	return false
}

// Leaf is one chain entry: a typed, named payload digest.
type Leaf struct {
	Kind string
	Name string
	Sum  [sha256.Size]byte
}

// Chain accumulates leaves in order. The zero value is ready to use.
type Chain struct {
	leaves []Leaf
}

// Decoding limits. A chain describes one shard's run — a handful of
// header/trace/cell leaves — so anything near these bounds is garbage,
// and the fuzz targets lean on them to keep adversarial inputs cheap.
const (
	maxLeaves  = 1 << 16
	maxNameLen = 4096
)

// Add appends a leaf whose Sum is the SHA-256 of payload. Kind must be
// one of the Kind constants; name must be free of the separators the
// encoding uses (tabs and newlines).
func (c *Chain) Add(kind, name string, payload []byte) error {
	if !knownKind(kind) {
		return fmt.Errorf("provenance: unknown leaf kind %q", kind)
	}
	if err := checkName(name); err != nil {
		return err
	}
	if len(c.leaves) >= maxLeaves {
		return fmt.Errorf("provenance: chain exceeds %d leaves", maxLeaves)
	}
	c.leaves = append(c.leaves, Leaf{Kind: kind, Name: name, Sum: sha256.Sum256(payload)})
	return nil
}

// checkName rejects names the line encoding cannot carry.
func checkName(name string) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("provenance: leaf name length %d out of [1,%d]", len(name), maxNameLen)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '\t' || name[i] == '\n' || name[i] == '\r' {
			return fmt.Errorf("provenance: leaf name %q contains a separator byte", name)
		}
	}
	return nil
}

// Len returns the number of leaves.
func (c *Chain) Len() int { return len(c.leaves) }

// Leaves returns a copy of the chain's leaves, in order.
func (c *Chain) Leaves() []Leaf { return append([]Leaf(nil), c.leaves...) }

// leafHash domain-separates the leaf's identity from interior nodes:
// 0x00, then kind/name/payload-sum joined by unit separators.
func leafHash(l Leaf) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write([]byte(l.Kind))
	h.Write([]byte{0x1f})
	h.Write([]byte(l.Name))
	h.Write([]byte{0x1f})
	h.Write(l.Sum[:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// Root reduces the leaf hashes to a hex Merkle root. Interior nodes
// hash 0x01 ‖ left ‖ right; an odd node at any level is promoted
// unchanged (no duplication, so a promoted node cannot be confused with
// a pair of identical children). An empty chain has a distinguished
// root so "no leaves" is itself a verifiable statement.
func (c *Chain) Root() string {
	if len(c.leaves) == 0 {
		sum := sha256.Sum256([]byte{0x02})
		return hex.EncodeToString(sum[:])
	}
	level := make([][sha256.Size]byte, len(c.leaves))
	for i, l := range c.leaves {
		level[i] = leafHash(l)
	}
	for len(level) > 1 {
		next := level[: 0 : len(level)/2+1]
		for i := 0; i+1 < len(level); i += 2 {
			h := sha256.New()
			h.Write([]byte{0x01})
			h.Write(level[i][:])
			h.Write(level[i+1][:])
			var sum [sha256.Size]byte
			h.Sum(sum[:0])
			next = append(next, sum)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return hex.EncodeToString(level[0][:])
}

// Encode serializes the chain as one line per leaf —
// "kind\tname\thex(sum)\n" — a format a worker embeds in its manifest
// and Decode round-trips strictly.
func (c *Chain) Encode() []byte {
	var b bytes.Buffer
	for _, l := range c.leaves {
		b.WriteString(l.Kind)
		b.WriteByte('\t')
		b.WriteString(l.Name)
		b.WriteByte('\t')
		b.WriteString(hex.EncodeToString(l.Sum[:]))
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// Decode parses an Encode-format chain, rejecting anything the encoder
// cannot produce: unknown kinds, separator bytes in names, malformed
// digests, missing trailing newlines, oversized inputs. It never
// panics on arbitrary input (fuzzed) and satisfies
// Decode(c.Encode()) ≡ c for every valid chain.
func Decode(data []byte) (*Chain, error) {
	if len(data) > 0 && data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("provenance: chain encoding is not newline-terminated")
	}
	c := &Chain{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 256), maxNameLen+128)
	line := 0
	for sc.Scan() {
		line++
		if line > maxLeaves {
			return nil, fmt.Errorf("provenance: chain exceeds %d leaves", maxLeaves)
		}
		parts := bytes.Split(sc.Bytes(), []byte{'\t'})
		if len(parts) != 3 {
			return nil, fmt.Errorf("provenance: line %d: want 3 tab-separated fields, got %d", line, len(parts))
		}
		kind, name := string(parts[0]), string(parts[1])
		if !knownKind(kind) {
			return nil, fmt.Errorf("provenance: line %d: unknown leaf kind %q", line, kind)
		}
		if err := checkName(name); err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", line, err)
		}
		if len(parts[2]) != hex.EncodedLen(sha256.Size) {
			return nil, fmt.Errorf("provenance: line %d: digest length %d", line, len(parts[2]))
		}
		var l Leaf
		l.Kind, l.Name = kind, name
		if _, err := hex.Decode(l.Sum[:], parts[2]); err != nil {
			return nil, fmt.Errorf("provenance: line %d: bad digest: %v", line, err)
		}
		c.leaves = append(c.leaves, l)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("provenance: %v", err)
	}
	return c, nil
}

// VerifyRoot recomputes the chain's root and compares it with the
// carried one; a mismatch wraps ErrProvenance.
func (c *Chain) VerifyRoot(root string) error {
	if got := c.Root(); got != root {
		return fmt.Errorf("%w: recomputed root %s, carried %s", ErrProvenance, got, root)
	}
	return nil
}

// Combine reduces per-shard roots into the run's combined root: one
// shard leaf per entry, in shard order. An empty root marks a shard
// that produced no verifiable output (crashed past its retry budget, or
// rejected for tampering); it contributes a "degraded" leaf, so the
// combined root also attests to exactly which shards failed.
func Combine(shardRoots []string) string {
	c := &Chain{}
	for i, r := range shardRoots {
		payload := []byte(r)
		if r == "" {
			payload = []byte("degraded")
		}
		// Names are shard ordinals; Add cannot fail on them.
		_ = c.Add(KindShard, strconv.Itoa(i), payload)
	}
	return c.Root()
}
