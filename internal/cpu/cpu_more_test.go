package cpu

import (
	"math"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/trace"
)

func TestStoresUseTheHierarchy(t *testing.T) {
	proc := isa.FastFP()
	m := New(proc)
	m.Emit(trace.Event{Op: isa.OpStore, A: 0x9000}) // cold store: memory
	m.Emit(trace.Event{Op: isa.OpStore, A: 0x9000}) // L1 hit
	m.Emit(trace.Event{Op: isa.OpLoad, A: 0x9008})  // same line: hit
	if m.Cycles() != 30+1+1 {
		t.Fatalf("cycles = %d, want 32", m.Cycles())
	}
	if m.ClassCount(isa.OpStore) != 2 || m.ClassCount(isa.OpLoad) != 1 {
		t.Fatal("class counts wrong")
	}
}

func TestMultipleUnitsIndependentStats(t *testing.T) {
	proc := isa.FastFP()
	um := memo.NewUnit(memo.New(isa.OpFMul, memo.Paper32x4()), memo.NonTrivialOnly, nil)
	ud := memo.NewUnit(memo.New(isa.OpFDiv, memo.Paper32x4()), memo.NonTrivialOnly, nil)
	m := New(proc, um, ud)
	ev := func(op isa.Op, a, b float64) trace.Event {
		return trace.Event{Op: op, A: math.Float64bits(a), B: math.Float64bits(b)}
	}
	m.Emit(ev(isa.OpFMul, 2, 3))
	m.Emit(ev(isa.OpFMul, 2, 3))
	m.Emit(ev(isa.OpFDiv, 2, 3))
	if um.Table().Stats().Hits != 1 || ud.Table().Stats().Hits != 0 {
		t.Fatal("unit stats crossed")
	}
	// fmul: 3 + 1, fdiv: 13.
	if m.Cycles() != 3+1+13 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
	if m.SavedCycles() != 2 {
		t.Fatalf("saved = %d", m.SavedCycles())
	}
}

func TestSqrtUnitMemoized(t *testing.T) {
	proc := isa.FastFP() // fsqrt 17
	u := memo.NewUnit(memo.New(isa.OpFSqrt, memo.Paper32x4()), memo.NonTrivialOnly, nil)
	m := New(proc, u)
	ev := trace.Event{Op: isa.OpFSqrt, A: math.Float64bits(9.0)}
	m.Emit(ev)
	m.Emit(ev)
	if m.Cycles() != 17+1 {
		t.Fatalf("cycles = %d, want 18", m.Cycles())
	}
}

func TestFractionSumsToOne(t *testing.T) {
	m := New(isa.SlowFP())
	ops := []isa.Op{isa.OpIAlu, isa.OpFAdd, isa.OpBranch, isa.OpNop,
		isa.OpFMul, isa.OpFDiv, isa.OpIMul, isa.OpFSqrt}
	for i, op := range ops {
		m.Emit(trace.Event{Op: op, A: math.Float64bits(float64(i) + 1.5),
			B: math.Float64bits(2.5)})
	}
	m.Emit(trace.Event{Op: isa.OpLoad, A: 0x100})
	m.Emit(trace.Event{Op: isa.OpStore, A: 0x200})
	all := append(ops, isa.OpLoad, isa.OpStore)
	if got := m.Fraction(all...); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fractions sum to %g", got)
	}
	if m.Fraction() != 0 {
		t.Fatal("empty fraction not zero")
	}
}

func TestEmptyModelFractionZero(t *testing.T) {
	m := New(isa.FastFP())
	if m.Fraction(isa.OpFDiv) != 0 {
		t.Fatal("fraction on empty model")
	}
	if m.Cycles() != 0 || m.SavedCycles() != 0 {
		t.Fatal("fresh model not zeroed")
	}
}
