// Package cpu is the cycle model that turns an instrumented workload's
// event stream into whole-application cycle counts. It mirrors the paper's
// enhanced simulator (§3.3): an in-order machine charging per-class
// instruction latencies, a two-level cache hierarchy for memory
// operations, and memo-enhanced computation units where MEMO-TABLEs are
// attached — a table hit completes its operation in a single cycle.
//
// As in the paper, multiple issue and inter-instruction pipelining are not
// modelled: the indicator is the total cycle count executed by all
// instructions, which isolates the superfluous cycles the tables avoid.
package cpu

import (
	"memotable/internal/cache"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/trace"
)

// DefaultL1 is the first-level cache geometry (16 KB, 32-byte lines,
// 2-way), in line with the on-chip caches of the paper's Table 1 machines.
var DefaultL1 = cache.Config{SizeBytes: 16 * 1024, LineBytes: 32, Ways: 2}

// DefaultL2 is the second-level cache geometry (256 KB, 64-byte lines,
// 4-way).
var DefaultL2 = cache.Config{SizeBytes: 256 * 1024, LineBytes: 64, Ways: 4}

// Model consumes trace events and accumulates cycles. It implements
// trace.Sink so it can ride the same stream as MEMO-TABLE hit-ratio
// measurements and trace writers.
type Model struct {
	proc   isa.Processor
	l1, l2 *cache.Cache
	units  [isa.NumOps]*memo.Unit

	cycles      uint64
	classCycles [isa.NumOps]uint64
	classCounts [isa.NumOps]uint64
	savedCycles uint64
}

// New builds a cycle model for the processor with the default cache
// hierarchy. Any provided memo units are attached to their op's
// computation unit; a baseline machine attaches none.
func New(proc isa.Processor, units ...*memo.Unit) *Model {
	m := &Model{
		proc: proc,
		l1:   cache.New(DefaultL1),
		l2:   cache.New(DefaultL2),
	}
	for _, u := range units {
		if u == nil {
			continue
		}
		m.units[u.Table().Op()] = u
	}
	return m
}

// Emit implements trace.Sink: charge one event's cycles.
func (m *Model) Emit(ev trace.Event) {
	var c int
	switch ev.Op {
	case isa.OpLoad, isa.OpStore:
		switch {
		case m.l1.Access(ev.A):
			c = m.proc.L1Hit
		case m.l2.Access(ev.A):
			c = m.proc.L2Hit
		default:
			c = m.proc.Mem
		}
	default:
		full := m.proc.LatencyOf(ev.Op)
		c = full
		if u := m.units[ev.Op]; u != nil {
			_, outcome := u.Apply(ev.A, ev.B)
			switch outcome {
			case memo.Hit:
				c = 1
			case memo.Trivial:
				// Integrated detection answers ahead of the unit in one
				// cycle; under other policies the trivial operation still
				// occupies the unit for its full latency.
				if u.Policy() == memo.Integrated {
					c = 1
				}
			}
			if c < full {
				m.savedCycles += uint64(full - c)
			}
		}
	}
	m.cycles += uint64(c)
	m.classCycles[ev.Op] += uint64(c)
	m.classCounts[ev.Op]++
}

// EmitBatch implements trace.BatchSink: the model consumes every event
// class, so batching only saves the per-event interface dispatch.
func (m *Model) EmitBatch(evs []trace.Event) {
	for _, ev := range evs {
		m.Emit(ev)
	}
}

// Cycles returns the total cycle count.
func (m *Model) Cycles() uint64 { return m.cycles }

// SavedCycles returns the cycles avoided by table hits (and integrated
// trivial detection) relative to the same stream without tables.
func (m *Model) SavedCycles() uint64 { return m.savedCycles }

// ClassCycles returns the cycles charged to one op class.
func (m *Model) ClassCycles(op isa.Op) uint64 { return m.classCycles[op] }

// ClassCount returns the number of events of one op class.
func (m *Model) ClassCount(op isa.Op) uint64 { return m.classCounts[op] }

// Fraction returns the fraction of total cycles spent in the given
// classes: the paper's Fraction Enhanced when evaluated on a baseline
// (table-free) machine.
func (m *Model) Fraction(ops ...isa.Op) float64 {
	if m.cycles == 0 {
		return 0
	}
	var c uint64
	for _, op := range ops {
		c += m.classCycles[op]
	}
	return float64(c) / float64(m.cycles)
}

// Unit returns the memo unit attached to op, or nil.
func (m *Model) Unit(op isa.Op) *memo.Unit { return m.units[op] }

// L1Stats and L2Stats expose the cache hierarchy's counters.
func (m *Model) L1Stats() cache.Stats { return m.l1.Stats() }

// L2Stats returns the second-level cache statistics.
func (m *Model) L2Stats() cache.Stats { return m.l2.Stats() }
