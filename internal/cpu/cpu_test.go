package cpu

import (
	"math"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/trace"
)

func fdivEvent(a, b float64) trace.Event {
	return trace.Event{Op: isa.OpFDiv, A: math.Float64bits(a), B: math.Float64bits(b)}
}

func TestBaselineChargesFullLatencies(t *testing.T) {
	proc := isa.FastFP() // fdiv 13, fmul 3
	m := New(proc)
	m.Emit(fdivEvent(7, 3))
	m.Emit(trace.Event{Op: isa.OpFMul, A: math.Float64bits(2), B: math.Float64bits(3)})
	m.Emit(trace.Event{Op: isa.OpIAlu})
	if m.Cycles() != 13+3+1 {
		t.Fatalf("cycles = %d, want 17", m.Cycles())
	}
	if m.ClassCycles(isa.OpFDiv) != 13 || m.ClassCount(isa.OpFDiv) != 1 {
		t.Fatalf("fdiv accounting wrong")
	}
	if m.SavedCycles() != 0 {
		t.Fatal("baseline saved cycles")
	}
}

func TestMemoHitTakesOneCycle(t *testing.T) {
	proc := isa.FastFP()
	u := memo.NewUnit(memo.New(isa.OpFDiv, memo.Paper32x4()), memo.NonTrivialOnly, nil)
	m := New(proc, u)
	m.Emit(fdivEvent(7, 3)) // miss: 13 cycles
	m.Emit(fdivEvent(7, 3)) // hit: 1 cycle
	if m.Cycles() != 14 {
		t.Fatalf("cycles = %d, want 14", m.Cycles())
	}
	if m.SavedCycles() != 12 {
		t.Fatalf("saved = %d, want 12", m.SavedCycles())
	}
}

func TestTrivialLatencyByPolicy(t *testing.T) {
	proc := isa.FastFP()
	// NonTrivialOnly: trivial op still occupies the divider.
	u1 := memo.NewUnit(memo.New(isa.OpFDiv, memo.Paper32x4()), memo.NonTrivialOnly, nil)
	m1 := New(proc, u1)
	m1.Emit(fdivEvent(7, 1))
	if m1.Cycles() != 13 {
		t.Fatalf("non-trivial-only: %d cycles, want 13", m1.Cycles())
	}
	// Integrated: detector answers in one cycle.
	u2 := memo.NewUnit(memo.New(isa.OpFDiv, memo.Paper32x4()), memo.Integrated, nil)
	m2 := New(proc, u2)
	m2.Emit(fdivEvent(7, 1))
	if m2.Cycles() != 1 {
		t.Fatalf("integrated: %d cycles, want 1", m2.Cycles())
	}
}

func TestMemoryHierarchyLatencies(t *testing.T) {
	proc := isa.FastFP() // L1 1, L2 6, Mem 30
	m := New(proc)
	m.Emit(trace.Event{Op: isa.OpLoad, A: 0x1000}) // cold: memory
	m.Emit(trace.Event{Op: isa.OpLoad, A: 0x1000}) // L1 hit
	if m.Cycles() != 30+1 {
		t.Fatalf("cycles = %d, want 31", m.Cycles())
	}
	// Evict from L1 but not L2, then reload: L2 hit. L1 is 16K 2-way with
	// 32B lines: lines 16K/2=8K apart collide; three of them overflow the
	// 2 ways.
	m2 := New(proc)
	m2.Emit(trace.Event{Op: isa.OpLoad, A: 0})
	m2.Emit(trace.Event{Op: isa.OpLoad, A: 8 * 1024})
	m2.Emit(trace.Event{Op: isa.OpLoad, A: 16 * 1024})
	base := m2.Cycles()
	m2.Emit(trace.Event{Op: isa.OpLoad, A: 0}) // L1 evicted, L2 has it
	if got := m2.Cycles() - base; got != 6 {
		t.Fatalf("L2 hit cost %d, want 6", got)
	}
	if m2.L1Stats().Accesses != 4 || m2.L2Stats().Accesses != 4 {
		t.Fatalf("cache stats: L1 %+v L2 %+v", m2.L1Stats(), m2.L2Stats())
	}
}

func TestFractionEnhanced(t *testing.T) {
	proc := isa.FastFP()
	m := New(proc)
	for i := 0; i < 10; i++ {
		m.Emit(trace.Event{Op: isa.OpIAlu})
	}
	m.Emit(fdivEvent(7, 3)) // 13 cycles of 23 total
	want := 13.0 / 23.0
	if got := m.Fraction(isa.OpFDiv); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Fraction = %g, want %g", got, want)
	}
	if got := m.Fraction(isa.OpFDiv, isa.OpIAlu); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full fraction = %g", got)
	}
}

func TestSpeedupEndToEnd(t *testing.T) {
	// A loop reusing 4 divisor pairs: the memo machine must beat baseline,
	// and the ratio must equal baseline/enhanced cycles.
	proc := isa.SlowFP() // fdiv 39
	events := make([]trace.Event, 0, 400)
	for i := 0; i < 100; i++ {
		events = append(events, fdivEvent(float64(i%4)+2, 7))
		events = append(events, trace.Event{Op: isa.OpIAlu})
	}
	base := New(proc)
	enh := New(proc, memo.NewUnit(memo.New(isa.OpFDiv, memo.Paper32x4()), memo.NonTrivialOnly, nil))
	for _, ev := range events {
		base.Emit(ev)
		enh.Emit(ev)
	}
	if base.Cycles() != 100*40 {
		t.Fatalf("baseline cycles %d", base.Cycles())
	}
	// 4 misses (39 each), 96 hits (1 each), 100 ialu.
	wantEnh := uint64(4*39 + 96*1 + 100)
	if enh.Cycles() != wantEnh {
		t.Fatalf("enhanced cycles %d, want %d", enh.Cycles(), wantEnh)
	}
	if enh.SavedCycles() != base.Cycles()-enh.Cycles() {
		t.Fatalf("saved %d vs delta %d", enh.SavedCycles(), base.Cycles()-enh.Cycles())
	}
	if enh.Unit(isa.OpFDiv) == nil || enh.Unit(isa.OpFMul) != nil {
		t.Fatal("unit wiring wrong")
	}
}

func TestModelIgnoresNilUnits(t *testing.T) {
	m := New(isa.FastFP(), nil)
	m.Emit(fdivEvent(1, 3))
	if m.Cycles() != 13 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
}
