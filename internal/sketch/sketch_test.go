package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(1024, 4, 7)
	exact := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		key := uint64(rng.Intn(5000))
		cm.Add(key)
		exact[key]++
	}
	for key, want := range exact {
		if got := cm.Count(key); got < want {
			t.Fatalf("key %d: count-min %d under-counts exact %d", key, got, want)
		}
	}
	if cm.Count(0xdeadbeefdeadbeef) > 1000 {
		t.Fatalf("absent heavy key estimate implausibly large: %d", cm.Count(0xdeadbeefdeadbeef))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Sample 1k of a 100k-element stream of keys 0..9; each key should
	// hold close to a tenth of the sample.
	r := NewReservoir(1000, 42)
	for i := 0; i < 100000; i++ {
		r.Observe(uint64(i % 10))
	}
	if r.Seen() != 100000 || r.Len() != 1000 {
		t.Fatalf("seen=%d len=%d", r.Seen(), r.Len())
	}
	counts := make(map[uint64]int)
	for _, k := range r.Sample() {
		counts[k]++
	}
	for k := uint64(0); k < 10; k++ {
		if counts[k] < 50 || counts[k] > 150 {
			t.Fatalf("key %d holds %d of 1000 samples, want ≈100", k, counts[k])
		}
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(64, 9), NewReservoir(64, 9)
	for i := 0; i < 10000; i++ {
		key := mix64(uint64(i))
		a.Observe(key)
		b.Observe(key)
	}
	for i, k := range a.Sample() {
		if b.Sample()[i] != k {
			t.Fatalf("same-seed reservoirs diverged at %d", i)
		}
	}
}

// The headline bound: the sketch estimate of the reuse ratio must land
// within 5 percentage points of the exact value computed with unbounded
// memory, across stream shapes from almost-all-distinct to heavily
// repetitive, across seeds. (The satellite differential against a real
// replayed trace lives in internal/experiments.)
func TestReuseRatioErrorBound(t *testing.T) {
	const tolerance = 0.05
	streams := []struct {
		name string
		gen  func(rng *rand.Rand, n int) []uint64
	}{
		{"mostly distinct", func(rng *rand.Rand, n int) []uint64 {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64() // collisions ≈ 0: reuse ≈ 0
			}
			return keys
		}},
		{"small key space", func(rng *rand.Rand, n int) []uint64 {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = uint64(rng.Intn(2000)) // reuse ≈ 1 - 2000/n
			}
			return keys
		}},
		{"zipf", func(rng *rand.Rand, n int) []uint64 {
			z := rand.NewZipf(rng, 1.2, 1, 1<<20)
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = z.Uint64()
			}
			return keys
		}},
		{"half and half", func(rng *rand.Rand, n int) []uint64 {
			keys := make([]uint64, n)
			for i := range keys {
				if i%2 == 0 {
					keys[i] = rng.Uint64()
				} else {
					keys[i] = uint64(rng.Intn(100))
				}
			}
			return keys
		}},
	}
	for _, st := range streams {
		for seed := int64(1); seed <= 3; seed++ {
			keys := st.gen(rand.New(rand.NewSource(seed)), 200000)
			est := NewDefaultReuseEstimator(uint64(seed))
			distinct := make(map[uint64]bool, len(keys))
			for _, k := range keys {
				est.Observe(k)
				distinct[k] = true
			}
			exact := 1 - float64(len(distinct))/float64(len(keys))
			got := est.ReuseRatio()
			if math.IsNaN(got) {
				t.Fatalf("%s seed %d: estimate is NaN", st.name, seed)
			}
			if diff := math.Abs(got - exact); diff > tolerance {
				t.Errorf("%s seed %d: sketch reuse %.4f vs exact %.4f (|err| %.4f > %.2f)",
					st.name, seed, got, exact, diff, tolerance)
			}
		}
	}
}

func TestReuseRatioEdgeCases(t *testing.T) {
	est := NewDefaultReuseEstimator(1)
	if !math.IsNaN(est.ReuseRatio()) {
		t.Fatalf("empty estimator reuse = %v, want NaN", est.ReuseRatio())
	}
	est.Observe(7)
	if r := est.ReuseRatio(); r != 0 {
		t.Fatalf("single observation reuse = %v, want 0", r)
	}
	for i := 0; i < 9999; i++ {
		est.Observe(7)
	}
	if r := est.ReuseRatio(); r < 0.99 {
		t.Fatalf("constant stream reuse = %v, want ≈ .9999", r)
	}
	if est.Bytes() <= 0 || est.Bytes() > 4<<20 {
		t.Fatalf("estimator footprint %d bytes out of expected range", est.Bytes())
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	a, b := NewDefaultReuseEstimator(3), NewDefaultReuseEstimator(3)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(10000))
		a.Observe(k)
		b.Observe(k)
	}
	if a.ReuseRatio() != b.ReuseRatio() {
		t.Fatalf("same-seed estimators disagree: %v vs %v", a.ReuseRatio(), b.ReuseRatio())
	}
}

func TestKey3Distinguishes(t *testing.T) {
	// Operand order, op class, and operand values must all separate keys.
	pairs := [][3]uint64{{1, 2, 3}, {2, 2, 3}, {1, 3, 2}, {1, 2, 4}, {3, 2, 3}}
	seen := make(map[uint64]bool)
	for _, p := range pairs {
		k := Key3(uint8(p[0]), p[1], p[2])
		if seen[k] {
			t.Fatalf("collision for %v", p)
		}
		seen[k] = true
	}
	if Key3(1, 2, 3) != Key3(1, 2, 3) {
		t.Fatalf("Key3 not deterministic")
	}
}
