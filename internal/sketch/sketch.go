// Package sketch holds the bounded-memory stream summaries the live
// ingest path falls back on when exact accounting would outgrow its byte
// budget: a count-min sketch for operand-pair reuse counts and a
// reservoir sample of operand pairs, composed into an estimator for the
// stream's reuse ratio — the fraction of operations whose operand pair
// has appeared before, which is the hit ratio an unbounded MEMO-TABLE
// would achieve on the stream.
//
// The estimator is the classical combination the streaming literature
// suggests for distribution-driven operand traffic: sample events
// uniformly with a reservoir, look up each sampled pair's total
// frequency f in the count-min sketch, and estimate the distinct-pair
// count as D = N/|S| * Σ 1/f (an event picked uniformly from the stream
// lands on a pair with f occurrences with probability f/N, so E[1/f] =
// D/N). The reuse ratio is then 1 - D/N. A Σ1/f estimator is brutally
// sensitive to over-counting rare pairs — the raw count-min minimum
// inflates an f=1 pair by the full per-row collision mass and can halve
// D — so the sketch uses conservative updates and the estimator reads
// collision-corrected counts (see CorrectedCount); the reservoir
// contributes zero-mean sampling noise of order 1/sqrt(|S|). The
// combined error is pinned by an error-bound test against exact
// counting across stream shapes.
//
// Everything is deterministic: hashing is seeded splitmix-style mixing,
// and the reservoir draws from its own seeded generator, so two ingests
// of the same stream report identical estimates.
package sketch

import (
	"math"
	"sort"
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer used for sketch row hashing and the reservoir's PRNG.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Key3 folds an (op, a, b) operand triple into one sketch key. Engine
// and experiment code share it so their sketches agree on identity.
func Key3(op uint8, a, b uint64) uint64 {
	return mix64(mix64(a^0x9e3779b97f4a7c15*uint64(op+1)) ^ mix64(b+0xd1b54a32d192ed03))
}

// CountMin is a count-min sketch: depth rows of width counters; Add
// increments one counter per row, Count takes the minimum. Estimates
// never under-count; they over-count by the row's collision mass.
type CountMin struct {
	width, depth int
	n            uint64   // total Adds
	rowSum       []uint64 // per-row counter mass, the collision-noise denominator
	rows         [][]uint64
	seeds        []uint64
	idx          []uint64 // per-Add scratch for the conservative update
}

// NewCountMin builds a sketch of the given geometry. Width and depth
// must be positive; width is the error knob (ε ≈ e/width of the stream
// length), depth the confidence knob.
func NewCountMin(width, depth int, seed uint64) *CountMin {
	if width <= 0 || depth <= 0 {
		panic("sketch: count-min geometry must be positive")
	}
	c := &CountMin{width: width, depth: depth}
	c.rows = make([][]uint64, depth)
	c.seeds = make([]uint64, depth)
	c.rowSum = make([]uint64, depth)
	c.idx = make([]uint64, depth)
	for i := range c.rows {
		c.rows[i] = make([]uint64, width)
		c.seeds[i] = mix64(seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	return c
}

// Add records one occurrence of key, with the conservative-update rule:
// only counters equal to the key's current minimum estimate grow, so a
// collision inflates a counter only when it is the binding one. This
// keeps the no-under-count guarantee while shrinking collision noise by
// roughly the depth.
func (c *CountMin) Add(key uint64) {
	c.n++
	min := uint64(math.MaxUint64)
	for i, row := range c.rows {
		c.idx[i] = mix64(key^c.seeds[i]) % uint64(c.width)
		if n := row[c.idx[i]]; n < min {
			min = n
		}
	}
	for i, row := range c.rows {
		if row[c.idx[i]] == min {
			row[c.idx[i]]++
			c.rowSum[i]++
		}
	}
}

// Count returns the (never under-counting) frequency estimate for key.
func (c *CountMin) Count(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for i, row := range c.rows {
		if n := row[mix64(key^c.seeds[i])%uint64(c.width)]; n < min {
			min = n
		}
	}
	return min
}

// CorrectedCount returns a nearly unbiased frequency estimate for a key
// known to be present (the count-mean-min estimator): each row's counter
// minus that row's expected collision mass (n-counter)/(width-1), the
// median across rows, clamped to [1, Count(key)]. The plain min estimate
// never under-counts but inflates rare keys by the full collision mass,
// which a Σ1/f distinct estimator cannot tolerate; subtracting the
// expected mass removes that bias while the clamp keeps the estimate
// inside the sketch's hard bounds.
func (c *CountMin) CorrectedCount(key uint64) float64 {
	vals := make([]float64, 0, 8)
	min := uint64(math.MaxUint64)
	for i, row := range c.rows {
		counter := row[mix64(key^c.seeds[i])%uint64(c.width)]
		if counter < min {
			min = counter
		}
		noise := float64(c.rowSum[i]-counter) / float64(c.width-1)
		vals = append(vals, float64(counter)-noise)
	}
	est := median(vals)
	if est < 1 {
		est = 1
	}
	if fmin := float64(min); est > fmin {
		est = fmin
	}
	return est
}

// median returns the middle of vals (mean of the central pair for even
// lengths), permuting vals in place.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// Bytes returns the sketch's counter memory.
func (c *CountMin) Bytes() int { return c.width * c.depth * 8 }

// Reservoir keeps a uniform sample of k keys from a stream of unknown
// length (Vitter's algorithm R), drawing from a seeded splitmix
// generator so the sample is a pure function of (seed, stream).
type Reservoir struct {
	k      int
	n      uint64
	sample []uint64
	state  uint64
}

// NewReservoir builds a reservoir holding at most k sampled keys.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k <= 0 {
		panic("sketch: reservoir size must be positive")
	}
	return &Reservoir{k: k, sample: make([]uint64, 0, k), state: mix64(seed ^ 0x5851f42d4c957f2d)}
}

// next advances the reservoir's PRNG.
func (r *Reservoir) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Observe offers one stream element to the sample. The i-th element
// survives with probability k/i; modulo bias is negligible against the
// estimator's sampling noise.
func (r *Reservoir) Observe(key uint64) {
	r.n++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, key)
		return
	}
	if j := r.next() % r.n; j < uint64(r.k) {
		r.sample[j] = key
	}
}

// Len returns the current sample size; Seen the stream length observed.
func (r *Reservoir) Len() int { return len(r.sample) }

// Seen returns the number of elements observed.
func (r *Reservoir) Seen() uint64 { return r.n }

// Sample exposes the sampled keys (read-only; the estimator iterates it).
func (r *Reservoir) Sample() []uint64 { return r.sample }

// ReuseEstimator estimates a stream's distinct-pair count and reuse
// ratio in bounded memory: every key feeds the count-min sketch, a
// reservoir keeps a uniform event sample, and the two combine into
// D = N/|S| * Σ_{s∈S} 1/f(s).
type ReuseEstimator struct {
	cm  *CountMin
	res *Reservoir
	n   uint64
}

// Default estimator geometry: 64Ki counters × 4 rows (2 MiB) bounds the
// per-row collision mass at e/65536 of the stream, and 4096 samples put
// the reservoir's noise near 1/sqrt(4096) ≈ 1.6%.
const (
	DefaultWidth   = 64 << 10
	DefaultDepth   = 4
	DefaultSamples = 4096
)

// NewReuseEstimator builds an estimator with the given count-min
// geometry and reservoir size.
func NewReuseEstimator(width, depth, samples int, seed uint64) *ReuseEstimator {
	return &ReuseEstimator{
		cm:  NewCountMin(width, depth, seed),
		res: NewReservoir(samples, seed+0x6a09e667f3bcc909),
	}
}

// NewDefaultReuseEstimator builds an estimator with the default
// geometry, seeded deterministically.
func NewDefaultReuseEstimator(seed uint64) *ReuseEstimator {
	return NewReuseEstimator(DefaultWidth, DefaultDepth, DefaultSamples, seed)
}

// Observe records one stream element.
func (e *ReuseEstimator) Observe(key uint64) {
	e.n++
	e.cm.Add(key)
	e.res.Observe(key)
}

// Events returns the number of elements observed.
func (e *ReuseEstimator) Events() uint64 { return e.n }

// Bytes returns the estimator's memory footprint — constant in the
// stream length, which is the whole point.
func (e *ReuseEstimator) Bytes() int { return e.cm.Bytes() + cap(e.res.sample)*8 }

// Distinct estimates the number of distinct keys observed.
func (e *ReuseEstimator) Distinct() float64 {
	s := e.res.Sample()
	if len(s) == 0 {
		return 0
	}
	var inv float64
	for _, key := range s {
		inv += 1 / e.cm.CorrectedCount(key)
	}
	return float64(e.n) * inv / float64(len(s))
}

// ReuseRatio estimates the fraction of observations whose key had
// appeared before — the hit ratio of an unbounded memo table over the
// stream. NaN before any observation.
func (e *ReuseEstimator) ReuseRatio() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	r := 1 - e.Distinct()/float64(e.n)
	if r < 0 {
		return 0
	}
	return r
}
