// Package fitting provides least-squares curve fitting: a closed-form
// linear fit and the Marquardt–Levenberg nonlinear fitter the paper used
// for the Figure 2 best-fit lines relating hit ratio to image entropy.
package fitting

import (
	"errors"
	"math"
)

// ErrSingular reports an unsolvable normal-equation system.
var ErrSingular = errors.New("fitting: singular system")

// ErrNoConverge reports that Levenberg–Marquardt hit its iteration budget
// without meeting the tolerance.
var ErrNoConverge = errors.New("fitting: no convergence")

// LinearFit computes the ordinary least-squares line y = a + b*x.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		panic("fitting: LinearFit length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0, 0, ErrSingular
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if math.Abs(det) < 1e-12*math.Max(1, n*sxx) {
		return 0, 0, ErrSingular
	}
	b = (n*sxy - sx*sy) / det
	a = (sy - b*sx) / n
	return a, b, nil
}

// Model is a parametric curve y = f(x; p).
type Model func(x float64, p []float64) float64

// Line is the two-parameter model p[0] + p[1]*x, the form of the paper's
// Figure 2 fit.
func Line(x float64, p []float64) float64 { return p[0] + p[1]*x }

// Levenberg fits model parameters to (xs, ys) by the Marquardt–Levenberg
// algorithm with a numerically differentiated Jacobian, starting from p0.
// It returns the fitted parameters and the residual sum of squares.
func Levenberg(model Model, xs, ys, p0 []float64) ([]float64, float64, error) {
	if len(xs) != len(ys) {
		panic("fitting: Levenberg length mismatch")
	}
	if len(xs) < len(p0) {
		return nil, 0, ErrSingular
	}
	p := append([]float64(nil), p0...)
	np := len(p)
	lambda := 1e-3
	rss := residualSS(model, xs, ys, p)

	const (
		maxIter = 200
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		// Build J^T J and J^T r with a forward-difference Jacobian.
		jtj := make([][]float64, np)
		for i := range jtj {
			jtj[i] = make([]float64, np)
		}
		jtr := make([]float64, np)
		grad := make([]float64, np)
		for k := range xs {
			f0 := model(xs[k], p)
			r := ys[k] - f0
			for i := 0; i < np; i++ {
				h := 1e-7 * math.Max(1, math.Abs(p[i]))
				p[i] += h
				grad[i] = (model(xs[k], p) - f0) / h
				p[i] -= h
			}
			for i := 0; i < np; i++ {
				jtr[i] += grad[i] * r
				for j := 0; j <= i; j++ {
					jtj[i][j] += grad[i] * grad[j]
				}
			}
		}
		for i := 0; i < np; i++ {
			for j := i + 1; j < np; j++ {
				jtj[i][j] = jtj[j][i]
			}
		}

		// Damped step: (J^T J + lambda*diag) dp = J^T r.
		improved := false
		for attempt := 0; attempt < 30; attempt++ {
			aug := make([][]float64, np)
			for i := range aug {
				aug[i] = append([]float64(nil), jtj[i]...)
				aug[i][i] *= 1 + lambda
				if aug[i][i] == 0 {
					aug[i][i] = lambda
				}
			}
			dp, err := solve(aug, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			cand := make([]float64, np)
			for i := range cand {
				cand[i] = p[i] + dp[i]
			}
			crss := residualSS(model, xs, ys, cand)
			if crss < rss {
				rel := (rss - crss) / math.Max(rss, 1e-300)
				p, rss = cand, crss
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < tol {
					return p, rss, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			// Damping saturated: we are at a (local) minimum.
			return p, rss, nil
		}
	}
	return p, rss, ErrNoConverge
}

func residualSS(model Model, xs, ys, p []float64) float64 {
	var s float64
	for i := range xs {
		r := ys[i] - model(xs[i], p)
		s += r * r
	}
	return s
}

// solve performs Gaussian elimination with partial pivoting on a copy-safe
// augmented system A x = b. A is modified.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		x[col], x[piv] = x[piv], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back-substitute.
	for col := n - 1; col >= 0; col-- {
		for c := col + 1; c < n; c++ {
			x[col] -= a[col][c] * x[c]
		}
		x[col] /= a[col][col]
	}
	return x, nil
}
