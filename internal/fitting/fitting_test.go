package fitting

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5 - 0.05*x // the paper's ~5%/bit slope shape
	}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2.5) > 1e-12 || math.Abs(b+0.05) > 1e-12 {
		t.Fatalf("fit = %g + %g x", a, b)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 8
		xs = append(xs, x)
		ys = append(ys, 0.8-0.05*x+0.01*(rng.Float64()-0.5))
	}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.8) > 0.01 || math.Abs(b+0.05) > 0.005 {
		t.Fatalf("fit = %g + %g x", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point fit succeeded")
	}
	if _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("vertical data fit succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	LinearFit([]float64{1, 2}, []float64{1})
}

func TestLevenbergLineMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 8
		xs = append(xs, x)
		ys = append(ys, 0.9-0.06*x+0.02*(rng.Float64()-0.5))
	}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	p, rss, err := Levenberg(Line, xs, ys, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-a) > 1e-5 || math.Abs(p[1]-b) > 1e-5 {
		t.Fatalf("LM (%g,%g) vs OLS (%g,%g)", p[0], p[1], a, b)
	}
	if rss < 0 {
		t.Fatal("negative RSS")
	}
}

func TestLevenbergNonlinearExponential(t *testing.T) {
	model := func(x float64, p []float64) float64 {
		return p[0] * math.Exp(p[1]*x)
	}
	var xs, ys []float64
	for i := 0; i <= 40; i++ {
		x := float64(i) / 5
		xs = append(xs, x)
		ys = append(ys, 3*math.Exp(-0.7*x))
	}
	p, rss, err := Levenberg(model, xs, ys, []float64{1, -0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-3) > 1e-4 || math.Abs(p[1]+0.7) > 1e-4 {
		t.Fatalf("fit = %v (rss %g)", p, rss)
	}
}

func TestLevenbergUnderdetermined(t *testing.T) {
	if _, _, err := Levenberg(Line, []float64{1}, []float64{2}, []float64{0, 0}); err == nil {
		t.Error("underdetermined fit succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Levenberg(Line, []float64{1, 2}, []float64{1}, []float64{0, 0})
}

func TestSolve(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	x, err := solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solve = %v", x)
	}
	// Singular.
	if _, err := solve([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Error("singular solve succeeded")
	}
	// Needs pivoting.
	b := [][]float64{{0, 1}, {1, 0}}
	x, err = solve(b, []float64{7, 9})
	if err != nil || x[0] != 9 || x[1] != 7 {
		t.Fatalf("pivoted solve = %v, %v", x, err)
	}
}
