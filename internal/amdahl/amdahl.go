// Package amdahl implements the speedup algebra of the paper's §3.3.
//
// Amdahl's law: with a fraction FE of execution able to use an enhancement
// that speeds that fraction up by SE,
//
//	T_new = T_old * ((1-FE) + FE/SE)
//
// For a MEMO-TABLE on a dc-cycle unit with hit ratio hr, the enhanced
// portion runs at
//
//	SE = dc / ((1-hr)*dc + hr)
//
// since hits complete in one cycle and misses still take dc.
package amdahl

import "fmt"

// SpeedupEnhanced returns SE for a dc-cycle operation memoized with hit
// ratio hr. It panics for dc < 1 or hr outside [0, 1].
func SpeedupEnhanced(dc int, hr float64) float64 {
	if dc < 1 {
		panic(fmt.Sprintf("amdahl: latency %d < 1", dc))
	}
	if hr < 0 || hr > 1 {
		panic(fmt.Sprintf("amdahl: hit ratio %g outside [0,1]", hr))
	}
	d := float64(dc)
	return d / ((1-hr)*d + hr)
}

// Speedup returns T_old/T_new given FE and SE. FE must lie in [0, 1] and
// SE must be >= 1 (an enhancement cannot slow its portion down — the
// MEMO-TABLE's failed lookup carries no penalty).
func Speedup(fe, se float64) float64 {
	if fe < 0 || fe > 1 {
		panic(fmt.Sprintf("amdahl: FE %g outside [0,1]", fe))
	}
	if se < 1 {
		panic(fmt.Sprintf("amdahl: SE %g < 1", se))
	}
	return 1 / ((1 - fe) + fe/se)
}

// NewTime returns T_new for an old time told.
func NewTime(told, fe, se float64) float64 {
	return told * ((1 - fe) + fe/se)
}

// Combined composes several enhanced fractions (disjoint classes, e.g. the
// fmul and fdiv units of Table 13) into one overall speedup:
//
//	T_new/T_old = (1 - sum FE_i) + sum FE_i/SE_i
func Combined(fes, ses []float64) float64 {
	if len(fes) != len(ses) {
		panic("amdahl: Combined length mismatch")
	}
	rem := 1.0
	t := 0.0
	for i := range fes {
		if fes[i] < 0 || fes[i] > 1 {
			panic(fmt.Sprintf("amdahl: FE %g outside [0,1]", fes[i]))
		}
		if ses[i] < 1 {
			panic(fmt.Sprintf("amdahl: SE %g < 1", ses[i]))
		}
		rem -= fes[i]
		t += fes[i] / ses[i]
	}
	if rem < -1e-9 {
		panic("amdahl: enhanced fractions exceed 1")
	}
	if rem < 0 {
		rem = 0
	}
	return 1 / (rem + t)
}
