package amdahl

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) < tol }

func TestSpeedupEnhancedKnownPoints(t *testing.T) {
	// Paper Table 11, vspatial: hr=.94, dc=13 -> SE=7.55; dc=39 -> 11.89.
	if se := SpeedupEnhanced(13, 0.94); !close(se, 7.55, 0.01) {
		t.Errorf("SE(13,.94) = %g, want 7.55", se)
	}
	if se := SpeedupEnhanced(39, 0.94); !close(se, 11.89, 0.01) {
		t.Errorf("SE(39,.94) = %g, want 11.89", se)
	}
	// Table 12, venhance: hr=.57, dc=3 -> 1.61; dc=5 -> 1.84.
	if se := SpeedupEnhanced(3, 0.57); !close(se, 1.61, 0.01) {
		t.Errorf("SE(3,.57) = %g, want 1.61", se)
	}
	if se := SpeedupEnhanced(5, 0.57); !close(se, 1.84, 0.01) {
		t.Errorf("SE(5,.57) = %g, want 1.84", se)
	}
}

func TestSpeedupEnhancedLimits(t *testing.T) {
	if SpeedupEnhanced(13, 0) != 1 {
		t.Error("hr=0 must give SE=1")
	}
	if SpeedupEnhanced(13, 1) != 13 {
		t.Error("hr=1 must give SE=dc")
	}
	mustPanic(t, func() { SpeedupEnhanced(0, 0.5) })
	mustPanic(t, func() { SpeedupEnhanced(13, -0.1) })
	mustPanic(t, func() { SpeedupEnhanced(13, 1.1) })
}

func TestSpeedupKnownPoints(t *testing.T) {
	// Paper Table 11, vgauss at 39 cycles: FE=.346, SE=4.34 -> 1.36.
	if s := Speedup(0.346, 4.34); !close(s, 1.36, 0.01) {
		t.Errorf("Speedup = %g, want 1.36", s)
	}
	if Speedup(0, 5) != 1 {
		t.Error("FE=0 must give 1")
	}
	if !close(Speedup(1, 5), 5, 1e-12) {
		t.Error("FE=1 must give SE")
	}
	mustPanic(t, func() { Speedup(-0.1, 2) })
	mustPanic(t, func() { Speedup(0.5, 0.9) })
}

func TestNewTime(t *testing.T) {
	told := 1000.0
	tnew := NewTime(told, 0.25, 2)
	if !close(tnew, 875, 1e-9) {
		t.Errorf("NewTime = %g", tnew)
	}
	if !close(told/tnew, Speedup(0.25, 2), 1e-12) {
		t.Error("NewTime inconsistent with Speedup")
	}
}

func TestCombined(t *testing.T) {
	// Single class must agree with Speedup.
	if !close(Combined([]float64{0.3}, []float64{2}), Speedup(0.3, 2), 1e-12) {
		t.Error("Combined(1) != Speedup")
	}
	// Two classes: denominator (1-.2-.3) + .2/2 + .3/3 = .5+.1+.1 = .7.
	if !close(Combined([]float64{0.2, 0.3}, []float64{2, 3}), 1/0.7, 1e-12) {
		t.Error("Combined(2) wrong")
	}
	mustPanic(t, func() { Combined([]float64{0.5}, []float64{2, 3}) })
	mustPanic(t, func() { Combined([]float64{0.7, 0.7}, []float64{2, 2}) })
}

func TestSpeedupMonotoneProperties(t *testing.T) {
	// Higher hit ratio never reduces SE; higher FE never reduces speedup.
	f := func(hr1, hr2, fe float64) bool {
		h1 := math.Mod(math.Abs(hr1), 1)
		h2 := math.Mod(math.Abs(hr2), 1)
		fe = math.Mod(math.Abs(fe), 1)
		if h1 > h2 {
			h1, h2 = h2, h1
		}
		se1, se2 := SpeedupEnhanced(13, h1), SpeedupEnhanced(13, h2)
		if se2 < se1 {
			return false
		}
		return Speedup(fe, se2) >= Speedup(fe, se1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
