// Package reuse implements the Dynamic Instruction Reuse buffer of
// Sodani & Sohi (ISCA 1997), the general-purpose value-reuse scheme the
// paper differentiates itself from in §1.1. A Reuse Buffer (RB) is
// indexed by the *instruction's address*: an entry holds the PC, the
// operand values and the result, and a fetch whose PC and operands match
// skips execution.
//
// The paper's two arguments against the RB for multi-cycle arithmetic are
// implemented and measurable here:
//
//  1. the RB records every instruction class, so single-cycle operations
//     bump multi-cycle ones out of the buffer;
//  2. the RB keys on the address, so a compiler-unrolled loop executes
//     the same computation at several PCs and misses where a value-keyed
//     MEMO-TABLE hits.
package reuse

import (
	"fmt"

	"memotable/internal/isa"
)

// Instruction is one dynamic instruction as the reuse buffer sees it:
// its static address and its operand values.
type Instruction struct {
	PC   uint64
	Op   isa.Op
	A, B uint64
}

// Stats counts buffer events.
type Stats struct {
	Fetches   uint64 // instructions presented
	Hits      uint64 // PC and operands matched: execution skipped
	PCMisses  uint64 // no entry for this PC in the indexed set
	ValMisses uint64 // PC matched but operands differed
	Evictions uint64
}

// HitRatio returns Hits/Fetches.
func (s Stats) HitRatio() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// Buffer is a set-associative reuse buffer with LRU replacement, indexed
// by PC bits (instructions, unlike operand values, index by address).
type Buffer struct {
	numSets int
	ways    int
	sets    [][]entry // MRU-first
	stats   Stats
	// OnlyOps, when non-nil, restricts insertion to the listed classes —
	// the hybrid the paper's first critique suggests. All classes still
	// count as fetches.
	only map[isa.Op]bool
}

type entry struct {
	pc     uint64
	a, b   uint64
	result uint64
	valid  bool
}

// New builds a reuse buffer with entries/ways geometry. Entries must be a
// power of two and divisible by ways.
func New(entries, ways int) *Buffer {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("reuse: entries %d not a positive power of two", entries))
	}
	if ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("reuse: bad associativity %d for %d entries", ways, entries))
	}
	numSets := entries / ways
	if numSets&(numSets-1) != 0 {
		panic("reuse: set count not a power of two")
	}
	b := &Buffer{numSets: numSets, ways: ways}
	b.sets = make([][]entry, numSets)
	backing := make([]entry, entries)
	for i := range b.sets {
		b.sets[i], backing = backing[:ways], backing[ways:]
	}
	return b
}

// Restrict limits insertion to the given classes (the memo-like hybrid).
func (b *Buffer) Restrict(ops ...isa.Op) {
	b.only = make(map[isa.Op]bool, len(ops))
	for _, op := range ops {
		b.only[op] = true
	}
}

// Stats returns a snapshot of the counters.
func (b *Buffer) Stats() Stats { return b.stats }

// index hashes a PC to its set: word-aligned instruction addresses use
// the low bits above the alignment.
func (b *Buffer) index(pc uint64) int {
	return int((pc >> 2) & uint64(b.numSets-1))
}

// Fetch presents one dynamic instruction; compute supplies the execution
// result on a miss. It returns the result and whether execution was
// skipped.
func (b *Buffer) Fetch(ins Instruction, compute func() uint64) (uint64, bool) {
	b.stats.Fetches++
	set := b.sets[b.index(ins.PC)]
	pcSeen := false
	for w := range set {
		e := &set[w]
		if !e.valid || e.pc != ins.PC {
			continue
		}
		pcSeen = true
		if e.a == ins.A && e.b == ins.B {
			b.stats.Hits++
			res := e.result
			moveToFront(set, w)
			return res, true
		}
	}
	if pcSeen {
		b.stats.ValMisses++
	} else {
		b.stats.PCMisses++
	}
	res := compute()
	if b.only != nil && !b.only[ins.Op] {
		return res, false
	}
	last := len(set) - 1
	if set[last].valid {
		b.stats.Evictions++
	}
	copy(set[1:], set[:last])
	set[0] = entry{pc: ins.PC, a: ins.A, b: ins.B, result: res, valid: true}
	return res, false
}

func moveToFront(set []entry, w int) {
	e := set[w]
	copy(set[1:w+1], set[:w])
	set[0] = e
}
