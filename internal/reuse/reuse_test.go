package reuse

import (
	"testing"

	"memotable/internal/isa"
)

func ins(pc uint64, a, b uint64) Instruction {
	return Instruction{PC: pc, Op: isa.OpFMul, A: a, B: b}
}

func TestGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 1) },
		func() { New(3, 1) },
		func() { New(8, 0) },
		func() { New(8, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestHitRequiresPCAndOperands(t *testing.T) {
	b := New(32, 4)
	calls := 0
	compute := func() uint64 { calls++; return 42 }

	if _, hit := b.Fetch(ins(0x100, 1, 2), compute); hit {
		t.Fatal("cold fetch hit")
	}
	// Same PC, same operands: hit.
	if res, hit := b.Fetch(ins(0x100, 1, 2), compute); !hit || res != 42 {
		t.Fatal("exact repeat missed")
	}
	// Same PC, different operands: value miss.
	if _, hit := b.Fetch(ins(0x100, 1, 3), compute); hit {
		t.Fatal("different operands hit")
	}
	// Different PC, same operands: PC miss — the paper's unrolling
	// critique in miniature.
	if _, hit := b.Fetch(ins(0x104, 1, 2), compute); hit {
		t.Fatal("different PC hit")
	}
	st := b.Stats()
	if st.Fetches != 4 || st.Hits != 1 || st.ValMisses != 1 || st.PCMisses != 2 {
		t.Fatalf("stats %+v", st)
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times, want 3", calls)
	}
}

func TestSingleCycleOpsBumpMultiCycleOnes(t *testing.T) {
	// The paper's first critique: an unrestricted RB lets adds displace
	// multiplies. Five adds at conflicting PCs evict the one multiply in
	// a 1-way set; the restricted buffer keeps it.
	stride := uint64(32 * 4) // same set in an 8-set, 4-way buffer: (pc>>2)&7
	makeStream := func(b *Buffer) bool {
		mul := Instruction{PC: 0x1000, Op: isa.OpFMul, A: 7, B: 9}
		b.Fetch(mul, func() uint64 { return 63 })
		for i := uint64(1); i <= 4; i++ {
			add := Instruction{PC: 0x1000 + i*stride, Op: isa.OpIAlu, A: i, B: i}
			b.Fetch(add, func() uint64 { return 2 * i })
		}
		_, hit := b.Fetch(mul, func() uint64 { return 63 })
		return hit
	}
	plain := New(32, 4)
	if makeStream(plain) {
		t.Error("multiply survived in the unrestricted buffer despite conflicts")
	}
	restricted := New(32, 4)
	restricted.Restrict(isa.OpFMul, isa.OpFDiv, isa.OpIMul, isa.OpFSqrt)
	if !makeStream(restricted) {
		t.Error("restricted buffer lost the multiply")
	}
}

func TestLRUWithinSet(t *testing.T) {
	b := New(8, 2) // 4 sets, 2 ways
	stride := uint64(4 * 4)
	p0, p1, p2 := uint64(0x0), 0x0+stride, 0x0+2*stride
	b.Fetch(ins(p0, 1, 1), func() uint64 { return 0 })
	b.Fetch(ins(p1, 1, 1), func() uint64 { return 0 })
	b.Fetch(ins(p0, 1, 1), func() uint64 { return 0 }) // touch p0
	b.Fetch(ins(p2, 1, 1), func() uint64 { return 0 }) // evicts p1
	if _, hit := b.Fetch(ins(p0, 1, 1), func() uint64 { return 0 }); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := b.Fetch(ins(p1, 1, 1), func() uint64 { return 0 }); hit {
		t.Error("LRU entry survived")
	}
}

func TestHitRatioAccounting(t *testing.T) {
	b := New(8, 2)
	for i := 0; i < 10; i++ {
		b.Fetch(ins(0x40, 5, 6), func() uint64 { return 30 })
	}
	if hr := b.Stats().HitRatio(); hr != 0.9 {
		t.Fatalf("hit ratio %g, want 0.9", hr)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("empty ratio")
	}
}
