package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"memotable/internal/isa"
)

// Binary trace file format, version 1:
//
//	magic   "MTRC"                (4 bytes)
//	version uint8                 (1)
//	events  repeated {op uint8, a uvarint, b uvarint}
//
// The format is append-only and stream-decodable; operand patterns are
// varint-encoded because image-processing operands cluster in the low
// exponent range after XOR folding is applied by the reader's consumers.
//
// Version 2 (filev2.go) keeps the per-event encoding but groups events
// into CRC32C-checksummed, optionally compressed frames. Reader decodes
// both versions transparently; Writer emits v1, WriterV2 emits v2.

var magic = [4]byte{'M', 'T', 'R', 'C'}

const formatVersion = 1

// ErrBadTrace reports a corrupt or truncated trace stream.
var ErrBadTrace = errors.New("trace: corrupt or truncated stream")

// Writer encodes events to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	buf    [1 + 2*binary.MaxVarintLen64]byte
	count  uint64
	opened bool
}

// NewWriter starts a trace stream on w, writing the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw, opened: true}, nil
}

// Emit implements Sink. Encoding errors are deferred to Flush, matching
// bufio semantics.
func (w *Writer) Emit(ev Event) {
	w.count++
	w.buf[0] = byte(ev.Op)
	n := 1
	n += binary.PutUvarint(w.buf[n:], ev.A)
	n += binary.PutUvarint(w.buf[n:], ev.B)
	_, _ = w.w.Write(w.buf[:n]) // error deferred to Flush, bufio-style
}

// Count returns the number of events emitted.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered bytes and surfaces any deferred write error.
func (w *Writer) Flush() error {
	if !w.opened {
		return errors.New("trace: writer not initialized")
	}
	return w.w.Flush()
}

// Reader decodes a trace stream of either format version: the header's
// version byte selects the raw v1 event decoder or the checksummed v2
// frame decoder.
type Reader struct {
	r       *bufio.Reader
	count   uint64
	version uint8

	// v2 frame state (filev2.go).
	compressed bool
	frame      []byte
	fpos       int
	fEvents    uint32
}

// NewReader validates the header and prepares to decode events.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	switch hdr[4] {
	case formatVersion:
		return &Reader{r: br, version: formatVersion}, nil
	case formatVersionV2:
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: missing flags byte", ErrBadTrace)
		}
		if flags&^byte(flagFlate) != 0 {
			return nil, fmt.Errorf("%w: unknown flags %#02x", ErrBadTrace, flags)
		}
		return &Reader{r: br, version: formatVersionV2, compressed: flags&flagFlate != 0}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr[4])
	}
}

// Next decodes one event. It returns io.EOF at a clean end of stream and
// ErrBadTrace on corruption.
func (r *Reader) Next() (Event, error) {
	if r.version == formatVersionV2 {
		return r.nextV2()
	}
	opByte, err := r.r.ReadByte()
	if err == io.EOF {
		return Event{}, io.EOF
	}
	if err != nil {
		return Event{}, err
	}
	if opByte >= byte(isa.NumOps) {
		return Event{}, fmt.Errorf("%w: op byte %d", ErrBadTrace, opByte)
	}
	a, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, fmt.Errorf("%w: operand A: %v", ErrBadTrace, err)
	}
	b, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, fmt.Errorf("%w: operand B: %v", ErrBadTrace, err)
	}
	r.count++
	return Event{Op: isa.Op(opByte), A: a, B: b}, nil
}

// Count returns the number of events decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Replay streams every remaining event into sink, returning the count.
func (r *Reader) Replay(sink Sink) (uint64, error) {
	var n uint64
	for {
		ev, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Emit(ev)
		n++
	}
}
