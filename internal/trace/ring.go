package trace

import "sync"

// The fan-out handoff contract. A fused replay has one producer (the
// goroutine walking the decoded-block tier, or a live ingest session's
// frame decoder) and several consumers, each owning a disjoint set of
// sinks. The producer broadcasts each block through a bounded ring;
// every consumer observes every block, in publication order, so each
// sink still sees the exact event sequence a serial pass would deliver
// it. Blocks are handed over by reference: the producer guarantees a
// block's events stay immutable until the block is retired — forever for
// decoded-block replays, until Flush returns for streamed frames whose
// buffer the decoder reuses.

// Block is the unit of fan-out handoff: one immutable event block plus
// the union class mask of its events, so consumers can skip sinks whose
// advertised masks miss the whole block.
type Block struct {
	Events []Event
	Mask   OpMask
}

// Ring is a bounded single-producer multi-consumer broadcast ring. It is
// not a work queue: every consumer sees every published block. The
// producer blocks when it runs a full capacity ahead of the slowest
// consumer (counted as a stall), consumers block waiting for the next
// block, and either side can end the stream — the producer cleanly with
// Close, anyone abortively with Abort, whose error latches and wakes
// every waiter.
//
// A consumer's cursor advances only when its next Next call retires the
// previously returned block, so Flush (and Close-then-drain) prove that
// every consumer has fully processed every block, not merely received it.
type Ring struct {
	mu     sync.Mutex
	cond   *sync.Cond
	slots  []Block
	head   uint64   // blocks published so far
	tails  []uint64 // per-consumer blocks fully processed
	busy   []bool   // consumer holds the block at tails[i], still processing
	closed bool
	err    error // latched abort reason
	stalls uint64
}

// NewRing builds a ring with the given block capacity and consumer
// count. Both must be at least 1; the ring is fixed-shape for its
// lifetime.
func NewRing(capacity, consumers int) *Ring {
	if capacity < 1 || consumers < 1 {
		panic("trace: NewRing needs capacity >= 1 and consumers >= 1")
	}
	r := &Ring{
		slots: make([]Block, capacity),
		tails: make([]uint64, consumers),
		busy:  make([]bool, consumers),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// minTail returns the slowest consumer's processed count. Callers hold mu.
func (r *Ring) minTail() uint64 {
	min := r.tails[0]
	for _, t := range r.tails[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// Publish broadcasts one block to every consumer, waiting while the ring
// is a full capacity ahead of the slowest consumer. It returns the
// latched abort error if the ring has been aborted (before or while
// waiting), so a producer learns promptly that a consumer died.
func (r *Ring) Publish(b Block) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	stalled := false
	for {
		if r.err != nil {
			return r.err
		}
		if r.closed {
			// Publishing after Close is a programming error; report it
			// the abortive way rather than corrupting consumer state.
			r.err = errPublishAfterClose
			r.cond.Broadcast()
			return r.err
		}
		if r.head-r.minTail() < uint64(len(r.slots)) {
			break
		}
		if !stalled {
			stalled = true
			r.stalls++
		}
		r.cond.Wait()
	}
	r.slots[r.head%uint64(len(r.slots))] = b
	r.head++
	r.cond.Broadcast()
	return nil
}

// Next returns consumer c's next block in publication order, first
// retiring the block the previous Next returned. It blocks until a block
// is available; ok is false at the clean end of the stream (after Close,
// once c has drained), and err carries the latched abort reason, which
// ends the stream immediately even if unretired blocks remain.
func (r *Ring) Next(c int) (b Block, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.busy[c] {
		r.busy[c] = false
		r.tails[c]++
		r.cond.Broadcast() // space freed; flushers and the producer may wake
	}
	for {
		if r.err != nil {
			return Block{}, false, r.err
		}
		if r.tails[c] < r.head {
			b = r.slots[r.tails[c]%uint64(len(r.slots))]
			r.busy[c] = true
			return b, true, nil
		}
		if r.closed {
			return Block{}, false, nil
		}
		r.cond.Wait()
	}
}

// Close ends the stream cleanly: consumers drain what remains, then see
// ok == false. Closing twice is a no-op.
func (r *Ring) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// Abort ends the stream abortively with err (which must be non-nil):
// every current and future Publish, Next, and Flush returns it. The
// first abort wins; later ones are no-ops.
func (r *Ring) Abort(err error) {
	if err == nil {
		panic("trace: Ring.Abort(nil)")
	}
	r.mu.Lock()
	if r.err == nil {
		r.err = err
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// Err returns the latched abort reason, nil while the ring is healthy.
func (r *Ring) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Flush blocks until every consumer has fully processed every published
// block, or returns the abort reason. A producer handing over a buffer
// it intends to reuse must Flush before touching it again.
func (r *Ring) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.err != nil {
			return r.err
		}
		if r.minTail() == r.head && !anyBusy(r.busy) {
			return nil
		}
		r.cond.Wait()
	}
}

func anyBusy(busy []bool) bool {
	for _, b := range busy {
		if b {
			return true
		}
	}
	return false
}

// Stalls returns how many Publish calls had to wait for the slowest
// consumer — the backpressure signal the engine aggregates per replay.
func (r *Ring) Stalls() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stalls
}

var errPublishAfterClose = &ringMisuseError{"trace: Ring.Publish after Close"}

// ringMisuseError distinguishes a contract violation from workload
// failures without exporting a sentinel nobody should match on.
type ringMisuseError struct{ msg string }

func (e *ringMisuseError) Error() string { return e.msg }
