package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"memotable/internal/faults"
	"memotable/internal/isa"
)

// Trace format v2 layers CRC-framed chunks over the v1 event encoding so
// that corruption anywhere in a stream — a torn spill file, a flipped
// bit, a truncated frame — is detected before any damaged event reaches
// a sink:
//
//	magic   "MTRC"              (4 bytes)
//	version uint8 = 2
//	flags   uint8               (bit 0: frame payloads are DEFLATE-compressed;
//	                             all other bits must be zero)
//	frames  repeated {
//	    rawLen    uint32 LE     payload size before compression
//	    storedLen uint32 LE     payload size on the wire
//	    events    uint32 LE     events encoded in this frame
//	    crc       uint32 LE     CRC32-Castagnoli over the 12 header bytes
//	                            above followed by the stored payload
//	    payload   storedLen bytes of the v1 per-event encoding
//	                            {op uint8, a uvarint, b uvarint}
//	}
//
// A frame holds ~64 KiB of raw event bytes (frameTarget), so the reader
// verifies each checksum over a bounded buffer before decoding a single
// event from it, and a clean io.EOF is only reported at a frame
// boundary. The per-event encoding is exactly v1's, so the two versions
// share one decoder; NewReader dispatches on the version byte and reads
// either stream.

const (
	formatVersionV2 = 2

	// VersionV2 exports the v2 format generation number. The persistent
	// trace store folds it into its content keys and file names, so
	// entries written by another format generation are invisible to this
	// build rather than misread.
	VersionV2 = formatVersionV2

	// flagFlate marks frame payloads as DEFLATE-compressed. Remaining
	// flag bits are reserved and must be zero.
	flagFlate = 0x01

	// frameTarget is the raw payload size at which the writer seals a
	// frame. An event can straddle the threshold by at most its own
	// encoded length, bounding raw frames at frameTarget+maxEventLen.
	frameTarget = 64 << 10

	// maxEventLen is the longest single-event encoding.
	maxEventLen = 1 + 2*binary.MaxVarintLen64

	// maxFrameRaw / maxFrameStored bound the sizes a reader will
	// allocate for, so a corrupt frame header cannot demand an
	// arbitrary buffer. Stored payloads get slack for incompressible
	// DEFLATE input (which grows slightly).
	maxFrameRaw    = frameTarget + maxEventLen
	maxFrameStored = maxFrameRaw + 1024

	frameHeaderLen = 16
)

// castagnoli is the CRC32C table used by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWriterClosed reports an Emit on a WriterV2 whose stream was already
// sealed by Close. The event is dropped and the error latches, so the
// loss is loud: the next Flush, Close or Err call surfaces it.
var ErrWriterClosed = errors.New("trace: emit on closed writer")

// WriterV2 encodes events in trace format v2. Like Writer it implements
// Sink, defers write errors to Flush, and counts emitted events.
//
// The writer is re-armable: Flush is a mid-stream checkpoint that seals
// the open frame and leaves the writer usable, so a live producer can
// push every buffered event onto the wire and keep emitting — each Emit
// after a Flush simply opens the next frame. The stream ends with Close,
// which seals the final frame and latches the writer; an Emit after
// Close is an error (surfaced by the next Flush/Close/Err call) rather
// than a silently lost frame.
type WriterV2 struct {
	w           io.Writer
	frame       bytes.Buffer // raw event bytes of the open frame
	wire        bytes.Buffer // assembled header+payload, one Write per frame
	cbuf        bytes.Buffer // compressed payload scratch
	comp        *flate.Writer
	buf         [maxEventLen]byte
	frameEvents uint32
	count       uint64
	err         error
	closed      bool
}

// NewWriterV2 starts a v2 trace stream on w, writing the header
// immediately. When compress is set, frame payloads are
// DEFLATE-compressed (flate.BestSpeed) and the header's compression flag
// records it for the reader.
func NewWriterV2(w io.Writer, compress bool) (*WriterV2, error) {
	var flags byte
	var comp *flate.Writer
	if compress {
		flags |= flagFlate
		var err error
		if comp, err = flate.NewWriter(io.Discard, flate.BestSpeed); err != nil {
			return nil, fmt.Errorf("trace: deflate init: %w", err)
		}
	}
	hdr := []byte{magic[0], magic[1], magic[2], magic[3], formatVersionV2, flags}
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &WriterV2{w: w, comp: comp}, nil
}

// Emit implements Sink. Encoding and write errors are deferred to Flush.
// Emitting on a closed writer drops the event and latches ErrWriterClosed.
func (w *WriterV2) Emit(ev Event) {
	if w.closed {
		if w.err == nil {
			w.err = ErrWriterClosed
		}
		return
	}
	if w.err != nil {
		return
	}
	w.count++
	w.buf[0] = byte(ev.Op)
	n := 1
	n += binary.PutUvarint(w.buf[n:], ev.A)
	n += binary.PutUvarint(w.buf[n:], ev.B)
	_, _ = w.frame.Write(w.buf[:n]) // bytes.Buffer writes cannot fail
	w.frameEvents++
	if w.frame.Len() >= frameTarget {
		w.err = w.flushFrame()
	}
}

// Count returns the number of events emitted.
func (w *WriterV2) Count() uint64 { return w.count }

// Flush seals the open frame, pushing every emitted event onto the wire,
// and surfaces any deferred error. It is a checkpoint, not an end: the
// writer stays armed, and a later Emit opens the next frame. The bytes
// written so far always form a readable prefix of the stream; the stream
// is complete once Close returns nil.
func (w *WriterV2) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.frame.Len() > 0 {
		w.err = w.flushFrame()
	}
	return w.err
}

// Close seals the stream: the open frame is flushed and the writer
// latches, so any further Emit is an error instead of a silently dropped
// frame. Close is idempotent and returns the writer's first error.
func (w *WriterV2) Close() error {
	err := w.Flush()
	w.closed = true
	return err
}

// Err returns the writer's latched error: a deferred write failure, or
// ErrWriterClosed after an Emit on a closed writer.
func (w *WriterV2) Err() error { return w.err }

// flushFrame seals the open frame and writes it to the underlying writer
// as a single Write call, so downstream writers (the engine's spill
// fail-over, for one) observe whole frames.
func (w *WriterV2) flushFrame() error {
	raw := w.frame.Bytes()
	stored := raw
	if w.comp != nil {
		w.cbuf.Reset()
		w.comp.Reset(&w.cbuf)
		if _, err := w.comp.Write(raw); err != nil {
			return err
		}
		if err := w.comp.Close(); err != nil {
			return err
		}
		stored = w.cbuf.Bytes()
	}
	w.wire.Reset()
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(raw)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(stored)))
	binary.LittleEndian.PutUint32(hdr[8:], w.frameEvents)
	crc := crc32.Update(0, castagnoli, hdr[:12])
	crc = crc32.Update(crc, castagnoli, stored)
	binary.LittleEndian.PutUint32(hdr[12:], crc)
	_, _ = w.wire.Write(hdr[:]) // bytes.Buffer writes cannot fail
	_, _ = w.wire.Write(stored)
	if _, err := w.w.Write(w.wire.Bytes()); err != nil {
		return err
	}
	w.frame.Reset()
	w.frameEvents = 0
	return nil
}

// readFrame loads, checksums and (if flagged) decompresses the next
// frame into r.frame. It returns io.EOF only at a clean frame boundary;
// every other defect is ErrBadTrace.
func (r *Reader) readFrame() error {
	if r.fpos != len(r.frame) {
		return fmt.Errorf("%w: %d trailing bytes in frame", ErrBadTrace, len(r.frame)-r.fpos)
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: torn frame header: %v", ErrBadTrace, err)
	}
	rawLen := binary.LittleEndian.Uint32(hdr[0:])
	storedLen := binary.LittleEndian.Uint32(hdr[4:])
	events := binary.LittleEndian.Uint32(hdr[8:])
	crc := binary.LittleEndian.Uint32(hdr[12:])
	if err := checkFrameHeader(rawLen, storedLen, events, r.compressed); err != nil {
		return err
	}
	stored := make([]byte, storedLen)
	if _, err := io.ReadFull(r.r, stored); err != nil {
		return fmt.Errorf("%w: torn frame payload: %v", ErrBadTrace, err)
	}
	got := crc32.Update(0, castagnoli, hdr[:12])
	got = crc32.Update(got, castagnoli, stored)
	if got != crc {
		return fmt.Errorf("%w: frame CRC %08x, computed %08x", ErrBadTrace, crc, got)
	}
	if ferr := faults.Inject(faults.FrameCRC); ferr != nil {
		return fmt.Errorf("%w: frame CRC rejected: %v", ErrBadTrace, ferr)
	}
	if r.compressed {
		raw := make([]byte, rawLen)
		fr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(fr, raw); err != nil {
			return fmt.Errorf("%w: frame decompression: %v", ErrBadTrace, err)
		}
		var tail [1]byte
		if n, _ := fr.Read(tail[:]); n != 0 {
			return fmt.Errorf("%w: frame inflates past declared size %d", ErrBadTrace, rawLen)
		}
		r.frame = raw
	} else {
		r.frame = stored
	}
	r.fpos = 0
	r.fEvents = events
	return nil
}

// checkFrameHeader vets the declared sizes of a frame before any buffer
// is allocated for it. Every event encodes to at least 3 bytes, tying
// the declared event count to the declared payload size.
func checkFrameHeader(rawLen, storedLen, events uint32, compressed bool) error {
	switch {
	case rawLen == 0 || events == 0:
		return fmt.Errorf("%w: empty frame", ErrBadTrace)
	case rawLen > maxFrameRaw:
		return fmt.Errorf("%w: frame raw size %d exceeds limit %d", ErrBadTrace, rawLen, maxFrameRaw)
	case storedLen > maxFrameStored:
		return fmt.Errorf("%w: frame stored size %d exceeds limit %d", ErrBadTrace, storedLen, maxFrameStored)
	case uint64(rawLen) < 3*uint64(events):
		return fmt.Errorf("%w: frame declares %d events in %d bytes", ErrBadTrace, events, rawLen)
	case !compressed && storedLen != rawLen:
		return fmt.Errorf("%w: uncompressed frame sizes disagree (%d raw, %d stored)", ErrBadTrace, rawLen, storedLen)
	}
	return nil
}

// nextV2 decodes one event from the current frame, pulling in the next
// frame as needed.
func (r *Reader) nextV2() (Event, error) {
	for r.fEvents == 0 {
		if err := r.readFrame(); err != nil {
			return Event{}, err
		}
	}
	if r.fpos >= len(r.frame) {
		return Event{}, fmt.Errorf("%w: frame under-delivers its declared events", ErrBadTrace)
	}
	opByte := r.frame[r.fpos]
	if opByte >= byte(isa.NumOps) {
		return Event{}, fmt.Errorf("%w: op byte %d", ErrBadTrace, opByte)
	}
	pos := r.fpos + 1
	a, n := binary.Uvarint(r.frame[pos:])
	if n <= 0 {
		return Event{}, fmt.Errorf("%w: operand A varint", ErrBadTrace)
	}
	pos += n
	b, n := binary.Uvarint(r.frame[pos:])
	if n <= 0 {
		return Event{}, fmt.Errorf("%w: operand B varint", ErrBadTrace)
	}
	r.fpos = pos + n
	r.fEvents--
	r.count++
	return Event{Op: isa.Op(opByte), A: a, B: b}, nil
}

// readBatchV2 fills dst from the current frame in one tight loop, pulling
// in the next frame when the current one is exhausted. Decoding a whole
// frame's events without the per-event Next call is what makes block
// replay cheaper than event replay even before batch fan-out: the frame
// bounds are checked once and the varint decoder runs over one contiguous
// buffer.
func (r *Reader) readBatchV2(dst []Event) ([]Event, error) {
	for len(dst) < cap(dst) {
		for r.fEvents == 0 {
			if err := r.readFrame(); err != nil {
				if err == io.EOF && len(dst) > 0 {
					return dst, nil
				}
				if err == io.EOF {
					return nil, io.EOF
				}
				return dst, err
			}
		}
		frame, pos := r.frame, r.fpos
		for r.fEvents > 0 && len(dst) < cap(dst) {
			if pos >= len(frame) {
				r.fpos, r.frame = pos, frame
				return dst, fmt.Errorf("%w: frame under-delivers its declared events", ErrBadTrace)
			}
			opByte := frame[pos]
			if opByte >= byte(isa.NumOps) {
				r.fpos = pos
				return dst, fmt.Errorf("%w: op byte %d", ErrBadTrace, opByte)
			}
			a, n := binary.Uvarint(frame[pos+1:])
			if n <= 0 {
				r.fpos = pos
				return dst, fmt.Errorf("%w: operand A varint", ErrBadTrace)
			}
			pos += 1 + n
			b, n := binary.Uvarint(frame[pos:])
			if n <= 0 {
				return dst, fmt.Errorf("%w: operand B varint", ErrBadTrace)
			}
			pos += n
			dst = append(dst, Event{Op: isa.Op(opByte), A: a, B: b})
			r.fEvents--
			r.count++
		}
		r.fpos = pos
	}
	return dst, nil
}

// Verify scans a trace stream end to end and returns its event count
// without feeding any sink. For v2 streams only frame headers and
// checksums are examined — no decompression, no event decoding — so a
// spill file is vetted at sequential-read speed before a replay commits
// events to a sink. v1 streams carry no checksums and are fully decoded.
func Verify(rd io.Reader) (uint64, error) {
	br := bufio.NewReaderSize(rd, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	if [4]byte(hdr[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[:4])
	}
	switch hdr[4] {
	case formatVersion:
		r := &Reader{r: br, version: formatVersion}
		return r.Replay(discardSink{})
	case formatVersionV2:
		flags, err := br.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: missing flags byte", ErrBadTrace)
		}
		if flags&^byte(flagFlate) != 0 {
			return 0, fmt.Errorf("%w: unknown flags %#02x", ErrBadTrace, flags)
		}
		compressed := flags&flagFlate != 0
		var events uint64
		var fh [frameHeaderLen]byte
		for {
			if _, err := io.ReadFull(br, fh[:]); err != nil {
				if err == io.EOF {
					return events, nil
				}
				return events, fmt.Errorf("%w: torn frame header: %v", ErrBadTrace, err)
			}
			rawLen := binary.LittleEndian.Uint32(fh[0:])
			storedLen := binary.LittleEndian.Uint32(fh[4:])
			n := binary.LittleEndian.Uint32(fh[8:])
			crc := binary.LittleEndian.Uint32(fh[12:])
			if err := checkFrameHeader(rawLen, storedLen, n, compressed); err != nil {
				return events, err
			}
			stored := make([]byte, storedLen)
			if _, err := io.ReadFull(br, stored); err != nil {
				return events, fmt.Errorf("%w: torn frame payload: %v", ErrBadTrace, err)
			}
			got := crc32.Update(0, castagnoli, fh[:12])
			got = crc32.Update(got, castagnoli, stored)
			if got != crc {
				return events, fmt.Errorf("%w: frame CRC %08x, computed %08x", ErrBadTrace, crc, got)
			}
			if ferr := faults.Inject(faults.FrameCRC); ferr != nil {
				return events, fmt.Errorf("%w: frame CRC rejected: %v", ErrBadTrace, ferr)
			}
			events += uint64(n)
		}
	default:
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr[4])
	}
}

// discardSink drops every event; Verify uses it to drive the v1 decoder.
type discardSink struct{}

// Emit implements Sink.
func (discardSink) Emit(Event) {}
