// Package trace defines the operand event stream that replaces the paper's
// Shade instrumentation. Shade executed SPARC binaries and broke on
// multiplication and division instructions to capture register values
// (§3); here, instrumented workloads emit one Event per dynamic operation,
// carrying exactly the information Shade's breakpoints collected: the
// operation class and the operand bit patterns (or the address, for memory
// operations).
//
// Events flow to Sinks: MEMO-TABLE simulators, cycle counters, frequency
// counters and trace-file writers all consume the same stream, so one
// workload execution can feed any number of measurements.
package trace

import "memotable/internal/isa"

// Event is one dynamic operation. For arithmetic classes A and B hold the
// operand bit patterns (B zero for unary classes); for OpLoad/OpStore A
// holds the byte address; for other classes the fields are zero.
type Event struct {
	Op   isa.Op
	A, B uint64
}

// Sink consumes a stream of events.
type Sink interface {
	Emit(ev Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(ev Event) { f(ev) }

// Multi fans one stream out to several sinks in order.
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Counter tallies events per operation class — the "frequency breakdown of
// all instructions" the paper's simulator collected alongside the operand
// traces.
type Counter struct {
	Counts [isa.NumOps]uint64
}

// Emit implements Sink.
func (c *Counter) Emit(ev Event) { c.Counts[ev.Op]++ }

// Total returns the total event count.
func (c *Counter) Total() uint64 {
	var t uint64
	for _, n := range c.Counts {
		t += n
	}
	return t
}

// Of returns the count for one class.
func (c *Counter) Of(op isa.Op) uint64 { return c.Counts[op] }

// Reset zeroes the counters.
func (c *Counter) Reset() { c.Counts = [isa.NumOps]uint64{} }

// Filter forwards only events of the given classes.
type Filter struct {
	Next Sink
	Keep [isa.NumOps]bool

	// scratch is the reused compaction block of EmitBatch.
	scratch []Event
}

// NewFilter builds a filter passing only ops.
func NewFilter(next Sink, ops ...isa.Op) *Filter {
	f := &Filter{Next: next}
	for _, op := range ops {
		f.Keep[op] = true
	}
	return f
}

// Emit implements Sink.
func (f *Filter) Emit(ev Event) {
	if f.Keep[ev.Op] {
		f.Next.Emit(ev)
	}
}

// Recorder buffers events in memory, mainly for tests and small replays.
type Recorder struct {
	Events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(ev Event) { r.Events = append(r.Events, ev) }
