package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"memotable/internal/isa"
)

func TestMultiFansOut(t *testing.T) {
	var a, b Counter
	m := Multi{&a, &b}
	m.Emit(Event{Op: isa.OpFMul})
	m.Emit(Event{Op: isa.OpFDiv})
	if a.Total() != 2 || b.Total() != 2 {
		t.Fatalf("totals %d,%d", a.Total(), b.Total())
	}
	if a.Of(isa.OpFMul) != 1 || a.Of(isa.OpFDiv) != 1 || a.Of(isa.OpIMul) != 0 {
		t.Fatalf("counter %+v", a.Counts)
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	c.Emit(Event{Op: isa.OpLoad})
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFilterKeepsOnlySelected(t *testing.T) {
	var rec Recorder
	f := NewFilter(&rec, isa.OpFMul, isa.OpFDiv)
	for _, op := range []isa.Op{isa.OpFMul, isa.OpLoad, isa.OpFDiv, isa.OpIAlu, isa.OpFMul} {
		f.Emit(Event{Op: op})
	}
	if len(rec.Events) != 3 {
		t.Fatalf("kept %d events, want 3", len(rec.Events))
	}
	for _, ev := range rec.Events {
		if ev.Op != isa.OpFMul && ev.Op != isa.OpFDiv {
			t.Fatalf("leaked op %v", ev.Op)
		}
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	SinkFunc(func(Event) { n++ }).Emit(Event{})
	if n != 1 {
		t.Fatal("SinkFunc not invoked")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := make([]Event, 5000)
	for i := range events {
		events[i] = Event{
			Op: isa.Op(rng.Intn(int(isa.NumOps))),
			A:  rng.Uint64(),
			B:  rng.Uint64(),
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("writer count %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Count() != uint64(len(events)) {
		t.Fatalf("reader count %d", r.Count())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(op8 uint8, a, b uint64) bool {
		ev := Event{Op: isa.Op(op8 % uint8(isa.NumOps)), A: a, B: b}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Emit(ev)
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == ev
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Emit(Event{Op: isa.OpFDiv, A: math.Float64bits(float64(i)), B: math.Float64bits(2)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	n, err := r.Replay(&c)
	if err != nil || n != 100 {
		t.Fatalf("replay = %d,%v", n, err)
	}
	if c.Of(isa.OpFDiv) != 100 {
		t.Fatalf("counter %d", c.Of(isa.OpFDiv))
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	// Bad magic.
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad magic: %v", err)
	}
	// Bad version.
	if _, err := NewReader(bytes.NewReader([]byte("MTRC\x09"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad version: %v", err)
	}
	// Truncated header.
	if _, err := NewReader(bytes.NewReader([]byte("MT"))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short header: %v", err)
	}
	// Bad op byte.
	r, err := NewReader(bytes.NewReader([]byte("MTRC\x01\xFF\x00\x00")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad op: %v", err)
	}
	// Truncated operand.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Emit(Event{Op: isa.OpFMul, A: 1 << 60, B: 2})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r2, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated operand: %v", err)
	}
}
