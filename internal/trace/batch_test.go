package trace

import (
	"bytes"
	"reflect"
	"testing"

	"memotable/internal/isa"
)

// encodeV1 runs events through the v1 Writer and returns the wire bytes.
func encodeV1(t testing.TB, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// plainRecorder records events without implementing BatchSink, so batch
// producers must go through the per-event adapter path for it.
type plainRecorder struct {
	events []Event
}

func (p *plainRecorder) Emit(ev Event) { p.events = append(p.events, ev) }

// batchRecorder records events and the block sizes they arrived in.
type batchRecorder struct {
	events  []Event
	batches []int
}

func (b *batchRecorder) Emit(ev Event) { b.events = append(b.events, ev) }
func (b *batchRecorder) EmitBatch(evs []Event) {
	b.events = append(b.events, evs...)
	b.batches = append(b.batches, len(evs))
}

// encodings returns every wire format a trace can take.
func encodings(t *testing.T, events []Event) map[string][]byte {
	t.Helper()
	return map[string][]byte{
		"v1":           encodeV1(t, events),
		"v2":           encodeV2(t, events, false),
		"v2compressed": encodeV2(t, events, true),
	}
}

// TestReplayBatchMatchesReplay pins the batched decoder to the per-event
// one: for every format version, ReplayBatch must deliver the exact event
// sequence Replay delivers — through EmitBatch for batch-aware sinks and
// through the Emit adapter for plain sinks.
func TestReplayBatchMatchesReplay(t *testing.T) {
	events := randomEvents(60000, 41)
	for name, data := range encodings(t, events) {
		t.Run(name, func(t *testing.T) {
			want := decodeAll(t, data)
			if !reflect.DeepEqual(want, events) {
				t.Fatalf("per-event replay diverged from source events")
			}

			r, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var br batchRecorder
			n, err := r.ReplayBatch(&br)
			if err != nil {
				t.Fatalf("ReplayBatch: %v", err)
			}
			if n != uint64(len(events)) {
				t.Fatalf("ReplayBatch count %d, want %d", n, len(events))
			}
			if len(br.batches) == 0 {
				t.Fatal("batch sink never received an EmitBatch call")
			}
			if !reflect.DeepEqual(br.events, want) {
				t.Fatal("batched replay diverged from per-event replay")
			}

			r2, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var pr plainRecorder
			if _, err := r2.ReplayBatch(&pr); err != nil {
				t.Fatalf("ReplayBatch (plain sink): %v", err)
			}
			if !reflect.DeepEqual(pr.events, want) {
				t.Fatal("adapter path diverged from per-event replay")
			}
		})
	}
}

// TestReadBatchResumesMidFrame drives ReadBatch with a capacity that does
// not divide the v2 frame's event count, so batches straddle frame
// boundaries, and checks the reassembled stream.
func TestReadBatchResumesMidFrame(t *testing.T) {
	events := randomEvents(30000, 7)
	data := encodeV2(t, events, false)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Event, 0, 777)
	var got []Event
	for {
		batch, err := r.ReadBatch(buf)
		if err != nil {
			break
		}
		got = append(got, batch...)
		buf = batch
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("mid-frame resumed stream diverged (%d events, want %d)", len(got), len(events))
	}
}

// TestReplayBatchCorruption checks that a corrupt v2 stream fails the
// batched decoder exactly as it fails the per-event one: with ErrBadTrace
// and with only verified frames' events delivered.
func TestReplayBatchCorruption(t *testing.T) {
	events := randomEvents(60000, 9)
	data := encodeV2(t, events, false)
	data[len(data)/2] ^= 0x40 // flip a bit in some frame payload

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var per Recorder
	_, perErr := r.Replay(&per)

	r2, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var bat batchRecorder
	_, batErr := r2.ReplayBatch(&bat)

	if (perErr == nil) != (batErr == nil) {
		t.Fatalf("error disagreement: per-event %v, batch %v", perErr, batErr)
	}
	if !reflect.DeepEqual(bat.events, per.Events) {
		t.Fatalf("delivered prefixes diverge: %d batch events vs %d per-event",
			len(bat.events), len(per.Events))
	}
}

// TestMultiBatchFanOut checks the batched fan-out reaches both batch-aware
// and plain sinks with the same stream.
func TestMultiBatchFanOut(t *testing.T) {
	events := randomEvents(5000, 3)
	var br batchRecorder
	var pr plainRecorder
	m := Multi{&br, &pr}
	EmitAll(m, events)
	if !reflect.DeepEqual(br.events, events) || !reflect.DeepEqual(pr.events, events) {
		t.Fatal("batched fan-out diverged from the input block")
	}
	if len(br.batches) != 1 {
		t.Fatalf("batch-aware sink saw %d calls, want 1", len(br.batches))
	}
}

// TestFilterBatch checks batched filtering keeps exactly the per-event
// filter's stream, preserving order.
func TestFilterBatch(t *testing.T) {
	events := randomEvents(5000, 5)
	var want Recorder
	perEvent := NewFilter(&want, isa.OpFMul, isa.OpFDiv)
	for _, ev := range events {
		perEvent.Emit(ev)
	}

	var got batchRecorder
	batched := NewFilter(&got, isa.OpFMul, isa.OpFDiv)
	// Deliver in uneven blocks to exercise scratch reuse.
	for i := 0; i < len(events); {
		end := i + 100 + i%37
		if end > len(events) {
			end = len(events)
		}
		batched.EmitBatch(events[i:end])
		i = end
	}
	if !reflect.DeepEqual(got.events, want.Events) {
		t.Fatal("batched filter diverged from per-event filter")
	}
}

// TestCounterBatch checks the batched tally equals the per-event one.
func TestCounterBatch(t *testing.T) {
	events := randomEvents(5000, 13)
	var per, bat Counter
	for _, ev := range events {
		per.Emit(ev)
	}
	bat.EmitBatch(events)
	if per.Counts != bat.Counts {
		t.Fatal("batched counter diverged from per-event counter")
	}
}

// TestOpMasks pins the short-circuit query: filters advertise their kept
// classes intersected with downstream, fan-outs the union, and unknown
// sinks everything.
func TestOpMasks(t *testing.T) {
	var c Counter // no mask: consumes everything
	if SinkMask(&c) != MaskAll {
		t.Fatal("maskless sink must advertise MaskAll")
	}
	f := NewFilter(&c, isa.OpFMul, isa.OpFDiv)
	if m := SinkMask(f); m != MaskOf(isa.OpFMul, isa.OpFDiv) {
		t.Fatalf("filter mask %b", m)
	}
	// A filter stacked on a filter intersects.
	outer := NewFilter(f, isa.OpFDiv, isa.OpIMul)
	if m := SinkMask(outer); m != MaskOf(isa.OpFDiv) {
		t.Fatalf("stacked filter mask %b", m)
	}
	// A fan-out unions.
	multi := Multi{f, NewFilter(&c, isa.OpIMul)}
	if m := SinkMask(multi); m != MaskOf(isa.OpFMul, isa.OpFDiv, isa.OpIMul) {
		t.Fatalf("multi mask %b", m)
	}
	if !MaskOf(isa.OpFMul).Has(isa.OpFMul) || MaskOf(isa.OpFMul).Has(isa.OpFDiv) {
		t.Fatal("OpMask.Has misreports membership")
	}
}
