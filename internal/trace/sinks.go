package trace

// Sink grouping helpers for fused replay planners: a planner collects
// several subscriptions' sink groups for one workload and needs a single
// fan-out list plus the per-sink class masks to drive block skipping.

// Flatten concatenates sink groups into one fan-out list, preserving
// group order and the order within each group. Duplicates are kept: a
// sink subscribed through two groups is owed two deliveries.
func Flatten(groups ...[]Sink) []Sink {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make([]Sink, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// SinkMasks snapshots each sink's advertised class mask once, so a fused
// replay's per-block skip test is a single AND per sink.
func SinkMasks(sinks []Sink) []OpMask {
	masks := make([]OpMask, len(sinks))
	for i, s := range sinks {
		masks[i] = SinkMask(s)
	}
	return masks
}

// FanoutGrouper is implemented by sinks that want co-scheduling in a
// fan-out replay: sinks of one fused pass sharing the same non-empty
// group key are fed by the same consumer goroutine. Planners use it to
// keep a cheap sink (a narrow-mask observer that skips most blocks) from
// occupying a fan-out worker of its own. A sink without the method — or
// returning "" — is scheduled independently.
type FanoutGrouper interface {
	FanoutGroup() string
}

// GroupedSink tags a sink with a fan-out affinity key. It forwards
// everything to the wrapped sink and advertises the sink's own class
// mask, so grouping never changes what the sink observes — only which
// goroutine feeds it. Construct with Grouped.
type GroupedSink struct {
	Sink
	Key string
}

// Grouped wraps a sink with a fan-out affinity key (see FanoutGrouper).
// The wrapper is comparable exactly when the wrapped sink is, which the
// fan-out's identity grouping relies on.
func Grouped(key string, s Sink) GroupedSink { return GroupedSink{Sink: s, Key: key} }

// FanoutGroup implements FanoutGrouper.
func (g GroupedSink) FanoutGroup() string { return g.Key }

// EmitBatch implements BatchSink by forwarding whole blocks, so the
// wrapper does not demote a batch-aware sink to per-event delivery.
func (g GroupedSink) EmitBatch(evs []Event) { EmitAll(g.Sink, evs) }

// OpMask implements OpMasker with the wrapped sink's advertised mask.
func (g GroupedSink) OpMask() OpMask { return SinkMask(g.Sink) }
