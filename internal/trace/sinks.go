package trace

// Sink grouping helpers for fused replay planners: a planner collects
// several subscriptions' sink groups for one workload and needs a single
// fan-out list plus the per-sink class masks to drive block skipping.

// Flatten concatenates sink groups into one fan-out list, preserving
// group order and the order within each group. Duplicates are kept: a
// sink subscribed through two groups is owed two deliveries.
func Flatten(groups ...[]Sink) []Sink {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make([]Sink, 0, n)
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

// SinkMasks snapshots each sink's advertised class mask once, so a fused
// replay's per-block skip test is a single AND per sink.
func SinkMasks(sinks []Sink) []OpMask {
	masks := make([]OpMask, len(sinks))
	for i, s := range sinks {
		masks[i] = SinkMask(s)
	}
	return masks
}
