package trace

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"memotable/internal/faults"
	"memotable/internal/isa"
)

// Incremental decoding of a v2 trace stream that is still being
// produced. The pull Reader treats a torn tail as corruption — correct
// for a file that claims to be complete, wrong for a live socket where
// the missing bytes are simply still in flight. StreamDecoder separates
// the two: bytes are pushed in as they arrive (Feed), complete frames
// come out as they become decodable (NextFrame), and an incomplete tail
// reads as ErrStreamOpen ("more bytes pending") until CloseInput
// declares the input finished — after which the same tail is a torn
// stream, ErrBadTrace, exactly as the Reader would report it.
//
// Because every v2 frame is self-delimiting and carries its own CRC32C,
// the decoder never guesses: a frame is either not yet complete (wait),
// complete and valid (deliver), or complete and damaged (fail). Only v2
// streams are accepted — a v1 stream has no framing, so an incremental
// consumer could not distinguish its torn tail from a clean end.

// ErrStreamOpen reports that the buffered bytes end mid-frame while the
// input is still open: not corruption, just a frame whose remaining
// bytes have not arrived yet. Feed more bytes (or CloseInput) and call
// NextFrame again.
var ErrStreamOpen = errors.New("trace: stream still open, frame incomplete")

// streamHeaderLen is the stream preamble: magic, version, flags.
const streamHeaderLen = 6

// StreamDecoder decodes a v2 trace stream incrementally from pushed
// byte chunks. The zero value is not usable; construct with
// NewStreamDecoder. It is not safe for concurrent use.
type StreamDecoder struct {
	buf        []byte // fed, not-yet-consumed bytes (pos-prefix consumed)
	pos        int
	headerDone bool
	compressed bool
	sealed     bool

	frames  uint64
	events  uint64
	bytesIn int64

	evbuf []Event // decoded events of the last delivered frame, reused
	raw   []byte  // decompression scratch, reused
}

// NewStreamDecoder prepares an empty decoder; the stream header is
// parsed from the first fed bytes.
func NewStreamDecoder() *StreamDecoder { return &StreamDecoder{} }

// Feed appends arriving bytes. The decoder copies p, so the caller may
// reuse its buffer immediately.
func (d *StreamDecoder) Feed(p []byte) {
	if d.pos > 0 {
		// Compact the consumed prefix before growing the buffer, so a
		// long-lived session holds at most one frame of backlog plus the
		// unread tail.
		d.buf = append(d.buf[:0], d.buf[d.pos:]...)
		d.pos = 0
	}
	d.buf = append(d.buf, p...)
	d.bytesIn += int64(len(p))
}

// CloseInput declares that no more bytes will arrive. From here on an
// incomplete tail decodes as a torn stream (ErrBadTrace) and a clean
// frame boundary as io.EOF.
func (d *StreamDecoder) CloseInput() { d.sealed = true }

// Frames returns the number of complete frames delivered so far.
func (d *StreamDecoder) Frames() uint64 { return d.frames }

// Events returns the number of events delivered so far.
func (d *StreamDecoder) Events() uint64 { return d.events }

// BytesIn returns the total bytes fed so far.
func (d *StreamDecoder) BytesIn() int64 { return d.bytesIn }

// Buffered returns the fed bytes not yet consumed by a delivered frame —
// the torn tail, while the stream is open.
func (d *StreamDecoder) Buffered() int { return len(d.buf) - d.pos }

// incomplete classifies a tail that stops mid-structure: still-open
// streams wait for more bytes, sealed streams are torn.
func (d *StreamDecoder) incomplete(what string) error {
	if d.sealed {
		return fmt.Errorf("%w: torn %s", ErrBadTrace, what)
	}
	return fmt.Errorf("%w: need more bytes for %s", ErrStreamOpen, what)
}

// NextFrame decodes the next complete frame and returns its events, in
// stream order. The returned slice is reused by the next call, so the
// caller must consume (or copy) it first. Errors:
//
//   - ErrStreamOpen: the buffered bytes end mid-header or mid-frame and
//     the input is still open — feed more and retry;
//   - io.EOF: CloseInput was called and the stream ends at a clean frame
//     boundary (the whole stream was delivered);
//   - ErrBadTrace: real corruption — bad magic or version, a complete
//     frame failing its checksum or event decode, or a tail left torn by
//     CloseInput.
func (d *StreamDecoder) NextFrame() ([]Event, error) {
	if !d.headerDone {
		if err := d.parseHeader(); err != nil {
			return nil, err
		}
	}
	avail := d.buf[d.pos:]
	if len(avail) == 0 {
		if d.sealed {
			return nil, io.EOF
		}
		return nil, d.incomplete("frame header")
	}
	if len(avail) < frameHeaderLen {
		return nil, d.incomplete("frame header")
	}
	rawLen := binary.LittleEndian.Uint32(avail[0:])
	storedLen := binary.LittleEndian.Uint32(avail[4:])
	events := binary.LittleEndian.Uint32(avail[8:])
	crc := binary.LittleEndian.Uint32(avail[12:])
	// The header is complete, so its self-consistency is decidable now
	// even if the payload is still in flight.
	if err := checkFrameHeader(rawLen, storedLen, events, d.compressed); err != nil {
		return nil, err
	}
	if len(avail) < frameHeaderLen+int(storedLen) {
		return nil, d.incomplete("frame payload")
	}
	stored := avail[frameHeaderLen : frameHeaderLen+int(storedLen)]
	got := crc32.Update(0, castagnoli, avail[:12])
	got = crc32.Update(got, castagnoli, stored)
	if got != crc {
		return nil, fmt.Errorf("%w: frame CRC %08x, computed %08x", ErrBadTrace, crc, got)
	}
	if ferr := faults.Inject(faults.FrameCRC); ferr != nil {
		return nil, fmt.Errorf("%w: frame CRC rejected: %v", ErrBadTrace, ferr)
	}
	raw := stored
	if d.compressed {
		if cap(d.raw) < int(rawLen) {
			d.raw = make([]byte, rawLen)
		}
		d.raw = d.raw[:rawLen]
		fr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(fr, d.raw); err != nil {
			return nil, fmt.Errorf("%w: frame decompression: %v", ErrBadTrace, err)
		}
		var tail [1]byte
		if n, _ := fr.Read(tail[:]); n != 0 {
			return nil, fmt.Errorf("%w: frame inflates past declared size %d", ErrBadTrace, rawLen)
		}
		raw = d.raw
	}
	evs, err := d.decodeFrame(raw, events)
	if err != nil {
		return nil, err
	}
	d.pos += frameHeaderLen + int(storedLen)
	d.frames++
	d.events += uint64(len(evs))
	return evs, nil
}

// parseHeader consumes the 6-byte stream preamble once enough bytes are
// buffered, rejecting anything but an uncorrupted v2 header.
func (d *StreamDecoder) parseHeader() error {
	avail := d.buf[d.pos:]
	if len(avail) < streamHeaderLen {
		return d.incomplete("stream header")
	}
	if [4]byte(avail[:4]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrBadTrace, avail[:4])
	}
	switch avail[4] {
	case formatVersionV2:
		// The only streamable generation.
	case formatVersion:
		return fmt.Errorf("%w: v1 streams are not self-delimiting; stream ingest requires v2", ErrBadTrace)
	default:
		return fmt.Errorf("%w: unsupported version %d", ErrBadTrace, avail[4])
	}
	flags := avail[5]
	if flags&^byte(flagFlate) != 0 {
		return fmt.Errorf("%w: unknown flags %#02x", ErrBadTrace, flags)
	}
	d.compressed = flags&flagFlate != 0
	d.pos += streamHeaderLen
	d.headerDone = true
	return nil
}

// decodeFrame decodes exactly the declared events from a verified frame
// payload into the reused event buffer. A payload that under-delivers,
// over-delivers, or carries an undecodable event is corrupt.
func (d *StreamDecoder) decodeFrame(raw []byte, events uint32) ([]Event, error) {
	if cap(d.evbuf) < int(events) {
		d.evbuf = make([]Event, 0, events)
	}
	dst := d.evbuf[:0]
	pos := 0
	for i := uint32(0); i < events; i++ {
		if pos >= len(raw) {
			return nil, fmt.Errorf("%w: frame under-delivers its declared events", ErrBadTrace)
		}
		opByte := raw[pos]
		if opByte >= byte(isa.NumOps) {
			return nil, fmt.Errorf("%w: op byte %d", ErrBadTrace, opByte)
		}
		a, n := binary.Uvarint(raw[pos+1:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: operand A varint", ErrBadTrace)
		}
		pos += 1 + n
		b, n := binary.Uvarint(raw[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: operand B varint", ErrBadTrace)
		}
		pos += n
		dst = append(dst, Event{Op: isa.Op(opByte), A: a, B: b})
	}
	if pos != len(raw) {
		return nil, fmt.Errorf("%w: %d trailing bytes in frame", ErrBadTrace, len(raw)-pos)
	}
	d.evbuf = dst
	return dst, nil
}
