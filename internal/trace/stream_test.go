package trace

import (
	"errors"
	"io"
	"math/rand"
	"testing"
)

// drainFrames pulls every currently decodable frame, appending events to
// got, and returns the first non-nil "no frame" condition (ErrStreamOpen,
// io.EOF, or a corruption error).
func drainFrames(d *StreamDecoder, got *[]Event) error {
	for {
		evs, err := d.NextFrame()
		if err != nil {
			return err
		}
		*got = append(*got, evs...)
	}
}

// TestStreamDecoderChunkedRoundTrip feeds a multi-frame stream in chunks
// of several fixed sizes — including one byte at a time — and checks the
// decoder delivers exactly the encoded events with a clean EOF.
func TestStreamDecoderChunkedRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		events := randomEvents(60000, 21)
		data := encodeV2(t, events, compress)
		for _, chunk := range []int{1, 7, 1000, 64 << 10, len(data)} {
			d := NewStreamDecoder()
			var got []Event
			for off := 0; off < len(data); off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				d.Feed(data[off:end])
				if err := drainFrames(d, &got); !errors.Is(err, ErrStreamOpen) {
					t.Fatalf("compress=%v chunk=%d: mid-stream drain err = %v, want ErrStreamOpen", compress, chunk, err)
				}
			}
			d.CloseInput()
			if err := drainFrames(d, &got); err != io.EOF {
				t.Fatalf("compress=%v chunk=%d: final drain err = %v, want io.EOF", compress, chunk, err)
			}
			if len(got) != len(events) {
				t.Fatalf("compress=%v chunk=%d: decoded %d events, want %d", compress, chunk, len(got), len(events))
			}
			for i := range got {
				if got[i] != events[i] {
					t.Fatalf("compress=%v chunk=%d: event %d = %+v, want %+v", compress, chunk, i, got[i], events[i])
				}
			}
			if d.Events() != uint64(len(events)) || d.Frames() == 0 {
				t.Fatalf("compress=%v chunk=%d: counters events=%d frames=%d", compress, chunk, d.Events(), d.Frames())
			}
			if d.BytesIn() != int64(len(data)) {
				t.Fatalf("compress=%v chunk=%d: BytesIn = %d, want %d", compress, chunk, d.BytesIn(), len(data))
			}
		}
	}
}

// TestStreamDecoderRandomChunksMatchReader is the differential pin: for
// random chunkings of the same stream, the decoder's event sequence is
// identical to the pull Reader's.
func TestStreamDecoderRandomChunksMatchReader(t *testing.T) {
	events := randomEvents(30000, 22)
	data := encodeV2(t, events, true)
	want := decodeAll(t, data)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		d := NewStreamDecoder()
		var got []Event
		for off := 0; off < len(data); {
			n := 1 + rng.Intn(32<<10)
			if off+n > len(data) {
				n = len(data) - off
			}
			d.Feed(data[off : off+n])
			off += n
			if err := drainFrames(d, &got); !errors.Is(err, ErrStreamOpen) {
				t.Fatalf("trial %d: drain err = %v", trial, err)
			}
		}
		d.CloseInput()
		if err := drainFrames(d, &got); err != io.EOF {
			t.Fatalf("trial %d: final err = %v, want io.EOF", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: event %d differs", trial, i)
			}
		}
	}
}

// A torn tail is "stream open" while input may still arrive, and becomes
// a hard corruption error the moment CloseInput declares it final — the
// semantic split that distinguishes a live socket from a torn file.
func TestStreamDecoderTornTail(t *testing.T) {
	events := randomEvents(60000, 24)
	data := encodeV2(t, events, false)
	// Cut inside the last frame's payload.
	cut := len(data) - 100

	t.Run("open tail waits", func(t *testing.T) {
		d := NewStreamDecoder()
		d.Feed(data[:cut])
		var got []Event
		if err := drainFrames(d, &got); !errors.Is(err, ErrStreamOpen) {
			t.Fatalf("drain err = %v, want ErrStreamOpen", err)
		}
		if len(got) == 0 || len(got) >= len(events) {
			t.Fatalf("complete frames should deliver some but not all events (got %d of %d)", len(got), len(events))
		}
		// The missing bytes arrive: the stream completes cleanly.
		d.Feed(data[cut:])
		d.CloseInput()
		if err := drainFrames(d, &got); err != io.EOF {
			t.Fatalf("final err = %v, want io.EOF", err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, want %d", len(got), len(events))
		}
	})

	t.Run("sealed tail is torn", func(t *testing.T) {
		d := NewStreamDecoder()
		d.Feed(data[:cut])
		d.CloseInput()
		var got []Event
		err := drainFrames(d, &got)
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("drain err = %v, want ErrBadTrace", err)
		}
		if errors.Is(err, ErrStreamOpen) {
			t.Fatalf("sealed torn tail must not read as still-open: %v", err)
		}
	})

	// Every cut offset must classify the same way: open → ErrStreamOpen,
	// sealed → ErrBadTrace — except at the self-delimiting boundaries
	// (end of header, end of a frame), where a sealed cut is
	// indistinguishable from a shorter complete stream and reads as a
	// clean io.EOF. Catching those cuts is the store seal trailer's job,
	// not the framing's.
	t.Run("every offset", func(t *testing.T) {
		small := encodeV2(t, randomEvents(50, 25), false)
		boundaries := map[int]bool{streamHeaderLen: true, len(small): true}
		for cut := 0; cut < len(small); cut++ {
			d := NewStreamDecoder()
			d.Feed(small[:cut])
			var got []Event
			if err := drainFrames(d, &got); !errors.Is(err, ErrStreamOpen) {
				t.Fatalf("open cut %d: err = %v, want ErrStreamOpen", cut, err)
			}
			d.CloseInput()
			err := drainFrames(d, &got)
			if boundaries[cut] {
				if err != io.EOF {
					t.Fatalf("sealed boundary cut %d: err = %v, want io.EOF", cut, err)
				}
			} else if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("sealed cut %d: err = %v, want ErrBadTrace", cut, err)
			}
		}
	})
}

// TestStreamDecoderEmptyStream: a header-only stream is a valid, empty
// capture; no bytes at all is a torn header.
func TestStreamDecoderEmptyStream(t *testing.T) {
	d := NewStreamDecoder()
	d.Feed(encodeV2(t, nil, false))
	d.CloseInput()
	var got []Event
	if err := drainFrames(d, &got); err != io.EOF {
		t.Fatalf("header-only stream err = %v, want io.EOF", err)
	}
	if len(got) != 0 || d.Events() != 0 {
		t.Fatalf("empty stream delivered %d events", len(got))
	}

	d = NewStreamDecoder()
	d.CloseInput()
	if err := drainFrames(d, &got); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("zero-byte sealed stream err = %v, want ErrBadTrace", err)
	}
}

// TestStreamDecoderMidStreamCorruption flips one byte of a mid-stream
// frame payload: the damaged frame must fail its checksum even though
// the stream is still open, and the preceding frames must already have
// been delivered intact.
func TestStreamDecoderMidStreamCorruption(t *testing.T) {
	events := randomEvents(60000, 26)
	data := encodeV2(t, events, false)
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40

	d := NewStreamDecoder()
	d.Feed(corrupt)
	var got []Event
	err := drainFrames(d, &got)
	if !errors.Is(err, ErrBadTrace) || errors.Is(err, ErrStreamOpen) {
		t.Fatalf("drain err = %v, want hard ErrBadTrace", err)
	}
	if len(got) == 0 {
		t.Fatalf("frames before the corruption should have been delivered")
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("delivered event %d differs from the encoded stream", i)
		}
	}
}

// TestStreamDecoderRejectsBadHeaders: wrong magic, v1 streams, and
// unknown flag bits are corruption, not wait states.
func TestStreamDecoderRejectsBadHeaders(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":     []byte("XTRC\x02\x00"),
		"v1 stream":     []byte("MTRC\x01"),
		"future":        []byte("MTRC\x09\x00"),
		"unknown flags": []byte("MTRC\x02\x80"),
	}
	for name, hdr := range cases {
		d := NewStreamDecoder()
		d.Feed(hdr)
		// Pad v1's short header so the preamble is complete.
		if len(hdr) < streamHeaderLen {
			d.Feed(make([]byte, streamHeaderLen-len(hdr)))
		}
		if _, err := d.NextFrame(); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
}

// TestStreamDecoderCompaction pins that a drained decoder does not
// accumulate consumed bytes: after draining, feeding more compacts the
// buffer down to the open tail.
func TestStreamDecoderCompaction(t *testing.T) {
	events := randomEvents(60000, 27)
	data := encodeV2(t, events, false)
	d := NewStreamDecoder()
	var got []Event
	maxBuf := 0
	for off := 0; off < len(data); off += 16 << 10 {
		end := off + 16<<10
		if end > len(data) {
			end = len(data)
		}
		d.Feed(data[off:end])
		if err := drainFrames(d, &got); !errors.Is(err, ErrStreamOpen) {
			t.Fatalf("drain err = %v", err)
		}
		if d.Buffered() > maxBuf {
			maxBuf = d.Buffered()
		}
	}
	// The backlog must stay bounded by roughly one frame plus one chunk,
	// not grow with the stream.
	if limit := maxFrameStored + 32<<10; maxBuf > limit {
		t.Fatalf("buffered backlog reached %d bytes, want <= %d", maxBuf, limit)
	}
}
