package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"memotable/internal/isa"
)

// seedTraceEvents is the pinned event count of testdata/vdiff-16.mtrc,
// the v1 capture every compat test replays.
const seedTraceEvents = 9984

// randomEvents builds a deterministic event stream big enough to span
// several v2 frames (n=60000 at ~3-21 bytes/event crosses 64 KiB).
func randomEvents(n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	for i := range events {
		ev := Event{Op: isa.Op(rng.Intn(int(isa.NumOps)))}
		// Mix small operands (short varints) with full-width ones.
		if rng.Intn(2) == 0 {
			ev.A, ev.B = uint64(rng.Intn(256)), uint64(rng.Intn(64))
		} else {
			ev.A, ev.B = rng.Uint64(), rng.Uint64()
		}
		events[i] = ev
	}
	return events
}

// encodeV2 runs events through WriterV2 and returns the wire bytes.
func encodeV2(t testing.TB, events []Event, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, compress)
	if err != nil {
		t.Fatalf("NewWriterV2: %v", err)
	}
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("writer count %d, emitted %d", w.Count(), len(events))
	}
	return buf.Bytes()
}

// decodeAll replays a stream into memory.
func decodeAll(t testing.TB, data []byte) []Event {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var rec Recorder
	if _, err := r.Replay(&rec); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return rec.Events
}

func TestV2RoundTripMultiFrame(t *testing.T) {
	events := randomEvents(60000, 11)
	for _, compress := range []bool{false, true} {
		data := encodeV2(t, events, compress)
		if len(data) <= frameHeaderLen+6 {
			t.Fatalf("compress=%v: suspiciously small encoding (%d bytes)", compress, len(data))
		}
		got := decodeAll(t, data)
		if len(got) != len(events) {
			t.Fatalf("compress=%v: decoded %d events, wrote %d", compress, len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("compress=%v: event %d: %+v != %+v", compress, i, got[i], events[i])
			}
		}
		n, err := Verify(bytes.NewReader(data))
		if err != nil || n != uint64(len(events)) {
			t.Fatalf("compress=%v: Verify = %d,%v", compress, n, err)
		}
	}
}

func TestV2EmptyStream(t *testing.T) {
	data := encodeV2(t, nil, false)
	if got := decodeAll(t, data); len(got) != 0 {
		t.Fatalf("decoded %d events from empty stream", len(got))
	}
	if n, err := Verify(bytes.NewReader(data)); err != nil || n != 0 {
		t.Fatalf("Verify = %d,%v", n, err)
	}
}

// TestV1SeedTraceCompat pins the v1 reading path: the checked-in capture
// must keep replaying to the same event count, and re-encoding it as v2
// (both plain and compressed) must round-trip the identical stream.
func TestV1SeedTraceCompat(t *testing.T) {
	seed := readSeedTrace(t)
	if seed[4] != formatVersion {
		t.Fatalf("seed trace is version %d, want v1", seed[4])
	}
	v1 := decodeAll(t, seed)
	if len(v1) != seedTraceEvents {
		t.Fatalf("v1 seed replayed %d events, want %d", len(v1), seedTraceEvents)
	}
	if n, err := Verify(bytes.NewReader(seed)); err != nil || n != seedTraceEvents {
		t.Fatalf("Verify(v1) = %d,%v", n, err)
	}
	for _, compress := range []bool{false, true} {
		v2 := decodeAll(t, encodeV2(t, v1, compress))
		if len(v2) != len(v1) {
			t.Fatalf("compress=%v: v2 re-encoding replayed %d events, want %d", compress, len(v2), len(v1))
		}
		for i := range v2 {
			if v2[i] != v1[i] {
				t.Fatalf("compress=%v: event %d diverged across v1->v2: %+v != %+v", compress, i, v2[i], v1[i])
			}
		}
	}
}

// TestV2RejectsCorruption walks the classified failure modes: every one
// must surface ErrBadTrace, and flipping any single byte of a valid
// stream must never produce a quietly wrong decode of v2 framing.
func TestV2RejectsCorruption(t *testing.T) {
	events := randomEvents(500, 23)
	data := encodeV2(t, events, false)

	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		d := mutate(append([]byte(nil), data...))
		r, err := NewReader(bytes.NewReader(d))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("%s: unclassified NewReader error %v", name, err)
			}
			return
		}
		if _, err := r.Replay(&Recorder{}); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("%s: Replay error = %v, want ErrBadTrace", name, err)
		}
	}

	check("unknown flags", func(d []byte) []byte { d[5] |= 0x80; return d })
	check("future version", func(d []byte) []byte { d[4] = 3; return d })
	check("payload bit flip", func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d })
	check("crc field flip", func(d []byte) []byte { d[6+12] ^= 0x01; return d })
	check("torn frame header", func(d []byte) []byte { return d[:6+frameHeaderLen-3] })
	check("torn payload", func(d []byte) []byte { return d[:len(d)-7] })
	check("oversized raw length", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[6:], maxFrameRaw+1)
		return d
	})
	check("zero event count", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[6+8:], 0)
		return d
	})
	check("event count beyond payload", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[6+8:], 1<<30)
		return d
	})
	check("trailing garbage after frame", func(d []byte) []byte {
		return append(d, 0xde, 0xad)
	})

	// Compressed stream corruption: CRC guards the stored payload, so a
	// flipped compressed byte is caught before inflate ever runs.
	cdata := encodeV2(t, events, true)
	cd := append([]byte(nil), cdata...)
	cd[len(cd)/2] ^= 0x10
	r, err := NewReader(bytes.NewReader(cd))
	if err == nil {
		_, err = r.Replay(&Recorder{})
	}
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("compressed flip: error = %v, want ErrBadTrace", err)
	}
}

// TestV2TruncationAlwaysClean cuts a multi-frame stream at every offset:
// the reader must either finish a clean (short) decode at a frame
// boundary or report ErrBadTrace — never panic, hang, or return an
// unclassified error.
func TestV2TruncationAlwaysClean(t *testing.T) {
	data := encodeV2(t, randomEvents(40000, 5), false)
	for cut := 0; cut < len(data); cut += 1 + cut/9 {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("cut %d: unclassified NewReader error %v", cut, err)
			}
			continue
		}
		if _, err := r.Replay(&Recorder{}); err != nil && !errors.Is(err, ErrBadTrace) {
			t.Fatalf("cut %d: unclassified Replay error %v", cut, err)
		}
		if _, err := Verify(bytes.NewReader(data[:cut])); err != nil && !errors.Is(err, ErrBadTrace) {
			t.Fatalf("cut %d: unclassified Verify error %v", cut, err)
		}
	}
}

// TestV2ReaderCountMatchesReplay keeps Reader.Count coherent with the
// events handed out, across frame boundaries.
func TestV2ReaderCountMatchesReplay(t *testing.T) {
	data := encodeV2(t, randomEvents(30000, 3), true)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 30000 || r.Count() != n {
		t.Fatalf("decoded %d, reader count %d", n, r.Count())
	}
}

// The writer lifecycle contract: Flush is a re-arming mid-stream
// checkpoint — events emitted after it open a new frame that the next
// Flush or Close seals — and Close latches the writer so a late Emit is a
// loud error, not a silently lost frame.
func TestV2WriterReArmsAfterFlush(t *testing.T) {
	events := randomEvents(500, 11)
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, false)
	if err != nil {
		t.Fatalf("NewWriterV2: %v", err)
	}
	// Interleave Emits with mid-stream Flushes, including a double Flush
	// (second one finds no open frame) — the live-ingest producer pattern.
	for i, ev := range events {
		w.Emit(ev)
		if i%97 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatalf("mid-stream Flush at %d: %v", i, err)
			}
			if i%194 == 0 {
				if err := w.Flush(); err != nil {
					t.Fatalf("double Flush at %d: %v", i, err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(events))
	}
	got := decodeAll(t, buf.Bytes())
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d: events emitted after a Flush were lost", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestV2WriterEmitAfterCloseLatches(t *testing.T) {
	events := randomEvents(10, 12)
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, false)
	if err != nil {
		t.Fatalf("NewWriterV2: %v", err)
	}
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}
	wire := append([]byte(nil), buf.Bytes()...)

	w.Emit(events[0])
	if !errors.Is(w.Err(), ErrWriterClosed) {
		t.Fatalf("Err after post-Close Emit = %v, want ErrWriterClosed", w.Err())
	}
	if !errors.Is(w.Close(), ErrWriterClosed) {
		t.Fatalf("Close after post-Close Emit should surface ErrWriterClosed")
	}
	if w.Count() != uint64(len(events)) {
		t.Fatalf("Count = %d after rejected Emit, want %d", w.Count(), len(events))
	}
	if !bytes.Equal(buf.Bytes(), wire) {
		t.Fatalf("post-Close Emit changed the wire bytes")
	}
	// The sealed stream still decodes cleanly to exactly the pre-Close
	// events.
	if got := decodeAll(t, buf.Bytes()); len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
}

// A mid-stream Flush must leave the wire a readable prefix: every event
// emitted before the Flush is decodable from the bytes written so far.
func TestV2FlushedPrefixIsReadable(t *testing.T) {
	for _, compress := range []bool{false, true} {
		events := randomEvents(3000, 13)
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf, compress)
		if err != nil {
			t.Fatalf("NewWriterV2: %v", err)
		}
		for _, ev := range events[:1700] {
			w.Emit(ev)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		prefix := append([]byte(nil), buf.Bytes()...)
		if got := decodeAll(t, prefix); len(got) != 1700 {
			t.Fatalf("compress=%v: flushed prefix decodes %d events, want 1700", compress, len(got))
		}
		for _, ev := range events[1700:] {
			w.Emit(ev)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if got := decodeAll(t, buf.Bytes()); len(got) != len(events) {
			t.Fatalf("compress=%v: full stream decodes %d events, want %d", compress, len(got), len(events))
		}
	}
}
