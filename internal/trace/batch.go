package trace

import (
	"io"

	"memotable/internal/isa"
)

// Batched event delivery. A replayed trace costs one virtual Emit call per
// event per sink; at the experiment matrix's scale — hundreds of millions
// of events fanned out to several table configurations each — that
// dispatch dominates the replay loop. BatchSink lets a decoder hand a
// whole decoded block to a sink in one call, and EmitAll adapts sinks that
// only implement the per-event interface, so batch-aware producers work
// against any Sink.
//
// Batch slices are owned by the producer and reused between calls: a sink
// must consume (or copy) the events during EmitBatch and must not retain
// the slice.

// BatchSink is a Sink that can consume a block of events in one call.
// EmitBatch(evs) must be observationally identical to calling Emit on
// each event in order.
type BatchSink interface {
	Sink
	EmitBatch(evs []Event)
}

// EmitAll delivers a block to any sink: batch-aware sinks get one
// EmitBatch call, plain sinks get one Emit per event.
func EmitAll(s Sink, evs []Event) {
	if bs, ok := s.(BatchSink); ok {
		bs.EmitBatch(evs)
		return
	}
	for _, ev := range evs {
		s.Emit(ev)
	}
}

// OpMask is a bit set of operation classes, one bit per isa.Op. It is the
// vocabulary of the short-circuit query below: a sink that only consumes
// some classes advertises them, and a fused replay loop skips handing it
// any block whose events all fall outside the mask.
type OpMask uint32

// MaskAll matches every operation class.
const MaskAll = OpMask(1<<isa.NumOps) - 1

// MaskOf builds the mask covering the given classes.
func MaskOf(ops ...isa.Op) OpMask {
	var m OpMask
	for _, op := range ops {
		m |= 1 << op
	}
	return m
}

// Has reports whether the class is in the mask.
func (m OpMask) Has(op isa.Op) bool { return m&(1<<op) != 0 }

// OpMasker is implemented by sinks that consume only some operation
// classes. A sink without the method consumes everything (SinkMask
// returns MaskAll for it).
type OpMasker interface {
	OpMask() OpMask
}

// SinkMask returns the classes a sink consumes: its advertised mask, or
// MaskAll for sinks that do not implement OpMasker.
func SinkMask(s Sink) OpMask {
	if om, ok := s.(OpMasker); ok {
		return om.OpMask()
	}
	return MaskAll
}

// EmitBatch implements BatchSink: the block is fanned out sink by sink,
// one call each, instead of event by event.
func (m Multi) EmitBatch(evs []Event) {
	for _, s := range m {
		EmitAll(s, evs)
	}
}

// OpMask implements OpMasker: a fan-out consumes the union of its sinks'
// classes.
func (m Multi) OpMask() OpMask {
	var mask OpMask
	for _, s := range m {
		mask |= SinkMask(s)
	}
	return mask
}

// EmitBatch implements BatchSink: the whole block is tallied in one call.
func (c *Counter) EmitBatch(evs []Event) {
	for _, ev := range evs {
		c.Counts[ev.Op]++
	}
}

// EmitBatch implements BatchSink: the kept events are compacted into a
// reused scratch block and forwarded in one call. Order is preserved.
func (f *Filter) EmitBatch(evs []Event) {
	if cap(f.scratch) < len(evs) {
		f.scratch = make([]Event, 0, len(evs))
	}
	kept := f.scratch[:0]
	for _, ev := range evs {
		if f.Keep[ev.Op] {
			kept = append(kept, ev)
		}
	}
	f.scratch = kept
	if len(kept) > 0 {
		EmitAll(f.Next, kept)
	}
}

// OpMask implements OpMasker: the filter consumes the classes it keeps
// that its downstream sink also consumes.
func (f *Filter) OpMask() OpMask {
	var m OpMask
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if f.Keep[op] {
			m |= 1 << op
		}
	}
	return m & SinkMask(f.Next)
}

// EmitBatch implements BatchSink.
func (r *Recorder) EmitBatch(evs []Event) { r.Events = append(r.Events, evs...) }

// defaultBatchLen sizes the reusable decode block of ReplayBatch: 4096
// events (96 KiB) sits past the point where per-event dispatch overhead
// is amortized while staying L2-resident.
const defaultBatchLen = 4096

// ReadBatch decodes up to cap(dst) events (at least one; a default block
// if dst has no capacity) into dst[:0] and returns the filled slice. At a
// clean end of stream it returns (nil, io.EOF); a short batch before EOF
// is not an error. The returned slice aliases dst's backing array, so
// callers own its reuse.
func (r *Reader) ReadBatch(dst []Event) ([]Event, error) {
	if cap(dst) == 0 {
		dst = make([]Event, 0, defaultBatchLen)
	}
	dst = dst[:0]
	if r.version == formatVersionV2 {
		return r.readBatchV2(dst)
	}
	for len(dst) < cap(dst) {
		ev, err := r.Next()
		if err != nil {
			if err == io.EOF && len(dst) > 0 {
				return dst, nil
			}
			if err == io.EOF {
				return nil, io.EOF
			}
			return dst, err
		}
		dst = append(dst, ev)
	}
	return dst, nil
}

// ReplayBatch streams every remaining event into sink in decoded blocks,
// returning the event count. It is Replay with block delivery: batch-aware
// sinks see one EmitBatch per block instead of one Emit per event, and
// the block buffer is reused between calls. Event order is identical to
// Replay's.
func (r *Reader) ReplayBatch(sink Sink) (uint64, error) {
	buf := make([]Event, 0, defaultBatchLen)
	var n uint64
	for {
		batch, err := r.ReadBatch(buf)
		if err == io.EOF {
			return n, nil
		}
		if len(batch) > 0 {
			EmitAll(sink, batch)
			n += uint64(len(batch))
		}
		if err != nil {
			return n, err
		}
		buf = batch
	}
}
