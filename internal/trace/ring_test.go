package trace

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memotable/internal/isa"
)

// ringBlocks builds n distinct one-event blocks so consumers can check
// ordering by operand value.
func ringBlocks(n int) []Block {
	out := make([]Block, n)
	for i := range out {
		out[i] = Block{
			Events: []Event{{Op: isa.OpIMul, A: uint64(i), B: 1}},
			Mask:   MaskOf(isa.OpIMul),
		}
	}
	return out
}

// TestRingBroadcastOrder: every consumer sees every block, in
// publication order, regardless of relative consumer speed.
func TestRingBroadcastOrder(t *testing.T) {
	const consumers, blocks = 3, 500
	r := NewRing(4, consumers)
	var wg sync.WaitGroup
	seen := make([][]uint64, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				b, ok, err := r.Next(c)
				if err != nil {
					t.Errorf("consumer %d: unexpected abort: %v", c, err)
					return
				}
				if !ok {
					return
				}
				seen[c] = append(seen[c], b.Events[0].A)
			}
		}(c)
	}
	for _, b := range ringBlocks(blocks) {
		if err := r.Publish(b); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	r.Close()
	wg.Wait()
	for c := 0; c < consumers; c++ {
		if len(seen[c]) != blocks {
			t.Fatalf("consumer %d saw %d of %d blocks", c, len(seen[c]), blocks)
		}
		for i, v := range seen[c] {
			if v != uint64(i) {
				t.Fatalf("consumer %d: block %d out of order: got %d", c, i, v)
			}
		}
	}
}

// TestRingBounded: a producer running ahead of a parked consumer stalls
// at the ring's capacity instead of buffering without bound, and the
// stall is counted.
func TestRingBounded(t *testing.T) {
	const capacity = 2
	r := NewRing(capacity, 1)
	blocks := ringBlocks(capacity + 1)
	for i := 0; i < capacity; i++ {
		if err := r.Publish(blocks[i]); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	published := make(chan struct{})
	go func() {
		_ = r.Publish(blocks[capacity]) // must block until the consumer drains one
		close(published)
	}()
	// The producer must park and count its stall before anything drains.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("publish past capacity never stalled")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-published:
		t.Fatal("publish past capacity did not block")
	default:
	}
	if _, ok, err := r.Next(0); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	// Retire the first block (Next retires on the following call).
	if _, ok, err := r.Next(0); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	<-published
	if r.Stalls() == 0 {
		t.Fatal("stalled publish was not counted")
	}
}

// TestRingAbortFromConsumer: an abort wakes a blocked producer and
// latches for every side.
func TestRingAbortFromConsumer(t *testing.T) {
	r := NewRing(1, 1)
	boom := errors.New("boom")
	if err := r.Publish(ringBlocks(1)[0]); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		done <- r.Publish(ringBlocks(1)[0]) // blocks: capacity 1, nothing consumed
	}()
	r.Abort(boom)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("blocked Publish returned %v; want %v", err, boom)
	}
	if _, ok, err := r.Next(0); ok || !errors.Is(err, boom) {
		t.Fatalf("Next after abort: ok=%v err=%v", ok, err)
	}
	if err := r.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush after abort: %v", err)
	}
	if err := r.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err: %v", err)
	}
	// First abort wins.
	r.Abort(errors.New("later"))
	if err := r.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err after second abort: %v", err)
	}
}

// TestRingFlushWaitsForProcessing: Flush must not return while a
// consumer still holds an unretired block — the property ingest relies
// on before the stream decoder reuses its frame buffer.
func TestRingFlushWaitsForProcessing(t *testing.T) {
	r := NewRing(2, 1)
	if err := r.Publish(ringBlocks(1)[0]); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if _, ok, err := r.Next(0); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	// The consumer holds the block: Flush must block.
	flushed := make(chan struct{})
	go func() {
		if err := r.Flush(); err != nil {
			t.Errorf("Flush: %v", err)
		}
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("Flush returned while the block was still being processed")
	default:
	}
	r.Close()
	if _, ok, _ := r.Next(0); ok {
		t.Fatal("Next after close and drain returned a block")
	}
	<-flushed
}

// TestRingPublishAfterClose: the contract violation aborts the ring
// rather than corrupting consumer state.
func TestRingPublishAfterClose(t *testing.T) {
	r := NewRing(1, 1)
	r.Close()
	if err := r.Publish(ringBlocks(1)[0]); err == nil {
		t.Fatal("Publish after Close succeeded")
	}
	if r.Err() == nil {
		t.Fatal("misuse did not latch")
	}
}

// TestRingHammer exercises the full protocol under -race: a producer,
// consumers of deliberately different speeds, and a concurrent flusher.
func TestRingHammer(t *testing.T) {
	const consumers, blocks = 4, 2000
	r := NewRing(8, consumers)
	var wg sync.WaitGroup
	var total atomic.Uint64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var n uint64
			for {
				b, ok, err := r.Next(c)
				if !ok || err != nil {
					total.Add(n)
					return
				}
				if c == 0 {
					// The slow consumer does token work per block.
					for i := 0; i < 50; i++ {
						_ = b.Events[0].A * uint64(i)
					}
				}
				n += uint64(len(b.Events))
			}
		}(c)
	}
	for _, b := range ringBlocks(blocks) {
		if err := r.Publish(b); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	r.Close()
	wg.Wait()
	if got := total.Load(); got != consumers*blocks {
		t.Fatalf("consumed %d events; want %d", got, consumers*blocks)
	}
}
