package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"memotable/internal/isa"
)

// readSeedTrace loads the checked-in capture of a real workload (vdiff at
// 16x16, recorded through the public Capture API).
func readSeedTrace(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "vdiff-16.mtrc"))
	if err != nil {
		t.Fatalf("seed trace: %v", err)
	}
	return data
}

// cleanDecodeErr reports whether err is an acceptable decode outcome:
// success or a classified corruption error — never anything unwrapped.
func cleanDecodeErr(err error) bool {
	return err == nil || err == io.EOF || errors.Is(err, ErrBadTrace)
}

// FuzzTraceReader feeds arbitrary bytes to the reader: corrupt or
// truncated input must surface ErrBadTrace (or decode cleanly), never
// panic and never return an unclassified error.
func FuzzTraceReader(f *testing.F) {
	seed := readSeedTrace(f)
	f.Add(seed)
	f.Add(seed[:5])          // header only
	f.Add(seed[:6])          // event cut mid-encoding
	f.Add(seed[:len(seed)/2]) // torn mid-stream
	f.Add([]byte{})
	f.Add([]byte("MTRC"))                      // truncated header
	f.Add([]byte{'M', 'T', 'R', 'C', 2})       // future version
	f.Add([]byte{'X', 'T', 'R', 'C', 1, 0, 0}) // bad magic
	f.Add(append(append([]byte{}, seed[:5]...), 0xff, 0x80, 0x80)) // bad op, dangling varint
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader: unclassified error %v", err)
			}
			return
		}
		var n uint64
		for {
			ev, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !cleanDecodeErr(err) {
					t.Fatalf("Next: unclassified error %v", err)
				}
				break
			}
			if ev.Op >= isa.NumOps {
				t.Fatalf("decoded out-of-range op %d", ev.Op)
			}
			n++
		}
		if n != r.Count() {
			t.Fatalf("reader count %d, decoded %d", r.Count(), n)
		}
	})
}

// FuzzTraceRoundTrip drives Writer -> Reader with an arbitrary event
// stream derived from the fuzz input and requires a lossless round trip;
// it then truncates the encoding at every prefix length and requires a
// clean error, never a panic.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(readSeedTrace(f))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the input as {op, a-varint, b-varint} triples, mapping the
		// op byte into range, so the fuzzer explores operand encodings.
		var events []Event
		for r := bytes.NewReader(data); r.Len() > 0 && len(events) < 4096; {
			op, _ := r.ReadByte()
			a, _ := binary.ReadUvarint(r)
			b, _ := binary.ReadUvarint(r)
			events = append(events, Event{Op: isa.Op(op) % isa.NumOps, A: a, B: b})
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for _, ev := range events {
			w.Emit(ev)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if w.Count() != uint64(len(events)) {
			t.Fatalf("writer count %d, emitted %d", w.Count(), len(events))
		}

		encoded := buf.Bytes()
		r, err := NewReader(bytes.NewReader(encoded))
		if err != nil {
			t.Fatalf("NewReader on own encoding: %v", err)
		}
		var got Recorder
		n, err := r.Replay(&got)
		if err != nil {
			t.Fatalf("Replay on own encoding: %v", err)
		}
		if n != uint64(len(events)) {
			t.Fatalf("replayed %d events, wrote %d", n, len(events))
		}
		for i, ev := range got.Events {
			if ev != events[i] {
				t.Fatalf("event %d: round-tripped %+v, wrote %+v", i, ev, events[i])
			}
		}

		// Every truncation must fail cleanly: ErrBadTrace or a short clean
		// decode ending in EOF, never a panic or foreign error.
		for cut := 0; cut < len(encoded); cut += 1 + cut/7 {
			tr, err := NewReader(bytes.NewReader(encoded[:cut]))
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("truncated header at %d: unclassified error %v", cut, err)
				}
				continue
			}
			if _, err := tr.Replay(&Recorder{}); !cleanDecodeErr(err) {
				t.Fatalf("truncation at %d: unclassified error %v", cut, err)
			}
		}
	})
}
