package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"memotable/internal/isa"
)

// readSeedTrace loads the checked-in capture of a real workload (vdiff at
// 16x16, recorded through the public Capture API).
func readSeedTrace(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "vdiff-16.mtrc"))
	if err != nil {
		t.Fatalf("seed trace: %v", err)
	}
	return data
}

// cleanDecodeErr reports whether err is an acceptable decode outcome:
// success or a classified corruption error — never anything unwrapped.
func cleanDecodeErr(err error) bool {
	return err == nil || err == io.EOF || errors.Is(err, ErrBadTrace)
}

// reencodeV2 decodes a v1 stream and re-encodes it in format v2.
func reencodeV2(t testing.TB, v1 []byte, compress bool) []byte {
	t.Helper()
	r, err := NewReader(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("reencode: %v", err)
	}
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, compress)
	if err != nil {
		t.Fatalf("reencode: %v", err)
	}
	if _, err := r.Replay(w); err != nil {
		t.Fatalf("reencode: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("reencode: %v", err)
	}
	return buf.Bytes()
}

// FuzzTraceReader feeds arbitrary bytes to the reader: corrupt or
// truncated input must surface ErrBadTrace (or decode cleanly), never
// panic and never return an unclassified error.
func FuzzTraceReader(f *testing.F) {
	seed := readSeedTrace(f)
	f.Add(seed)
	f.Add(seed[:5])           // header only
	f.Add(seed[:6])           // event cut mid-encoding
	f.Add(seed[:len(seed)/2]) // torn mid-stream
	f.Add([]byte{})
	f.Add([]byte("MTRC"))                                          // truncated header
	f.Add([]byte{'M', 'T', 'R', 'C', 9})                           // future version
	f.Add([]byte{'X', 'T', 'R', 'C', 1, 0, 0})                     // bad magic
	f.Add(append(append([]byte{}, seed[:5]...), 0xff, 0x80, 0x80)) // bad op, dangling varint
	// v2 seeds: valid framed streams (plain and compressed), a bare v2
	// header, and one with a torn frame header.
	v2 := reencodeV2(f, seed, false)
	f.Add(v2)
	f.Add(reencodeV2(f, seed, true))
	f.Add(v2[:6])
	f.Add(v2[:6+frameHeaderLen/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader: unclassified error %v", err)
			}
			return
		}
		var n uint64
		for {
			ev, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !cleanDecodeErr(err) {
					t.Fatalf("Next: unclassified error %v", err)
				}
				break
			}
			if ev.Op >= isa.NumOps {
				t.Fatalf("decoded out-of-range op %d", ev.Op)
			}
			n++
		}
		if n != r.Count() {
			t.Fatalf("reader count %d, decoded %d", r.Count(), n)
		}
	})
}

// FuzzTraceRoundTrip drives Writer -> Reader with an arbitrary event
// stream derived from the fuzz input and requires a lossless round trip;
// it then truncates the encoding at every prefix length and requires a
// clean error, never a panic.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(readSeedTrace(f))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the input as {op, a-varint, b-varint} triples, mapping the
		// op byte into range, so the fuzzer explores operand encodings.
		var events []Event
		for r := bytes.NewReader(data); r.Len() > 0 && len(events) < 4096; {
			op, _ := r.ReadByte()
			a, _ := binary.ReadUvarint(r)
			b, _ := binary.ReadUvarint(r)
			events = append(events, Event{Op: isa.Op(op) % isa.NumOps, A: a, B: b})
		}

		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for _, ev := range events {
			w.Emit(ev)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if w.Count() != uint64(len(events)) {
			t.Fatalf("writer count %d, emitted %d", w.Count(), len(events))
		}

		encoded := buf.Bytes()
		r, err := NewReader(bytes.NewReader(encoded))
		if err != nil {
			t.Fatalf("NewReader on own encoding: %v", err)
		}
		var got Recorder
		n, err := r.Replay(&got)
		if err != nil {
			t.Fatalf("Replay on own encoding: %v", err)
		}
		if n != uint64(len(events)) {
			t.Fatalf("replayed %d events, wrote %d", n, len(events))
		}
		for i, ev := range got.Events {
			if ev != events[i] {
				t.Fatalf("event %d: round-tripped %+v, wrote %+v", i, ev, events[i])
			}
		}

		// Every truncation must fail cleanly: ErrBadTrace or a short clean
		// decode ending in EOF, never a panic or foreign error.
		for cut := 0; cut < len(encoded); cut += 1 + cut/7 {
			tr, err := NewReader(bytes.NewReader(encoded[:cut]))
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("truncated header at %d: unclassified error %v", cut, err)
				}
				continue
			}
			if _, err := tr.Replay(&Recorder{}); !cleanDecodeErr(err) {
				t.Fatalf("truncation at %d: unclassified error %v", cut, err)
			}
		}
	})
}

// FuzzTraceV2FrameCorruption builds a valid v2 stream from the fuzz
// input, flips one bit at a fuzzed position, and requires the reader to
// either decode cleanly (flips in a varint payload can yield a different
// but well-formed stream only when the CRC also collides — effectively
// never) or fail with ErrBadTrace. Panics, hangs and unclassified errors
// are the bugs being hunted; Verify must classify identically.
func FuzzTraceV2FrameCorruption(f *testing.F) {
	seed := readSeedTrace(f)
	f.Add(seed[5:2048], uint32(77), false)
	f.Add(seed[5:2048], uint32(1<<20), true)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, uint32(3), false)
	f.Add([]byte{}, uint32(0), true)
	f.Fuzz(func(t *testing.T, data []byte, pos uint32, compress bool) {
		// Derive an event stream from the raw input, as the round-trip
		// fuzzer does, and encode it in v2.
		var events []Event
		for r := bytes.NewReader(data); r.Len() > 0 && len(events) < 4096; {
			op, _ := r.ReadByte()
			a, _ := binary.ReadUvarint(r)
			b, _ := binary.ReadUvarint(r)
			events = append(events, Event{Op: isa.Op(op) % isa.NumOps, A: a, B: b})
		}
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf, compress)
		if err != nil {
			t.Fatalf("NewWriterV2: %v", err)
		}
		for _, ev := range events {
			w.Emit(ev)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		encoded := buf.Bytes()
		encoded[int(pos)%len(encoded)] ^= 1 << (pos % 8)

		r, err := NewReader(bytes.NewReader(encoded))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader: unclassified error %v", err)
			}
			return
		}
		var rec Recorder
		if _, err := r.Replay(&rec); !cleanDecodeErr(err) {
			t.Fatalf("Replay: unclassified error %v", err)
		}
		for i, ev := range rec.Events {
			if ev.Op >= isa.NumOps {
				t.Fatalf("event %d: decoded out-of-range op %d", i, ev.Op)
			}
		}
		if _, err := Verify(bytes.NewReader(encoded)); !cleanDecodeErr(err) {
			t.Fatalf("Verify: unclassified error %v", err)
		}
	})
}
