package probe

import (
	"math"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/trace"
)

func TestProbeComputesAndRecords(t *testing.T) {
	var rec trace.Recorder
	p := New(&rec)

	if got := p.FMul(3, 4); got != 12 {
		t.Errorf("FMul = %g", got)
	}
	if got := p.FDiv(10, 4); got != 2.5 {
		t.Errorf("FDiv = %g", got)
	}
	if got := p.FSqrt(9); got != 3 {
		t.Errorf("FSqrt = %g", got)
	}
	if got := p.FAdd(1, 2); got != 3 {
		t.Errorf("FAdd = %g", got)
	}
	if got := p.FSub(5, 2); got != 3 {
		t.Errorf("FSub = %g", got)
	}
	if got := p.IMul(-6, 7); got != -42 {
		t.Errorf("IMul = %d", got)
	}
	if got := p.IAdd(6, 7); got != 13 {
		t.Errorf("IAdd = %d", got)
	}
	p.Load(0x1000)
	p.Store(0x2000)
	p.Branch()
	p.Nop()
	p.IAlu()
	if got := p.LoadF(0x3000, 1.5); got != 1.5 {
		t.Errorf("LoadF = %g", got)
	}

	wantOps := []isa.Op{
		isa.OpFMul, isa.OpFDiv, isa.OpFSqrt, isa.OpFAdd, isa.OpFAdd,
		isa.OpIMul, isa.OpIAlu, isa.OpLoad, isa.OpStore, isa.OpBranch,
		isa.OpNop, isa.OpIAlu, isa.OpLoad,
	}
	if len(rec.Events) != len(wantOps) {
		t.Fatalf("recorded %d events, want %d", len(rec.Events), len(wantOps))
	}
	for i, op := range wantOps {
		if rec.Events[i].Op != op {
			t.Errorf("event %d: op %v, want %v", i, rec.Events[i].Op, op)
		}
	}
	// Operand encoding spot checks.
	if rec.Events[0].A != math.Float64bits(3) || rec.Events[0].B != math.Float64bits(4) {
		t.Error("FMul operands misencoded")
	}
	if rec.Events[5].A != ^uint64(5) {
		t.Error("IMul negative operand misencoded")
	}
	if rec.Events[7].A != 0x1000 {
		t.Error("Load address misencoded")
	}
}

func TestProbeNoSinks(t *testing.T) {
	p := New()
	if got := p.FMul(2, 8); got != 16 {
		t.Fatalf("FMul without sinks = %g", got)
	}
}

func TestProbeMultipleSinks(t *testing.T) {
	var a, b trace.Counter
	p := New(&a, &b)
	p.FDiv(1, 3)
	p.FDiv(1, 7)
	if a.Of(isa.OpFDiv) != 2 || b.Of(isa.OpFDiv) != 2 {
		t.Fatalf("fanout counts %d,%d", a.Of(isa.OpFDiv), b.Of(isa.OpFDiv))
	}
}
