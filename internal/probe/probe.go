// Package probe is the instrumented arithmetic layer the workloads compute
// through. Every operation both produces its ordinary result and emits a
// trace.Event, so running a workload *is* capturing its trace — the role
// Shade played for the paper's SPARC binaries.
//
// The probe is deliberately free of MEMO-TABLE knowledge: tables, cycle
// models and trace files all attach as sinks, keeping the workload code a
// faithful expression of its algorithm.
package probe

import (
	"math"

	"memotable/internal/isa"
	"memotable/internal/trace"
)

// Probe instruments arithmetic, memory and control operations.
type Probe struct {
	sink trace.Sink
}

// New builds a probe feeding the given sinks. With no sinks the probe
// computes without recording (useful for warming reference outputs).
func New(sinks ...trace.Sink) *Probe {
	switch len(sinks) {
	case 0:
		return &Probe{}
	case 1:
		return &Probe{sink: sinks[0]}
	default:
		return &Probe{sink: trace.Multi(sinks)}
	}
}

func (p *Probe) emit(op isa.Op, a, b uint64) {
	if p.sink != nil {
		p.sink.Emit(trace.Event{Op: op, A: a, B: b})
	}
}

// FMul performs and records a floating-point multiplication.
func (p *Probe) FMul(a, b float64) float64 {
	p.emit(isa.OpFMul, math.Float64bits(a), math.Float64bits(b))
	return a * b
}

// FDiv performs and records a floating-point division.
func (p *Probe) FDiv(a, b float64) float64 {
	p.emit(isa.OpFDiv, math.Float64bits(a), math.Float64bits(b))
	return a / b
}

// FSqrt performs and records a floating-point square root.
func (p *Probe) FSqrt(a float64) float64 {
	p.emit(isa.OpFSqrt, math.Float64bits(a), 0)
	return math.Sqrt(a)
}

// FAdd performs and records a floating-point addition.
func (p *Probe) FAdd(a, b float64) float64 {
	p.emit(isa.OpFAdd, math.Float64bits(a), math.Float64bits(b))
	return a + b
}

// FSub performs and records a floating-point subtraction (same unit class
// as addition).
func (p *Probe) FSub(a, b float64) float64 {
	p.emit(isa.OpFAdd, math.Float64bits(a), math.Float64bits(b))
	return a - b
}

// IMul performs and records an integer multiplication.
func (p *Probe) IMul(a, b int64) int64 {
	p.emit(isa.OpIMul, uint64(a), uint64(b))
	return a * b
}

// IAlu records a single-cycle integer operation (add, compare, shift,
// address arithmetic) without modelling its value.
func (p *Probe) IAlu() { p.emit(isa.OpIAlu, 0, 0) }

// IAdd performs and records an integer addition as an IAlu operation.
func (p *Probe) IAdd(a, b int64) int64 {
	p.emit(isa.OpIAlu, uint64(a), uint64(b))
	return a + b
}

// Load records a memory read at the given byte address.
func (p *Probe) Load(addr uint64) { p.emit(isa.OpLoad, addr, 0) }

// Store records a memory write at the given byte address.
func (p *Probe) Store(addr uint64) { p.emit(isa.OpStore, addr, 0) }

// LoadF records a load and returns the value unchanged: sugar for reading
// a modelled array element.
func (p *Probe) LoadF(addr uint64, v float64) float64 {
	p.Load(addr)
	return v
}

// Branch records a control transfer.
func (p *Probe) Branch() { p.emit(isa.OpBranch, 0, 0) }

// Nop records an annulled pipeline slot.
func (p *Probe) Nop() { p.emit(isa.OpNop, 0, 0) }
