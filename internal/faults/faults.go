// Package faults is a process-wide fault-injection registry. Production
// code threads named injection points through its I/O and compute edges
// (faults.Inject(faults.SpillWrite) before a spill-file write, for
// instance); a test or a soak run activates a Plan describing which
// points should fail, how often, and how — as a returned error or as a
// panic. With no plan active every injection point is a single atomic
// load, so the points can stay compiled into release binaries.
//
// Plans are deterministic: a rule's probabilistic decisions are a pure
// hash of (plan seed, point name, per-point hit index), so two runs of
// the same workload sequence observe the same fault pattern at every
// point — the property the golden-pinned soak tests rely on. Under
// concurrency the assignment of hit indices to goroutines can vary, but
// the set of fired hits per point does not.
//
// Plans parse from a compact spec (the FAULTS environment variable and
// the -faults CLI flag use the same grammar):
//
//	spec   := clause (';' clause)*
//	clause := "seed=" uint
//	        | point [':' param]...
//	param  := "p=" float    fire probability per hit (default 1)
//	        | "count=" int  fire at most this many times (default unlimited)
//	        | "after=" int  skip the first N hits of the point (default 0)
//	        | "error"       injected failure returns an error (default)
//	        | "panic"       injected failure panics with a *Fault
//
// Example: "seed=7;engine.spill.write:p=0.01;engine.sink.emit:count=1:panic"
package faults

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// The injection-point catalog. Every point threaded through the engine
// and trace layers is named here; Parse rejects unknown points so a typo
// in a FAULTS spec fails loudly instead of silently injecting nothing.
const (
	// CaptureRun fires when a workload capture (or a declined workload's
	// direct re-execution) is about to run. Error mode fails the capture;
	// panic mode simulates the workload itself panicking.
	CaptureRun = "engine.capture.run"
	// SpillCreate fires before the spill temp file is created.
	SpillCreate = "engine.spill.create"
	// SpillWrite fires before each write to an open spill file.
	SpillWrite = "engine.spill.write"
	// SpillRename fires before a sealed spill file is renamed from its
	// temp name to its durable name.
	SpillRename = "engine.spill.rename"
	// SpillRead fires before a spill file is opened for verification,
	// replay, or block decoding.
	SpillRead = "engine.spill.read"
	// FrameCRC fires when a v2 trace frame's checksum is about to be
	// accepted: an injected failure reports the frame as corrupt.
	FrameCRC = "trace.frame.crc"
	// BlockDecode fires before a trace is decoded into shared blocks.
	// Error mode makes the decoded-block tier unavailable for that
	// replay (it falls back to the byte path); panic mode panics.
	BlockDecode = "engine.block.decode"
	// SinkEmit fires during replay delivery: once per decoded block on
	// the block path (serial or fan-out), once per stream on the byte
	// paths. Panic mode simulates a panicking measurement sink.
	SinkEmit = "engine.sink.emit"
	// FanoutPublish fires on the producer side of a fan-out replay,
	// before each block is broadcast to the consumer ring. Error mode
	// fails the replay mid-stream; panic mode unwinds the producer
	// through the replay's panic isolation.
	FanoutPublish = "replay.fanout.publish"
	// FanoutConsume fires on each fan-out consumer goroutine, once per
	// block it receives. Both modes abort the ring: the producer's replay
	// fails with the consumer's error, exactly as a panicking sink would
	// fail a serial replay.
	FanoutConsume = "replay.fanout.consume"
	// IngestFeed fires on each chunk of bytes fed into a live ingest
	// session. Error mode fails the feed, aborting the session as a
	// dropped connection would.
	IngestFeed = "ingest.feed"
	// IngestFrame fires when a complete, checksum-verified streamed frame
	// is about to be delivered to the ingest session's sinks.
	IngestFrame = "ingest.frame"
	// IngestSeal fires when a settled ingest session is about to be
	// sealed — adopted into the trace cache and published to the
	// persistent store. Error mode fails the seal; the session's replay
	// stays valid but nothing is persisted.
	IngestSeal = "ingest.seal"
	// StoreRead fires before a persistent trace-store entry is opened
	// and verified. Error mode makes the lookup a miss.
	StoreRead = "store.read"
	// StoreWrite fires before each write to a trace-store temp file.
	StoreWrite = "store.write"
	// StoreRename fires before a sealed store temp file is renamed to
	// its content-addressed name.
	StoreRename = "store.rename"
	// ServiceAdmit fires when the service front-end is about to admit a
	// run request. Error mode rejects the request as the admission
	// controller would under overload (HTTP 429).
	ServiceAdmit = "service.admit"
	// ServiceRun fires when an admitted run is about to execute on the
	// shared engine. Error mode fails the request (HTTP 500); every
	// coalesced follower of the run observes the same failure.
	ServiceRun = "service.run"
	// ServiceRender fires when a completed run's results are about to be
	// rendered for the HTTP response. Error mode fails rendering for
	// that request alone (HTTP 500) — the run's cache effects remain.
	ServiceRender = "service.render"
	// FleetSpawn fires when the fleet coordinator is about to launch a
	// worker process for a shard attempt. Error mode fails the attempt
	// as an exec failure would; the shard's bounded retry covers it.
	FleetSpawn = "fleet.spawn"
	// FleetCollect fires when a worker has exited and its manifest is
	// about to be decoded. Error mode discards the attempt's output, as
	// a torn pipe would.
	FleetCollect = "fleet.collect"
	// FleetVerify fires before a decoded shard manifest's provenance is
	// recomputed. Error mode fails the attempt before verification, so
	// the shard retries on a fresh worker.
	FleetVerify = "fleet.verify"
)

// Points returns the injection-point catalog, sorted.
func Points() []string {
	pts := []string{
		CaptureRun, SpillCreate, SpillWrite, SpillRename, SpillRead,
		FrameCRC, BlockDecode, SinkEmit, FanoutPublish, FanoutConsume,
		IngestFeed, IngestFrame, IngestSeal,
		StoreRead, StoreWrite, StoreRename,
		ServiceAdmit, ServiceRun, ServiceRender,
		FleetSpawn, FleetCollect, FleetVerify,
	}
	sort.Strings(pts)
	return pts
}

// knownPoint reports whether name is in the catalog.
func knownPoint(name string) bool {
	for _, p := range Points() {
		if p == name {
			return true
		}
	}
	return false
}

// ErrInjected is the sentinel every injected error wraps; callers
// classify injected faults with errors.Is(err, faults.ErrInjected).
var ErrInjected = errors.New("injected fault")

// Fault is one injected failure: the point it fired at and the point's
// hit index that triggered it. It is both the error returned in error
// mode and the panic value in panic mode.
type Fault struct {
	Point string
	Hit   int64
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("injected fault at %s (hit %d)", f.Point, f.Hit)
}

// Unwrap makes every Fault errors.Is-able against ErrInjected.
func (f *Fault) Unwrap() error { return ErrInjected }

// Mode selects how a rule's faults manifest.
type Mode uint8

// Modes.
const (
	// ModeError returns the *Fault from Inject.
	ModeError Mode = iota
	// ModePanic panics with the *Fault.
	ModePanic
)

// Rule arms one injection point: fire with probability Prob on each hit
// past the first After, at most Count times (0 = unlimited), in the
// given Mode.
type Rule struct {
	Point string
	Prob  float64
	Count int64
	After int64
	Mode  Mode
}

// armedRule is a Rule plus its runtime counters.
type armedRule struct {
	Rule
	hits  atomic.Int64 // hits observed at the rule's point
	fired atomic.Int64 // faults this rule has injected
}

// Plan is an activatable set of rules. Build one with New or Parse and
// install it with Activate; a nil Plan injects nothing.
type Plan struct {
	Seed  uint64
	rules map[string][]*armedRule
	fired atomic.Int64
}

// New builds a plan from rules with the given seed. Unknown points and
// out-of-range probabilities are rejected.
func New(seed uint64, rules ...Rule) (*Plan, error) {
	p := &Plan{Seed: seed, rules: make(map[string][]*armedRule)}
	for _, r := range rules {
		if !knownPoint(r.Point) {
			return nil, fmt.Errorf("faults: unknown injection point %q (have %s)",
				r.Point, strings.Join(Points(), ", "))
		}
		if math.IsNaN(r.Prob) || r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faults: point %s: probability %v out of [0,1]", r.Point, r.Prob)
		}
		if r.Prob == 0 {
			r.Prob = 1 // unset in a spec: fire on every eligible hit
		}
		p.rules[r.Point] = append(p.rules[r.Point], &armedRule{Rule: r})
	}
	return p, nil
}

// Parse builds a plan from the spec grammar in the package comment.
func Parse(spec string) (*Plan, error) {
	var seed uint64
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			s, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			seed = s
			continue
		}
		parts := strings.Split(clause, ":")
		r := Rule{Point: parts[0]}
		for _, param := range parts[1:] {
			switch {
			case param == "error":
				r.Mode = ModeError
			case param == "panic":
				r.Mode = ModePanic
			case strings.HasPrefix(param, "p="), strings.HasPrefix(param, "prob="):
				v, err := strconv.ParseFloat(param[strings.Index(param, "=")+1:], 64)
				if err != nil {
					return nil, fmt.Errorf("faults: %s: bad probability %q", r.Point, param)
				}
				r.Prob = v
			case strings.HasPrefix(param, "count="):
				v, err := strconv.ParseInt(param[len("count="):], 10, 64)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("faults: %s: bad count %q", r.Point, param)
				}
				r.Count = v
			case strings.HasPrefix(param, "after="):
				v, err := strconv.ParseInt(param[len("after="):], 10, 64)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("faults: %s: bad after %q", r.Point, param)
				}
				r.After = v
			default:
				return nil, fmt.Errorf("faults: %s: unknown parameter %q", r.Point, param)
			}
		}
		rules = append(rules, r)
	}
	return New(seed, rules...)
}

// FromEnv parses the FAULTS environment variable; an empty or unset
// variable yields a nil plan (nothing injected).
func FromEnv() (*Plan, error) {
	spec := os.Getenv("FAULTS")
	if spec == "" {
		return nil, nil
	}
	return Parse(spec)
}

// Fired returns how many faults the plan has injected so far.
func (p *Plan) Fired() int64 { return p.fired.Load() }

// active is the process-wide installed plan.
var active atomic.Pointer[Plan]

// Activate installs a plan process-wide; nil deactivates injection.
func Activate(p *Plan) { active.Store(p) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Inject consults the active plan at a named point. With no plan (or no
// rule for the point) it returns nil. A firing error-mode rule returns a
// *Fault wrapping ErrInjected; a firing panic-mode rule panics with the
// *Fault.
func Inject(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.inject(point)
}

func (p *Plan) inject(point string) error {
	for _, r := range p.rules[point] {
		hit := r.hits.Add(1)
		if hit <= r.After {
			continue
		}
		if r.Prob < 1 && !decide(p.Seed, point, hit, r.Prob) {
			continue
		}
		if r.Count > 0 && r.fired.Add(1) > r.Count {
			continue
		}
		p.fired.Add(1)
		f := &Fault{Point: point, Hit: hit}
		if r.Mode == ModePanic {
			panic(f)
		}
		return f
	}
	return nil
}

// decide maps (seed, point, hit) to a uniform [0,1) draw via a
// splitmix64-style mix of an FNV hash, so fault patterns are a pure
// function of the plan seed and the point's hit sequence.
func decide(seed uint64, point string, hit int64, prob float64) bool {
	h := uint64(14695981039346656037)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= 1099511628211
	}
	h ^= seed + uint64(hit)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11)/(1<<53) < prob
}
