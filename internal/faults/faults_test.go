package faults

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// activate installs a plan for the duration of the test.
func activate(t *testing.T, p *Plan) {
	t.Helper()
	Activate(p)
	t.Cleanup(func() { Activate(nil) })
}

func TestInjectWithoutPlanIsNil(t *testing.T) {
	Activate(nil)
	if Enabled() {
		t.Fatal("Enabled with no plan")
	}
	if err := Inject(SpillWrite); err != nil {
		t.Fatalf("injection with no plan: %v", err)
	}
}

func TestErrorModeFiresAndWraps(t *testing.T) {
	p, err := New(1, Rule{Point: SpillWrite})
	if err != nil {
		t.Fatal(err)
	}
	activate(t, p)
	got := Inject(SpillWrite)
	if got == nil {
		t.Fatal("p=1 rule did not fire")
	}
	if !errors.Is(got, ErrInjected) {
		t.Fatalf("injected error %v is not ErrInjected", got)
	}
	var f *Fault
	if !errors.As(got, &f) || f.Point != SpillWrite {
		t.Fatalf("injected error %v carries no *Fault for %s", got, SpillWrite)
	}
	if err := Inject(SpillRead); err != nil {
		t.Fatalf("unruled point fired: %v", err)
	}
	if p.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", p.Fired())
	}
}

func TestPanicMode(t *testing.T) {
	p, err := New(1, Rule{Point: SinkEmit, Mode: ModePanic})
	if err != nil {
		t.Fatal(err)
	}
	activate(t, p)
	defer func() {
		r := recover()
		f, ok := r.(*Fault)
		if !ok || f.Point != SinkEmit {
			t.Fatalf("recovered %v, want *Fault at %s", r, SinkEmit)
		}
	}()
	_ = Inject(SinkEmit)
	t.Fatal("panic-mode rule did not panic")
}

func TestCountAndAfter(t *testing.T) {
	p, err := New(1, Rule{Point: CaptureRun, Count: 2, After: 1})
	if err != nil {
		t.Fatal(err)
	}
	activate(t, p)
	var fired int
	for i := 0; i < 10; i++ {
		if Inject(CaptureRun) != nil {
			fired++
			if i == 0 {
				t.Error("rule fired on the first hit despite after=1")
			}
		}
	}
	if fired != 2 {
		t.Fatalf("count=2 rule fired %d times", fired)
	}
}

func TestProbabilityIsDeterministicAndRoughlyCalibrated(t *testing.T) {
	run := func(seed uint64) []bool {
		p, err := New(seed, Rule{Point: SpillWrite, Prob: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		pattern := make([]bool, 10000)
		for i := range pattern {
			pattern[i] = p.inject(SpillWrite) != nil
		}
		return pattern
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < 800 || fired > 1200 {
		t.Errorf("p=0.1 fired %d/10000 times, want ~1000", fired)
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seeds 42 and 43 produced identical patterns")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("seed=7; engine.spill.write:p=0.25:count=3 ;engine.sink.emit:after=2:panic")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Errorf("seed = %d, want 7", p.Seed)
	}
	w := p.rules[SpillWrite]
	if len(w) != 1 || w[0].Prob != 0.25 || w[0].Count != 3 || w[0].Mode != ModeError {
		t.Errorf("spill.write rule parsed as %+v", w)
	}
	s := p.rules[SinkEmit]
	if len(s) != 1 || s[0].After != 2 || s[0].Mode != ModePanic || s[0].Prob != 1 {
		t.Errorf("sink.emit rule parsed as %+v", s)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"nosuch.point",
		"engine.spill.write:p=2",
		"engine.spill.write:p=x",
		"engine.spill.write:count=-1",
		"engine.spill.write:frob=1",
		"seed=nope",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("FAULTS", "")
	if p, err := FromEnv(); err != nil || p != nil {
		t.Fatalf("empty FAULTS: plan=%v err=%v", p, err)
	}
	t.Setenv("FAULTS", "engine.spill.read:count=1")
	p, err := FromEnv()
	if err != nil || p == nil {
		t.Fatalf("FromEnv: plan=%v err=%v", p, err)
	}
	t.Setenv("FAULTS", "bogus:")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad FAULTS spec accepted")
	}
}

func TestCountIsRaceSafeUnderConcurrency(t *testing.T) {
	p, err := New(1, Rule{Point: SpillWrite, Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	activate(t, p)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 1000; i++ {
				if Inject(SpillWrite) != nil {
					local++
				}
			}
			mu.Lock()
			fired += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Fatalf("count=5 rule fired %d times across goroutines", fired)
	}
}

func TestPointsCatalogIsSortedAndNamed(t *testing.T) {
	pts := Points()
	if len(pts) < 8 {
		t.Fatalf("catalog has %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if strings.Compare(pts[i-1], pts[i]) >= 0 {
			t.Fatalf("catalog not sorted at %q >= %q", pts[i-1], pts[i])
		}
	}
}
