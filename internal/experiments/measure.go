// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3), plus the shared machinery that runs a workload
// once and measures every attached MEMO-TABLE. See DESIGN.md for the
// experiment index.
//
// Every driver is a registered Experiment (registry.go): its plan half
// declares which workload traces feed which sinks, the engine's
// cross-experiment planner (engine.RunPass) captures each demanded
// workload once and replays it once into every subscribed sink across
// the whole selection, and its finish half assembles a typed
// report.Result. Results are read from per-experiment sinks in declared
// order, so rendered output is bit-identical at any worker count;
// engine.Serial() gives the reference single-threaded path.
package experiments

import (
	"fmt"
	"math"

	"memotable/internal/engine"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/probe"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

// MemoOps are the classes given MEMO-TABLEs in the paper's simulated
// system (§3.1): integer multiplier, fp multiplier, fp divider — plus the
// fp square root extension.
var MemoOps = []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv, isa.OpFSqrt}

// TableSet is one simulated system: a MEMO-TABLE per memoizable class,
// fed from a trace stream. Units are held in a per-class array — the
// replay loop indexes it once per event, so the dispatch must not cost a
// map probe.
type TableSet struct {
	units [isa.NumOps]*memo.Unit
}

// NewTableSet builds identical tables for all MemoOps.
func NewTableSet(cfg memo.Config, policy memo.TrivialPolicy) *TableSet {
	ts := &TableSet{}
	for _, op := range MemoOps {
		ts.units[op] = memo.NewUnit(memo.New(op, cfg), policy, nil)
	}
	return ts
}

// Emit implements trace.Sink: memoizable events exercise their table.
func (ts *TableSet) Emit(ev trace.Event) {
	if u := ts.units[ev.Op]; u != nil {
		u.Apply(ev.A, ev.B)
	}
}

// EmitBatch implements trace.BatchSink: one interface dispatch per decoded
// block instead of one per event.
func (ts *TableSet) EmitBatch(evs []trace.Event) {
	for _, ev := range evs {
		if u := ts.units[ev.Op]; u != nil {
			u.Apply(ev.A, ev.B)
		}
	}
}

// OpMask implements trace.OpMasker: only memoizable classes reach the
// tables, so fused replays skip blocks carrying none of them.
func (ts *TableSet) OpMask() trace.OpMask { return trace.MaskOf(MemoOps...) }

// Unit returns the unit for one class.
func (ts *TableSet) Unit(op isa.Op) *memo.Unit { return ts.units[op] }

// HitRatio returns the class's hit ratio under the set's policy, or NaN
// if the class never appeared (the paper's '-' entries).
func (ts *TableSet) HitRatio(op isa.Op) float64 {
	u := ts.units[op]
	if u == nil || u.TotalOps() == 0 {
		return math.NaN()
	}
	if u.Policy() == memo.Integrated {
		return u.Table().Stats().IntegratedHitRatio()
	}
	return u.Table().Stats().HitRatio()
}

// Runner abstracts "run this program through a probe": both MM image
// applications and scientific kernels satisfy it. The address space is
// the run's own — images allocated from it carry bases independent of
// anything else the process runs, so Runners can execute concurrently.
type Runner func(p *probe.Probe, as *imaging.AddressSpace)

// ImageRun curries an MM application with its input; the input is placed
// into the run's address space before the application sees it, mirroring
// the engine's capture path.
func ImageRun(run func(*probe.Probe, *imaging.AddressSpace, *imaging.Image) *imaging.Image, in *imaging.Image) Runner {
	return func(p *probe.Probe, as *imaging.AddressSpace) { run(p, as, as.Clone(in)) }
}

// kernelRunner lifts a scientific kernel (which touches no images) into
// a Runner.
func kernelRunner(run func(*probe.Probe)) Runner {
	return func(p *probe.Probe, _ *imaging.AddressSpace) { run(p) }
}

// Measure runs the program once against table sets built from cfg and
// policy, returning the set (for hit ratios) and the op counter (for
// instruction mixes).
func Measure(run Runner, cfg memo.Config, policy memo.TrivialPolicy) (*TableSet, *trace.Counter) {
	ts := NewTableSet(cfg, policy)
	var c trace.Counter
	run(probe.New(ts, &c), imaging.NewAddressSpace())
	return ts, &c
}

// MeasureMany runs the program once with several table configurations
// simultaneously (one pass over the trace feeds them all), the way the
// paper's simulator evaluated multiple geometries per run.
func MeasureMany(run Runner, policy memo.TrivialPolicy, cfgs ...memo.Config) []*TableSet {
	sets := make([]*TableSet, len(cfgs))
	sinks := make([]trace.Sink, len(cfgs))
	for i, cfg := range cfgs {
		sets[i] = NewTableSet(cfg, policy)
		sinks[i] = sets[i]
	}
	run(probe.New(trace.Multi(sinks)), imaging.NewAddressSpace())
	return sets
}

// kernelKey names a scientific kernel's trace in the engine cache.
func kernelKey(name string) string { return "sci|" + name }

// appKey names an MM application run's trace in the engine cache. The
// decimation bound participates so different scales never share bytes.
func appKey(app, input string, scale Scale) string {
	return fmt.Sprintf("mm|%s|%s|%d", app, input, scale.maxDim())
}

// captureOf adapts a Runner to the engine's capture interface: the
// workload executes against a probe whose only sink is the recorder,
// allocating every image from a private address space. The addresses a
// workload emits (and hence its cached trace) are a pure function of the
// workload, so the engine runs captures concurrently on its worker pool.
func captureOf(run Runner) engine.CaptureFunc {
	return func(s trace.Sink) {
		run(probe.New(s), imaging.NewAddressSpace())
	}
}

// appRunner curries an MM application with a named input, deferring the
// image load/decimate to capture time so cache hits skip it entirely.
// Decimating the input is the run's first allocation, so every capture
// of the same (app, input, scale) triple sees identical addresses.
func appRunner(app workloads.App, input string, scale Scale) Runner {
	return func(p *probe.Probe, as *imaging.AddressSpace) {
		app.Run(p, as, as.Decimate(catalogImage(input), scale.maxDim()))
	}
}

// meanIgnoringNaN averages the defined values; NaN entries ('-') are
// skipped, as in the paper's per-suite averages.
func meanIgnoringNaN(xs []float64) float64 {
	var s float64
	var n int
	for _, x := range xs {
		if !math.IsNaN(x) {
			s += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
