package experiments

import (
	"math"

	"memotable/internal/engine"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/reuse"
)

// ReuseComparison implements the §1.1 differentiation against Sodani &
// Sohi's Dynamic Instruction Reuse: the same pixel-normalization
// computation is "compiled" two ways — a rolled loop (one multiply PC)
// and an 8× unrolled loop (eight multiply PCs) — and run against
//
//   - a 32-entry reuse buffer shared by all instruction classes,
//   - a 32-entry reuse buffer restricted to multi-cycle classes, and
//   - a 32/4 value-keyed fmul MEMO-TABLE,
//
// which exposes both of the paper's arguments: single-cycle instructions
// bump multiplies out of an unshared RB, and unrolling splits one value
// stream across PCs while the MEMO-TABLE is address-blind.
type ReuseComparison struct {
	// Hit ratios of the fp multiplications in each machine/compilation.
	RolledRB, UnrolledRB         float64
	RolledRBOnly, UnrolledRBOnly float64
	RolledMemo, UnrolledMemo     float64
}

// planReuse plans the comparison. The PC-keyed streams are synthesized,
// not traced, so there are no demands for the planner — the input image
// is decimated once here and read for its values only (detached images
// carry no addresses). Finish fans the two compilations out on the
// engine.
func planReuse(ctx *Context) ([]Demand, func() *ReuseComparison) {
	img := ctx.Input("airport1")
	finish := func() *ReuseComparison {
		res := &ReuseComparison{}
		unrolls := []int{1, 8}
		outs := make([][3]float64, len(unrolls))
		ctx.Eng.Map(len(unrolls), func(i int) {
			rb, rbOnly, memoHit := runReuseStream(img, unrolls[i])
			outs[i] = [3]float64{rb, rbOnly, memoHit}
		})
		res.RolledRB, res.RolledRBOnly, res.RolledMemo = outs[0][0], outs[0][1], outs[0][2]
		res.UnrolledRB, res.UnrolledRBOnly, res.UnrolledMemo = outs[1][0], outs[1][1], outs[1][2]
		return res
	}
	return nil, finish
}

// ReuseCompare runs the comparison standalone on the given engine.
func ReuseCompare(eng *engine.Engine, scale Scale) *ReuseComparison {
	return runPlan(eng, scale, planReuse)
}

// runReuseStream emits the normalization loop's instruction stream with
// the given unroll factor into all three machines at once and returns
// the fp-multiply hit ratios.
func runReuseStream(img *imaging.Image, unroll int) (rb, rbOnly, memoHit float64) {
	buf := reuse.New(32, 4)
	restricted := reuse.New(32, 4)
	restricted.Restrict(isa.OpIMul, isa.OpFMul, isa.OpFDiv, isa.OpFSqrt)
	table := memo.New(isa.OpFMul, memo.Paper32x4())

	var mulFetch, mulHit, mulHitOnly uint64
	fetch := func(ins reuse.Instruction, compute func() uint64) {
		_, h1 := buf.Fetch(ins, compute)
		_, h2 := restricted.Fetch(ins, compute)
		if ins.Op == isa.OpFMul {
			mulFetch++
			if h1 {
				mulHit++
			}
			if h2 {
				mulHitOnly++
			}
			table.Access(ins.A, ins.B, compute)
		}
	}

	// The loop body: scale = v * (1/16); addr = i + 1; bound check.
	// A compiler assigns each static instruction its own PC; unrolling
	// replicates the body at unroll distinct PC groups.
	const bodyBytes = 16 // four words per body
	gain := math.Float64bits(1.0 / 16)
	i := 0
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			slot := uint64(i % unroll)
			basePC := uint64(0x2000) + slot*bodyBytes
			v := math.Float64bits(img.At(x, y, 0))
			fetch(reuse.Instruction{PC: basePC + 0, Op: isa.OpFMul, A: v, B: gain},
				func() uint64 {
					return math.Float64bits(img.At(x, y, 0) / 16)
				})
			fetch(reuse.Instruction{PC: basePC + 4, Op: isa.OpIAlu, A: uint64(i), B: 1},
				func() uint64 { return uint64(i) + 1 })
			fetch(reuse.Instruction{PC: basePC + 8, Op: isa.OpIAlu, A: uint64(x), B: uint64(img.W)},
				func() uint64 { return 0 })
			i++
		}
	}
	if mulFetch == 0 {
		return 0, 0, 0
	}
	return float64(mulHit) / float64(mulFetch),
		float64(mulHitOnly) / float64(mulFetch),
		table.Stats().HitRatio()
}

// Result builds the comparison as a typed table.
func (r *ReuseComparison) Result() *report.Result {
	res := report.NewTableResult(
		"Extension: value-keyed MEMO-TABLE vs PC-keyed reuse buffer (fp mult hit ratios)",
		"compilation", "reuse buffer", "RB (mul-only)", "MEMO-TABLE")
	res.AddRow(report.Str("rolled loop"),
		report.RatioCell(r.RolledRB), report.RatioCell(r.RolledRBOnly), report.RatioCell(r.RolledMemo))
	res.AddRow(report.Str("unrolled x8"),
		report.RatioCell(r.UnrolledRB), report.RatioCell(r.UnrolledRBOnly), report.RatioCell(r.UnrolledMemo))
	return res
}

// Render prints the comparison.
func (r *ReuseComparison) Render() string { return report.Text(r.Result()) }

func init() {
	register("reuse-comparison", "Value-keyed MEMO-TABLE vs PC-keyed reuse buffer",
		[]isa.Op{isa.OpFMul}, planReuse)
}
