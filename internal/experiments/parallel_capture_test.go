package experiments

import (
	"bytes"
	"sync"
	"testing"

	"memotable/internal/engine"
	"memotable/internal/scientific"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

// allCaptures enumerates one capture per registered workload: every MM
// application on its first input at Tiny scale, and every scientific
// kernel of both suites. It is the capture surface the engine fans out
// across its worker pool.
func allCaptures() (names []string, caps []engine.CaptureFunc) {
	for _, app := range workloads.Apps() {
		names = append(names, appKey(app.Name, app.Inputs[0], Tiny))
		caps = append(caps, captureOf(appRunner(app, app.Inputs[0], Tiny)))
	}
	for _, k := range scientific.All() {
		names = append(names, kernelKey(k.Name))
		caps = append(caps, captureOf(kernelRunner(k.Run)))
	}
	return names, caps
}

// encode runs a capture into an in-memory v2 trace stream.
func encode(t testing.TB, capture engine.CaptureFunc) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterV2(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	capture(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelCaptureBytesMatchSerial is the differential test behind
// the engine's lock-free capture path: for every registered workload,
// the v2 trace captured on a bare goroutine among seven other captures
// running concurrently is byte-identical to the one captured alone.
// Per-capture address spaces are what make this hold — any leak of
// shared mutable state into a capture shows up here as a byte diff.
func TestParallelCaptureBytesMatchSerial(t *testing.T) {
	names, caps := allCaptures()

	serial := make([][]byte, len(caps))
	for i, c := range caps {
		serial[i] = encode(t, c)
	}

	const workers = 8
	parallel := make([][]byte, len(caps))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				parallel[i] = encode(t, caps[i])
			}
		}()
	}
	for i := range caps {
		work <- i
	}
	close(work)
	wg.Wait()

	for i := range caps {
		if len(serial[i]) == 0 {
			t.Errorf("%s: empty serial capture", names[i])
			continue
		}
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("%s: parallel capture differs from serial (%d vs %d bytes)",
				names[i], len(parallel[i]), len(serial[i]))
		}
	}
}
