package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"memotable/internal/engine"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/probe"
	"memotable/internal/report"
	"memotable/internal/workloads"
)

// The declarative experiment registry. Every table and figure of the
// evaluation — plus the extensions — is a registered Experiment value
// declaring its name, the operation classes it measures, and a Plan
// function. A plan splits the driver in two around the replay planner:
//
//   - the plan half builds the experiment's sinks and declares its trace
//     Demands (which workloads feed which sinks, in what order);
//   - the finish half reads the fed sinks and assembles a typed
//     report.Result tree.
//
// Run collects the demands of every selected experiment and hands them
// to the engine's cross-experiment planner (engine.RunPass) as one
// batch, so a workload shared by any number of selected experiments is
// captured once and replayed once, feeding all their sinks in a single
// fused pass — fusion no longer stops at driver boundaries.

// Scale bounds the image geometry the MM experiments run at. The paper
// traced full applications under Shade; we trade input size for wall
// clock without changing value behaviour (subsampling preserves the
// quantized histograms the hit ratios respond to).
type Scale int

// Scales.
const (
	// Tiny decimates inputs to 32 pixels per side: unit-test budget.
	Tiny Scale = iota
	// Quick decimates inputs to 64 pixels per side: interactive budget
	// (the memosim command's default).
	Quick
	// Full decimates inputs to 192 pixels per side: benchmark budget.
	Full
)

// ParseScale resolves the CLI and service spelling of a scale ("tiny",
// "quick", "full"; "" selects Quick, the interactive default).
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "quick", "":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (have tiny, quick, full)", s)
}

// String returns the parseable spelling of the scale.
func (s Scale) String() string {
	switch s {
	case Full:
		return "full"
	case Quick:
		return "quick"
	default:
		return "tiny"
	}
}

// maxDim returns the per-side bound.
func (s Scale) maxDim() int {
	switch s {
	case Full:
		return 192
	case Quick:
		return 64
	default:
		return 32
	}
}

// catalogImage resolves a catalog input; unknown names are programming
// errors (the registry's input lists are static).
func catalogImage(name string) *imaging.Image {
	in := imaging.Find(name)
	if in == nil {
		panic("experiments: unknown input " + name)
	}
	return in.Image
}

// inputFor fetches and decimates a catalog input. The result is
// detached (no base address): plan-time consumers use it for values
// only, and capture-time consumers place it via AddressSpace.Decimate.
func inputFor(name string, scale Scale) *imaging.Image {
	return catalogImage(name).Decimate(scale.maxDim())
}

// Workload names one capturable operand stream for the planner: the
// engine cache key plus the capture that produces it.
type Workload = engine.PassWorkload

// Demand subscribes one group of an experiment's sinks to an ordered
// workload sequence. Stateful sinks (a TableSet aggregating an
// application over its inputs) rely on the order; single-workload
// demands impose no ordering constraints on the planner.
type Demand = engine.Subscription

// Plan is one experiment's planned run: its trace demands, and a finish
// function that assembles the typed result after every demand has been
// fed. Finish runs only after the whole selection's replay pass, and
// may run concurrently with other experiments' finishes.
type Plan struct {
	Demands []Demand
	Finish  func() *report.Result
}

// Experiment is one registered table or figure: its registry name, its
// human title, the operation classes it measures, and its plan
// function. Plan functions run serially across a selection and must not
// capture or replay anything themselves — that is the planner's job.
type Experiment struct {
	Name  string
	Title string
	Ops   []isa.Op
	Plan  func(ctx *Context) Plan
}

// Context carries the run-wide knobs a plan builds against: the engine
// (for finish-phase fan-out) and the input scale. The scale helpers
// live here so drivers share one decimation path instead of each
// re-deriving geometry bounds.
type Context struct {
	Eng   *engine.Engine
	Scale Scale
}

// MaxDim returns the per-side image bound of the run's scale.
func (c *Context) MaxDim() int { return c.Scale.maxDim() }

// Input fetches a catalog input decimated to the run's scale.
func (c *Context) Input(name string) *imaging.Image { return inputFor(name, c.Scale) }

// App resolves a Multi-Media application by name; unknown names are
// programming errors (the registry's app lists are static).
func (c *Context) App(name string) workloads.App {
	app, err := workloads.Lookup(name)
	if err != nil {
		panic(err)
	}
	return app
}

// AppWorkload names one (application, input) run at the run's scale.
func (c *Context) AppWorkload(app workloads.App, input string) Workload {
	return Workload{
		Key:     appKey(app.Name, input, c.Scale),
		Capture: captureOf(appRunner(app, input, c.Scale)),
	}
}

// AppWorkloads names an application's full default input list, in
// order — the sequence a stateful per-app sink must observe.
func (c *Context) AppWorkloads(app workloads.App) []Workload {
	ws := make([]Workload, len(app.Inputs))
	for i, input := range app.Inputs {
		ws[i] = c.AppWorkload(app, input)
	}
	return ws
}

// KernelWorkload names one scientific kernel run.
func (c *Context) KernelWorkload(name string, run func(*probe.Probe)) Workload {
	return Workload{Key: kernelKey(name), Capture: captureOf(kernelRunner(run))}
}

// registry holds the experiments by name.
var registry = map[string]Experiment{}

// Register adds an experiment; duplicate or empty names and nil plans
// are programming errors.
func Register(e Experiment) {
	if e.Name == "" || e.Plan == nil {
		panic("experiments: Register needs a name and a plan")
	}
	if _, dup := registry[e.Name]; dup {
		panic("experiments: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the registered experiments sorted by name.
func All() []Experiment {
	names := Names()
	exps := make([]Experiment, len(names))
	for i, n := range names {
		exps[i] = registry[n]
	}
	return exps
}

// Lookup resolves experiment names; no names selects the whole
// registry. Every unknown name is reported in one error, so a caller
// with a typo in position k learns about the one in position k+2 too.
func Lookup(names ...string) ([]Experiment, error) {
	if len(names) == 0 {
		return All(), nil
	}
	exps := make([]Experiment, 0, len(names))
	var unknown []string
	for _, n := range names {
		e, ok := registry[n]
		if !ok {
			unknown = append(unknown, fmt.Sprintf("%q", n))
			continue
		}
		exps = append(exps, e)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("experiments: unknown experiment(s) %s (have %s)",
			strings.Join(unknown, ", "), strings.Join(Names(), ", "))
	}
	return exps, nil
}

// Resolve validates a selection and returns its experiment names in
// selection order; no names resolves to the whole registry in Names()
// order. This is the canonical order sharding and merging agree on:
// the fleet coordinator splits Resolve's output, and the merged result
// list comes back in exactly this order.
func Resolve(names ...string) ([]string, error) {
	exps, err := Lookup(names...)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.Name
	}
	return out, nil
}

// ShardSelection deals a resolved selection into n round-robin shards:
// shard i gets names[i], names[i+n], ... in selection order. The split
// is a pure function of (names, n) — both sides of a distributed run
// recompute it independently and must agree — and it never produces an
// empty shard, because callers clamp n to len(names) first (ShardCount
// does exactly that).
func ShardSelection(names []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	shards := make([][]string, n)
	for i, name := range names {
		shards[i%n] = append(shards[i%n], name)
	}
	return shards
}

// ShardCount clamps a requested shard count to the selection size, so
// every shard has at least one experiment to run.
func ShardCount(requested, selection int) int {
	if requested > selection {
		return selection
	}
	return requested
}

// Run executes a selection of experiments (all of them when names is
// empty) as one planned pass: plan serially, capture and replay every
// demanded workload exactly once across the whole selection, then
// finish in parallel. Results are returned in selection order with
// their Name set from the registry. Run is the fail-fast entry point:
// any workload failure aborts the whole selection with that error —
// callers that want partial results use RunContext.
func Run(eng *engine.Engine, scale Scale, names ...string) ([]*report.Result, error) {
	results, rep, err := RunContext(context.Background(), eng, scale, names...)
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunContext is Run with cooperative cancellation and degraded-mode
// results. The replay pass runs under ctx; workload failures (injected
// faults, panicking sinks, unreadable spill files, cancellation) do not
// abort the selection. Instead:
//
//   - an experiment none of whose demanded workloads failed finishes
//     normally and its Result is exact;
//   - an experiment that demanded a failed workload skips its finish —
//     its sinks saw a torn or missing stream — and yields a degraded
//     Result (an empty group carrying the RunErrors that poisoned it);
//   - a finish that panics yields a degraded Result too, instead of
//     killing the pool.
//
// The returned PassReport is the engine's cell-level account of the
// pass (nil only alongside a non-nil error); the error return is
// reserved for selection defects — unknown names, inconsistent demand
// orders — that prevent the pass from being planned at all.
func RunContext(ctx context.Context, eng *engine.Engine, scale Scale, names ...string) ([]*report.Result, *engine.PassReport, error) {
	exps, err := Lookup(names...)
	if err != nil {
		return nil, nil, err
	}
	ectx := &Context{Eng: eng, Scale: scale}
	plans := make([]Plan, len(exps))
	var subs []engine.Subscription
	for i, ex := range exps {
		plans[i] = ex.Plan(ectx)
		subs = append(subs, plans[i].Demands...)
	}
	rep, err := eng.RunPassContext(ctx, subs)
	if err != nil {
		return nil, nil, err
	}
	results := make([]*report.Result, len(exps))
	eng.Map(len(exps), func(i int) {
		if errs := planErrors(plans[i], rep); len(errs) > 0 {
			results[i] = report.NewDegradedResult(exps[i].Name, errs)
			return
		}
		r, ferr := finishGuarded(plans[i].Finish)
		if ferr != nil {
			results[i] = report.NewDegradedResult(exps[i].Name,
				[]report.RunError{{Stage: "finish", Message: ferr.Error()}})
			return
		}
		if r != nil {
			r.Name = exps[i].Name
		}
		results[i] = r
	})
	return results, rep, nil
}

// planErrors maps a pass's cell failures onto one plan: the RunErrors
// for exactly the workload keys this plan demanded, in the report's
// (sorted, deterministic) order.
func planErrors(p Plan, rep *engine.PassReport) []report.RunError {
	keys := make(map[string]bool)
	for _, d := range p.Demands {
		for _, w := range d.Workloads {
			keys[w.Key] = true
		}
	}
	var errs []report.RunError
	for _, ce := range rep.Errors {
		if keys[ce.Key] {
			errs = append(errs, report.RunError{Workload: ce.Key, Stage: ce.Stage, Message: ce.Err.Error()})
		}
	}
	return errs
}

// finishGuarded runs a plan's finish with panic isolation: a finish
// reading sinks in an unexpected state degrades its own experiment
// instead of crashing the run.
func finishGuarded(finish func() *report.Result) (r *report.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("finish panicked: %v", rec)
		}
	}()
	return finish(), nil
}

// runPlan drives one driver's plan standalone: the legacy typed entry
// points (Table5, Figure3, ...) run through it, so they share the
// planner path — and its exactly-once guarantee — with Run.
func runPlan[T any](eng *engine.Engine, scale Scale, plan func(*Context) ([]Demand, func() T)) T {
	ctx := &Context{Eng: eng, Scale: scale}
	demands, finish := plan(ctx)
	if err := eng.RunPass(demands); err != nil {
		panic(err)
	}
	return finish()
}

// register wires a typed driver plan into the registry: the typed
// finish is adapted to the report.Result the registry returns.
func register[T interface{ Result() *report.Result }](
	name, title string, ops []isa.Op, plan func(*Context) ([]Demand, func() T)) {
	Register(Experiment{
		Name:  name,
		Title: title,
		Ops:   ops,
		Plan: func(ctx *Context) Plan {
			demands, finish := plan(ctx)
			return Plan{Demands: demands, Finish: func() *report.Result { return finish().Result() }}
		},
	})
}
