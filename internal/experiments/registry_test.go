package experiments

import (
	"strings"
	"sync"
	"testing"

	"memotable/internal/engine"
	"memotable/internal/report"
)

// registryNames is the full expected experiment index; keep sorted.
var registryNames = []string{
	"figure2", "figure3", "figure4",
	"recip-comparison", "reuse-comparison", "sqrt-extension",
	"table1", "table10", "table11", "table12", "table13",
	"table5", "table6", "table7", "table8", "table9",
}

func TestRegistryNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registryNames) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(names), len(registryNames), names)
	}
	for i, n := range names {
		if n != registryNames[i] {
			t.Fatalf("names[%d] = %q, want %q (must be sorted)", i, n, registryNames[i])
		}
	}
	for i, e := range All() {
		if e.Name != registryNames[i] {
			t.Fatalf("All()[%d].Name = %q, want %q", i, e.Name, registryNames[i])
		}
		if e.Title == "" || len(e.Ops) == 0 {
			t.Errorf("%s: missing title or ops", e.Name)
		}
	}
}

func TestLookupReportsEveryUnknownName(t *testing.T) {
	_, err := Lookup("table5", "bogus1", "figure4", "bogus2")
	if err == nil {
		t.Fatal("unknown names must error")
	}
	for _, want := range []string{`"bogus1"`, `"bogus2"`, "table9"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %s", err, want)
		}
	}
	if strings.Contains(err.Error(), `"table5"`) {
		t.Errorf("error %q names a known experiment as unknown", err)
	}
	exps, err := Lookup()
	if err != nil || len(exps) != len(registryNames) {
		t.Fatalf("empty lookup must select the whole registry: %v, %d", err, len(exps))
	}
}

func TestRunUnknownNameRunsNothing(t *testing.T) {
	eng := engine.New(2)
	if _, err := Run(eng, Tiny, "table5", "bogus"); err == nil {
		t.Fatal("want error")
	}
	if eng.Captures() != 0 {
		t.Fatalf("a failed lookup must not run anything: %d captures", eng.Captures())
	}
}

// TestRunFusesWholeMatrix is the planner's core guarantee: the full
// registry in one Run captures each demanded workload exactly once and
// replays it exactly once, even though many experiments demand the same
// applications.
func TestRunFusesWholeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	eng := engine.New(4)
	results, err := Run(eng, Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(registryNames) {
		t.Fatalf("%d results, want %d", len(results), len(registryNames))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("results[%d] is nil", i)
		}
		if r.Name != registryNames[i] {
			t.Errorf("results[%d].Name = %q, want %q", i, r.Name, registryNames[i])
		}
		if report.Text(r) == "" {
			t.Errorf("%s rendered empty", r.Name)
		}
	}
	if eng.Captures() == 0 {
		t.Fatal("matrix ran no captures")
	}
	if eng.Captures() != eng.Replays() {
		t.Errorf("captures %d != replays %d: fusion failed (a workload was replayed per-sink or re-captured)",
			eng.Captures(), eng.Replays())
	}
	if eng.Recaptures() != 0 {
		t.Errorf("%d recaptures in a fused pass", eng.Recaptures())
	}

	// A second identical Run replays from cache: no further captures.
	before := eng.Captures()
	if _, err := Run(eng, Tiny, "table7", "table9"); err != nil {
		t.Fatal(err)
	}
	if eng.Captures() != before {
		t.Errorf("cached selection re-captured: %d -> %d", before, eng.Captures())
	}
}

// TestRunConcurrentFullRegistry hammers concurrent full-registry runs on
// one shared engine under -race. Concurrent plan phases allocate images
// while other runs capture, so outputs are only shape-checked here;
// determinism within one Run is pinned by the root golden tests.
func TestRunConcurrentFullRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	eng := engine.New(4)
	const runs = 3
	var wg sync.WaitGroup
	errs := make([]error, runs)
	outs := make([][]*report.Result, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = Run(eng, Tiny)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if len(outs[i]) != len(registryNames) {
			t.Fatalf("run %d: %d results", i, len(outs[i]))
		}
		for j, r := range outs[i] {
			if r == nil || r.Name != registryNames[j] {
				t.Fatalf("run %d result %d malformed", i, j)
			}
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, e Experiment) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	mustPanic("empty name", Experiment{Plan: func(*Context) Plan { return Plan{} }})
	mustPanic("nil plan", Experiment{Name: "x"})
	mustPanic("duplicate", Experiment{Name: "table5", Plan: func(*Context) Plan { return Plan{} }})
}
