package experiments

import (
	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/probe"
	"memotable/internal/report"
	"memotable/internal/scientific"
	"memotable/internal/trace"
)

// HitRow is one application's hit ratios under two table configurations.
type HitRow struct {
	Name     string
	Small    map[isa.Op]float64 // 32-entry 4-way
	Infinite map[isa.Op]float64 // unbounded fully associative
}

// HitTable is a Table 5/6/7-shaped result.
type HitTable struct {
	Title string
	Rows  []HitRow
}

// ratioOps are the columns of Tables 5–7.
var ratioOps = []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv}

// Average computes the per-op column means, skipping '-' entries.
func (t *HitTable) Average() HitRow {
	avg := HitRow{Name: "average", Small: map[isa.Op]float64{}, Infinite: map[isa.Op]float64{}}
	for _, op := range ratioOps {
		var small, inf []float64
		for _, r := range t.Rows {
			small = append(small, r.Small[op])
			inf = append(inf, r.Infinite[op])
		}
		avg.Small[op] = meanIgnoringNaN(small)
		avg.Infinite[op] = meanIgnoringNaN(inf)
	}
	return avg
}

// Result builds the typed table in the paper's layout.
func (t *HitTable) Result() *report.Result {
	res := report.NewTableResult(t.Title, "application",
		"int mult", "fp mult", "fp div",
		"int mult∞", "fp mult∞", "fp div∞")
	rows := append(append([]HitRow(nil), t.Rows...), t.Average())
	for _, r := range rows {
		res.AddRow(report.Str(r.Name),
			report.RatioCell(r.Small[isa.OpIMul]),
			report.RatioCell(r.Small[isa.OpFMul]),
			report.RatioCell(r.Small[isa.OpFDiv]),
			report.RatioCell(r.Infinite[isa.OpIMul]),
			report.RatioCell(r.Infinite[isa.OpFMul]),
			report.RatioCell(r.Infinite[isa.OpFDiv]))
	}
	return res
}

// Render prints the table in the paper's layout.
func (t *HitTable) Render() string { return report.Text(t.Result()) }

// hitPair is one row's pair of table sets, filled by the replay pass.
type hitPair struct {
	small, inf *TableSet
}

// newHitPair builds the paper's basic 32/4 set and the infinite set.
func newHitPair() hitPair {
	return hitPair{
		small: NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly),
		inf:   NewTableSet(memo.Infinite(), memo.NonTrivialOnly),
	}
}

// row reads the fed pair into a named HitRow.
func (p hitPair) row(name string) HitRow {
	r := HitRow{Name: name, Small: map[isa.Op]float64{}, Infinite: map[isa.Op]float64{}}
	for _, op := range ratioOps {
		r.Small[op] = p.small.HitRatio(op)
		r.Infinite[op] = p.inf.HitRatio(op)
	}
	return r
}

// planSuiteHit plans one list of kernels against the paper's basic 32/4
// configuration and the infinite table: one single-workload demand per
// kernel, both table sets fed from the same fused replay.
func planSuiteHit(ctx *Context, title string, names []string, runs []func(*probe.Probe)) ([]Demand, func() *HitTable) {
	pairs := make([]hitPair, len(runs))
	demands := make([]Demand, len(runs))
	for i := range runs {
		pairs[i] = newHitPair()
		demands[i] = Demand{
			Sinks:     []trace.Sink{pairs[i].small, pairs[i].inf},
			Workloads: []Workload{ctx.KernelWorkload(names[i], runs[i])},
		}
	}
	finish := func() *HitTable {
		t := &HitTable{Title: title, Rows: make([]HitRow, len(runs))}
		for i := range runs {
			t.Rows[i] = pairs[i].row(names[i])
		}
		return t
	}
	return demands, finish
}

// kernelSuite flattens a kernel list into parallel name/run slices.
func kernelSuite(ks []scientific.Kernel) (names []string, runs []func(*probe.Probe)) {
	names = make([]string, len(ks))
	runs = make([]func(*probe.Probe), len(ks))
	for i, k := range ks {
		names[i], runs[i] = k.Name, k.Run
	}
	return names, runs
}

// planTable5 plans "Hit ratios for the Perfect benchmarks" (32/4 vs
// infinite, non-trivial operations only).
func planTable5(ctx *Context) ([]Demand, func() *HitTable) {
	names, runs := kernelSuite(scientific.Perfect())
	return planSuiteHit(ctx, "Table 5: hit ratios, Perfect benchmarks", names, runs)
}

// planTable6 plans "Hit ratios for the SPEC CFP95 benchmarks".
func planTable6(ctx *Context) ([]Demand, func() *HitTable) {
	names, runs := kernelSuite(scientific.SpecCFP95())
	return planSuiteHit(ctx, "Table 6: hit ratios, SPEC CFP95 benchmarks", names, runs)
}

// Table5 reproduces Table 5 standalone on the given engine.
func Table5(eng *engine.Engine) *HitTable {
	return runPlan(eng, Tiny, planTable5)
}

// Table6 reproduces Table 6 standalone on the given engine.
func Table6(eng *engine.Engine) *HitTable {
	return runPlan(eng, Tiny, planTable6)
}

// mmTable7Apps lists the seventeen applications of Table 7 in paper
// order (vsqrt appears in Table 4 and the speedup study but not in
// Table 7).
var mmTable7Apps = []string{
	"vdiff", "vcost", "vgauss", "vspatial", "vslope", "vgef", "vdetilt",
	"vwarp", "venhance", "vrect2pol", "vmpp", "vbrf", "vbpf", "vsurf",
	"vgpwl", "venhpatch", "vkmeans",
}

// planTable7 plans "Hit ratios for Multi-Media applications". Each
// application aggregates one table-set pair over its default inputs
// (the paper used 8–14 per application), so its demand orders the
// input workloads as one sequence.
func planTable7(ctx *Context) ([]Demand, func() *HitTable) {
	pairs := make([]hitPair, len(mmTable7Apps))
	demands := make([]Demand, len(mmTable7Apps))
	for i, name := range mmTable7Apps {
		app := ctx.App(name)
		pairs[i] = newHitPair()
		demands[i] = Demand{
			Sinks:     []trace.Sink{pairs[i].small, pairs[i].inf},
			Workloads: ctx.AppWorkloads(app),
		}
	}
	finish := func() *HitTable {
		t := &HitTable{
			Title: "Table 7: hit ratios, Multi-Media applications",
			Rows:  make([]HitRow, len(mmTable7Apps)),
		}
		for i, name := range mmTable7Apps {
			t.Rows[i] = pairs[i].row(name)
		}
		return t
	}
	return demands, finish
}

// Table7 reproduces Table 7 standalone on the given engine.
func Table7(eng *engine.Engine, scale Scale) *HitTable {
	return runPlan(eng, scale, planTable7)
}

// Table10Result compares full-value and mantissa-only tagging (Table 10):
// suite-average fp hit ratios for both schemes at 32/4.
type Table10Result struct {
	// [suite][op][scheme]: suites are Perfect and Multi-Media; schemes
	// are full then mantissa-only.
	PerfectFull, PerfectMant map[isa.Op]float64
	MMFull, MMMant           map[isa.Op]float64
}

// planTable10 plans the mantissa-only comparison. The suite aggregation
// is stateful — every workload of a suite feeds one table pair in order
// — so each suite is a single ordered demand.
func planTable10(ctx *Context) ([]Demand, func() *Table10Result) {
	mantCfg := memo.Paper32x4()
	mantCfg.MantissaOnly = true
	type suite struct {
		full, mant *TableSet
	}
	newSuite := func() suite {
		return suite{
			full: NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly),
			mant: NewTableSet(mantCfg, memo.NonTrivialOnly),
		}
	}
	var perfWs, mmWs []Workload
	for _, k := range scientific.Perfect() {
		perfWs = append(perfWs, ctx.KernelWorkload(k.Name, k.Run))
	}
	for _, name := range mmTable7Apps {
		app := ctx.App(name)
		mmWs = append(mmWs, ctx.AppWorkload(app, app.Inputs[0]))
	}
	perf, mm := newSuite(), newSuite()
	demands := []Demand{
		{Sinks: []trace.Sink{perf.full, perf.mant}, Workloads: perfWs},
		{Sinks: []trace.Sink{mm.full, mm.mant}, Workloads: mmWs},
	}
	read := func(s suite) (full, mant map[isa.Op]float64) {
		full = map[isa.Op]float64{}
		mant = map[isa.Op]float64{}
		for _, op := range []isa.Op{isa.OpFMul, isa.OpFDiv} {
			full[op] = s.full.HitRatio(op)
			mant[op] = s.mant.HitRatio(op)
		}
		return full, mant
	}
	finish := func() *Table10Result {
		res := &Table10Result{}
		res.PerfectFull, res.PerfectMant = read(perf)
		res.MMFull, res.MMMant = read(mm)
		return res
	}
	return demands, finish
}

// Table10 reproduces the mantissa-only comparison standalone.
func Table10(eng *engine.Engine, scale Scale) *Table10Result {
	return runPlan(eng, scale, planTable10)
}

// Result builds Table 10 as a typed table.
func (r *Table10Result) Result() *report.Result {
	res := report.NewTableResult("Table 10: full value vs mantissa-only tags (32/4 averages)",
		"suite", "fp mult full", "fp mult mant", "fp div full", "fp div mant")
	res.AddRow(report.Str("Perfect"),
		report.RatioCell(r.PerfectFull[isa.OpFMul]), report.RatioCell(r.PerfectMant[isa.OpFMul]),
		report.RatioCell(r.PerfectFull[isa.OpFDiv]), report.RatioCell(r.PerfectMant[isa.OpFDiv]))
	res.AddRow(report.Str("Multi-Media"),
		report.RatioCell(r.MMFull[isa.OpFMul]), report.RatioCell(r.MMMant[isa.OpFMul]),
		report.RatioCell(r.MMFull[isa.OpFDiv]), report.RatioCell(r.MMMant[isa.OpFDiv]))
	return res
}

// Render prints Table 10.
func (r *Table10Result) Render() string { return report.Text(r.Result()) }

func init() {
	register("table5", "Hit ratios, Perfect benchmarks (32/4 vs infinite)", ratioOps, planTable5)
	register("table6", "Hit ratios, SPEC CFP95 benchmarks (32/4 vs infinite)", ratioOps, planTable6)
	register("table7", "Hit ratios, Multi-Media applications (32/4 vs infinite)", ratioOps, planTable7)
	register("table10", "Full-value vs mantissa-only tags (32/4 suite averages)",
		[]isa.Op{isa.OpFMul, isa.OpFDiv}, planTable10)
}
