package experiments

import (
	"memotable/internal/engine"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/scientific"
	"memotable/internal/workloads"
)

// Scale bounds the image geometry the MM experiments run at. The paper
// traced full applications under Shade; we trade input size for wall
// clock without changing value behaviour (subsampling preserves the
// quantized histograms the hit ratios respond to).
type Scale int

// Scales.
const (
	// Tiny decimates inputs to 32 pixels per side: unit-test budget.
	Tiny Scale = iota
	// Quick decimates inputs to 64 pixels per side: interactive budget
	// (the memosim command's default).
	Quick
	// Full decimates inputs to 192 pixels per side: benchmark budget.
	Full
)

// maxDim returns the per-side bound.
func (s Scale) maxDim() int {
	switch s {
	case Full:
		return 192
	case Quick:
		return 64
	default:
		return 32
	}
}

// inputFor fetches and decimates a catalog input.
func inputFor(name string, scale Scale) *imaging.Image {
	in := imaging.Find(name)
	if in == nil {
		panic("experiments: unknown input " + name)
	}
	return in.Image.Decimate(scale.maxDim())
}

// HitRow is one application's hit ratios under two table configurations.
type HitRow struct {
	Name     string
	Small    map[isa.Op]float64 // 32-entry 4-way
	Infinite map[isa.Op]float64 // unbounded fully associative
}

// HitTable is a Table 5/6/7-shaped result.
type HitTable struct {
	Title string
	Rows  []HitRow
}

// ratioOps are the columns of Tables 5–7.
var ratioOps = []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv}

// Average computes the per-op column means, skipping '-' entries.
func (t *HitTable) Average() HitRow {
	avg := HitRow{Name: "average", Small: map[isa.Op]float64{}, Infinite: map[isa.Op]float64{}}
	for _, op := range ratioOps {
		var small, inf []float64
		for _, r := range t.Rows {
			small = append(small, r.Small[op])
			inf = append(inf, r.Infinite[op])
		}
		avg.Small[op] = meanIgnoringNaN(small)
		avg.Infinite[op] = meanIgnoringNaN(inf)
	}
	return avg
}

// Render prints the table in the paper's layout.
func (t *HitTable) Render() string {
	tab := report.NewTable(t.Title, "application",
		"int mult", "fp mult", "fp div",
		"int mult∞", "fp mult∞", "fp div∞")
	rows := append(append([]HitRow(nil), t.Rows...), t.Average())
	for _, r := range rows {
		tab.AddRow(r.Name,
			report.Ratio(r.Small[isa.OpIMul]),
			report.Ratio(r.Small[isa.OpFMul]),
			report.Ratio(r.Small[isa.OpFDiv]),
			report.Ratio(r.Infinite[isa.OpIMul]),
			report.Ratio(r.Infinite[isa.OpFMul]),
			report.Ratio(r.Infinite[isa.OpFDiv]))
	}
	return tab.String()
}

// suiteHitTable measures one list of kernels against the paper's basic
// 32/4 configuration and the infinite table: one engine cell per kernel,
// both table sets fed from a single trace replay.
func suiteHitTable(eng *engine.Engine, title string, names []string, runs []Runner) *HitTable {
	t := &HitTable{Title: title, Rows: make([]HitRow, len(runs))}
	eng.Map(len(runs), func(i int) {
		small := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
		inf := NewTableSet(memo.Infinite(), memo.NonTrivialOnly)
		replayRun(eng, kernelKey(names[i]), runs[i], small, inf)
		row := HitRow{Name: names[i], Small: map[isa.Op]float64{}, Infinite: map[isa.Op]float64{}}
		for _, op := range ratioOps {
			row.Small[op] = small.HitRatio(op)
			row.Infinite[op] = inf.HitRatio(op)
		}
		t.Rows[i] = row
	})
	return t
}

// Table5 reproduces "Hit ratios for the Perfect benchmarks" (32/4 vs
// infinite, non-trivial operations only).
func Table5(eng *engine.Engine) *HitTable {
	ks := scientific.Perfect()
	names := make([]string, len(ks))
	runs := make([]Runner, len(ks))
	for i, k := range ks {
		names[i], runs[i] = k.Name, k.Run
	}
	return suiteHitTable(eng, "Table 5: hit ratios, Perfect benchmarks", names, runs)
}

// Table6 reproduces "Hit ratios for the SPEC CFP95 benchmarks".
func Table6(eng *engine.Engine) *HitTable {
	ks := scientific.SpecCFP95()
	names := make([]string, len(ks))
	runs := make([]Runner, len(ks))
	for i, k := range ks {
		names[i], runs[i] = k.Name, k.Run
	}
	return suiteHitTable(eng, "Table 6: hit ratios, SPEC CFP95 benchmarks", names, runs)
}

// mmTable7Apps lists the seventeen applications of Table 7 in paper
// order (vsqrt appears in Table 4 and the speedup study but not in
// Table 7).
var mmTable7Apps = []string{
	"vdiff", "vcost", "vgauss", "vspatial", "vslope", "vgef", "vdetilt",
	"vwarp", "venhance", "vrect2pol", "vmpp", "vbrf", "vbpf", "vsurf",
	"vgpwl", "venhpatch", "vkmeans",
}

// Table7 reproduces "Hit ratios for Multi-Media applications". Each
// application runs over its default inputs (the paper used 8–14 per
// application) and reports per-op ratios aggregated over all inputs.
func Table7(eng *engine.Engine, scale Scale) *HitTable {
	t := &HitTable{
		Title: "Table 7: hit ratios, Multi-Media applications",
		Rows:  make([]HitRow, len(mmTable7Apps)),
	}
	eng.Map(len(mmTable7Apps), func(i int) {
		name := mmTable7Apps[i]
		app, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		small := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
		inf := NewTableSet(memo.Infinite(), memo.NonTrivialOnly)
		for _, inName := range app.Inputs {
			replayRun(eng, appKey(name, inName, scale), appRunner(app, inName, scale), small, inf)
		}
		row := HitRow{Name: name, Small: map[isa.Op]float64{}, Infinite: map[isa.Op]float64{}}
		for _, op := range ratioOps {
			row.Small[op] = small.HitRatio(op)
			row.Infinite[op] = inf.HitRatio(op)
		}
		t.Rows[i] = row
	})
	return t
}

// Table10Result compares full-value and mantissa-only tagging (Table 10):
// suite-average fp hit ratios for both schemes at 32/4.
type Table10Result struct {
	// [suite][op][scheme]: suites are Perfect and Multi-Media; schemes
	// are full then mantissa-only.
	PerfectFull, PerfectMant map[isa.Op]float64
	MMFull, MMMant           map[isa.Op]float64
}

// Table10 reproduces the mantissa-only comparison. The suite aggregation
// is stateful — every workload feeds one table pair in order — so each
// suite is a single engine cell; the per-workload trace captures are the
// parallel part, warmed across the pool first.
func Table10(eng *engine.Engine, scale Scale) *Table10Result {
	res := &Table10Result{
		PerfectFull: map[isa.Op]float64{}, PerfectMant: map[isa.Op]float64{},
		MMFull: map[isa.Op]float64{}, MMMant: map[isa.Op]float64{},
	}
	mantCfg := memo.Paper32x4()
	mantCfg.MantissaOnly = true

	type src struct {
		key string
		run Runner
	}
	var perf, mm []src
	for _, k := range scientific.Perfect() {
		perf = append(perf, src{kernelKey(k.Name), k.Run})
	}
	for _, name := range mmTable7Apps {
		app, _ := workloads.Lookup(name)
		mm = append(mm, src{appKey(name, app.Inputs[0], scale), appRunner(app, app.Inputs[0], scale)})
	}
	all := append(append([]src(nil), perf...), mm...)
	eng.Map(len(all), func(i int) { eng.Warm(all[i].key, captureOf(all[i].run)) })

	measure := func(srcs []src) (full, mant map[isa.Op]float64) {
		fullSet := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
		mantSet := NewTableSet(mantCfg, memo.NonTrivialOnly)
		for _, s := range srcs {
			replayRun(eng, s.key, s.run, fullSet, mantSet)
		}
		full = map[isa.Op]float64{}
		mant = map[isa.Op]float64{}
		for _, op := range []isa.Op{isa.OpFMul, isa.OpFDiv} {
			full[op] = fullSet.HitRatio(op)
			mant[op] = mantSet.HitRatio(op)
		}
		return full, mant
	}

	suites := [][]src{perf, mm}
	var outs [2][2]map[isa.Op]float64
	eng.Map(len(suites), func(i int) {
		f, m := measure(suites[i])
		outs[i] = [2]map[isa.Op]float64{f, m}
	})
	res.PerfectFull, res.PerfectMant = outs[0][0], outs[0][1]
	res.MMFull, res.MMMant = outs[1][0], outs[1][1]
	return res
}

// Render prints Table 10.
func (r *Table10Result) Render() string {
	tab := report.NewTable("Table 10: full value vs mantissa-only tags (32/4 averages)",
		"suite", "fp mult full", "fp mult mant", "fp div full", "fp div mant")
	tab.AddRow("Perfect",
		report.Ratio(r.PerfectFull[isa.OpFMul]), report.Ratio(r.PerfectMant[isa.OpFMul]),
		report.Ratio(r.PerfectFull[isa.OpFDiv]), report.Ratio(r.PerfectMant[isa.OpFDiv]))
	tab.AddRow("Multi-Media",
		report.Ratio(r.MMFull[isa.OpFMul]), report.Ratio(r.MMMant[isa.OpFMul]),
		report.Ratio(r.MMFull[isa.OpFDiv]), report.Ratio(r.MMMant[isa.OpFDiv]))
	return tab.String()
}
