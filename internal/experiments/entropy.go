package experiments

import (
	"fmt"
	"math"

	"memotable/internal/engine"
	"memotable/internal/fitting"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/workloads"
)

// Table8Row describes one input image: geometry, entropies and the mean
// hit ratios of the applications run over it.
type Table8Row struct {
	Name        string
	Size        string
	Kind        string
	Bands       int
	EntropyFull float64 // NaN for FLOAT inputs, as in the paper
	Entropy16   float64
	Entropy8    float64
	IMul        float64
	FMul        float64
	FDiv        float64
}

// Table8Result is the full image table.
type Table8Result struct {
	Rows []Table8Row
	// Points carries the per-(application, image) samples Figure 2 plots.
	Points []Fig2Point
}

// Fig2Point is one (application, image) hit-ratio sample with the image's
// entropies.
type Fig2Point struct {
	App, Image  string
	EntropyFull float64
	Entropy8    float64
	FMulRatio   float64 // NaN when the class is absent
	FDivRatio   float64
}

// Table8 runs every Table 7 application over every catalog image it
// accepts and reports per-image mean hit ratios alongside the image's
// measured entropies.
func Table8(eng *engine.Engine, scale Scale) *Table8Result {
	res := &Table8Result{}
	apps := make([]workloads.App, 0, len(mmTable7Apps))
	for _, name := range mmTable7Apps {
		a, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		apps = append(apps, a)
	}
	catalog := imaging.Catalog()
	rows := make([]Table8Row, len(catalog))
	points := make([][]Fig2Point, len(catalog))
	// Decimate the entropy-measurement copies before the fan-out: image
	// allocation inside a cell would race the synthetic address space
	// against captures running in other cells (captures rewind it to make
	// traces reproducible — see captureOf).
	entImgs := make([]*imaging.Image, len(catalog))
	for ci, in := range catalog {
		entImgs[ci] = in.Image.Decimate(scale.maxDim())
	}
	eng.Map(len(catalog), func(ci int) {
		in := catalog[ci]
		img := entImgs[ci]
		var eFull, e16, e8 float64
		if in.Image.Kind == imaging.Float {
			eFull, e16, e8 = math.NaN(), math.NaN(), math.NaN()
		} else {
			eFull, e16, e8 = img.Entropy(), img.WindowEntropy(16), img.WindowEntropy(8)
		}
		var imuls, fmuls, fdivs []float64
		for _, app := range apps {
			if !accepts(app, in.Name) {
				continue
			}
			ts := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
			replayRun(eng, appKey(app.Name, in.Name, scale), appRunner(app, in.Name, scale), ts)
			im, fm, fd := ts.HitRatio(isa.OpIMul), ts.HitRatio(isa.OpFMul), ts.HitRatio(isa.OpFDiv)
			imuls = append(imuls, im)
			fmuls = append(fmuls, fm)
			fdivs = append(fdivs, fd)
			points[ci] = append(points[ci], Fig2Point{
				App: app.Name, Image: in.Name,
				EntropyFull: eFull, Entropy8: e8,
				FMulRatio: fm, FDivRatio: fd,
			})
		}
		rows[ci] = Table8Row{
			Name:        in.Name,
			Size:        fmt.Sprintf("%dx%d", in.Image.W, in.Image.H),
			Kind:        in.Image.Kind.String(),
			Bands:       in.Image.Bands,
			EntropyFull: eFull, Entropy16: e16, Entropy8: e8,
			IMul: meanIgnoringNaN(imuls),
			FMul: meanIgnoringNaN(fmuls),
			FDiv: meanIgnoringNaN(fdivs),
		}
	})
	res.Rows = rows
	for _, ps := range points {
		res.Points = append(res.Points, ps...)
	}
	return res
}

// accepts reports whether the application's default input list includes
// the image.
func accepts(app workloads.App, input string) bool {
	for _, n := range app.Inputs {
		if n == input {
			return true
		}
	}
	return false
}

// Render prints Table 8.
func (r *Table8Result) Render() string {
	tab := report.NewTable("Table 8: input images, entropies and mean hit ratios",
		"image", "size", "type", "bands", "full", "16x16", "8x8",
		"imul", "fmul", "fdiv")
	for _, row := range r.Rows {
		tab.AddRow(row.Name, row.Size, row.Kind, fmt.Sprintf("%d", row.Bands),
			report.Fixed(row.EntropyFull, 2),
			report.Fixed(row.Entropy16, 2),
			report.Fixed(row.Entropy8, 2),
			report.Ratio(row.IMul), report.Ratio(row.FMul), report.Ratio(row.FDiv))
	}
	return tab.String()
}

// Fig2Fit is one fitted best-fit line of Figure 2: hit ratio as a linear
// function of entropy, via Marquardt–Levenberg (as the paper fitted).
type Fig2Fit struct {
	Label     string
	Intercept float64
	Slope     float64 // hit-ratio change per bit of entropy
	Points    int
}

// Figure2Result holds the four panels of Figure 2: fp div and fp mult
// ratios against 8x8-window entropy and whole-image entropy.
type Figure2Result struct {
	Points []Fig2Point
	Fits   []Fig2Fit
}

// Figure2 computes the hit-ratio/entropy relation. The paper observes
// roughly a 5% hit-ratio decrease per added bit of entropy.
func Figure2(eng *engine.Engine, scale Scale) *Figure2Result {
	t8 := Table8(eng, scale)
	res := &Figure2Result{Points: t8.Points}
	panels := []struct {
		label string
		x     func(Fig2Point) float64
		y     func(Fig2Point) float64
	}{
		{"fdiv vs 8x8 entropy", func(p Fig2Point) float64 { return p.Entropy8 }, func(p Fig2Point) float64 { return p.FDivRatio }},
		{"fdiv vs full entropy", func(p Fig2Point) float64 { return p.EntropyFull }, func(p Fig2Point) float64 { return p.FDivRatio }},
		{"fmul vs 8x8 entropy", func(p Fig2Point) float64 { return p.Entropy8 }, func(p Fig2Point) float64 { return p.FMulRatio }},
		{"fmul vs full entropy", func(p Fig2Point) float64 { return p.EntropyFull }, func(p Fig2Point) float64 { return p.FMulRatio }},
	}
	for _, panel := range panels {
		var xs, ys []float64
		for _, pt := range t8.Points {
			x, y := panel.x(pt), panel.y(pt)
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		fit := Fig2Fit{Label: panel.label, Points: len(xs)}
		if p, _, err := fitting.Levenberg(fitting.Line, xs, ys, []float64{0.5, -0.05}); err == nil {
			fit.Intercept, fit.Slope = p[0], p[1]
		} else {
			fit.Intercept, fit.Slope = math.NaN(), math.NaN()
		}
		res.Fits = append(res.Fits, fit)
	}
	return res
}

// Render prints the fitted lines (the figure's interpretable content).
func (r *Figure2Result) Render() string {
	tab := report.NewTable("Figure 2: hit ratio vs entropy (Marquardt-Levenberg line fits)",
		"panel", "points", "intercept", "slope (per bit)")
	for _, f := range r.Fits {
		tab.AddRow(f.Label, fmt.Sprintf("%d", f.Points),
			report.Fixed(f.Intercept, 3), report.Fixed(f.Slope, 3))
	}
	return tab.String()
}
