package experiments

import (
	"fmt"
	"math"

	"memotable/internal/engine"
	"memotable/internal/fitting"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

// Table8Row describes one input image: geometry, entropies and the mean
// hit ratios of the applications run over it.
type Table8Row struct {
	Name        string
	Size        string
	Kind        string
	Bands       int
	EntropyFull float64 // NaN for FLOAT inputs, as in the paper
	Entropy16   float64
	Entropy8    float64
	IMul        float64
	FMul        float64
	FDiv        float64
}

// Table8Result is the full image table.
type Table8Result struct {
	Rows []Table8Row
	// Points carries the per-(application, image) samples Figure 2 plots.
	Points []Fig2Point
}

// Fig2Point is one (application, image) hit-ratio sample with the image's
// entropies.
type Fig2Point struct {
	App, Image  string
	EntropyFull float64
	Entropy8    float64
	FMulRatio   float64 // NaN when the class is absent
	FDivRatio   float64
}

// planTable8 plans every Table 7 application over every catalog image it
// accepts: one single-workload demand per (application, image) cell,
// each with its own 32/4 table set. The entropy-measurement copies are
// decimated here, in the serial plan phase, so the entropies are on hand
// when finish runs (the copies are detached — entropy needs values, not
// addresses).
func planTable8(ctx *Context) ([]Demand, func() *Table8Result) {
	apps := make([]workloads.App, 0, len(mmTable7Apps))
	for _, name := range mmTable7Apps {
		apps = append(apps, ctx.App(name))
	}
	catalog := imaging.Catalog()
	entImgs := make([]*imaging.Image, len(catalog))
	for ci, in := range catalog {
		entImgs[ci] = in.Image.Decimate(ctx.MaxDim())
	}

	type cell struct {
		app workloads.App
		ts  *TableSet
	}
	cells := make([][]cell, len(catalog))
	var demands []Demand
	for ci, in := range catalog {
		for _, app := range apps {
			if !accepts(app, in.Name) {
				continue
			}
			ts := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
			cells[ci] = append(cells[ci], cell{app: app, ts: ts})
			demands = append(demands, Demand{
				Sinks:     []trace.Sink{ts},
				Workloads: []Workload{ctx.AppWorkload(app, in.Name)},
			})
		}
	}

	finish := func() *Table8Result {
		res := &Table8Result{}
		rows := make([]Table8Row, len(catalog))
		points := make([][]Fig2Point, len(catalog))
		ctx.Eng.Map(len(catalog), func(ci int) {
			in := catalog[ci]
			img := entImgs[ci]
			var eFull, e16, e8 float64
			if in.Image.Kind == imaging.Float {
				eFull, e16, e8 = math.NaN(), math.NaN(), math.NaN()
			} else {
				eFull, e16, e8 = img.Entropy(), img.WindowEntropy(16), img.WindowEntropy(8)
			}
			var imuls, fmuls, fdivs []float64
			for _, c := range cells[ci] {
				im, fm, fd := c.ts.HitRatio(isa.OpIMul), c.ts.HitRatio(isa.OpFMul), c.ts.HitRatio(isa.OpFDiv)
				imuls = append(imuls, im)
				fmuls = append(fmuls, fm)
				fdivs = append(fdivs, fd)
				points[ci] = append(points[ci], Fig2Point{
					App: c.app.Name, Image: in.Name,
					EntropyFull: eFull, Entropy8: e8,
					FMulRatio: fm, FDivRatio: fd,
				})
			}
			rows[ci] = Table8Row{
				Name:        in.Name,
				Size:        fmt.Sprintf("%dx%d", in.Image.W, in.Image.H),
				Kind:        in.Image.Kind.String(),
				Bands:       in.Image.Bands,
				EntropyFull: eFull, Entropy16: e16, Entropy8: e8,
				IMul: meanIgnoringNaN(imuls),
				FMul: meanIgnoringNaN(fmuls),
				FDiv: meanIgnoringNaN(fdivs),
			}
		})
		res.Rows = rows
		for _, ps := range points {
			res.Points = append(res.Points, ps...)
		}
		return res
	}
	return demands, finish
}

// Table8 reproduces the image table standalone on the given engine.
func Table8(eng *engine.Engine, scale Scale) *Table8Result {
	return runPlan(eng, scale, planTable8)
}

// accepts reports whether the application's default input list includes
// the image.
func accepts(app workloads.App, input string) bool {
	for _, n := range app.Inputs {
		if n == input {
			return true
		}
	}
	return false
}

// Result builds Table 8 as a typed table.
func (r *Table8Result) Result() *report.Result {
	res := report.NewTableResult("Table 8: input images, entropies and mean hit ratios",
		"image", "size", "type", "bands", "full", "16x16", "8x8",
		"imul", "fmul", "fdiv")
	for _, row := range r.Rows {
		res.AddRow(report.Str(row.Name), report.Str(row.Size), report.Str(row.Kind),
			report.Int(int64(row.Bands)),
			report.FixedCell(row.EntropyFull, 2),
			report.FixedCell(row.Entropy16, 2),
			report.FixedCell(row.Entropy8, 2),
			report.RatioCell(row.IMul), report.RatioCell(row.FMul), report.RatioCell(row.FDiv))
	}
	return res
}

// Render prints Table 8.
func (r *Table8Result) Render() string { return report.Text(r.Result()) }

// Fig2Fit is one fitted best-fit line of Figure 2: hit ratio as a linear
// function of entropy, via Marquardt–Levenberg (as the paper fitted).
type Fig2Fit struct {
	Label     string
	Intercept float64
	Slope     float64 // hit-ratio change per bit of entropy
	Points    int
}

// Figure2Result holds the four panels of Figure 2: fp div and fp mult
// ratios against 8x8-window entropy and whole-image entropy.
type Figure2Result struct {
	Points []Fig2Point
	Fits   []Fig2Fit
}

// planFigure2 plans the hit-ratio/entropy relation: the same demands as
// Table 8 (its own sinks — when both experiments are selected the
// planner still replays each workload once, feeding both), with the
// line fits computed in finish. The paper observes roughly a 5%
// hit-ratio decrease per added bit of entropy.
func planFigure2(ctx *Context) ([]Demand, func() *Figure2Result) {
	demands, t8finish := planTable8(ctx)
	finish := func() *Figure2Result {
		t8 := t8finish()
		res := &Figure2Result{Points: t8.Points}
		panels := []struct {
			label string
			x     func(Fig2Point) float64
			y     func(Fig2Point) float64
		}{
			{"fdiv vs 8x8 entropy", func(p Fig2Point) float64 { return p.Entropy8 }, func(p Fig2Point) float64 { return p.FDivRatio }},
			{"fdiv vs full entropy", func(p Fig2Point) float64 { return p.EntropyFull }, func(p Fig2Point) float64 { return p.FDivRatio }},
			{"fmul vs 8x8 entropy", func(p Fig2Point) float64 { return p.Entropy8 }, func(p Fig2Point) float64 { return p.FMulRatio }},
			{"fmul vs full entropy", func(p Fig2Point) float64 { return p.EntropyFull }, func(p Fig2Point) float64 { return p.FMulRatio }},
		}
		for _, panel := range panels {
			var xs, ys []float64
			for _, pt := range t8.Points {
				x, y := panel.x(pt), panel.y(pt)
				if math.IsNaN(x) || math.IsNaN(y) {
					continue
				}
				xs = append(xs, x)
				ys = append(ys, y)
			}
			fit := Fig2Fit{Label: panel.label, Points: len(xs)}
			if p, _, err := fitting.Levenberg(fitting.Line, xs, ys, []float64{0.5, -0.05}); err == nil {
				fit.Intercept, fit.Slope = p[0], p[1]
			} else {
				fit.Intercept, fit.Slope = math.NaN(), math.NaN()
			}
			res.Fits = append(res.Fits, fit)
		}
		return res
	}
	return demands, finish
}

// Figure2 reproduces the entropy fits standalone on the given engine.
func Figure2(eng *engine.Engine, scale Scale) *Figure2Result {
	return runPlan(eng, scale, planFigure2)
}

// Result builds the fitted lines (the figure's interpretable content) as
// a typed table.
func (r *Figure2Result) Result() *report.Result {
	res := report.NewTableResult("Figure 2: hit ratio vs entropy (Marquardt-Levenberg line fits)",
		"panel", "points", "intercept", "slope (per bit)")
	for _, f := range r.Fits {
		res.AddRow(report.Str(f.Label), report.Int(int64(f.Points)),
			report.FixedCell(f.Intercept, 3), report.FixedCell(f.Slope, 3))
	}
	return res
}

// Render prints the fitted lines.
func (r *Figure2Result) Render() string { return report.Text(r.Result()) }

func init() {
	entropyOps := []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv}
	register("table8", "Input images: entropies and mean hit ratios", entropyOps, planTable8)
	register("figure2", "Hit ratio vs entropy line fits (Marquardt-Levenberg)",
		[]isa.Op{isa.OpFMul, isa.OpFDiv}, planFigure2)
}
