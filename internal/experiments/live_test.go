package experiments

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/report"
	"memotable/internal/trace"
)

// liveCapture is a deterministic mixed-class workload: memoizable and
// plain classes interleaved, operands drawn from a bounded pool so the
// memo tables see real reuse.
func liveCapture(n int, pool uint64, seed int64) engine.CaptureFunc {
	return func(s trace.Sink) {
		rng := rand.New(rand.NewSource(seed))
		ops := []isa.Op{isa.OpFMul, isa.OpFDiv, isa.OpIMul, isa.OpFSqrt, isa.OpFAdd, isa.OpLoad, isa.OpIAlu}
		for i := 0; i < n; i++ {
			s.Emit(trace.Event{
				Op: ops[rng.Intn(len(ops))],
				A:  rng.Uint64() % pool,
				B:  rng.Uint64() % pool,
			})
		}
	}
}

// encodeCapture renders a capture as the v2 byte stream a live producer
// would send.
func encodeCapture(t *testing.T, capture engine.CaptureFunc) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriterV2(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	capture(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLiveBankIncrementalMatchesOffline is the acceptance differential:
// a bank fed frame-at-a-time by a live ingest session renders the
// byte-identical snapshot as a bank fed by an offline ReplayAll of the
// same workload.
func TestLiveBankIncrementalMatchesOffline(t *testing.T) {
	capture := liveCapture(80000, 700, 11)
	data := encodeCapture(t, capture)

	e := engine.New(2)
	live := NewDefaultLiveBank(99)
	var rolled int
	s := e.NewIngest("live", engine.IngestOptions{
		Sinks:         live.Sinks(),
		SnapshotEvery: 20000,
		OnSnapshot: func(st engine.IngestStats) {
			rolled++
			if report.Text(live.Snapshot(st)) == "" {
				t.Error("empty rolling snapshot")
			}
		},
	})
	rng := rand.New(rand.NewSource(13))
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(32<<10)
		if off+n > len(data) {
			n = len(data) - off
		}
		if err := s.Feed(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	res, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rolled == 0 {
		t.Fatal("no rolling snapshots fired")
	}

	offline := NewDefaultLiveBank(99)
	if _, err := engine.New(2).ReplayAll("off", capture, offline.Sinks()); err != nil {
		t.Fatal(err)
	}

	liveText := report.Text(live.Snapshot(res.Stats))
	offText := report.Text(offline.Snapshot(res.Stats))
	if liveText != offText {
		t.Fatalf("live and offline snapshots differ:\n--- live ---\n%s\n--- offline ---\n%s", liveText, offText)
	}
	for _, op := range MemoOps {
		lh, oh := live.HitRatio(op), offline.HitRatio(op)
		if lh != oh && !(math.IsNaN(lh) && math.IsNaN(oh)) {
			t.Fatalf("%s hit ratio: live %v offline %v", op, lh, oh)
		}
	}
	if live.Speedup() != offline.Speedup() {
		t.Fatalf("speedup: live %v offline %v", live.Speedup(), offline.Speedup())
	}
	if live.SketchReuse() != offline.SketchReuse() {
		t.Fatalf("sketch reuse: live %v offline %v", live.SketchReuse(), offline.SketchReuse())
	}
}

// TestLiveBankSketchErrorBound checks the bank's sketch estimate against
// the exact reuse ratio of the memoizable stream, computed with
// unbounded memory — the error-bound pin on a real trace rather than the
// synthetic key streams of the sketch package's own tests.
func TestLiveBankSketchErrorBound(t *testing.T) {
	const tolerance = 0.05
	for _, pool := range []uint64{50, 2000, 1 << 40} {
		capture := liveCapture(150000, pool, 17)
		bank := NewDefaultLiveBank(5)
		if _, err := engine.New(1).ReplayAll("sketch", capture, bank.Sinks()); err != nil {
			t.Fatal(err)
		}

		memoizable := trace.MaskOf(MemoOps...)
		type key struct {
			op   isa.Op
			a, b uint64
		}
		seen := make(map[key]bool)
		var total, hits int
		capture(trace.SinkFunc(func(ev trace.Event) {
			if !memoizable.Has(ev.Op) {
				return
			}
			total++
			k := key{ev.Op, ev.A, ev.B}
			if seen[k] {
				hits++
			}
			seen[k] = true
		}))
		exact := float64(hits) / float64(total)
		got := bank.SketchReuse()
		if diff := math.Abs(got - exact); diff > tolerance {
			t.Errorf("pool %d: sketch reuse %.4f vs exact %.4f (|err| %.4f > %.2f)", pool, got, exact, diff, tolerance)
		}
	}
}
