package experiments

import (
	"math"
	"strings"
	"testing"

	"memotable/internal/engine"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/probe"
	"memotable/internal/report"
	"memotable/internal/trace"
)

// tEng is shared across the driver tests: results are bit-identical at
// any worker count, replaying it here both exercises the pool under
// -race and shares the trace cache between tests.
var tEng = engine.New(4)

func TestTableSetRoutesMemoizableOps(t *testing.T) {
	ts := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
	p := probe.New(ts)
	p.FDiv(7, 3)
	p.FDiv(7, 3)
	p.FAdd(1, 2) // not memoizable: must be ignored
	if hr := ts.HitRatio(isa.OpFDiv); hr != 0.5 {
		t.Fatalf("fdiv ratio %g, want 0.5", hr)
	}
	if !math.IsNaN(ts.HitRatio(isa.OpFMul)) {
		t.Fatal("unused class must report NaN ('-')")
	}
}

func TestMeasureAndMeasureMany(t *testing.T) {
	run := func(p *probe.Probe, _ *imaging.AddressSpace) {
		for i := 0; i < 10; i++ {
			p.FMul(2, 3)
			p.Load(0x100)
		}
	}
	ts, c := Measure(run, memo.Paper32x4(), memo.NonTrivialOnly)
	if hr := ts.HitRatio(isa.OpFMul); hr != 0.9 {
		t.Fatalf("ratio %g, want 0.9", hr)
	}
	if c.Of(isa.OpLoad) != 10 {
		t.Fatalf("loads %d", c.Of(isa.OpLoad))
	}
	sets := MeasureMany(run, memo.NonTrivialOnly, memo.Paper32x4(), memo.Infinite())
	if len(sets) != 2 {
		t.Fatal("MeasureMany set count")
	}
	if sets[0].HitRatio(isa.OpFMul) != sets[1].HitRatio(isa.OpFMul) {
		t.Fatal("single-pair run must hit identically at any size")
	}
}

func TestMeanIgnoringNaN(t *testing.T) {
	if v := meanIgnoringNaN([]float64{1, math.NaN(), 3}); v != 2 {
		t.Fatalf("mean = %g", v)
	}
	if !math.IsNaN(meanIgnoringNaN([]float64{math.NaN()})) {
		t.Fatal("all-NaN mean must be NaN")
	}
}

func TestTable1Static(t *testing.T) {
	out := report.Text(Table1())
	for _, name := range []string{"Pentium Pro", "Alpha 21164", "MIPS R10000",
		"PPC 604e", "UltraSparc-II", "PA 8000"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s", name)
		}
	}
	if !strings.Contains(out, "39") || !strings.Contains(out, "22") {
		t.Error("Table 1 missing latencies")
	}
}

func TestTables5And6SuiteShape(t *testing.T) {
	t5 := Table5(tEng)
	if len(t5.Rows) != 9 {
		t.Fatalf("Table 5 has %d rows", len(t5.Rows))
	}
	t6 := Table6(tEng)
	if len(t6.Rows) != 10 {
		t.Fatalf("Table 6 has %d rows", len(t6.Rows))
	}
	for _, tbl := range []*HitTable{t5, t6} {
		avg := tbl.Average()
		// The suites' core shape: fp reuse potential is large in an
		// unbounded table but mostly out of reach of 32 entries.
		for _, op := range []isa.Op{isa.OpFMul, isa.OpFDiv} {
			if avg.Infinite[op] <= avg.Small[op] {
				t.Errorf("%s: %v infinite avg %.2f <= small avg %.2f",
					tbl.Title, op, avg.Infinite[op], avg.Small[op])
			}
		}
		if avg.Small[isa.OpFMul] > 0.35 {
			t.Errorf("%s: fmul small avg %.2f too high for a scientific suite",
				tbl.Title, avg.Small[isa.OpFMul])
		}
		if r := tbl.Render(); !strings.Contains(r, "average") {
			t.Error("render missing average row")
		}
	}
	// QCD is the all-zero row (Table 5).
	for _, r := range t5.Rows {
		if r.Name == "QCD" && (r.Small[isa.OpFMul] > 0.05 || r.Small[isa.OpIMul] > 0.05) {
			t.Errorf("QCD shows reuse: %+v", r.Small)
		}
	}
}

func TestTable7MMShape(t *testing.T) {
	t7 := Table7(tEng, Tiny)
	if len(t7.Rows) != 17 {
		t.Fatalf("Table 7 has %d rows", len(t7.Rows))
	}
	avg := t7.Average()
	// The paper's headline: MM applications show substantial reuse in a
	// 32-entry table — far above the scientific suites — and very large
	// unbounded potential.
	if avg.Small[isa.OpFMul] < 0.15 || avg.Small[isa.OpFDiv] < 0.25 {
		t.Errorf("MM small averages too low: fmul %.2f fdiv %.2f",
			avg.Small[isa.OpFMul], avg.Small[isa.OpFDiv])
	}
	if avg.Infinite[isa.OpFMul] < 0.6 || avg.Infinite[isa.OpFDiv] < 0.6 {
		t.Errorf("MM infinite averages too low: %.2f %.2f",
			avg.Infinite[isa.OpFMul], avg.Infinite[isa.OpFDiv])
	}
	// Table 7 '-' pattern spot checks.
	for _, r := range t7.Rows {
		switch r.Name {
		case "vdetilt":
			if !math.IsNaN(r.Small[isa.OpIMul]) || !math.IsNaN(r.Small[isa.OpFDiv]) {
				t.Error("vdetilt must show '-' for imul and fdiv")
			}
		case "vdiff":
			if math.IsNaN(r.Small[isa.OpIMul]) || !math.IsNaN(r.Small[isa.OpFDiv]) {
				t.Error("vdiff profile wrong")
			}
		}
	}
}

func TestMMBeatsScientificAt32(t *testing.T) {
	mm := Table7(tEng, Tiny).Average()
	sci := Table5(tEng).Average()
	if mm.Small[isa.OpFMul] <= sci.Small[isa.OpFMul] {
		t.Errorf("MM fmul %.2f not above Perfect %.2f",
			mm.Small[isa.OpFMul], sci.Small[isa.OpFMul])
	}
	if mm.Small[isa.OpFDiv] <= sci.Small[isa.OpFDiv] {
		t.Errorf("MM fdiv %.2f not above Perfect %.2f",
			mm.Small[isa.OpFDiv], sci.Small[isa.OpFDiv])
	}
}

func TestTable8AndFigure2(t *testing.T) {
	fig := Figure2(tEng, Tiny)
	if len(fig.Points) == 0 {
		t.Fatal("no Figure 2 points")
	}
	if len(fig.Fits) != 4 {
		t.Fatalf("%d fits, want 4", len(fig.Fits))
	}
	for _, f := range fig.Fits {
		if f.Points < 50 {
			t.Errorf("%s: only %d points", f.Label, f.Points)
		}
		// The paper's relation: hit ratio falls with entropy, roughly 5%
		// per bit. Accept any clearly negative slope in a sane band.
		if math.IsNaN(f.Slope) || f.Slope > -0.01 || f.Slope < -0.25 {
			t.Errorf("%s: slope %.3f outside plausible band", f.Label, f.Slope)
		}
	}
	if r := fig.Render(); !strings.Contains(r, "slope") {
		t.Error("figure render missing slope column")
	}
}

func TestTable9PolicyOrdering(t *testing.T) {
	t9 := Table9(tEng, Tiny)
	if len(t9.Rows) != 8 {
		t.Fatalf("Table 9 rows = %d", len(t9.Rows))
	}
	avg := t9.Average()
	for _, op := range ratioOps {
		c := avg.Cell[op]
		if math.IsNaN(c.Integrated) {
			continue
		}
		// Integrated detection dominates the other policies on average
		// (trivial operations count as hits and never pollute the table).
		if c.Integrated < c.Non-1e-9 {
			t.Errorf("%v: integrated %.3f below non-trivial-only %.3f", op, c.Integrated, c.Non)
		}
	}
	// vdetilt has no imul or fdiv columns.
	for _, r := range t9.Rows {
		if r.Name == "vdetilt" && !math.IsNaN(r.Cell[isa.OpIMul].All) {
			t.Error("vdetilt imul cell should be '-'")
		}
	}
	if s := t9.Render(); !strings.Contains(s, "intgr") {
		t.Error("render missing policy columns")
	}
}

func TestTable10MantissaRaisesRatios(t *testing.T) {
	t10 := Table10(tEng, Tiny)
	// Mantissa-only tags can only merge entries, so the suite averages
	// must not drop (the paper: "raises the hit ratios, albeit not by
	// much").
	for _, pair := range [][2]float64{
		{t10.MMFull[isa.OpFMul], t10.MMMant[isa.OpFMul]},
		{t10.MMFull[isa.OpFDiv], t10.MMMant[isa.OpFDiv]},
		{t10.PerfectFull[isa.OpFMul], t10.PerfectMant[isa.OpFMul]},
	} {
		if pair[1] < pair[0]-0.02 {
			t.Errorf("mantissa tagging reduced a ratio: %.3f -> %.3f", pair[0], pair[1])
		}
	}
	if s := t10.Render(); !strings.Contains(s, "Multi-Media") {
		t.Error("render incomplete")
	}
}

func TestFigure3MonotoneAndFlattening(t *testing.T) {
	fig := Figure3(tEng, Tiny)
	if len(fig.Points) != len(Figure3Sizes) {
		t.Fatalf("points = %d", len(fig.Points))
	}
	for i := 1; i < len(fig.Points); i++ {
		if fig.Points[i].FDivMean < fig.Points[i-1].FDivMean-0.03 {
			t.Errorf("fdiv mean dropped at %d entries", fig.Points[i].X)
		}
		if fig.Points[i].FMulMean < fig.Points[i-1].FMulMean-0.03 {
			t.Errorf("fmul mean dropped at %d entries", fig.Points[i].X)
		}
	}
	// Flattening: the last doubling buys almost nothing.
	n := len(fig.Points)
	if gain := fig.Points[n-1].FDivMean - fig.Points[n-2].FDivMean; gain > 0.1 {
		t.Errorf("no flattening: last doubling gained %.2f", gain)
	}
	if s := fig.Render(); !strings.Contains(s, "8192") {
		t.Error("render missing sizes")
	}
}

func TestFigure4AssociativityShape(t *testing.T) {
	fig := Figure4(tEng, Tiny)
	if len(fig.Points) != 4 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	direct := fig.Points[0]
	way4 := fig.Points[2]
	// Conflict misses make direct-mapped clearly worse than 4-way...
	if way4.FDivMean <= direct.FDivMean && way4.FMulMean <= direct.FMulMean {
		t.Error("associativity shows no benefit over direct mapped")
	}
	// ...while 8-way adds almost nothing over 4-way.
	way8 := fig.Points[3]
	if way8.FDivMean-way4.FDivMean > 0.1 {
		t.Errorf("8-way gained %.2f over 4-way; paper: negligible",
			way8.FDivMean-way4.FDivMean)
	}
}

func TestSpeedupTables(t *testing.T) {
	t11 := Table11(tEng, Tiny)
	t12 := Table12(tEng, Tiny)
	t13 := Table13(tEng, Tiny)
	for _, tbl := range []*SpeedupResult{t11, t12, t13} {
		if len(tbl.Rows) != 9 {
			t.Fatalf("%s: %d rows", tbl.Title, len(tbl.Rows))
		}
		for _, r := range tbl.Rows {
			for _, c := range []SpeedupCell{r.Fast, r.Slow} {
				if c.Speedup < 1-1e-9 {
					t.Errorf("%s/%s: speedup %.3f < 1 (failed lookups are free)",
						tbl.Title, r.Name, c.Speedup)
				}
				if c.FE < 0 || c.FE > 1 {
					t.Errorf("%s/%s: FE %.3f", tbl.Title, r.Name, c.FE)
				}
				if c.SE < 1-1e-9 {
					t.Errorf("%s/%s: SE %.3f < 1", tbl.Title, r.Name, c.SE)
				}
			}
			// Slower units leave more to save: speedup grows with latency.
			if r.Slow.Speedup < r.Fast.Speedup-1e-9 {
				t.Errorf("%s/%s: slow-machine speedup %.3f below fast %.3f",
					tbl.Title, r.Name, r.Slow.Speedup, r.Fast.Speedup)
			}
		}
	}
	// Division memoization outpaces multiplication memoization (§3.3).
	if t11.Average().Slow.Speedup <= t12.Average().Slow.Speedup {
		t.Errorf("div speedup %.3f not above mul speedup %.3f",
			t11.Average().Slow.Speedup, t12.Average().Slow.Speedup)
	}
	// Combining both classes beats either alone on the slow machine.
	if t13.Average().Slow.Speedup < t11.Average().Slow.Speedup-1e-9 {
		t.Errorf("combined %.3f below div-only %.3f",
			t13.Average().Slow.Speedup, t11.Average().Slow.Speedup)
	}
	// vbrf is the known near-1.0 row of Table 11.
	for _, r := range t11.Rows {
		if r.Name == "vbrf" && r.Slow.Speedup > 1.05 {
			t.Errorf("vbrf fdiv speedup %.3f; paper: ~1.00", r.Slow.Speedup)
		}
	}
	if s := t13.Render(); !strings.Contains(s, "average") {
		t.Error("speedup render missing average")
	}
}

func TestAmdahlConsistency(t *testing.T) {
	// The measured whole-application speedup must equal Amdahl's
	// prediction from the measured FE and SE (they are defined from the
	// same cycle accounting).
	t11 := Table11(tEng, Tiny)
	for _, r := range t11.Rows {
		for _, c := range []SpeedupCell{r.Fast, r.Slow} {
			if c.FE == 0 {
				continue
			}
			pred := 1 / ((1 - c.FE) + c.FE/c.SE)
			if math.Abs(pred-c.Speedup) > 0.02*c.Speedup {
				t.Errorf("%s: Amdahl predicts %.3f, measured %.3f", r.Name, pred, c.Speedup)
			}
		}
	}
}

func TestReplayFansOut(t *testing.T) {
	a := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
	b := NewTableSet(memo.Infinite(), memo.NonTrivialOnly)
	eng := engine.Serial()
	capture := captureOf(func(p *probe.Probe, _ *imaging.AddressSpace) { p.FMul(2, 3) })
	if _, err := eng.ReplayAll("test|fanout", capture, []trace.Sink{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.Unit(isa.OpFMul).TotalOps() != 1 || b.Unit(isa.OpFMul).TotalOps() != 1 {
		t.Fatal("fused replay did not fan out")
	}
	// The second request must be served from the trace cache, not by a
	// second workload execution.
	if _, err := eng.ReplayAll("test|fanout", capture, []trace.Sink{a}); err != nil {
		t.Fatal(err)
	}
	if eng.Captures() != 1 || eng.Replays() != 2 {
		t.Fatalf("captures=%d replays=%d, want 1 and 2", eng.Captures(), eng.Replays())
	}
	var _ trace.Sink = a // TableSet is a Sink
}

func TestParallelMatchesSerial(t *testing.T) {
	// The engine's whole contract: rendered output is bit-identical at any
	// worker count. (The root golden tests pin every experiment; this is
	// the in-package witness on one sweep.)
	serial := Figure4(engine.Serial(), Tiny).Render()
	parallel := Figure4(engine.New(8), Tiny).Render()
	if serial != parallel {
		t.Fatalf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestExtensionSqrt(t *testing.T) {
	res := ExtensionSqrt(tEng, Tiny)
	if len(res.Rows) != len(SqrtApps) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(SqrtApps))
	}
	for _, r := range res.Rows {
		if r.Speedup < 1-1e-9 {
			t.Errorf("%s: sqrt memoization slowed the machine: %.3f", r.Name, r.Speedup)
		}
		// vsqrt's per-pixel roots of quantized data reuse at the level the
		// paper reports for its fp stream (~.4-.5).
		if r.Name == "vsqrt" && r.HitRatio < 0.25 {
			t.Errorf("vsqrt: sqrt hit ratio %.2f, want >= .25", r.HitRatio)
		}
	}
	if s := res.Render(); !strings.Contains(s, "average") {
		t.Error("render incomplete")
	}
}

func TestExtensionRecip(t *testing.T) {
	res := ExtensionRecip(tEng, Tiny)
	if len(res.Rows) == 0 {
		t.Fatal("no comparison rows")
	}
	higherRecip := 0
	for _, r := range res.Rows {
		// The reciprocal cache keys on the divisor alone, so its hit
		// ratio must not fall below the full-pair MEMO-TABLE's by more
		// than noise on any application.
		if r.RecipHit < r.MemoHit-0.05 {
			t.Errorf("%s: recip hit %.2f far below memo hit %.2f", r.Name, r.RecipHit, r.MemoHit)
		}
		if r.RecipHit > r.MemoHit {
			higherRecip++
		}
	}
	if higherRecip == 0 {
		t.Error("divisor-only keying never beat full-pair keying; expected on some apps")
	}
	if s := res.Render(); !strings.Contains(s, "recip") {
		t.Error("render incomplete")
	}
}

func TestReuseCompare(t *testing.T) {
	r := ReuseCompare(tEng, Tiny)
	// The MEMO-TABLE is address-blind: unrolling must not reduce its hit
	// ratio.
	if r.UnrolledMemo < r.RolledMemo-0.02 {
		t.Errorf("memo ratio fell under unrolling: %.2f -> %.2f",
			r.RolledMemo, r.UnrolledMemo)
	}
	// The PC-keyed buffer fragments its entries across the unrolled
	// bodies: its ratio must not rise, and the MEMO-TABLE must beat it in
	// the unrolled compilation (§1.1's second argument).
	if r.UnrolledRBOnly > r.RolledRBOnly+0.02 {
		t.Errorf("RB ratio rose under unrolling: %.2f -> %.2f",
			r.RolledRBOnly, r.UnrolledRBOnly)
	}
	if r.UnrolledMemo <= r.UnrolledRB {
		t.Errorf("memo %.2f did not beat the reuse buffer %.2f under unrolling",
			r.UnrolledMemo, r.UnrolledRB)
	}
	// Restricting the RB to multi-cycle classes must not hurt the
	// multiply ratio (§1.1's first argument).
	if r.RolledRBOnly < r.RolledRB-0.02 || r.UnrolledRBOnly < r.UnrolledRB-0.02 {
		t.Error("class-restricted RB below the unrestricted one")
	}
	if s := r.Render(); !strings.Contains(s, "unrolled") {
		t.Error("render incomplete")
	}
}
