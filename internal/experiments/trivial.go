package experiments

import (
	"math"

	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/trace"
)

// Table9Apps are the eight applications of the paper's trivial-operation
// study.
var Table9Apps = []string{
	"vdiff", "vcost", "vgauss", "vspatial", "vslope", "vgef", "vdetilt", "venhance",
}

// Table9Cell is one op class's trivial-policy comparison for one app.
type Table9Cell struct {
	TrivialFraction float64 // trv: trivial ops / all ops
	All             float64 // hit ratio caching everything
	Non             float64 // hit ratio caching non-trivial only
	Integrated      float64 // trivial detection integrated (trivial = hit)
}

// Table9Row is one application across the three memoized classes.
type Table9Row struct {
	Name string
	Cell map[isa.Op]Table9Cell
}

// Table9Result is the full policy-comparison table.
type Table9Result struct {
	Rows []Table9Row
}

// planTable9 plans the trivial-operation policy comparison: for each
// application, one ordered demand feeds three table sets — one per
// policy — over the application's inputs (32/4 tables).
func planTable9(ctx *Context) ([]Demand, func() *Table9Result) {
	type policies struct {
		all, non, intg *TableSet
	}
	ps := make([]policies, len(Table9Apps))
	demands := make([]Demand, len(Table9Apps))
	for i, name := range Table9Apps {
		app := ctx.App(name)
		ps[i] = policies{
			all:  NewTableSet(memo.Paper32x4(), memo.CacheAll),
			non:  NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly),
			intg: NewTableSet(memo.Paper32x4(), memo.Integrated),
		}
		demands[i] = Demand{
			Sinks:     []trace.Sink{ps[i].all, ps[i].non, ps[i].intg},
			Workloads: ctx.AppWorkloads(app),
		}
	}
	finish := func() *Table9Result {
		res := &Table9Result{Rows: make([]Table9Row, len(Table9Apps))}
		for i, name := range Table9Apps {
			row := Table9Row{Name: name, Cell: map[isa.Op]Table9Cell{}}
			for _, op := range ratioOps {
				u := ps[i].non.Unit(op)
				if u.TotalOps() == 0 {
					row.Cell[op] = Table9Cell{
						TrivialFraction: math.NaN(), All: math.NaN(),
						Non: math.NaN(), Integrated: math.NaN(),
					}
					continue
				}
				row.Cell[op] = Table9Cell{
					TrivialFraction: float64(u.TrivialOps()) / float64(u.TotalOps()),
					All:             ps[i].all.HitRatio(op),
					Non:             ps[i].non.HitRatio(op),
					Integrated:      ps[i].intg.HitRatio(op),
				}
			}
			res.Rows[i] = row
		}
		return res
	}
	return demands, finish
}

// Table9 reproduces the policy comparison standalone on the given engine.
func Table9(eng *engine.Engine, scale Scale) *Table9Result {
	return runPlan(eng, scale, planTable9)
}

// Average returns the column means across applications, skipping '-'.
func (r *Table9Result) Average() Table9Row {
	avg := Table9Row{Name: "average", Cell: map[isa.Op]Table9Cell{}}
	for _, op := range ratioOps {
		var trv, all, non, intg []float64
		for _, row := range r.Rows {
			c := row.Cell[op]
			trv = append(trv, c.TrivialFraction)
			all = append(all, c.All)
			non = append(non, c.Non)
			intg = append(intg, c.Integrated)
		}
		avg.Cell[op] = Table9Cell{
			TrivialFraction: meanIgnoringNaN(trv),
			All:             meanIgnoringNaN(all),
			Non:             meanIgnoringNaN(non),
			Integrated:      meanIgnoringNaN(intg),
		}
	}
	return avg
}

// Result builds Table 9 as a typed table in the paper's layout (trv %,
// all, non, intgr per class).
func (r *Table9Result) Result() *report.Result {
	res := report.NewTableResult("Table 9: trivial-operation policies (32/4)",
		"application",
		"im trv", "im all", "im non", "im intgr",
		"fm trv", "fm all", "fm non", "fm intgr",
		"fd trv", "fd all", "fd non", "fd intgr")
	rows := append(append([]Table9Row(nil), r.Rows...), r.Average())
	for _, row := range rows {
		cells := []report.Cell{report.Str(row.Name)}
		for _, op := range ratioOps {
			c := row.Cell[op]
			cells = append(cells,
				report.RatioCell(c.TrivialFraction), report.RatioCell(c.All),
				report.RatioCell(c.Non), report.RatioCell(c.Integrated))
		}
		res.AddRow(cells...)
	}
	return res
}

// Render prints Table 9 in the paper's layout.
func (r *Table9Result) Render() string { return report.Text(r.Result()) }

func init() {
	register("table9", "Trivial-operation policies at 32/4 (all/non/intgr)", ratioOps, planTable9)
}
