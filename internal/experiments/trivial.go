package experiments

import (
	"math"

	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/workloads"
)

// Table9Apps are the eight applications of the paper's trivial-operation
// study.
var Table9Apps = []string{
	"vdiff", "vcost", "vgauss", "vspatial", "vslope", "vgef", "vdetilt", "venhance",
}

// Table9Cell is one op class's trivial-policy comparison for one app.
type Table9Cell struct {
	TrivialFraction float64 // trv: trivial ops / all ops
	All             float64 // hit ratio caching everything
	Non             float64 // hit ratio caching non-trivial only
	Integrated      float64 // trivial detection integrated (trivial = hit)
}

// Table9Row is one application across the three memoized classes.
type Table9Row struct {
	Name string
	Cell map[isa.Op]Table9Cell
}

// Table9Result is the full policy-comparison table.
type Table9Result struct {
	Rows []Table9Row
}

// Table9 reproduces the trivial-operation policy comparison: for each
// application, the fraction of trivial operations and the hit ratios
// under the "all", "non" and "intgr" policies (32/4 tables).
func Table9(eng *engine.Engine, scale Scale) *Table9Result {
	res := &Table9Result{Rows: make([]Table9Row, len(Table9Apps))}
	eng.Map(len(Table9Apps), func(i int) {
		name := Table9Apps[i]
		app, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		all := NewTableSet(memo.Paper32x4(), memo.CacheAll)
		non := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
		intg := NewTableSet(memo.Paper32x4(), memo.Integrated)
		for _, inName := range app.Inputs {
			replayRun(eng, appKey(name, inName, scale), appRunner(app, inName, scale), all, non, intg)
		}
		row := Table9Row{Name: name, Cell: map[isa.Op]Table9Cell{}}
		for _, op := range ratioOps {
			u := non.Unit(op)
			if u.TotalOps() == 0 {
				row.Cell[op] = Table9Cell{
					TrivialFraction: math.NaN(), All: math.NaN(),
					Non: math.NaN(), Integrated: math.NaN(),
				}
				continue
			}
			row.Cell[op] = Table9Cell{
				TrivialFraction: float64(u.TrivialOps()) / float64(u.TotalOps()),
				All:             all.HitRatio(op),
				Non:             non.HitRatio(op),
				Integrated:      intg.HitRatio(op),
			}
		}
		res.Rows[i] = row
	})
	return res
}

// Average returns the column means across applications, skipping '-'.
func (r *Table9Result) Average() Table9Row {
	avg := Table9Row{Name: "average", Cell: map[isa.Op]Table9Cell{}}
	for _, op := range ratioOps {
		var trv, all, non, intg []float64
		for _, row := range r.Rows {
			c := row.Cell[op]
			trv = append(trv, c.TrivialFraction)
			all = append(all, c.All)
			non = append(non, c.Non)
			intg = append(intg, c.Integrated)
		}
		avg.Cell[op] = Table9Cell{
			TrivialFraction: meanIgnoringNaN(trv),
			All:             meanIgnoringNaN(all),
			Non:             meanIgnoringNaN(non),
			Integrated:      meanIgnoringNaN(intg),
		}
	}
	return avg
}

// Render prints Table 9 in the paper's layout (trv %, all, non, intgr per
// class).
func (r *Table9Result) Render() string {
	tab := report.NewTable("Table 9: trivial-operation policies (32/4)",
		"application",
		"im trv", "im all", "im non", "im intgr",
		"fm trv", "fm all", "fm non", "fm intgr",
		"fd trv", "fd all", "fd non", "fd intgr")
	rows := append(append([]Table9Row(nil), r.Rows...), r.Average())
	for _, row := range rows {
		cells := []string{row.Name}
		for _, op := range ratioOps {
			c := row.Cell[op]
			cells = append(cells,
				report.Ratio(c.TrivialFraction), report.Ratio(c.All),
				report.Ratio(c.Non), report.Ratio(c.Integrated))
		}
		tab.AddRow(cells...)
	}
	return tab.String()
}
