package experiments

import (
	"fmt"
	"math"

	"memotable/internal/cpu"
	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/sketch"
	"memotable/internal/trace"
)

// LiveBank is the measurement half of a live ingest session: the banks a
// streamed operand trace feeds while it is still arriving. It bundles
// the same instruments the offline drivers use — a TableSet for per-class
// hit ratios, a baseline and a memo-enhanced cycle model for speedup (the
// planSpeedupStudy pairing), and a bounded-memory sketch estimator for
// the stream's reuse ratio — behind one sink fan-out, plus rolling
// report.Result snapshots of all of them.
//
// Determinism carries over from the replay machinery: the banks' state
// after N events is a pure function of the first N events, so a live
// session and an offline replay of the same stream render byte-identical
// snapshots — the property the differential tests pin.
type LiveBank struct {
	tables *TableSet
	base   *cpu.Model
	enh    *cpu.Model
	est    *sketch.ReuseEstimator
	sinks  []trace.Sink
}

// NewLiveBank builds a bank: tables of the given geometry and policy for
// hit ratios, baseline and enhanced cycle models on the processor (the
// enhanced machine owns its own units, separate from the hit-ratio
// tables, exactly as in the speedup studies), and a default-geometry
// sketch estimator seeded with seed.
func NewLiveBank(proc isa.Processor, cfg memo.Config, policy memo.TrivialPolicy, seed uint64) *LiveBank {
	units := make([]*memo.Unit, len(MemoOps))
	for i, op := range MemoOps {
		units[i] = memo.NewUnit(memo.New(op, cfg), policy, nil)
	}
	b := &LiveBank{
		tables: NewTableSet(cfg, policy),
		base:   cpu.New(proc),
		enh:    cpu.New(proc, units...),
		est:    sketch.NewDefaultReuseEstimator(seed),
	}
	b.sinks = []trace.Sink{b.tables, b.base, b.enh, &sketchSink{est: b.est, mask: trace.MaskOf(MemoOps...)}}
	return b
}

// NewDefaultLiveBank builds a bank with the paper's study defaults: the
// fast-FP machine, 32×4 tables, trivial operations excluded.
func NewDefaultLiveBank(seed uint64) *LiveBank {
	return NewLiveBank(isa.FastFP(), memo.Paper32x4(), memo.NonTrivialOnly, seed)
}

// Sinks returns the bank's sink fan-out, ready for engine.IngestOptions
// or a ReplayAll.
func (b *LiveBank) Sinks() []trace.Sink { return b.sinks }

// HitRatio returns the class's rolling hit ratio (NaN if never seen).
func (b *LiveBank) HitRatio(op isa.Op) float64 { return b.tables.HitRatio(op) }

// Speedup returns baseline cycles over enhanced cycles so far — the
// rolling whole-stream speedup (NaN before any event).
func (b *LiveBank) Speedup() float64 {
	if b.enh.Cycles() == 0 {
		return math.NaN()
	}
	return float64(b.base.Cycles()) / float64(b.enh.Cycles())
}

// SketchReuse returns the sketch estimate of the memoizable stream's
// reuse ratio — the hit ratio an unbounded table would achieve (NaN
// before any memoizable event).
func (b *LiveBank) SketchReuse() float64 { return b.est.ReuseRatio() }

// Snapshot renders the bank's rolling state at a stream position as a
// typed result: stream progress scalars, the per-class hit-ratio table,
// the cycle-model speedup, and the sketch reuse estimate.
func (b *LiveBank) Snapshot(st engine.IngestStats) *report.Result {
	tbl := report.NewTableResult("memo-table hit ratios", "class", "hit ratio")
	for _, op := range MemoOps {
		tbl.AddRow(report.Str(op.String()), report.RatioCell(b.tables.HitRatio(op)))
	}
	return report.NewGroup(fmt.Sprintf("live @ %d events", st.Events),
		report.NewScalar("events", report.Int(int64(st.Events)), ""),
		report.NewScalar("frames", report.Int(int64(st.Frames)), ""),
		report.NewScalar("stream bytes", report.Int(st.Bytes), "B"),
		tbl,
		report.NewScalar("speedup", report.FixedCell(b.Speedup(), 3), "x"),
		report.NewScalar("sketch reuse", report.RatioCell(b.SketchReuse()), ""),
	)
}

// sketchSink feeds memoizable events to the reuse estimator; everything
// else is skipped, matching what the MEMO-TABLE banks consume.
type sketchSink struct {
	est  *sketch.ReuseEstimator
	mask trace.OpMask
}

// Emit implements trace.Sink.
func (s *sketchSink) Emit(ev trace.Event) {
	if s.mask.Has(ev.Op) {
		s.est.Observe(sketch.Key3(uint8(ev.Op), ev.A, ev.B))
	}
}

// EmitBatch implements trace.BatchSink.
func (s *sketchSink) EmitBatch(evs []trace.Event) {
	for _, ev := range evs {
		if s.mask.Has(ev.Op) {
			s.est.Observe(sketch.Key3(uint8(ev.Op), ev.A, ev.B))
		}
	}
}

// OpMask implements trace.OpMasker.
func (s *sketchSink) OpMask() trace.OpMask { return s.mask }
