package experiments

import (
	"fmt"
	"math"

	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/stats"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

// GeometryApps are the five sample applications of Figures 3 and 4.
var GeometryApps = []string{"vcost", "venhance", "vgpwl", "vspatial", "vsurf"}

// GeometryPoint is one x position of a geometry sweep: the mean and
// min/max across the sample applications, for fp multiplication and
// division.
type GeometryPoint struct {
	X                          int // entries (Fig. 3) or ways (Fig. 4)
	FMulMean, FMulMin, FMulMax float64
	FDivMean, FDivMin, FDivMax float64
}

// GeometryResult is a Figure 3 or Figure 4 sweep.
type GeometryResult struct {
	Title  string
	XName  string
	Points []GeometryPoint
}

// Figure3Sizes are the table sizes swept (associativity fixed at 4); the
// paper sweeps 8 to 8192 entries.
var Figure3Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Figure3 reproduces the hit ratio vs table size sweep (set size 4).
func Figure3(eng *engine.Engine, scale Scale) *GeometryResult {
	cfgs := make([]memo.Config, len(Figure3Sizes))
	for i, n := range Figure3Sizes {
		ways := 4
		if n < 4 {
			ways = n
		}
		cfgs[i] = memo.Config{Entries: n, Ways: ways}
	}
	res := sweep(eng, "Figure 3: hit ratio vs LUT size (assoc 4)", "entries", cfgs, scale)
	for i := range res.Points {
		res.Points[i].X = Figure3Sizes[i]
	}
	return res
}

// Figure4Ways are the associativities swept at 32 entries.
var Figure4Ways = []int{1, 2, 4, 8}

// Figure4 reproduces the hit ratio vs associativity sweep (32 entries).
func Figure4(eng *engine.Engine, scale Scale) *GeometryResult {
	cfgs := make([]memo.Config, len(Figure4Ways))
	for i, w := range Figure4Ways {
		cfgs[i] = memo.Config{Entries: 32, Ways: w}
	}
	res := sweep(eng, "Figure 4: hit ratio vs associativity (32 entries)", "ways", cfgs, scale)
	for i := range res.Points {
		res.Points[i].X = Figure4Ways[i]
	}
	return res
}

// sweep measures the five sample applications across all configurations:
// each application's inputs are captured once across the pool, then one
// cell per application replays each input's recorded stream a single time
// into every configuration's table set at once (a fused multi-config
// replay), instead of re-decoding the stream per (application ×
// configuration) cell. One TableSet per (app, config), shared across that
// app's inputs (the paper's averages are across the applications at each
// size).
func sweep(eng *engine.Engine, title, xName string, cfgs []memo.Config, scale Scale) *GeometryResult {
	type src struct {
		key string
		run Runner
	}
	srcs := make([][]src, len(GeometryApps))
	var flat []src
	for a, name := range GeometryApps {
		app, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		for _, inName := range app.Inputs {
			s := src{appKey(name, inName, scale), appRunner(app, inName, scale)}
			srcs[a] = append(srcs[a], s)
			flat = append(flat, s)
		}
	}
	eng.Map(len(flat), func(i int) { eng.Warm(flat[i].key, captureOf(flat[i].run)) })

	perApp := make([][]*TableSet, len(GeometryApps))
	eng.Map(len(GeometryApps), func(a int) {
		sets := make([]*TableSet, len(cfgs))
		sinks := make([]trace.Sink, len(cfgs))
		for i, cfg := range cfgs {
			sets[i] = NewTableSet(cfg, memo.NonTrivialOnly)
			sinks[i] = sets[i]
		}
		for _, s := range srcs[a] {
			replayRun(eng, s.key, s.run, sinks...)
		}
		perApp[a] = sets
	})
	res := &GeometryResult{Title: title, XName: xName}
	for i := range cfgs {
		var fmuls, fdivs []float64
		for a := range GeometryApps {
			if v := perApp[a][i].HitRatio(isa.OpFMul); !math.IsNaN(v) {
				fmuls = append(fmuls, v)
			}
			if v := perApp[a][i].HitRatio(isa.OpFDiv); !math.IsNaN(v) {
				fdivs = append(fdivs, v)
			}
		}
		pt := GeometryPoint{}
		pt.FMulMean = stats.Mean(fmuls)
		pt.FMulMin, pt.FMulMax = stats.MinMax(fmuls)
		pt.FDivMean = stats.Mean(fdivs)
		pt.FDivMin, pt.FDivMax = stats.MinMax(fdivs)
		res.Points = append(res.Points, pt)
	}
	return res
}

// Render prints the sweep as a series table.
func (r *GeometryResult) Render() string {
	tab := report.NewTable(r.Title, r.XName,
		"fmul mean", "fmul min", "fmul max",
		"fdiv mean", "fdiv min", "fdiv max")
	for _, pt := range r.Points {
		tab.AddRow(fmt.Sprintf("%d", pt.X),
			report.Ratio(pt.FMulMean), report.Ratio(pt.FMulMin), report.Ratio(pt.FMulMax),
			report.Ratio(pt.FDivMean), report.Ratio(pt.FDivMin), report.Ratio(pt.FDivMax))
	}
	return tab.String()
}
