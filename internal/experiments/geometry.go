package experiments

import (
	"math"

	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/stats"
	"memotable/internal/trace"
)

// GeometryApps are the five sample applications of Figures 3 and 4.
var GeometryApps = []string{"vcost", "venhance", "vgpwl", "vspatial", "vsurf"}

// GeometryPoint is one x position of a geometry sweep: the mean and
// min/max across the sample applications, for fp multiplication and
// division.
type GeometryPoint struct {
	X                          int // entries (Fig. 3) or ways (Fig. 4)
	FMulMean, FMulMin, FMulMax float64
	FDivMean, FDivMin, FDivMax float64
}

// GeometryResult is a Figure 3 or Figure 4 sweep.
type GeometryResult struct {
	Title  string
	XName  string
	Points []GeometryPoint
}

// Figure3Sizes are the table sizes swept (associativity fixed at 4); the
// paper sweeps 8 to 8192 entries.
var Figure3Sizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// figure3Cfgs builds the size sweep's configurations.
func figure3Cfgs() []memo.Config {
	cfgs := make([]memo.Config, len(Figure3Sizes))
	for i, n := range Figure3Sizes {
		ways := 4
		if n < 4 {
			ways = n
		}
		cfgs[i] = memo.Config{Entries: n, Ways: ways}
	}
	return cfgs
}

// planFigure3 plans the hit ratio vs table size sweep (set size 4).
func planFigure3(ctx *Context) ([]Demand, func() *GeometryResult) {
	demands, finish := planSweep(ctx, "Figure 3: hit ratio vs LUT size (assoc 4)",
		"entries", figure3Cfgs())
	return demands, func() *GeometryResult {
		res := finish()
		for i := range res.Points {
			res.Points[i].X = Figure3Sizes[i]
		}
		return res
	}
}

// Figure3 reproduces the size sweep standalone on the given engine.
func Figure3(eng *engine.Engine, scale Scale) *GeometryResult {
	return runPlan(eng, scale, planFigure3)
}

// Figure4Ways are the associativities swept at 32 entries.
var Figure4Ways = []int{1, 2, 4, 8}

// planFigure4 plans the hit ratio vs associativity sweep (32 entries).
func planFigure4(ctx *Context) ([]Demand, func() *GeometryResult) {
	cfgs := make([]memo.Config, len(Figure4Ways))
	for i, w := range Figure4Ways {
		cfgs[i] = memo.Config{Entries: 32, Ways: w}
	}
	demands, finish := planSweep(ctx, "Figure 4: hit ratio vs associativity (32 entries)",
		"ways", cfgs)
	return demands, func() *GeometryResult {
		res := finish()
		for i := range res.Points {
			res.Points[i].X = Figure4Ways[i]
		}
		return res
	}
}

// Figure4 reproduces the associativity sweep standalone.
func Figure4(eng *engine.Engine, scale Scale) *GeometryResult {
	return runPlan(eng, scale, planFigure4)
}

// planSweep plans the five sample applications across all
// configurations: one TableSet per (app, config), shared across that
// app's inputs (the paper's averages are across the applications at
// each size), so each app is one ordered demand whose fused replays
// feed every configuration's set at once.
func planSweep(ctx *Context, title, xName string, cfgs []memo.Config) ([]Demand, func() *GeometryResult) {
	perApp := make([][]*TableSet, len(GeometryApps))
	demands := make([]Demand, len(GeometryApps))
	for a, name := range GeometryApps {
		app := ctx.App(name)
		sets := make([]*TableSet, len(cfgs))
		sinks := make([]trace.Sink, len(cfgs))
		for i, cfg := range cfgs {
			sets[i] = NewTableSet(cfg, memo.NonTrivialOnly)
			sinks[i] = sets[i]
		}
		perApp[a] = sets
		demands[a] = Demand{Sinks: sinks, Workloads: ctx.AppWorkloads(app)}
	}
	finish := func() *GeometryResult {
		res := &GeometryResult{Title: title, XName: xName}
		for i := range cfgs {
			var fmuls, fdivs []float64
			for a := range GeometryApps {
				if v := perApp[a][i].HitRatio(isa.OpFMul); !math.IsNaN(v) {
					fmuls = append(fmuls, v)
				}
				if v := perApp[a][i].HitRatio(isa.OpFDiv); !math.IsNaN(v) {
					fdivs = append(fdivs, v)
				}
			}
			pt := GeometryPoint{}
			pt.FMulMean = stats.Mean(fmuls)
			pt.FMulMin, pt.FMulMax = stats.MinMax(fmuls)
			pt.FDivMean = stats.Mean(fdivs)
			pt.FDivMin, pt.FDivMax = stats.MinMax(fdivs)
			res.Points = append(res.Points, pt)
		}
		return res
	}
	return demands, finish
}

// Result builds the sweep as a typed table (the paper renders these
// figures as series tables; the per-point rows are the series' samples).
func (r *GeometryResult) Result() *report.Result {
	res := report.NewTableResult(r.Title, r.XName,
		"fmul mean", "fmul min", "fmul max",
		"fdiv mean", "fdiv min", "fdiv max")
	for _, pt := range r.Points {
		res.AddRow(report.Int(int64(pt.X)),
			report.RatioCell(pt.FMulMean), report.RatioCell(pt.FMulMin), report.RatioCell(pt.FMulMax),
			report.RatioCell(pt.FDivMean), report.RatioCell(pt.FDivMin), report.RatioCell(pt.FDivMax))
	}
	return res
}

// Render prints the sweep as a series table.
func (r *GeometryResult) Render() string { return report.Text(r.Result()) }

func init() {
	fpOps := []isa.Op{isa.OpFMul, isa.OpFDiv}
	register("figure3", "Hit ratio vs LUT size, 8-8192 entries at 4-way", fpOps, planFigure3)
	register("figure4", "Hit ratio vs associativity, 1-8 ways at 32 entries", fpOps, planFigure4)
}
