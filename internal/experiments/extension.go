package experiments

import (
	"fmt"
	"math"

	"memotable/internal/cpu"
	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

// The paper's §4 names square root as the first target for extending
// MEMO-TABLEs, and cites Oberman & Flynn's reciprocal cache as the
// nearest prior scheme. Both extensions are implemented and evaluated
// here, beyond the paper's own tables.

// SqrtApps are the Multi-Media applications whose pipelines execute
// square roots.
var SqrtApps = []string{"vcost", "venhance", "vslope", "vsurf", "vsqrt", "vrect2pol"}

// SqrtRow is one application's sqrt-memoization result.
type SqrtRow struct {
	Name     string
	HitRatio float64
	FE       float64
	SE       float64
	Speedup  float64
}

// SqrtResult is the sqrt-extension study.
type SqrtResult struct {
	Rows []SqrtRow
}

// ExtensionSqrt evaluates MEMO-TABLEs on the square-root unit (latency 17
// cycles, a digit-recurrence unit's cost at 1 bit/cycle), the paper's
// first future-work item, with the Table 11 methodology.
func ExtensionSqrt(eng *engine.Engine, scale Scale) *SqrtResult {
	res := &SqrtResult{Rows: make([]SqrtRow, len(SqrtApps))}
	proc := isa.FastFP()
	eng.Map(len(SqrtApps), func(i int) {
		name := SqrtApps[i]
		app, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		base := cpu.New(proc)
		enh := cpu.New(proc,
			memo.NewUnit(memo.New(isa.OpFSqrt, memo.Paper32x4()), memo.NonTrivialOnly, nil))
		for _, inName := range app.Inputs {
			replayRun(eng, appKey(name, inName, scale), appRunner(app, inName, scale), base, enh)
		}
		c := cellFrom(base, enh, []isa.Op{isa.OpFSqrt})
		res.Rows[i] = SqrtRow{
			Name: name, HitRatio: c.HitRatio, FE: c.FE, SE: c.SE, Speedup: c.Speedup,
		}
	})
	return res
}

// Render prints the sqrt study.
func (r *SqrtResult) Render() string {
	tab := report.NewTable(
		"Extension: fp square root memoized (17-cycle unit; paper §4 future work)",
		"app", "hit ratio", "FE", "SE", "Speedup")
	var hr, fe, se, sp []float64
	for _, row := range r.Rows {
		tab.AddRow(row.Name, report.Ratio(row.HitRatio),
			fmt.Sprintf("%.3f", row.FE), fmt.Sprintf("%.2f", row.SE),
			fmt.Sprintf("%.2f", row.Speedup))
		hr = append(hr, row.HitRatio)
		fe = append(fe, row.FE)
		se = append(se, row.SE)
		sp = append(sp, row.Speedup)
	}
	tab.AddRow("average", report.Ratio(meanIgnoringNaN(hr)),
		fmt.Sprintf("%.3f", meanIgnoringNaN(fe)),
		fmt.Sprintf("%.2f", meanIgnoringNaN(se)),
		fmt.Sprintf("%.2f", meanIgnoringNaN(sp)))
	return tab.String()
}

// RecipRow compares a fdiv MEMO-TABLE against a reciprocal cache of equal
// geometry on one application.
type RecipRow struct {
	Name string
	// MemoHit and RecipHit are the two schemes' hit ratios. The
	// reciprocal cache keys on the divisor alone, so RecipHit >= MemoHit
	// is expected; the memo hit is worth more cycles.
	MemoHit  float64
	RecipHit float64
	// MemoSaved and RecipSaved are cycles avoided per scheme on a 13-cycle
	// divider with a 3-cycle multiplier (hit costs: 1 vs 3 cycles).
	MemoSaved  uint64
	RecipSaved uint64
	// Mismatches counts uncorrected-fast-path rounding deviations the
	// reciprocal cache would have emitted.
	Mismatches uint64
}

// RecipResult is the baseline comparison.
type RecipResult struct {
	Rows []RecipRow
}

// recipSink adapts a RecipCache to the event stream.
type recipSink struct{ rc *memo.RecipCache }

func (s recipSink) Emit(ev trace.Event) {
	if ev.Op == isa.OpFDiv {
		s.rc.Apply(math.Float64frombits(ev.A), math.Float64frombits(ev.B))
	}
}

// EmitBatch implements trace.BatchSink.
func (s recipSink) EmitBatch(evs []trace.Event) {
	for _, ev := range evs {
		s.Emit(ev)
	}
}

// OpMask implements trace.OpMasker: the cache sees divisions only, so
// fused replays skip division-free blocks entirely.
func (s recipSink) OpMask() trace.OpMask { return trace.MaskOf(isa.OpFDiv) }

// ExtensionRecip compares the MEMO-TABLE against the Oberman/Flynn
// reciprocal-cache baseline at identical geometry (32 entries, 4-way) on
// the speedup-study applications.
func ExtensionRecip(eng *engine.Engine, scale Scale) *RecipResult {
	const (
		divLatency = 13
		mulLatency = 3
	)
	res := &RecipResult{}
	rows := make([]RecipRow, len(SpeedupApps))
	kept := make([]bool, len(SpeedupApps))
	eng.Map(len(SpeedupApps), func(i int) {
		name := SpeedupApps[i]
		app, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		memoSet := NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
		rc := memo.NewRecipCache(memo.Paper32x4())
		for _, inName := range app.Inputs {
			replayRun(eng, appKey(name, inName, scale), appRunner(app, inName, scale),
				memoSet, recipSink{rc})
		}
		mSt := memoSet.Unit(isa.OpFDiv).Table().Stats()
		rSt := rc.Stats()
		if mSt.Lookups == 0 {
			return // application without divisions
		}
		rows[i] = RecipRow{
			Name:       name,
			MemoHit:    mSt.HitRatio(),
			RecipHit:   rSt.HitRatio(),
			MemoSaved:  mSt.Hits * uint64(divLatency-1),
			RecipSaved: rSt.Hits * uint64(divLatency-mulLatency),
			Mismatches: rc.RoundingMismatch(),
		}
		kept[i] = true
	})
	for i, row := range rows {
		if kept[i] {
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Render prints the comparison.
func (r *RecipResult) Render() string {
	tab := report.NewTable(
		"Extension: MEMO-TABLE vs reciprocal cache (32/4; div 13, mul 3 cycles)",
		"app", "memo hit", "recip hit", "memo saved", "recip saved", "uncorrected ulps")
	for _, row := range r.Rows {
		tab.AddRow(row.Name,
			report.Ratio(row.MemoHit), report.Ratio(row.RecipHit),
			fmt.Sprintf("%d", row.MemoSaved), fmt.Sprintf("%d", row.RecipSaved),
			fmt.Sprintf("%d", row.Mismatches))
	}
	return tab.String()
}
