package experiments

import (
	"math"

	"memotable/internal/cpu"
	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/trace"
)

// The paper's §4 names square root as the first target for extending
// MEMO-TABLEs, and cites Oberman & Flynn's reciprocal cache as the
// nearest prior scheme. Both extensions are implemented and evaluated
// here, beyond the paper's own tables.

// SqrtApps are the Multi-Media applications whose pipelines execute
// square roots.
var SqrtApps = []string{"vcost", "venhance", "vslope", "vsurf", "vsqrt", "vrect2pol"}

// SqrtRow is one application's sqrt-memoization result.
type SqrtRow struct {
	Name     string
	HitRatio float64
	FE       float64
	SE       float64
	Speedup  float64
}

// SqrtResult is the sqrt-extension study.
type SqrtResult struct {
	Rows []SqrtRow
}

// planSqrt plans MEMO-TABLEs on the square-root unit (latency 17 cycles,
// a digit-recurrence unit's cost at 1 bit/cycle), the paper's first
// future-work item, with the Table 11 methodology: per application one
// ordered demand feeding a baseline and an enhanced cycle model.
func planSqrt(ctx *Context) ([]Demand, func() *SqrtResult) {
	proc := isa.FastFP()
	type machines struct {
		base, enh *cpu.Model
	}
	ms := make([]machines, len(SqrtApps))
	demands := make([]Demand, len(SqrtApps))
	for i, name := range SqrtApps {
		app := ctx.App(name)
		ms[i] = machines{
			base: cpu.New(proc),
			enh: cpu.New(proc,
				memo.NewUnit(memo.New(isa.OpFSqrt, memo.Paper32x4()), memo.NonTrivialOnly, nil)),
		}
		demands[i] = Demand{
			Sinks:     []trace.Sink{ms[i].base, ms[i].enh},
			Workloads: ctx.AppWorkloads(app),
		}
	}
	finish := func() *SqrtResult {
		res := &SqrtResult{Rows: make([]SqrtRow, len(SqrtApps))}
		for i, name := range SqrtApps {
			c := cellFrom(ms[i].base, ms[i].enh, []isa.Op{isa.OpFSqrt})
			res.Rows[i] = SqrtRow{
				Name: name, HitRatio: c.HitRatio, FE: c.FE, SE: c.SE, Speedup: c.Speedup,
			}
		}
		return res
	}
	return demands, finish
}

// ExtensionSqrt evaluates the sqrt extension standalone on the given
// engine.
func ExtensionSqrt(eng *engine.Engine, scale Scale) *SqrtResult {
	return runPlan(eng, scale, planSqrt)
}

// Result builds the sqrt study as a typed table.
func (r *SqrtResult) Result() *report.Result {
	res := report.NewTableResult(
		"Extension: fp square root memoized (17-cycle unit; paper §4 future work)",
		"app", "hit ratio", "FE", "SE", "Speedup")
	var hr, fe, se, sp []float64
	for _, row := range r.Rows {
		res.AddRow(report.Str(row.Name), report.RatioCell(row.HitRatio),
			report.FloatCell(row.FE, 3), report.FloatCell(row.SE, 2),
			report.FloatCell(row.Speedup, 2))
		hr = append(hr, row.HitRatio)
		fe = append(fe, row.FE)
		se = append(se, row.SE)
		sp = append(sp, row.Speedup)
	}
	res.AddRow(report.Str("average"), report.RatioCell(meanIgnoringNaN(hr)),
		report.FloatCell(meanIgnoringNaN(fe), 3),
		report.FloatCell(meanIgnoringNaN(se), 2),
		report.FloatCell(meanIgnoringNaN(sp), 2))
	return res
}

// Render prints the sqrt study.
func (r *SqrtResult) Render() string { return report.Text(r.Result()) }

// RecipRow compares a fdiv MEMO-TABLE against a reciprocal cache of equal
// geometry on one application.
type RecipRow struct {
	Name string
	// MemoHit and RecipHit are the two schemes' hit ratios. The
	// reciprocal cache keys on the divisor alone, so RecipHit >= MemoHit
	// is expected; the memo hit is worth more cycles.
	MemoHit  float64
	RecipHit float64
	// MemoSaved and RecipSaved are cycles avoided per scheme on a 13-cycle
	// divider with a 3-cycle multiplier (hit costs: 1 vs 3 cycles).
	MemoSaved  uint64
	RecipSaved uint64
	// Mismatches counts uncorrected-fast-path rounding deviations the
	// reciprocal cache would have emitted.
	Mismatches uint64
}

// RecipResult is the baseline comparison.
type RecipResult struct {
	Rows []RecipRow
}

// recipSink adapts a RecipCache to the event stream.
type recipSink struct{ rc *memo.RecipCache }

func (s recipSink) Emit(ev trace.Event) {
	if ev.Op == isa.OpFDiv {
		s.rc.Apply(math.Float64frombits(ev.A), math.Float64frombits(ev.B))
	}
}

// EmitBatch implements trace.BatchSink.
func (s recipSink) EmitBatch(evs []trace.Event) {
	for _, ev := range evs {
		s.Emit(ev)
	}
}

// OpMask implements trace.OpMasker: the cache sees divisions only, so
// fused replays skip division-free blocks entirely.
func (s recipSink) OpMask() trace.OpMask { return trace.MaskOf(isa.OpFDiv) }

// planRecip plans the MEMO-TABLE against the Oberman/Flynn
// reciprocal-cache baseline at identical geometry (32 entries, 4-way) on
// the speedup-study applications. Applications without divisions are
// dropped in finish.
func planRecip(ctx *Context) ([]Demand, func() *RecipResult) {
	const (
		divLatency = 13
		mulLatency = 3
	)
	type schemes struct {
		memoSet *TableSet
		rc      *memo.RecipCache
	}
	ss := make([]schemes, len(SpeedupApps))
	demands := make([]Demand, len(SpeedupApps))
	for i, name := range SpeedupApps {
		app := ctx.App(name)
		ss[i] = schemes{
			memoSet: NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly),
			rc:      memo.NewRecipCache(memo.Paper32x4()),
		}
		// Fan-out affinity hint: the reciprocal cache sees divisions
		// only, so it skips most blocks — co-schedule it with its paired
		// memo set instead of letting it occupy a fan-out worker of its
		// own when this demand is fused with heavier experiments.
		group := "recip|" + name
		demands[i] = Demand{
			Sinks: []trace.Sink{
				trace.Grouped(group, ss[i].memoSet),
				trace.Grouped(group, recipSink{ss[i].rc}),
			},
			Workloads: ctx.AppWorkloads(app),
		}
	}
	finish := func() *RecipResult {
		res := &RecipResult{}
		for i, name := range SpeedupApps {
			mSt := ss[i].memoSet.Unit(isa.OpFDiv).Table().Stats()
			rSt := ss[i].rc.Stats()
			if mSt.Lookups == 0 {
				continue // application without divisions
			}
			res.Rows = append(res.Rows, RecipRow{
				Name:       name,
				MemoHit:    mSt.HitRatio(),
				RecipHit:   rSt.HitRatio(),
				MemoSaved:  mSt.Hits * uint64(divLatency-1),
				RecipSaved: rSt.Hits * uint64(divLatency-mulLatency),
				Mismatches: ss[i].rc.RoundingMismatch(),
			})
		}
		return res
	}
	return demands, finish
}

// ExtensionRecip runs the reciprocal-cache comparison standalone on the
// given engine.
func ExtensionRecip(eng *engine.Engine, scale Scale) *RecipResult {
	return runPlan(eng, scale, planRecip)
}

// Result builds the comparison as a typed table.
func (r *RecipResult) Result() *report.Result {
	res := report.NewTableResult(
		"Extension: MEMO-TABLE vs reciprocal cache (32/4; div 13, mul 3 cycles)",
		"app", "memo hit", "recip hit", "memo saved", "recip saved", "uncorrected ulps")
	for _, row := range r.Rows {
		res.AddRow(report.Str(row.Name),
			report.RatioCell(row.MemoHit), report.RatioCell(row.RecipHit),
			report.Int(int64(row.MemoSaved)), report.Int(int64(row.RecipSaved)),
			report.Int(int64(row.Mismatches)))
	}
	return res
}

// Render prints the comparison.
func (r *RecipResult) Render() string { return report.Text(r.Result()) }

func init() {
	register("sqrt-extension", "Fp square root memoized on a 17-cycle unit",
		[]isa.Op{isa.OpFSqrt}, planSqrt)
	register("recip-comparison", "MEMO-TABLE vs Oberman/Flynn reciprocal cache at 32/4",
		[]isa.Op{isa.OpFDiv}, planRecip)
}
