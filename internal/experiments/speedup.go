package experiments

import (
	"fmt"
	"math"

	"memotable/internal/cpu"
	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/workloads"
)

// SpeedupApps are the nine applications of the paper's speedup study
// (Tables 11–13).
var SpeedupApps = []string{
	"venhance", "vbrf", "vsqrt", "vslope", "vbpf",
	"vkmeans", "vspatial", "vgauss", "vgpwl",
}

// SpeedupCell is one application at one latency point: the paper's
// columns hit ratio, FE, SE and whole-application speedup. All four are
// measured from the cycle model (two-level cache hierarchy included), not
// assumed: FE is the enhanced classes' share of baseline cycles, SE the
// ratio of their baseline to enhanced cycles, Speedup the total-cycle
// ratio — which Amdahl's law then ties together.
type SpeedupCell struct {
	HitRatio float64
	FE       float64
	SE       float64
	Speedup  float64
}

// SpeedupRow is one application at the study's two latency points.
type SpeedupRow struct {
	Name       string
	Slow, Fast SpeedupCell // e.g. 13- and 39-cycle dividers
}

// SpeedupResult is a Table 11/12/13-shaped result.
type SpeedupResult struct {
	Title     string
	FastLabel string
	SlowLabel string
	Ops       []isa.Op
	Rows      []SpeedupRow
}

// Table11 reproduces the fdiv-memoization speedups with 13- and 39-cycle
// dividers.
func Table11(eng *engine.Engine, scale Scale) *SpeedupResult {
	base := isa.FastFP()
	return speedupStudy(eng,
		"Table 11: speedup, fp division memoized",
		"13 cycles", "39 cycles",
		[]isa.Op{isa.OpFDiv},
		base.WithFPLatencies(3, 13), base.WithFPLatencies(3, 39), scale)
}

// Table12 reproduces the fmul-memoization speedups with 3- and 5-cycle
// multipliers.
func Table12(eng *engine.Engine, scale Scale) *SpeedupResult {
	base := isa.FastFP()
	return speedupStudy(eng,
		"Table 12: speedup, fp multiplication memoized",
		"3 cycles", "5 cycles",
		[]isa.Op{isa.OpFMul},
		base.WithFPLatencies(3, 13), base.WithFPLatencies(5, 13), scale)
}

// Table13 reproduces the combined fmul+fdiv speedups on the 3/13- and
// 5/39-cycle machines.
func Table13(eng *engine.Engine, scale Scale) *SpeedupResult {
	base := isa.FastFP()
	return speedupStudy(eng,
		"Table 13: speedup, fp multiplication and division memoized",
		"3/13 cycles", "5/39 cycles",
		[]isa.Op{isa.OpFMul, isa.OpFDiv},
		base.WithFPLatencies(3, 13), base.WithFPLatencies(5, 39), scale)
}

// speedupStudy runs each application over its inputs on four machines in
// one trace pass: baseline and memo-enhanced, at fast and slow FP
// latencies. Each application is one engine cell.
func speedupStudy(eng *engine.Engine, title, fastLabel, slowLabel string, ops []isa.Op,
	fast, slow isa.Processor, scale Scale) *SpeedupResult {

	res := &SpeedupResult{
		Title: title, FastLabel: fastLabel, SlowLabel: slowLabel, Ops: ops,
		Rows: make([]SpeedupRow, len(SpeedupApps)),
	}
	eng.Map(len(SpeedupApps), func(i int) {
		name := SpeedupApps[i]
		app, err := workloads.Lookup(name)
		if err != nil {
			panic(err)
		}
		units := func() []*memo.Unit {
			us := make([]*memo.Unit, len(ops))
			for i, op := range ops {
				us[i] = memo.NewUnit(memo.New(op, memo.Paper32x4()), memo.NonTrivialOnly, nil)
			}
			return us
		}
		fastBase := cpu.New(fast)
		fastEnh := cpu.New(fast, units()...)
		slowBase := cpu.New(slow)
		slowEnh := cpu.New(slow, units()...)
		for _, inName := range app.Inputs {
			replayRun(eng, appKey(name, inName, scale), appRunner(app, inName, scale),
				fastBase, fastEnh, slowBase, slowEnh)
		}
		res.Rows[i] = SpeedupRow{
			Name: name,
			Fast: cellFrom(fastBase, fastEnh, ops),
			Slow: cellFrom(slowBase, slowEnh, ops),
		}
	})
	return res
}

// cellFrom derives the paper's four columns from a baseline/enhanced
// model pair.
func cellFrom(base, enh *cpu.Model, ops []isa.Op) SpeedupCell {
	var c SpeedupCell
	c.FE = base.Fraction(ops...)
	var baseClass, enhClass uint64
	var hits, lookups uint64
	for _, op := range ops {
		baseClass += base.ClassCycles(op)
		enhClass += enh.ClassCycles(op)
		st := enh.Unit(op).Table().Stats()
		hits += st.Hits
		lookups += st.Lookups
	}
	if lookups > 0 {
		c.HitRatio = float64(hits) / float64(lookups)
	} else {
		c.HitRatio = math.NaN()
	}
	if enhClass > 0 {
		c.SE = float64(baseClass) / float64(enhClass)
	} else {
		c.SE = 1
	}
	if enh.Cycles() > 0 {
		c.Speedup = float64(base.Cycles()) / float64(enh.Cycles())
	} else {
		c.Speedup = 1
	}
	return c
}

// Average aggregates the rows (simple means, as the paper's bottom row).
func (r *SpeedupResult) Average() SpeedupRow {
	mean := func(get func(SpeedupRow) SpeedupCell) SpeedupCell {
		var hr, fe, se, sp []float64
		for _, row := range r.Rows {
			c := get(row)
			hr = append(hr, c.HitRatio)
			fe = append(fe, c.FE)
			se = append(se, c.SE)
			sp = append(sp, c.Speedup)
		}
		return SpeedupCell{
			HitRatio: meanIgnoringNaN(hr),
			FE:       meanIgnoringNaN(fe),
			SE:       meanIgnoringNaN(se),
			Speedup:  meanIgnoringNaN(sp),
		}
	}
	return SpeedupRow{
		Name: "average",
		Fast: mean(func(r SpeedupRow) SpeedupCell { return r.Fast }),
		Slow: mean(func(r SpeedupRow) SpeedupCell { return r.Slow }),
	}
}

// Render prints the study in the paper's layout.
func (r *SpeedupResult) Render() string {
	tab := report.NewTable(r.Title, "app", "hit ratio",
		"FE "+r.FastLabel, "SE", "Speedup",
		"FE "+r.SlowLabel, "SE ", "Speedup ")
	rows := append(append([]SpeedupRow(nil), r.Rows...), r.Average())
	for _, row := range rows {
		tab.AddRow(row.Name,
			report.Ratio(row.Fast.HitRatio),
			fmt.Sprintf("%.3f", row.Fast.FE),
			fmt.Sprintf("%.2f", row.Fast.SE),
			fmt.Sprintf("%.2f", row.Fast.Speedup),
			fmt.Sprintf("%.3f", row.Slow.FE),
			fmt.Sprintf("%.2f", row.Slow.SE),
			fmt.Sprintf("%.2f", row.Slow.Speedup))
	}
	return tab.String()
}

// Table1 renders the static processor latency table the paper opens with.
func Table1() string {
	tab := report.NewTable("Table 1: cycle times of leading microprocessors",
		"processor", "multiplication", "division")
	for _, p := range isa.Table1Processors() {
		tab.AddRow(p.Name,
			fmt.Sprintf("%d", p.Latency[isa.OpFMul]),
			fmt.Sprintf("%d", p.Latency[isa.OpFDiv]))
	}
	return tab.String()
}
