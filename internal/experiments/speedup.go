package experiments

import (
	"math"

	"memotable/internal/cpu"
	"memotable/internal/engine"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/report"
	"memotable/internal/trace"
)

// SpeedupApps are the nine applications of the paper's speedup study
// (Tables 11–13).
var SpeedupApps = []string{
	"venhance", "vbrf", "vsqrt", "vslope", "vbpf",
	"vkmeans", "vspatial", "vgauss", "vgpwl",
}

// SpeedupCell is one application at one latency point: the paper's
// columns hit ratio, FE, SE and whole-application speedup. All four are
// measured from the cycle model (two-level cache hierarchy included), not
// assumed: FE is the enhanced classes' share of baseline cycles, SE the
// ratio of their baseline to enhanced cycles, Speedup the total-cycle
// ratio — which Amdahl's law then ties together.
type SpeedupCell struct {
	HitRatio float64
	FE       float64
	SE       float64
	Speedup  float64
}

// SpeedupRow is one application at the study's two latency points.
type SpeedupRow struct {
	Name       string
	Slow, Fast SpeedupCell // e.g. 13- and 39-cycle dividers
}

// SpeedupResult is a Table 11/12/13-shaped result.
type SpeedupResult struct {
	Title     string
	FastLabel string
	SlowLabel string
	Ops       []isa.Op
	Rows      []SpeedupRow
}

// planTable11 plans the fdiv-memoization speedups with 13- and 39-cycle
// dividers.
func planTable11(ctx *Context) ([]Demand, func() *SpeedupResult) {
	base := isa.FastFP()
	return planSpeedupStudy(ctx,
		"Table 11: speedup, fp division memoized",
		"13 cycles", "39 cycles",
		[]isa.Op{isa.OpFDiv},
		base.WithFPLatencies(3, 13), base.WithFPLatencies(3, 39))
}

// planTable12 plans the fmul-memoization speedups with 3- and 5-cycle
// multipliers.
func planTable12(ctx *Context) ([]Demand, func() *SpeedupResult) {
	base := isa.FastFP()
	return planSpeedupStudy(ctx,
		"Table 12: speedup, fp multiplication memoized",
		"3 cycles", "5 cycles",
		[]isa.Op{isa.OpFMul},
		base.WithFPLatencies(3, 13), base.WithFPLatencies(5, 13))
}

// planTable13 plans the combined fmul+fdiv speedups on the 3/13- and
// 5/39-cycle machines.
func planTable13(ctx *Context) ([]Demand, func() *SpeedupResult) {
	base := isa.FastFP()
	return planSpeedupStudy(ctx,
		"Table 13: speedup, fp multiplication and division memoized",
		"3/13 cycles", "5/39 cycles",
		[]isa.Op{isa.OpFMul, isa.OpFDiv},
		base.WithFPLatencies(3, 13), base.WithFPLatencies(5, 39))
}

// Table11 reproduces Table 11 standalone on the given engine.
func Table11(eng *engine.Engine, scale Scale) *SpeedupResult {
	return runPlan(eng, scale, planTable11)
}

// Table12 reproduces Table 12 standalone on the given engine.
func Table12(eng *engine.Engine, scale Scale) *SpeedupResult {
	return runPlan(eng, scale, planTable12)
}

// Table13 reproduces Table 13 standalone on the given engine.
func Table13(eng *engine.Engine, scale Scale) *SpeedupResult {
	return runPlan(eng, scale, planTable13)
}

// planSpeedupStudy plans each application over its inputs on four
// machines in one fused pass per workload: baseline and memo-enhanced,
// at fast and slow FP latencies. Each application is one ordered demand.
func planSpeedupStudy(ctx *Context, title, fastLabel, slowLabel string, ops []isa.Op,
	fast, slow isa.Processor) ([]Demand, func() *SpeedupResult) {

	type machines struct {
		fastBase, fastEnh, slowBase, slowEnh *cpu.Model
	}
	units := func() []*memo.Unit {
		us := make([]*memo.Unit, len(ops))
		for i, op := range ops {
			us[i] = memo.NewUnit(memo.New(op, memo.Paper32x4()), memo.NonTrivialOnly, nil)
		}
		return us
	}
	ms := make([]machines, len(SpeedupApps))
	demands := make([]Demand, len(SpeedupApps))
	for i, name := range SpeedupApps {
		app := ctx.App(name)
		ms[i] = machines{
			fastBase: cpu.New(fast),
			fastEnh:  cpu.New(fast, units()...),
			slowBase: cpu.New(slow),
			slowEnh:  cpu.New(slow, units()...),
		}
		demands[i] = Demand{
			Sinks:     []trace.Sink{ms[i].fastBase, ms[i].fastEnh, ms[i].slowBase, ms[i].slowEnh},
			Workloads: ctx.AppWorkloads(app),
		}
	}
	finish := func() *SpeedupResult {
		res := &SpeedupResult{
			Title: title, FastLabel: fastLabel, SlowLabel: slowLabel, Ops: ops,
			Rows: make([]SpeedupRow, len(SpeedupApps)),
		}
		for i, name := range SpeedupApps {
			res.Rows[i] = SpeedupRow{
				Name: name,
				Fast: cellFrom(ms[i].fastBase, ms[i].fastEnh, ops),
				Slow: cellFrom(ms[i].slowBase, ms[i].slowEnh, ops),
			}
		}
		return res
	}
	return demands, finish
}

// cellFrom derives the paper's four columns from a baseline/enhanced
// model pair.
func cellFrom(base, enh *cpu.Model, ops []isa.Op) SpeedupCell {
	var c SpeedupCell
	c.FE = base.Fraction(ops...)
	var baseClass, enhClass uint64
	var hits, lookups uint64
	for _, op := range ops {
		baseClass += base.ClassCycles(op)
		enhClass += enh.ClassCycles(op)
		st := enh.Unit(op).Table().Stats()
		hits += st.Hits
		lookups += st.Lookups
	}
	if lookups > 0 {
		c.HitRatio = float64(hits) / float64(lookups)
	} else {
		c.HitRatio = math.NaN()
	}
	if enhClass > 0 {
		c.SE = float64(baseClass) / float64(enhClass)
	} else {
		c.SE = 1
	}
	if enh.Cycles() > 0 {
		c.Speedup = float64(base.Cycles()) / float64(enh.Cycles())
	} else {
		c.Speedup = 1
	}
	return c
}

// Average aggregates the rows (simple means, as the paper's bottom row).
func (r *SpeedupResult) Average() SpeedupRow {
	mean := func(get func(SpeedupRow) SpeedupCell) SpeedupCell {
		var hr, fe, se, sp []float64
		for _, row := range r.Rows {
			c := get(row)
			hr = append(hr, c.HitRatio)
			fe = append(fe, c.FE)
			se = append(se, c.SE)
			sp = append(sp, c.Speedup)
		}
		return SpeedupCell{
			HitRatio: meanIgnoringNaN(hr),
			FE:       meanIgnoringNaN(fe),
			SE:       meanIgnoringNaN(se),
			Speedup:  meanIgnoringNaN(sp),
		}
	}
	return SpeedupRow{
		Name: "average",
		Fast: mean(func(r SpeedupRow) SpeedupCell { return r.Fast }),
		Slow: mean(func(r SpeedupRow) SpeedupCell { return r.Slow }),
	}
}

// Result builds the study as a typed table in the paper's layout.
func (r *SpeedupResult) Result() *report.Result {
	res := report.NewTableResult(r.Title, "app", "hit ratio",
		"FE "+r.FastLabel, "SE", "Speedup",
		"FE "+r.SlowLabel, "SE ", "Speedup ")
	rows := append(append([]SpeedupRow(nil), r.Rows...), r.Average())
	for _, row := range rows {
		res.AddRow(report.Str(row.Name),
			report.RatioCell(row.Fast.HitRatio),
			report.FloatCell(row.Fast.FE, 3),
			report.FloatCell(row.Fast.SE, 2),
			report.FloatCell(row.Fast.Speedup, 2),
			report.FloatCell(row.Slow.FE, 3),
			report.FloatCell(row.Slow.SE, 2),
			report.FloatCell(row.Slow.Speedup, 2))
	}
	return res
}

// Render prints the study in the paper's layout.
func (r *SpeedupResult) Render() string { return report.Text(r.Result()) }

// Table1 builds the static processor latency table the paper opens with.
func Table1() *report.Result {
	res := report.NewTableResult("Table 1: cycle times of leading microprocessors",
		"processor", "multiplication", "division")
	for _, p := range isa.Table1Processors() {
		res.AddRow(report.Str(p.Name),
			report.Int(int64(p.Latency[isa.OpFMul])),
			report.Int(int64(p.Latency[isa.OpFDiv])))
	}
	return res
}

// planTable1 adapts the static table to the registry's plan shape: no
// demands, finish renders directly.
func planTable1(*Context) Plan {
	return Plan{Finish: func() *report.Result { return Table1() }}
}

func init() {
	speedupOps := []isa.Op{isa.OpFMul, isa.OpFDiv}
	Register(Experiment{
		Name:  "table1",
		Title: "Cycle times of leading microprocessors (static)",
		Ops:   speedupOps,
		Plan:  planTable1,
	})
	register("table11", "Speedup, fp division memoized (13/39-cycle dividers)",
		[]isa.Op{isa.OpFDiv}, planTable11)
	register("table12", "Speedup, fp multiplication memoized (3/5-cycle multipliers)",
		[]isa.Op{isa.OpFMul}, planTable12)
	register("table13", "Speedup, fp multiplication and division memoized",
		speedupOps, planTable13)
}
