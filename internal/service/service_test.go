package service

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"memotable/internal/engine"
	"memotable/internal/experiments"
	"memotable/internal/report"
	"memotable/internal/trace"
)

// The cancellation tests need a capture they can hold mid-flight. A
// test-only experiment is registered for that: its single workload
// signals blockStarted and then parks on blockRelease (when armed).
// Registering here is safe — the registry-length assertions elsewhere
// in this package compare against the same live registry.
var (
	blockStarted chan struct{}
	blockRelease chan struct{}
)

func init() {
	experiments.Register(experiments.Experiment{
		Name:  "svc_block_test",
		Title: "service test: capture that blocks until released",
		Plan: func(*experiments.Context) experiments.Plan {
			var ctr trace.Counter
			w := experiments.Workload{
				Key: "svc|block",
				Capture: func(trace.Sink) {
					if blockStarted != nil {
						blockStarted <- struct{}{}
						<-blockRelease
					}
				},
			}
			return experiments.Plan{
				Demands: []experiments.Demand{{Sinks: []trace.Sink{&ctr}, Workloads: []experiments.Workload{w}}},
				Finish: func() *report.Result {
					return report.NewScalar("svc_block_test", report.Str("done"), "")
				},
			}
		},
	})
}

// waitUntil polls cond for up to 5s — the synchronization tests use it
// to observe counters that goroutines advance.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionMaxWait(t *testing.T) {
	svc := New(engine.New(1), Config{MaxInflight: 1, MaxQueue: 1, MaxWait: 30 * time.Millisecond})
	defer svc.Close()
	svc.sem <- struct{}{} // occupy the only slot

	start := time.Now()
	_, _, err := svc.Session("a").Run(context.Background(), experiments.Tiny, "table1")
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("run with no free slot: %v, want ErrAdmission", err)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("rejected after %v, before the max wait", waited)
	}
	if st := svc.Stats(); st.Rejected != 1 || st.Admitted != 0 {
		t.Fatalf("stats %+v, want 1 rejection and no admission", st)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	svc := New(engine.New(1), Config{MaxInflight: 1, MaxQueue: 1, MaxWait: 5 * time.Second})
	defer svc.Close()
	svc.sem <- struct{}{} // occupy the only slot

	// First request queues for the slot...
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := svc.Session("a").Run(context.Background(), experiments.Tiny, "table1")
		firstDone <- err
	}()
	waitUntil(t, "first request to queue", func() bool { return svc.queued.Load() == 1 })

	// ...so a second (distinct) selection overflows the queue instantly.
	_, _, err := svc.Session("b").Run(context.Background(), experiments.Tiny, "table5")
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("run with a full queue: %v, want ErrAdmission", err)
	}

	// Freeing the slot lets the queued request through.
	<-svc.sem
	if err := <-firstDone; err != nil {
		t.Fatalf("queued request after slot freed: %v", err)
	}
}

func TestRequestCancellationWhileQueued(t *testing.T) {
	svc := New(engine.New(1), Config{MaxInflight: 1, MaxQueue: 2, MaxWait: 5 * time.Second})
	defer svc.Close()
	svc.sem <- struct{}{}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := svc.Session("a").Run(ctx, experiments.Tiny, "table1")
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("canceled queued request: %v, want engine.ErrCanceled", err)
	}
}

// TestCoalescing holds a run at its starting line until an identical
// selection from a second tenant arrives: both must share one engine
// pass and return byte-identical results.
func TestCoalescing(t *testing.T) {
	eng := engine.New(2)
	svc := New(eng, Config{MaxInflight: 2})
	defer svc.Close()

	gate := make(chan struct{})
	svc.beforeRun = func(string) { <-gate }

	type outcome struct {
		results []*report.Result
		err     error
	}
	run := func(tenant string, out chan<- outcome) {
		results, _, err := svc.Session(tenant).Run(context.Background(), experiments.Tiny, "figure4")
		out <- outcome{results, err}
	}
	aDone := make(chan outcome, 1)
	go run("alice", aDone)
	waitUntil(t, "leader to register", func() bool { return svc.Stats().RunsStarted == 1 })

	bDone := make(chan outcome, 1)
	go run("bob", bDone)
	waitUntil(t, "follower to join", func() bool { return svc.Stats().RunsCoalesced == 1 })
	close(gate)

	a, b := <-aDone, <-bDone
	if a.err != nil || b.err != nil {
		t.Fatalf("coalesced runs errored: %v / %v", a.err, b.err)
	}
	aj, err := report.JSONArray(a.results)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := report.JSONArray(b.results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatal("coalesced requests returned different bytes")
	}
	st := svc.Stats()
	if st.RunsStarted != 1 || st.RunsCoalesced != 1 || st.Requests != 2 || st.Admitted != 1 {
		t.Fatalf("stats %+v, want 2 requests sharing 1 started run", st)
	}
	if st.Tenants != 2 {
		t.Fatalf("tenants %d, want 2", st.Tenants)
	}
}

// TestTenantBudgetDegradation: a tenant whose budget is exhausted gets
// byte-identical results (its workloads degrade to direct re-execution)
// and leaves nothing in the shared cache; a healthy tenant's caching is
// untouched before and after.
func TestTenantBudgetDegradation(t *testing.T) {
	eng := engine.New(2)
	svc := New(eng, Config{MaxInflight: 2})
	defer svc.Close()

	starved := svc.Session("starved")
	starved.Budget().SetLimit(1)

	sr, srep, err := starved.Run(context.Background(), experiments.Tiny, "figure4")
	if err != nil {
		t.Fatalf("starved run: %v", err)
	}
	if len(srep.Errors) > 0 {
		t.Fatalf("starved run degraded cells: %v", srep.Errors)
	}
	if got := eng.Stats().CachedTraces; got != 0 {
		t.Fatalf("starved tenant cached %d traces past its budget", got)
	}
	if used := starved.Budget().Used(); used != 0 {
		t.Fatalf("starved tenant holds %d bytes", used)
	}

	healthy := svc.Session("healthy")
	hr, _, err := healthy.Run(context.Background(), experiments.Tiny, "figure4")
	if err != nil {
		t.Fatalf("healthy run: %v", err)
	}
	cached := eng.Stats().CachedTraces
	if cached == 0 {
		t.Fatal("healthy tenant cached nothing")
	}

	sj, err := report.JSONArray(sr)
	if err != nil {
		t.Fatal(err)
	}
	hj, err := report.JSONArray(hr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, hj) {
		t.Fatal("degraded tenant's results differ from the cached tenant's")
	}

	// A further starved run must not evict the healthy tenant's entries.
	if _, _, err := starved.Run(context.Background(), experiments.Tiny, "figure4"); err != nil {
		t.Fatalf("second starved run: %v", err)
	}
	if got := eng.Stats().CachedTraces; got != cached {
		t.Fatalf("starved tenant disturbed the cache: %d entries, was %d", got, cached)
	}
}

// TestLastWaiterCancelReachesEnginePass pins the coalescing teardown
// contract: when the last (here, only) waiter on a run abandons it, the
// leader goroutine outlives the request — and its context must actually
// be canceled, so the engine pass stops at its next cooperative check
// instead of running the rest of the selection for nobody. The capture
// is held mid-flight while the waiter leaves, then released; the pass
// report the leader publishes must be marked Canceled.
func TestLastWaiterCancelReachesEnginePass(t *testing.T) {
	svc := New(engine.New(2), Config{MaxInflight: 2})
	defer svc.Close()

	blockStarted = make(chan struct{})
	blockRelease = make(chan struct{})
	defer func() { blockStarted, blockRelease = nil, nil }()

	type outcome struct {
		rep *engine.PassReport
		err error
	}
	after := make(chan outcome, 1)
	svc.afterRun = func(_ string, rep *engine.PassReport, err error) { after <- outcome{rep, err} }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() {
		_, _, err := svc.Session("a").Run(ctx, experiments.Tiny, "svc_block_test")
		runDone <- err
	}()

	<-blockStarted // the leader's pass is inside the capture
	cancel()       // the only waiter gives up on the run

	if err := <-runDone; !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("abandoned request returned %v, want engine.ErrCanceled", err)
	}
	// Run returning means leave() saw the last waiter out and called the
	// run's cancel. The leader is still parked in the capture; release it
	// and the pass must observe the cancellation, not keep executing.
	close(blockRelease)

	out := <-after
	if out.err != nil {
		t.Fatalf("leader finished with error %v, want a canceled report", out.err)
	}
	if out.rep == nil || !out.rep.Canceled {
		t.Fatalf("last waiter's cancel did not reach the engine pass: report %+v", out.rep)
	}
}

func TestRunAfterCloseRefused(t *testing.T) {
	svc := New(engine.New(1), Config{})
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err := svc.Session("a").Run(context.Background(), experiments.Tiny, "table1")
	if !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("run after Close: %v, want engine.ErrClosed", err)
	}
}
