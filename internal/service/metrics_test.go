package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memotable/internal/engine"
)

// metricValue extracts one sample's value from a rendered exposition,
// matching the full sample name (with labels) at line start.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, sample+" ")
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("sample %s: unparseable value %q: %v", sample, rest, err)
		}
		return v
	}
	t.Fatalf("sample %s not in exposition:\n%s", sample, body)
	return 0
}

// TestHTTPMetrics drives a run through the service and checks the
// Prometheus exposition: content type, HELP/TYPE discipline, and that
// the sampled values agree with the JSON stats snapshot taken at the
// same quiesced moment.
func TestHTTPMetrics(t *testing.T) {
	svc := New(engine.New(2), Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if status, body := get(t, srv.URL+"/v1/run?run=figure4,table1&scale=tiny"); status != http.StatusOK {
		t.Fatalf("warm-up run: status %d: %s", status, body)
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type %q, want %q", ct, metricsContentType)
	}
	status, raw := get(t, srv.URL+"/v1/metrics")
	resp.Body.Close()
	if status != http.StatusOK {
		t.Fatalf("/v1/metrics: status %d", status)
	}
	body := string(raw)

	// Every sample family must carry exactly one HELP and one TYPE line.
	for _, fam := range []string{
		"memosim_engine_captures_total",
		"memosim_engine_replays_total",
		"memosim_engine_tier_entries",
		"memosim_engine_tier_bytes",
		"memosim_service_requests_total",
		"memosim_service_inflight",
	} {
		if n := strings.Count(body, "# HELP "+fam+" "); n != 1 {
			t.Errorf("family %s: %d HELP lines, want 1", fam, n)
		}
		if n := strings.Count(body, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("family %s: %d TYPE lines, want 1", fam, n)
		}
	}
	if strings.Contains(body, "# TYPE memosim_engine_captures_total gauge") {
		t.Error("counter family typed as gauge")
	}

	// The service is quiet (run finished, no other requests), so the
	// exposition must agree exactly with a stats snapshot taken now.
	es, ss := svc.Engine().Stats(), svc.Stats()
	for sample, want := range map[string]float64{
		"memosim_engine_captures_total":     float64(es.Captures),
		"memosim_engine_replays_total":      float64(es.Replays),
		"memosim_engine_workers":            float64(es.Workers),
		"memosim_engine_cached_traces":      float64(es.CachedTraces),
		"memosim_engine_budget_limit_bytes": float64(es.BudgetLimit),
		"memosim_service_requests_total":    float64(ss.Requests),
		"memosim_service_admitted_total":    float64(ss.Admitted),
		"memosim_service_tenants":           float64(ss.Tenants),
		"memosim_service_inflight":          0,
	} {
		if got := metricValue(t, body, sample); got != want {
			t.Errorf("%s = %g, want %g", sample, got, want)
		}
	}
	if es.Captures == 0 {
		t.Error("warm-up run recorded no captures; value assertions are vacuous")
	}

	// Per-tier samples carry the tier label and cover every tier the
	// JSON endpoint reports.
	for _, tier := range svc.Engine().TierStats() {
		sample := fmt.Sprintf("memosim_engine_tier_entries{tier=%q}", tier.Name)
		if got := metricValue(t, body, sample); got != float64(tier.Entries) {
			t.Errorf("%s = %g, want %d", sample, got, tier.Entries)
		}
	}
}
