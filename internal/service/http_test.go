package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"memotable/internal/engine"
	"memotable/internal/experiments"
	"memotable/internal/report"
)

// get issues a request against the test server and returns status+body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHTTPRunMatchesOffline is the front-end's core contract: a daemon
// /v1/run response must be byte-identical to the offline renderer's
// output for the same selection — and stay identical on the warm path.
func TestHTTPRunMatchesOffline(t *testing.T) {
	svc := New(engine.New(2), Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	offlineEng := engine.New(2)
	defer offlineEng.Close()
	results, _, err := experiments.RunContext(context.Background(), offlineEng, experiments.Tiny, "figure4")
	if err != nil {
		t.Fatal(err)
	}
	want, err := report.JSONArray(results)
	if err != nil {
		t.Fatal(err)
	}

	for pass, label := range []string{"cold", "warm"} {
		status, body := get(t, srv.URL+"/v1/run?run=figure4&scale=tiny&tenant=alice")
		if status != http.StatusOK {
			t.Fatalf("%s pass: status %d: %s", label, status, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("%s pass (%d): daemon bytes differ from offline render", label, pass)
		}
	}
	if st := svc.Engine().Stats(); int(st.Captures) != st.CachedTraces+st.SpilledTraces {
		// Two serial identical requests: the second must replay, not
		// re-capture (the coalescing counters cover the concurrent case).
		t.Fatalf("warm request re-captured: %d captures for %d cached traces",
			st.Captures, st.CachedTraces+st.SpilledTraces)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc := New(engine.New(1), Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for _, q := range []string{
		"run=bogus",
		"run=table1&scale=huge",
		"run=table1&timeout=soon",
	} {
		status, body := get(t, srv.URL+"/v1/run?"+q)
		if status != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("query %q: error body %q unparseable: %v", q, body, err)
		}
	}
}

func TestHTTPStatsAndExperiments(t *testing.T) {
	svc := New(engine.New(1), Config{})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	status, body := get(t, srv.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", status)
	}
	var snap struct {
		Engine  engine.Stats       `json:"engine"`
		Tiers   []engine.TierStats `json:"tiers"`
		Service Stats              `json:"service"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/v1/stats body: %v", err)
	}
	if snap.Engine.Workers < 1 || len(snap.Tiers) < 3 {
		t.Fatalf("stats snapshot implausible: %+v", snap)
	}

	status, body = get(t, srv.URL+"/v1/experiments")
	if status != http.StatusOK {
		t.Fatalf("/v1/experiments: status %d", status)
	}
	var exps []struct {
		Name  string `json:"name"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal(body, &exps); err != nil {
		t.Fatalf("/v1/experiments body: %v", err)
	}
	if len(exps) != len(experiments.Names()) {
		t.Fatalf("listed %d experiments, registry has %d", len(exps), len(experiments.Names()))
	}

	status, _ = get(t, srv.URL+"/v1/nope")
	if status != http.StatusNotFound {
		t.Fatalf("/v1/nope: status %d, want 404", status)
	}
}

// TestHTTPAdmissionStatus maps a saturated service to 429 on the wire.
func TestHTTPAdmissionStatus(t *testing.T) {
	svc := New(engine.New(1), Config{MaxInflight: 1, MaxQueue: 1, MaxWait: 10 * time.Millisecond})
	defer svc.Close()
	svc.sem <- struct{}{}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	status, _ := get(t, srv.URL+"/v1/run?run=table1&scale=tiny")
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated run: status %d, want 429", status)
	}
}
