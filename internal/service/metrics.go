package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// The Prometheus exposition endpoint. GET /v1/metrics renders the same
// engine.Stats + service.Stats snapshots /v1/stats serves as JSON, in
// the Prometheus text format (version 0.0.4) a scraper expects: one
// HELP/TYPE pair per family, counters suffixed _total, tier shape as a
// labeled gauge family. The rendering is explicit — every exported
// field is listed by hand rather than reflected — so adding an engine
// counter is a conscious decision here, and a scrape can never change
// shape because a struct did.

// metricsContentType is the exposition format the text renderer emits.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// metric is one rendered sample: a family name, optional label pairs,
// a help line, a type ("counter" or "gauge") and the value.
type metric struct {
	name   string
	labels string // rendered `{k="v"}` or ""
	help   string
	typ    string
	value  float64
}

// renderMetrics formats families in order, grouping samples that share
// a family under one HELP/TYPE header (the labeled tier family).
func renderMetrics(ms []metric) string {
	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if m.name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
			lastFamily = m.name
		}
		// %g keeps integers integral (counters are uint64-exact well
		// past any realistic count) and avoids trailing zero noise.
		fmt.Fprintf(&b, "%s%s %g\n", m.name, m.labels, m.value)
	}
	return b.String()
}

// handleMetrics serves the Prometheus exposition of the engine and
// service snapshots.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	ss := s.Stats()

	ms := []metric{
		// Engine pipeline counters.
		{name: "memosim_engine_captures_total", help: "Workload executions performed (cache misses plus declined re-runs).", typ: "counter", value: float64(es.Captures)},
		{name: "memosim_engine_replays_total", help: "Cache replays served from any tier.", typ: "counter", value: float64(es.Replays)},
		{name: "memosim_engine_recaptures_total", help: "Spill files that failed verification and were re-captured.", typ: "counter", value: float64(es.Recaptures)},
		{name: "memosim_engine_decode_once_hits_total", help: "Replays served from shared decoded blocks.", typ: "counter", value: float64(es.DecodeOnceHits)},
		{name: "memosim_engine_replayed_events_total", help: "Events delivered by cache replays (each stream counted once).", typ: "counter", value: float64(es.ReplayedEvents)},
		{name: "memosim_engine_spill_retries_total", help: "Spill I/O operations retried after transient failure.", typ: "counter", value: float64(es.SpillRetries)},
		{name: "memosim_engine_degraded_captures_total", help: "Captures degraded to direct re-execution after spill failures.", typ: "counter", value: float64(es.DegradedCaptures)},
		{name: "memosim_engine_store_hits_total", help: "Cache entries settled from the persistent trace store.", typ: "counter", value: float64(es.StoreHits)},
		{name: "memosim_engine_store_puts_total", help: "Fresh captures published to the persistent trace store.", typ: "counter", value: float64(es.StorePuts)},

		// Fan-out delivery counters.
		{name: "memosim_engine_fanout_replays_total", help: "Fused replays delivered through the fan-out pipeline.", typ: "counter", value: float64(es.FanoutReplays)},
		{name: "memosim_engine_ring_stalls_total", help: "Fan-out publishes that waited on the slowest consumer.", typ: "counter", value: float64(es.RingStalls)},
		{name: "memosim_engine_delivered_events_total", help: "Per-sink delivered events across replay and ingest.", typ: "counter", value: float64(es.DeliveredEvents)},
		{name: "memosim_engine_mask_skips_total", help: "Sink/block deliveries skipped by class-mask mismatch.", typ: "counter", value: float64(es.MaskSkips)},

		// Live-ingest counters.
		{name: "memosim_engine_ingested_frames_total", help: "Frames delivered by live ingest sessions.", typ: "counter", value: float64(es.IngestedFrames)},
		{name: "memosim_engine_ingested_events_total", help: "Events delivered by live ingest sessions.", typ: "counter", value: float64(es.IngestedEvents)},
		{name: "memosim_engine_ingested_bytes_total", help: "Bytes fed into live ingest sessions.", typ: "counter", value: float64(es.IngestedBytes)},
		{name: "memosim_engine_sealed_ingests_total", help: "Ingest sessions sealed into the cache and store.", typ: "counter", value: float64(es.SealedIngests)},

		// Engine shape gauges.
		{name: "memosim_engine_workers", help: "Engine worker-pool size.", typ: "gauge", value: float64(es.Workers)},
		{name: "memosim_engine_fanout_workers", help: "Fan-out delivery goroutine budget.", typ: "gauge", value: float64(es.FanOut)},
		{name: "memosim_engine_cached_traces", help: "Captures resident in the memory tier.", typ: "gauge", value: float64(es.CachedTraces)},
		{name: "memosim_engine_spilled_traces", help: "Captures resident in the disk tier.", typ: "gauge", value: float64(es.SpilledTraces)},
		{name: "memosim_engine_cached_bytes", help: "Encoded bytes held by the memory tier.", typ: "gauge", value: float64(es.CachedBytes)},
		{name: "memosim_engine_decoded_entries", help: "Cache entries holding decoded blocks.", typ: "gauge", value: float64(es.DecodedEntries)},
		{name: "memosim_engine_decoded_block_bytes", help: "Budget bytes held by the decoded-block tier.", typ: "gauge", value: float64(es.DecodedBlockBytes)},
		{name: "memosim_engine_budget_limit_bytes", help: "Root trace-cache byte budget.", typ: "gauge", value: float64(es.BudgetLimit)},
		{name: "memosim_engine_budget_used_bytes", help: "Root budget bytes in use.", typ: "gauge", value: float64(es.BudgetUsed)},
		{name: "memosim_engine_budget_reserved_bytes", help: "Root budget bytes reserved by in-flight captures.", typ: "gauge", value: float64(es.BudgetReserved)},
	}

	// Tier shape: one labeled family per measure, tiers sorted by name
	// so the exposition is deterministic.
	tiers := s.eng.TierStats()
	sort.Slice(tiers, func(i, j int) bool { return tiers[i].Name < tiers[j].Name })
	for _, t := range tiers {
		ms = append(ms, metric{
			name: "memosim_engine_tier_entries", labels: fmt.Sprintf("{tier=%q}", t.Name),
			help: "Entries resident per cache tier.", typ: "gauge", value: float64(t.Entries),
		})
	}
	for _, t := range tiers {
		ms = append(ms, metric{
			name: "memosim_engine_tier_bytes", labels: fmt.Sprintf("{tier=%q}", t.Name),
			help: "Bytes resident per cache tier.", typ: "gauge", value: float64(t.Bytes),
		})
	}

	ms = append(ms,
		// Service admission counters.
		metric{name: "memosim_service_requests_total", help: "Run requests across all sessions.", typ: "counter", value: float64(ss.Requests)},
		metric{name: "memosim_service_runs_started_total", help: "Runs that executed on the engine.", typ: "counter", value: float64(ss.RunsStarted)},
		metric{name: "memosim_service_runs_coalesced_total", help: "Requests that joined an in-flight identical run.", typ: "counter", value: float64(ss.RunsCoalesced)},
		metric{name: "memosim_service_admitted_total", help: "Runs that acquired an engine slot.", typ: "counter", value: float64(ss.Admitted)},
		metric{name: "memosim_service_rejected_total", help: "Requests refused by admission control.", typ: "counter", value: float64(ss.Rejected)},

		// Service shape gauges.
		metric{name: "memosim_service_tenants", help: "Sessions created since start.", typ: "gauge", value: float64(ss.Tenants)},
		metric{name: "memosim_service_inflight", help: "Passes running on the engine now.", typ: "gauge", value: float64(ss.Inflight)},
		metric{name: "memosim_service_queued", help: "Requests waiting for an engine slot now.", typ: "gauge", value: float64(ss.Queued)},
	)

	w.Header().Set("Content-Type", metricsContentType)
	_, _ = fmt.Fprint(w, renderMetrics(ms))
}
