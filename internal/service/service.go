// Package service is the multi-tenant front-end of the experiment
// engine: one long-running Service owns one shared engine.Engine and
// hands out per-tenant Sessions, so many concurrent clients run
// experiment selections against a single two-tier trace cache instead
// of each paying cold captures. Three concerns layer on top of the
// engine's seams:
//
//   - Per-tenant space control. Every Session carries an engine.Budget
//     nested under the engine's root budget (engine.WithBudget), so a
//     tenant that exhausts its byte slice degrades its own workloads to
//     direct re-execution — byte-identical results, just uncached —
//     without evicting or displacing another tenant's entries.
//   - Admission control. At most MaxInflight passes run on the engine
//     at once; excess requests queue up to MaxQueue deep and wait up to
//     MaxWait for a slot. Overflow and timeout are rejected with the
//     typed ErrAdmission rather than piling unbounded work on the pool.
//   - Request coalescing. Identical selections (same scale, same
//     ordered experiment names) arriving while a run is in flight join
//     that run instead of starting their own — the cross-tenant
//     analogue of the engine's per-workload singleflight. Joined
//     requests share one pass, one admission slot, and one result set.
//
// Results are the same []*report.Result / *engine.PassReport pair the
// offline CLI uses, so the HTTP front-end (http.go) can serve bytes
// identical to `memosim -run -json`.
package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memotable/internal/engine"
	"memotable/internal/experiments"
	"memotable/internal/faults"
	"memotable/internal/report"
)

// ErrAdmission reports a request refused by admission control: the
// queue was full, or no engine slot freed up within the max wait.
var ErrAdmission = errors.New("service: admission rejected")

// Config shapes a Service. Zero values select sensible defaults.
type Config struct {
	// MaxInflight bounds the passes running on the engine at once
	// (<= 0 selects max(2, engine workers)).
	MaxInflight int
	// MaxQueue bounds how many admitted-but-waiting requests may queue
	// for a slot (<= 0 selects 4x MaxInflight). Requests beyond the
	// queue are rejected immediately with ErrAdmission.
	MaxQueue int
	// MaxWait bounds how long a queued request waits for a slot before
	// ErrAdmission (<= 0 selects 2s).
	MaxWait time.Duration
	// TenantBudget is the cache-byte budget of each tenant's Session,
	// nested under the engine's root budget (<= 0 gives every tenant
	// the root limit — bounded globally, unbounded per tenant).
	TenantBudget int64
	// RunTimeout bounds each run's wall clock on the engine, beyond any
	// per-request deadline (0 = no limit).
	RunTimeout time.Duration
}

// Service is the shared front-end: one engine, many tenants. Construct
// with New.
type Service struct {
	eng *engine.Engine
	cfg Config

	sem    chan struct{} // admission slots; len(sem) = passes in flight
	queued atomic.Int64  // requests waiting for a slot

	mu        sync.Mutex
	tenants   map[string]*Session
	runs      map[string]*runCall // in-flight coalescable runs by selection key
	closed    bool
	beforeRun func(key string)                                    // test hook: called by the run leader before admission
	afterRun  func(key string, rep *engine.PassReport, err error) // test hook: called with the leader's outcome before done closes

	// Counters (atomic; snapshot with Stats).
	requests      atomic.Uint64 // runs requested across all sessions
	runsStarted   atomic.Uint64 // runs that executed on the engine
	runsCoalesced atomic.Uint64 // requests that joined an in-flight run
	admitted      atomic.Uint64 // runs that acquired an engine slot
	rejected      atomic.Uint64 // requests refused by admission control
}

// New builds a Service over an engine the caller constructed (workers,
// trace dir, store and fan-out already configured). The Service owns
// the engine from here: Close closes it.
func New(eng *engine.Engine, cfg Config) *Service {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = eng.Workers()
		if cfg.MaxInflight < 2 {
			cfg.MaxInflight = 2
		}
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Second
	}
	return &Service{
		eng:     eng,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInflight),
		tenants: make(map[string]*Session),
		runs:    make(map[string]*runCall),
	}
}

// Engine returns the shared engine (stats, tiers, store access).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Close shuts the service down: new runs fail with engine.ErrClosed
// (in-flight passes drain first — Engine.Close waits for them), and the
// engine's spill tier is torn down. Idempotent, like Engine.Close.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.eng.Close()
}

// Session is one tenant's handle on the service: a name, a cache-byte
// budget nested under the engine's global limit, and per-tenant request
// counters. Sessions are cheap and long-lived; all methods are safe for
// concurrent use.
type Session struct {
	svc    *Service
	tenant string
	budget *engine.Budget

	requests atomic.Uint64 // runs requested by this tenant
	degraded atomic.Uint64 // responses carrying failed cells
}

// Session returns tenant's session, creating it on first use with the
// configured TenantBudget nested under the engine's root budget.
func (s *Service) Session(tenant string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.tenants[tenant]
	if !ok {
		limit := s.cfg.TenantBudget
		if limit <= 0 {
			limit = s.eng.Budget().Limit()
		}
		sess = &Session{svc: s, tenant: tenant, budget: s.eng.Budget().Child(limit)}
		s.tenants[tenant] = sess
	}
	return sess
}

// Tenant returns the session's tenant name.
func (s *Session) Tenant() string { return s.tenant }

// Budget returns the session's byte budget (a child of the engine's
// root budget), for inspection and limit adjustment.
func (s *Session) Budget() *engine.Budget { return s.budget }

// runCall is one in-flight coalescable run: the leader executes, every
// identical request arriving before completion joins as a follower and
// shares the outcome. waiters tracks who is still interested; when the
// last waiter abandons the call (its own context fired), the run itself
// is canceled.
type runCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int

	results []*report.Result
	rep     *engine.PassReport
	err     error
}

// runKey identifies a coalescable selection: the scale plus the ordered
// name list. Order matters — results come back in selection order, so
// two requests naming the same experiments in different orders want
// different responses and must not coalesce.
func runKey(scale experiments.Scale, names []string) string {
	return scale.String() + "|" + strings.Join(names, ",")
}

// Run executes an experiment selection (all registered experiments when
// names is empty) at the given scale and returns the selection-ordered
// results plus the engine's pass report, exactly as the offline
// experiments.RunContext would. Identical concurrent selections — any
// tenant's — coalesce into one engine pass. Cache bytes the run
// captures are charged to this session's budget; a selection that
// overflows it degrades to direct re-execution without touching other
// tenants' entries.
//
// Failure surfaces as: ErrAdmission (queue full or slot wait expired),
// engine.ErrClosed (service shut down), a context/cancellation error
// (the request's own ctx fired), or a selection-planning error from the
// registry (unknown names). Cell-level failures do not error — they
// ride in the PassReport and degrade the affected results.
func (sess *Session) Run(ctx context.Context, scale experiments.Scale, names ...string) ([]*report.Result, *engine.PassReport, error) {
	s := sess.svc
	s.requests.Add(1)
	sess.requests.Add(1)
	if err := faults.Inject(faults.ServiceAdmit); err != nil {
		s.rejected.Add(1)
		return nil, nil, fmt.Errorf("%w: %w", ErrAdmission, err)
	}

	key := runKey(scale, names)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, engine.ErrClosed
	}
	c, joined := s.runs[key]
	if joined {
		c.waiters++
		s.runsCoalesced.Add(1)
	} else {
		base := context.Background()
		var cancel context.CancelFunc
		if s.cfg.RunTimeout > 0 {
			base, cancel = context.WithTimeout(base, s.cfg.RunTimeout)
		} else {
			base, cancel = context.WithCancel(base)
		}
		c = &runCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
		s.runs[key] = c
		s.runsStarted.Add(1)
		hook := s.beforeRun
		after := s.afterRun
		go s.execute(base, c, sess, key, scale, names, hook, after)
	}
	s.mu.Unlock()

	select {
	case <-c.done:
		s.leave(key, c)
		if c.err == nil && c.rep != nil && (len(c.rep.Errors) > 0 || c.rep.Canceled) {
			sess.degraded.Add(1)
		}
		return c.results, c.rep, c.err
	case <-ctx.Done():
		s.leave(key, c)
		return nil, nil, fmt.Errorf("%w: %w", engine.ErrCanceled, context.Cause(ctx))
	}
}

// leave retires one waiter from a call; the last one out cancels the
// run (a no-op once it has completed).
func (s *Service) leave(key string, c *runCall) {
	s.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	s.mu.Unlock()
	if last {
		c.cancel()
	}
}

// execute is the run leader: it acquires an admission slot, runs the
// selection on the shared engine under the leading tenant's budget, and
// publishes the outcome to every waiter. The call is deregistered
// before done is closed, so a request arriving after completion starts
// a fresh run — the coalescing window is exactly the in-flight window.
func (s *Service) execute(ctx context.Context, c *runCall, sess *Session, key string, scale experiments.Scale, names []string, hook func(string), after func(string, *engine.PassReport, error)) {
	defer func() {
		s.mu.Lock()
		delete(s.runs, key)
		s.mu.Unlock()
		if after != nil {
			after(key, c.rep, c.err)
		}
		close(c.done)
		c.cancel()
	}()
	if hook != nil {
		hook(key)
	}
	if err := s.admit(ctx); err != nil {
		c.err = err
		return
	}
	defer func() { <-s.sem }()
	if err := faults.Inject(faults.ServiceRun); err != nil {
		c.err = fmt.Errorf("service: run failed: %w", err)
		return
	}
	runCtx := engine.WithBudget(ctx, sess.budget)
	c.results, c.rep, c.err = experiments.RunContext(runCtx, s.eng, scale, names...)
}

// admit acquires an engine slot for one run: immediate when a slot is
// free, queued up to MaxQueue deep and MaxWait long otherwise. The
// queue bound is checked optimistically — a burst may briefly overshoot
// by the number of racing requests, which trades exactness for never
// serializing admissions behind a lock.
func (s *Service) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		s.admitted.Add(1)
		return nil
	default:
	}
	if int(s.queued.Load()) >= s.cfg.MaxQueue {
		s.rejected.Add(1)
		return fmt.Errorf("%w: queue full (%d waiting)", ErrAdmission, s.cfg.MaxQueue)
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	t := time.NewTimer(s.cfg.MaxWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.admitted.Add(1)
		return nil
	case <-t.C:
		s.rejected.Add(1)
		return fmt.Errorf("%w: no slot within %v", ErrAdmission, s.cfg.MaxWait)
	case <-ctx.Done():
		s.rejected.Add(1)
		return fmt.Errorf("%w: %w", engine.ErrCanceled, context.Cause(ctx))
	}
}

// Stats is a point-in-time snapshot of the service's request flow —
// flat and JSON-friendly, the front-of-house sibling of engine.Stats.
type Stats struct {
	Tenants       int    `json:"tenants"`
	Requests      uint64 `json:"requests"`
	RunsStarted   uint64 `json:"runs_started"`
	RunsCoalesced uint64 `json:"runs_coalesced"`
	Admitted      uint64 `json:"admitted"`
	Rejected      uint64 `json:"rejected"`
	Inflight      int    `json:"inflight"`
	Queued        int    `json:"queued"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	tenants := len(s.tenants)
	s.mu.Unlock()
	return Stats{
		Tenants:       tenants,
		Requests:      s.requests.Load(),
		RunsStarted:   s.runsStarted.Load(),
		RunsCoalesced: s.runsCoalesced.Load(),
		Admitted:      s.admitted.Load(),
		Rejected:      s.rejected.Load(),
		Inflight:      len(s.sem),
		Queued:        int(s.queued.Load()),
	}
}
