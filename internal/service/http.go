package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"memotable/internal/engine"
	"memotable/internal/experiments"
	"memotable/internal/faults"
	"memotable/internal/report"
)

// The HTTP front-end. Handler exposes the service over three GET
// endpoints:
//
//	GET /v1/experiments            the registry: [{"name","title"}, ...]
//	GET /v1/run?run=a,b&scale=s    run a selection, return its results
//	GET /v1/stats                  engine + tier + service snapshots
//	GET /v1/metrics                the same snapshots as Prometheus text
//
// /v1/run parameters mirror the offline CLI flags: `run` is the
// comma-separated experiment selection ("" or "all" selects the whole
// registry, like `-run` omitted), `scale` is tiny|quick|full (default
// quick, like `-scale`), `tenant` names the requesting tenant (default
// "default"), and `timeout` caps the request wall clock (a Go duration,
// e.g. "30s"). The 200 response body is byte-identical to what `memosim
// -scale s -run a,b -json` prints for the same selection — both render
// through report.JSONArray — which is what lets CI diff daemon
// responses against offline output.
//
// Status codes:
//
//	200  clean run, exact results
//	206  degraded run: same JSON body, but some cells failed (the
//	     per-result "errors" arrays say which) or the run was cut short
//	400  unknown experiment names, bad scale, bad timeout
//	429  admission rejected (queue full, slot wait expired, injected
//	     service.admit fault) — retry later
//	500  run or render failure (injected service.run/service.render,
//	     selection planning defects)
//	503  service closed
//	504  the request's own deadline or cancellation fired
//
// Error responses are a small JSON object {"error": "..."} so clients
// never have to sniff; success bodies are always a JSON array.

// Handler returns the service's HTTP handler, ready to mount on a
// server.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

// httpError writes the uniform JSON error body.
func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(body, '\n'))
}

// handleExperiments lists the registry.
func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type exp struct {
		Name  string `json:"name"`
		Title string `json:"title"`
	}
	all := experiments.All()
	out := make([]exp, len(all))
	for i, e := range all {
		out[i] = exp{Name: e.Name, Title: e.Title}
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// runParams decodes and validates one /v1/run request.
func runParams(r *http.Request) (tenant string, scale experiments.Scale, names []string, timeout time.Duration, err error) {
	q := r.URL.Query()
	tenant = q.Get("tenant")
	if tenant == "" {
		tenant = "default"
	}
	scale, err = experiments.ParseScale(q.Get("scale"))
	if err != nil {
		return
	}
	if sel := q.Get("run"); sel != "" && sel != "all" {
		names = strings.Split(sel, ",")
	}
	// Unknown names are a client defect (400), not a run failure (500):
	// validate against the registry before anything queues.
	if _, err = experiments.Lookup(names...); err != nil {
		return
	}
	if ts := q.Get("timeout"); ts != "" {
		timeout, err = time.ParseDuration(ts)
		if err != nil {
			err = fmt.Errorf("bad timeout %q: %w", ts, err)
			return
		}
	}
	return
}

// handleRun runs a selection for a tenant and streams the result array.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	tenant, scale, names, timeout, err := runParams(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	results, rep, err := s.Session(tenant).Run(ctx, scale, names...)
	if err != nil {
		httpError(w, runStatus(err), err)
		return
	}
	if ferr := faults.Inject(faults.ServiceRender); ferr != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("service: render failed: %w", ferr))
		return
	}
	body, err := report.JSONArray(results)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusOK
	if len(rep.Errors) > 0 || rep.Canceled {
		status = http.StatusPartialContent
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// runStatus maps a Session.Run error to its documented status code.
func runStatus(err error) int {
	switch {
	case errors.Is(err, ErrAdmission):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// handleStats snapshots the engine, its tiers, and the service.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := struct {
		Engine  engine.Stats       `json:"engine"`
		Tiers   []engine.TierStats `json:"tiers"`
		Service Stats              `json:"service"`
	}{
		Engine:  s.eng.Stats(),
		Tiers:   s.eng.TierStats(),
		Service: s.Stats(),
	}
	body, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
