// Package scientific implements self-contained equivalents of the
// nineteen Perfect Club and SPEC CFP95 applications the paper traced
// (Tables 2 and 3). The originals are large Fortran codes we do not have;
// each kernel here reproduces the computational character that determines
// MEMO-TABLE behaviour — the paper's negative result for these suites:
//
//   - floating-point operands are continuously evolving field values, so
//     a 32-entry table thrashes (low hit ratios), while value recurrence
//     across directional sweeps and timesteps gives an unbounded table
//     substantial potential (Franklin & Sohi's register-instance
//     argument, §3.2);
//   - integer multiplications come from small index/scaling sets and hit
//     well even in small tables for many codes.
//
// Every kernel is deterministic and runs in milliseconds.
package scientific

import (
	"fmt"
	"math/rand"

	"memotable/internal/probe"
)

// Kernel is one scientific application equivalent.
type Kernel struct {
	Name  string
	Desc  string
	Suite string // "Perfect" or "SPEC CFP95"
	// Run executes the kernel, emitting dynamic operations through p.
	Run func(p *probe.Probe)
}

// Perfect returns the nine Perfect Benchmark equivalents (Table 2 order).
func Perfect() []Kernel {
	return []Kernel{
		{"ADM", "Air pollution, fluid dynamics", "Perfect", ADM},
		{"QCD", "Lattice gauge, quantum chromodynamics", "Perfect", QCD},
		{"MDG", "Liquid water simulation, molecular dynamics", "Perfect", MDG},
		{"TRACK", "Missile tracking, signal processing", "Perfect", TRACK},
		{"OCEAN", "Ocean simulation, 2-D fluid dynamics", "Perfect", OCEAN},
		{"ARC2D", "Supersonic reentry, 2-D fluid dynamics", "Perfect", ARC2D},
		{"FLO52", "Transonic flow, 2-D fluid dynamics", "Perfect", FLO52},
		{"TRFD", "2-electron transform integrals, molecular dynamics", "Perfect", TRFD},
		{"SPEC77", "Weather simulation, fluid dynamics", "Perfect", SPEC77},
	}
}

// SpecCFP95 returns the ten SPEC CFP95 equivalents (Table 3 order).
func SpecCFP95() []Kernel {
	return []Kernel{
		{"tomcatv", "Vectorized mesh generation", "SPEC CFP95", Tomcatv},
		{"swim", "Shallow water equations", "SPEC CFP95", Swim},
		{"su2cor", "Monte-Carlo method", "SPEC CFP95", Su2cor},
		{"hydro2d", "Navier Stokes equations", "SPEC CFP95", Hydro2d},
		{"mgrid", "3d potential field", "SPEC CFP95", Mgrid},
		{"applu", "Partial differential equations", "SPEC CFP95", Applu},
		{"turb3d", "Turbulence modeling", "SPEC CFP95", Turb3d},
		{"apsi", "Weather prediction", "SPEC CFP95", Apsi},
		{"fpppp", "Gaussian series of quantum chemistry", "SPEC CFP95", Fpppp},
		{"wave5", "Maxwell's equation", "SPEC CFP95", Wave5},
	}
}

// All returns both suites.
func All() []Kernel { return append(Perfect(), SpecCFP95()...) }

// Lookup returns the named kernel.
func Lookup(name string) (Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("scientific: unknown kernel %q", name)
}

// --- shared helpers -------------------------------------------------------

// field allocates an initialized 2-D grid with deterministic contents.
func field(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	f := make([]float64, n*n)
	for i := range f {
		f[i] = rng.Float64()*2 - 1
	}
	return f
}

// overhead emits inner-loop bookkeeping.
func overhead(p *probe.Probe, addr uint64) {
	p.IAlu()
	p.Load(addr)
	p.Branch()
}
