package scientific

import (
	"math/rand"

	"memotable/internal/probe"
)

// Tomcatv — vectorized mesh generation: coordinate relaxation with
// residual-driven corrections. Mesh coordinates drift continuously (fmul
// .01 at 32 entries) while grid index products recur each iteration
// (imul .14 at 32, .99 unbounded).
func Tomcatv(p *probe.Probe) {
	const n, iters = 40, 6
	x := field(n, 11)
	y := field(n, 12)
	base := uint64(0x7100_0000)
	for it := 0; it < iters; it++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				xe := p.FSub(x[idx+1], x[idx-1])
				ye := p.FSub(y[idx+n], y[idx-n])
				jac := p.FSub(p.FMul(xe, xe), p.FMul(ye, ye))
				x[idx] = p.FAdd(x[idx], p.FMul(0.01, jac))
				y[idx] = p.FSub(y[idx], p.FMul(0.01, jac))
				p.IMul(int64(i), int64(j)) // mesh index product
			}
		}
		p.FDiv(x[n+1], p.FAdd(2, y[n+1])) // convergence norm
	}
}

// Swim — shallow water equations: leapfrog over u/v/h fields. Static
// bathymetry/Coriolis products recur every step (fmul .16 at 32, .93
// unbounded; fdiv 0 at 32, .74 unbounded); no integer multiplications,
// as Table 6 marks.
func Swim(p *probe.Probe) {
	const n, steps = 40, 6
	h := field(n, 13)
	u := field(n, 14)
	depth := field(n, 15) // static bathymetry
	base := uint64(0x7200_0000)
	for s := 0; s < steps; s++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				// Static-by-static products: identical every step.
				flux := p.FMul(depth[idx], depth[idx+1])
				grad := p.FSub(h[idx+1], h[idx-1])
				u[idx] = p.FAdd(u[idx], p.FMul(0.001, p.FAdd(flux, grad)))
				h[idx] = p.FSub(h[idx], p.FMul(0.001, u[idx]))
			}
		}
		// Potential-vorticity normalization against static depth:
		// recurs exactly each step.
		for i := n; i < 2*n; i++ {
			p.FDiv(depth[i], p.FAdd(4, depth[i+n]))
		}
	}
}

// Su2cor — quark-gluon Monte-Carlo: integer lattice site enumeration with
// random accept/reject. Only integer multiplications appear (Table 6
// marks fmul and fdiv absent); site-pair products recur every sweep
// (imul .26 at 32, .99 unbounded).
func Su2cor(p *probe.Probe) {
	const n, sweeps = 32, 6
	rng := rand.New(rand.NewSource(16))
	spin := make([]int64, n*n)
	for i := range spin {
		spin[i] = int64(rng.Intn(3)) - 1
	}
	base := uint64(0x7300_0000)
	for s := 0; s < sweeps; s++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				p.IMul(int64(i), int64(j)) // site pairing, recurs per sweep
				nb := spin[(idx+1)%(n*n)] + spin[(idx+n)%(n*n)]
				e := p.IMul(spin[idx], nb)
				p.Branch()
				if e < 0 || rng.Intn(4) == 0 {
					spin[idx] = -spin[idx]
				}
			}
		}
	}
}

// Hydro2d — Navier-Stokes with table-driven coefficients: state values
// are limited onto a coarse quantization grid before every product, so
// operand pairs come from a small set — the standout SPEC row with high
// hit ratios even at 32 entries (fmul .75, fdiv .78).
func Hydro2d(p *probe.Probe) {
	const n, steps = 40, 6
	rho := field(n, 17)
	base := uint64(0x7400_0000)
	quant := func(v float64) float64 { return float64(int(v*8)) / 8 }
	for s := 0; s < steps; s++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				a := quant(rho[idx])
				b := quant(rho[idx+1])
				flux := p.FMul(a, b)
				pressure := p.FDiv(p.FAdd(1, a), p.FAdd(2, b))
				rho[idx] = p.FAdd(rho[idx],
					p.FMul(0.004, p.FSub(flux, pressure)))
				p.Branch()
				if rho[idx] > 4 || rho[idx] < -4 {
					rho[idx] = quant(rho[idx] / 4)
				}
			}
		}
	}
}

// Mgrid — 3-D multigrid potential solver (modelled on a 2-D hierarchy):
// stride products from a tiny level set hit strongly (imul .83) while
// smoothing products track evolving residuals (fmul .00/.01); no
// divisions, as Table 6 marks.
func Mgrid(p *probe.Probe) {
	const n, cycles = 32, 5
	u := field(n, 18)
	base := uint64(0x7500_0000)
	for c := 0; c < cycles; c++ {
		for stride := 1; stride <= 8; stride *= 2 {
			for j := stride; j < n-stride; j += stride {
				for i := stride; i < n-stride; i += stride {
					idx := j*n + i
					overhead(p, base+uint64(idx)*8)
					s := p.FAdd(p.FAdd(u[idx-stride], u[idx+stride]),
						p.FAdd(u[idx-stride*n], u[idx+stride*n]))
					u[idx] = p.FAdd(p.FMul(0.5, u[idx]), p.FMul(0.125, s))
					p.IMul(int64(stride), int64(stride)) // level area factor
				}
			}
		}
	}
}

// Applu — implicit PDE solver: SSOR sweeps with block index products from
// small sets (imul .97) and pivot normalizations on slowly drifting
// diagonal terms (fmul .25, fdiv .25).
func Applu(p *probe.Probe) {
	const n, steps = 36, 6
	u := field(n, 19)
	base := uint64(0x7600_0000)
	for s := 0; s < steps; s++ {
		for j := 1; j < n-1; j++ {
			for i := 1; i < n-1; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				diag := p.FAdd(4, float64(int(u[idx]*4))/4)
				res := p.FSub(p.FAdd(u[idx-1], u[idx+1]), p.FMul(2, u[idx]))
				// Fixed-point residual: the pivot division's operand pairs
				// recur as the relaxation settles.
				resQ := float64(int(res*8)) / 8
				corr := p.FDiv(resQ, diag)
				u[idx] = p.FAdd(u[idx], p.FMul(0.9, corr))
				p.IMul(int64(i&3), int64(j&3)) // 4x4 block offset
			}
		}
	}
}

// Turb3d — homogeneous turbulence: spectral shell products where
// wavenumber-shell energies are quantized (fmul .16) and shell index
// products repeat from a modest set (imul .80); rare rescaling divisions
// (fdiv .03).
func Turb3d(p *probe.Probe) {
	const n, steps = 36, 6
	e := field(n, 20)
	base := uint64(0x7700_0000)
	for s := 0; s < steps; s++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				shell := float64(int(e[idx]*16)) / 16
				transfer := p.FMul(shell, 0.05)
				e[idx] = p.FAdd(e[idx], p.FSub(transfer, p.FMul(0.04, e[idx])))
				p.IMul(int64(i&15), int64(j&15)) // shell pair index
				p.Branch()
				if e[idx] > 0.9 || e[idx] < -0.9 {
					e[idx] = p.FDiv(e[idx], float64(2+(idx&3)))
				}
			}
		}
	}
}

// Apsi — mesoscale weather prediction: vertical column physics with
// lookup-table lapse rates (quantized products, fmul .16; fdiv .13) and
// tiny level-index products (imul .95).
func Apsi(p *probe.Probe) {
	const cols, levels, steps = 48, 24, 6
	t := field(cols, 21)
	base := uint64(0x7800_0000)
	for s := 0; s < steps; s++ {
		for c := 0; c < cols; c++ {
			for l := 1; l < levels; l++ {
				idx := c*levels + l
				overhead(p, base+uint64(idx)*8)
				lapse := float64(int(t[idx%len(t)]*64)) / 64
				adj := p.FMul(lapse, 0.02)
				// Radiative relaxation bounds the column state, so lapse
				// values recur across timesteps.
				t[idx%len(t)] = p.FAdd(p.FMul(0.98, t[idx%len(t)]), adj)
				p.IMul(int64(l&7), int64(c&3)) // level-column offset
				p.Branch()
				if l%8 == 0 {
					// Stability ratio on half-degree lapse bins: recurs
					// across timesteps once columns settle.
					p.FDiv(float64(int(lapse*2))/2, float64(1+l%4))
				}
			}
		}
	}
}

// Fpppp — Gaussian-series electron integrals: contraction products over
// a moderate set of precomputed exponent pairs (fmul .29 at 32, .55
// unbounded; imul .53; fdiv .15 on small normalization sets).
func Fpppp(p *probe.Probe) {
	const shells, passes = 20, 5
	expo := make([]float64, shells)
	for i := range expo {
		expo[i] = float64(1+i%7) * 0.5 // small exponent set
	}
	acc := field(shells, 22)
	base := uint64(0x7900_0000)
	for pass := 0; pass < passes; pass++ {
		for i := 0; i < shells; i++ {
			for j := 0; j < shells; j++ {
				for k := 0; k < shells; k += 4 {
					idx := (i*shells + j) % (shells * shells)
					overhead(p, base+uint64(idx)*8)
					prim := p.FMul(expo[i], expo[j])
					norm := p.FDiv(prim, float64(1+(i+j+k)%5))
					acc[idx] = p.FAdd(acc[idx], p.FMul(norm, 0.001))
					p.IMul(int64(i), int64(j)) // shell pair index
				}
			}
		}
	}
}

// Wave5 — particle-in-cell Maxwell solver: field updates on continuously
// moving particle positions (fmul .05, fdiv .02); no integer
// multiplications, as Table 6 marks.
func Wave5(p *probe.Probe) {
	const particles, steps = 400, 6
	rng := rand.New(rand.NewSource(23))
	pos := make([]float64, particles)
	vel := make([]float64, particles)
	for i := range pos {
		pos[i] = rng.Float64() * 64
	}
	ef := field(24, 24)
	base := uint64(0x7A00_0000)
	for s := 0; s < steps; s++ {
		for i := 0; i < particles; i++ {
			overhead(p, base+uint64(i)*8)
			cell := int(pos[i]) % len(ef)
			if cell < 0 {
				cell = 0
			}
			force := p.FMul(ef[cell], pos[i]) // continuous positions
			vel[i] = p.FAdd(vel[i], p.FMul(0.001, force))
			pos[i] = p.FAdd(pos[i], vel[i])
			if i%16 == 0 {
				// Charge-density normalization on continuously moving
				// positions: present but with negligible reuse.
				p.FDiv(pos[i], p.FAdd(2, ef[cell]))
			}
			p.Branch()
			if pos[i] < 0 || pos[i] >= 64 {
				pos[i] = p.FDiv(pos[i], 2)
				if pos[i] < 0 {
					pos[i] = -pos[i]
				}
			}
		}
	}
}
