package scientific

import (
	"math"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/probe"
	"memotable/internal/trace"
)

func TestRegistries(t *testing.T) {
	if len(Perfect()) != 9 {
		t.Fatalf("Perfect has %d kernels, want 9", len(Perfect()))
	}
	if len(SpecCFP95()) != 10 {
		t.Fatalf("SPEC has %d kernels, want 10", len(SpecCFP95()))
	}
	if len(All()) != 19 {
		t.Fatal("All() size")
	}
	k, err := Lookup("hydro2d")
	if err != nil || k.Suite != "SPEC CFP95" {
		t.Fatalf("Lookup(hydro2d) = %+v, %v", k, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup accepted unknown kernel")
	}
	seen := map[string]bool{}
	for _, k := range All() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %s", k.Name)
		}
		seen[k.Name] = true
		if k.Desc == "" || k.Run == nil {
			t.Errorf("kernel %s incomplete", k.Name)
		}
	}
}

func TestKernelsRunAndEmit(t *testing.T) {
	for _, k := range All() {
		var c trace.Counter
		k.Run(probe.New(&c))
		if c.Total() == 0 {
			t.Errorf("%s emitted nothing", k.Name)
		}
		if c.Of(isa.OpLoad) == 0 {
			t.Errorf("%s emitted no loads", k.Name)
		}
	}
}

// TestOpPresence checks the '-' pattern of Tables 5 and 6.
func TestOpPresence(t *testing.T) {
	profiles := map[string]struct{ imul, fmul, fdiv bool }{
		"ADM":     {true, true, true},
		"QCD":     {true, true, false},
		"MDG":     {false, true, true},
		"TRACK":   {true, true, true},
		"OCEAN":   {true, true, true},
		"ARC2D":   {true, true, true},
		"FLO52":   {true, true, true},
		"TRFD":    {true, true, true},
		"SPEC77":  {true, true, true},
		"tomcatv": {true, true, true},
		"swim":    {false, true, true},
		"su2cor":  {true, false, false},
		"hydro2d": {false, true, true},
		"mgrid":   {true, true, false},
		"applu":   {true, true, true},
		"turb3d":  {true, true, true},
		"apsi":    {true, true, true},
		"fpppp":   {true, true, true},
		"wave5":   {false, true, true},
	}
	for _, k := range All() {
		want, ok := profiles[k.Name]
		if !ok {
			t.Errorf("no profile for %s", k.Name)
			continue
		}
		var c trace.Counter
		k.Run(probe.New(&c))
		if got := c.Of(isa.OpIMul) > 0; got != want.imul {
			t.Errorf("%s: imul present=%v want %v", k.Name, got, want.imul)
		}
		if got := c.Of(isa.OpFMul) > 0; got != want.fmul {
			t.Errorf("%s: fmul present=%v want %v", k.Name, got, want.fmul)
		}
		if got := c.Of(isa.OpFDiv) > 0; got != want.fdiv {
			t.Errorf("%s: fdiv present=%v want %v", k.Name, got, want.fdiv)
		}
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, name := range []string{"QCD", "hydro2d", "TRFD"} {
		k, _ := Lookup(name)
		var a, b trace.Recorder
		k.Run(probe.New(&a))
		k.Run(probe.New(&b))
		if len(a.Events) != len(b.Events) {
			t.Fatalf("%s: event counts differ", name)
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("%s: event %d differs", name, i)
			}
		}
	}
}

func TestKernelsStayFinite(t *testing.T) {
	// No kernel's instrumented arithmetic may blow up to NaN/Inf operands:
	// that would mean the numerical model diverged.
	for _, k := range All() {
		bad := 0
		k.Run(probe.New(trace.SinkFunc(func(ev trace.Event) {
			switch ev.Op {
			case isa.OpFMul, isa.OpFDiv, isa.OpFAdd:
				a := math.Float64frombits(ev.A)
				b := math.Float64frombits(ev.B)
				if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
					bad++
				}
			}
		})))
		if bad > 0 {
			t.Errorf("%s produced %d non-finite fp operands", k.Name, bad)
		}
	}
}

func TestFieldDeterministicAndSized(t *testing.T) {
	a := field(8, 3)
	b := field(8, 3)
	if len(a) != 64 {
		t.Fatalf("field size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("field not deterministic")
		}
		if a[i] < -1 || a[i] > 1 {
			t.Fatal("field out of range")
		}
	}
}
