package scientific

import (
	"math"
	"math/rand"

	"memotable/internal/probe"
)

// The kernels mix three operand-reuse regimes, chosen per application to
// match its Table 5 row:
//
//	(a) products over small quantized sets     -> hits even at 32 entries;
//	(b) products against static coefficient
//	    arrays, recurring every timestep       -> misses at 32, hits in an
//	                                              unbounded table;
//	(c) products of freshly evolving values    -> misses everywhere.

// ADM — air pollution transport: directionally split advection–diffusion.
// Both flux passes read the same concentration field (regime b); report
// binning multiplies tiny index sets (regime a, imul ~.98).
func ADM(p *probe.Probe) {
	const n, steps = 48, 6
	u := field(n, 1)
	emis := field(n, 10) // static emission inventory
	tend := make([]float64, n*n)
	base := uint64(0x6100_0000)
	const cd, ca = 0.18, 0.05
	for s := 0; s < steps; s++ {
		for i := range tend {
			tend[i] = 0
		}
		for pass := 0; pass < 2; pass++ {
			for j := 1; j < n-1; j++ {
				for i := 1; i < n-1; i++ {
					idx := j*n + i
					overhead(p, base+uint64(idx)*8)
					l, r := idx-1, idx+1
					if pass == 1 {
						l, r = idx-n, idx+n
					}
					diff := p.FMul(cd, p.FAdd(u[l], u[r]))
					adv := p.FMul(ca, u[idx])
					tend[idx] = p.FAdd(tend[idx], p.FSub(diff, adv))
					p.IMul(int64(i&3), int64(j&7)) // emission bin index
				}
			}
		}
		for idx := range u {
			p.Store(base + uint64(idx)*8)
			u[idx] = p.FAdd(u[idx], p.FMul(0.25, tend[idx]))
			if u[idx] > 10 || u[idx] < -10 || math.IsNaN(u[idx]) {
				u[idx] = 0
			}
		}
		// Deposition scaling: per-row divisions of the static emission
		// inventory by the static terrain roughness — identical operand
		// pairs every timestep (unbounded-table potential), but far more
		// rows than a 32-entry table holds.
		for j := 1; j < n-1; j++ {
			p.FDiv(emis[j], p.FAdd(4, emis[j+n]))
		}
	}
}

// QCD — lattice gauge Monte-Carlo: link updates multiply freshly drawn
// random matrix elements (regime c): near-zero reuse at every size,
// matching Table 5's all-zeros row.
func QCD(p *probe.Probe) {
	const n, sweeps = 24, 4
	rng := rand.New(rand.NewSource(2))
	link := field(n, 2)
	base := uint64(0x6200_0000)
	for s := 0; s < sweeps; s++ {
		for i := 0; i < n*n; i++ {
			overhead(p, base+uint64(i)*8)
			prop := rng.Float64()*2 - 1
			stap := rng.Float64()*2 - 1
			act := p.FAdd(p.FMul(link[i], prop), p.FMul(prop, stap))
			p.Branch()
			if act > 0 {
				link[i] = p.FMul(link[i], p.FAdd(1, p.FMul(0.1, prop)))
			}
			p.IMul(int64(rng.Intn(1<<20)), int64(rng.Intn(1<<20))) // RNG step
		}
	}
}

// MDG — molecular dynamics of liquid water: pairwise distances between
// continuously drifting particle coordinates (regime c); no integer
// multiplications, as Table 5 marks.
func MDG(p *probe.Probe) {
	const particles, steps = 56, 5
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, particles)
	y := make([]float64, particles)
	vx := make([]float64, particles)
	vy := make([]float64, particles)
	for i := range x {
		x[i], y[i] = rng.Float64()*10, rng.Float64()*10
	}
	base := uint64(0x6300_0000)
	for s := 0; s < steps; s++ {
		for i := 0; i < particles; i++ {
			for j := i + 1; j < particles; j++ {
				overhead(p, base+uint64(i*particles+j)*8)
				dx := p.FSub(x[i], x[j])
				dy := p.FSub(y[i], y[j])
				r2 := p.FAdd(p.FMul(dx, dx), p.FMul(dy, dy))
				p.Branch()
				if r2 < 4 && r2 > 1e-9 {
					f := p.FDiv(1, r2) // Lennard-Jones-style kernel
					vx[i] = p.FAdd(vx[i], p.FMul(f, dx))
					vy[i] = p.FAdd(vy[i], p.FMul(f, dy))
				}
			}
		}
		for i := 0; i < particles; i++ {
			p.Store(base + uint64(i)*8)
			x[i] = p.FAdd(x[i], p.FMul(0.001, vx[i]))
			y[i] = p.FAdd(y[i], p.FMul(0.001, vy[i]))
		}
	}
}

// TRACK — missile tracking: an alpha-beta filter over quantized sensor
// readings. The gain products draw from a small set (some 32-entry fmul
// reuse, .17) and frame/channel index products are tiny sets (imul .98);
// innovation normalizations recur per sensor across frames (fdiv rises
// with table size).
func TRACK(p *probe.Probe) {
	const sensors, frames = 24, 40
	rng := rand.New(rand.NewSource(4))
	pos := make([]float64, sensors)
	vel := make([]float64, sensors)
	noise := make([]float64, sensors) // static per-sensor variance
	for i := range noise {
		noise[i] = 1 + float64(rng.Intn(8))
	}
	base := uint64(0x6400_0000)
	for f := 0; f < frames; f++ {
		for sNo := 0; sNo < sensors; sNo++ {
			overhead(p, base+uint64(sNo)*8)
			// Quantized radar return.
			meas := float64(rng.Intn(64))
			pred := p.FAdd(pos[sNo], vel[sNo])
			innov := p.FSub(meas, pred)
			// Gains are constants: products repeat on quantized innovations.
			qi := float64(int(innov))
			pos[sNo] = p.FAdd(pred, p.FMul(0.85, qi))
			vel[sNo] = p.FAdd(vel[sNo], p.FMul(0.05, qi))
			// Normalized innovation against static sensor variance.
			p.FDiv(qi, noise[sNo])
			p.IMul(int64(sNo&7), int64(f&3)) // track-file index
			p.Store(base + uint64(sNo)*8)
		}
	}
}

// OCEAN — 2-D ocean circulation: stream-function relaxation where both
// red and black half-sweeps read the same field (regime b for fp), and
// spectral index products span the full i×j range but recur identically
// every step (imul .15 at 32 entries vs .99 unbounded).
func OCEAN(p *probe.Probe) {
	const n, steps = 40, 6
	u := field(n, 5)
	cor := field(n, 55) // static Coriolis/metric array
	base := uint64(0x6500_0000)
	for s := 0; s < steps; s++ {
		for color := 0; color < 2; color++ {
			for j := 1; j < n-1; j++ {
				for i := 1 + (j+color)%2; i < n-1; i += 2 {
					idx := j*n + i
					overhead(p, base+uint64(idx)*8)
					lap := p.FAdd(p.FAdd(u[idx-1], u[idx+1]), p.FAdd(u[idx-n], u[idx+n]))
					// Static metric products recur every sweep.
					beta := p.FMul(cor[idx], 0.01)
					u[idx] = p.FAdd(p.FMul(0.25, lap), beta)
					p.IMul(int64(i), int64(j)) // wavenumber product
				}
			}
		}
		// Boundary normalization: a division per rim point by the static
		// metric — the unbounded-table fdiv potential (.99).
		for i := 0; i < n; i++ {
			p.FDiv(u[i], p.FAdd(2, cor[i]))
		}
	}
}

// ARC2D — implicit 2-D Euler: tridiagonal (Thomas) solves along both
// directions. Pivot reciprocals drift slowly (fdiv .23 at 32); index
// scaling multiplies small sets (imul .94).
func ARC2D(p *probe.Probe) {
	const n, steps = 40, 5
	u := field(n, 6)
	diag := field(n, 66)
	base := uint64(0x6600_0000)
	for s := 0; s < steps; s++ {
		for j := 0; j < n; j++ {
			// Forward elimination along row j.
			carry := 1.0
			for i := 1; i < n; i++ {
				idx := j*n + i
				overhead(p, base+uint64(idx)*8)
				piv := p.FAdd(2, p.FMul(0.125, float64(int(diag[idx]*8))))
				m := p.FDiv(carry, piv)
				u[idx] = p.FSub(u[idx], p.FMul(m, u[idx-1]))
				carry = p.FAdd(1, p.FMul(0.01, u[idx]))
				p.IMul(int64(i&7), int64(j&3)) // block offset
			}
		}
	}
}

// FLO52 — transonic flow multigrid: restriction/prolongation between
// levels on rapidly evolving residuals. Low reuse for fp at 32 entries
// (fmul .02); integer level/index products hit well (imul .86).
func FLO52(p *probe.Probe) {
	const n, cycles = 32, 5
	u := field(n, 7)
	base := uint64(0x6700_0000)
	for c := 0; c < cycles; c++ {
		for level := n; level >= 8; level /= 2 {
			step := n / level
			for j := step; j < n-step; j += step {
				for i := step; i < n-step; i += step {
					idx := j*n + i
					overhead(p, base+uint64(idx)*8)
					res := p.FSub(u[idx], p.FMul(0.25,
						p.FAdd(p.FAdd(u[idx-step], u[idx+step]),
							p.FAdd(u[idx-step*n], u[idx+step*n]))))
					u[idx] = p.FSub(u[idx], p.FMul(0.6, res))
					p.IMul(int64(step), int64(j&15)) // level stride product
				}
			}
		}
		p.FDiv(u[n+1], p.FAdd(2, u[n+2])) // residual norm scaling
	}
}

// TRFD — two-electron integral transformation: triangular index pair
// enumeration with integral scaling by small integer normalizations.
// The (value, smallInt) divisions repeat heavily even at 32 entries
// (fdiv .85), the standout fdiv row of Table 5.
func TRFD(p *probe.Probe) {
	const nb, passes = 24, 4
	integ := field(nb, 8)
	base := uint64(0x6800_0000)
	for pass := 0; pass < passes; pass++ {
		for i := 0; i < nb; i++ {
			for j := 0; j <= i; j++ {
				overhead(p, base+uint64(i*nb+j)*8)
				ij := p.IMul(int64(i), int64(i+1))/2 + int64(j)
				_ = ij
				// Shell-static integral prefactors normalized by small-set
				// degeneracy factors: within a row the divider sees the
				// same handful of operand pairs over and over (the .85
				// fdiv row of Table 5).
				q := float64(1 + i%12)
				deg := float64(1 + (i+j)%6)
				v := p.FDiv(q, deg)
				integ[(i*nb+j)%(nb*nb)] = p.FAdd(integ[(i*nb+j)%(nb*nb)],
					p.FMul(0.001, v))
				p.Store(base + uint64(i*nb+j)*8)
			}
		}
	}
}

// SPEC77 — spectral weather model: Legendre-style transforms multiplying
// static basis tables by evolving spectral coefficients (fmul .28 at 32,
// .37 unbounded) with full-range wavenumber index products (imul .06 at
// 32, .97 unbounded).
func SPEC77(p *probe.Probe) {
	const waves, steps = 40, 6
	basis := field(waves, 9) // static transform table
	coef := field(waves, 99)
	base := uint64(0x6900_0000)
	for s := 0; s < steps; s++ {
		for m := 0; m < waves; m++ {
			for k := 0; k < waves; k++ {
				overhead(p, base+uint64(m*waves+k)*8)
				// Quantized basis element times evolving coefficient.
				b := float64(int(basis[m*waves/waves+k]*32)) / 32
				coef[m] = p.FAdd(coef[m], p.FMul(b, coef[k]))
				p.IMul(int64(m), int64(k)) // wavenumber pair
			}
			p.Branch()
			if coef[m] > 4 || coef[m] < -4 {
				coef[m] = p.FDiv(coef[m], 16)
			}
		}
	}
}
