// Package imaging is the image substrate for the Multi-Media workloads.
// It supplies the Image type the Khoros-equivalent applications process,
// Shannon-entropy measurement over whole images and over 16×16 / 8×8
// windows (the paper's Table 8 metrics), and synthetic generators whose
// quantized entropy is controllable — our substitute for the paper's
// photographic test images (mandrill, lenna, …), which we do not have.
// Matching an image's entropy matches the independent variable of the
// paper's Figure 2, which is what the workloads' hit ratios respond to.
package imaging

import (
	"fmt"

	"memotable/internal/stats"
)

// Kind is the pixel representation, following Table 8's "type" column.
type Kind int

// Pixel kinds.
const (
	Byte    Kind = iota // 0..255 integer-valued samples
	Integer             // wider integer-valued samples (label maps)
	Float               // continuous samples
)

// String names the kind as in Table 8.
func (k Kind) String() string {
	switch k {
	case Byte:
		return "BYTE"
	case Integer:
		return "INTEGER"
	case Float:
		return "FLOAT"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Image is a dense raster of float64 samples with one or more bands,
// stored row-major, band-interleaved. Base gives the image a synthetic
// byte address so memory operations on it exercise the cycle model's
// cache hierarchy.
type Image struct {
	W, H, Bands int
	Kind        Kind
	Base        uint64
	Pix         []float64
}

// baseStart is where every synthetic address space begins.
const baseStart uint64 = 0x10000000

// New allocates a w×h image with the given bands and kind. The image is
// detached: its Base is zero until it is placed by an AddressSpace.
// Workloads allocate through AddressSpace.New instead, so the base
// addresses a capture emits are a pure per-capture function — there is
// no process-global allocation state.
func New(w, h, bands int, kind Kind) *Image {
	if w <= 0 || h <= 0 || bands <= 0 {
		panic(fmt.Sprintf("imaging: invalid dimensions %dx%dx%d", w, h, bands))
	}
	return &Image{
		W: w, H: h, Bands: bands, Kind: kind,
		Pix: make([]float64, w*h*bands),
	}
}

// idx returns the sample index for (x, y, band).
func (im *Image) idx(x, y, b int) int {
	return (y*im.W+x)*im.Bands + b
}

// At returns the sample at (x, y) in band b.
func (im *Image) At(x, y, b int) float64 { return im.Pix[im.idx(x, y, b)] }

// Set writes the sample at (x, y) in band b.
func (im *Image) Set(x, y, b int, v float64) { im.Pix[im.idx(x, y, b)] = v }

// Addr returns the synthetic byte address of the sample, for cache
// modelling.
func (im *Image) Addr(x, y, b int) uint64 {
	return im.Base + uint64(im.idx(x, y, b))*8
}

// Clone deep-copies the image into a detached copy (Base zero); use
// AddressSpace.Clone to copy into a capture's address space.
func (im *Image) Clone() *Image {
	out := New(im.W, im.H, im.Bands, im.Kind)
	copy(out.Pix, im.Pix)
	return out
}

// Clamp bounds x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Quantize rounds every sample to one of `levels` integer levels in
// [0, levels-1], rescaling from the image's current min/max range. It is
// how Byte images are produced from continuous fields.
func (im *Image) Quantize(levels int) {
	if levels < 2 {
		panic("imaging: need at least 2 levels")
	}
	lo, hi := stats.MinMax(im.Pix)
	span := hi - lo
	if span == 0 {
		for i := range im.Pix {
			im.Pix[i] = 0
		}
		return
	}
	for i, v := range im.Pix {
		q := int((v - lo) / span * float64(levels))
		if q >= levels {
			q = levels - 1
		}
		im.Pix[i] = float64(q)
	}
}

// Histogram builds the sample-value histogram of band b.
func (im *Image) Histogram(b int) *stats.Histogram {
	h := stats.NewHistogram()
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			h.Add(im.At(x, y, b))
		}
	}
	return h
}

// Entropy returns the Shannon entropy in bits of the whole image,
// averaged across bands (Table 8's "full" column).
func (im *Image) Entropy() float64 {
	var e float64
	for b := 0; b < im.Bands; b++ {
		e += im.Histogram(b).Entropy()
	}
	return e / float64(im.Bands)
}

// WindowEntropy returns the mean entropy of non-overlapping win×win
// windows, averaged across bands: the paper's 16×16 and 8×8 columns.
// Partial edge windows are included.
func (im *Image) WindowEntropy(win int) float64 {
	if win <= 0 {
		panic("imaging: window size must be positive")
	}
	var sum float64
	var n int
	for b := 0; b < im.Bands; b++ {
		for y0 := 0; y0 < im.H; y0 += win {
			for x0 := 0; x0 < im.W; x0 += win {
				h := stats.NewHistogram()
				for y := y0; y < y0+win && y < im.H; y++ {
					for x := x0; x < x0+win && x < im.W; x++ {
						h.Add(im.At(x, y, b))
					}
				}
				sum += h.Entropy()
				n++
			}
		}
	}
	return sum / float64(n)
}

// Decimate returns the image subsampled so that neither dimension exceeds
// maxDim (picking every k-th sample). Experiment drivers use it to run the
// full workload matrix at reduced cost; subsampling preserves the value
// histogram — and therefore the entropy — up to sampling noise. The
// result is detached (Base zero); captures use AddressSpace.Decimate.
func (im *Image) Decimate(maxDim int) *Image {
	k := decimateStride(im, maxDim)
	if k == 1 {
		return im.Clone()
	}
	out := New((im.W+k-1)/k, (im.H+k-1)/k, im.Bands, im.Kind)
	fillDecimated(out, im, k)
	return out
}

// decimateStride returns the subsample stride that bounds im's geometry
// to maxDim pixels per side.
func decimateStride(im *Image, maxDim int) int {
	if maxDim <= 0 {
		panic("imaging: Decimate needs a positive bound")
	}
	k := 1
	for im.W/k > maxDim || im.H/k > maxDim {
		k++
	}
	return k
}

// fillDecimated writes every k-th sample of im into out.
func fillDecimated(out, im *Image, k int) {
	for b := 0; b < im.Bands; b++ {
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				out.Set(x, y, b, im.At(x*k, y*k, b))
			}
		}
	}
}

// MinMax returns the extreme samples of band b.
func (im *Image) MinMax(b int) (lo, hi float64) {
	lo, hi = im.At(0, 0, b), im.At(0, 0, b)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.At(x, y, b)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}
