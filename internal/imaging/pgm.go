package imaging

import (
	"bufio"
	"fmt"
	"io"
)

// PGM (portable graymap, P5) encoding for single-band byte images, so
// generated inputs can be inspected with ordinary tools.

// EncodePGM writes band b of the image as a binary PGM. Samples are
// clamped to [0, 255].
func EncodePGM(w io.Writer, im *Image, b int) error {
	if b < 0 || b >= im.Bands {
		return fmt.Errorf("imaging: band %d out of range", b)
	}
	bw := bufio.NewWriter(w)
	_, _ = fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H) // errors deferred to Flush
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			_ = bw.WriteByte(byte(Clamp(im.At(x, y, b), 0, 255)))
		}
	}
	return bw.Flush()
}

// DecodePGM reads a binary PGM into a single-band Byte image.
func DecodePGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxV int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxV); err != nil {
		return nil, fmt.Errorf("imaging: bad PGM header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imaging: unsupported magic %q", magic)
	}
	if w <= 0 || h <= 0 || maxV <= 0 || maxV > 255 {
		return nil, fmt.Errorf("imaging: bad PGM geometry %dx%d max %d", w, h, maxV)
	}
	// Single whitespace byte separates the header from raster data.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("imaging: bad PGM header: %w", err)
	}
	im := New(w, h, 1, Byte)
	buf := make([]byte, w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("imaging: truncated PGM raster: %w", err)
		}
		for x, v := range buf {
			im.Set(x, y, 0, float64(v))
		}
	}
	return im, nil
}
