package imaging

import "testing"

func TestAddressSpaceLayoutDeterministic(t *testing.T) {
	// Two spaces given the same allocation sequence must produce the same
	// layout — the property that lets captures run concurrently and still
	// emit byte-identical traces.
	layout := func() []uint64 {
		as := NewAddressSpace()
		a := as.New(32, 24, 1, Byte)
		b := as.New(32, 24, 2, Float)
		c := as.Clone(a)
		return []uint64{a.Base, b.Base, c.Base}
	}
	x, y := layout(), layout()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("allocation %d: base %#x vs %#x across identical spaces", i, x[i], y[i])
		}
	}
	if x[0] != baseStart {
		t.Fatalf("first allocation at %#x, want %#x", x[0], baseStart)
	}
}

func TestAddressSpaceAllocArithmetic(t *testing.T) {
	// Consecutive allocations are spaced by the image footprint plus the
	// 4 KiB guard gap, the layout the recorded traces depend on.
	as := NewAddressSpace()
	a := as.New(10, 7, 3, Float)
	b := as.New(1, 1, 1, Byte)
	want := a.Base + uint64(10*7*3*8+4096)
	if b.Base != want {
		t.Fatalf("second base %#x, want %#x", b.Base, want)
	}
}

func TestAddressSpaceCloneAndDecimate(t *testing.T) {
	src := Ramp(33, 17)
	as := NewAddressSpace()
	c := as.Clone(src)
	if c.Base == 0 || c.At(5, 5, 0) != src.At(5, 5, 0) {
		t.Fatal("space clone lost placement or values")
	}
	// A space decimate must match the detached Image.Decimate sample for
	// sample, differing only in placement.
	d := as.Decimate(src, 16)
	ref := src.Decimate(16)
	if d.W != ref.W || d.H != ref.H {
		t.Fatalf("decimate geometry %dx%d, want %dx%d", d.W, d.H, ref.W, ref.H)
	}
	if d.Base == 0 || ref.Base != 0 {
		t.Fatal("space/detached placement inverted")
	}
	for i := range d.Pix {
		if d.Pix[i] != ref.Pix[i] {
			t.Fatalf("decimate sample %d diverges", i)
		}
	}
	// Under the bound, Decimate degenerates to Clone (stride 1).
	whole := as.Decimate(src, 64)
	if whole.W != src.W || whole.H != src.H {
		t.Fatal("stride-1 decimate resized the image")
	}
}
