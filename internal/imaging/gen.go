package imaging

import (
	"math"
	"math/rand"
)

// Generators for synthetic test inputs. Each produces a continuous field
// whose structure mimics one family of the paper's photographic inputs;
// quantization then fixes the discrete entropy. Entropy is tuned by the
// quantization level count and by how concentrated the field's value
// distribution is.

// Plasma fills a w×h single-band Float image with diamond-square
// ("plasma") fractal terrain in [0, 1]: locally smooth with large-scale
// variation, the texture profile of natural photographs.
func Plasma(w, h int, seed int64, roughness float64) *Image {
	rng := rand.New(rand.NewSource(seed))
	// Work on a (2^k+1)² grid covering the image, then crop.
	n := 1
	for n+1 < w || n+1 < h {
		n <<= 1
	}
	g := make([][]float64, n+1)
	for i := range g {
		g[i] = make([]float64, n+1)
	}
	g[0][0], g[0][n], g[n][0], g[n][n] =
		rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()
	amp := 1.0
	for step := n; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for y := half; y < n+1; y += step {
			for x := half; x < n+1; x += step {
				avg := (g[y-half][x-half] + g[y-half][x+half] +
					g[y+half][x-half] + g[y+half][x+half]) / 4
				g[y][x] = avg + (rng.Float64()-0.5)*amp
			}
		}
		// Square step.
		for y := 0; y < n+1; y += half {
			x0 := half
			if (y/half)%2 == 1 {
				x0 = 0
			}
			for x := x0; x < n+1; x += step {
				var sum float64
				var cnt int
				if y >= half {
					sum += g[y-half][x]
					cnt++
				}
				if y+half <= n {
					sum += g[y+half][x]
					cnt++
				}
				if x >= half {
					sum += g[y][x-half]
					cnt++
				}
				if x+half <= n {
					sum += g[y][x+half]
					cnt++
				}
				g[y][x] = sum/float64(cnt) + (rng.Float64()-0.5)*amp
			}
		}
		amp *= roughness
	}
	im := New(w, h, 1, Float)
	lo, hi := math.Inf(1), math.Inf(-1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := g[y][x]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, 0, (g[y][x]-lo)/span)
		}
	}
	return im
}

// Noise fills a w×h single-band image with independent uniform samples,
// the highest-entropy field.
func Noise(w, h int, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := New(w, h, 1, Float)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	return im
}

// Blend returns a + alpha*b sample-wise (same geometry required).
func Blend(a, b *Image, alpha float64) *Image {
	if a.W != b.W || a.H != b.H || a.Bands != b.Bands {
		panic("imaging: Blend geometry mismatch")
	}
	out := a.Clone()
	for i := range out.Pix {
		out.Pix[i] += alpha * b.Pix[i]
	}
	return out
}

// GaussianBlobs renders n additive Gaussian intensity blobs at random
// positions and scales: smooth fields with concentrated histograms (lower
// entropy than plasma at equal levels).
func GaussianBlobs(w, h, n int, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	im := New(w, h, 1, Float)
	type blob struct{ cx, cy, sigma, amp float64 }
	blobs := make([]blob, n)
	for i := range blobs {
		blobs[i] = blob{
			cx:    rng.Float64() * float64(w),
			cy:    rng.Float64() * float64(h),
			sigma: (0.05 + 0.15*rng.Float64()) * float64(min(w, h)),
			amp:   0.3 + rng.Float64(),
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var v float64
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
			}
			im.Set(x, y, 0, v)
		}
	}
	return im
}

// Labels builds an Integer label map of k Voronoi regions — the shape of
// the paper's "lablabel" input (a labelled laboratory scene): very low
// windowed entropy, moderate global entropy.
func Labels(w, h, k int, seed int64) *Image {
	rng := rand.New(rand.NewSource(seed))
	type site struct{ x, y float64 }
	sites := make([]site, k)
	for i := range sites {
		sites[i] = site{rng.Float64() * float64(w), rng.Float64() * float64(h)}
	}
	im := New(w, h, 1, Integer)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			best, bd := 0, math.Inf(1)
			for i, s := range sites {
				dx, dy := float64(x)-s.x, float64(y)-s.y
				if d := dx*dx + dy*dy; d < bd {
					bd, best = d, i
				}
			}
			im.Set(x, y, 0, float64(best))
		}
	}
	return im
}

// FractalBasin renders an escape-time fractal over a mostly-uniform
// background: the profile of the paper's "fractal" input, whose entropy
// is very low (1.42 bits) because most pixels share the background value.
func FractalBasin(w, h int, seed int64) *Image {
	im := New(w, h, 1, Float)
	rng := rand.New(rand.NewSource(seed))
	cr := -0.74 + 0.02*rng.Float64()
	ci := 0.11 + 0.02*rng.Float64()
	const maxIter = 32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			zr := (float64(x)/float64(w))*3 - 1.5
			zi := (float64(y)/float64(h))*3 - 1.5
			it := 0
			for ; it < maxIter; it++ {
				zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
				if zr*zr+zi*zi > 4 {
					break
				}
			}
			v := 0.0
			if it < maxIter && it >= 2 {
				v = float64(it) / maxIter
			}
			im.Set(x, y, 0, v)
		}
	}
	return im
}

// Ramp renders a smooth diagonal gradient, useful as a near-deterministic
// elevation input for slope workloads.
func Ramp(w, h int) *Image {
	im := New(w, h, 1, Float)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, 0, float64(x+y)/float64(w+h-2))
		}
	}
	return im
}

// Multi stacks n single-band images into one n-band image (RGB inputs of
// Table 8).
func Multi(bands ...*Image) *Image {
	if len(bands) == 0 {
		panic("imaging: Multi needs at least one band")
	}
	w, h := bands[0].W, bands[0].H
	out := New(w, h, len(bands), bands[0].Kind)
	for b, im := range bands {
		if im.W != w || im.H != h || im.Bands != 1 {
			panic("imaging: Multi band geometry mismatch")
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Set(x, y, b, im.At(x, y, 0))
			}
		}
	}
	return out
}

// Gamma raises all samples (assumed in [0,1]) to the given power,
// concentrating (gamma > 1) or spreading the histogram.
func Gamma(im *Image, gamma float64) *Image {
	out := im.Clone()
	for i, v := range out.Pix {
		out.Pix[i] = math.Pow(Clamp(v, 0, 1), gamma)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
