package imaging

import (
	"bytes"
	"math"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(4, 3, 2, Byte)
	im.Set(2, 1, 1, 7)
	if im.At(2, 1, 1) != 7 {
		t.Fatal("Set/At round trip")
	}
	if im.At(0, 0, 0) != 0 {
		t.Fatal("zero init")
	}
	// Addresses are 8 bytes apart sample-to-sample; package-level images
	// are detached until an AddressSpace places them.
	if im.Addr(1, 0, 0)-im.Addr(0, 0, 1) != 8 {
		t.Fatal("address stride")
	}
	if im.Base != 0 {
		t.Fatal("detached image carries a base address")
	}
	as := NewAddressSpace()
	if other := as.New(4, 3, 2, Byte); other.Base == as.New(4, 3, 2, Byte).Base {
		t.Fatal("space images share a base address")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid geometry accepted")
		}
	}()
	New(0, 3, 1, Byte)
}

func TestCloneIsDeep(t *testing.T) {
	im := New(2, 2, 1, Float)
	im.Set(0, 0, 0, 5)
	c := im.Clone()
	c.Set(0, 0, 0, 9)
	if im.At(0, 0, 0) != 5 {
		t.Fatal("clone aliases parent")
	}
}

func TestQuantize(t *testing.T) {
	im := New(16, 1, 1, Float)
	for x := 0; x < 16; x++ {
		im.Set(x, 0, 0, float64(x)/15)
	}
	im.Quantize(4)
	lo, hi := im.MinMax(0)
	if lo != 0 || hi != 3 {
		t.Fatalf("quantized range [%g,%g]", lo, hi)
	}
	h := im.Histogram(0)
	if h.Distinct() != 4 {
		t.Fatalf("distinct = %d", h.Distinct())
	}
	// Constant image quantizes to all zeros.
	flat := New(4, 4, 1, Float)
	for i := range flat.Pix {
		flat.Pix[i] = 2.5
	}
	flat.Quantize(8)
	if _, hi := flat.MinMax(0); hi != 0 {
		t.Fatal("flat image quantization")
	}
}

func TestEntropyWorkedExample(t *testing.T) {
	// The paper's worked example: 256 evenly distributed grey levels give
	// entropy 8; window entropies of small tiles are strictly smaller
	// because most values have probability zero there.
	im := New(256, 256, 1, Byte)
	i := 0
	for y := 0; y < 256; y++ {
		for x := 0; x < 256; x++ {
			im.Set(x, y, 0, float64(i%256))
			i++
		}
	}
	if e := im.Entropy(); math.Abs(e-8) > 1e-9 {
		t.Fatalf("entropy = %g, want 8", e)
	}
	if w := im.WindowEntropy(8); w > 6.001 {
		t.Fatalf("8x8 window entropy = %g, want <= 6", w)
	}
}

func TestWindowEntropyBelowFull(t *testing.T) {
	for _, in := range Catalog() {
		full := in.Image.Entropy()
		w16 := in.Image.WindowEntropy(16)
		w8 := in.Image.WindowEntropy(8)
		if w16 > full+1e-9 || w8 > w16+1e-9 {
			t.Errorf("%s: entropies not decreasing: full %.2f w16 %.2f w8 %.2f",
				in.Name, full, w16, w8)
		}
	}
}

func TestCatalogMatchesPaperEntropies(t *testing.T) {
	for _, in := range Catalog() {
		if in.TargetEntropy == 0 {
			continue // FLOAT inputs: no paper entropy
		}
		got := in.Image.Entropy()
		if math.Abs(got-in.TargetEntropy) > 0.5 {
			t.Errorf("%s: entropy %.2f vs paper %.2f (tolerance 0.5)",
				in.Name, got, in.TargetEntropy)
		}
	}
}

func TestCatalogGeometry(t *testing.T) {
	dims := map[string][4]int{ // w, h, bands, kind
		"mandrill":  {256, 256, 1, int(Byte)},
		"Muppet1":   {256, 240, 1, int(Byte)},
		"lablabel":  {243, 486, 1, int(Integer)},
		"head":      {228, 256, 1, int(Float)},
		"lenna.rgb": {480, 512, 3, int(Byte)},
	}
	for name, want := range dims {
		in := Find(name)
		if in == nil {
			t.Errorf("missing catalog entry %s", name)
			continue
		}
		if in.Image.W != want[0] || in.Image.H != want[1] ||
			in.Image.Bands != want[2] || int(in.Image.Kind) != want[3] {
			t.Errorf("%s geometry %dx%dx%d %v", name,
				in.Image.W, in.Image.H, in.Image.Bands, in.Image.Kind)
		}
	}
	if Find("nonexistent") != nil {
		t.Error("Find invented an input")
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Find("mandrill").Image
	b := Find("mandrill").Image
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("catalog generation not deterministic")
		}
	}
}

func TestGenerators(t *testing.T) {
	p := Plasma(64, 48, 1, 0.6)
	lo, hi := p.MinMax(0)
	if lo < 0 || hi > 1 || hi-lo < 0.5 {
		t.Errorf("plasma range [%g,%g]", lo, hi)
	}
	n := Noise(32, 32, 2)
	if n.Histogram(0).Distinct() < 1000 {
		t.Error("noise insufficiently random")
	}
	l := Labels(64, 64, 5, 3)
	if d := l.Histogram(0).Distinct(); d != 5 {
		t.Errorf("labels distinct = %d", d)
	}
	r := Ramp(8, 8)
	if r.At(0, 0, 0) != 0 || r.At(7, 7, 0) != 1 {
		t.Error("ramp endpoints")
	}
	g := GaussianBlobs(32, 32, 3, 4)
	if _, hi := g.MinMax(0); hi <= 0 {
		t.Error("blobs empty")
	}
	f := FractalBasin(64, 64, 5)
	if f.Histogram(0).Distinct() < 3 {
		t.Error("fractal degenerate")
	}
}

func TestBlendAndMultiPanic(t *testing.T) {
	mustPanic(t, func() { Blend(New(2, 2, 1, Float), New(3, 2, 1, Float), 1) })
	mustPanic(t, func() { Multi() })
	mustPanic(t, func() { Multi(New(2, 2, 1, Float), New(3, 2, 1, Float)) })
	mustPanic(t, func() { New(2, 2, 1, Float).Quantize(1) })
	mustPanic(t, func() { New(2, 2, 1, Float).WindowEntropy(0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestPGMRoundTrip(t *testing.T) {
	im := New(13, 7, 1, Byte)
	for y := 0; y < 7; y++ {
		for x := 0; x < 13; x++ {
			im.Set(x, y, 0, float64((x*19+y*7)%256))
		}
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, im, 0); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 13 || got.H != 7 {
		t.Fatalf("decoded %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if im.Pix[i] != got.Pix[i] {
			t.Fatalf("pixel %d: %g vs %g", i, im.Pix[i], got.Pix[i])
		}
	}
}

func TestPGMErrors(t *testing.T) {
	if err := EncodePGM(&bytes.Buffer{}, New(2, 2, 1, Byte), 5); err == nil {
		t.Error("bad band accepted")
	}
	if _, err := DecodePGM(bytes.NewReader([]byte("P6\n2 2\n255\n"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodePGM(bytes.NewReader([]byte("P5\n2 2\n255\nX"))); err == nil {
		t.Error("truncated raster accepted")
	}
	if _, err := DecodePGM(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}
