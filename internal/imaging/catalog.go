package imaging

import "sync"

// Catalog builds the synthetic stand-ins for the paper's Table 8 input
// images. We do not have the photographic originals (mandrill, lenna, …);
// each stand-in matches its original's geometry, pixel kind, band count
// and — approximately — its measured full-image entropy, which Figure 2
// shows is the property hit ratios respond to. Generation is
// deterministic.

// Input is one named workload input.
type Input struct {
	Name string
	// Desc summarizes the original image this input stands in for.
	Desc string
	// TargetEntropy is the paper's measured full-image entropy (bits);
	// zero for FLOAT images, for which Table 8 reports none.
	TargetEntropy float64
	Image         *Image
}

var (
	catalogOnce sync.Once
	catalog     []Input
)

// Catalog returns the fourteen Table 8 inputs. Generation happens once;
// the returned images are shared, so treat them as read-only and Clone
// before modifying.
func Catalog() []Input {
	catalogOnce.Do(func() { catalog = buildCatalog() })
	return catalog
}

func buildCatalog() []Input {
	return []Input{
		{
			Name: "mandrill", Desc: "256x256 BYTE, high-detail primate photo",
			TargetEntropy: 7.34,
			Image:         photographic(256, 256, 101, 0.62, 0.22, 256),
		},
		{
			Name: "nature", Desc: "256x256 BYTE, natural scene",
			TargetEntropy: 7.38,
			Image:         photographic(256, 256, 102, 0.60, 0.25, 256),
		},
		{
			Name: "Muppet1", Desc: "240x256 BYTE, studio scene",
			TargetEntropy: 7.04,
			Image:         photographic(256, 240, 103, 0.62, 0.12, 168),
		},
		{
			Name: "guya", Desc: "128x128 BYTE, portrait",
			TargetEntropy: 6.99,
			Image:         photographic(128, 128, 104, 0.62, 0.11, 160),
		},
		{
			Name: "star", Desc: "158x158 BYTE, star field",
			TargetEntropy: 5.93,
			Image:         photographic(158, 158, 105, 0.60, 0.05, 90),
		},
		{
			Name: "chroms", Desc: "64x64 BYTE, chromosome spread",
			TargetEntropy: 4.82,
			Image:         blobsQuantized(64, 64, 12, 106, 40),
		},
		{
			Name: "airport1", Desc: "256x256 BYTE, aerial view",
			TargetEntropy: 4.47,
			Image:         gammaQuantized(256, 256, 107, 3.0, 48),
		},
		{
			Name: "lablabel", Desc: "243x486 INTEGER, labelled lab scene",
			TargetEntropy: 3.37,
			Image:         Labels(243, 486, 12, 108),
		},
		{
			Name: "fractal", Desc: "450x409 BYTE, fractal over flat background",
			TargetEntropy: 1.42,
			Image:         fractalByte(450, 409, 109),
		},
		{
			Name: "head", Desc: "228x256 FLOAT, MRI head section",
			Image: GaussianBlobs(228, 256, 24, 110),
		},
		{
			Name: "spine", Desc: "228x256 FLOAT, MRI spine section",
			Image: GaussianBlobs(228, 256, 30, 111),
		},
		{
			Name: "lenna.rgb", Desc: "480x512 BYTE x3, portrait",
			TargetEntropy: 7.75,
			Image: Multi(
				photographic(480, 512, 112, 0.62, 0.60, 256),
				photographic(480, 512, 113, 0.62, 0.60, 256),
				photographic(480, 512, 114, 0.62, 0.60, 256),
			),
		},
		{
			Name: "mandril.rgb", Desc: "480x512 BYTE x3, primate photo",
			TargetEntropy: 7.75,
			Image: Multi(
				photographic(480, 512, 115, 0.62, 0.60, 256),
				photographic(480, 512, 116, 0.62, 0.60, 256),
				photographic(480, 512, 117, 0.62, 0.60, 256),
			),
		},
		{
			Name: "lizard.rgb", Desc: "512x768 BYTE x3, reptile skin texture",
			TargetEntropy: 7.60,
			Image: Multi(
				photographic(512, 768, 118, 0.62, 0.42, 256),
				photographic(512, 768, 119, 0.62, 0.42, 256),
				photographic(512, 768, 120, 0.62, 0.42, 256),
			),
		},
	}
}

// Find returns the catalog input with the given name, or nil.
func Find(name string) *Input {
	for _, in := range Catalog() {
		if in.Name == name {
			c := in
			return &c
		}
	}
	return nil
}

// photographic blends plasma structure with pixel noise and quantizes:
// the texture/entropy profile of a photographic byte image. noise is the
// blend weight of the uniform-noise field.
func photographic(w, h int, seed int64, roughness, noise float64, levels int) *Image {
	im := Blend(Plasma(w, h, seed, roughness), Noise(w, h, seed+5000), noise)
	im.Quantize(levels)
	im.Kind = Byte
	return im
}

// blobsQuantized renders blob structure on a dark field.
func blobsQuantized(w, h, n int, seed int64, levels int) *Image {
	im := GaussianBlobs(w, h, n, seed)
	im.Quantize(levels)
	im.Kind = Byte
	return im
}

// gammaQuantized concentrates a plasma histogram before quantizing,
// lowering its entropy at a fixed level count.
func gammaQuantized(w, h int, seed int64, gamma float64, levels int) *Image {
	im := Gamma(Plasma(w, h, seed, 0.55), gamma)
	im.Quantize(levels)
	im.Kind = Byte
	return im
}

// fractalByte quantizes a fractal basin to byte levels.
func fractalByte(w, h int, seed int64) *Image {
	im := FractalBasin(w, h, seed)
	im.Quantize(256)
	im.Kind = Byte
	return im
}
