package imaging

// AddressSpace hands out synthetic base addresses for the images one
// workload run touches. Every capture builds its own space starting at
// the canonical base, so the addresses a workload emits — and therefore
// its recorded trace — are a pure function of the workload, whatever
// else the process runs concurrently. (The per-capture space replaces a
// process-global counter, which forced every capture to serialize under
// one lock so it could rewind the counter first.)
//
// An AddressSpace is not safe for concurrent use: a capture owns its
// space for the duration of the run, the way a process owns its address
// space.
type AddressSpace struct {
	next uint64
}

// NewAddressSpace returns a fresh space. Allocation starts at the same
// base for every space, which is what makes two captures of the same
// workload lay their images out identically.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: baseStart}
}

// alloc reserves room for a w×h×bands image plus a 4 KiB guard gap and
// returns its base address.
func (as *AddressSpace) alloc(w, h, bands int) uint64 {
	size := uint64(w*h*bands*8 + 4096)
	base := as.next
	as.next += size
	return base
}

// New allocates a w×h image with the given bands and kind at the next
// base address of the space.
func (as *AddressSpace) New(w, h, bands int, kind Kind) *Image {
	im := New(w, h, bands, kind)
	im.Base = as.alloc(w, h, bands)
	return im
}

// Clone copies im into a fresh allocation from the space.
func (as *AddressSpace) Clone(im *Image) *Image {
	out := as.New(im.W, im.H, im.Bands, im.Kind)
	copy(out.Pix, im.Pix)
	return out
}

// Decimate subsamples im so that neither dimension exceeds maxDim,
// allocating the result from the space — the capture-time counterpart
// of Image.Decimate. Decimating the input is a capture's first
// allocation, so every capture of the same workload sees its input at
// the same base address.
func (as *AddressSpace) Decimate(im *Image, maxDim int) *Image {
	k := decimateStride(im, maxDim)
	if k == 1 {
		return as.Clone(im)
	}
	out := as.New((im.W+k-1)/k, (im.H+k-1)/k, im.Bands, im.Kind)
	fillDecimated(out, im, k)
	return out
}
