// Package isa defines the operation classes observed by the trace
// instrumentation and the per-class latency models of the processors the
// paper studies. It is the vocabulary shared by the probe (which emits
// operations), the MEMO-TABLEs (which filter for the multi-cycle classes)
// and the cycle simulator (which charges latencies).
package isa

import "fmt"

// Op is an operation class, the granularity at which the paper's Shade
// instrumentation classified SPARC instructions.
type Op uint8

// Operation classes. The first four are the memoizable multi-cycle classes
// (FSqrt is the paper's first "future work" extension, implemented here);
// the rest exist so whole applications can be cycle-accounted.
const (
	OpIMul  Op = iota // integer multiplication
	OpFMul            // floating-point multiplication (double)
	OpFDiv            // floating-point division (double)
	OpFSqrt           // floating-point square root (double)

	OpIAlu   // single-cycle integer ALU (add, sub, logic, shift)
	OpFAdd   // floating-point add/subtract
	OpLoad   // memory load
	OpStore  // memory store
	OpBranch // control transfer
	OpNop    // annulled / no-op slots
	NumOps   // count sentinel
)

// String returns the mnemonic used throughout reports.
func (o Op) String() string {
	switch o {
	case OpIMul:
		return "imul"
	case OpFMul:
		return "fmul"
	case OpFDiv:
		return "fdiv"
	case OpFSqrt:
		return "fsqrt"
	case OpIAlu:
		return "ialu"
	case OpFAdd:
		return "fadd"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Memoizable reports whether a MEMO-TABLE may shadow this class: the
// multi-cycle arithmetic classes of §2.2.
func (o Op) Memoizable() bool {
	return o == OpIMul || o == OpFMul || o == OpFDiv || o == OpFSqrt
}

// Commutative reports whether operand order is irrelevant, in which case a
// MEMO-TABLE lookup must compare both orders (§2.2).
func (o Op) Commutative() bool {
	return o == OpIMul || o == OpFMul
}

// Unary reports whether the class takes a single operand.
func (o Op) Unary() bool { return o == OpFSqrt }

// Processor is a per-class latency model. Latencies are instruction
// latencies, as in the paper's Table 1; the cycle simulator charges them to
// an in-order machine without multiple issue, matching §3.3's method
// ("enhancements like multiple issue and pipelining aren't taken into
// consideration").
type Processor struct {
	Name string
	// Latency maps each op class to its cycle count. Loads use L1Hit as
	// their latency on an L1 hit; the memory hierarchy adds miss penalties.
	Latency [NumOps]int
	// L1Hit, L2Hit and Mem are the load latencies at each hierarchy level.
	L1Hit, L2Hit, Mem int
}

// LatencyOf returns the latency of op, defaulting to 1 for classes the
// model leaves at zero.
func (p *Processor) LatencyOf(op Op) int {
	l := p.Latency[op]
	if l <= 0 {
		return 1
	}
	return l
}

// study returns the base machine used in the paper's speedup study, with
// the multi-cycle latencies set per study point.
func study(name string, imul, fmul, fdiv, fsqrt int) Processor {
	p := Processor{
		Name:  name,
		L1Hit: 1, L2Hit: 6, Mem: 30,
	}
	p.Latency[OpIMul] = imul
	p.Latency[OpFMul] = fmul
	p.Latency[OpFDiv] = fdiv
	p.Latency[OpFSqrt] = fsqrt
	p.Latency[OpIAlu] = 1
	p.Latency[OpFAdd] = 2
	p.Latency[OpLoad] = 1
	p.Latency[OpStore] = 1
	p.Latency[OpBranch] = 1
	p.Latency[OpNop] = 1
	return p
}

// FastFP is the paper's fast study machine: fmul 3, fdiv 13 (§3.3,
// Tables 11–13 left columns).
func FastFP() Processor { return study("fast-fp (3/13)", 5, 3, 13, 17) }

// SlowFP is the paper's slow study machine: fmul 5, fdiv 39 (§3.3,
// Tables 11–13 right columns).
func SlowFP() Processor { return study("slow-fp (5/39)", 10, 5, 39, 50) }

// WithFPLatencies returns a copy of p with the fmul/fdiv latencies
// replaced; used for the 13-vs-39 and 3-vs-5 cycle sweeps.
func (p Processor) WithFPLatencies(fmul, fdiv int) Processor {
	p.Latency[OpFMul] = fmul
	p.Latency[OpFDiv] = fdiv
	return p
}

// Table1Processors reproduces the paper's Table 1: double-precision
// multiplication and division latencies of six leading microprocessors
// (1998).
func Table1Processors() []Processor {
	mk := func(name string, fmul, fdiv int) Processor {
		p := study(name, fmul+2, fmul, fdiv, fdiv+8)
		return p
	}
	return []Processor{
		mk("Pentium Pro", 3, 39),
		mk("Alpha 21164", 4, 31),
		mk("MIPS R10000", 2, 40),
		mk("PPC 604e", 5, 31),
		mk("UltraSparc-II", 3, 22),
		mk("PA 8000", 5, 31),
	}
}
