package isa

import (
	"strings"
	"testing"
)

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if seen[s] {
			t.Errorf("duplicate mnemonic %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Op(200).String(), "op(") {
		t.Error("unknown op not reported")
	}
}

func TestOpClassification(t *testing.T) {
	memoizable := map[Op]bool{OpIMul: true, OpFMul: true, OpFDiv: true, OpFSqrt: true}
	commutative := map[Op]bool{OpIMul: true, OpFMul: true}
	for op := Op(0); op < NumOps; op++ {
		if op.Memoizable() != memoizable[op] {
			t.Errorf("%v: Memoizable = %v", op, op.Memoizable())
		}
		if op.Commutative() != commutative[op] {
			t.Errorf("%v: Commutative = %v", op, op.Commutative())
		}
		if op.Unary() != (op == OpFSqrt) {
			t.Errorf("%v: Unary = %v", op, op.Unary())
		}
	}
}

func TestStudyMachines(t *testing.T) {
	fast, slow := FastFP(), SlowFP()
	if fast.Latency[OpFMul] != 3 || fast.Latency[OpFDiv] != 13 {
		t.Errorf("fast machine latencies %d/%d, want 3/13",
			fast.Latency[OpFMul], fast.Latency[OpFDiv])
	}
	if slow.Latency[OpFMul] != 5 || slow.Latency[OpFDiv] != 39 {
		t.Errorf("slow machine latencies %d/%d, want 5/39",
			slow.Latency[OpFMul], slow.Latency[OpFDiv])
	}
	for _, p := range []Processor{fast, slow} {
		if p.L1Hit <= 0 || p.L2Hit <= p.L1Hit || p.Mem <= p.L2Hit {
			t.Errorf("%s: hierarchy latencies not increasing", p.Name)
		}
		for op := Op(0); op < NumOps; op++ {
			if p.LatencyOf(op) < 1 {
				t.Errorf("%s: latency of %v < 1", p.Name, op)
			}
		}
	}
}

func TestWithFPLatencies(t *testing.T) {
	p := FastFP().WithFPLatencies(7, 21)
	if p.Latency[OpFMul] != 7 || p.Latency[OpFDiv] != 21 {
		t.Fatal("WithFPLatencies did not apply")
	}
	if FastFP().Latency[OpFMul] != 3 {
		t.Fatal("WithFPLatencies mutated the source")
	}
}

func TestTable1Processors(t *testing.T) {
	ps := Table1Processors()
	if len(ps) != 6 {
		t.Fatalf("%d processors, want 6", len(ps))
	}
	want := map[string][2]int{
		"Pentium Pro":   {3, 39},
		"Alpha 21164":   {4, 31},
		"MIPS R10000":   {2, 40},
		"PPC 604e":      {5, 31},
		"UltraSparc-II": {3, 22},
		"PA 8000":       {5, 31},
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected processor %q", p.Name)
			continue
		}
		if p.Latency[OpFMul] != w[0] || p.Latency[OpFDiv] != w[1] {
			t.Errorf("%s: %d/%d, want %d/%d", p.Name,
				p.Latency[OpFMul], p.Latency[OpFDiv], w[0], w[1])
		}
		// Division is the slow operation on every 1998 machine.
		if p.Latency[OpFDiv] <= p.Latency[OpFMul] {
			t.Errorf("%s: fdiv not slower than fmul", p.Name)
		}
	}
}

func TestLatencyOfDefaultsToOne(t *testing.T) {
	var p Processor
	if p.LatencyOf(OpFDiv) != 1 {
		t.Fatal("zero latency must default to 1")
	}
}
