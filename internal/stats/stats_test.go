package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !close(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g,%g", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(nil) did not panic")
		}
	}()
	MinMax(nil)
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !close(Variance(xs), 4) {
		t.Errorf("Variance = %g", Variance(xs))
	}
	if !close(StdDev(xs), 2) {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil)")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil)")
	}
	if !close(Median([]float64{5, 1, 3}), 3) {
		t.Error("odd median")
	}
	if !close(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median")
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !close(Correlation(xs, []float64{2, 4, 6, 8}), 1) {
		t.Error("perfect positive")
	}
	if !close(Correlation(xs, []float64{8, 6, 4, 2}), -1) {
		t.Error("perfect negative")
	}
	if Correlation(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Correlation(xs, xs[:2])
}

func TestHistogramEntropyUniform(t *testing.T) {
	// 256 evenly distributed values: entropy exactly 8 bits — the paper's
	// worked example (§3.2).
	h := NewHistogram()
	for v := 0; v < 256; v++ {
		h.Add(float64(v))
	}
	if !close(h.Entropy(), 8) {
		t.Fatalf("uniform 256-level entropy = %g, want 8", h.Entropy())
	}
	if h.Distinct() != 256 || h.Total() != 256 {
		t.Fatal("histogram accounting")
	}
}

func TestHistogramEntropyDegenerate(t *testing.T) {
	h := NewHistogram()
	if h.Entropy() != 0 {
		t.Error("empty entropy")
	}
	for i := 0; i < 100; i++ {
		h.Add(42)
	}
	if h.Entropy() != 0 {
		t.Error("single-value entropy")
	}
}

func TestEntropyBounds(t *testing.T) {
	// Property: 0 <= entropy <= log2(distinct values).
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Add(float64(v))
		}
		e := h.Entropy()
		return e >= -1e-12 && e <= math.Log2(float64(h.Distinct()))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramEntropyBitExactAcrossInsertionOrders pins that Entropy
// is a pure function of the distribution, to the last bit: float
// addition is not associative, so the summation must not follow map
// iteration order. The fleet layer depends on this — shard output is
// byte-compared against single-process output at full JSON precision.
func TestHistogramEntropyBitExactAcrossInsertionOrders(t *testing.T) {
	// A value set with ragged counts so partial sums differ by order.
	build := func(order []int) *Histogram {
		h := NewHistogram()
		for _, v := range order {
			for k := 0; k <= v%7; k++ {
				h.Add(1.0 / float64(v+1))
			}
		}
		return h
	}
	fwd := make([]int, 300)
	for i := range fwd {
		fwd[i] = i
	}
	rev := make([]int, len(fwd))
	for i := range rev {
		rev[i] = len(fwd) - 1 - i
	}
	want := build(fwd).Entropy()
	for trial := 0; trial < 50; trial++ {
		if got := build(rev).Entropy(); got != want {
			t.Fatalf("entropy depends on construction order: %.17g vs %.17g", got, want)
		}
		if got := build(fwd).Entropy(); got != want {
			t.Fatalf("entropy differs across identical rebuilds: trial %d", trial)
		}
	}
}
