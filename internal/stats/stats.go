// Package stats provides the small statistical helpers the experiment
// drivers share: summaries, histograms and correlation.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the extrema of xs; it panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Correlation returns the Pearson correlation of paired samples; it panics
// on mismatched lengths and returns 0 when either side is constant.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation length mismatch")
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts occurrences of discrete values.
type Histogram struct {
	counts map[float64]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[float64]uint64)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.counts[v]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total }

// Distinct returns the number of distinct values observed.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Entropy returns the Shannon entropy (bits) of the observed distribution:
//
//	E = -sum p_k * log2(p_k)
//
// the paper's image-entropy measure (§3.2). The summation runs in
// sorted value order, not map order: float addition is not
// associative, and randomized map iteration used to wiggle the low
// bits from run to run — harmless at the text renderer's two decimals,
// but fatal for the fleet layer, which promises full-precision JSON
// byte-identical across process splits.
func (h *Histogram) Entropy() float64 {
	if h.total == 0 {
		return 0
	}
	vals := make([]float64, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	var e float64
	n := float64(h.total)
	for _, v := range vals {
		p := float64(h.counts[v]) / n
		e -= p * math.Log2(p)
	}
	return e
}
