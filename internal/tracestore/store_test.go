package tracestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memotable/internal/faults"
	"memotable/internal/isa"
	"memotable/internal/trace"
)

// testTrace encodes n synthetic events into a valid v2 byte stream.
func testTrace(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterV2(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Emit(trace.Event{Op: isa.OpFMul, A: uint64(i), B: uint64(i * 3)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := testTrace(t, 100)
	if _, _, err := s.Get("mm|vdiff|mandrill|32"); !errors.Is(err, ErrMiss) {
		t.Fatalf("empty store Get = %v, want ErrMiss", err)
	}
	if err := s.Put("mm|vdiff|mandrill|32", data); err != nil {
		t.Fatal(err)
	}
	got, events, err := s.Get("mm|vdiff|mandrill|32")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stored bytes differ from put bytes")
	}
	if events != 100 {
		t.Fatalf("event count %d, want 100", events)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	// Different fingerprints must not collide.
	if _, _, err := s.Get("mm|vdiff|mandrill|64"); !errors.Is(err, ErrMiss) {
		t.Fatal("different fingerprint served the same entry")
	}
}

func TestStorePutFile(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := testTrace(t, 50)
	src := filepath.Join(t.TempDir(), "spill.mtrc")
	if err := os.WriteFile(src, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFile("sci|vpenta", src); err != nil {
		t.Fatal(err)
	}
	got, events, err := s.Get("sci|vpenta")
	if err != nil || !bytes.Equal(got, data) || events != 50 {
		t.Fatalf("PutFile round trip: %v, %d events", err, events)
	}
	if err := s.PutFile("sci|nope", filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("PutFile accepted a missing source")
	}
}

func TestStoreCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fp", testTrace(t, 64)); err != nil {
		t.Fatal(err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "t-*.mtrc"))
	if len(entries) != 1 {
		t.Fatalf("store holds %d entries, want 1", len(entries))
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("fp"); !errors.Is(err, ErrMiss) {
		t.Fatalf("corrupt entry Get = %v, want ErrMiss", err)
	}
	// A fresh put heals the entry in place.
	if err := s.Put("fp", testTrace(t, 64)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("fp"); err != nil {
		t.Fatalf("healed entry still missing: %v", err)
	}
}

func TestStoreKeyProperties(t *testing.T) {
	k := Key("mm|vdiff|mandrill|32")
	if len(k) != 32 || strings.ToLower(k) != k {
		t.Fatalf("key %q not 32 lowercase hex chars", k)
	}
	if Key("a") == Key("b") {
		t.Fatal("distinct fingerprints share a key")
	}
	if Key("a") != Key("a") {
		t.Fatal("key not deterministic")
	}
}

func TestOpenSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", testTrace(t, 8)); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "t-deadbeef.mtrc"+tempSuffix)
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan temp file survived Open")
	}
	if _, _, err := s.Get("keep"); err != nil {
		t.Fatal("sealed entry swept alongside orphans")
	}
}

func TestStoreFaultPoints(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := testTrace(t, 8)
	if err := s.Put("fp", data); err != nil {
		t.Fatal(err)
	}

	activate := func(spec string) {
		t.Helper()
		plan, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faults.Activate(plan)
	}
	defer faults.Activate(nil)

	activate("seed=1;store.read:count=1")
	if _, _, err := s.Get("fp"); !errors.Is(err, ErrMiss) || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("injected read fault Get = %v, want injected miss", err)
	}
	if _, _, err := s.Get("fp"); err != nil {
		t.Fatalf("Get after exhausted fault budget: %v", err)
	}

	for i, spec := range []string{"seed=1;store.write:count=1", "seed=1;store.rename:count=1"} {
		fp := fmt.Sprintf("fp-write-%d", i)
		activate(spec)
		if err := s.Put(fp, data); !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("%s: Put = %v, want injected fault", spec, err)
		}
		// A failed put leaves no temp garbage and no entry.
		tmps, _ := filepath.Glob(filepath.Join(s.Dir(), "t-*"+tempSuffix))
		if len(tmps) != 0 {
			t.Fatalf("%s: %d temp files left behind", spec, len(tmps))
		}
		if _, _, err := s.Get(fp); !errors.Is(err, ErrMiss) {
			t.Fatalf("%s: torn put produced a readable entry", spec)
		}
		faults.Activate(nil)
		// The put succeeds once the fault clears.
		if err := s.Put(fp, data); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
}
