package tracestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/trace"
)

// FuzzStoreKey feeds hostile fingerprints through the content-address
// function and the full Put/Get path. Whatever the fingerprint — path
// separators, NULs, dots, the empty string — the key must stay a fixed
// 32-char hex token (so the entry file name is always flat and safe) and
// the entry must round-trip under exactly its own fingerprint.
func FuzzStoreKey(f *testing.F) {
	f.Add("mm|vdiff|mandrill|32")
	f.Add("sci|vpenta")
	f.Add("")
	f.Add("../../etc/passwd")
	f.Add("a\x00b")
	f.Add("t-0123456789abcdef0123456789abcdef.v2.mtrc")

	dir := f.TempDir()
	data := testTrace(f, 4)

	f.Fuzz(func(t *testing.T, fingerprint string) {
		key := Key(fingerprint)
		if len(key) != 32 {
			t.Fatalf("Key(%q) = %q: not 32 chars", fingerprint, key)
		}
		for _, c := range key {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				t.Fatalf("Key(%q) = %q: non-hex rune %q", fingerprint, key, c)
			}
		}
		if key != Key(fingerprint) {
			t.Fatalf("Key(%q) unstable", fingerprint)
		}

		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(fingerprint, data); err != nil {
			t.Fatalf("Put(%q): %v", fingerprint, err)
		}
		got, events, err := s.Get(fingerprint)
		if err != nil || !bytes.Equal(got, data) || events != 4 {
			t.Fatalf("Get(%q) after Put: %v, %d events", fingerprint, err, events)
		}
		// The entry must live directly in the store dir under its hex
		// name — a fingerprint must never steer the path elsewhere.
		if _, err := os.Stat(filepath.Join(dir, "t-"+key+".v2.mtrc")); err != nil {
			t.Fatalf("entry for %q not at its content address: %v", fingerprint, err)
		}
	})
}

// FuzzStoreEntryCorruption installs a valid entry, lets the fuzzer
// vandalize it at an arbitrary offset — bit flip or truncation — and
// checks that Get never panics and never hands back corrupt bytes: the
// result is either the original data verbatim or ErrMiss.
func FuzzStoreEntryCorruption(f *testing.F) {
	f.Add(uint32(0), byte(0x01), false)
	f.Add(uint32(4), byte(0xff), false)
	f.Add(uint32(40), byte(0x80), true)
	f.Add(uint32(7), byte(0x00), true)

	f.Fuzz(func(t *testing.T, offset uint32, flip byte, truncate bool) {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w, err := trace.NewWriterV2(&buf, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			w.Emit(trace.Event{Op: isa.Op(i) % isa.NumOps, A: uint64(i), B: uint64(i) * 7})
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		orig := buf.Bytes()
		if err := s.Put("victim", orig); err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(dir, "t-"+Key("victim")+".v2.mtrc")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pos := int(offset) % len(raw)
		if truncate {
			raw = raw[:pos]
		} else {
			raw[pos] ^= flip
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		got, events, err := s.Get("victim")
		if err != nil {
			if !errors.Is(err, ErrMiss) {
				t.Fatalf("corrupt entry error %v does not wrap ErrMiss", err)
			}
			return
		}
		// A no-op corruption (flip == 0 at a surviving offset) may still
		// verify — then the bytes must be exactly the original.
		if !bytes.Equal(got, orig) || events != 32 {
			t.Fatalf("Get returned corrupt data as valid (offset %d, flip %#x, truncate %v)",
				pos, flip, truncate)
		}
	})
}
