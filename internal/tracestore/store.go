// Package tracestore is the persistent, content-addressed home of
// settled operand traces. A settled trace is a pure function of its
// workload fingerprint and the trace-format generation — the per-capture
// address spaces in internal/imaging guarantee the first half, the
// format version pins the second — so a trace captured by one process is
// valid in every other process on the machine. The store turns that
// purity into wall-clock: an engine consults it before executing any
// workload, and a warm store makes a whole experiment matrix replay-only.
//
// On disk an entry is the raw v2 trace byte stream under the name
//
//	t-<key>.v<version>.mtrc
//
// where key is a 128-bit content address derived from the fingerprint
// and version (see Key). The version appears in both the hash and the
// file name: a build with a newer trace format simply never looks at the
// old generation's names, so stale entries are invisible — not deleted
// from under a concurrent reader still running the old build.
//
// Writes follow the temp-then-rename discipline of the engine's spill
// tier: the stream lands in a "t-*.mtrc.tmp" file that is synced, closed
// and atomically renamed to its durable name, so a reader can never
// observe a torn entry and a process death mid-put leaves only suffixed
// garbage, which Open sweeps. Concurrent writers of the same key are
// benign: captures are deterministic, so both write the same bytes and
// the last rename wins.
//
// The trace bytes are followed on disk by a 16-byte seal trailer: a
// magic, a CRC32C over the whole body, and the body length. Frame
// checksums alone cannot catch a file truncated at a frame boundary —
// the stream just looks shorter — but such a cut destroys the trailer,
// so the entry reads as a miss. Get verifies the seal and then every
// frame CRC before a byte is handed to the engine; a corrupt or
// truncated entry reads as a miss, and the put that follows the
// re-capture heals it.
package tracestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"memotable/internal/faults"
	"memotable/internal/trace"
)

// tempSuffix marks an entry that has not been sealed yet.
const tempSuffix = ".tmp"

// The seal trailer closing every entry: magic, CRC32C of the body, body
// length. Its only job is detecting truncation and damage that frame
// checksums cannot see; it is stripped before the bytes leave Get.
const (
	trailerMagic = "MTSE"
	trailerLen   = 16
)

// castagnoli is the CRC32C table behind every seal checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrMiss reports that a fingerprint has no usable entry: absent,
// torn, or failing CRC verification. All three read identically to the
// engine — capture, then Put to heal.
var ErrMiss = errors.New("tracestore: miss")

// Store is a directory of content-addressed trace entries. All methods
// are safe for concurrent use by any number of goroutines and processes.
type Store struct {
	dir string
}

// Open prepares dir as a trace store, creating it if needed and
// sweeping temp files a dead process left behind. Sealed entries are
// never touched by the sweep.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("tracestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	orphans, err := filepath.Glob(filepath.Join(dir, "t-*.mtrc"+tempSuffix))
	if err == nil {
		for _, p := range orphans {
			_ = os.Remove(p)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Key returns the content address of a workload fingerprint under the
// current trace-format generation: the first 128 bits of
// sha256("memotable-trace\x00v<version>\x00" + fingerprint), hex-encoded.
// The domain prefix keeps store keys disjoint from any other sha256 use,
// and folding the version in means a format bump re-keys every entry.
func Key(fingerprint string) string {
	h := sha256.New()
	fmt.Fprintf(h, "memotable-trace\x00v%d\x00%s", trace.VersionV2, fingerprint)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// entryPath returns the durable file name for a fingerprint.
func (s *Store) entryPath(fingerprint string) string {
	return filepath.Join(s.dir, fmt.Sprintf("t-%s.v%d.mtrc", Key(fingerprint), trace.VersionV2))
}

// Get returns the verified trace bytes for a fingerprint and their
// event count, or ErrMiss. The seal trailer and every frame checksum
// are verified before the bytes are returned, so a torn, truncated, or
// bit-flipped entry is reported as a miss rather than replayed.
func (s *Store) Get(fingerprint string) ([]byte, uint64, error) {
	if err := faults.Inject(faults.StoreRead); err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrMiss, err)
	}
	data, err := os.ReadFile(s.entryPath(fingerprint))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, ErrMiss
		}
		return nil, 0, fmt.Errorf("%w: %w", ErrMiss, err)
	}
	if len(data) < trailerLen {
		return nil, 0, fmt.Errorf("%w: entry shorter than its seal", ErrMiss)
	}
	body, seal := data[:len(data)-trailerLen], data[len(data)-trailerLen:]
	switch {
	case string(seal[:4]) != trailerMagic:
		return nil, 0, fmt.Errorf("%w: entry seal missing", ErrMiss)
	case binary.LittleEndian.Uint64(seal[8:]) != uint64(len(body)):
		return nil, 0, fmt.Errorf("%w: entry truncated", ErrMiss)
	case crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(seal[4:]):
		return nil, 0, fmt.Errorf("%w: entry seal CRC mismatch", ErrMiss)
	}
	events, err := trace.Verify(bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: entry corrupt: %w", ErrMiss, err)
	}
	return body, events, nil
}

// Put installs a trace for a fingerprint from its in-memory bytes.
func (s *Store) Put(fingerprint string, data []byte) error {
	return s.install(fingerprint, strings.NewReader(string(data)))
}

// PutFile installs a trace for a fingerprint by copying an existing
// trace file (an engine spill file, typically).
func (s *Store) PutFile(fingerprint, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	defer func() { _ = f.Close() }()
	return s.install(fingerprint, f)
}

// install streams a trace into a temp file, appends the seal trailer,
// and atomically renames the file to the fingerprint's durable name. On
// any failure the temp file is removed and the store is unchanged.
func (s *Store) install(fingerprint string, r io.Reader) error {
	f, err := os.CreateTemp(s.dir, "t-*.mtrc"+tempSuffix)
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := faults.Inject(faults.StoreWrite); err != nil {
		return fail(err)
	}
	crc := crc32.New(castagnoli)
	n, err := io.Copy(io.MultiWriter(f, crc), r)
	if err != nil {
		return fail(err)
	}
	var seal [trailerLen]byte
	copy(seal[:4], trailerMagic)
	binary.LittleEndian.PutUint32(seal[4:], crc.Sum32())
	binary.LittleEndian.PutUint64(seal[8:], uint64(n))
	if _, err := f.Write(seal[:]); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := faults.Inject(faults.StoreRename); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp, s.entryPath(fingerprint)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}

// Len counts the sealed entries of the current format generation.
func (s *Store) Len() (int, error) {
	entries, err := filepath.Glob(filepath.Join(s.dir, fmt.Sprintf("t-*.v%d.mtrc", trace.VersionV2)))
	if err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	return len(entries), nil
}

// Bytes returns the on-disk size of the current format generation's
// entries (seal trailers included). An entry that vanishes mid-walk — a
// concurrent writer renaming over it — is simply skipped.
func (s *Store) Bytes() (int64, error) {
	entries, err := filepath.Glob(filepath.Join(s.dir, fmt.Sprintf("t-*.v%d.mtrc", trace.VersionV2)))
	if err != nil {
		return 0, fmt.Errorf("tracestore: %w", err)
	}
	var total int64
	for _, p := range entries {
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total, nil
}
