package engine

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/trace"
)

// emitMixed is a synthetic workload spanning several op classes, so class
// masks and multi-class sinks are exercised.
func emitMixed(n int) CaptureFunc {
	return func(s trace.Sink) {
		for i := 0; i < n; i++ {
			op := isa.OpFMul
			switch i % 4 {
			case 1:
				op = isa.OpFDiv
			case 2:
				op = isa.OpLoad
			case 3:
				op = isa.OpIAlu
			}
			s.Emit(trace.Event{Op: op, A: uint64(i % 97), B: uint64(i % 31)})
		}
	}
}

// TestReplayAllMatchesSerialReplays pins the fused path to the reference:
// M sinks fed by one ReplayAll must each observe exactly the stream M
// separate Replay calls would deliver them.
func TestReplayAllMatchesSerialReplays(t *testing.T) {
	const events = 30000
	capture := emitMixed(events)

	serial := New(1)
	var want [3]trace.Recorder
	for i := range want {
		if _, err := serial.Replay("k", capture, &want[i]); err != nil {
			t.Fatal(err)
		}
	}

	fused := New(1)
	var got [3]trace.Recorder
	n, err := fused.ReplayAll("k", capture, []trace.Sink{&got[0], &got[1], &got[2]})
	if err != nil {
		t.Fatal(err)
	}
	if n != events {
		t.Fatalf("fused replay delivered %d events, want %d", n, events)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Events, want[i].Events) {
			t.Fatalf("sink %d: fused stream diverged from serial replay", i)
		}
	}
	if fused.Captures() != 1 || fused.Replays() != 1 {
		t.Fatalf("captures=%d replays=%d, want 1 and 1", fused.Captures(), fused.Replays())
	}
	if fused.ReplayedEvents() != events {
		t.Fatalf("replayed events %d, want %d", fused.ReplayedEvents(), events)
	}
}

// TestDecodedBlocksSharedAcrossReplays checks the decode-once property:
// the first replay builds blocks, later replays hit them, and the budget
// accounting covers them.
func TestDecodedBlocksSharedAcrossReplays(t *testing.T) {
	e := New(1)
	const events = 20000
	capture := emitMixed(events)

	var r1 trace.Recorder
	if _, err := e.Replay("k", capture, &r1); err != nil {
		t.Fatal(err)
	}
	if e.DecodedEntries() != 1 {
		t.Fatalf("decoded entries %d after first replay, want 1", e.DecodedEntries())
	}
	if got, want := e.DecodedBlockBytes(), int64(events)*bytesPerEvent; got != want {
		t.Fatalf("decoded block bytes %d, want %d", got, want)
	}
	if e.DecodeOnceHits() != 0 {
		t.Fatalf("first replay counted as a decode-once hit")
	}

	var r2 trace.Recorder
	if _, err := e.Replay("k", capture, &r2); err != nil {
		t.Fatal(err)
	}
	if e.DecodeOnceHits() != 1 {
		t.Fatalf("decode-once hits %d after second replay, want 1", e.DecodeOnceHits())
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatal("block-served replay diverged from decoding replay")
	}
}

// TestBlockTierRespectsBudget starves the budget so blocks cannot be
// cached: replays must fall back to byte decoding and stay correct.
func TestBlockTierRespectsBudget(t *testing.T) {
	e := New(1)
	e.SetCacheLimit(1)
	e.SetTraceDir(t.TempDir())
	defer e.Close()
	const events = 20000
	capture := emitMixed(events)

	var r1, r2 trace.Recorder
	if _, err := e.Replay("k", capture, &r1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Replay("k", capture, &r2); err != nil {
		t.Fatal(err)
	}
	if e.SpilledTraces() != 1 {
		t.Fatalf("spilled=%d, want 1", e.SpilledTraces())
	}
	if e.DecodedEntries() != 0 || e.DecodedBlockBytes() != 0 {
		t.Fatalf("block tier held entries despite a 1-byte budget: %d entries, %d bytes",
			e.DecodedEntries(), e.DecodedBlockBytes())
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatal("byte-path replays diverged")
	}
}

// TestBlocksDecodedFromSpillFile checks the tier is spill-aware: an entry
// whose bytes live on disk gets its blocks decoded from the file once,
// after which replays never reopen it — even if the file disappears.
func TestBlocksDecodedFromSpillFile(t *testing.T) {
	e := New(1)
	e.SetCacheLimit(1) // capture must spill
	dir := t.TempDir()
	e.SetTraceDir(dir)
	defer e.Close()
	const events = 20000
	capture := emitMixed(events)

	var r1 trace.Recorder
	if _, err := e.Replay("k", capture, &r1); err != nil {
		t.Fatal(err)
	}
	if e.SpilledTraces() != 1 {
		t.Fatalf("spilled=%d, want 1", e.SpilledTraces())
	}

	// Now give the block tier room: the next replay decodes the spill
	// file into blocks.
	e.SetCacheLimit(DefaultCacheBytes)
	var r2 trace.Recorder
	if _, err := e.Replay("k", capture, &r2); err != nil {
		t.Fatal(err)
	}
	if e.DecodedEntries() != 1 {
		t.Fatalf("decoded entries %d, want 1 (spill decode)", e.DecodedEntries())
	}

	// Remove the spill file out from under the engine: block-served
	// replays must not notice.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		os.Remove(dir + "/" + de.Name())
	}
	var r3 trace.Recorder
	if _, err := e.Replay("k", capture, &r3); err != nil {
		t.Fatalf("block-served replay reopened the removed spill file: %v", err)
	}
	if !reflect.DeepEqual(r1.Events, r3.Events) || !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatal("spill-decoded blocks diverged from the original stream")
	}
	if e.Captures() != 1 {
		t.Fatalf("captures=%d, want 1 (no re-execution)", e.Captures())
	}
}

// TestSetBlockCacheDisablesAndReleases checks the ablation toggle: off
// releases held blocks and stops caching; on resumes.
func TestSetBlockCacheDisablesAndReleases(t *testing.T) {
	e := New(1)
	const events = 10000
	capture := emitMixed(events)
	var r trace.Recorder
	if _, err := e.Replay("k", capture, &r); err != nil {
		t.Fatal(err)
	}
	if e.DecodedEntries() != 1 {
		t.Fatalf("decoded entries %d, want 1", e.DecodedEntries())
	}
	e.SetBlockCache(false)
	if e.DecodedEntries() != 0 || e.DecodedBlockBytes() != 0 {
		t.Fatal("disabling the block cache did not release blocks")
	}
	var r2 trace.Recorder
	if _, err := e.Replay("k", capture, &r2); err != nil {
		t.Fatal(err)
	}
	if e.DecodedEntries() != 0 {
		t.Fatal("disabled block cache decoded blocks anyway")
	}
	e.SetBlockCache(true)
	if _, err := e.Replay("k", capture, &r2); err != nil {
		t.Fatal(err)
	}
	if e.DecodedEntries() != 1 {
		t.Fatal("re-enabled block cache did not decode blocks")
	}
}

// maskedSink fails the test if it receives any event; ReplayAll must skip
// it entirely because its advertised mask matches no class in the trace.
type maskedSink struct {
	t *testing.T
}

func (m *maskedSink) Emit(trace.Event) { m.t.Error("masked-out sink received an event") }
func (m *maskedSink) OpMask() trace.OpMask {
	return trace.MaskOf(isa.OpFSqrt) // absent from emitMixed's stream
}

// TestOpMaskSkipsWholeBlocks checks the fused loop short-circuits sinks
// whose class mask intersects none of a block's events.
func TestOpMaskSkipsWholeBlocks(t *testing.T) {
	e := New(1)
	const events = 20000
	capture := emitMixed(events)
	var rec trace.Recorder
	skip := &maskedSink{t: t}
	// Warm the blocks first, then fuse: both sinks ride the block path.
	if _, err := e.Replay("k", capture, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Events = nil
	n, err := e.ReplayAll("k", capture, []trace.Sink{&rec, skip})
	if err != nil {
		t.Fatal(err)
	}
	if n != events || len(rec.Events) != events {
		t.Fatalf("unmasked sink got %d of %d events", len(rec.Events), events)
	}
}

// TestConcurrentFusedReplaysShareOneEntry is the -race hammer: many
// goroutines fuse-replay the same key concurrently, all sharing (or
// racing to build) one decoded-block entry. Every sink of every replay
// must observe the identical stream.
func TestConcurrentFusedReplaysShareOneEntry(t *testing.T) {
	e := New(8)
	const events = 15000
	const goroutines = 12
	capture := emitMixed(events)

	var want trace.Recorder
	if _, err := New(1).Replay("k", capture, &want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	streams := make([][2]trace.Recorder, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = e.ReplayAll("k", capture,
				[]trace.Sink{&streams[g][0], &streams[g][1]})
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for s := 0; s < 2; s++ {
			if !reflect.DeepEqual(streams[g][s].Events, want.Events) {
				t.Fatalf("goroutine %d sink %d diverged from serial stream", g, s)
			}
		}
	}
	if e.Captures() != 1 {
		t.Fatalf("captures=%d, want 1", e.Captures())
	}
	if e.DecodedEntries() != 1 {
		t.Fatalf("decoded entries %d, want 1", e.DecodedEntries())
	}
}
