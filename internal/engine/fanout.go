package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"memotable/internal/faults"
	"memotable/internal/trace"
)

// Fan-out replay. Since the decoded-block tier made fused replay
// single-decode, all M sinks of a workload have been fed serially from
// one goroutine — the last serial stage of the pipeline, and the one
// that keeps warm-store matrix wall-clock flat across worker counts.
// This file parallelizes it: the replaying goroutine (the producer)
// walks the immutable blocks and broadcasts each one through a bounded
// trace.Ring to consumer goroutines, each owning a disjoint subset of
// the sinks. Every consumer sees every block in trace order, so each
// sink still observes the exact event sequence a serial pass would
// deliver it — per-sink results are byte-identical by construction.
//
// Budget. Fan-out consumers draw from one engine-wide account of
// SetFanOut(n) tokens (defaulting to the worker-pool size), debited
// non-blocking: a replay that cannot get at least two tokens — because
// concurrently replaying cells hold them — runs serially on its own
// goroutine, exactly as before. Cell-level parallelism (Map's pool) and
// sink-level parallelism therefore share one budget instead of
// multiplying: an 8-worker engine runs at most 8 extra delivery
// goroutines across all in-flight replays, however the planner overlaps
// them, and a single busy cell can soak up the whole account while the
// pool is otherwise idle.
//
// Failure. A consumer panic (a broken measurement sink, an injected
// replay.fanout.consume fault) is recovered on the consumer, latched
// into the ring wrapping ErrSinkPanic, and surfaces from the producer's
// replay like any mid-stream delivery failure: the sinks are partially
// fed and the caller must treat the cell as failed — the same contract,
// and the same CellError classification, as the serial path.

// fanRingDepth is the block capacity of a fan-out ring: a few 8192-event
// blocks of slack absorbs scheduling jitter between producer and
// consumers without letting a fast producer run far ahead of the
// slowest sink.
const fanRingDepth = 8

// fanGroup is one consumer's worth of a fan-out: sinks co-scheduled on
// one goroutine, with their pre-snapshotted class masks.
type fanGroup struct {
	sinks []trace.Sink
	masks []trace.OpMask
}

// fanoutGroups partitions a fused replay's sinks into independently
// deliverable groups, preserving each sink's occurrence order:
//
//   - occurrences of the same comparable sink value share a group (a
//     sink subscribed through two demands is owed both deliveries, in
//     order, from one goroutine);
//   - sinks advertising the same non-empty trace.FanoutGrouper key share
//     a group (planner affinity hints);
//   - everything else gets a group of its own.
//
// A non-comparable sink value defeats identity grouping, so its presence
// makes the whole split unsafe: fanoutGroups returns nil and the caller
// stays serial.
func fanoutGroups(sinks []trace.Sink, masks []trace.OpMask) []fanGroup {
	for _, s := range sinks {
		if s == nil || !reflect.TypeOf(s).Comparable() {
			return nil
		}
	}
	byIdent := make(map[trace.Sink]int, len(sinks))
	var byKey map[string]int
	var groups []fanGroup
	for i, s := range sinks {
		gi, ok := byIdent[s]
		if !ok {
			if fg, isHinted := s.(trace.FanoutGrouper); isHinted {
				if key := fg.FanoutGroup(); key != "" {
					if byKey == nil {
						byKey = make(map[string]int)
					}
					if kg, known := byKey[key]; known {
						gi, ok = kg, true
					} else {
						byKey[key] = len(groups)
					}
				}
			}
			if !ok {
				gi = len(groups)
				groups = append(groups, fanGroup{})
			}
			byIdent[s] = gi
		}
		groups[gi].sinks = append(groups[gi].sinks, s)
		groups[gi].masks = append(groups[gi].masks, masks[i])
	}
	return groups
}

// SetFanOut sets the engine-wide fan-out budget: the maximum number of
// delivery goroutines live across all concurrently replaying cells and
// ingest sessions. n <= 1 disables fan-out (every replay delivers
// serially, the reference path). New defaults the budget to the worker
// count, so Serial() engines — and the goldens pinned to them — are
// fan-out-free without further ceremony.
func (e *Engine) SetFanOut(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fanWorkers = n
}

// FanOut returns the fan-out budget (see SetFanOut).
func (e *Engine) FanOut() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fanWorkers
}

// acquireFanTokens debits up to want tokens from the fan-out account
// without blocking and returns how many it got. Waiting here could
// deadlock the worker pool (every worker parked waiting for tokens held
// by the others), so a short account degrades to serial delivery, never
// to a stall.
func (e *Engine) acquireFanTokens(want int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	free := e.fanWorkers - e.fanInUse
	if want > free {
		want = free
	}
	if want < 0 {
		want = 0
	}
	e.fanInUse += want
	return want
}

// releaseFanTokens returns tokens to the fan-out account.
func (e *Engine) releaseFanTokens(n int) {
	e.mu.Lock()
	e.fanInUse -= n
	e.mu.Unlock()
}

// sinkFanout is one live fan-out pipeline: a ring plus its consumer
// goroutines, holding tokens until closed. Both block replays
// (replayFanOut) and live ingest sessions (IngestSession.deliver) drive
// one of these; only the producer side differs.
type sinkFanout struct {
	e      *Engine
	ring   *trace.Ring
	wg     sync.WaitGroup
	tokens int
	closed bool
}

// newSinkFanout builds a pipeline for the given fan-out, or returns nil
// when fan-out cannot help: fewer than two sinks, the budget disabled or
// exhausted, or sinks that collapse into fewer than two groups. The
// caller then delivers serially. On success the consumers are already
// running and the caller owns the pipeline: it must call close exactly
// once (abort first on failure).
func (e *Engine) newSinkFanout(sinks []trace.Sink, masks []trace.OpMask) *sinkFanout {
	if len(sinks) < 2 {
		return nil
	}
	e.mu.Lock()
	enabled := e.fanWorkers > 1
	e.mu.Unlock()
	if !enabled {
		return nil
	}
	groups := fanoutGroups(sinks, masks)
	if len(groups) < 2 {
		return nil
	}
	n := e.acquireFanTokens(len(groups))
	if n < 2 {
		e.releaseFanTokens(n)
		return nil
	}
	f := &sinkFanout{e: e, ring: trace.NewRing(fanRingDepth, n), tokens: n}
	for c := 0; c < n; c++ {
		// Round-robin group assignment; ascending group order within a
		// consumer keeps co-grouped occurrences in their original
		// relative order.
		var gs []fanGroup
		for gi := c; gi < len(groups); gi += n {
			gs = append(gs, groups[gi])
		}
		f.wg.Add(1)
		go f.consume(c, gs)
	}
	return f
}

// consume is one fan-out consumer: it walks the ring in publication
// order and feeds each block to its groups' sinks, honoring the same
// per-sink mask skip as the serial loop. A panic anywhere below — a
// sink, an injected fault — aborts the ring wrapping ErrSinkPanic, so
// the producer's replay fails the way a panicking sink fails a serial
// replay.
func (f *sinkFanout) consume(c int, groups []fanGroup) {
	defer f.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			f.ring.Abort(fmt.Errorf("%w: %w", ErrSinkPanic, panicError(r)))
		}
	}()
	for {
		b, ok, err := f.ring.Next(c)
		if !ok || err != nil {
			return
		}
		if ferr := faults.Inject(faults.FanoutConsume); ferr != nil {
			f.ring.Abort(fmt.Errorf("fan-out delivery: %w", ferr))
			return
		}
		fed, skipped := 0, 0
		for gi := range groups {
			g := &groups[gi]
			for j, s := range g.sinks {
				if g.masks[j]&b.Mask != 0 {
					trace.EmitAll(s, b.Events)
					fed++
				} else {
					skipped++
				}
			}
		}
		f.e.deliveredEv.Add(uint64(fed) * uint64(len(b.Events)))
		f.e.maskSkips.Add(uint64(skipped))
	}
}

// publish broadcasts one block, returning the latched error if a
// consumer has aborted.
func (f *sinkFanout) publish(b trace.Block) error { return f.ring.Publish(b) }

// flush blocks until every consumer has fully processed everything
// published so far — the barrier ingest needs before the stream decoder
// reuses its frame buffer.
func (f *sinkFanout) flush() error { return f.ring.Flush() }

// abort latches err into the ring, waking producer and consumers.
func (f *sinkFanout) abort(err error) { f.ring.Abort(err) }

// close ends the stream, waits for the consumers, folds the ring's
// stall count into the engine, releases the tokens, and returns the
// latched error (nil for a clean run). Idempotent.
func (f *sinkFanout) close() error {
	if f.closed {
		return f.ring.Err()
	}
	f.closed = true
	f.ring.Close()
	f.wg.Wait()
	f.e.ringStalls.Add(f.ring.Stalls())
	f.e.releaseFanTokens(f.tokens)
	return f.ring.Err()
}

// errProducerUnwound marks a fan-out whose producer panicked out of the
// publish loop (an injected panic, a bug): the consumers are told to
// stop before the panic resumes unwinding toward replayGuarded.
var errProducerUnwound = errors.New("engine: fan-out producer unwound")

// replayFanOut delivers decoded blocks through a fan-out pipeline.
// handled reports whether fan-out ran at all: false means the caller
// should deliver serially (fan-out disabled, budget exhausted, or the
// sinks don't split), and nothing has been emitted. When handled, the
// per-sink event sequences are byte-identical to emitBlocks's; n counts
// the stream's events once, exactly as the serial path does, and an
// error means the sinks were partially fed.
func (e *Engine) replayFanOut(ctx context.Context, blocks []traceBlock, sinks []trace.Sink, masks []trace.OpMask) (n uint64, handled bool, err error) {
	f := e.newSinkFanout(sinks, masks)
	if f == nil {
		return 0, false, nil
	}
	settled := false
	defer func() {
		if !settled { // a panic is unwinding through the publish loop
			f.abort(errProducerUnwound)
			_ = f.close()
		}
	}()
	var aborted error
	for i := range blocks {
		if ctx.Err() != nil {
			aborted = ctxErr(ctx)
			break
		}
		// The sink.emit point fires here with the serial path's cadence
		// (once per block), so existing fault plans behave identically
		// whether or not a replay went through the fan-out.
		if ferr := faults.Inject(faults.SinkEmit); ferr != nil {
			aborted = fmt.Errorf("replay delivery: %w", ferr)
			break
		}
		if ferr := faults.Inject(faults.FanoutPublish); ferr != nil {
			aborted = fmt.Errorf("fan-out publish: %w", ferr)
			break
		}
		b := &blocks[i]
		if perr := f.publish(trace.Block{Events: b.events, Mask: b.mask}); perr != nil {
			break // a consumer aborted; its error surfaces from close
		}
		n += uint64(len(b.events))
	}
	if aborted != nil {
		f.abort(aborted)
	}
	err = f.close()
	settled = true
	if err == nil {
		e.fanReplays.Add(1)
	}
	return n, true, err
}

// deliverBlocks is the block path's delivery dispatch: fan-out when the
// pipeline can be built, the serial loop otherwise. Per-sink results are
// identical either way.
func (e *Engine) deliverBlocks(ctx context.Context, blocks []traceBlock, sinks []trace.Sink) (uint64, error) {
	masks := trace.SinkMasks(sinks)
	if n, handled, err := e.replayFanOut(ctx, blocks, sinks, masks); handled {
		return n, err
	}
	return e.emitBlocks(ctx, blocks, sinks, masks)
}
