package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"memotable/internal/faults"
	"memotable/internal/trace"
)

// withFaults activates a fault plan for one test and guarantees
// deactivation, so the process-wide registry never leaks between tests.
func withFaults(t *testing.T, spec string) *faults.Plan {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(plan)
	t.Cleanup(func() { faults.Activate(nil) })
	return plan
}

func TestSweepSpillOrphans(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "trace-123.mtrc.tmp")
	sealed := filepath.Join(dir, "trace-456.mtrc")
	unrelated := filepath.Join(dir, "notes.tmp")
	for _, p := range []string{orphan, sealed, unrelated} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	e := New(1)
	e.SetTraceDir(dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("SetTraceDir left the orphaned spill temp file behind")
	}
	for _, p := range []string{sealed, unrelated} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("SetTraceDir removed %s, which is not a spill temp file", p)
		}
	}

	// Close sweeps too: an orphan created mid-run (a crashed helper
	// process, say) is gone after shutdown.
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("Close left the orphaned spill temp file behind")
	}
	if _, err := os.Stat(sealed); err != nil {
		t.Fatal("Close removed a sealed spill file")
	}
}

func TestCanceledPassReportsEveryCell(t *testing.T) {
	e := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var cnt trace.Counter
	subs := []Subscription{{
		Sinks: []trace.Sink{&cnt},
		Workloads: []PassWorkload{
			{Key: "a", Capture: emitN(100, 8)},
			{Key: "b", Capture: emitN(100, 8)},
			{Key: "c", Capture: emitN(100, 8)},
		},
	}}
	rep, err := e.RunPassContext(ctx, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Canceled {
		t.Fatal("report not marked canceled")
	}
	if got := rep.FailedKeys(); len(got) != 3 {
		t.Fatalf("failed keys = %v, want all three workloads", got)
	}
	for _, ce := range rep.Errors {
		if !errors.Is(ce, ErrCanceled) || !errors.Is(ce, context.Canceled) {
			t.Fatalf("cell %q error %v, want ErrCanceled wrapping context.Canceled", ce.Key, ce.Err)
		}
	}
	if cnt.Total() != 0 {
		t.Fatalf("sink saw %d events from a canceled pass", cnt.Total())
	}
}

func TestPersistentCaptureFaultReportsCell(t *testing.T) {
	withFaults(t, "engine.capture.run")

	e := Serial()
	var cnt trace.Counter
	rep, err := e.RunPassContext(context.Background(), []Subscription{{
		Sinks:     []trace.Sink{&cnt},
		Workloads: []PassWorkload{{Key: "w", Capture: emitN(100, 8)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 {
		t.Fatalf("errors = %v, want exactly one", rep.Errors)
	}
	ce := rep.Errors[0]
	if ce.Key != "w" || ce.Stage != "capture" {
		t.Fatalf("cell = %q stage %q, want workload w at capture", ce.Key, ce.Stage)
	}
	if !errors.Is(ce, ErrCaptureFailed) || !errors.Is(ce, faults.ErrInjected) {
		t.Fatalf("error %v, want ErrCaptureFailed wrapping the injected fault", ce.Err)
	}
	if rep.Canceled {
		t.Fatal("report marked canceled without cancellation")
	}
}

func TestTransientCaptureFaultRecovers(t *testing.T) {
	withFaults(t, "engine.capture.run:count=1")

	e := Serial()
	var cnt trace.Counter
	rep, err := e.RunPassContext(context.Background(), []Subscription{{
		Sinks:     []trace.Sink{&cnt},
		Workloads: []PassWorkload{{Key: "w", Capture: emitN(100, 8)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The warm phase absorbs the single fault; the replay re-captures
	// and succeeds, so the pass is clean.
	if len(rep.Errors) != 0 {
		t.Fatalf("errors = %v, want none after transient fault", rep.Errors)
	}
	if cnt.Total() != 100 {
		t.Fatalf("sink saw %d events, want 100", cnt.Total())
	}
}

func TestCapturePanicIsolatedToCell(t *testing.T) {
	// Two panics: the warm phase absorbs one, the replay the other; the
	// follow-up capture below must then run clean — proving the capture
	// lock survived both panics.
	withFaults(t, "engine.capture.run:count=2:panic")

	e := Serial()
	var cnt trace.Counter
	rep, err := e.RunPassContext(context.Background(), []Subscription{{
		Sinks:     []trace.Sink{&cnt},
		Workloads: []PassWorkload{{Key: "w", Capture: emitN(100, 8)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 || !errors.Is(rep.Errors[0], ErrCaptureFailed) {
		t.Fatalf("errors = %v, want one ErrCaptureFailed from the panic", rep.Errors)
	}
	// The capture lock must have been released despite the panic:
	// another capture on the same engine still proceeds.
	n, rerr := e.Replay("other", emitN(10, 4), &cnt)
	if rerr != nil || n != 10 {
		t.Fatalf("engine wedged after capture panic: n=%d err=%v", n, rerr)
	}
}

func TestPersistentSpillFaultDegradesToDirectRuns(t *testing.T) {
	withFaults(t, "engine.spill.write")

	e := New(2)
	defer e.Close()
	e.SetCacheLimit(64) // force every capture to the spill tier
	e.SetTraceDir(t.TempDir())
	e.SetRetryPolicy(2, 0)

	var cnt trace.Counter
	for i := 0; i < 2; i++ {
		n, err := e.Replay("w", emitN(5000, 32), &cnt)
		if err != nil || n != 5000 {
			t.Fatalf("replay %d: n=%d err=%v, want clean degraded run", i, n, err)
		}
	}
	if cnt.Total() != 10000 {
		t.Fatalf("sink saw %d events, want 10000", cnt.Total())
	}
	if e.DegradedCaptures() == 0 {
		t.Fatal("degraded-capture counter not incremented")
	}
	if e.CachedTraces() != 0 || e.SpilledTraces() != 0 {
		t.Fatalf("unspillable trace stored anyway: cached=%d spilled=%d",
			e.CachedTraces(), e.SpilledTraces())
	}
}

func TestTransientSpillFaultRetriesAndSpills(t *testing.T) {
	withFaults(t, "engine.spill.write:count=1")

	e := New(2)
	defer e.Close()
	e.SetCacheLimit(64)
	e.SetTraceDir(t.TempDir())
	e.SetRetryPolicy(3, 0)

	var cnt trace.Counter
	n, err := e.Replay("w", emitN(5000, 32), &cnt)
	if err != nil || n != 5000 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if e.SpilledTraces() != 1 {
		t.Fatalf("spilled traces = %d, want 1 after the retry", e.SpilledTraces())
	}
	if e.DegradedCaptures() != 0 {
		t.Fatal("transient fault degraded the capture instead of retrying")
	}
}

func TestSinkPanicIsolatedToCell(t *testing.T) {
	withFaults(t, "engine.sink.emit:count=1:panic")

	e := Serial()
	var a, b trace.Counter
	rep, err := e.RunPassContext(context.Background(), []Subscription{
		{Sinks: []trace.Sink{&a}, Workloads: []PassWorkload{{Key: "a", Capture: emitN(100, 8)}}},
		{Sinks: []trace.Sink{&b}, Workloads: []PassWorkload{{Key: "b", Capture: emitN(100, 8)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Errors) != 1 {
		t.Fatalf("errors = %v, want exactly one faulted cell", rep.Errors)
	}
	ce := rep.Errors[0]
	if !errors.Is(ce, ErrSinkPanic) || ce.Stage != "sink" {
		t.Fatalf("cell error %v (stage %q), want ErrSinkPanic at sink", ce.Err, ce.Stage)
	}
	// The serial engine replays components in key order, so the panic
	// lands on "a" and "b" must be untouched by it.
	if ce.Key != "a" {
		t.Fatalf("faulted cell = %q, want a", ce.Key)
	}
	if b.Total() != 100 {
		t.Fatalf("surviving cell saw %d events, want 100", b.Total())
	}
}

func TestCorruptSpillExhaustsRecaptureWithTypedError(t *testing.T) {
	withFaults(t, "trace.frame.crc")

	e := Serial()
	defer e.Close()
	e.SetCacheLimit(64)
	e.SetTraceDir(t.TempDir())
	e.SetRetryPolicy(1, 0)

	var cnt trace.Counter
	_, err := e.Replay("w", emitN(5000, 32), &cnt)
	if err == nil {
		t.Fatal("replay of a permanently corrupt spill succeeded")
	}
	if !errors.Is(err, ErrCorruptTrace) {
		t.Fatalf("error %v, want ErrCorruptTrace", err)
	}
	if !errors.Is(err, trace.ErrBadTrace) {
		t.Fatalf("error %v, want trace.ErrBadTrace preserved in the chain", err)
	}
}

func TestNoFaultsMeansNoBehaviorChange(t *testing.T) {
	// Guard the hot path: with no plan active, Inject must report
	// disabled and replays must not take any fault branches.
	if faults.Enabled() {
		t.Fatal("a fault plan leaked into this test")
	}
	e := New(4)
	defer e.Close()
	var cnt trace.Counter
	n, err := e.Replay("w", emitN(1000, 16), &cnt)
	if err != nil || n != 1000 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if cnt.Total() != 1000 {
		t.Fatalf("sink saw %d events, want 1000", cnt.Total())
	}
}
