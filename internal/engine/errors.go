package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// The engine's failure model. Every fault on an I/O or compute edge is
// either retried (transient spill I/O, with jittered backoff), degraded
// (a permanently unspillable capture declines and the workload direct-
// runs on every replay), or reported (as a typed *CellError in the
// PassReport of the pass that observed it). The sentinels below form the
// errors.Is-able taxonomy callers classify against; DESIGN.md §10 maps
// every injection point to its sentinel.

// Sentinel errors of the failure taxonomy.
var (
	// ErrCanceled marks work abandoned because the pass context was
	// canceled or its deadline expired.
	ErrCanceled = errors.New("engine: pass canceled")
	// ErrCaptureFailed marks a workload whose capture (or declined
	// direct re-execution) returned a fault or panicked.
	ErrCaptureFailed = errors.New("engine: workload capture failed")
	// ErrSpillIO marks spill-tier I/O that kept failing after the
	// bounded retries.
	ErrSpillIO = errors.New("engine: spill I/O failed")
	// ErrCorruptTrace marks a trace whose frames failed verification
	// even after transparent re-capture attempts.
	ErrCorruptTrace = errors.New("engine: corrupt trace")
	// ErrSinkPanic marks a measurement sink that panicked mid-replay;
	// every sink fed by that replay may have observed a torn stream.
	ErrSinkPanic = errors.New("engine: sink panicked during replay")
	// ErrClosed marks work submitted to an engine after Close: new
	// passes, replays, warms and ingest sessions are refused instead of
	// racing the teardown of the spill tier.
	ErrClosed = errors.New("engine: closed")
)

// CellError attributes one failure to the workload cell that observed
// it. Key is the workload's cache key, Stage the execution edge that
// failed ("capture", "replay", "sink" or "schedule"), and Err the
// underlying cause, always wrapping one of the taxonomy sentinels.
type CellError struct {
	Key   string
	Stage string
	Err   error
}

// Error implements error.
func (c *CellError) Error() string {
	return fmt.Sprintf("workload %q: %s: %v", c.Key, c.Stage, c.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As classification.
func (c *CellError) Unwrap() error { return c.Err }

// PassReport is the degraded-mode outcome of one RunPassContext: which
// workload cells failed and why, and whether the pass was cut short by
// cancellation. A report with no errors is a fully successful pass.
type PassReport struct {
	mu sync.Mutex
	// Canceled is set when the pass context was done before every
	// workload replayed.
	Canceled bool
	// Errors holds one entry per failed workload, sorted by key. A
	// workload appears at most once however many subscriptions share it.
	Errors []*CellError
}

// add records a cell failure (concurrent components report in parallel).
func (r *PassReport) add(ce *CellError) {
	r.mu.Lock()
	r.Errors = append(r.Errors, ce)
	r.mu.Unlock()
}

// seal sorts the errors by workload key so reports are deterministic.
func (r *PassReport) seal() {
	sort.Slice(r.Errors, func(i, j int) bool { return r.Errors[i].Key < r.Errors[j].Key })
}

// Err returns the first cell error, or nil for a clean pass — the
// fail-fast view legacy RunPass callers see.
func (r *PassReport) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	return r.Errors[0]
}

// Failed reports whether the named workload failed in this pass.
func (r *PassReport) Failed(key string) bool {
	for _, ce := range r.Errors {
		if ce.Key == key {
			return true
		}
	}
	return false
}

// FailedKeys lists the failed workload keys in sorted order.
func (r *PassReport) FailedKeys() []string {
	keys := make([]string, len(r.Errors))
	for i, ce := range r.Errors {
		keys[i] = ce.Key
	}
	return keys
}

// Retry policy defaults: transient spill I/O is retried up to
// defaultRetryAttempts times with exponential backoff starting at
// defaultRetryBase (full jitter, so concurrent retries decorrelate).
const (
	defaultRetryAttempts = 3
	defaultRetryBase     = 2 * time.Millisecond
)

// SetRetryPolicy adjusts how transient spill I/O failures are retried:
// at most attempts retries per operation, with jittered exponential
// backoff starting at base. attempts <= 0 disables retries (a first
// failure degrades immediately); base <= 0 retries without sleeping —
// what fault-injection tests use to keep soak wall-clock flat.
func (e *Engine) SetRetryPolicy(attempts int, base time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retryAttempts = attempts
	e.retryBase = base
}

// retryPolicy snapshots the engine's retry knobs.
func (e *Engine) retryPolicy() (int, time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.retryAttempts, e.retryBase
}

// backoff sleeps before retry number attempt (1-based): full-jitter
// exponential, capped at 64x base so a deep retry cannot stall a worker
// for long.
func backoff(base time.Duration, attempt int) {
	if base <= 0 {
		return
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	max := base << shift
	time.Sleep(time.Duration(rand.Int64N(int64(max)) + 1))
}

// panicError converts a recovered panic value into an error, preserving
// an error-typed panic (an injected *faults.Fault, say) as the cause.
func panicError(r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("panic: %w", err)
	}
	return fmt.Errorf("panic: %v", r)
}

// ctxErr wraps a context's termination in ErrCanceled so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
// DeadlineExceeded) classify it.
func ctxErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
