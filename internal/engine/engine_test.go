package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/trace"
)

// emitN is a synthetic workload: n events with a repeating operand cycle.
func emitN(n int, period uint64) CaptureFunc {
	return func(s trace.Sink) {
		for i := 0; i < n; i++ {
			s.Emit(trace.Event{
				Op: isa.OpFMul,
				A:  uint64(i) % period,
				B:  uint64(i) % (period / 2),
			})
		}
	}
}

func TestMapCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		e := New(workers)
		const n = 500
		counts := make([]atomic.Int32, n)
		e.Map(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	e := New(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e.Map(64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
	t.Fatal("Map returned after a panicking cell")
}

func TestReplaySingleflight(t *testing.T) {
	e := New(8)
	var executions atomic.Int64
	capture := func(s trace.Sink) {
		executions.Add(1)
		emitN(10000, 64)(s)
	}
	const callers = 16
	var wg sync.WaitGroup
	counts := make([]uint64, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var cnt trace.Counter
			n, err := e.Replay("k", capture, &cnt)
			if err != nil {
				t.Error(err)
				return
			}
			counts[c] = n
		}(c)
	}
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("workload executed %d times under concurrent Replay, want 1", got)
	}
	for c, n := range counts {
		if n != 10000 {
			t.Fatalf("caller %d replayed %d events, want 10000", c, n)
		}
	}
	if e.CachedTraces() != 1 || e.Replays() != callers || e.Captures() != 1 {
		t.Fatalf("cached=%d replays=%d captures=%d", e.CachedTraces(), e.Replays(), e.Captures())
	}
	if e.CachedBytes() <= 0 {
		t.Fatal("no bytes accounted for the stored trace")
	}
}

func TestReplayDeclinesOverBudgetAndRerunsWorkload(t *testing.T) {
	e := New(2)
	e.SetCacheLimit(64) // far below the trace encoding
	var cnt trace.Counter
	n, err := e.Replay("big", emitN(5000, 32), &cnt)
	if err != nil || n != 5000 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if e.CachedTraces() != 0 || e.CachedBytes() != 0 {
		t.Fatalf("over-budget capture was stored: %d traces, %d bytes",
			e.CachedTraces(), e.CachedBytes())
	}
	// Subsequent requests re-run the workload, still correctly.
	n, err = e.Replay("big", emitN(5000, 32), &cnt)
	if err != nil || n != 5000 {
		t.Fatalf("second replay: n=%d err=%v", n, err)
	}
	if e.Captures() < 3 || e.Replays() != 0 {
		// one capture attempt during store + one direct run per Replay
		t.Fatalf("captures=%d replays=%d", e.Captures(), e.Replays())
	}
	if cnt.Total() != 10000 {
		t.Fatalf("sink saw %d events, want 10000", cnt.Total())
	}
}

func TestWarmThenReplayServesFromCache(t *testing.T) {
	e := Serial()
	var executions atomic.Int64
	capture := func(s trace.Sink) {
		executions.Add(1)
		emitN(100, 8)(s)
	}
	e.Warm("w", capture)
	if executions.Load() != 1 || e.CachedTraces() != 1 {
		t.Fatalf("warm did not capture exactly once: %d", executions.Load())
	}
	var rec trace.Recorder
	if _, err := e.Replay("w", capture, &rec); err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 1 {
		t.Fatal("replay after warm re-executed the workload")
	}
	// Replayed stream must be byte-faithful: same events in order.
	want := trace.Recorder{}
	emitN(100, 8)(&want)
	if len(rec.Events) != len(want.Events) {
		t.Fatalf("replayed %d events, want %d", len(rec.Events), len(want.Events))
	}
	for i := range rec.Events {
		if rec.Events[i] != want.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, rec.Events[i], want.Events[i])
		}
	}
}

// TestEnginePoolHammersSharedTable is the engine-side -race target: Map
// fans replays of one cached trace into a striped multi-ported table, and
// the final hit/miss counts must equal a serial pass's (the infinite
// table's totals are order-independent).
func TestEnginePoolHammersSharedTable(t *testing.T) {
	capture := emitN(30000, 512)

	serialTable := memo.NewSharedStriped(isa.OpFMul, memo.Infinite(), 8, 8)
	serialEng := Serial()
	feedShared := func(e *Engine, sh *memo.Shared, cells int) {
		e.Map(cells, func(int) {
			_, err := e.Replay("hammer", capture, trace.SinkFunc(func(ev trace.Event) {
				sh.Access(ev.A, ev.B, func() uint64 { return ev.A * ev.B })
			}))
			if err != nil {
				t.Error(err)
			}
		})
	}
	feedShared(serialEng, serialTable, 8)

	parTable := memo.NewSharedStriped(isa.OpFMul, memo.Infinite(), 8, 8)
	parEng := New(8)
	feedShared(parEng, parTable, 8)

	if got, want := parTable.Stats(), serialTable.Stats(); got != want {
		t.Fatalf("concurrent pool stats %+v diverge from serial %+v", got, want)
	}
	if parEng.Captures() != 1 {
		t.Fatalf("parallel pool executed the workload %d times, want 1", parEng.Captures())
	}
}
