package engine

import "sort"

// The engine's observability layer. Historically every counter grew its
// own getter, which meant N lock round-trips for one report and a getter
// sprawl no front-end could serialize. Stats flattens the whole picture
// into one snapshot struct — counters loaded atomically, cache-shape
// fields read under one acquisition of the cache lock — that marshals
// directly to JSON (flat, snake_case, CSV-friendly). The per-counter
// getters survive as thin wrappers over the snapshot so no call site
// breaks; new code should take one Stats() and read fields.
//
// Tiers() is the structural companion: each cache layer — memory,
// decoded blocks, spill files, the persistent store — presented through
// the narrow Tier interface (name, entry count, resident bytes), which
// is how the service front-end and the CLI describe the cache without
// reaching into engine internals.

// Stats is a point-in-time snapshot of every engine counter and
// cache-shape figure. Counter fields are monotonic; shape fields
// (cached/spilled/decoded, budget) describe the instant of the call.
type Stats struct {
	Workers int `json:"workers"`
	FanOut  int `json:"fanout"`

	// Capture/replay pipeline.
	Captures         uint64 `json:"captures"`
	Replays          uint64 `json:"replays"`
	Recaptures       uint64 `json:"recaptures"`
	DecodeOnceHits   uint64 `json:"decode_once_hits"`
	ReplayedEvents   uint64 `json:"replayed_events"`
	SpillRetries     uint64 `json:"spill_retries"`
	DegradedCaptures uint64 `json:"degraded_captures"`
	StoreHits        uint64 `json:"store_hits"`
	StorePuts        uint64 `json:"store_puts"`

	// Fan-out delivery.
	FanoutReplays   uint64 `json:"fanout_replays"`
	RingStalls      uint64 `json:"ring_stalls"`
	DeliveredEvents uint64 `json:"delivered_events"`
	MaskSkips       uint64 `json:"mask_skips"`

	// Live ingest.
	IngestedFrames uint64 `json:"ingested_frames"`
	IngestedEvents uint64 `json:"ingested_events"`
	IngestedBytes  uint64 `json:"ingested_bytes"`
	SealedIngests  uint64 `json:"sealed_ingests"`

	// Cache shape.
	CachedTraces      int   `json:"cached_traces"`
	SpilledTraces     int   `json:"spilled_traces"`
	CachedBytes       int64 `json:"cached_bytes"`
	DecodedEntries    int   `json:"decoded_entries"`
	DecodedBlockBytes int64 `json:"decoded_block_bytes"`

	// Root budget.
	BudgetLimit    int64 `json:"budget_limit"`
	BudgetUsed     int64 `json:"budget_used"`
	BudgetReserved int64 `json:"budget_reserved"`
}

// Stats snapshots the engine. Atomic counters are loaded individually
// and the cache shape is read under one acquisition of the cache lock,
// so the snapshot is consistent within each group; a snapshot taken
// while work is in flight is a valid point-in-time view, not a fence.
func (e *Engine) Stats() Stats {
	s := Stats{
		Workers:          e.workers,
		Captures:         e.captures.Load(),
		Replays:          e.replays.Load(),
		Recaptures:       e.recaptures.Load(),
		DecodeOnceHits:   e.decodeHits.Load(),
		ReplayedEvents:   e.replayedEv.Load(),
		SpillRetries:     e.spillRetry.Load(),
		DegradedCaptures: e.degradedCap.Load(),
		StoreHits:        e.storeHits.Load(),
		StorePuts:        e.storePuts.Load(),
		FanoutReplays:    e.fanReplays.Load(),
		RingStalls:       e.ringStalls.Load(),
		DeliveredEvents:  e.deliveredEv.Load(),
		MaskSkips:        e.maskSkips.Load(),
		IngestedFrames:   e.ingestFrames.Load(),
		IngestedEvents:   e.ingestEvents.Load(),
		IngestedBytes:    e.ingestBytes.Load(),
		SealedIngests:    e.sealedIngests.Load(),
	}
	e.mu.Lock()
	s.FanOut = e.fanWorkers
	s.CachedBytes = e.memBytes
	s.DecodedBlockBytes = e.blockBytes
	for _, ent := range e.traces {
		switch ent.state {
		case stateMemory:
			s.CachedTraces++
		case stateDisk:
			s.SpilledTraces++
		}
		if ent.blocks != nil {
			s.DecodedEntries++
		}
	}
	e.mu.Unlock()
	s.BudgetLimit = e.budget.Limit()
	s.BudgetUsed = e.budget.Used()
	s.BudgetReserved = e.budget.Reserved()
	return s
}

// TraceFingerprints returns the sorted workload fingerprints of every
// settled cache entry (memory or disk tier). This is what a fleet
// worker's provenance chain binds its run to: the exact set of traces
// the shard captured or adopted, independent of which tier holds them
// or whether they came warm from the store.
func (e *Engine) TraceFingerprints() []string {
	e.mu.Lock()
	keys := make([]string, 0, len(e.traces))
	for k, ent := range e.traces {
		if ent.state == stateMemory || ent.state == stateDisk {
			keys = append(keys, k)
		}
	}
	e.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Tier is the narrow read-only view of one cache layer: what it is, how
// many entries it holds, and how many bytes they occupy.
type Tier interface {
	// Name identifies the layer ("memory", "blocks", "spill", "store").
	Name() string
	// Entries returns the number of entries resident in the layer.
	Entries() int
	// Bytes returns the bytes those entries occupy (encoded bytes for
	// memory and spill, decoded cost for blocks, on-disk size for store).
	Bytes() int64
}

// TierStats is the serializable form of one Tier's view.
type TierStats struct {
	Name    string `json:"name"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
}

// Tiers returns the engine's cache layers, outermost first: the memory
// tier (encoded v2 bytes), the decoded-block tier, the disk spill tier,
// and — when a persistent store is attached — the store tier.
func (e *Engine) Tiers() []Tier {
	tiers := []Tier{memoryTier{e}, blockTier{e}, spillTier{e}}
	if e.Store() != nil {
		tiers = append(tiers, storeTier{e})
	}
	return tiers
}

// TierStats snapshots every tier of Tiers into serializable form.
func (e *Engine) TierStats() []TierStats {
	tiers := e.Tiers()
	out := make([]TierStats, len(tiers))
	for i, t := range tiers {
		out[i] = TierStats{Name: t.Name(), Entries: t.Entries(), Bytes: t.Bytes()}
	}
	return out
}

// countTier tallies entries matching keep and sums bytes via cost, under
// one acquisition of the cache lock — the shared body of the in-process
// tier views.
func (e *Engine) countTier(keep func(*traceEntry) bool, cost func(*traceEntry) int64) (int, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var n int
	var b int64
	for _, ent := range e.traces {
		if keep(ent) {
			n++
			b += cost(ent)
		}
	}
	return n, b
}

// memoryTier views the encoded in-memory trace cache as a Tier.
type memoryTier struct{ e *Engine }

func (t memoryTier) Name() string { return "memory" }
func (t memoryTier) Entries() int {
	n, _ := t.e.countTier(
		func(ent *traceEntry) bool { return ent.state == stateMemory },
		func(ent *traceEntry) int64 { return int64(len(ent.data)) })
	return n
}
func (t memoryTier) Bytes() int64 {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	return t.e.memBytes
}

// blockTier views the decoded-block cache as a Tier.
type blockTier struct{ e *Engine }

func (t blockTier) Name() string { return "blocks" }
func (t blockTier) Entries() int {
	n, _ := t.e.countTier(
		func(ent *traceEntry) bool { return ent.blocks != nil },
		func(ent *traceEntry) int64 { return ent.blockBytes })
	return n
}
func (t blockTier) Bytes() int64 {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	return t.e.blockBytes
}

// spillTier views the disk spill files as a Tier.
type spillTier struct{ e *Engine }

func (t spillTier) Name() string { return "spill" }
func (t spillTier) Entries() int {
	n, _ := t.spilled()
	return n
}
func (t spillTier) Bytes() int64 {
	_, b := t.spilled()
	return b
}
func (t spillTier) spilled() (int, int64) {
	return t.e.countTier(
		func(ent *traceEntry) bool { return ent.state == stateDisk },
		func(ent *traceEntry) int64 { return ent.disk })
}

// storeTier views the attached persistent trace store as a Tier. Store
// I/O failures read as an empty tier — the store is an accelerator, and
// its stats follow the same can't-hurt contract as its entries.
type storeTier struct{ e *Engine }

func (t storeTier) Name() string { return "store" }
func (t storeTier) Entries() int {
	st := t.e.Store()
	if st == nil {
		return 0
	}
	n, _ := st.Len()
	return n
}
func (t storeTier) Bytes() int64 {
	st := t.e.Store()
	if st == nil {
		return 0
	}
	b, _ := st.Bytes()
	return b
}

// The legacy per-counter getters, kept as thin wrappers over Stats so no
// call site breaks. New code should snapshot once with Stats().

// CachedTraces returns the number of captures held in the memory tier.
func (e *Engine) CachedTraces() int { return e.Stats().CachedTraces }

// SpilledTraces returns the number of captures held in the disk tier.
func (e *Engine) SpilledTraces() int { return e.Stats().SpilledTraces }

// CachedBytes returns the encoded size of all memory-tier captures.
func (e *Engine) CachedBytes() int64 { return e.Stats().CachedBytes }

// DecodedEntries returns the number of cache entries holding decoded
// blocks.
func (e *Engine) DecodedEntries() int { return e.Stats().DecodedEntries }

// DecodedBlockBytes returns the budget bytes held by the decoded-block
// tier across all entries.
func (e *Engine) DecodedBlockBytes() int64 { return e.Stats().DecodedBlockBytes }

// Captures returns how many workload executions the engine has performed
// (cache misses plus declined-to-store re-runs).
func (e *Engine) Captures() uint64 { return e.captures.Load() }

// Replays returns how many cache replays the engine has served, from
// either tier.
func (e *Engine) Replays() uint64 { return e.replays.Load() }

// Recaptures returns how many spill files failed checksum verification
// and were invalidated for transparent re-capture.
func (e *Engine) Recaptures() uint64 { return e.recaptures.Load() }

// DecodeOnceHits returns how many cache replays were served from shared
// decoded blocks rather than by re-decoding encoded bytes.
func (e *Engine) DecodeOnceHits() uint64 { return e.decodeHits.Load() }

// ReplayedEvents returns the total events delivered by cache replays
// (fused replays count their stream once, not once per sink).
func (e *Engine) ReplayedEvents() uint64 { return e.replayedEv.Load() }

// SpillRetries returns how many spill I/O operations were retried after
// a transient failure.
func (e *Engine) SpillRetries() uint64 { return e.spillRetry.Load() }

// DegradedCaptures returns how many captures were degraded to direct
// re-execution because their spill I/O kept failing after the bounded
// retries. A degraded workload still produces byte-identical results —
// it just re-executes on every replay instead of being cached.
func (e *Engine) DegradedCaptures() uint64 { return e.degradedCap.Load() }

// StoreHits returns how many cache entries were settled from the
// persistent trace store instead of executing their workload.
func (e *Engine) StoreHits() uint64 { return e.storeHits.Load() }

// StorePuts returns how many fresh captures were published to the
// persistent trace store.
func (e *Engine) StorePuts() uint64 { return e.storePuts.Load() }

// FanoutReplays returns how many fused replays delivered through the
// fan-out pipeline (serial fallbacks are not counted).
func (e *Engine) FanoutReplays() uint64 { return e.fanReplays.Load() }

// RingStalls returns how many fan-out block publishes had to wait for
// the slowest consumer — sustained stalls mean one sink is the
// bottleneck and more fan-out workers won't help.
func (e *Engine) RingStalls() uint64 { return e.ringStalls.Load() }

// DeliveredEvents returns the per-sink delivered event total: every
// event counted once per sink that consumed it, across block replays
// (serial and fan-out) and ingest frame delivery. This is the fan-out's
// throughput numerator — ReplayedEvents counts each stream once,
// DeliveredEvents counts the work of feeding it to M sinks.
func (e *Engine) DeliveredEvents() uint64 { return e.deliveredEv.Load() }

// MaskSkips returns how many (sink, block) deliveries were skipped
// because the sink's class mask missed every event in the block.
func (e *Engine) MaskSkips() uint64 { return e.maskSkips.Load() }

// IngestedFrames returns the frames delivered by live ingest sessions.
func (e *Engine) IngestedFrames() uint64 { return e.ingestFrames.Load() }

// IngestedEvents returns the events delivered by live ingest sessions.
func (e *Engine) IngestedEvents() uint64 { return e.ingestEvents.Load() }

// SealedIngests returns how many ingest sessions sealed cleanly.
func (e *Engine) SealedIngests() uint64 { return e.sealedIngests.Load() }
