package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"memotable/internal/faults"
	"memotable/internal/isa"
	"memotable/internal/trace"
)

// The fan-out pipeline's one promise is byte-identity: every sink must
// observe the exact event sequence the serial loop would deliver it, at
// any sink count, under any mask, from any trace format, and across
// failure and recovery. These tests run a serial reference engine and a
// fan-out engine over identical inputs and demand identical outcomes.

// maskedRec is a comparable masked recording sink: distinct values fan
// out to distinct consumers, the mask drives the per-block skip.
type maskedRec struct {
	rec  *trace.Recorder
	mask trace.OpMask
}

func (m maskedRec) Emit(ev trace.Event)  { m.rec.Emit(ev) }
func (m maskedRec) OpMask() trace.OpMask { return m.mask }

// emitPhased emits blockLen events per operation class in runs, so
// consecutive decoded blocks carry different single-op masks and the
// skip path actually skips.
func emitPhased() CaptureFunc {
	ops := []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv, isa.OpFSqrt}
	return func(s trace.Sink) {
		for _, op := range ops {
			for i := 0; i < blockLen; i++ {
				s.Emit(trace.Event{Op: op, A: uint64(i) % 97, B: uint64(i) % 31})
			}
		}
	}
}

func sameEvents(t *testing.T, label string, got, want []trace.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// replayRecorded runs one fused replay of capture on e with the given
// per-sink masks and returns each sink's recorded stream.
func replayRecorded(t *testing.T, e *Engine, key string, capture CaptureFunc, masks []trace.OpMask) (uint64, [][]trace.Event) {
	t.Helper()
	sinks := make([]trace.Sink, len(masks))
	recs := make([]*trace.Recorder, len(masks))
	for i, m := range masks {
		recs[i] = &trace.Recorder{}
		sinks[i] = maskedRec{rec: recs[i], mask: m}
	}
	n, err := e.ReplayAll(key, capture, sinks)
	if err != nil {
		t.Fatalf("ReplayAll(%q, %d sinks): %v", key, len(masks), err)
	}
	out := make([][]trace.Event, len(recs))
	for i, r := range recs {
		out[i] = r.Events
	}
	return n, out
}

// TestFanoutMatchesSerialAcrossSinkCounts is the core differential: the
// same workload fused across 1, 2, 8 and 32 sinks (masks cycling every
// OpMask combination) must produce per-sink streams identical to the
// serial reference engine's, and the fan-out must actually have run
// wherever it can.
func TestFanoutMatchesSerialAcrossSinkCounts(t *testing.T) {
	capture := emitMixed(3 * blockLen)
	for _, sinkCount := range []int{1, 2, 8, 32} {
		masks := make([]trace.OpMask, sinkCount)
		for i := range masks {
			masks[i] = trace.OpMask(i % (int(trace.MaskAll) + 1))
			if sinkCount < 8 {
				masks[i] = trace.MaskAll // tiny fan-outs: everyone sees everything
			}
		}
		serial := Serial()
		fan := New(8)
		sn, sout := replayRecorded(t, serial, "diff", capture, masks)
		fn, fout := replayRecorded(t, fan, "diff", capture, masks)
		if sn != fn {
			t.Fatalf("%d sinks: event counts diverged: serial %d, fan-out %d", sinkCount, sn, fn)
		}
		for i := range sout {
			sameEvents(t, fmt.Sprintf("%d sinks, sink %d (mask %04b)", sinkCount, i, masks[i]),
				fout[i], sout[i])
		}
		if sinkCount >= 2 && fan.FanoutReplays() == 0 {
			t.Fatalf("%d sinks: fan-out engine delivered serially", sinkCount)
		}
		if fan.DeliveredEvents() != serial.DeliveredEvents() {
			t.Fatalf("%d sinks: delivered-event totals diverged: serial %d, fan-out %d",
				sinkCount, serial.DeliveredEvents(), fan.DeliveredEvents())
		}
	}
}

// TestFanoutEveryMaskCombination drives one sink per possible OpMask
// over a phase-structured trace whose blocks carry single-op masks, so
// the per-block skip decision differs per sink, and pins both the
// serial/fan-out identity and the filtering semantics themselves.
func TestFanoutEveryMaskCombination(t *testing.T) {
	// Every subset of the four memoizable classes (the trace's whole
	// op population), plus the catch-all mask: ops 0..3 are mask bits
	// 0..3, so combo i is simply OpMask(i).
	capture := emitPhased()
	const combos = 16
	masks := make([]trace.OpMask, combos+1)
	for i := 0; i < combos; i++ {
		masks[i] = trace.OpMask(i)
	}
	masks[combos] = trace.MaskAll
	serial := Serial()
	fan := New(8)
	_, sout := replayRecorded(t, serial, "masks", capture, masks)
	_, fout := replayRecorded(t, fan, "masks", capture, masks)
	for i := range masks {
		sameEvents(t, fmt.Sprintf("mask %04b", masks[i]), fout[i], sout[i])
	}
	// Filtering semantics: the empty mask sees nothing; a single-op mask
	// sees exactly its phase's blocks; MaskAll sees the whole stream.
	if len(sout[0]) != 0 {
		t.Fatalf("empty-mask sink received %d events", len(sout[0]))
	}
	for _, op := range []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv, isa.OpFSqrt} {
		only := sout[trace.MaskOf(op)]
		if len(only) != blockLen {
			t.Fatalf("mask-of-%v sink got %d events, want %d", op, len(only), blockLen)
		}
		for _, ev := range only {
			if ev.Op != op {
				t.Fatalf("mask-of-%v sink received a %v event", op, ev.Op)
			}
		}
	}
	if len(sout[combos]) != 4*blockLen {
		t.Fatalf("MaskAll sink got %d events, want %d", len(sout[combos]), 4*blockLen)
	}
	if fan.MaskSkips() != serial.MaskSkips() {
		t.Fatalf("mask-skip counts diverged: serial %d, fan-out %d",
			serial.MaskSkips(), fan.MaskSkips())
	}
}

// encodeV1 renders a capture as a version-1 trace stream.
func encodeV1(t *testing.T, capture CaptureFunc) ([]byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	capture(tw)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tw.Count()
}

// TestFanoutFormats adopts the same event stream encoded as v1, plain
// v2, and compressed v2, and requires the fan-out replay of each to
// match both the serial replay and the original stream.
func TestFanoutFormats(t *testing.T) {
	capture := emitMixed(2*blockLen + 137) // a ragged tail block
	want := &trace.Recorder{}
	capture(want)

	type encoding struct {
		name   string
		data   []byte
		events uint64
	}
	v1, n1 := encodeV1(t, capture)
	v2, n2 := encodeStream(t, capture, false)
	v2c, n2c := encodeStream(t, capture, true)
	encodings := []encoding{{"v1", v1, n1}, {"v2", v2, n2}, {"v2-compressed", v2c, n2c}}

	noCapture := func(trace.Sink) { t.Error("adopted trace re-executed its workload") }
	masks := []trace.OpMask{trace.MaskAll, trace.MaskAll, trace.MaskOf(isa.OpFMul),
		trace.MaskAll, trace.MaskOf(isa.OpIMul, isa.OpFDiv), trace.MaskAll, trace.MaskAll, trace.MaskAll}
	for _, enc := range encodings {
		serial := Serial()
		fan := New(8)
		for _, e := range []*Engine{serial, fan} {
			if !e.adoptIngest("fmt", enc.data, enc.events) {
				t.Fatalf("%s: adoptIngest refused the stream", enc.name)
			}
		}
		sn, sout := replayRecorded(t, serial, "fmt", noCapture, masks)
		fn, fout := replayRecorded(t, fan, "fmt", noCapture, masks)
		if sn != fn || sn != enc.events {
			t.Fatalf("%s: replayed %d (serial) / %d (fan-out) events, want %d", enc.name, sn, fn, enc.events)
		}
		for i := range sout {
			sameEvents(t, fmt.Sprintf("%s sink %d", enc.name, i), fout[i], sout[i])
		}
		sameEvents(t, enc.name+" vs original", fout[0], want.Events)
		if fan.FanoutReplays() == 0 {
			t.Fatalf("%s: fan-out engine delivered serially", enc.name)
		}
	}
}

// TestFanoutSpillCorruptionMatchesSerial corrupts a spilled trace
// mid-file on both engines: the re-capture must stay transparent and
// the delivered streams identical, exactly as on the serial path.
func TestFanoutSpillCorruptionMatchesSerial(t *testing.T) {
	type world struct {
		e     *Engine
		execs atomic.Int64
	}
	serial, fan := &world{e: Serial()}, &world{e: New(8)}
	masks := []trace.OpMask{trace.MaskAll, trace.MaskAll, trace.MaskAll, trace.MaskAll,
		trace.MaskAll, trace.MaskAll, trace.MaskAll, trace.MaskAll}
	var streams [2][][]trace.Event
	for wi, w := range []*world{serial, fan} {
		w.e.SetCacheLimit(1)
		w.e.SetTraceDir(t.TempDir())
		capture := countingCapture(&w.execs, 30000, 128)

		if _, out := replayRecorded(t, w.e, "big", capture, masks); len(out[0]) != 30000 {
			t.Fatalf("first replay delivered %d events", len(out[0]))
		}
		path := spillPathOf(t, w.e, "big")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		n, out := replayRecorded(t, w.e, "big", capture, masks)
		if n != 30000 {
			t.Fatalf("replay over corrupt spill: n=%d", n)
		}
		if w.execs.Load() != 2 || w.e.Recaptures() != 1 {
			t.Fatalf("execs=%d recaptures=%d, want 2 and 1", w.execs.Load(), w.e.Recaptures())
		}
		streams[wi] = out
	}
	for i := range streams[0] {
		sameEvents(t, fmt.Sprintf("post-corruption sink %d", i), streams[1][i], streams[0][i])
	}
}

// TestFanoutGroupsPartitioning pins the splitting rules directly.
func TestFanoutGroupsPartitioning(t *testing.T) {
	r1, r2, r3 := &trace.Recorder{}, &trace.Recorder{}, &trace.Recorder{}
	a := maskedRec{rec: r1, mask: trace.MaskAll}
	b := maskedRec{rec: r2, mask: trace.MaskAll}
	c := maskedRec{rec: r3, mask: trace.MaskOf(isa.OpFDiv)}
	masksOf := func(sinks []trace.Sink) []trace.OpMask { return trace.SinkMasks(sinks) }

	// Distinct values → distinct groups.
	sinks := []trace.Sink{a, b, c}
	if g := fanoutGroups(sinks, masksOf(sinks)); len(g) != 3 {
		t.Fatalf("3 distinct sinks split into %d groups", len(g))
	}
	// Repeated occurrences of one value share a group, in order.
	sinks = []trace.Sink{a, b, a}
	g := fanoutGroups(sinks, masksOf(sinks))
	if len(g) != 2 || len(g[0].sinks) != 2 || len(g[1].sinks) != 1 {
		t.Fatalf("duplicate sink grouping: %d groups %v", len(g), g)
	}
	// A shared FanoutGroup key co-schedules distinct sinks.
	sinks = []trace.Sink{trace.Grouped("pair", a), trace.Grouped("pair", c), b}
	g = fanoutGroups(sinks, masksOf(sinks))
	if len(g) != 2 || len(g[0].sinks) != 2 {
		t.Fatalf("keyed grouping: %d groups, first has %d sinks", len(g), len(g[0].sinks))
	}
	if g[0].masks[1] != trace.MaskOf(isa.OpFDiv) {
		t.Fatalf("grouped sink lost its own mask: %04b", g[0].masks[1])
	}
	// A non-comparable sink anywhere defeats the split.
	sinks = []trace.Sink{a, trace.Multi{b, c}}
	if g := fanoutGroups(sinks, masksOf(sinks)); g != nil {
		t.Fatalf("non-comparable sink still split: %v", g)
	}
	if g := fanoutGroups([]trace.Sink{a, nil}, []trace.OpMask{trace.MaskAll, trace.MaskAll}); g != nil {
		t.Fatal("nil sink still split")
	}
}

// TestFanoutNonComparableSinkFallsBackSerial: a replay whose fused sink
// set cannot be partitioned must still deliver correctly — serially.
func TestFanoutNonComparableSinkFallsBackSerial(t *testing.T) {
	capture := emitMixed(blockLen + 11)
	e := New(8)
	inner1, inner2, flat := &trace.Counter{}, &trace.Counter{}, &trace.Counter{}
	n, err := e.ReplayAll("nc", capture, []trace.Sink{trace.Multi{inner1, inner2}, flat})
	if err != nil {
		t.Fatalf("ReplayAll: %v", err)
	}
	if e.FanoutReplays() != 0 {
		t.Fatal("non-comparable sink set went through the fan-out")
	}
	if inner1.Total() != n || inner2.Total() != n || flat.Total() != n {
		t.Fatalf("serial fallback lost events: %d/%d/%d of %d",
			inner1.Total(), inner2.Total(), flat.Total(), n)
	}
}

// TestFanoutDuplicateSinkOccurrences: a sink subscribed twice is owed
// both deliveries in order, through one consumer — the stream it records
// must match the serial engine's double feed exactly.
func TestFanoutDuplicateSinkOccurrences(t *testing.T) {
	capture := emitMixed(2 * blockLen)
	run := func(e *Engine) []trace.Event {
		rec := &trace.Recorder{}
		dup := maskedRec{rec: rec, mask: trace.MaskAll}
		other := maskedRec{rec: &trace.Recorder{}, mask: trace.MaskAll}
		if _, err := e.ReplayAll("dup", capture, []trace.Sink{dup, other, dup}); err != nil {
			t.Fatalf("ReplayAll: %v", err)
		}
		return rec.Events
	}
	sout := run(Serial())
	fan := New(8)
	fout := run(fan)
	sameEvents(t, "duplicate-subscription sink", fout, sout)
	if fan.FanoutReplays() != 1 {
		t.Fatalf("fan-out replays = %d, want 1", fan.FanoutReplays())
	}
}

// TestFanoutBudgetExhaustionFallsBackSerial: with every token held, a
// replay degrades to serial delivery instead of stalling, and tokens
// return when the holder closes.
func TestFanoutBudgetExhaustionFallsBackSerial(t *testing.T) {
	e := New(8)
	if got := e.acquireFanTokens(7); got != 7 {
		t.Fatalf("acquired %d of 7 tokens", got)
	}
	capture := emitMixed(blockLen)
	masks := []trace.OpMask{trace.MaskAll, trace.MaskAll, trace.MaskAll}
	if _, out := replayRecorded(t, e, "starved", capture, masks); len(out[0]) != blockLen {
		t.Fatalf("starved replay delivered %d events", len(out[0]))
	}
	if e.FanoutReplays() != 0 {
		t.Fatal("replay fanned out on a one-token budget")
	}
	e.releaseFanTokens(7)
	if _, err := e.ReplayAll("starved", capture, []trace.Sink{
		maskedRec{rec: &trace.Recorder{}, mask: trace.MaskAll},
		maskedRec{rec: &trace.Recorder{}, mask: trace.MaskAll},
	}); err != nil {
		t.Fatalf("ReplayAll after release: %v", err)
	}
	if e.FanoutReplays() != 1 {
		t.Fatalf("fan-out replays after token release = %d, want 1", e.FanoutReplays())
	}
}

// TestFanoutFaultPoints drives the two injection points in error and
// panic mode: every failure must surface as an error from ReplayAll —
// never as a panic — and must leave the engine able to fan out again
// (no leaked tokens, no stuck consumers).
func TestFanoutFaultPoints(t *testing.T) {
	capture := emitMixed(2 * blockLen)
	masks := []trace.OpMask{trace.MaskAll, trace.MaskAll, trace.MaskAll, trace.MaskAll}
	cases := []struct {
		spec string
		want error
	}{
		{"replay.fanout.publish:count=1", faults.ErrInjected},
		{"replay.fanout.consume:count=1", faults.ErrInjected},
		{"replay.fanout.consume:count=1:panic", ErrSinkPanic},
	}
	for _, tc := range cases {
		e := New(8)
		if err := e.Warm("flt", capture); err != nil {
			t.Fatal(err)
		}
		withFaults(t, tc.spec)
		sinks := make([]trace.Sink, len(masks))
		for i, m := range masks {
			sinks[i] = maskedRec{rec: &trace.Recorder{}, mask: m}
		}
		_, err := e.ReplayAll("flt", capture, sinks)
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.spec, err, tc.want)
		}
		faults.Activate(nil)

		// The pipeline must have fully torn down: a fresh replay fans out.
		before := e.FanoutReplays()
		if _, out := replayRecorded(t, e, "flt", capture, masks); len(out[0]) != 2*blockLen {
			t.Fatalf("%s: post-fault replay delivered %d events", tc.spec, len(out[0]))
		}
		if e.FanoutReplays() != before+1 {
			t.Fatalf("%s: fan-out did not recover (replays %d -> %d)", tc.spec, before, e.FanoutReplays())
		}
	}
}

// TestFanoutProducerPanicReleasesTokens: a panic unwinding through the
// publish loop (an injected panic at the publish point) must stop the
// consumers and return the tokens before propagating.
func TestFanoutProducerPanicReleasesTokens(t *testing.T) {
	capture := emitMixed(blockLen)
	e := New(8)
	if err := e.Warm("pp", capture); err != nil {
		t.Fatal(err)
	}
	withFaults(t, "replay.fanout.publish:count=1:panic")
	sinks := []trace.Sink{
		maskedRec{rec: &trace.Recorder{}, mask: trace.MaskAll},
		maskedRec{rec: &trace.Recorder{}, mask: trace.MaskAll},
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected producer panic did not propagate")
			}
		}()
		_, _ = e.ReplayAll("pp", capture, sinks)
	}()
	faults.Activate(nil)
	e.mu.Lock()
	inUse := e.fanInUse
	e.mu.Unlock()
	if inUse != 0 {
		t.Fatalf("%d fan-out tokens leaked across a producer panic", inUse)
	}
	if _, err := e.ReplayAll("pp", capture, sinks); err != nil {
		t.Fatalf("replay after producer panic: %v", err)
	}
	if e.FanoutReplays() != 1 {
		t.Fatalf("fan-out replays after recovery = %d, want 1", e.FanoutReplays())
	}
}

// TestFanoutStatsHammer is the -race audit of the counters reachable
// from fan-out consumers: concurrent fused replays over several keys
// race a reader looping over every stats accessor.
func TestFanoutStatsHammer(t *testing.T) {
	e := New(8)
	keys := []string{"h0", "h1", "h2", "h3"}
	capture := emitMixed(2 * blockLen)
	for _, k := range keys {
		if err := e.Warm(k, capture); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Captures() + e.Replays() + e.Recaptures() + e.ReplayedEvents() +
				e.DecodeOnceHits() + e.FanoutReplays() + e.RingStalls() +
				e.DeliveredEvents() + e.MaskSkips() + e.SpillRetries() +
				e.DegradedCaptures() + e.StoreHits() + e.StorePuts()
			_ = e.CachedBytes() + e.DecodedBlockBytes() + int64(e.CachedTraces()) +
				int64(e.DecodedEntries()) + int64(e.FanOut()) + int64(e.Workers())
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				key := keys[(w+iter)%len(keys)]
				sinks := make([]trace.Sink, 6)
				counters := make([]*trace.Counter, len(sinks))
				for i := range sinks {
					counters[i] = &trace.Counter{}
					sinks[i] = counters[i]
				}
				n, err := e.ReplayAll(key, capture, sinks)
				if err != nil {
					t.Errorf("worker %d: ReplayAll(%q): %v", w, key, err)
					return
				}
				for i, c := range counters {
					if c.Total() != n {
						t.Errorf("worker %d: sink %d saw %d of %d events", w, i, c.Total(), n)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if e.FanoutReplays() == 0 {
		t.Fatal("hammer never fanned out")
	}
	// Per-sink accounting must balance: six sinks saw every event of
	// every replay, serial or fanned.
	want := e.ReplayedEvents() * 6
	if e.DeliveredEvents() != want {
		t.Fatalf("delivered %d per-sink events, want %d", e.DeliveredEvents(), want)
	}
}
