package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"memotable/internal/faults"
	"memotable/internal/trace"
)

// encodeStream runs a capture through the v2 writer and returns the
// encoded stream an external producer would send over a socket.
func encodeStream(t *testing.T, capture CaptureFunc, compress bool) ([]byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriterV2(&buf, compress)
	if err != nil {
		t.Fatal(err)
	}
	capture(tw)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tw.Count()
}

// feedChunked pushes a stream into a session in pseudo-random chunks.
func feedChunked(t *testing.T, s *IngestSession, data []byte, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(48<<10)
		if off+n > len(data) {
			n = len(data) - off
		}
		if err := s.Feed(data[off : off+n]); err != nil {
			t.Fatalf("feed at offset %d: %v", off, err)
		}
		off += n
	}
}

// TestIngestMatchesOfflineReplay is the acceptance differential: a
// stream fed frame-at-a-time through an ingest session delivers the
// byte-identical event sequence — and therefore identical final sink
// state — as an offline ReplayAll of the same capture.
func TestIngestMatchesOfflineReplay(t *testing.T) {
	capture := emitN(60000, 128)
	for _, compress := range []bool{false, true} {
		data, events := encodeStream(t, capture, compress)

		e := New(2)
		var liveRec trace.Recorder
		var liveCnt trace.Counter
		s := e.NewIngest("live", IngestOptions{Sinks: []trace.Sink{&liveRec, &liveCnt}})
		feedChunked(t, s, data, 31)
		res, err := s.Seal()
		if err != nil {
			t.Fatalf("compress=%v: seal: %v", compress, err)
		}
		if res.Stats.Events != events || res.Stats.Frames == 0 {
			t.Fatalf("compress=%v: sealed stats %+v, want %d events", compress, res.Stats, events)
		}

		off := New(2)
		var offRec trace.Recorder
		var offCnt trace.Counter
		if _, err := off.ReplayAll("off", capture, []trace.Sink{&offRec, &offCnt}); err != nil {
			t.Fatal(err)
		}
		if len(liveRec.Events) != len(offRec.Events) {
			t.Fatalf("compress=%v: live delivered %d events, offline %d", compress, len(liveRec.Events), len(offRec.Events))
		}
		for i := range liveRec.Events {
			if liveRec.Events[i] != offRec.Events[i] {
				t.Fatalf("compress=%v: event %d: live %+v offline %+v", compress, i, liveRec.Events[i], offRec.Events[i])
			}
		}
		if liveCnt != offCnt {
			t.Fatalf("compress=%v: live counts %v, offline %v", compress, liveCnt, offCnt)
		}
		if e.IngestedEvents() != events || e.SealedIngests() != 1 {
			t.Fatalf("compress=%v: engine counters events=%d sealed=%d", compress, e.IngestedEvents(), e.SealedIngests())
		}
	}
}

// TestIngestSealedBecomesWarmEntry: sealing a live session settles the
// stream into the memory tier and the persistent store, so a later
// Replay of the key — in this engine or a cold one sharing the store —
// never executes the workload.
func TestIngestSealedBecomesWarmEntry(t *testing.T) {
	dir := t.TempDir()
	capture := emitN(20000, 64)
	data, events := encodeStream(t, capture, true)

	e := New(2)
	e.SetStore(openStore(t, dir))
	s := e.NewIngest("warm", IngestOptions{Sinks: []trace.Sink{&trace.Counter{}}})
	if err := s.Feed(data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Retained || !res.Adopted || !res.Published {
		t.Fatalf("seal result %+v, want retained+adopted+published", res)
	}

	// Same engine: the adopted entry replays without capturing.
	mustNotRun := func(trace.Sink) { t.Fatal("workload executed despite warm ingest entry") }
	var rec trace.Recorder
	if n, err := e.Replay("warm", mustNotRun, &rec); err != nil || n != events {
		t.Fatalf("replay after seal: n=%d err=%v", n, err)
	}
	if e.Captures() != 0 || e.Replays() != 1 {
		t.Fatalf("captures=%d replays=%d, want 0/1", e.Captures(), e.Replays())
	}

	// Cold engine sharing the store: the sealed entry is a store hit.
	b := New(2)
	b.SetStore(openStore(t, dir))
	if n, err := b.Replay("warm", mustNotRun, &trace.Counter{}); err != nil || n != events {
		t.Fatalf("cold replay: n=%d err=%v", n, err)
	}
	if b.StoreHits() != 1 || b.Captures() != 0 {
		t.Fatalf("cold engine storeHits=%d captures=%d, want 1/0", b.StoreHits(), b.Captures())
	}
}

// TestIngestTornTailFailsSeal: a producer that dies mid-frame leaves a
// torn tail; Seal must fail hard and must not install anything.
func TestIngestTornTailFailsSeal(t *testing.T) {
	dir := t.TempDir()
	data, _ := encodeStream(t, emitN(20000, 64), false)

	e := New(1)
	e.SetStore(openStore(t, dir))
	s := e.NewIngest("torn", IngestOptions{Sinks: []trace.Sink{&trace.Counter{}}})
	if err := s.Feed(data[:len(data)-75]); err != nil {
		t.Fatal(err)
	}
	_, err := s.Seal()
	if !errors.Is(err, ErrIngestBroken) || !errors.Is(err, trace.ErrBadTrace) {
		t.Fatalf("seal err = %v, want ErrIngestBroken wrapping ErrBadTrace", err)
	}
	if got := storeEntries(t, dir); len(got) != 0 {
		t.Fatalf("torn session installed store entries: %v", got)
	}
	if e.SealedIngests() != 0 {
		t.Fatalf("torn session counted as sealed")
	}
	// The session is broken for good.
	if err := s.Feed(data); !errors.Is(err, ErrIngestBroken) {
		t.Fatalf("feed after broken seal err = %v", err)
	}
}

// TestIngestMidStreamCorruption: a frame failing its checksum breaks
// the session permanently at the damaged frame; earlier frames were
// delivered, later bytes are refused, nothing installs.
func TestIngestMidStreamCorruption(t *testing.T) {
	dir := t.TempDir()
	data, _ := encodeStream(t, emitN(60000, 64), false)
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x01

	e := New(1)
	e.SetStore(openStore(t, dir))
	var rec trace.Recorder
	s := e.NewIngest("bad", IngestOptions{Sinks: []trace.Sink{&rec}})
	var ferr error
	for off := 0; off < len(corrupt); off += 8 << 10 {
		end := off + 8<<10
		if end > len(corrupt) {
			end = len(corrupt)
		}
		if ferr = s.Feed(corrupt[off:end]); ferr != nil {
			break
		}
	}
	if !errors.Is(ferr, ErrIngestBroken) || !errors.Is(ferr, trace.ErrBadTrace) {
		t.Fatalf("feed err = %v, want ErrIngestBroken wrapping ErrBadTrace", ferr)
	}
	if len(rec.Events) == 0 {
		t.Fatal("frames before the corruption should have been delivered")
	}
	if _, err := s.Seal(); !errors.Is(err, ErrIngestBroken) {
		t.Fatalf("seal on broken session err = %v", err)
	}
	if got := storeEntries(t, dir); len(got) != 0 {
		t.Fatalf("broken session installed store entries: %v", got)
	}
}

// TestIngestEmptyStream: a header-only stream is a valid empty capture
// and seals cleanly.
func TestIngestEmptyStream(t *testing.T) {
	data, _ := encodeStream(t, func(trace.Sink) {}, false)
	e := New(1)
	s := e.NewIngest("empty", IngestOptions{Sinks: []trace.Sink{&trace.Counter{}}})
	if err := s.Feed(data); err != nil {
		t.Fatal(err)
	}
	res, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Events != 0 || !res.Adopted {
		t.Fatalf("empty stream seal %+v", res)
	}
	if _, err := s.Seal(); err == nil {
		t.Fatal("double seal succeeded")
	}
}

// TestIngestSnapshots: rolling snapshots fire at the configured period
// with monotonic stats.
func TestIngestSnapshots(t *testing.T) {
	data, events := encodeStream(t, emitN(60000, 64), false)
	e := New(1)
	var snaps []IngestStats
	s := e.NewIngest("snap", IngestOptions{
		Sinks:         []trace.Sink{&trace.Counter{}},
		SnapshotEvery: 10000,
		OnSnapshot:    func(st IngestStats) { snaps = append(snaps, st) },
	})
	feedChunked(t, s, data, 33)
	if _, err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots fired")
	}
	var prev uint64
	for i, st := range snaps {
		if st.Events <= prev {
			t.Fatalf("snapshot %d not monotonic: %d after %d", i, st.Events, prev)
		}
		prev = st.Events
	}
	if prev > events {
		t.Fatalf("snapshot events %d exceed stream events %d", prev, events)
	}
}

// TestIngestRetainOverflow: a stream outgrowing the retain limit still
// replays live but cannot be sealed into a warm entry.
func TestIngestRetainOverflow(t *testing.T) {
	dir := t.TempDir()
	data, events := encodeStream(t, emitN(30000, 64), false)
	e := New(1)
	e.SetStore(openStore(t, dir))
	var cnt trace.Counter
	s := e.NewIngest("big", IngestOptions{Sinks: []trace.Sink{&cnt}, RetainLimit: 1024})
	feedChunked(t, s, data, 35)
	res, err := s.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retained || res.Adopted || res.Published {
		t.Fatalf("overflowed session sealed as warm: %+v", res)
	}
	if res.Stats.Events != events {
		t.Fatalf("overflowed session delivered %d of %d events", res.Stats.Events, events)
	}
	if got := storeEntries(t, dir); len(got) != 0 {
		t.Fatalf("overflowed session installed store entries: %v", got)
	}
}

// TestIngestFaultPoints drives each ingest.* injection point and checks
// the failure surfaces at the right edge with nothing installed.
func TestIngestFaultPoints(t *testing.T) {
	defer faults.Activate(nil)
	data, _ := encodeStream(t, emitN(20000, 64), false)

	for _, tc := range []struct {
		point    string
		sealOnly bool
	}{
		{faults.IngestFeed, false},
		{faults.IngestFrame, false},
		{faults.IngestSeal, true},
	} {
		plan, err := faults.New(1, faults.Rule{Point: tc.point, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		faults.Activate(plan)
		dir := t.TempDir()
		e := New(1)
		e.SetStore(openStore(t, dir))
		s := e.NewIngest("faulted", IngestOptions{Sinks: []trace.Sink{&trace.Counter{}}})
		ferr := s.Feed(data)
		_, serr := s.Seal()
		faults.Activate(nil)
		if tc.sealOnly {
			if ferr != nil {
				t.Fatalf("%s: feed failed: %v", tc.point, ferr)
			}
			if !errors.Is(serr, ErrIngestBroken) || !errors.Is(serr, faults.ErrInjected) {
				t.Fatalf("%s: seal err = %v, want injected ingest failure", tc.point, serr)
			}
		} else {
			if !errors.Is(ferr, ErrIngestBroken) || !errors.Is(ferr, faults.ErrInjected) {
				t.Fatalf("%s: feed err = %v, want injected ingest failure", tc.point, ferr)
			}
			if serr == nil {
				t.Fatalf("%s: seal succeeded on broken session", tc.point)
			}
		}
		if got := storeEntries(t, dir); len(got) != 0 {
			t.Fatalf("%s: faulted session installed store entries: %v", tc.point, got)
		}
	}
}

// TestIngestConcurrentWithReplayHammer is the -race audit of the rolling
// counters: a live ingest session, a replay fan-out on other keys, and a
// stats reader all run concurrently against one engine.
func TestIngestConcurrentWithReplayHammer(t *testing.T) {
	data, events := encodeStream(t, emitN(40000, 64), true)
	dir := t.TempDir()
	e := New(4)
	e.SetStore(openStore(t, dir))

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var wg sync.WaitGroup

	// Stats reader: every engine counter, continuously.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Captures() + e.Replays() + e.Recaptures() + e.ReplayedEvents() +
				e.StoreHits() + e.StorePuts() + e.DecodeOnceHits() +
				e.IngestedFrames() + e.IngestedEvents() + e.SealedIngests()
		}
	}()

	// Replay traffic on unrelated keys.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 20; i++ {
				var cnt trace.Counter
				if _, err := e.Replay("replay-"+key, emitN(5000, 32), &cnt); err != nil {
					t.Errorf("replay %s: %v", key, err)
					return
				}
			}
		}(w)
	}

	// The live session, on its own goroutine like a socket handler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var snapEvents uint64
		s := e.NewIngest("hammer-live", IngestOptions{
			Sinks:         []trace.Sink{&trace.Counter{}},
			SnapshotEvery: 5000,
			OnSnapshot:    func(st IngestStats) { snapEvents = st.Events },
		})
		feedChunked(t, s, data, 37)
		res, err := s.Seal()
		if err != nil {
			t.Errorf("seal: %v", err)
			return
		}
		if res.Stats.Events != events || snapEvents == 0 {
			t.Errorf("live session delivered %d of %d events (snap %d)", res.Stats.Events, events, snapEvents)
		}
	}()

	wg.Wait()
	close(stop)
	<-readerDone

	if e.IngestedEvents() != events {
		t.Fatalf("ingested events %d, want %d", e.IngestedEvents(), events)
	}
	if e.SealedIngests() != 1 {
		t.Fatalf("sealed ingests %d, want 1", e.SealedIngests())
	}
}
