package engine

import (
	"errors"
	"fmt"
	"io"

	"memotable/internal/faults"
	"memotable/internal/trace"
)

// Live trace ingestion. The capture/replay pipeline above assumes the
// whole operand stream exists before the first sink sees an event — the
// engine runs the workload, the encoding settles into a tier, replays
// fan it out. An IngestSession inverts that: an external producer pushes
// encoded v2 bytes as it generates them (over a socket, a pipe, a file
// tail), the session decodes complete frames incrementally
// (trace.StreamDecoder) and feeds each one through the same fused sink
// fan-out a ReplayAll would use, so MEMO-TABLE banks simulate the
// workload while it is still running. When the producer finishes, Seal
// verifies the stream ended at a clean frame boundary and settles the
// accumulated bytes exactly where a local capture would have gone: the
// engine's memory tier and the persistent trace store, so the live
// session becomes a warm cache entry for every later run.
//
// A session is single-producer: Feed and Seal must be called from one
// goroutine. Everything a session shares with the rest of the engine —
// the ingest counters, cache adoption, the store publish — is safe
// against concurrent Replay/ReplayAll traffic and stat reads.

// ErrIngestBroken reports that an ingest session has failed — corrupt
// frame, injected fault, torn tail at seal — and will accept no more
// bytes. The sinks may have been partially fed; the caller must discard
// the session's cell.
var ErrIngestBroken = errors.New("engine: ingest session broken")

// DefaultIngestRetain bounds how many raw stream bytes a session retains
// for sealing when the caller does not say: the engine's default cache
// budget, since a stream that outgrows it could not be adopted anyway.
const DefaultIngestRetain = DefaultCacheBytes

// IngestStats is a point-in-time view of a session's progress.
type IngestStats struct {
	Frames uint64 // complete frames delivered to the sinks
	Events uint64 // events delivered to the sinks
	Bytes  int64  // raw stream bytes fed so far
}

// IngestOptions configures a live ingest session.
type IngestOptions struct {
	// Sinks is the replay fan-out fed as frames arrive. Frames are
	// delivered in one fused pass with per-frame class masks, exactly
	// like ReplayAll's block delivery: a sink whose advertised OpMask
	// has no class in a frame skips that frame.
	Sinks []trace.Sink

	// SnapshotEvery invokes OnSnapshot each time the delivered event
	// count crosses a multiple of this many events (0 disables).
	SnapshotEvery uint64

	// OnSnapshot receives rolling progress from inside Feed, on the
	// producer's goroutine, after the crossing frame has been delivered.
	OnSnapshot func(IngestStats)

	// RetainLimit bounds the raw bytes kept for Seal to settle into the
	// cache and store (<= 0 selects DefaultIngestRetain). A stream that
	// outgrows the limit still replays live — the session just cannot be
	// sealed into a warm entry, which Seal reports via Retained=false.
	RetainLimit int64
}

// IngestResult reports what Seal settled.
type IngestResult struct {
	Stats IngestStats
	// Retained reports whether the full raw stream was held within the
	// retain limit (the precondition for adoption and publish).
	Retained bool
	// Adopted reports whether the stream settled into the engine's
	// memory tier under the session key.
	Adopted bool
	// Published reports whether the stream was installed in the
	// persistent trace store under the session key.
	Published bool
}

// IngestSession is one live stream being decoded, replayed, and
// accumulated for sealing. Construct with Engine.NewIngest.
type IngestSession struct {
	e     *Engine
	key   string
	dec   *trace.StreamDecoder
	fan   []trace.Sink
	masks []trace.OpMask
	opts  IngestOptions

	// Fan-out delivery (fanout.go): built lazily on the first frame when
	// the engine's budget allows, torn down at Seal or on failure. While
	// live, frames are broadcast to the pipe's consumers and flushed
	// before the decoder may reuse its frame buffer.
	pipe      *sinkFanout
	pipeTried bool

	raw      []byte // retained stream bytes, nil after overflow
	overflow bool
	nextSnap uint64
	sealed   bool
	err      error // latched first failure
}

// NewIngest opens a live ingest session for a workload key. The key
// plays the same role as a Replay key: it is the fingerprint under
// which Seal settles the stream into the cache and the persistent
// store, so a later Replay(key, ...) — in this process or any other
// sharing the store — is a hit instead of a capture.
func (e *Engine) NewIngest(key string, opts IngestOptions) *IngestSession {
	if opts.RetainLimit <= 0 {
		opts.RetainLimit = DefaultIngestRetain
	}
	s := &IngestSession{
		e:    e,
		key:  key,
		dec:  trace.NewStreamDecoder(),
		fan:  opts.Sinks,
		opts: opts,
	}
	s.masks = trace.SinkMasks(opts.Sinks)
	if opts.SnapshotEvery > 0 {
		s.nextSnap = opts.SnapshotEvery
	}
	// A closed engine accepts no new sessions: the failure is latched so
	// the first Feed or Seal reports it, same shape as any broken session.
	e.mu.Lock()
	if e.closed {
		s.err = fmt.Errorf("%w: %w", ErrIngestBroken, ErrClosed)
	}
	e.mu.Unlock()
	return s
}

// Stats returns the session's current progress.
func (s *IngestSession) Stats() IngestStats {
	return IngestStats{Frames: s.dec.Frames(), Events: s.dec.Events(), Bytes: s.dec.BytesIn()}
}

// Err returns the session's latched failure, nil while healthy.
func (s *IngestSession) Err() error { return s.err }

// fail latches the session's first failure and returns it wrapped. A
// live fan-out pipeline is torn down first, so a broken session never
// strands consumer goroutines or fan-out tokens.
func (s *IngestSession) fail(err error) error {
	if s.pipe != nil {
		s.pipe.abort(fmt.Errorf("%w: %w", ErrIngestBroken, err))
		s.teardownPipe()
	}
	if s.err == nil {
		s.err = fmt.Errorf("%w: %w", ErrIngestBroken, err)
	}
	return s.err
}

// teardownPipe closes the fan-out pipeline, returning its latched error
// (nil after a clean life). Safe to call with no pipe.
func (s *IngestSession) teardownPipe() error {
	if s.pipe == nil {
		return nil
	}
	err := s.pipe.close()
	s.pipe = nil
	return err
}

// Feed pushes arriving stream bytes and delivers every frame they
// complete to the sinks, in stream order. A healthy mid-frame tail is
// not an error — the bytes wait for the rest of their frame. Corruption
// (a frame failing its checksum, a bad stream header) and injected
// ingest faults break the session permanently: the error is latched,
// returned, and repeated by every later call.
func (s *IngestSession) Feed(p []byte) error {
	if s.err != nil {
		return s.err
	}
	if s.sealed {
		return s.fail(errors.New("feed after seal"))
	}
	if ferr := faults.Inject(faults.IngestFeed); ferr != nil {
		return s.fail(fmt.Errorf("feed rejected: %w", ferr))
	}
	if !s.overflow {
		if int64(len(s.raw))+int64(len(p)) > s.opts.RetainLimit {
			s.raw, s.overflow = nil, true
		} else {
			s.raw = append(s.raw, p...)
		}
	}
	s.e.ingestBytes.Add(uint64(len(p)))
	s.dec.Feed(p)
	return s.drain()
}

// drain delivers every currently complete frame. ErrStreamOpen is the
// healthy resting state between feeds; io.EOF is drain's clean end after
// CloseInput; anything else breaks the session.
func (s *IngestSession) drain() error {
	for {
		evs, err := s.dec.NextFrame()
		if errors.Is(err, trace.ErrStreamOpen) || errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return s.fail(err)
		}
		if err := s.deliver(evs); err != nil {
			return err
		}
		if s.nextSnap > 0 && s.dec.Events() >= s.nextSnap {
			for s.nextSnap <= s.dec.Events() {
				s.nextSnap += s.opts.SnapshotEvery
			}
			if s.opts.OnSnapshot != nil {
				s.opts.OnSnapshot(s.Stats())
			}
		}
	}
}

// deliver fans one decoded frame out to the sinks, skipping sinks whose
// class mask misses every event in the frame — the per-frame analogue of
// emitBlocks's per-block masking. When the engine's fan-out budget
// allows, delivery goes through the same pipeline a block replay uses:
// the frame is broadcast to per-sink-group consumers and flushed before
// returning, because the stream decoder reuses the frame buffer on the
// next decode — and because OnSnapshot's contract ("after the crossing
// frame has been delivered") requires the sinks settled.
func (s *IngestSession) deliver(evs []trace.Event) error {
	if ferr := faults.Inject(faults.IngestFrame); ferr != nil {
		return s.fail(fmt.Errorf("frame delivery: %w", ferr))
	}
	var mask trace.OpMask
	for i := range evs {
		mask |= 1 << evs[i].Op
	}
	if !s.pipeTried {
		s.pipeTried = true
		s.pipe = s.e.newSinkFanout(s.fan, s.masks)
	}
	if s.pipe != nil {
		err := s.pipe.publish(trace.Block{Events: evs, Mask: mask})
		if err == nil {
			err = s.pipe.flush()
		}
		if err != nil {
			return s.fail(fmt.Errorf("frame delivery: %w", err))
		}
	} else {
		fed := 0
		for i, sink := range s.fan {
			if s.masks[i]&mask != 0 {
				trace.EmitAll(sink, evs)
				fed++
			}
		}
		s.e.deliveredEv.Add(uint64(fed) * uint64(len(evs)))
		s.e.maskSkips.Add(uint64(len(s.fan) - fed))
	}
	s.e.ingestFrames.Add(1)
	s.e.ingestEvents.Add(uint64(len(evs)))
	return nil
}

// Seal declares the stream finished: the remaining buffered frames are
// delivered, the stream must end at a clean frame boundary (a torn tail
// is corruption here, exactly as a torn file would be), and the
// accumulated bytes settle where a local capture's would — the memory
// tier, budget permitting, and the persistent store when one is
// attached. Store and adoption failures do not fail the seal (the store
// is an accelerator, same contract as putToStore); what settled is
// reported in the result. A second Seal, or a Seal on a broken session,
// fails.
func (s *IngestSession) Seal() (IngestResult, error) {
	if s.err != nil {
		return IngestResult{Stats: s.Stats()}, s.err
	}
	if s.sealed {
		return IngestResult{Stats: s.Stats()}, s.fail(errors.New("double seal"))
	}
	s.sealed = true
	s.dec.CloseInput()
	// With the input closed, drain runs to a clean io.EOF or fails on a
	// torn/corrupt tail — ErrStreamOpen can no longer occur.
	if err := s.drain(); err != nil {
		return IngestResult{Stats: s.Stats()}, err
	}
	// Every frame was flushed through the pipeline as it was delivered,
	// so this teardown is a formality — but a consumer abort racing the
	// final flush would surface here, and the sinks must be settled
	// before the stream is adopted as a warm entry.
	if err := s.teardownPipe(); err != nil {
		return IngestResult{Stats: s.Stats()}, s.fail(fmt.Errorf("frame delivery: %w", err))
	}
	res := IngestResult{Stats: s.Stats(), Retained: !s.overflow}
	if ferr := faults.Inject(faults.IngestSeal); ferr != nil {
		return res, s.fail(fmt.Errorf("seal rejected: %w", ferr))
	}
	s.e.sealedIngests.Add(1)
	if !res.Retained {
		return res, nil
	}
	res.Adopted = s.e.adoptIngest(s.key, s.raw, s.dec.Events())
	res.Published = s.e.publishIngest(s.key, s.raw)
	return res, nil
}

// adoptIngest settles a sealed stream into the engine's memory tier
// under key, the same way loadFromStore adopts a store hit: only into
// an empty slot (an in-flight or settled entry must not be shadowed)
// and only when the byte budget covers the stream.
func (e *Engine) adoptIngest(key string, data []byte, events uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	ent, ok := e.traces[key]
	if !ok {
		ent = &traceEntry{key: key}
		e.traces[key] = ent
	}
	if ent.state != stateEmpty && ent.state != stateDeclined {
		return false
	}
	n := int64(len(data))
	if !e.budget.Reserve(n) {
		return false
	}
	e.budget.Commit(n, n)
	e.memBytes += n
	ent.data = data
	ent.events = events
	ent.state = stateMemory
	ent.path = ""
	e.cond.Broadcast()
	return true
}

// publishIngest installs a sealed stream in the persistent store under
// key. Failures are dropped, same contract as putToStore: the store is
// an accelerator, and the next cold run's capture heals it.
func (e *Engine) publishIngest(key string, data []byte) bool {
	e.mu.Lock()
	st := e.tstore
	e.mu.Unlock()
	if st == nil {
		return false
	}
	if err := st.Put(key, data); err != nil {
		return false
	}
	e.storePuts.Add(1)
	return true
}
