package engine

import (
	"context"
	"sync"
)

// The budget layer. Every byte the engine's cache tiers hold — encoded
// traces in the memory tier, decoded event blocks — is accounted against
// a BudgetAccountant before it is buffered: Reserve claims space ahead
// of use, Commit converts a reservation into held bytes once the data
// settles, and Release returns space when an entry is invalidated. The
// accountant is the engine's single space-control seam: tiers never
// consult a raw limit, they ask the accountant, so a caller that wants
// finer space control (a per-tenant budget, say) swaps the accountant
// rather than patching tier code.
//
// Budget is the hierarchical implementation: child budgets nest under a
// parent, and a reservation must clear every level — a tenant child can
// never hold bytes its own limit forbids, nor bytes the shared parent
// has no room for. Selective memoization's contract (Acar, Blelloch &
// Harper: callers control the space memoization may consume) maps to
// exactly this shape when one shared cache serves many tenants: the
// engine owns the root, each tenant reserves through its child, and a
// tenant that exhausts its slice degrades its own workloads to direct
// re-execution without evicting — or even observing — another tenant's
// entries.

// BudgetAccountant is the narrow reserve/commit/release interface the
// cache tiers charge bytes through.
type BudgetAccountant interface {
	// Reserve claims n bytes ahead of use. It either claims the bytes at
	// every level of the hierarchy and returns true, or has no effect and
	// returns false.
	Reserve(n int64) bool
	// Commit settles a reservation: reserved bytes (previously claimed by
	// Reserve) are returned and used bytes are recorded as held. used may
	// be smaller than reserved — a capture that reserved frame-granular
	// chunks commits its exact encoded size.
	Commit(reserved, used int64)
	// Release returns claimed bytes: reserved bytes still un-committed,
	// and used bytes whose data has been dropped.
	Release(reserved, used int64)
	// SetLimit adjusts the accountant's own byte limit. A non-positive
	// limit rejects every reservation.
	SetLimit(n int64)
	// Limit returns the accountant's own byte limit.
	Limit() int64
	// Used returns the bytes committed and still held.
	Used() int64
	// Reserved returns the bytes reserved but not yet committed.
	Reserved() int64
}

// Budget is a hierarchical BudgetAccountant: an operation against a
// child propagates to its parent, so used+reserved never exceeds the
// limit at any level. The zero value is unusable; construct the root
// with NewBudget and children with Child.
type Budget struct {
	parent *Budget

	mu       sync.Mutex
	limit    int64
	used     int64
	reserved int64
}

// NewBudget builds a root budget with the given byte limit.
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Child builds a budget nested under b: reservations must clear both the
// child's limit and every ancestor's, so the child bounds its holder's
// slice of the shared space without being able to exceed it.
func (b *Budget) Child(limit int64) *Budget {
	return &Budget{parent: b, limit: limit}
}

// Parent returns the budget this one nests under (nil at the root).
func (b *Budget) Parent() *Budget { return b.parent }

// Reserve implements BudgetAccountant. The local claim is taken first
// and unwound if any ancestor rejects, so a failed Reserve has no
// effect at any level.
func (b *Budget) Reserve(n int64) bool {
	b.mu.Lock()
	if b.used+b.reserved+n > b.limit {
		b.mu.Unlock()
		return false
	}
	b.reserved += n
	b.mu.Unlock()
	if b.parent != nil && !b.parent.Reserve(n) {
		b.mu.Lock()
		b.reserved -= n
		b.mu.Unlock()
		return false
	}
	return true
}

// Commit implements BudgetAccountant.
func (b *Budget) Commit(reserved, used int64) {
	b.mu.Lock()
	b.reserved -= reserved
	b.used += used
	b.mu.Unlock()
	if b.parent != nil {
		b.parent.Commit(reserved, used)
	}
}

// Release implements BudgetAccountant.
func (b *Budget) Release(reserved, used int64) {
	b.mu.Lock()
	b.reserved -= reserved
	b.used -= used
	b.mu.Unlock()
	if b.parent != nil {
		b.parent.Release(reserved, used)
	}
}

// SetLimit implements BudgetAccountant. Only this level's limit moves;
// ancestors keep theirs.
func (b *Budget) SetLimit(n int64) {
	b.mu.Lock()
	b.limit = n
	b.mu.Unlock()
}

// Limit implements BudgetAccountant.
func (b *Budget) Limit() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limit
}

// Used implements BudgetAccountant.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Reserved implements BudgetAccountant.
func (b *Budget) Reserved() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserved
}

// budgetKey carries a per-call accountant through a context.
type budgetKey struct{}

// WithBudget returns a context that charges cache bytes reserved on
// behalf of its calls to acct instead of the engine's root budget. The
// accountant must admit no bytes the engine's root would reject — in
// practice, pass a Budget built by Engine.Budget().Child, whose
// reservations clear the root by construction. The service layer uses
// this to nest per-tenant budgets under the engine's global limit.
func WithBudget(ctx context.Context, acct BudgetAccountant) context.Context {
	return context.WithValue(ctx, budgetKey{}, acct)
}

// budgetFrom resolves the accountant a call charges: the context's, or
// the engine's root budget.
func (e *Engine) budgetFrom(ctx context.Context) BudgetAccountant {
	if acct, ok := ctx.Value(budgetKey{}).(BudgetAccountant); ok && acct != nil {
		return acct
	}
	return e.budget
}

// Budget returns the engine's root budget — the global cache limit every
// tier reserves against. Build per-tenant slices with Budget().Child.
func (e *Engine) Budget() *Budget { return e.budget }
