package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"memotable/internal/trace"
)

func TestCloseIdempotent(t *testing.T) {
	e := New(1)
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestClosedEngineRefusesWork(t *testing.T) {
	e := New(1)
	var cnt trace.Counter
	if _, err := e.ReplayAll("k", emitN(100, 16), []trace.Sink{&cnt}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if err := e.Warm("k2", emitN(100, 16)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Warm after Close: %v, want ErrClosed", err)
	}
	if _, err := e.ReplayAll("k", emitN(100, 16), []trace.Sink{&cnt}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReplayAll after Close: %v, want ErrClosed", err)
	}
	if _, err := e.RunPassContext(context.Background(), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunPassContext after Close: %v, want ErrClosed", err)
	}
	sess := e.NewIngest("live", IngestOptions{})
	err := sess.Feed([]byte{0})
	if !errors.Is(err, ErrClosed) || !errors.Is(err, ErrIngestBroken) {
		t.Fatalf("ingest Feed after Close: %v, want ErrClosed and ErrIngestBroken", err)
	}
}

// TestCloseWaitsForInflight: Close must not tear the spill tier down
// under a pass still replaying — it blocks until in-flight work drains.
func TestCloseWaitsForInflight(t *testing.T) {
	e := New(2)
	started := make(chan struct{})
	release := make(chan struct{})
	capture := func(s trace.Sink) {
		close(started)
		<-release
		emitN(100, 16)(s)
	}

	replayDone := make(chan error, 1)
	go func() {
		var cnt trace.Counter
		_, err := e.ReplayAll("slow", capture, []trace.Sink{&cnt})
		replayDone <- err
	}()
	<-started

	closeDone := make(chan error, 1)
	go func() { closeDone <- e.Close() }()

	select {
	case err := <-closeDone:
		t.Fatalf("Close returned (%v) while a replay was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-replayDone; err != nil {
		t.Fatalf("in-flight replay: %v", err)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after in-flight work drained")
	}
}

func TestStatsSnapshotMatchesGetters(t *testing.T) {
	e := New(2)
	defer e.Close()
	var cnt trace.Counter
	for i := 0; i < 3; i++ {
		if _, err := e.ReplayAll("k", emitN(1000, 64), []trace.Sink{&cnt}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Captures != e.Captures() || st.Replays != e.Replays() {
		t.Fatalf("snapshot captures/replays %d/%d, getters %d/%d",
			st.Captures, st.Replays, e.Captures(), e.Replays())
	}
	if st.CachedTraces != e.CachedTraces() || st.CachedBytes != e.CachedBytes() {
		t.Fatalf("snapshot cache shape %d/%d, getters %d/%d",
			st.CachedTraces, st.CachedBytes, e.CachedTraces(), e.CachedBytes())
	}
	if st.Workers != e.Workers() || st.FanOut != e.FanOut() {
		t.Fatalf("snapshot workers/fanout %d/%d, getters %d/%d",
			st.Workers, st.FanOut, e.Workers(), e.FanOut())
	}
	if st.BudgetLimit != e.Budget().Limit() || st.BudgetUsed <= 0 {
		t.Fatalf("snapshot budget %d/%d inconsistent with root budget %d/%d",
			st.BudgetLimit, st.BudgetUsed, e.Budget().Limit(), e.Budget().Used())
	}
}

func TestTiersAccountTheCache(t *testing.T) {
	e := New(1)
	defer e.Close()
	var cnt trace.Counter
	if _, err := e.ReplayAll("k", emitN(1000, 64), []trace.Sink{&cnt}); err != nil {
		t.Fatal(err)
	}
	byName := map[string]TierStats{}
	for _, ts := range e.TierStats() {
		byName[ts.Name] = ts
	}
	mem, ok := byName["memory"]
	if !ok || mem.Entries != 1 || mem.Bytes != e.CachedBytes() {
		t.Fatalf("memory tier %+v, want 1 entry of %d bytes", mem, e.CachedBytes())
	}
	blocks := byName["blocks"]
	if blocks.Entries != 1 || blocks.Bytes != e.DecodedBlockBytes() {
		t.Fatalf("blocks tier %+v, want 1 entry of %d bytes", blocks, e.DecodedBlockBytes())
	}
	if spill := byName["spill"]; spill.Entries != 0 || spill.Bytes != 0 {
		t.Fatalf("spill tier %+v, want empty", spill)
	}
	if _, ok := byName["store"]; ok {
		t.Fatal("store tier listed with no store attached")
	}
}
