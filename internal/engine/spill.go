package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"

	"memotable/internal/faults"
)

// spillTempSuffix marks a spill file that has not been sealed yet. A
// capture streams into "trace-*.mtrc.tmp" and the file is renamed to
// "trace-*.mtrc" only after a successful sync-and-close, so a reader can
// never observe a torn file under the durable name and a process death
// mid-capture leaves only suffixed garbage for sweepSpillOrphans.
const spillTempSuffix = ".tmp"

// sweepSpillOrphans removes spill temp files a dead process left behind.
// Sealed spill files (no temp suffix) are never touched. The dir must
// not be shared with a concurrently spilling process.
func sweepSpillOrphans(dir string) {
	if dir == "" {
		return
	}
	orphans, err := filepath.Glob(filepath.Join(dir, "trace-*.mtrc"+spillTempSuffix))
	if err != nil {
		return
	}
	for _, p := range orphans {
		_ = os.Remove(p)
	}
}

// captureArm is the io.Writer a capture encodes into. It lands the v2
// byte stream in whichever tier has room, deciding mid-stream:
//
//   - While the memory tier is viable, every chunk reserves its size
//     against the capture's BudgetAccountant *before* it is buffered,
//     so used+reserved never exceeds the limit — concurrent
//     captures share the budget instead of each transiently buffering
//     up to the whole remainder. (The encoder's internal frame buffer
//     is the reservation granularity: at most one ~64 KiB frame per
//     in-flight capture sits outside the accounting.)
//   - The first chunk that cannot be reserved fails the capture over to
//     a spill temp file: the buffered prefix — header plus whole frames,
//     because WriterV2 writes frame-atomically — is flushed to the
//     file, the reservation is released, and the rest of the stream
//     goes straight to disk. seal later renames the completed file to
//     its durable name.
//   - With no spill directory set, the fail-over write fails instead,
//     which WriterV2 surfaces at Flush and store records as a decline.
//
// The spill.create, spill.write and spill.rename fault-injection points
// fire on this path; store treats their errors as transient spill I/O
// and retries the capture under the engine's retry policy.
type captureArm struct {
	e        *Engine
	acct     BudgetAccountant // the budget this capture reserves against
	mem      bool             // memory tier still viable
	buf      bytes.Buffer
	reserved int64 // bytes this arm holds reserved in acct
	f        *os.File
	path     string
}

// Write implements io.Writer for the capture encoder.
func (a *captureArm) Write(p []byte) (int, error) {
	if a.mem {
		if a.reserve(int64(len(p))) {
			a.buf.Write(p)
			return len(p), nil
		}
		a.mem = false
		a.release()
		if err := a.openSpill(); err != nil {
			return 0, err
		}
		a.buf = bytes.Buffer{} // prefix is on disk now; free it
	}
	if err := faults.Inject(faults.SpillWrite); err != nil {
		return 0, err
	}
	return a.f.Write(p)
}

// reserve takes n bytes of the capture's budget, failing without side
// effects when the budget cannot cover it.
func (a *captureArm) reserve(n int64) bool {
	if !a.acct.Reserve(n) {
		return false
	}
	a.reserved += n
	return true
}

// release returns the arm's reservation to the budget.
func (a *captureArm) release() {
	if a.reserved == 0 {
		return
	}
	a.acct.Release(a.reserved, 0)
	a.reserved = 0
}

// openSpill creates the spill temp file and seeds it with the buffered
// stream prefix. It fails with errCacheFull when the tier is disabled.
func (a *captureArm) openSpill() error {
	e := a.e
	e.mu.Lock()
	dir := e.spillDir
	e.mu.Unlock()
	if dir == "" {
		return errCacheFull
	}
	if err := faults.Inject(faults.SpillCreate); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, "trace-*.mtrc"+spillTempSuffix)
	if err != nil {
		return err
	}
	if _, err := f.Write(a.buf.Bytes()); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		return err
	}
	a.f, a.path = f, f.Name()
	return nil
}

// seal makes a completed spill file durable and readable: contents
// synced, handle closed, and the temp name atomically renamed to the
// durable one. On failure the temp file is removed.
func (a *captureArm) seal() error {
	err := a.f.Sync()
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = faults.Inject(faults.SpillRename)
	}
	if err == nil {
		final := strings.TrimSuffix(a.path, spillTempSuffix)
		if err = os.Rename(a.path, final); err == nil {
			a.path = final
		}
	}
	if err != nil {
		_ = os.Remove(a.path)
	}
	a.f = nil
	return err
}

// discard abandons the capture: reservation released, any partial spill
// file removed.
func (a *captureArm) discard() {
	a.release()
	if a.f != nil {
		_ = a.f.Close()
		_ = os.Remove(a.path)
		a.f = nil
		a.path = ""
	}
}
