package engine

import (
	"context"
	"testing"

	"memotable/internal/trace"
)

func TestBudgetReserveCommitRelease(t *testing.T) {
	b := NewBudget(100)
	if !b.Reserve(60) {
		t.Fatal("Reserve(60) under a 100 limit failed")
	}
	if b.Reserve(50) {
		t.Fatal("Reserve(50) over the limit succeeded")
	}
	b.Commit(60, 40) // reserved frame-granular, settled smaller
	if used, res := b.Used(), b.Reserved(); used != 40 || res != 0 {
		t.Fatalf("after commit: used=%d reserved=%d, want 40/0", used, res)
	}
	if b.Reserve(70) {
		t.Fatal("Reserve(70) with 40 used under a 100 limit succeeded")
	}
	if !b.Reserve(60) {
		t.Fatal("Reserve(60) with 40 used failed")
	}
	b.Release(60, 0)
	b.Release(0, 40)
	if used, res := b.Used(), b.Reserved(); used != 0 || res != 0 {
		t.Fatalf("after release: used=%d reserved=%d, want 0/0", used, res)
	}
}

func TestBudgetChildNesting(t *testing.T) {
	root := NewBudget(100)
	a := root.Child(80)
	b := root.Child(80)
	if a.Parent() != root {
		t.Fatal("child's Parent is not the root")
	}

	// A child claim shows at both levels.
	if !a.Reserve(60) {
		t.Fatal("child reserve under both limits failed")
	}
	if root.Reserved() != 60 {
		t.Fatalf("root reserved %d after child reserve, want 60", root.Reserved())
	}

	// The child's own limit binds even when the root has room.
	if a.Reserve(30) {
		t.Fatal("reserve past the child limit succeeded")
	}

	// A parent rejection unwinds the child's local claim entirely.
	if b.Reserve(60) {
		t.Fatal("reserve past the shared root succeeded")
	}
	if b.Reserved() != 0 {
		t.Fatalf("failed reserve left %d reserved on the child", b.Reserved())
	}
	if root.Reserved() != 60 {
		t.Fatalf("failed reserve left root at %d reserved, want 60", root.Reserved())
	}

	// Commit and release propagate the whole way up.
	a.Commit(60, 55)
	if root.Used() != 55 || root.Reserved() != 0 {
		t.Fatalf("root used=%d reserved=%d after child commit, want 55/0", root.Used(), root.Reserved())
	}
	a.Release(0, 55)
	if root.Used() != 0 || a.Used() != 0 {
		t.Fatalf("root used=%d child used=%d after child release, want 0/0", root.Used(), a.Used())
	}
}

func TestBudgetSetLimit(t *testing.T) {
	b := NewBudget(10)
	b.SetLimit(0)
	if b.Reserve(1) {
		t.Fatal("non-positive limit admitted a reservation")
	}
	b.SetLimit(5)
	if !b.Reserve(5) {
		t.Fatal("raised limit still rejects")
	}
	if b.Limit() != 5 {
		t.Fatalf("Limit() = %d, want 5", b.Limit())
	}
}

// TestTenantBudgetIsolation drives the engine through two tenant
// budgets nested under its root: the starved tenant's workloads degrade
// to direct re-execution with byte-identical output, and never evict —
// or even touch — the healthy tenant's cached entries.
func TestTenantBudgetIsolation(t *testing.T) {
	e := New(1) // no spill dir: over-budget captures decline
	starved := WithBudget(context.Background(), e.Budget().Child(1))
	healthy := WithBudget(context.Background(), e.Budget().Child(1<<20))

	var ref trace.Counter
	emitN(500, 64)(&ref)

	// The starved tenant declines its capture and re-runs per replay.
	for i := 1; i <= 2; i++ {
		var cnt trace.Counter
		n, err := e.ReplayAllContext(starved, "w", emitN(500, 64), []trace.Sink{&cnt})
		if err != nil {
			t.Fatalf("starved replay %d: %v", i, err)
		}
		if n != ref.Total() || cnt.Total() != ref.Total() {
			t.Fatalf("starved replay %d delivered %d events, want %d", i, n, ref.Total())
		}
	}
	// The first replay executes twice — the declined store attempt plus
	// the direct re-run — and every later replay re-executes once.
	if got := e.Captures(); got != 3 {
		t.Fatalf("starved tenant executed %d captures for 2 replays, want 3 (declined)", got)
	}
	if e.CachedTraces() != 0 {
		t.Fatal("starved tenant cached a trace past its budget")
	}

	// The healthy tenant caches a different workload normally.
	var cnt trace.Counter
	if _, err := e.ReplayAllContext(healthy, "h", emitN(300, 32), []trace.Sink{&cnt}); err != nil {
		t.Fatalf("healthy replay: %v", err)
	}
	if e.CachedTraces() != 1 {
		t.Fatalf("healthy tenant cached %d traces, want 1", e.CachedTraces())
	}
	healthyUsed := e.Budget().Used()

	// More starved replays change nothing for the healthy tenant.
	var again trace.Counter
	if _, err := e.ReplayAllContext(starved, "w", emitN(500, 64), []trace.Sink{&again}); err != nil {
		t.Fatalf("starved replay after healthy: %v", err)
	}
	if e.CachedTraces() != 1 || e.Budget().Used() != healthyUsed {
		t.Fatalf("starved tenant disturbed the cache: traces=%d used=%d (was %d)",
			e.CachedTraces(), e.Budget().Used(), healthyUsed)
	}
}

// TestDeclineRearmAcrossTenants: a workload declined under one tenant's
// exhausted budget re-arms when a different tenant — with room — asks
// for it, instead of staying declined engine-wide.
func TestDeclineRearmAcrossTenants(t *testing.T) {
	e := New(1)
	starved := WithBudget(context.Background(), e.Budget().Child(1))
	healthy := WithBudget(context.Background(), e.Budget().Child(1<<20))

	var a trace.Counter
	if _, err := e.ReplayAllContext(starved, "w", emitN(400, 64), []trace.Sink{&a}); err != nil {
		t.Fatal(err)
	}
	if e.CachedTraces() != 0 {
		t.Fatal("starved tenant cached its workload")
	}

	var b trace.Counter
	if _, err := e.ReplayAllContext(healthy, "w", emitN(400, 64), []trace.Sink{&b}); err != nil {
		t.Fatal(err)
	}
	if e.CachedTraces() != 1 {
		t.Fatalf("healthy tenant did not re-arm the declined workload (cached=%d)", e.CachedTraces())
	}
	if a.Total() != b.Total() {
		t.Fatalf("declined and cached replays disagree: %d vs %d events", a.Total(), b.Total())
	}

	// Now cached: further replays from either tenant serve the cache.
	caps := e.Captures()
	var c trace.Counter
	if _, err := e.ReplayAllContext(starved, "w", emitN(400, 64), []trace.Sink{&c}); err != nil {
		t.Fatal(err)
	}
	if e.Captures() != caps {
		t.Fatal("replay of a cached workload re-executed it")
	}
}
