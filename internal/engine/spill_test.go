package engine

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/trace"
)

// countingCapture wraps emitN and counts workload executions.
func countingCapture(execs *atomic.Int64, n int, period uint64) CaptureFunc {
	return func(s trace.Sink) {
		execs.Add(1)
		emitN(n, period)(s)
	}
}

// TestDeclinedCaptureRetriesAfterBudgetRaise is the regression test for
// the consumed-once decline: a capture declined for budget must become
// storable again once SetCacheLimit raises the budget, instead of
// re-running the workload on every replay forever.
func TestDeclinedCaptureRetriesAfterBudgetRaise(t *testing.T) {
	e := Serial()
	e.SetCacheLimit(64) // far below the ~15 KB encoding
	var execs atomic.Int64
	capture := countingCapture(&execs, 5000, 32)

	var c1 trace.Counter
	n, err := e.Replay("k", capture, &c1)
	if err != nil || n != 5000 {
		t.Fatalf("declined replay: n=%d err=%v", n, err)
	}
	if e.CachedTraces() != 0 || e.Replays() != 0 {
		t.Fatalf("over-budget capture was stored: cached=%d replays=%d", e.CachedTraces(), e.Replays())
	}

	e.SetCacheLimit(1 << 20)
	var c2 trace.Counter
	n, err = e.Replay("k", capture, &c2)
	if err != nil || n != 5000 {
		t.Fatalf("post-raise replay: n=%d err=%v", n, err)
	}
	if e.CachedTraces() != 1 {
		t.Fatalf("raised budget did not re-arm the declined capture: cached=%d", e.CachedTraces())
	}
	if e.Replays() != 1 {
		t.Fatalf("post-raise replay not served from cache: replays=%d", e.Replays())
	}
	execsAfterRecapture := execs.Load()

	var c3 trace.Counter
	if n, err = e.Replay("k", capture, &c3); err != nil || n != 5000 {
		t.Fatalf("third replay: n=%d err=%v", n, err)
	}
	if execs.Load() != execsAfterRecapture {
		t.Fatal("cached entry re-executed the workload")
	}
	if c3.Total() != 5000 {
		t.Fatalf("sink saw %d events, want 5000", c3.Total())
	}
}

// TestDeclinedCaptureRetriesWhenSpillTierAppears: the other re-arm
// trigger — a decline must be retried once SetTraceDir enables disk.
func TestDeclinedCaptureRetriesWhenSpillTierAppears(t *testing.T) {
	e := Serial()
	e.SetCacheLimit(64)
	var execs atomic.Int64
	capture := countingCapture(&execs, 5000, 32)

	var c trace.Counter
	if n, err := e.Replay("k", capture, &c); err != nil || n != 5000 {
		t.Fatalf("declined replay: n=%d err=%v", n, err)
	}
	if e.SpilledTraces() != 0 {
		t.Fatal("spilled without a trace dir")
	}

	e.SetTraceDir(t.TempDir())
	if n, err := e.Replay("k", capture, &c); err != nil || n != 5000 {
		t.Fatalf("post-spill-enable replay: n=%d err=%v", n, err)
	}
	if e.SpilledTraces() != 1 {
		t.Fatalf("enabling the spill tier did not re-arm the declined capture: spilled=%d", e.SpilledTraces())
	}
	if e.Replays() != 1 {
		t.Fatalf("replay not served from disk: replays=%d", e.Replays())
	}
}

// TestConcurrentStoresNeverExceedBudget is the regression test for the
// reservation bugfix: captures reserve bytes against the budget before
// buffering, so used+reserved can never exceed the limit no matter how
// many stores run concurrently — the old code let each concurrent store
// buffer up to the full remaining budget before any accounting.
func TestConcurrentStoresNeverExceedBudget(t *testing.T) {
	e := New(8)
	// Each capture encodes to ~120 KB (40000 events x ~3 bytes, two v2
	// frames), so the 200 KB budget fits exactly one.
	const limit = 200 << 10
	e.SetCacheLimit(limit)

	var violated atomic.Bool
	check := func() {
		if e.budget.Used()+e.budget.Reserved() > limit {
			violated.Store(true)
		}
	}

	const keys = 6
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			capture := func(s trace.Sink) {
				for i := 0; i < 40000; i++ {
					s.Emit(trace.Event{Op: isa.OpFMul, A: uint64(i % 512), B: uint64(i % 256)})
					if i%1000 == 0 {
						check()
					}
				}
			}
			var c trace.Counter
			n, err := e.Replay(string(rune('a'+k)), capture, &c)
			if err != nil || n != 40000 {
				t.Errorf("key %d: n=%d err=%v", k, n, err)
			}
			check()
		}(k)
	}
	wg.Wait()
	check()

	if violated.Load() {
		t.Fatal("used+reserved exceeded the cache limit during concurrent stores")
	}
	if e.CachedBytes() > limit {
		t.Fatalf("cached %d bytes over the %d limit", e.CachedBytes(), limit)
	}
	if e.CachedTraces() != 1 {
		t.Fatalf("budget fits exactly one capture, stored %d", e.CachedTraces())
	}
	if reserved := e.budget.Reserved(); reserved != 0 {
		t.Fatalf("%d bytes still reserved after all stores settled", reserved)
	}
}

// TestOverBudgetCaptureSpillsToDisk is the acceptance scenario: with a
// small memory budget and a TraceDir, a large capture is executed once,
// spilled, and every replay streams from disk — no repeated captures.
func TestOverBudgetCaptureSpillsToDisk(t *testing.T) {
	dir := t.TempDir()
	e := New(2)
	e.SetCacheLimit(64)
	e.SetTraceDir(dir)
	var execs atomic.Int64
	capture := countingCapture(&execs, 50000, 512)

	var c1 trace.Counter
	n, err := e.Replay("big", capture, &c1)
	if err != nil || n != 50000 {
		t.Fatalf("first replay: n=%d err=%v", n, err)
	}
	var c2 trace.Counter
	n, err = e.Replay("big", capture, &c2)
	if err != nil || n != 50000 {
		t.Fatalf("second replay: n=%d err=%v", n, err)
	}

	if got := execs.Load(); got != 1 {
		t.Fatalf("workload executed %d times, want 1 (spill tier should absorb the overflow)", got)
	}
	if e.Captures() != 1 || e.Replays() != 2 {
		t.Fatalf("captures=%d replays=%d, want 1 and 2", e.Captures(), e.Replays())
	}
	if e.CachedTraces() != 0 || e.SpilledTraces() != 1 {
		t.Fatalf("cached=%d spilled=%d, want 0 and 1", e.CachedTraces(), e.SpilledTraces())
	}
	if c1 != c2 {
		t.Fatal("disk replays diverged")
	}

	// The replayed stream must be event-faithful to a direct emission.
	var want trace.Counter
	emitN(50000, 512)(&want)
	if c1 != want {
		t.Fatalf("disk replay stats %+v diverge from direct emission %+v", c1.Counts, want.Counts)
	}

	files, err := filepath.Glob(filepath.Join(dir, "trace-*.mtrc"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill dir holds %d trace files (%v), want 1", len(files), err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if files, _ = filepath.Glob(filepath.Join(dir, "trace-*.mtrc")); len(files) != 0 {
		t.Fatalf("Close left %d spill files", len(files))
	}
}

// spillPathOf digs out the spill file backing key.
func spillPathOf(t *testing.T, e *Engine, key string) string {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	ent := e.traces[key]
	if ent == nil || ent.state != stateDisk {
		t.Fatalf("entry %q not spilled", key)
	}
	return ent.path
}

// TestTornSpillFileRecapturedTransparently truncates a spill file
// mid-frame: the next replay must detect it via CRC before feeding the
// sink, re-capture the workload, and still deliver the full stream.
func TestTornSpillFileRecapturedTransparently(t *testing.T) {
	e := Serial()
	e.SetCacheLimit(1)
	e.SetTraceDir(t.TempDir())
	var execs atomic.Int64
	capture := countingCapture(&execs, 30000, 128)

	var c trace.Counter
	if n, err := e.Replay("big", capture, &c); err != nil || n != 30000 {
		t.Fatalf("first replay: n=%d err=%v", n, err)
	}
	path := spillPathOf(t, e, "big")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/3); err != nil {
		t.Fatal(err)
	}

	var c2 trace.Counter
	n, err := e.Replay("big", capture, &c2)
	if err != nil || n != 30000 {
		t.Fatalf("replay over torn spill: n=%d err=%v", n, err)
	}
	if c2.Total() != 30000 {
		t.Fatalf("sink saw %d events, want 30000 (no partial feed before detection)", c2.Total())
	}
	if execs.Load() != 2 {
		t.Fatalf("workload executed %d times, want 2 (one re-capture)", execs.Load())
	}
	if e.Recaptures() != 1 {
		t.Fatalf("recaptures=%d, want 1", e.Recaptures())
	}
	if newPath := spillPathOf(t, e, "big"); newPath == path {
		t.Fatal("torn spill file was not replaced")
	}

	// And the replacement serves replays without further executions.
	var c3 trace.Counter
	if n, err := e.Replay("big", capture, &c3); err != nil || n != 30000 {
		t.Fatalf("replay after recapture: n=%d err=%v", n, err)
	}
	if execs.Load() != 2 {
		t.Fatal("healthy respilled trace re-executed the workload")
	}
}

// TestCorruptSpillFileDetectedByCRC flips one payload byte — the file
// keeps its length, only the checksum can catch it.
func TestCorruptSpillFileDetectedByCRC(t *testing.T) {
	e := Serial()
	e.SetCacheLimit(1)
	e.SetTraceDir(t.TempDir())
	var execs atomic.Int64
	capture := countingCapture(&execs, 30000, 128)

	var c trace.Counter
	if n, err := e.Replay("big", capture, &c); err != nil || n != 30000 {
		t.Fatalf("first replay: n=%d err=%v", n, err)
	}
	path := spillPathOf(t, e, "big")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var c2 trace.Counter
	n, err := e.Replay("big", capture, &c2)
	if err != nil || n != 30000 || c2.Total() != 30000 {
		t.Fatalf("replay over corrupt spill: n=%d total=%d err=%v", n, c2.Total(), err)
	}
	if execs.Load() != 2 || e.Recaptures() != 1 {
		t.Fatalf("execs=%d recaptures=%d, want 2 and 1", execs.Load(), e.Recaptures())
	}
}

// TestSpillReplayMatchesMemoryReplay pins byte-faithfulness across
// tiers: the identical workload replayed from disk and from memory must
// produce identical event streams.
func TestSpillReplayMatchesMemoryReplay(t *testing.T) {
	capture := emitN(20000, 96)

	mem := Serial()
	var fromMem trace.Recorder
	if _, err := mem.Replay("k", capture, &fromMem); err != nil {
		t.Fatal(err)
	}
	if mem.CachedTraces() != 1 {
		t.Fatal("memory engine did not cache")
	}

	disk := Serial()
	disk.SetCacheLimit(1)
	disk.SetTraceDir(t.TempDir())
	var fromDisk trace.Recorder
	if _, err := disk.Replay("k", capture, &fromDisk); err != nil {
		t.Fatal(err)
	}
	if disk.SpilledTraces() != 1 {
		t.Fatal("disk engine did not spill")
	}

	if len(fromMem.Events) != len(fromDisk.Events) {
		t.Fatalf("tier event counts diverge: %d vs %d", len(fromMem.Events), len(fromDisk.Events))
	}
	for i := range fromMem.Events {
		if fromMem.Events[i] != fromDisk.Events[i] {
			t.Fatalf("event %d diverges across tiers: %+v != %+v", i, fromMem.Events[i], fromDisk.Events[i])
		}
	}
}

// TestSpillSingleflight: concurrent replays of one over-budget key must
// still execute the workload exactly once, all streaming from the one
// spill file.
func TestSpillSingleflight(t *testing.T) {
	e := New(8)
	e.SetCacheLimit(1)
	e.SetTraceDir(t.TempDir())
	var execs atomic.Int64
	capture := countingCapture(&execs, 20000, 64)

	const callers = 12
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cnt trace.Counter
			n, err := e.Replay("k", capture, &cnt)
			if err != nil || n != 20000 {
				t.Errorf("n=%d err=%v", n, err)
			}
		}()
	}
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("workload executed %d times under concurrent spill replay, want 1", execs.Load())
	}
	if e.Replays() != callers || e.SpilledTraces() != 1 {
		t.Fatalf("replays=%d spilled=%d", e.Replays(), e.SpilledTraces())
	}
}
