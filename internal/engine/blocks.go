package engine

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"

	"memotable/internal/faults"
	"memotable/internal/trace"
)

// The decoded-block cache tier. Encoded trace bytes answer "run this
// workload's stream again" without re-executing the workload, but every
// replay still pays a full varint decode. The experiment matrix replays
// each workload's stream once per table configuration, so the decode —
// not the MEMO-TABLE simulation — dominates the matrix. This tier decodes
// a key's v1/v2 bytes (or its spill file) into immutable []trace.Event
// blocks exactly once; every later replay of the key walks the shared
// blocks read-only and feeds sinks whole blocks at a time.
//
// Block memory is charged against the same byte budget as the encoded
// tier (decoded events cost bytesPerEvent each), so a tight budget simply
// leaves the tier cold and replays fall back to the byte decoder; and the
// tier is spill-aware: a disk-tier entry's blocks are decoded straight
// from its CRC-framed spill file, after which replays never touch the
// disk again.

// bytesPerEvent is the in-memory cost of one decoded trace.Event: Op
// (uint8) padded to 8 bytes plus two uint64 operands.
const bytesPerEvent = 24

// blockLen is the event capacity of one decoded block: 8192 events
// (192 KiB) keeps a block L2-resident while amortizing per-block
// dispatch across the sink fan-out.
const blockLen = 8192

// traceBlock is one immutable decoded block plus the union mask of its
// events' classes, which lets a fused replay skip sinks that consume
// none of them.
type traceBlock struct {
	events []trace.Event
	mask   trace.OpMask
}

// blocksFor returns key's decoded blocks, building them on first use.
// It returns nil (and no error) when the tier cannot serve: the block
// cache is disabled, another goroutine is mid-decode, or the byte budget
// has no room — callers then fall back to the byte decoder. A decode
// failure of a disk-tier entry is returned as an error so the caller can
// invalidate the spill file and retry; nothing has been emitted.
func (e *Engine) blocksFor(acct BudgetAccountant, key string, snap entrySnapshot) ([]traceBlock, error) {
	e.mu.Lock()
	ent := e.traces[key]
	if ent == nil || ent.state != snap.state || ent.path != snap.path {
		e.mu.Unlock()
		return nil, nil
	}
	if ent.blocks != nil {
		blocks := ent.blocks
		e.mu.Unlock()
		e.decodeHits.Add(1)
		return blocks, nil
	}
	cost := int64(snap.events) * bytesPerEvent
	if !e.blockCache || ent.blockBusy || !acct.Reserve(cost) {
		e.mu.Unlock()
		return nil, nil
	}
	ent.blockBusy = true
	e.mu.Unlock()

	// The block.decode injection point: an injected error makes the tier
	// unavailable for this replay (the caller falls back to the byte
	// path); an injected panic unwinds to the replay's panic isolation.
	if ferr := faults.Inject(faults.BlockDecode); ferr != nil {
		e.mu.Lock()
		acct.Release(cost, 0)
		ent.blockBusy = false
		e.mu.Unlock()
		return nil, nil
	}

	blocks, err := e.decodeBlocksRetrying(snap)

	e.mu.Lock()
	ent.blockBusy = false
	if err != nil {
		acct.Release(cost, 0)
		e.mu.Unlock()
		return nil, err
	}
	// Publish only if the entry still holds the capture we decoded; a
	// concurrent invalidation means the slot is being re-captured and
	// these blocks must not shadow it.
	if ent.state == snap.state && ent.path == snap.path && ent.blocks == nil {
		acct.Commit(cost, cost)
		ent.blocks = blocks
		ent.blockBytes = cost
		ent.blockAcct = acct
		e.blockBytes += cost
	} else {
		acct.Release(cost, 0)
	}
	e.mu.Unlock()
	return blocks, nil
}

// decodeBlocksRetrying decodes with the engine's spill-read retry
// policy: a disk-tier decode that fails for a reason other than
// corruption (an injected spill.read fault, a vanished file) is retried
// with backoff before the caller gives up and invalidates the file.
func (e *Engine) decodeBlocksRetrying(snap entrySnapshot) ([]traceBlock, error) {
	if snap.state != stateDisk {
		return decodeBlocks(snap)
	}
	var blocks []traceBlock
	err := e.withSpillRetry(func() error {
		var derr error
		blocks, derr = decodeBlocks(snap)
		return derr
	})
	return blocks, err
}

// decodeBlocks decodes a settled entry's whole stream — memory bytes or
// spill file — into owned blocks. For spill files the frame checksums are
// verified by the decode itself, so a torn or corrupt file fails here
// before any event could reach a sink.
func decodeBlocks(snap entrySnapshot) ([]traceBlock, error) {
	var src io.Reader
	if snap.state == stateDisk {
		if err := faults.Inject(faults.SpillRead); err != nil {
			return nil, err
		}
		f, err := os.Open(snap.path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		src = f
	} else {
		src = bytes.NewReader(snap.data)
	}
	r, err := trace.NewReader(src)
	if err != nil {
		return nil, err
	}
	blocks := make([]traceBlock, 0, snap.events/blockLen+1)
	var decoded uint64
	for decoded < snap.events {
		n := snap.events - decoded
		if n > blockLen {
			n = blockLen
		}
		batch, err := r.ReadBatch(make([]trace.Event, 0, n))
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		var mask trace.OpMask
		for _, ev := range batch {
			mask |= 1 << ev.Op
		}
		blocks = append(blocks, traceBlock{events: batch, mask: mask})
		decoded += uint64(len(batch))
	}
	if decoded != snap.events {
		return nil, fmt.Errorf("decoded %d of %d events", decoded, snap.events)
	}
	if _, err := r.ReadBatch(make([]trace.Event, 0, 1)); err != io.EOF {
		return nil, fmt.Errorf("stream continues past %d declared events", snap.events)
	}
	return blocks, nil
}

// emitBlocks feeds every block to every sink whose class mask intersects
// the block's, in block order — the serial fused pass over a decoded
// stream, and the reference the fan-out path (fanout.go) must match
// byte-for-byte. It returns the total event count of the stream.
// Cancellation is checked between blocks (one atomic-ish Err probe per
// 8192 events); a cancellation or an injected sink.emit fault observed
// mid-stream returns with the sinks partially fed, so callers must
// treat the cell as failed.
func (e *Engine) emitBlocks(ctx context.Context, blocks []traceBlock, sinks []trace.Sink, masks []trace.OpMask) (uint64, error) {
	var n uint64
	for i := range blocks {
		if ctx.Err() != nil {
			return n, ctxErr(ctx)
		}
		if err := faults.Inject(faults.SinkEmit); err != nil {
			return n, fmt.Errorf("replay delivery: %w", err)
		}
		b := &blocks[i]
		n += uint64(len(b.events))
		fed := 0
		for j, s := range sinks {
			if masks[j]&b.mask != 0 {
				trace.EmitAll(s, b.events)
				fed++
			}
		}
		e.deliveredEv.Add(uint64(fed) * uint64(len(b.events)))
		e.maskSkips.Add(uint64(len(sinks) - fed))
	}
	return n, nil
}
