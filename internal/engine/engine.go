// Package engine is the parallel experiment engine: it runs the paper's
// evaluation matrix — every (workload × table-configuration) cell of
// Tables 5–13 and Figures 2–4 — across a bounded worker pool instead of
// serially, and it captures each workload's operand trace once (in the
// binary trace format of internal/trace) so N memo configurations replay
// one recorded stream rather than re-executing the kernel N times.
//
// Two properties make the engine safe to put under the experiment
// drivers:
//
//   - Determinism. A replayed trace is byte-for-byte the stream the
//     workload emits, so every MEMO-TABLE sees the identical operand
//     sequence it would see in a serial run, and each cell owns its
//     tables outright. Results are written into per-cell slots, so
//     aggregation order is fixed by cell index, not completion order —
//     paper-layout output is bit-identical at any worker count.
//   - Bounded resources. The pool never exceeds its worker count, and
//     the trace cache is tiered under explicit space control: the
//     memory tier never exceeds its byte budget (reservations are taken
//     under the cache lock before bytes are buffered, so concurrent
//     captures cannot transiently hold multiples of the budget), and a
//     capture that outgrows the budget fails over mid-stream to a
//     CRC-framed spill file under TraceDir. Only when both tiers are
//     unavailable is a capture declined — and a decline is re-armed as
//     soon as the budget grows or a spill directory appears, so raising
//     either limit retroactively repairs earlier declines. Corrupt or
//     torn spill files are detected by frame checksum on every replay
//     and transparently re-captured.
//
// On top of the two encoded tiers sits the decoded-block cache
// (blocks.go): the first replay of a key decodes its bytes once into
// immutable []trace.Event blocks — charged against the same byte budget —
// and every later replay walks the shared blocks instead of re-decoding.
// ReplayAll fuses a whole configuration sweep into one pass over those
// blocks: M sinks cost one decode, and per-block class masks skip sinks
// that consume none of a block's events.
package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memotable/internal/faults"
	"memotable/internal/trace"
	"memotable/internal/tracestore"
)

// DefaultCacheBytes bounds the in-memory trace cache of engines built by
// New: 256 MB of encoded events, enough for every quick-scale trace of
// the evaluation while keeping full-scale sweeps from exhausting memory.
const DefaultCacheBytes = 256 << 20

// CaptureFunc runs a workload, emitting its operand trace into the sink.
// It must be deterministic and self-contained: the trace it emits is a
// pure function of the workload (per-run state such as the synthetic
// image address space belongs to the capture, not the process — see
// imaging.AddressSpace), so the engine runs captures concurrently on its
// worker pool and assumes replaying a stored capture is
// indistinguishable from running the workload again — in this process or
// any other, which is what lets settled traces persist in a cross-process
// store.
type CaptureFunc func(trace.Sink)

// entryState is the lifecycle of one cache slot. Unlike a sync.Once, the
// state machine can travel backwards: a declined or corrupted entry
// returns to stateEmpty and the next request re-captures it.
type entryState uint8

const (
	stateEmpty    entryState = iota // no usable capture; next request captures
	stateInflight                   // one goroutine is capturing; others wait
	stateMemory                     // encoded trace held in RAM
	stateDisk                       // encoded trace spilled to a v2 file
	stateDeclined                   // no tier could hold it; direct-run until re-armed
)

// traceEntry is one cache slot. All fields are guarded by Engine.mu; the
// data slice is immutable once the entry reaches stateMemory, and the
// blocks slice (the decoded-block tier, blocks.go) is immutable once
// published — concurrent replays share it read-only.
type traceEntry struct {
	key    string // the workload fingerprint this slot caches
	state  entryState
	data   []byte // stateMemory: encoded v2 trace
	events uint64
	path   string // stateDisk: spill file
	disk   int64  // stateDisk: sealed spill file size (spill-tier stats)

	// Decoded-block tier: the stream decoded once into event blocks.
	blocks     []traceBlock
	blockBytes int64            // bytes blocks charge against the budget
	blockAcct  BudgetAccountant // the accountant those bytes are committed to
	blockBusy  bool             // one goroutine is decoding; others use the byte path

	// Conditions observed when the entry was declined. The entry re-arms
	// when any improves: the declining accountant's budget grew, a spill
	// tier appeared, or a different accountant (another tenant, with its
	// own budget) asks for the entry.
	declinedAcct  BudgetAccountant
	declinedLimit int64
	declinedSpill bool
}

// entrySnapshot is the immutable view of a settled entry that Replay
// works from after releasing the cache lock.
type entrySnapshot struct {
	state  entryState
	data   []byte
	events uint64
	path   string
}

// Engine is a bounded worker pool with an attached two-tier trace cache.
// The zero value is not usable; construct with New or Serial.
type Engine struct {
	workers int

	// budget is the root BudgetAccountant every cache tier charges bytes
	// through (budget.go): memory-tier adoptions and decoded-block
	// publishes commit against it, in-flight captures and decodes reserve
	// against it, so used+reserved never exceeds the limit. Per-call
	// accountants (WithBudget) nest under this root.
	budget *Budget

	mu         sync.Mutex
	cond       *sync.Cond // broadcast when an entry leaves stateInflight
	memBytes   int64      // bytes held by stateMemory entries
	blockBytes int64      // bytes held by decoded-block tiers of all entries
	blockCache bool       // decoded-block tier enabled (default true)
	spillDir   string
	traces     map[string]*traceEntry
	tstore     *tracestore.Store // persistent cross-process store (nil: disabled)

	// Close latch: once closed, new passes, replays and ingest sessions
	// fail with ErrClosed; Close itself waits for in-flight work (begin/
	// end brackets) to drain before touching spill files.
	closed   bool
	inflight int
	closeErr error // result of the first Close, repeated by later calls

	// Fan-out replay budget (fanout.go): tokens for delivery goroutines
	// shared by all concurrently replaying cells and ingest sessions.
	fanWorkers int // SetFanOut; <= 1 disables fan-out
	fanInUse   int // tokens currently held by live pipelines

	// Failure-model knobs (errors.go): transient spill I/O retries.
	retryAttempts int
	retryBase     time.Duration

	// Counters (atomic; exposed for benchmarks and reports).
	captures    atomic.Uint64 // workload executions performed
	replays     atomic.Uint64 // cache replays served (both tiers)
	recaptures  atomic.Uint64 // spill files invalidated by checksum and re-captured
	decodeHits  atomic.Uint64 // replays served from shared decoded blocks
	replayedEv  atomic.Uint64 // events delivered by cache replays
	spillRetry  atomic.Uint64 // spill I/O operations retried after a transient failure
	degradedCap atomic.Uint64 // captures degraded to direct re-execution by persistent spill failure
	storeHits   atomic.Uint64 // entries settled from the persistent store instead of capturing
	storePuts   atomic.Uint64 // fresh captures published to the persistent store

	// Fan-out counters (fanout.go). deliveredEv and maskSkips are
	// written from consumer goroutines, so they must stay atomic.
	fanReplays  atomic.Uint64 // fused replays delivered through the fan-out pipeline
	ringStalls  atomic.Uint64 // block publishes that waited for the slowest consumer
	deliveredEv atomic.Uint64 // events delivered per sink (blocks + ingest frames)
	maskSkips   atomic.Uint64 // (sink, block) deliveries skipped by class mask

	// Live-ingest counters (ingest.go).
	ingestFrames  atomic.Uint64 // frames delivered by ingest sessions
	ingestEvents  atomic.Uint64 // events delivered by ingest sessions
	ingestBytes   atomic.Uint64 // raw stream bytes fed to ingest sessions
	sealedIngests atomic.Uint64 // ingest sessions sealed cleanly
}

// New builds an engine with the given worker count (<= 0 selects
// GOMAXPROCS), the default trace-cache budget, and no spill tier.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:       workers,
		budget:        NewBudget(DefaultCacheBytes),
		blockCache:    true,
		fanWorkers:    workers,
		traces:        make(map[string]*traceEntry),
		retryAttempts: defaultRetryAttempts,
		retryBase:     defaultRetryBase,
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Serial builds a single-worker engine: cells execute in index order on
// the calling goroutine, the reference serial path the golden tests pin.
func Serial() *Engine { return New(1) }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// SetCacheLimit adjusts the memory tier's byte budget. A non-positive
// limit disables the memory tier (captures spill to TraceDir when one is
// set, and are declined otherwise). Raising the limit re-arms captures
// that were previously declined for space.
func (e *Engine) SetCacheLimit(n int64) {
	e.budget.SetLimit(n)
}

// SetTraceDir enables the disk spill tier: captures that exceed the
// memory budget stream into CRC-framed trace files under dir, created on
// demand. An empty dir disables the tier. Enabling it re-arms captures
// that were previously declined for space.
//
// SetTraceDir also sweeps the directory for orphaned spill temp files
// (*.mtrc.tmp) left by a process that died between creating a spill file
// and sealing it — sealed files are renamed out of the temp suffix, so
// anything still wearing it is garbage. The sweep assumes the directory
// is not shared with a concurrently spilling process.
func (e *Engine) SetTraceDir(dir string) {
	e.mu.Lock()
	e.spillDir = dir
	e.mu.Unlock()
	sweepSpillOrphans(dir)
}

// TraceDir returns the spill directory ("" when the tier is disabled).
func (e *Engine) TraceDir() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.spillDir
}

// SetStore attaches a persistent trace store: before executing any
// workload the engine asks the store for its settled trace, and every
// fresh capture is published back, so a store shared across processes
// (or across runs of the same binary) makes all but the first run
// replay-only. A nil store detaches. Store I/O is strictly an
// accelerator: a failed read is a miss and a failed publish is dropped —
// neither can fail a cell.
func (e *Engine) SetStore(st *tracestore.Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tstore = st
}

// Store returns the attached persistent trace store (nil when detached).
func (e *Engine) Store() *tracestore.Store {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tstore
}

// SetBlockCache enables or disables the decoded-block tier (on by
// default). With the tier off every replay decodes the encoded bytes —
// the ablation baseline the block benchmarks compare against. Disabling
// the tier releases blocks already decoded.
func (e *Engine) SetBlockCache(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.blockCache = on
	if !on {
		for _, ent := range e.traces {
			e.dropBlocksLocked(ent)
		}
	}
}

// dropBlocksLocked releases an entry's decoded-block tier — the shared
// blocks, the tier's byte accounting, and the budget bytes the decode
// committed. Callers hold e.mu.
func (e *Engine) dropBlocksLocked(ent *traceEntry) {
	if ent.blocks == nil {
		return
	}
	e.blockBytes -= ent.blockBytes
	if ent.blockAcct != nil {
		ent.blockAcct.Release(0, ent.blockBytes)
	}
	ent.blocks, ent.blockBytes, ent.blockAcct = nil, 0, nil
}

// begin brackets one unit of in-flight work (a pass, a fused replay, a
// warm) against Close: it fails with ErrClosed once the engine is
// closed, and a successful begin must be paired with end.
func (e *Engine) begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.inflight++
	return nil
}

// end retires one begin, waking a Close blocked on the drain.
func (e *Engine) end() {
	e.mu.Lock()
	e.inflight--
	if e.closed && e.inflight == 0 {
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Close shuts the engine down: new RunPassContext, Warm, Replay and
// NewIngest calls fail with ErrClosed, in-flight work is waited out, and
// only then are the engine's spill files removed and orphaned spill temp
// files swept from the trace directory — a live replay can never race
// the removal of the file it is streaming. Close is idempotent: the
// first call does the work and latches its result, later calls return
// that same result without re-touching the filesystem.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.closeErr
		e.mu.Unlock()
		return err
	}
	e.closed = true
	for e.inflight > 0 {
		e.cond.Wait()
	}
	dir := e.spillDir
	var paths []string
	for _, ent := range e.traces {
		if ent.state == stateDisk {
			paths = append(paths, ent.path)
			ent.state = stateEmpty
			ent.path = ""
			// Blocks decoded from the removed file must not outlive it.
			e.dropBlocksLocked(ent)
		}
	}
	e.mu.Unlock()
	var firstErr error
	for _, p := range paths {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	sweepSpillOrphans(dir)
	e.mu.Lock()
	e.closeErr = firstErr
	e.mu.Unlock()
	return firstErr
}

// Map runs cell(0..n-1) across the worker pool and returns when all
// cells have finished. Cells must be independent: each writes only its
// own result slot, which is what keeps aggregation order-independent. A
// panic in any cell is re-raised on the caller after the pool drains.
func (e *Engine) Map(n int, cell func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			cell(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// ensure settles key's entry — capturing the workload if no usable tier
// holds it yet — and returns a snapshot of the settled state. Concurrent
// callers for the same key singleflight: exactly one captures, the rest
// wait on the engine's condition variable. A declined entry re-arms here
// when the budget has grown, a spill tier has appeared, or a different
// accountant (with its own budget) asks for the entry. A capture whose
// workload fails (an error from the capture.run injection point, or a
// panic inside the workload) re-arms the entry for later callers and
// returns the failure, wrapping ErrCaptureFailed, to the caller that
// triggered it. Cache bytes the settle buffers are charged to acct.
func (e *Engine) ensure(acct BudgetAccountant, key string, capture CaptureFunc) (entrySnapshot, error) {
	e.mu.Lock()
	ent, ok := e.traces[key]
	if !ok {
		ent = &traceEntry{key: key}
		e.traces[key] = ent
	}
	for {
		switch ent.state {
		case stateMemory, stateDisk:
			snap := entrySnapshot{state: ent.state, data: ent.data, events: ent.events, path: ent.path}
			e.mu.Unlock()
			return snap, nil
		case stateDeclined:
			if acct != ent.declinedAcct || acct.Limit() > ent.declinedLimit ||
				(e.spillDir != "" && !ent.declinedSpill) {
				ent.state = stateEmpty // conditions improved: re-arm
				continue
			}
			e.mu.Unlock()
			return entrySnapshot{state: stateDeclined}, nil
		case stateEmpty:
			ent.state = stateInflight
			e.mu.Unlock()
			if err := e.store(acct, ent, capture); err != nil {
				return entrySnapshot{}, err
			}
			e.mu.Lock()
		case stateInflight:
			e.cond.Wait()
		}
	}
}

// Warm ensures key's trace is captured and stored (tier permitting)
// without replaying it anywhere. Drivers call it over their workload
// list up front so the replay fan-out never stalls a cell on a capture.
// A failing workload surfaces here wrapping ErrCaptureFailed; the entry
// stays re-armed, so a later Replay retries rather than inheriting the
// fault. A closed engine fails with ErrClosed.
func (e *Engine) Warm(key string, capture CaptureFunc) error {
	return e.WarmContext(context.Background(), key, capture)
}

// WarmContext is Warm charging cache bytes to the context's budget
// accountant (WithBudget) instead of the engine's root budget.
func (e *Engine) WarmContext(ctx context.Context, key string, capture CaptureFunc) error {
	if err := e.begin(); err != nil {
		return err
	}
	defer e.end()
	_, err := e.ensure(e.budgetFrom(ctx), key, capture)
	return err
}

// maxSpillAttempts bounds how many times one Replay call will invalidate
// a corrupt spill file and re-capture before giving up.
const maxSpillAttempts = 3

// Replay feeds key's operand stream into sink and returns the event
// count. The first request captures the workload (storing the encoding
// in whichever tier has room); concurrent requests for the same key wait
// for that single capture. When no tier could hold the capture, the
// workload simply runs again, streaming straight into sink. A spill file
// that fails checksum verification is removed and transparently
// re-captured before anything reaches the sink.
func (e *Engine) Replay(key string, capture CaptureFunc, sink trace.Sink) (uint64, error) {
	return e.ReplayAll(key, capture, []trace.Sink{sink})
}

// ReplayAll is ReplayAllContext without cancellation.
func (e *Engine) ReplayAll(key string, capture CaptureFunc, sinks []trace.Sink) (uint64, error) {
	return e.ReplayAllContext(context.Background(), key, capture, sinks)
}

// ReplayAllContext feeds key's operand stream into every sink in one
// fused pass and returns the event count: M configuration sinks cost one
// decode of the stream, not M. The first fused replay of a key decodes
// its bytes into the shared decoded-block tier (budget permitting) and
// later replays of the key — fused or not — walk the blocks read-only;
// blocks whose events all fall outside a sink's advertised class mask
// skip that sink entirely. Every sink observes the exact event sequence
// a serial Replay would deliver it. When the engine's fan-out budget
// allows (SetFanOut), block delivery itself is parallelized across
// consumer goroutines — see fanout.go; per-sink results are identical
// either way.
//
// Cancellation is checked before the capture boundary and between
// decoded blocks during replay; a cancellation observed mid-stream
// returns wrapping ErrCanceled with the sinks partially fed, so the
// caller must treat the cell as failed. Transient spill-read failures
// are retried with backoff; a spill file that stays unreadable is
// invalidated and transparently re-captured, and errors that survive
// all of that wrap ErrSpillIO or ErrCorruptTrace.
func (e *Engine) ReplayAllContext(ctx context.Context, key string, capture CaptureFunc, sinks []trace.Sink) (uint64, error) {
	if len(sinks) == 0 {
		return 0, nil
	}
	if err := e.begin(); err != nil {
		return 0, err
	}
	defer e.end()
	acct := e.budgetFrom(ctx)
	var fanout trace.Sink
	if len(sinks) == 1 {
		fanout = sinks[0]
	} else {
		fanout = trace.Multi(sinks)
	}
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return 0, ctxErr(ctx)
		}
		snap, err := e.ensure(acct, key, capture)
		if err != nil {
			return 0, err
		}
		switch snap.state {
		case stateDeclined:
			// No tier holds the stream: degrade to direct re-execution,
			// through the same guarded path captures take (capture.run
			// injection, panic recovery, capture-lock hygiene).
			e.captures.Add(1)
			cs := &countingSink{next: fanout}
			if err := runCapture(capture, cs); err != nil {
				return cs.n, fmt.Errorf("engine: workload %q: %w: %w", key, ErrCaptureFailed, err)
			}
			return cs.n, nil

		case stateMemory:
			blocks, err := e.blocksFor(acct, key, snap)
			if err != nil {
				// The memory tier holds bytes our own writer encoded;
				// failing to decode them is a programming error.
				return 0, fmt.Errorf("engine: cached trace %q: %w", key, err)
			}
			if blocks != nil {
				n, err := e.deliverBlocks(ctx, blocks, sinks)
				if err != nil {
					return n, fmt.Errorf("engine: cached trace %q: %w", key, err)
				}
				e.replays.Add(1)
				e.replayedEv.Add(n)
				return n, nil
			}
			// No room for blocks: one batched decode pass feeds the
			// whole fan-out.
			if err := faults.Inject(faults.SinkEmit); err != nil {
				return 0, fmt.Errorf("engine: cached trace %q: replay delivery: %w", key, err)
			}
			r, err := trace.NewReader(bytes.NewReader(snap.data))
			if err != nil {
				return 0, fmt.Errorf("engine: cached trace %q: %w", key, err)
			}
			n, err := r.ReplayBatch(fanout)
			if err != nil {
				return n, fmt.Errorf("engine: cached trace %q: %w", key, err)
			}
			if n != snap.events {
				return n, fmt.Errorf("engine: cached trace %q replayed %d of %d events", key, n, snap.events)
			}
			e.replays.Add(1)
			e.replayedEv.Add(n)
			return n, nil

		case stateDisk:
			// Decoding into blocks verifies every frame checksum before
			// any event reaches a sink, so a corrupt spill file detected
			// here is re-captured transparently, exactly like the
			// verify-then-replay byte path below.
			blocks, err := e.blocksFor(acct, key, snap)
			if err != nil {
				if err = e.retireSpill(key, snap, attempt, err); err != nil {
					return 0, err
				}
				continue
			}
			if blocks != nil {
				n, err := e.deliverBlocks(ctx, blocks, sinks)
				if err != nil {
					return n, fmt.Errorf("engine: spilled trace %q: %w", key, err)
				}
				e.replays.Add(1)
				e.replayedEv.Add(n)
				return n, nil
			}
			// Verify every frame checksum before the first event is
			// emitted: a corrupt or torn file must be caught while the
			// sink is still untouched, so re-capturing stays
			// transparent to the caller.
			if err := e.withSpillRetry(func() error { return e.verifySpill(snap.path, snap.events) }); err != nil {
				if err = e.retireSpill(key, snap, attempt, err); err != nil {
					return 0, err
				}
				continue
			}
			if err := faults.Inject(faults.SinkEmit); err != nil {
				return 0, fmt.Errorf("engine: spilled trace %q: replay delivery: %w", key, err)
			}
			n, err := e.replaySpill(snap, fanout)
			if err != nil {
				// Post-verification failure (the file changed under
				// us): the sink has seen partial events, so a silent
				// re-capture would double-feed it. Surface the error.
				e.invalidateSpill(key, snap.path)
				return n, fmt.Errorf("engine: spilled trace %q: %w: %w", key, ErrSpillIO, err)
			}
			e.replays.Add(1)
			e.replayedEv.Add(n)
			return n, nil
		}
	}
}

// retireSpill handles an unreadable spill file during replay: the file
// is invalidated (the next ensure re-captures) and nil is returned so
// the caller retries — until the attempt budget is spent, at which point
// the failure surfaces wrapping ErrCorruptTrace (frame verification
// failed) or ErrSpillIO (the file could not be read at all).
func (e *Engine) retireSpill(key string, snap entrySnapshot, attempt int, err error) error {
	e.invalidateSpill(key, snap.path)
	if attempt < maxSpillAttempts {
		return nil
	}
	kind := ErrSpillIO
	if errors.Is(err, trace.ErrBadTrace) {
		kind = ErrCorruptTrace
	}
	return fmt.Errorf("engine: spilled trace %q unreadable after %d attempts: %w: %w", key, attempt, kind, err)
}

// withSpillRetry runs a spill-read operation, retrying transient
// failures with jittered backoff under the engine's retry policy.
// Corruption (trace.ErrBadTrace) is never retried: re-reading a file
// with a bad checksum cannot fix it, only re-capturing can.
func (e *Engine) withSpillRetry(op func() error) error {
	attempts, base := e.retryPolicy()
	var err error
	for try := 0; ; try++ {
		if err = op(); err == nil || errors.Is(err, trace.ErrBadTrace) {
			return err
		}
		if try >= attempts {
			return err
		}
		e.spillRetry.Add(1)
		backoff(base, try+1)
	}
}

// verifySpill checksums every frame of a spill file and checks the total
// event count against the capture's, without emitting anything.
func (e *Engine) verifySpill(path string, events uint64) error {
	if err := faults.Inject(faults.SpillRead); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	n, err := trace.Verify(f)
	if err != nil {
		return err
	}
	if n != events {
		return fmt.Errorf("spill holds %d of %d events", n, events)
	}
	return nil
}

// replaySpill streams a verified spill file into sink.
func (e *Engine) replaySpill(snap entrySnapshot, sink trace.Sink) (uint64, error) {
	if err := faults.Inject(faults.SpillRead); err != nil {
		return 0, err
	}
	f, err := os.Open(snap.path)
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()
	r, err := trace.NewReader(f)
	if err != nil {
		return 0, err
	}
	n, err := r.ReplayBatch(sink)
	if err != nil {
		return n, err
	}
	if n != snap.events {
		return n, fmt.Errorf("replayed %d of %d events", n, snap.events)
	}
	return n, nil
}

// invalidateSpill retires a spill file observed to be corrupt: the entry
// returns to stateEmpty (so the next request re-captures) and the file
// is removed. The path guard makes concurrent detections idempotent.
func (e *Engine) invalidateSpill(key, path string) {
	e.mu.Lock()
	ent := e.traces[key]
	if ent != nil && ent.state == stateDisk && ent.path == path {
		ent.state = stateEmpty
		ent.path = ""
		ent.events = 0
		ent.disk = 0
		e.dropBlocksLocked(ent)
		e.recaptures.Add(1)
	}
	e.mu.Unlock()
	_ = os.Remove(path)
}

// runCapture executes a workload capture, converting a panicking
// workload into an error. Captures run concurrently on the worker pool —
// each owns its address space, so no cross-capture exclusion is needed.
// The capture.run injection point fires here, so captures and declined
// direct re-executions share one fault edge.
func runCapture(capture CaptureFunc, sink trace.Sink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError(r)
		}
	}()
	if ferr := faults.Inject(faults.CaptureRun); ferr != nil {
		return ferr
	}
	capture(sink)
	return nil
}

// captureOutcome classifies one capture attempt for store's retry loop.
type captureOutcome uint8

const (
	captureStored   captureOutcome = iota // entry settled into memory or disk
	captureFailed                         // the workload itself errored or panicked
	captureSpillErr                       // spill-tier I/O failed; the capture may be retried
	captureNoRoom                         // no tier has room; decline
)

// store settles an in-flight entry into a terminal state: from the
// persistent trace store when one is attached and holds the workload,
// else by capturing — into memory when the encoding fits the reserved
// budget, disk when it overflows and a spill directory is set, declined
// otherwise. Fresh captures are published back to the persistent store.
// Transient spill I/O failures re-run the capture (captures are
// deterministic by contract) with jittered backoff; a spill tier that
// keeps failing degrades the workload to a decline, so replays
// direct-run it rather than losing the cell. A failing workload settles
// the entry back to empty — later callers retry — and the failure is
// returned wrapping ErrCaptureFailed. The caller has already moved the
// entry to stateInflight.
func (e *Engine) store(acct BudgetAccountant, ent *traceEntry, capture CaptureFunc) error {
	if e.loadFromStore(acct, ent) {
		return nil
	}
	attempts, base := e.retryPolicy()
	for try := 0; ; try++ {
		outcome, err := e.captureOnce(acct, ent, capture)
		switch outcome {
		case captureStored:
			e.putToStore(ent)
			return nil
		case captureFailed:
			e.settle(ent, stateEmpty)
			return fmt.Errorf("%w: %w", ErrCaptureFailed, err)
		case captureNoRoom:
			e.settleDeclined(acct, ent)
			return nil
		}
		if try >= attempts {
			// Persistent spill failure: degrade to direct re-execution.
			// Results stay byte-identical; the workload just re-runs on
			// every replay instead of being cached.
			e.degradedCap.Add(1)
			e.settleDeclined(acct, ent)
			return nil
		}
		e.spillRetry.Add(1)
		backoff(base, try+1)
	}
}

// settle moves an in-flight entry to the given state and wakes waiters.
func (e *Engine) settle(ent *traceEntry, s entryState) {
	e.mu.Lock()
	ent.state = s
	e.cond.Broadcast()
	e.mu.Unlock()
}

// settleDeclined records a decline with the conditions that produced it,
// so the entry re-arms when any improves.
func (e *Engine) settleDeclined(acct BudgetAccountant, ent *traceEntry) {
	e.mu.Lock()
	ent.state = stateDeclined
	ent.declinedAcct = acct
	ent.declinedLimit = acct.Limit()
	ent.declinedSpill = e.spillDir != ""
	e.cond.Broadcast()
	e.mu.Unlock()
}

// loadFromStore tries to settle an in-flight entry from the persistent
// trace store. The store verifies every frame CRC before handing bytes
// over, and the bytes are adopted into the memory tier only when the
// byte budget covers them — an engine run with a tiny budget falls
// through to its own capture path, whose tiers know how to stream. Any
// store failure (absent, torn, corrupt, injected fault) is a miss: the
// caller captures, and the put that follows heals the entry.
func (e *Engine) loadFromStore(acct BudgetAccountant, ent *traceEntry) bool {
	e.mu.Lock()
	st := e.tstore
	e.mu.Unlock()
	if st == nil {
		return false
	}
	data, events, err := st.Get(ent.key)
	if err != nil {
		return false
	}
	n := int64(len(data))
	if !acct.Reserve(n) {
		return false
	}
	e.mu.Lock()
	acct.Commit(n, n)
	e.memBytes += n
	ent.data = data
	ent.events = events
	ent.state = stateMemory
	e.cond.Broadcast()
	e.mu.Unlock()
	e.storeHits.Add(1)
	return true
}

// putToStore publishes a freshly settled capture to the persistent
// trace store. Failures are deliberately dropped: the store is an
// accelerator, and a faulted publish must not cost the cell — the entry
// is simply captured again by the next cold process, whose own publish
// heals the store.
func (e *Engine) putToStore(ent *traceEntry) {
	e.mu.Lock()
	st := e.tstore
	state, data, path := ent.state, ent.data, ent.path
	e.mu.Unlock()
	if st == nil {
		return
	}
	var err error
	switch state {
	case stateMemory:
		err = st.Put(ent.key, data)
	case stateDisk:
		err = st.PutFile(ent.key, path)
	default:
		return
	}
	if err == nil {
		e.storePuts.Add(1)
	}
}

// captureOnce runs one capture attempt and either adopts its encoding
// into a tier (settling the entry) or classifies the failure for store's
// retry loop. On anything but captureStored the arm's resources are
// released and the entry is left in stateInflight for the caller to
// settle.
func (e *Engine) captureOnce(acct BudgetAccountant, ent *traceEntry, capture CaptureFunc) (captureOutcome, error) {
	e.captures.Add(1)
	arm := &captureArm{e: e, acct: acct, mem: true}
	tw, err := trace.NewWriterV2(arm, false)
	if err == nil {
		if cerr := runCapture(capture, tw); cerr != nil {
			arm.discard()
			return captureFailed, cerr
		}
		err = tw.Close()
	}

	if err == nil && arm.mem {
		// The whole stream fits the memory reservation: adopt it.
		e.mu.Lock()
		acct.Commit(arm.reserved, int64(arm.buf.Len()))
		arm.reserved = 0
		e.memBytes += int64(arm.buf.Len())
		ent.data = arm.buf.Bytes()
		ent.events = tw.Count()
		ent.state = stateMemory
		e.cond.Broadcast()
		e.mu.Unlock()
		return captureStored, nil
	}
	if err == nil && arm.f != nil {
		if cerr := arm.seal(); cerr == nil {
			var size int64
			if fi, serr := os.Stat(arm.path); serr == nil {
				size = fi.Size()
			}
			e.mu.Lock()
			ent.path = arm.path
			ent.events = tw.Count()
			ent.state = stateDisk
			ent.disk = size
			e.cond.Broadcast()
			e.mu.Unlock()
			return captureStored, nil
		} else {
			err = cerr
		}
	}

	// The capture encoded fine but no tier adopted it: release whatever
	// the arm still holds and classify why.
	arm.discard()
	if err == nil || errors.Is(err, errCacheFull) {
		return captureNoRoom, nil
	}
	return captureSpillErr, fmt.Errorf("%w: %w", ErrSpillIO, err)
}

// errCacheFull aborts a capture no tier can hold.
var errCacheFull = errors.New("engine: trace cache budget exceeded and no spill tier")

// countingSink counts events on their way to the wrapped sink.
type countingSink struct {
	next trace.Sink
	n    uint64
}

// Emit implements trace.Sink.
func (c *countingSink) Emit(ev trace.Event) {
	c.n++
	c.next.Emit(ev)
}

// EmitBatch implements trace.BatchSink.
func (c *countingSink) EmitBatch(evs []trace.Event) {
	c.n += uint64(len(evs))
	trace.EmitAll(c.next, evs)
}
