// Package engine is the parallel experiment engine: it runs the paper's
// evaluation matrix — every (workload × table-configuration) cell of
// Tables 5–13 and Figures 2–4 — across a bounded worker pool instead of
// serially, and it captures each workload's operand trace once (in the
// binary trace format of internal/trace) so N memo configurations replay
// one recorded stream rather than re-executing the kernel N times.
//
// Two properties make the engine safe to put under the experiment
// drivers:
//
//   - Determinism. A replayed trace is byte-for-byte the stream the
//     workload emits, so every MEMO-TABLE sees the identical operand
//     sequence it would see in a serial run, and each cell owns its
//     tables outright. Results are written into per-cell slots, so
//     aggregation order is fixed by cell index, not completion order —
//     paper-layout output is bit-identical at any worker count.
//   - Bounded resources. The pool never exceeds its worker count, and
//     the trace cache never exceeds its byte budget: a capture that
//     would overflow the budget is simply not stored, and later
//     requests for it re-run the workload directly.
package engine

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"memotable/internal/trace"
)

// DefaultCacheBytes bounds the in-memory trace cache of engines built by
// New: 256 MB of encoded events, enough for every quick-scale trace of
// the evaluation while keeping full-scale sweeps from exhausting memory.
const DefaultCacheBytes = 256 << 20

// CaptureFunc runs a workload, emitting its operand trace into the sink.
// It must be deterministic: the engine assumes replaying a stored capture
// is indistinguishable from running the workload again.
//
// Captures are mutually exclusive process-wide: the engine runs every
// CaptureFunc under one global lock, so a capture may reset and consume
// process-global simulation state (the synthetic image address space,
// for instance) and still produce a trace that is a pure function of the
// workload, independent of which other captures run concurrently.
type CaptureFunc func(trace.Sink)

// captureMu serializes workload executions across all engines. Replays —
// the bulk of the evaluation's cells — never take it.
var captureMu sync.Mutex

// Engine is a bounded worker pool with an attached trace cache. The zero
// value is not usable; construct with New or Serial.
type Engine struct {
	workers    int
	cacheLimit int64

	mu     sync.Mutex
	used   int64
	traces map[string]*traceEntry

	// Counters (atomic; exposed for benchmarks and reports).
	captures atomic.Uint64 // workload executions performed
	replays  atomic.Uint64 // cache replays served
}

// traceEntry is one cached capture. Its fields are written exactly once,
// inside once.Do, and are immutable afterwards.
type traceEntry struct {
	once   sync.Once
	data   []byte // encoded trace; nil when the capture declined to store
	events uint64
	cached bool
}

// New builds an engine with the given worker count (<= 0 selects
// GOMAXPROCS) and the default trace-cache budget.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers:    workers,
		cacheLimit: DefaultCacheBytes,
		traces:     make(map[string]*traceEntry),
	}
}

// Serial builds a single-worker engine: cells execute in index order on
// the calling goroutine, the reference serial path the golden tests pin.
func Serial() *Engine { return New(1) }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// SetCacheLimit adjusts the trace-cache byte budget. A non-positive
// limit disables storage entirely (every Replay re-runs its workload).
func (e *Engine) SetCacheLimit(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheLimit = n
}

// CachedTraces returns the number of stored captures.
func (e *Engine) CachedTraces() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, ent := range e.traces {
		if ent.cached {
			n++
		}
	}
	return n
}

// CachedBytes returns the encoded size of all stored captures.
func (e *Engine) CachedBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used
}

// Captures returns how many workload executions the engine has performed
// (cache misses plus declined-to-store re-runs).
func (e *Engine) Captures() uint64 { return e.captures.Load() }

// Replays returns how many cache replays the engine has served.
func (e *Engine) Replays() uint64 { return e.replays.Load() }

// Map runs cell(0..n-1) across the worker pool and returns when all
// cells have finished. Cells must be independent: each writes only its
// own result slot, which is what keeps aggregation order-independent. A
// panic in any cell is re-raised on the caller after the pool drains.
func (e *Engine) Map(n int, cell func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			cell(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// entry returns the cache slot for key, creating it if needed.
func (e *Engine) entry(key string) *traceEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.traces[key]
	if !ok {
		ent = &traceEntry{}
		e.traces[key] = ent
	}
	return ent
}

// Warm ensures key's trace is captured and stored (budget permitting)
// without replaying it anywhere. Drivers call it over their workload
// list up front so the replay fan-out never stalls a cell on a capture
// (captures themselves serialize on the global capture lock).
func (e *Engine) Warm(key string, capture CaptureFunc) {
	ent := e.entry(key)
	ent.once.Do(func() { e.store(ent, capture) })
}

// Replay feeds key's operand stream into sink and returns the event
// count. The first request captures the workload (storing the encoding
// when the budget allows); concurrent requests for the same key wait for
// that single capture. When the capture was declined for space, the
// workload simply runs again, streaming straight into sink.
func (e *Engine) Replay(key string, capture CaptureFunc, sink trace.Sink) (uint64, error) {
	ent := e.entry(key)
	ent.once.Do(func() { e.store(ent, capture) })
	if !ent.cached {
		e.captures.Add(1)
		cs := &countingSink{next: sink}
		captureMu.Lock()
		capture(cs)
		captureMu.Unlock()
		return cs.n, nil
	}
	e.replays.Add(1)
	r, err := trace.NewReader(bytes.NewReader(ent.data))
	if err != nil {
		return 0, fmt.Errorf("engine: cached trace %q: %w", key, err)
	}
	n, err := r.Replay(sink)
	if err != nil {
		return n, fmt.Errorf("engine: cached trace %q: %w", key, err)
	}
	if n != ent.events {
		return n, fmt.Errorf("engine: cached trace %q replayed %d of %d events", key, n, ent.events)
	}
	return n, nil
}

// store performs the one capture for an entry, encoding into memory and
// keeping the bytes only if they fit the remaining budget.
func (e *Engine) store(ent *traceEntry, capture CaptureFunc) {
	e.captures.Add(1)
	e.mu.Lock()
	limit := e.cacheLimit - e.used
	e.mu.Unlock()
	if limit <= 0 {
		return // budget exhausted: don't even buffer
	}
	var buf bytes.Buffer
	lw := &limitWriter{w: &buf, remaining: limit}
	tw, err := trace.NewWriter(lw)
	if err != nil {
		return
	}
	captureMu.Lock()
	capture(tw)
	captureMu.Unlock()
	if err := tw.Flush(); err != nil {
		return // overflowed the budget mid-capture: decline to store
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.used+int64(buf.Len()) > e.cacheLimit {
		return
	}
	e.used += int64(buf.Len())
	ent.data = buf.Bytes()
	ent.events = tw.Count()
	ent.cached = true
}

// errCacheFull aborts an over-budget capture's buffering.
var errCacheFull = errors.New("engine: trace cache budget exceeded")

// limitWriter forwards to w until the byte budget is exhausted, then
// fails, which bufio surfaces at Flush so the capture is declined.
type limitWriter struct {
	w         io.Writer
	remaining int64
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if int64(len(p)) > l.remaining {
		l.remaining = 0
		return 0, errCacheFull
	}
	l.remaining -= int64(len(p))
	return l.w.Write(p)
}

// countingSink counts events on their way to the wrapped sink.
type countingSink struct {
	next trace.Sink
	n    uint64
}

// Emit implements trace.Sink.
func (c *countingSink) Emit(ev trace.Event) {
	c.n++
	c.next.Emit(ev)
}
