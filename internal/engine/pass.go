package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"memotable/internal/trace"
)

// The cross-experiment replay planner. A single experiment driver fuses
// its own configuration sweep into one ReplayAll per workload, but a
// full evaluation run selects many experiments, and the same workload
// trace feeds most of them — so driver-local fusion still replays each
// workload once per experiment. RunPass plans across that boundary: it
// takes every selected experiment's sink subscriptions at once, groups
// them by workload, and drives one fused replay pass per workload for
// the entire selection.
//
// The one scheduling constraint comes from stateful sinks: a MEMO-TABLE
// set that aggregates an application over its inputs must see those
// inputs' streams back to back, in its declared order. A Subscription
// therefore carries an *ordered* workload sequence, and the planner
// replays workloads in an order compatible with every subscription —
// a topological order of the per-subscription chains. Subscriptions
// whose sequences disagree (w1 before w2 in one, w2 before w1 in
// another) have no single-pass schedule; RunPass reports them as an
// error rather than silently replaying twice.

// PassWorkload names one capturable operand stream for the planner.
type PassWorkload struct {
	Key     string
	Capture CaptureFunc
}

// Subscription subscribes a group of sinks to an ordered workload
// sequence: the sinks observe the workloads' streams back to back, in
// order, exactly as if each workload were replayed for them alone. A
// sequence must not name the same key twice (that would require two
// replay passes by definition). Sinks must be comparable values —
// pointers or pointer-shaped structs, as every experiment sink is — so
// the planner can detect a sink shared between subscriptions.
type Subscription struct {
	Sinks     []trace.Sink
	Workloads []PassWorkload
}

// passNode is one distinct workload in a pass: its capture, the sink
// groups subscribed to it (in subscription order), and its scheduling
// edges (indegree plus successors from per-subscription chains).
type passNode struct {
	key     string
	capture CaptureFunc
	groups  [][]trace.Sink
	indeg   int
	succ    []int
	done    bool
}

// RunPass is RunPassContext without cancellation and with fail-fast
// error reporting: planning errors and the first cell failure (if any)
// are returned as one error.
func (e *Engine) RunPass(subs []Subscription) error {
	rep, err := e.RunPassContext(context.Background(), subs)
	if err != nil {
		return err
	}
	return rep.Err()
}

// RunPassContext replays every workload named by the subscriptions
// exactly once, feeding all subscribed sinks in one fused ReplayAll per
// workload. Workloads are first warmed (captured) across the worker
// pool; replays then run with independent workload chains in parallel —
// two workloads replay concurrently only when no subscription (and no
// shared sink) connects them, so every sink observes exactly its
// declared stream sequence and results are bit-identical at any worker
// count.
//
// The pass degrades instead of aborting: a failing cell — a workload
// whose capture errors or panics, a sink that panics mid-replay, an
// unreadable trace that survived retry and re-capture — is recorded as
// a typed *CellError in the returned PassReport and the rest of the
// pass keeps going, so one poisoned cell costs its subscribers, not the
// whole matrix. Cancellation is cooperative: the context is checked
// before each capture, before each workload replay, and between decoded
// blocks mid-replay; once it fires, remaining workloads report
// ErrCanceled and the report is marked Canceled. The error return is
// reserved for planning defects (empty keys, repeated workloads,
// inconsistent subscription orders) — failures of the pass's shape, not
// of any one cell.
func (e *Engine) RunPassContext(ctx context.Context, subs []Subscription) (*PassReport, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.end()
	ids := make(map[string]int)
	var nodes []*passNode
	nodeOf := func(w PassWorkload) (int, error) {
		if w.Key == "" {
			return 0, fmt.Errorf("engine: pass workload with empty key")
		}
		id, ok := ids[w.Key]
		if !ok {
			id = len(nodes)
			ids[w.Key] = id
			nodes = append(nodes, &passNode{key: w.Key, capture: w.Capture})
		}
		return id, nil
	}

	// Union-find over nodes: workloads joined by a subscription (or by a
	// sharing a sink) must replay sequentially relative to each other;
	// disjoint chains may run in parallel.
	var parent []int
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	sinkHome := make(map[trace.Sink]int)
	for _, sub := range subs {
		seen := make(map[string]bool, len(sub.Workloads))
		prev := -1
		for _, w := range sub.Workloads {
			if seen[w.Key] {
				return nil, fmt.Errorf("engine: subscription names workload %q twice", w.Key)
			}
			seen[w.Key] = true
			id, err := nodeOf(w)
			if err != nil {
				return nil, err
			}
			for len(parent) <= id {
				parent = append(parent, len(parent))
			}
			nodes[id].groups = append(nodes[id].groups, sub.Sinks)
			if prev >= 0 {
				nodes[prev].succ = append(nodes[prev].succ, id)
				nodes[id].indeg++
				union(prev, id)
			}
			prev = id
			// A sink shared between subscriptions joins their chains:
			// parallel components must never feed the same sink.
			for _, s := range sub.Sinks {
				if home, ok := sinkHome[s]; ok {
					union(home, id)
				} else {
					sinkHome[s] = id
				}
			}
		}
	}
	if len(nodes) == 0 {
		return &PassReport{}, nil
	}

	// Warm phase: every capture runs (once, singleflighted) before any
	// replay, so the replay fan-out never stalls a chain on a capture.
	// Warm failures are deliberately dropped here — the replay phase is
	// authoritative and will observe (and attribute) the same failure, or
	// succeed outright if the fault was transient.
	e.Map(len(nodes), func(i int) {
		if ctx.Err() == nil {
			_ = e.WarmContext(ctx, nodes[i].key, nodes[i].capture)
		}
	})

	// Group nodes into components, ordered by their smallest node id so
	// the schedule is deterministic.
	compOf := make(map[int][]int)
	for id := range nodes {
		root := find(id)
		compOf[root] = append(compOf[root], id)
	}
	roots := make([]int, 0, len(compOf))
	for root := range compOf {
		roots = append(roots, root)
	}
	sort.Ints(roots)

	rep := &PassReport{}
	planErrs := make([]error, len(roots))
	e.Map(len(roots), func(ci int) {
		planErrs[ci] = e.runComponent(ctx, rep, nodes, compOf[roots[ci]])
	})
	for _, err := range planErrs {
		if err != nil {
			return nil, err
		}
	}
	if ctx.Err() != nil {
		rep.Canceled = true
	}
	rep.seal()
	return rep, nil
}

// runComponent replays one connected component's workloads in a
// topological order of the subscription chains (Kahn's algorithm with a
// smallest-id tie break, so the order is deterministic). A workload
// whose replay fails is recorded in rep and its successors still run —
// their streams are independent captures, so one poisoned cell must not
// starve the rest of the chain. Only the inconsistent-ordering planning
// defect is returned as an error.
func (e *Engine) runComponent(ctx context.Context, rep *PassReport, nodes []*passNode, comp []int) error {
	sort.Ints(comp)
	remaining := len(comp)
	for remaining > 0 {
		picked := -1
		for _, id := range comp {
			n := nodes[id]
			if !n.done && n.indeg == 0 {
				picked = id
				break
			}
		}
		if picked < 0 {
			stuck := make([]string, 0, remaining)
			for _, id := range comp {
				if !nodes[id].done {
					stuck = append(stuck, nodes[id].key)
				}
			}
			return fmt.Errorf("engine: subscriptions order workloads inconsistently (no single-pass schedule for %v)", stuck)
		}
		n := nodes[picked]
		if err := ctx.Err(); err != nil {
			rep.add(&CellError{Key: n.key, Stage: "schedule", Err: ctxErr(ctx)})
		} else if err := e.replayGuarded(ctx, n.key, n.capture, trace.Flatten(n.groups...)); err != nil {
			rep.add(&CellError{Key: n.key, Stage: stageOf(err), Err: err})
		}
		n.done = true
		remaining--
		for _, s := range n.succ {
			nodes[s].indeg--
		}
	}
	return nil
}

// replayGuarded is ReplayAllContext with panic isolation: a sink (or
// decoder) panicking mid-replay unwinds only this workload's cell,
// converted to an ErrSinkPanic the report can carry, instead of killing
// the worker pool.
func (e *Engine) replayGuarded(ctx context.Context, key string, capture CaptureFunc, sinks []trace.Sink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %w", ErrSinkPanic, panicError(r))
		}
	}()
	_, err = e.ReplayAllContext(ctx, key, capture, sinks)
	return err
}

// stageOf names the execution edge a replay error belongs to, for
// CellError attribution.
func stageOf(err error) string {
	switch {
	case errors.Is(err, ErrCaptureFailed):
		return "capture"
	case errors.Is(err, ErrSinkPanic):
		return "sink"
	case errors.Is(err, ErrCanceled):
		return "schedule"
	default:
		return "replay"
	}
}
