package engine

import (
	"strings"
	"sync"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/trace"
)

// passCapture synthesizes a small distinguishable stream: n fmul events
// whose A operand carries the tag.
func passCapture(tag uint64, n int) CaptureFunc {
	return func(s trace.Sink) {
		for i := 0; i < n; i++ {
			s.Emit(trace.Event{Op: isa.OpFMul, A: tag, B: uint64(i)})
		}
	}
}

// tagsOf lists the distinct A tags in recorder order, collapsing runs.
func tagsOf(rec *trace.Recorder) []uint64 {
	var tags []uint64
	for _, ev := range rec.Events {
		if len(tags) == 0 || tags[len(tags)-1] != ev.A {
			tags = append(tags, ev.A)
		}
	}
	return tags
}

func TestRunPassOrdersAndFusesReplays(t *testing.T) {
	e := New(4)
	recAB := &trace.Recorder{}
	recB := &trace.Recorder{}
	recC := &trace.Recorder{}
	wA := PassWorkload{Key: "A", Capture: passCapture(1, 10)}
	wB := PassWorkload{Key: "B", Capture: passCapture(2, 20)}
	wC := PassWorkload{Key: "C", Capture: passCapture(3, 5)}
	err := e.RunPass([]Subscription{
		{Sinks: []trace.Sink{recAB}, Workloads: []PassWorkload{wA, wB}},
		{Sinks: []trace.Sink{recB}, Workloads: []PassWorkload{wB}},
		{Sinks: []trace.Sink{recC}, Workloads: []PassWorkload{wC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tagsOf(recAB); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ordered subscription saw tags %v, want [1 2]", got)
	}
	if len(recAB.Events) != 30 {
		t.Errorf("ordered subscription got %d events, want 30", len(recAB.Events))
	}
	if got := tagsOf(recB); len(got) != 1 || got[0] != 2 {
		t.Errorf("single subscription saw tags %v, want [2]", got)
	}
	if len(recC.Events) != 5 {
		t.Errorf("independent subscription got %d events, want 5", len(recC.Events))
	}
	// The whole pass: each workload captured once and replayed once,
	// however many subscriptions share it.
	if e.Captures() != 3 || e.Replays() != 3 {
		t.Errorf("captures=%d replays=%d, want 3 and 3", e.Captures(), e.Replays())
	}
	if e.ReplayedEvents() != 35 {
		t.Errorf("replayed %d events, want 35 (each stream once)", e.ReplayedEvents())
	}
}

func TestRunPassRejectsInconsistentOrders(t *testing.T) {
	e := Serial()
	r1, r2 := &trace.Recorder{}, &trace.Recorder{}
	wA := PassWorkload{Key: "A", Capture: passCapture(1, 1)}
	wB := PassWorkload{Key: "B", Capture: passCapture(2, 1)}
	err := e.RunPass([]Subscription{
		{Sinks: []trace.Sink{r1}, Workloads: []PassWorkload{wA, wB}},
		{Sinks: []trace.Sink{r2}, Workloads: []PassWorkload{wB, wA}},
	})
	if err == nil || !strings.Contains(err.Error(), "inconsistently") {
		t.Fatalf("conflicting orders not rejected: %v", err)
	}
}

func TestRunPassRejectsRepeatedWorkload(t *testing.T) {
	e := Serial()
	r := &trace.Recorder{}
	w := PassWorkload{Key: "A", Capture: passCapture(1, 1)}
	err := e.RunPass([]Subscription{{Sinks: []trace.Sink{r}, Workloads: []PassWorkload{w, w}}})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("repeated workload not rejected: %v", err)
	}
}

func TestRunPassSerializesSharedSinkAcrossSubscriptions(t *testing.T) {
	// Two subscriptions with disjoint workloads but a shared sink must
	// not feed it from two goroutines: the planner joins their chains.
	e := New(8)
	shared := &trace.Recorder{}
	err := e.RunPass([]Subscription{
		{Sinks: []trace.Sink{shared}, Workloads: []PassWorkload{{Key: "A", Capture: passCapture(1, 100)}}},
		{Sinks: []trace.Sink{shared}, Workloads: []PassWorkload{{Key: "B", Capture: passCapture(2, 100)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(shared.Events) != 200 {
		t.Fatalf("shared sink got %d events, want 200", len(shared.Events))
	}
	// Deterministic schedule: smallest-id workload first.
	if got := tagsOf(shared); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("shared sink saw tags %v, want [1 2]", got)
	}
}

func TestRunPassEmptyAndNoSinks(t *testing.T) {
	e := Serial()
	if err := e.RunPass(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.RunPass([]Subscription{{Workloads: []PassWorkload{{Key: "A", Capture: passCapture(1, 3)}}}}); err != nil {
		t.Fatal(err)
	}
	// A sink-less subscription still warms and replays its workload once
	// (the stream is decoded and counted, just delivered to nobody).
	if e.Captures() != 1 {
		t.Errorf("captures=%d, want 1", e.Captures())
	}
}

func TestRunPassConcurrentPasses(t *testing.T) {
	// Several passes over the same engine (the -race hammer's shape):
	// the trace cache singleflights captures, each pass owns its sinks.
	e := New(8)
	var wg sync.WaitGroup
	out := make([][]int, 6)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs := []*trace.Recorder{{}, {}}
			err := e.RunPass([]Subscription{
				{Sinks: []trace.Sink{recs[0]}, Workloads: []PassWorkload{
					{Key: "A", Capture: passCapture(1, 50)},
					{Key: "B", Capture: passCapture(2, 50)},
				}},
				{Sinks: []trace.Sink{recs[1]}, Workloads: []PassWorkload{
					{Key: "C", Capture: passCapture(3, 50)},
				}},
			})
			if err != nil {
				t.Error(err)
				return
			}
			out[g] = []int{len(recs[0].Events), len(recs[1].Events)}
		}()
	}
	wg.Wait()
	for g, ns := range out {
		if len(ns) != 2 || ns[0] != 100 || ns[1] != 50 {
			t.Errorf("pass %d event counts %v, want [100 50]", g, ns)
		}
	}
	if e.Captures() != 3 {
		t.Errorf("captures=%d, want 3 (singleflight across passes)", e.Captures())
	}
}
