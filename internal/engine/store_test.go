package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"memotable/internal/faults"
	"memotable/internal/trace"
	"memotable/internal/tracestore"
)

// openStore is the test shorthand for a store in a fresh temp dir.
func openStore(t *testing.T, dir string) *tracestore.Store {
	t.Helper()
	st, err := tracestore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// storeEntries lists the sealed entry files in a store directory.
func storeEntries(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "t-*.mtrc"))
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestStoreCrossEngine(t *testing.T) {
	dir := t.TempDir()
	const keys = 10

	// First engine: cold store, every workload executes and is published.
	a := New(4)
	a.SetStore(openStore(t, dir))
	var aExecs atomic.Int64
	for i := 0; i < keys; i++ {
		capture := func(s trace.Sink) {
			aExecs.Add(1)
			emitN(200+i, 16)(s)
		}
		var cnt trace.Counter
		n, err := a.Replay(fmt.Sprintf("k%d", i), capture, &cnt)
		if err != nil || n != uint64(200+i) {
			t.Fatalf("cold replay k%d: n=%d err=%v", i, n, err)
		}
	}
	if aExecs.Load() != keys || a.Captures() != keys {
		t.Fatalf("cold engine executed %d workloads, %d captures, want %d",
			aExecs.Load(), a.Captures(), keys)
	}
	if a.StoreHits() != 0 || a.StorePuts() != keys {
		t.Fatalf("cold engine store traffic: %d hits, %d puts", a.StoreHits(), a.StorePuts())
	}

	// Second engine, second "process": every workload must come from the
	// store without executing anything.
	b := New(4)
	b.SetStore(openStore(t, dir))
	var bExecs atomic.Int64
	for i := 0; i < keys; i++ {
		capture := func(s trace.Sink) {
			bExecs.Add(1)
			emitN(200+i, 16)(s)
		}
		var cnt trace.Counter
		n, err := b.Replay(fmt.Sprintf("k%d", i), capture, &cnt)
		if err != nil || n != uint64(200+i) {
			t.Fatalf("warm replay k%d: n=%d err=%v", i, n, err)
		}
	}
	if bExecs.Load() != 0 || b.Captures() != 0 {
		t.Fatalf("warm engine executed %d workloads, %d captures, want 0",
			bExecs.Load(), b.Captures())
	}
	if b.StoreHits() != keys || b.StorePuts() != 0 {
		t.Fatalf("warm engine store traffic: %d hits, %d puts", b.StoreHits(), b.StorePuts())
	}
}

// TestStoreCorruptEntryRecapture vandalizes a stored entry at every byte
// offset — one bit flip and one truncation per offset — and checks that
// a fresh engine transparently re-captures exactly once and heals the
// store for the engine after it.
func TestStoreCorruptEntryRecapture(t *testing.T) {
	dir := t.TempDir()
	const events = 64

	seed := New(1)
	seed.SetStore(openStore(t, dir))
	var cnt trace.Counter
	if _, err := seed.Replay("victim", emitN(events, 8), &cnt); err != nil {
		t.Fatal(err)
	}
	entries := storeEntries(t, dir)
	if len(entries) != 1 {
		t.Fatalf("store holds %d entries, want 1", len(entries))
	}
	path := entries[0]
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := func(offset int, truncate bool) []byte {
		raw := append([]byte(nil), orig...)
		if truncate {
			return raw[:offset]
		}
		raw[offset] ^= 0x20
		return raw
	}

	for offset := 0; offset < len(orig); offset++ {
		for _, truncate := range []bool{false, true} {
			if err := os.WriteFile(path, damage(offset, truncate), 0o644); err != nil {
				t.Fatal(err)
			}
			e := New(1)
			e.SetStore(openStore(t, dir))
			var execs atomic.Int64
			capture := func(s trace.Sink) {
				execs.Add(1)
				emitN(events, 8)(s)
			}
			// Two replays: the first re-captures, the second must ride the
			// engine's own cache — exactly one execution total.
			for round := 0; round < 2; round++ {
				var cnt trace.Counter
				n, err := e.Replay("victim", capture, &cnt)
				if err != nil || n != events {
					t.Fatalf("offset %d truncate=%v round %d: n=%d err=%v",
						offset, truncate, round, n, err)
				}
			}
			if got := execs.Load(); got != 1 {
				t.Fatalf("offset %d truncate=%v: workload executed %d times, want exactly 1",
					offset, truncate, got)
			}
			// The re-capture's put healed the entry: the next engine hits.
			h := New(1)
			h.SetStore(openStore(t, dir))
			var cnt2 trace.Counter
			if _, err := h.Replay("victim", emitN(events, 8), &cnt2); err != nil {
				t.Fatalf("offset %d truncate=%v: healed store replay: %v", offset, truncate, err)
			}
			if h.StoreHits() != 1 || h.Captures() != 0 {
				t.Fatalf("offset %d truncate=%v: store not healed (%d hits, %d captures)",
					offset, truncate, h.StoreHits(), h.Captures())
			}
		}
	}
}

// TestStoreStaleVersionInvisible plants an entry of a foreign format
// generation and checks it is neither read nor deleted: the engine
// captures as on a miss, and the old build's file survives untouched.
func TestStoreStaleVersionInvisible(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "t-"+strings.Repeat("ab", 16)+".v1.mtrc")
	if err := os.WriteFile(stale, []byte("old generation"), 0o644); err != nil {
		t.Fatal(err)
	}

	st := openStore(t, dir)
	if n, err := st.Len(); err != nil || n != 0 {
		t.Fatalf("stale entry counted by Len: %d, %v", n, err)
	}
	e := New(1)
	e.SetStore(st)
	var execs atomic.Int64
	capture := func(s trace.Sink) {
		execs.Add(1)
		emitN(50, 8)(s)
	}
	var cnt trace.Counter
	if _, err := e.Replay("k", capture, &cnt); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 1 || e.StoreHits() != 0 {
		t.Fatalf("stale entry served a hit: %d execs, %d hits", execs.Load(), e.StoreHits())
	}
	raw, err := os.ReadFile(stale)
	if err != nil || string(raw) != "old generation" {
		t.Fatalf("stale entry modified or deleted: %q, %v", raw, err)
	}
}

// TestStoreHitRespectsBudget pins the fallback contract: a store hit
// that does not fit the engine's cache budget is declined, and the
// engine runs the workload directly instead of blowing the budget.
func TestStoreHitRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	seed := New(1)
	seed.SetStore(openStore(t, dir))
	var cnt trace.Counter
	if _, err := seed.Replay("big", emitN(5000, 32), &cnt); err != nil {
		t.Fatal(err)
	}
	if seed.StorePuts() != 1 {
		t.Fatalf("seed engine puts = %d, want 1", seed.StorePuts())
	}

	e := New(1)
	e.SetCacheLimit(64) // far below the stored trace
	e.SetStore(openStore(t, dir))
	var execs atomic.Int64
	capture := func(s trace.Sink) {
		execs.Add(1)
		emitN(5000, 32)(s)
	}
	var got trace.Counter
	n, err := e.Replay("big", capture, &got)
	if err != nil || n != 5000 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if e.StoreHits() != 0 {
		t.Fatalf("over-budget store entry adopted: %d hits", e.StoreHits())
	}
	if execs.Load() == 0 {
		t.Fatal("workload never executed despite declined store hit")
	}
	if e.CachedBytes() != 0 {
		t.Fatalf("budget blown: %d cached bytes over a %d limit", e.CachedBytes(), 64)
	}
}

// TestStoreHammer drives several engines' worth of goroutines over
// overlapping keys against one shared store while store I/O faults fire,
// asserting the singleflight contract holds end to end: at most one
// execution per (engine, key), every caller sees the full event count,
// and nothing deadlocks.
func TestStoreHammer(t *testing.T) {
	dir := t.TempDir()
	const (
		engines    = 3
		goroutines = 8
		keys       = 12
		events     = 300
	)

	plan, err := faults.Parse("seed=7;store.read:p=0.05;store.write:p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(plan)
	defer faults.Activate(nil)

	var wg sync.WaitGroup
	for ei := 0; ei < engines; ei++ {
		e := New(4)
		e.SetStore(openStore(t, dir))
		execs := make([]atomic.Int64, keys)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < keys; k++ {
					key := (g + k) % keys // overlapping, shifted key order
					capture := func(s trace.Sink) {
						execs[key].Add(1)
						emitN(events, 16)(s)
					}
					var cnt trace.Counter
					n, err := e.Replay(fmt.Sprintf("k%d", key), capture, &cnt)
					if err != nil {
						t.Errorf("engine %d key %d: %v", ei, key, err)
						return
					}
					if n != events || cnt.Total() != events {
						t.Errorf("engine %d key %d: %d events replayed, sink saw %d",
							ei, key, n, cnt.Total())
					}
				}
			}(g)
		}
		wg.Wait()
		for k := range execs {
			if got := execs[k].Load(); got > 1 {
				t.Fatalf("engine %d key %d executed %d times, want at most 1", ei, k, got)
			}
		}
	}

	// Whatever the fault pattern did, surviving entries must all verify.
	faults.Activate(nil)
	st := openStore(t, dir)
	for k := 0; k < keys; k++ {
		if _, n, err := st.Get(fmt.Sprintf("k%d", k)); err == nil && n != events {
			t.Fatalf("key %d stored with %d events, want %d", k, n, events)
		}
	}
}
