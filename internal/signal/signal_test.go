package signal

import (
	"math"
	"math/rand"
	"testing"

	"memotable/internal/isa"
	"memotable/internal/probe"
	"memotable/internal/trace"
)

func TestFFTMatchesNaiveDFT(t *testing.T) {
	p := probe.New()
	rng := rand.New(rand.NewSource(21))
	const n = 64
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.Float64()*2 - 1
		im[i] = rng.Float64()*2 - 1
	}
	wantRe := make([]float64, n)
	wantIm := make([]float64, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / n
			c, s := math.Cos(ang), math.Sin(ang)
			wantRe[k] += re[j]*c - im[j]*s
			wantIm[k] += re[j]*s + im[j]*c
		}
	}
	FFT(p, re, im, false)
	for k := 0; k < n; k++ {
		if math.Abs(re[k]-wantRe[k]) > 1e-9 || math.Abs(im[k]-wantIm[k]) > 1e-9 {
			t.Fatalf("bin %d: (%g,%g) vs naive (%g,%g)", k, re[k], im[k], wantRe[k], wantIm[k])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	p := probe.New()
	rng := rand.New(rand.NewSource(22))
	const n = 256
	re := make([]float64, n)
	im := make([]float64, n)
	orig := make([]float64, n)
	for i := range re {
		re[i] = rng.Float64()
		orig[i] = re[i]
	}
	FFT(p, re, im, false)
	FFT(p, re, im, true)
	for i := range re {
		if math.Abs(re[i]-orig[i]) > 1e-10 || math.Abs(im[i]) > 1e-10 {
			t.Fatalf("sample %d: (%g,%g) vs %g", i, re[i], im[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	p := probe.New()
	rng := rand.New(rand.NewSource(23))
	const n = 128
	re := make([]float64, n)
	im := make([]float64, n)
	var timeE float64
	for i := range re {
		re[i] = rng.Float64() - 0.5
		timeE += re[i] * re[i]
	}
	FFT(p, re, im, false)
	var freqE float64
	for i := range re {
		freqE += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9 {
		t.Fatalf("Parseval: time %g vs freq/n %g", timeE, freqE/float64(n))
	}
}

func TestFFTPanics(t *testing.T) {
	p := probe.New()
	mustPanic(t, func() { FFT(p, make([]float64, 3), make([]float64, 3), false) })
	mustPanic(t, func() { FFT(p, make([]float64, 4), make([]float64, 2), false) })
	mustPanic(t, func() { NewField(0, 4) })
	mustPanic(t, func() { FFT2D(p, &Field{W: 3, H: 4, Re: make([]float64, 12), Im: make([]float64, 12)}, false) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestFFT2DRoundTripAndDC(t *testing.T) {
	p := probe.New()
	f := NewField(16, 8)
	rng := rand.New(rand.NewSource(24))
	var sum float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			v := rng.Float64()
			f.Set(x, y, v, 0)
			sum += v
		}
	}
	orig := f.Clone()
	FFT2D(p, f, false)
	if dcRe, dcIm := f.At(0, 0); math.Abs(dcRe-sum) > 1e-9 || math.Abs(dcIm) > 1e-9 {
		t.Fatalf("DC = (%g,%g), want (%g,0)", dcRe, dcIm, sum)
	}
	FFT2D(p, f, true)
	for i := range f.Re {
		if math.Abs(f.Re[i]-orig.Re[i]) > 1e-9 || math.Abs(f.Im[i]) > 1e-9 {
			t.Fatalf("2D round trip failed at %d", i)
		}
	}
}

func TestRadialMask(t *testing.T) {
	p := probe.New()
	f := NewField(8, 8)
	for i := range f.Re {
		f.Re[i] = 1
	}
	// Reject everything outside DC.
	RadialMask(p, f, 0, 0.05, 1, 0)
	if re, _ := f.At(0, 0); re != 1 {
		t.Fatal("DC rejected")
	}
	if re, _ := f.At(4, 4); re != 0 {
		t.Fatal("high frequency passed")
	}
}

func TestFFTEmitsInstrumentation(t *testing.T) {
	var c trace.Counter
	p := probe.New(&c)
	re := make([]float64, 32)
	im := make([]float64, 32)
	re[3] = 1
	FFT(p, re, im, true)
	if c.Of(isa.OpFMul) == 0 {
		t.Error("FFT emitted no multiplications")
	}
	if c.Of(isa.OpFDiv) != 64 {
		t.Errorf("inverse FFT emitted %d divisions, want 64", c.Of(isa.OpFDiv))
	}
}

func TestConvolve3x3Identity(t *testing.T) {
	p := probe.New()
	src := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	id := [9]float64{0, 0, 0, 0, 1, 0, 0, 0, 0}
	out := Convolve3x3(p, 3, 3, src, id)
	for i := range src {
		if out[i] != src[i] {
			t.Fatalf("identity kernel changed sample %d", i)
		}
	}
	// Box blur of a constant field is constant.
	box := [9]float64{1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9, 1. / 9}
	flat := []float64{5, 5, 5, 5, 5, 5, 5, 5, 5}
	out = Convolve3x3(p, 3, 3, flat, box)
	for i := range out {
		if math.Abs(out[i]-5) > 1e-12 {
			t.Fatalf("box blur of flat field: %g", out[i])
		}
	}
	mustPanic(t, func() { Convolve3x3(p, 2, 2, flat, id) })
}
