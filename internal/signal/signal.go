// Package signal provides the DSP substrate for the frequency-domain
// Multi-Media workloads (vbrf, vbpf, vmpp, vrect2pol): radix-2 FFTs and
// frequency masks whose arithmetic is routed through the instrumentation
// probe, so every butterfly multiplication is visible to the MEMO-TABLE
// simulation exactly as Shade saw the originals' instructions.
package signal

import (
	"math"

	"memotable/internal/probe"
)

// Field is a 2-D complex field stored as separate real and imaginary
// planes (row-major, h rows of w).
type Field struct {
	W, H   int
	Re, Im []float64
}

// NewField allocates a w×h complex field. Dimensions must be powers of
// two for FFT use.
func NewField(w, h int) *Field {
	if w <= 0 || h <= 0 {
		panic("signal: invalid field dimensions")
	}
	return &Field{W: w, H: h, Re: make([]float64, w*h), Im: make([]float64, w*h)}
}

// At returns the complex sample at (x, y).
func (f *Field) At(x, y int) (re, im float64) {
	i := y*f.W + x
	return f.Re[i], f.Im[i]
}

// Set writes the complex sample at (x, y).
func (f *Field) Set(x, y int, re, im float64) {
	i := y*f.W + x
	f.Re[i], f.Im[i] = re, im
}

// Clone deep-copies the field.
func (f *Field) Clone() *Field {
	out := NewField(f.W, f.H)
	copy(out.Re, f.Re)
	copy(out.Im, f.Im)
	return out
}

func pow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT performs an in-place radix-2 decimation-in-time transform of the
// length-n complex sequence (re, im) through the probe. inverse applies
// the conjugate transform and scales by 1/n (the scaling divisions are
// probe-visible, as they were dynamic instructions in the originals).
func FFT(p *probe.Probe, re, im []float64, inverse bool) {
	n := len(re)
	if len(im) != n {
		panic("signal: FFT plane length mismatch")
	}
	if !pow2(n) {
		panic("signal: FFT length not a power of two")
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
			p.IAlu()
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for k := 0; k < half; k++ {
				// Twiddle-table subscript: compiled FFTs index the ROM
				// with k*(n/length), a product whose operand pairs recur
				// across every block of the stage.
				p.IMul(int64(k), int64(n/length))
				i, j := start+k, start+k+half
				// t = w * x[j]  (4 mul, 2 add)
				tRe := p.FSub(p.FMul(re[j], curRe), p.FMul(im[j], curIm))
				tIm := p.FAdd(p.FMul(re[j], curIm), p.FMul(im[j], curRe))
				re[j] = p.FSub(re[i], tRe)
				im[j] = p.FSub(im[i], tIm)
				re[i] = p.FAdd(re[i], tRe)
				im[i] = p.FAdd(im[i], tIm)
				// Advance the twiddle factor.
				nRe := p.FSub(p.FMul(curRe, wRe), p.FMul(curIm, wIm))
				curIm = p.FAdd(p.FMul(curRe, wIm), p.FMul(curIm, wRe))
				curRe = nRe
			}
		}
	}
	if inverse {
		fn := float64(n)
		for i := range re {
			re[i] = p.FDiv(re[i], fn)
			im[i] = p.FDiv(im[i], fn)
		}
	}
}

// FFT2D transforms the field in place: rows, then columns.
func FFT2D(p *probe.Probe, f *Field, inverse bool) {
	if !pow2(f.W) || !pow2(f.H) {
		panic("signal: FFT2D dimensions not powers of two")
	}
	// Rows.
	for y := 0; y < f.H; y++ {
		row := y * f.W
		FFT(p, f.Re[row:row+f.W], f.Im[row:row+f.W], inverse)
	}
	// Columns (gather/scatter through temporaries).
	colRe := make([]float64, f.H)
	colIm := make([]float64, f.H)
	for x := 0; x < f.W; x++ {
		for y := 0; y < f.H; y++ {
			colRe[y], colIm[y] = f.Re[y*f.W+x], f.Im[y*f.W+x]
		}
		FFT(p, colRe, colIm, inverse)
		for y := 0; y < f.H; y++ {
			f.Re[y*f.W+x], f.Im[y*f.W+x] = colRe[y], colIm[y]
		}
	}
}

// RadialMask applies a frequency-domain mask through the probe: samples
// whose radial frequency lies in [rLo, rHi) are multiplied by inside;
// all others by outside. Frequencies are normalized to [0, 0.5] with DC
// at index 0 (wrap-around symmetric).
func RadialMask(p *probe.Probe, f *Field, rLo, rHi, inside, outside float64) {
	for y := 0; y < f.H; y++ {
		fy := freqOf(y, f.H)
		for x := 0; x < f.W; x++ {
			fx := freqOf(x, f.W)
			r := math.Sqrt(fx*fx + fy*fy)
			gain := outside
			if r >= rLo && r < rHi {
				gain = inside
			}
			i := y*f.W + x
			f.Re[i] = p.FMul(f.Re[i], gain)
			f.Im[i] = p.FMul(f.Im[i], gain)
		}
	}
}

// freqOf maps an FFT bin index to its normalized frequency magnitude.
func freqOf(i, n int) float64 {
	if i <= n/2 {
		return float64(i) / float64(n)
	}
	return float64(n-i) / float64(n)
}

// Convolve3x3 convolves a single plane with a 3×3 kernel through the
// probe, replicating edge samples. Used by the spatial-domain edge
// workloads.
func Convolve3x3(p *probe.Probe, w, h int, src []float64, k [9]float64) []float64 {
	if len(src) != w*h {
		panic("signal: Convolve3x3 plane size mismatch")
	}
	out := make([]float64, w*h)
	clampIdx := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v >= hi {
			return hi - 1
		}
		return v
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					kv := k[(dy+1)*3+dx+1]
					if kv == 0 {
						continue
					}
					sx, sy := clampIdx(x+dx, w), clampIdx(y+dy, h)
					acc = p.FAdd(acc, p.FMul(kv, src[sy*w+sx]))
				}
			}
			out[y*w+x] = acc
		}
	}
	return out
}
