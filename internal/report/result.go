package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// The typed result model. Experiment drivers build Result trees —
// tables, series, scalars with units, and groups of those — instead of
// pre-rendered strings; rendering to the paper text layout (Text) and to
// JSON (JSON) lives entirely in this package. The text renderer is pinned
// byte-for-byte by the golden tests, so a Result-producing driver emits
// exactly the bytes its Sprintf-built predecessor did.

// CellKind selects how a table cell formats in the text layout. The
// kinds preserve the legacy formatting semantics exactly: Ratio trims
// the leading zero and prints '-' for NaN, Fixed prints '-' for NaN,
// Float mirrors fmt.Sprintf("%.*f", ...) including its "NaN" spelling.
type CellKind uint8

// Cell kinds.
const (
	CellString CellKind = iota
	CellInt
	CellRatio
	CellFixed
	CellFloat
)

// Cell is one typed table cell: the raw value plus its formatting kind,
// so text rendering stays byte-identical while JSON carries the number.
type Cell struct {
	Kind  CellKind
	Str   string
	Int   int64
	Float float64
	Prec  int
}

// Str builds a string cell (names, labels).
func Str(s string) Cell { return Cell{Kind: CellString, Str: s} }

// Int builds an integer cell (counts, sizes).
func Int(v int64) Cell { return Cell{Kind: CellInt, Int: v} }

// RatioCell builds a paper-ratio cell (".47", '-' for NaN).
func RatioCell(v float64) Cell { return Cell{Kind: CellRatio, Float: v} }

// FixedCell builds a fixed-decimals cell ('-' for NaN).
func FixedCell(v float64, prec int) Cell { return Cell{Kind: CellFixed, Float: v, Prec: prec} }

// FloatCell builds a plain %.*f cell (NaN prints "NaN").
func FloatCell(v float64, prec int) Cell { return Cell{Kind: CellFloat, Float: v, Prec: prec} }

// Text renders the cell for the paper text layout.
func (c Cell) Text() string {
	switch c.Kind {
	case CellString:
		return c.Str
	case CellInt:
		return fmt.Sprintf("%d", c.Int)
	case CellRatio:
		return Ratio(c.Float)
	case CellFixed:
		return Fixed(c.Float, c.Prec)
	default:
		return fmt.Sprintf("%.*f", c.Prec, c.Float)
	}
}

// MarshalJSON encodes the raw value: strings as strings, numbers as
// numbers, NaN as null (JSON has no NaN; the text layout's '-').
func (c Cell) MarshalJSON() ([]byte, error) {
	switch c.Kind {
	case CellString:
		return json.Marshal(c.Str)
	case CellInt:
		return json.Marshal(c.Int)
	default:
		if math.IsNaN(c.Float) || math.IsInf(c.Float, 0) {
			return []byte("null"), nil
		}
		return json.Marshal(c.Float)
	}
}

// ResultKind discriminates Result nodes.
type ResultKind uint8

// Result kinds.
const (
	KindGroup ResultKind = iota
	KindTable
	KindSeries
	KindScalar
)

// String names the kind for JSON output.
func (k ResultKind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindSeries:
		return "series"
	case KindScalar:
		return "scalar"
	default:
		return "group"
	}
}

// Result is one node of a typed experiment result tree: a paper-layout
// table, a figure series, a scalar with a unit, or a group of children.
// Drivers return Result trees; Text and JSON are the two renderers.
type Result struct {
	Kind  ResultKind
	Name  string // machine name (the registry experiment name at a root)
	Title string // human heading (tables and series)

	// KindTable.
	Header []string
	Rows   [][]Cell

	// KindSeries: per-point x positions with one value per line.
	XName string
	Lines []string
	X     []float64
	Y     [][]float64

	// KindScalar.
	Value Cell
	Unit  string

	// KindGroup.
	Children []*Result

	// Errs carries the run failures attributed to this result's
	// experiment: workloads whose capture, replay or sinks faulted, so
	// the numbers above (if any) are partial. Both renderers surface the
	// list; a nil/empty Errs changes neither output by a byte.
	Errs []RunError
}

// RunError is one workload failure in renderer-ready form: which
// workload cell failed, on which execution edge, and the flattened
// cause. It mirrors engine.CellError without importing the engine, so
// report stays a leaf package.
type RunError struct {
	Workload string `json:"workload"`
	Stage    string `json:"stage"`
	Message  string `json:"message"`
}

// NewDegradedResult builds the result of an experiment that could not
// finish: an empty group carrying only the failures that stopped it.
func NewDegradedResult(name string, errs []RunError) *Result {
	return &Result{Kind: KindGroup, Name: name, Errs: errs}
}

// NewTableResult starts a table node.
func NewTableResult(title string, header ...string) *Result {
	return &Result{Kind: KindTable, Title: title, Header: header}
}

// AddRow appends a typed row; it panics on column-count mismatch, like
// the text-layout Table it renders through.
func (r *Result) AddRow(cells ...Cell) {
	if len(cells) != len(r.Header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(r.Header)))
	}
	r.Rows = append(r.Rows, cells)
}

// NewSeriesResult starts a series node.
func NewSeriesResult(title, xName string, lines ...string) *Result {
	return &Result{Kind: KindSeries, Title: title, XName: xName, Lines: lines}
}

// AddPoint appends one x position with its per-line values (NaN allowed).
func (r *Result) AddPoint(x float64, vals ...float64) {
	if len(vals) != len(r.Lines) {
		panic("report: series value count mismatch")
	}
	r.X = append(r.X, x)
	r.Y = append(r.Y, append([]float64(nil), vals...))
}

// NewScalar builds a scalar node with a unit ("" for dimensionless).
func NewScalar(name string, value Cell, unit string) *Result {
	return &Result{Kind: KindScalar, Name: name, Value: value, Unit: unit}
}

// NewGroup builds a group node over the given children.
func NewGroup(name string, children ...*Result) *Result {
	return &Result{Kind: KindGroup, Name: name, Children: children}
}

// Text renders a result tree in the paper text layout — the rendering
// the root golden tests pin byte for byte. A table node renders exactly
// like the legacy string-built Table; a series node like the legacy
// Series; a group concatenates its children separated by blank lines.
func Text(r *Result) string {
	if r == nil {
		return ""
	}
	body := textBody(r)
	if len(r.Errs) == 0 {
		return body
	}
	var b strings.Builder
	b.WriteString(body)
	if body != "" && !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	b.WriteString("errors:\n")
	for _, e := range r.Errs {
		fmt.Fprintf(&b, "  %s [%s]: %s\n", e.Workload, e.Stage, e.Message)
	}
	return b.String()
}

// textBody renders the node's regular content, without any error
// section.
func textBody(r *Result) string {
	switch r.Kind {
	case KindTable:
		tab := NewTable(r.Title, r.Header...)
		for _, row := range r.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				cells[i] = c.Text()
			}
			tab.AddRow(cells...)
		}
		return tab.String()
	case KindSeries:
		s := NewSeries(r.Title, r.XName, r.Lines...)
		for i, x := range r.X {
			s.Add(x, r.Y[i]...)
		}
		return s.String()
	case KindScalar:
		if r.Unit != "" {
			return fmt.Sprintf("%s = %s %s\n", r.Name, r.Value.Text(), r.Unit)
		}
		return fmt.Sprintf("%s = %s\n", r.Name, r.Value.Text())
	default:
		parts := make([]string, 0, len(r.Children))
		for _, c := range r.Children {
			parts = append(parts, Text(c))
		}
		return strings.Join(parts, "\n")
	}
}

// jsonCell wraps a float that may be NaN for JSON encoding.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// jsonPoint is one series point in the JSON encoding.
type jsonPoint struct {
	X      float64     `json:"x"`
	Values []jsonFloat `json:"values"`
}

// jsonResult is the JSON shape of a Result node.
type jsonResult struct {
	Kind     string      `json:"kind"`
	Name     string      `json:"name,omitempty"`
	Title    string      `json:"title,omitempty"`
	Header   []string    `json:"header,omitempty"`
	Rows     [][]Cell    `json:"rows,omitempty"`
	XName    string      `json:"x_name,omitempty"`
	Lines    []string    `json:"lines,omitempty"`
	Points   []jsonPoint `json:"points,omitempty"`
	Value    *Cell       `json:"value,omitempty"`
	Unit     string      `json:"unit,omitempty"`
	Children []*Result   `json:"children,omitempty"`
	Errors   []RunError  `json:"errors,omitempty"`
}

// MarshalJSON encodes the node with its kind spelled out and NaN values
// as null, so the output is plain JSON any consumer can parse.
func (r *Result) MarshalJSON() ([]byte, error) {
	j := jsonResult{
		Kind:     r.Kind.String(),
		Name:     r.Name,
		Title:    r.Title,
		Header:   r.Header,
		Rows:     r.Rows,
		XName:    r.XName,
		Lines:    r.Lines,
		Unit:     r.Unit,
		Children: r.Children,
		Errors:   r.Errs,
	}
	if r.Kind == KindSeries {
		j.Points = make([]jsonPoint, len(r.X))
		for i, x := range r.X {
			vals := make([]jsonFloat, len(r.Y[i]))
			for k, y := range r.Y[i] {
				vals[k] = jsonFloat(y)
			}
			j.Points[i] = jsonPoint{X: x, Values: vals}
		}
	}
	if r.Kind == KindScalar {
		v := r.Value
		j.Value = &v
	}
	return json.Marshal(j)
}

// JSON renders a result tree as indented, deterministic JSON — the
// machine-readable sibling of Text.
func JSON(r *Result) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// JSONArray renders a selection's results as the JSON array `memosim
// -json` prints: one JSON-rendered result per line group, comma-joined,
// wrapped in brackets. The byte layout is pinned — the service
// front-end serves these bytes and CI diffs them against the offline
// CLI, so any change here is a format break, not a cleanup.
func JSONArray(results []*Result) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString("[\n")
	for i, r := range results {
		buf, err := JSON(r)
		if err != nil {
			return nil, err
		}
		b.Write(buf)
		if i != len(results)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	return b.Bytes(), nil
}
