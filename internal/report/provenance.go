package report

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The fleet merge path. A sharded run must print the exact bytes a
// single process would have printed, so the coordinator never
// re-renders a clean cell: workers ship the JSON (and text) they
// rendered themselves, and the coordinator splices those bytes into the
// pinned JSONArray layout. Re-parsing and re-marshaling is not an
// option — the Result JSON encoding is deliberately lossy (cells drop
// their Kind and precision), so only byte splicing preserves identity.

// SpliceJSONArray assembles the JSONArray byte layout from per-result
// JSON documents already rendered by JSON(). For any selection,
// SpliceJSONArray of the individually rendered results is byte-equal
// to JSONArray of the Result values — a test pins the equivalence, so
// the two can never drift.
func SpliceJSONArray(docs [][]byte) []byte {
	var b bytes.Buffer
	b.WriteString("[\n")
	for i, doc := range docs {
		b.Write(doc)
		if i != len(docs)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	return b.Bytes()
}

// Provenance is the verification summary of a sharded run: the
// combined Merkle root plus every shard's verification outcome. It
// appears only in fleet output — single-process rendering is untouched.
type Provenance struct {
	// Root is the combined Merkle root over the per-shard roots (failed
	// shards contribute a degraded marker), so the final output attests
	// to exactly which cells are trustworthy.
	Root   string            `json:"root"`
	Shards []ShardProvenance `json:"shards"`
}

// ShardProvenance is one shard's outcome in the provenance block.
type ShardProvenance struct {
	Shard       int      `json:"shard"`
	Experiments []string `json:"experiments"`
	// Root is the shard's own verified Merkle root; empty when the
	// shard produced no verifiable output.
	Root string `json:"root,omitempty"`
	// Verified reports that the coordinator recomputed this shard's
	// root from the carried bytes and it matched.
	Verified bool `json:"verified"`
	// Degraded reports that some of the shard's cells carry errors
	// (worker-side failures, or the whole shard when Verified is false).
	Degraded bool `json:"degraded,omitempty"`
	// Attempts counts worker launches for the shard, retries included.
	Attempts int `json:"attempts,omitempty"`
	// Error flattens the terminal failure of an unverified shard.
	Error string `json:"error,omitempty"`
}

// AppendProvenance appends the provenance block to a rendered JSON
// array as one compact trailing line: `{"provenance":{...}}`. Keeping
// the block out of the array — rather than as an extra element inside
// it — means the array bytes above it stay byte-identical to a
// single-process run, and consumers (or CI) that want the plain array
// can drop the last line.
func AppendProvenance(body []byte, p *Provenance) ([]byte, error) {
	blob, err := json.Marshal(struct {
		Provenance *Provenance `json:"provenance"`
	}{p})
	if err != nil {
		return nil, fmt.Errorf("report: encoding provenance: %w", err)
	}
	out := make([]byte, 0, len(body)+len(blob)+1)
	out = append(out, body...)
	out = append(out, blob...)
	out = append(out, '\n')
	return out, nil
}
