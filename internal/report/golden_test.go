package report

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestTableGolden pins the paper-layout table rendering byte for byte:
// title, rules, column sizing, left-aligned name column, right-aligned
// value columns, '-' placeholders.
func TestTableGolden(t *testing.T) {
	tab := NewTable("Table X: golden layout sample",
		"application", "int mult", "fp mult", "fp div")
	tab.AddRow("vdiff", Ratio(0.47), Ratio(math.NaN()), Ratio(1.0))
	tab.AddRow("a-much-longer-name", Ratio(0.055), Ratio(0.5), Fixed(12.345, 2))
	tab.AddRow("x", "0", "-", Fixed(math.NaN(), 3))
	checkGolden(t, "table", tab.String())
}

// TestSeriesGolden pins the figure-listing rendering, including integer
// and fractional x positions and NaN cells.
func TestSeriesGolden(t *testing.T) {
	s := NewSeries("Figure X: golden series sample", "entries", "fmul", "fdiv")
	s.Add(8, 0.25, math.NaN())
	s.Add(32, 0.47, 0.62)
	s.Add(0.125, 1, 0.995)
	checkGolden(t, "series", s.String())
}

// TestUntitledTableGolden pins the title-less variant (no heading line).
func TestUntitledTableGolden(t *testing.T) {
	tab := NewTable("", "k", "v")
	tab.AddRow("a", "1")
	checkGolden(t, "table_untitled", tab.String())
}
