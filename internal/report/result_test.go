package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCellTextFormats(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Str("vdiff"), "vdiff"},
		{Int(39), "39"},
		{Int(-1), "-1"},
		{RatioCell(0.47), ".47"},
		{RatioCell(1.0), "1.00"},
		{RatioCell(math.NaN()), "-"},
		{FixedCell(12.345, 2), "12.35"},
		{FixedCell(math.NaN(), 3), "-"},
		{FloatCell(2.5, 3), "2.500"},
		{FloatCell(math.NaN(), 2), "NaN"},
	}
	for _, c := range cases {
		if got := c.cell.Text(); got != c.want {
			t.Errorf("cell %+v renders %q, want %q", c.cell, got, c.want)
		}
	}
}

func TestCellJSONEncodesNaNAsNull(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Str("x"), `"x"`},
		{Int(7), `7`},
		{RatioCell(0.5), `0.5`},
		{RatioCell(math.NaN()), `null`},
		{FixedCell(math.Inf(1), 2), `null`},
		{FloatCell(1.25, 2), `1.25`},
	}
	for _, c := range cases {
		buf, err := json.Marshal(c.cell)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != c.want {
			t.Errorf("cell %+v encodes %s, want %s", c.cell, buf, c.want)
		}
	}
}

// sampleResult builds a group exercising every node kind and cell kind.
func sampleResult() *Result {
	tab := NewTableResult("Table X: typed sample", "application", "fp mult", "fp div", "events")
	tab.AddRow(Str("vdiff"), RatioCell(0.47), RatioCell(math.NaN()), Int(1024))
	tab.AddRow(Str("vcost"), FixedCell(1.5, 2), FloatCell(0.125, 3), Int(0))
	tab.Name = "sample-table"

	ser := NewSeriesResult("Figure X: typed sample", "entries", "fmul", "fdiv")
	ser.AddPoint(8, 0.25, math.NaN())
	ser.AddPoint(32, 0.47, 0.62)
	ser.Name = "sample-series"

	sc := NewScalar("events-per-sec", FloatCell(4.75, 2), "M/s")
	return NewGroup("sample", tab, ser, sc)
}

// TestResultTextGolden pins the typed renderer's text byte for byte —
// the same bytes the string-built Table/Series emit.
func TestResultTextGolden(t *testing.T) {
	checkGolden(t, "result_text", Text(sampleResult()))
}

// TestResultJSONGolden pins the JSON encoding byte for byte; refresh with
// -update like the text goldens.
func TestResultJSONGolden(t *testing.T) {
	buf, err := JSON(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "result_json", string(buf)+"\n")
}

func TestResultJSONIsValidAndNaNFree(t *testing.T) {
	buf, err := JSON(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("output is not plain JSON: %v", err)
	}
	if strings.Contains(string(buf), "NaN") {
		t.Error("NaN leaked into JSON output")
	}
	if decoded["kind"] != "group" {
		t.Errorf("kind = %v", decoded["kind"])
	}
}

func TestTextMatchesLegacyTable(t *testing.T) {
	r := NewTableResult("T", "k", "v")
	r.AddRow(Str("a"), RatioCell(0.5))
	legacy := NewTable("T", "k", "v")
	legacy.AddRow("a", Ratio(0.5))
	if Text(r) != legacy.String() {
		t.Fatalf("typed table diverged from legacy rendering:\n%s\nvs\n%s", Text(r), legacy.String())
	}
}

func TestAddRowPanicsOnColumnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched row")
		}
	}()
	r := NewTableResult("T", "a", "b")
	r.AddRow(Str("only-one"))
}

func TestGroupAndScalarText(t *testing.T) {
	g := NewGroup("g",
		NewScalar("x", Int(3), "cycles"),
		NewScalar("y", Int(4), ""))
	got := Text(g)
	if got != "x = 3 cycles\n\ny = 4\n" {
		t.Fatalf("group text %q", got)
	}
	if Text(nil) != "" {
		t.Fatal("nil result must render empty")
	}
}

func TestErrorsSectionInTextAndJSON(t *testing.T) {
	r := NewTableResult("T", "k", "v")
	r.AddRow(Str("a"), Int(1))
	clean := Text(r)
	if strings.Contains(clean, "errors:") {
		t.Fatalf("clean result rendered an errors section:\n%s", clean)
	}

	r.Errs = []RunError{
		{Workload: "mm|vspatial|lenna@0", Stage: "sink", Message: "sink panicked"},
		{Workload: "sci|TRFD", Stage: "capture", Message: "injected fault"},
	}
	got := Text(r)
	if !strings.HasPrefix(got, clean) {
		t.Fatalf("errors section altered the regular rendering:\n%s", got)
	}
	for _, want := range []string{
		"errors:",
		"  mm|vspatial|lenna@0 [sink]: sink panicked\n",
		"  sci|TRFD [capture]: injected fault\n",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("text rendering %q missing %q", got, want)
		}
	}

	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Errors []RunError `json:"errors"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Errors) != 2 || decoded.Errors[0].Stage != "sink" {
		t.Fatalf("JSON errors round-trip = %+v", decoded.Errors)
	}
}

func TestDegradedResultRendering(t *testing.T) {
	r := NewDegradedResult("table7", []RunError{{Workload: "w", Stage: "replay", Message: "boom"}})
	got := Text(r)
	if !strings.HasPrefix(got, "errors:\n") || !strings.Contains(got, "w [replay]: boom") {
		t.Fatalf("degraded result text %q", got)
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(buf)
	if !strings.Contains(s, `"errors"`) || !strings.Contains(s, `"name":"table7"`) {
		t.Fatalf("degraded result JSON %s", s)
	}
}
