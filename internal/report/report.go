// Package report renders experiment results as fixed-width text tables
// and series listings, following the layout of the paper's tables and
// figures so reproduction output can be compared side by side.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows of cells under a header.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	widths  []int
	hasRows bool
}

// NewTable starts a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title, Header: header, widths: make([]int, len(header))}
	for i, h := range header {
		t.widths[i] = len(h)
	}
	return t
}

// AddRow appends a row; it panics on column-count mismatch.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("report: row has %d cells, header has %d", len(cells), len(t.Header)))
	}
	for i, c := range cells {
		if len(c) > t.widths[i] {
			t.widths[i] = len(c)
		}
	}
	t.rows = append(t.rows, cells)
	t.hasRows = true
}

// Ratio formats a hit ratio the way the paper prints it (".47"), with '-'
// for NaN (operation absent).
func Ratio(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	s := fmt.Sprintf("%.2f", v)
	return strings.TrimPrefix(s, "0")
}

// Fixed formats a value with the given number of decimals, '-' for NaN.
func Fixed(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	total := len(t.widths) + 1
	for _, w := range t.widths {
		total += w + 2
	}
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	rule := strings.Repeat("-", total)
	b.WriteString(rule)
	b.WriteByte('\n')
	t.writeRow(&b, t.Header)
	b.WriteString(rule)
	b.WriteByte('\n')
	for _, r := range t.rows {
		t.writeRow(&b, r)
	}
	b.WriteString(rule)
	b.WriteByte('\n')
	return b.String()
}

func (t *Table) writeRow(b *strings.Builder, cells []string) {
	b.WriteByte('|')
	for i, c := range cells {
		pad := t.widths[i] - len(c)
		if i == 0 {
			// First column is left-aligned (application names).
			b.WriteByte(' ')
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad+1))
		} else {
			b.WriteString(strings.Repeat(" ", pad+1))
			b.WriteString(c)
			b.WriteByte(' ')
		}
		b.WriteByte('|')
	}
	b.WriteByte('\n')
}

// Series renders an (x, y...) listing for a figure: one row per x value
// with one column per named line, the textual form of the paper's plots.
type Series struct {
	Title string
	XName string
	Lines []string
	xs    []float64
	ys    [][]float64
}

// NewSeries starts a figure listing.
func NewSeries(title, xName string, lines ...string) *Series {
	return &Series{Title: title, XName: xName, Lines: lines}
}

// Add appends one x position with its per-line values (NaN allowed).
func (s *Series) Add(x float64, vals ...float64) {
	if len(vals) != len(s.Lines) {
		panic("report: series value count mismatch")
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, append([]float64(nil), vals...))
}

// String renders the series as a table.
func (s *Series) String() string {
	t := NewTable(s.Title, append([]string{s.XName}, s.Lines...)...)
	for i, x := range s.xs {
		cells := make([]string, 0, len(s.Lines)+1)
		if x == math.Trunc(x) {
			cells = append(cells, fmt.Sprintf("%.0f", x))
		} else {
			cells = append(cells, fmt.Sprintf("%.3f", x))
		}
		for _, y := range s.ys[i] {
			cells = append(cells, Ratio(y))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
