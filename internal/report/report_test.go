package report

import (
	"math"
	"strings"
	"testing"
)

func TestRatioFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.47, ".47"},
		{0.5, ".50"},
		{1.0, "1.00"},
		{0, ".00"},
		{math.NaN(), "-"},
		{0.994, ".99"},
	}
	for _, c := range cases {
		if got := Ratio(c.v); got != c.want {
			t.Errorf("Ratio(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFixedFormatting(t *testing.T) {
	if got := Fixed(3.14159, 2); got != "3.14" {
		t.Errorf("Fixed = %q", got)
	}
	if got := Fixed(math.NaN(), 2); got != "-" {
		t.Errorf("Fixed(NaN) = %q", got)
	}
}

func TestTableLayout(t *testing.T) {
	tab := NewTable("Title", "name", "a", "b")
	tab.AddRow("first", ".47", "1.00")
	tab.AddRow("much-longer-name", "-", ".03")
	out := tab.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + rule + header + rule + 2 rows + rule.
	if len(lines) != 7 {
		t.Fatalf("%d lines, want 7:\n%s", len(lines), out)
	}
	width := len(lines[1])
	for i, l := range lines[1:] {
		if len(l) != width {
			t.Errorf("line %d width %d, want %d", i+1, len(l), width)
		}
	}
	if !strings.Contains(out, "much-longer-name") {
		t.Error("row content missing")
	}
}

func TestTablePanicsOnBadRow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched row accepted")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestSeries(t *testing.T) {
	s := NewSeries("Figure X", "entries", "fmul", "fdiv")
	s.Add(8, 0.11, 0.27)
	s.Add(16, 0.14, math.NaN())
	out := s.String()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "entries") {
		t.Error("series header incomplete")
	}
	if !strings.Contains(out, ".27") || !strings.Contains(out, "-") {
		t.Errorf("series values wrong:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched series row accepted")
		}
	}()
	s.Add(32, 0.5)
}
