package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// spliceFixture builds a mixed-kind selection exercising every node
// type the renderer emits.
func spliceFixture() []*Result {
	tab := NewTableResult("Hit ratios", "App", "Ratio")
	tab.AddRow(Str("mm"), RatioCell(0.47))
	tab.AddRow(Str("dec"), RatioCell(math.NaN()))
	tab.Name = "table1"

	ser := NewSeriesResult("Speedup", "entries", "mul", "div")
	ser.AddPoint(32, 1.1, 1.3)
	ser.AddPoint(64, 1.2, math.NaN())
	ser.Name = "figure4"

	deg := NewDegradedResult("table9", []RunError{{Workload: "mm|dec", Stage: "capture", Message: "boom"}})

	grp := NewGroup("group1", tab, NewScalar("speedup", FloatCell(1.5, 2), "x"))
	return []*Result{tab, ser, deg, grp}
}

// TestSpliceMatchesJSONArray pins the contract the fleet merge path
// stands on: splicing individually rendered documents produces the
// exact bytes JSONArray renders from the Result values. If either
// renderer changes shape, this fails before any distributed run can
// drift from the single-process output.
func TestSpliceMatchesJSONArray(t *testing.T) {
	results := spliceFixture()
	want, err := JSONArray(results)
	if err != nil {
		t.Fatalf("JSONArray: %v", err)
	}
	docs := make([][]byte, len(results))
	for i, r := range results {
		if docs[i], err = JSON(r); err != nil {
			t.Fatalf("JSON(%s): %v", r.Name, err)
		}
	}
	got := SpliceJSONArray(docs)
	if !bytes.Equal(got, want) {
		t.Fatalf("splice differs from direct render:\n--- splice\n%s\n--- direct\n%s", got, want)
	}

	// Subsets splice identically too — the per-shard case.
	want, err = JSONArray(results[:1])
	if err != nil {
		t.Fatal(err)
	}
	if got := SpliceJSONArray(docs[:1]); !bytes.Equal(got, want) {
		t.Fatal("single-document splice differs from direct render")
	}
	if got := SpliceJSONArray(nil); string(got) != "[\n]\n" {
		t.Fatalf("empty splice = %q", got)
	}
}

func TestAppendProvenance(t *testing.T) {
	body, err := JSONArray(spliceFixture())
	if err != nil {
		t.Fatal(err)
	}
	p := &Provenance{
		Root: strings.Repeat("ab", 32),
		Shards: []ShardProvenance{
			{Shard: 0, Experiments: []string{"table1"}, Root: strings.Repeat("cd", 32), Verified: true, Attempts: 1},
			{Shard: 1, Experiments: []string{"figure4"}, Degraded: true, Attempts: 3, Error: "worker exited 137"},
		},
	}
	out, err := AppendProvenance(body, p)
	if err != nil {
		t.Fatalf("AppendProvenance: %v", err)
	}
	if !bytes.HasPrefix(out, body) {
		t.Fatal("provenance block rewrote the array bytes")
	}
	tail := out[len(body):]
	if n := bytes.Count(tail, []byte{'\n'}); n != 1 || tail[len(tail)-1] != '\n' {
		t.Fatalf("provenance block is not one trailing line: %q", tail)
	}
	var decoded struct {
		Provenance *Provenance `json:"provenance"`
	}
	if err := json.Unmarshal(tail, &decoded); err != nil {
		t.Fatalf("provenance line does not decode: %v", err)
	}
	if decoded.Provenance.Root != p.Root || len(decoded.Provenance.Shards) != 2 {
		t.Fatal("provenance round trip lost fields")
	}
	if !decoded.Provenance.Shards[0].Verified || decoded.Provenance.Shards[1].Verified {
		t.Fatal("verified flags did not round-trip")
	}
}
