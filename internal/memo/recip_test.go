package memo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecipCacheBasics(t *testing.T) {
	rc := NewRecipCache(Paper32x4())
	if res, hit := rc.Apply(10, 4); res != 2.5 || hit {
		t.Fatalf("cold division: %g %v", res, hit)
	}
	// Same divisor, different dividend: the reciprocal cache hits where a
	// MEMO-TABLE would miss.
	if res, hit := rc.Apply(6, 4); res != 1.5 || !hit {
		t.Fatalf("same-divisor division: %g %v", res, hit)
	}
	if rc.Divisions() != 2 {
		t.Fatalf("divisions = %d", rc.Divisions())
	}
	if rc.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %g", rc.HitRatio())
	}
}

func TestRecipCacheTrivialBypass(t *testing.T) {
	rc := NewRecipCache(Paper32x4())
	if res, hit := rc.Apply(7, 1); res != 7 || hit {
		t.Fatal("x/1 must be handled by the detectors, not the cache")
	}
	if res, hit := rc.Apply(0, 3); res != 0 || hit {
		t.Fatal("0/x must be handled by the detectors")
	}
	if rc.Stats().Lookups != 0 {
		t.Fatal("trivial divisions reached the divisor table")
	}
}

func TestRecipCacheAlwaysCorrectlyRounded(t *testing.T) {
	rc := NewRecipCache(Config{Entries: 16, Ways: 2})
	f := func(abits, bbits uint64) bool {
		a, b := math.Float64frombits(abits), math.Float64frombits(bbits)
		res, _ := rc.Apply(a, b)
		want := a / b
		if math.IsNaN(res) && math.IsNaN(want) {
			return true
		}
		return math.Float64bits(res) == math.Float64bits(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRecipCacheDetectsRoundingMismatch(t *testing.T) {
	// Over many random divisions sharing divisors, a*(1/b) differs from
	// a/b in the last place for a measurable fraction — the cost the
	// correction step exists to pay for.
	rc := NewRecipCache(Infinite())
	mismBefore := rc.RoundingMismatch()
	for i := 0; i < 20000; i++ {
		a := 1 + float64(i%977)/977
		b := 1 + float64(i%31)/31
		rc.Apply(a, b)
	}
	if rc.RoundingMismatch() == mismBefore {
		t.Log("no double-rounding mismatches in this stream (possible but unusual)")
	}
	// Mismatch accounting must never exceed hits.
	if rc.RoundingMismatch() > rc.Stats().Hits {
		t.Fatal("mismatches exceed hits")
	}
}

func TestRecipCacheRejectsUnsupportedConfig(t *testing.T) {
	mustPanic(t, func() {
		NewRecipCache(Config{Entries: 32, Ways: 4, MantissaOnly: true})
	})
	mustPanic(t, func() {
		NewRecipCache(Config{Entries: 32, Ways: 4, NoCommutativeLookup: true})
	})
}

func TestRecipCacheDividendInsensitive(t *testing.T) {
	// Property: after one division by b, every further division by b hits
	// regardless of dividend (within table capacity).
	rc := NewRecipCache(Paper32x4())
	rc.Apply(1, 3)
	for i := 1; i <= 100; i++ {
		if _, hit := rc.Apply(float64(i)+0.5, 3); !hit {
			t.Fatalf("division %d by cached divisor missed", i)
		}
	}
}
