package memo

import (
	"math/rand"
	"sync"
	"testing"

	"memotable/internal/isa"
)

// stream builds a deterministic operand stream with heavy reuse, some
// commutative reversed pairs, and enough distinct values to force
// conflicts in a 32-entry geometry.
func stream(op isa.Op, n int) [][2]uint64 {
	rng := rand.New(rand.NewSource(42))
	out := make([][2]uint64, 0, n)
	enc := func(v float64) uint64 { return fbits(v) }
	if op == isa.OpIMul {
		enc = func(v float64) uint64 { return uint64(int64(v * 4)) }
	}
	for i := 0; i < n; i++ {
		a := enc(float64(rng.Intn(96)) + 0.5)
		b := enc(float64(rng.Intn(12)) + 2)
		if rng.Intn(4) == 0 {
			a, b = b, a // reversed-operand duplicates for commutative classes
		}
		out = append(out, [2]uint64{a, b})
	}
	return out
}

// feed pushes the stream through an accessor and returns nothing; the
// accessor's own stats are the observable.
func feed(events [][2]uint64, access func(a, b uint64)) {
	for _, ev := range events {
		access(ev[0], ev[1])
	}
}

// compute is an arbitrary deterministic stand-in result function.
func compute(a, b uint64) func() uint64 {
	return func() uint64 { return a*3 + b }
}

// TestStripedMatchesSingleTableSerial is the partition-exactness witness:
// a striped shared table fed serially performs, statistic for statistic,
// the same protocol as one plain table — across tagging schemes (integer
// low-bit hashing, fp mantissa-MSB hashing, mantissa-only tags) and both
// finite and infinite geometries.
func TestStripedMatchesSingleTableSerial(t *testing.T) {
	mant := Config{Entries: 64, Ways: 4, MantissaOnly: true}
	cases := []struct {
		name    string
		op      isa.Op
		cfg     Config
		stripes int
	}{
		{"imul-32x4-4stripes", isa.OpIMul, Paper32x4(), 4},
		{"fmul-32x4-4stripes", isa.OpFMul, Paper32x4(), 4},
		{"fdiv-32x4-2stripes", isa.OpFDiv, Paper32x4(), 2},
		{"fmul-64x4-8stripes", isa.OpFMul, Config{Entries: 64, Ways: 4}, 8},
		{"fmul-mantissa-4stripes", isa.OpFMul, mant, 4},
		{"fdiv-infinite-8stripes", isa.OpFDiv, Infinite(), 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events := stream(tc.op, 20000)
			plain := New(tc.op, tc.cfg)
			striped := NewSharedStriped(tc.op, tc.cfg, tc.stripes, tc.stripes)
			if striped.Stripes() != tc.stripes {
				t.Fatalf("stripes = %d, want %d", striped.Stripes(), tc.stripes)
			}
			feed(events, func(a, b uint64) { plain.Access(a, b, compute(a, b)) })
			feed(events, func(a, b uint64) { striped.Access(a, b, compute(a, b)) })
			if got, want := striped.Stats(), plain.Stats(); got != want {
				t.Fatalf("striped stats %+v diverge from single table %+v", got, want)
			}
			if got, want := striped.Len(), plain.Len(); got != want {
				t.Fatalf("striped len %d, single table %d", got, want)
			}
		})
	}
}

// TestStripedConcurrentMatchesSerial is the -race hammer: many goroutines
// drive a striped infinite table, whose hit/miss totals are
// order-independent (first access of a key misses and inserts, all others
// hit, and a commutative class's reversed twin resolves under the same
// stripe lock), so the final statistics must equal a serial run's.
func TestStripedConcurrentMatchesSerial(t *testing.T) {
	for _, op := range []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv} {
		events := stream(op, 40000)
		serial := NewSharedStriped(op, Infinite(), 8, 8)
		feed(events, func(a, b uint64) { serial.Access(a, b, compute(a, b)) })

		hammered := NewSharedStriped(op, Infinite(), 8, 8)
		const workers = 8
		var wg sync.WaitGroup
		chunk := (len(events) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(events) {
				hi = len(events)
			}
			wg.Add(1)
			go func(part [][2]uint64) {
				defer wg.Done()
				feed(part, func(a, b uint64) { hammered.Access(a, b, compute(a, b)) })
			}(events[lo:hi])
		}
		wg.Wait()

		if got, want := hammered.Stats(), serial.Stats(); got != want {
			t.Fatalf("%v: concurrent stats %+v diverge from serial %+v", op, got, want)
		}
		if got, want := hammered.Len(), serial.Len(); got != want {
			t.Fatalf("%v: concurrent len %d, serial %d", op, got, want)
		}
	}
}

// TestStripedLookupInsert exercises the explicit two-step protocol and
// Reset across stripes.
func TestStripedLookupInsert(t *testing.T) {
	s := NewSharedStriped(isa.OpFMul, Paper32x4(), 4, 4)
	a, b := fbits(2.5), fbits(3.0)
	if _, ok := s.Lookup(a, b); ok {
		t.Fatal("hit in empty table")
	}
	s.Insert(a, b, fbits(7.5))
	if v, ok := s.Lookup(a, b); !ok || v != fbits(7.5) {
		t.Fatalf("lookup after insert: %v %v", v, ok)
	}
	// Commutative reversed probe must land in the same stripe and hit.
	if v, ok := s.Lookup(b, a); !ok || v != fbits(7.5) {
		t.Fatalf("reversed lookup: %v %v", v, ok)
	}
	if s.Len() == 0 {
		t.Fatal("Len lost the entry")
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	if _, ok := s.Lookup(a, b); ok {
		t.Fatal("hit after Reset")
	}
}

// TestStripedConstruction covers the stripe-count validation and the
// automatic bank selection.
func TestStripedConstruction(t *testing.T) {
	// Auto selection: largest power of two within ports and geometry.
	if s := NewSharedStriped(isa.OpFMul, Paper32x4(), 4, 0); s.Stripes() != 4 {
		t.Fatalf("auto stripes = %d, want 4", s.Stripes())
	}
	// Paper32x4 has 8 sets; 16 ports must clamp to 8 stripes.
	if s := NewSharedStriped(isa.OpFMul, Paper32x4(), 16, 0); s.Stripes() != 8 {
		t.Fatalf("auto stripes = %d, want 8", s.Stripes())
	}
	if s := NewSharedStriped(isa.OpFMul, Infinite(), 3, 0); s.Stripes() != 2 {
		t.Fatalf("infinite auto stripes = %d, want 2", s.Stripes())
	}
	if s := NewSharedStriped(isa.OpFDiv, Paper32x4(), 1, 0); s.Stripes() != 1 || s.Ports() != 1 {
		t.Fatal("single-port table must fall back to one stripe")
	}
	mustPanic(t, func() { NewSharedStriped(isa.OpFMul, Paper32x4(), 0, 1) })
	mustPanic(t, func() { NewSharedStriped(isa.OpFMul, Paper32x4(), 4, 3) })  // not a power of two
	mustPanic(t, func() { NewSharedStriped(isa.OpFMul, Paper32x4(), 4, 16) }) // exceeds 8 sets
}

// TestSymmetricMix pins the stripe router's swap invariance.
func TestSymmetricMix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		if symmetricMix(a, b) != symmetricMix(b, a) {
			t.Fatalf("symmetricMix not symmetric for %#x, %#x", a, b)
		}
	}
}
