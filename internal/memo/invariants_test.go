package memo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"memotable/internal/isa"
)

// Invariant and property tests over the MEMO-TABLE's bookkeeping, beyond
// the behavioural cases in table_test.go.

func TestInsertEvictionConservation(t *testing.T) {
	// For any finite table and any access stream:
	//   valid entries == inserts - evictions, and never exceeds capacity.
	cfgs := []Config{
		{Entries: 8, Ways: 1}, {Entries: 32, Ways: 4},
		{Entries: 16, Ways: 16}, {Entries: 64, Ways: 2},
	}
	for _, cfg := range cfgs {
		tab := New(isa.OpFMul, cfg)
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < 5000; i++ {
			a := math.Float64bits(float64(rng.Intn(200)) + 0.5)
			b := math.Float64bits(float64(rng.Intn(20)) + 0.5)
			tab.Access(a, b, func() uint64 { return a ^ b })
		}
		st := tab.Stats()
		if got := uint64(tab.Len()); got != st.Inserts-st.Evictions {
			t.Errorf("%+v: Len %d != inserts %d - evictions %d",
				cfg, got, st.Inserts, st.Evictions)
		}
		if tab.Len() > cfg.Entries {
			t.Errorf("%+v: Len %d exceeds capacity", cfg, tab.Len())
		}
		if st.Lookups != st.Hits+st.Misses {
			t.Errorf("%+v: lookups %d != hits+misses %d",
				cfg, st.Lookups, st.Hits+st.Misses)
		}
	}
}

func TestHitImpliesPriorIdenticalAccess(t *testing.T) {
	// Property: a hit's returned value always equals what compute would
	// produce, for any stream drawn from a small operand universe (which
	// maximizes hits and evictions simultaneously).
	f := func(seed int64) bool {
		tab := New(isa.OpFDiv, Config{Entries: 8, Ways: 2})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			a := float64(rng.Intn(12)) + 2
			b := float64(rng.Intn(5)) + 2
			ab, bb := math.Float64bits(a), math.Float64bits(b)
			res, _ := tab.Access(ab, bb, func() uint64 {
				return math.Float64bits(a / b)
			})
			if res != math.Float64bits(a/b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallerTableNeverBeatsInfinite(t *testing.T) {
	// Property: on any stream, the infinite table's hit count dominates
	// any finite table's (inclusion-like property; holds because the
	// infinite table never evicts).
	f := func(seed int64) bool {
		small := New(isa.OpFMul, Config{Entries: 8, Ways: 2})
		inf := New(isa.OpFMul, Infinite())
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			a := math.Float64bits(float64(rng.Intn(40)) + 1.5)
			b := math.Float64bits(float64(rng.Intn(7)) + 1.5)
			small.Lookup(a, b)
			small.Insert(a, b, a^b)
			inf.Lookup(a, b)
			inf.Insert(a, b, a^b)
		}
		return inf.Stats().Hits >= small.Stats().Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUInclusionAtFixedSetCount(t *testing.T) {
	// LRU is a stack algorithm per set: at a FIXED set count, adding ways
	// can never lose hits (each set's smaller LRU stack is a prefix of
	// the larger one). Note this inclusion does NOT hold between, say,
	// direct-mapped and fully associative tables of equal capacity —
	// cyclic streams larger than capacity thrash global LRU while a
	// partitioned table retains some residents.
	f := func(seed int64) bool {
		small := New(isa.OpFDiv, Config{Entries: 32, Ways: 2}) // 16 sets
		big := New(isa.OpFDiv, Config{Entries: 64, Ways: 4})   // 16 sets
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			a := math.Float64bits(float64(rng.Intn(48)) + 1.25)
			b := math.Float64bits(float64(rng.Intn(3)) + 1.25)
			for _, tab := range []*Table{small, big} {
				tab.Access(a, b, func() uint64 { return a + b })
			}
		}
		return big.Stats().Hits >= small.Stats().Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCommutativeHitCountMonotone(t *testing.T) {
	// The commutative double compare can only add hits relative to
	// ordered-only lookup, on any stream.
	f := func(seed int64) bool {
		with := New(isa.OpFMul, Config{Entries: 16, Ways: 4})
		cfgOff := Config{Entries: 16, Ways: 4, NoCommutativeLookup: true}
		without := New(isa.OpFMul, cfgOff)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			a := math.Float64bits(float64(rng.Intn(10)) + 1.5)
			b := math.Float64bits(float64(rng.Intn(10)) + 1.5)
			with.Access(a, b, func() uint64 { return a ^ b })
			without.Access(a, b, func() uint64 { return a ^ b })
		}
		return with.Stats().Hits >= without.Stats().Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMantissaModeSupersetOfFullTags(t *testing.T) {
	// Mantissa tags merge full-value tags that differ only in exponent or
	// sign, so on normal-valued streams the mantissa table's hits
	// dominate the full table's at equal geometry.
	rng := rand.New(rand.NewSource(34))
	fullCfg := Paper32x4()
	mantCfg := Paper32x4()
	mantCfg.MantissaOnly = true
	full := New(isa.OpFMul, fullCfg)
	mant := New(isa.OpFMul, mantCfg)
	for i := 0; i < 20000; i++ {
		// Values sharing 8 mantissas across 4 exponents.
		a := math.Ldexp(1+float64(rng.Intn(8))/8, rng.Intn(4))
		b := math.Ldexp(1+float64(rng.Intn(8))/8, rng.Intn(4))
		ab, bb := math.Float64bits(a), math.Float64bits(b)
		full.Access(ab, bb, func() uint64 { return math.Float64bits(a * b) })
		mant.Access(ab, bb, func() uint64 { return math.Float64bits(a * b) })
	}
	if mant.Stats().Hits < full.Stats().Hits {
		t.Errorf("mantissa tags %d hits < full tags %d hits",
			mant.Stats().Hits, full.Stats().Hits)
	}
}

func TestUnarySqrtIgnoresSecondOperand(t *testing.T) {
	tab := New(isa.OpFSqrt, Paper32x4())
	a := math.Float64bits(9.0)
	tab.Insert(a, 0, math.Float64bits(3.0))
	if _, hit := tab.Lookup(a, 0); !hit {
		t.Fatal("sqrt entry not found")
	}
}

func TestStressManyConfigsNoPanic(t *testing.T) {
	// Exhaustive geometry sweep with a mixed special-value stream: no
	// configuration may panic or mis-handle specials.
	specials := []float64{0, math.Copysign(0, -1), 1, -1, math.Inf(1),
		math.Inf(-1), math.NaN(), math.Float64frombits(1), 1e308, 1e-308}
	for _, entries := range []int{8, 32, 128} {
		for _, ways := range []int{1, 2, 4} {
			for _, mant := range []bool{false, true} {
				cfg := Config{Entries: entries, Ways: ways, MantissaOnly: mant}
				for _, op := range []isa.Op{isa.OpFMul, isa.OpFDiv, isa.OpFSqrt, isa.OpIMul} {
					u := NewUnit(New(op, cfg), Integrated, nil)
					for _, a := range specials {
						for _, b := range specials {
							aa, bb := math.Float64bits(a), math.Float64bits(b)
							if op == isa.OpIMul {
								aa, bb = uint64(int64(a)), uint64(int64(b))
							}
							if op.Unary() {
								bb = 0
							}
							u.Apply(aa, bb)
						}
					}
				}
			}
		}
	}
}
