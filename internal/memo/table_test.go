package memo

import (
	"math"
	"testing"
	"testing/quick"

	"memotable/internal/isa"
)

func fbits(x float64) uint64 { return math.Float64bits(x) }

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{}, {Entries: 32, Ways: 4}, {Entries: 8, Ways: 1},
		{Entries: 16, Ways: 2}, {Entries: 8192, Ways: 4},
		{Entries: 64},         // fully associative
		{Entries: 4, Ways: 8}, // ways > entries: fully associative
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{Entries: -1}, {Entries: 3}, {Entries: 32, Ways: -2},
		{Entries: 32, Ways: 3}, {Entries: 48, Ways: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestConfigSets(t *testing.T) {
	cases := []struct {
		cfg  Config
		sets int
		bits uint
	}{
		{Config{Entries: 32, Ways: 4}, 8, 3},
		{Config{Entries: 32, Ways: 1}, 32, 5},
		{Config{Entries: 32}, 1, 0},
		{Config{Entries: 8192, Ways: 4}, 2048, 11},
		{Config{}, 0, 0},
	}
	for _, c := range cases {
		sets, bits := c.cfg.sets()
		if sets != c.sets || bits != c.bits {
			t.Errorf("sets(%+v) = %d,%d want %d,%d", c.cfg, sets, bits, c.sets, c.bits)
		}
	}
}

func TestNewPanicsOnBadInput(t *testing.T) {
	mustPanic(t, func() { New(isa.OpLoad, Paper32x4()) })
	mustPanic(t, func() { New(isa.OpFMul, Config{Entries: 3}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestBasicHitMiss(t *testing.T) {
	tab := New(isa.OpFDiv, Paper32x4())
	a, b := fbits(7.5), fbits(2.5)
	if _, hit := tab.Lookup(a, b); hit {
		t.Fatal("hit on empty table")
	}
	tab.Insert(a, b, fbits(3.0))
	res, hit := tab.Lookup(a, b)
	if !hit || res != fbits(3.0) {
		t.Fatalf("lookup = %v,%v want hit 3.0", math.Float64frombits(res), hit)
	}
	st := tab.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAccessComputesOnceOnRepeat(t *testing.T) {
	tab := New(isa.OpFMul, Paper32x4())
	calls := 0
	compute := func() uint64 { calls++; return fbits(6.0) }
	for i := 0; i < 5; i++ {
		res, hit := tab.Access(fbits(2.0), fbits(3.0), compute)
		if res != fbits(6.0) {
			t.Fatalf("wrong result on iteration %d", i)
		}
		if (i == 0) == hit {
			t.Fatalf("iteration %d: hit=%v", i, hit)
		}
	}
	if calls != 1 {
		t.Fatalf("compute called %d times, want 1", calls)
	}
}

func TestCommutativeLookup(t *testing.T) {
	for _, op := range []isa.Op{isa.OpFMul, isa.OpIMul} {
		tab := New(op, Paper32x4())
		a, b := uint64(fbits(2.5)), uint64(fbits(5.5))
		if op == isa.OpIMul {
			a, b = 12345, 678
		}
		tab.Insert(a, b, 99)
		if _, hit := tab.Lookup(b, a); !hit {
			t.Errorf("%v: reversed operands missed", op)
		}
	}
	// Division is not commutative: reversed operands must miss.
	tab := New(isa.OpFDiv, Paper32x4())
	tab.Insert(fbits(6.0), fbits(3.0), fbits(2.0))
	if _, hit := tab.Lookup(fbits(3.0), fbits(6.0)); hit {
		t.Error("fdiv: reversed operands hit")
	}
}

func TestNoCommutativeLookupAblation(t *testing.T) {
	cfg := Paper32x4()
	cfg.NoCommutativeLookup = true
	tab := New(isa.OpFMul, cfg)
	tab.Insert(fbits(2.5), fbits(5.5), fbits(13.75))
	if _, hit := tab.Lookup(fbits(5.5), fbits(2.5)); hit {
		t.Error("reversed operands hit despite disabled commutative lookup")
	}
	if _, hit := tab.Lookup(fbits(2.5), fbits(5.5)); !hit {
		t.Error("original order missed")
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	// Direct construction of conflicting integer keys: with 8 sets the
	// index is (a^b)&7; fix b=0 and use multiples of 8 to land in set 0.
	tab := New(isa.OpIMul, Config{Entries: 32, Ways: 4})
	keys := []uint64{8, 16, 24, 32, 40} // five conflicting pairs, 4 ways
	for _, k := range keys {
		tab.Insert(k, 8, k+1)
	}
	// The first-inserted (LRU) key must be gone; the rest present.
	if _, hit := tab.Lookup(8, 8); hit {
		t.Error("LRU entry survived eviction")
	}
	for _, k := range keys[1:] {
		if _, hit := tab.Lookup(k, 8); !hit {
			t.Errorf("key %d evicted unexpectedly", k)
		}
	}
	if tab.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", tab.Stats().Evictions)
	}
}

func TestLRURecencyUpdateOnHit(t *testing.T) {
	tab := New(isa.OpIMul, Config{Entries: 32, Ways: 4})
	for _, k := range []uint64{8, 16, 24, 32} {
		tab.Insert(k, 8, k)
	}
	// Touch the oldest entry, then insert a conflict: the second-oldest
	// must be the victim.
	tab.Lookup(8, 8)
	tab.Insert(40, 8, 40)
	if _, hit := tab.Lookup(8, 8); !hit {
		t.Error("recently used entry was evicted")
	}
	if _, hit := tab.Lookup(16, 8); hit {
		t.Error("LRU victim survived")
	}
}

func TestInfiniteTableNeverEvicts(t *testing.T) {
	tab := New(isa.OpFMul, Infinite())
	const n = 10000
	for i := 0; i < n; i++ {
		tab.Insert(fbits(float64(i)+0.5), fbits(2.0), fbits((float64(i)+0.5)*2))
	}
	for i := 0; i < n; i++ {
		if _, hit := tab.Lookup(fbits(float64(i)+0.5), fbits(2.0)); !hit {
			t.Fatalf("entry %d lost from infinite table", i)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	if tab.Stats().Evictions != 0 {
		t.Fatal("infinite table evicted")
	}
}

func TestResetClears(t *testing.T) {
	for _, cfg := range []Config{Paper32x4(), Infinite()} {
		tab := New(isa.OpFDiv, cfg)
		tab.Insert(fbits(6.0), fbits(3.0), fbits(2.0))
		tab.Reset()
		if tab.Len() != 0 {
			t.Errorf("%+v: Len after Reset = %d", cfg, tab.Len())
		}
		if _, hit := tab.Lookup(fbits(6.0), fbits(3.0)); hit {
			t.Errorf("%+v: hit after Reset", cfg)
		}
		st := tab.Stats()
		if st.Hits != 0 || st.Lookups != 1 {
			t.Errorf("%+v: stats not reset: %+v", cfg, st)
		}
	}
}

func TestIntegerIndexUsesLSBXor(t *testing.T) {
	tab := New(isa.OpIMul, Config{Entries: 32, Ways: 4})
	// (a^b)&7 identical for all of these: they must contend for one set.
	pairs := [][2]uint64{{1, 1}, {9, 9}, {17, 17}, {25, 25}, {33, 33}}
	for _, p := range pairs {
		tab.Insert(p[0], p[1], p[0]*p[1])
	}
	if ev := tab.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1 (all pairs map to one set)", ev)
	}
}

func TestFPIndexUsesMantissaMSBs(t *testing.T) {
	tab := New(isa.OpFMul, Config{Entries: 32, Ways: 4})
	// Values with identical top mantissa bits but different exponents map
	// to the same set; five of them against a fixed operand overflow a
	// 4-way set.
	for i := 0; i < 5; i++ {
		a := math.Ldexp(1.0, i) // mantissa 0 at every exponent
		tab.Insert(fbits(a), fbits(1.5), fbits(a*1.5))
	}
	if ev := tab.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestStatsAddAndRatios(t *testing.T) {
	a := Stats{Lookups: 10, Hits: 4, Misses: 6, Trivial: 2, Inserts: 6}
	b := Stats{Lookups: 5, Hits: 1, Misses: 4, Bypassed: 3}
	a.Add(b)
	if a.Lookups != 15 || a.Hits != 5 || a.Misses != 10 || a.Bypassed != 3 {
		t.Fatalf("Add result %+v", a)
	}
	if got := a.HitRatio(); math.Abs(got-5.0/15) > 1e-15 {
		t.Errorf("HitRatio = %g", got)
	}
	if got := a.IntegratedHitRatio(); math.Abs(got-7.0/17) > 1e-15 {
		t.Errorf("IntegratedHitRatio = %g", got)
	}
	if (Stats{}).HitRatio() != 0 || (Stats{}).IntegratedHitRatio() != 0 {
		t.Error("empty stats ratios not zero")
	}
	if a.Ops() != 15+2+3 {
		t.Errorf("Ops = %d", a.Ops())
	}
}

func TestMemoizedResultsBitExact(t *testing.T) {
	// Property: for any operand bit patterns, routing through a memo
	// table yields bit-identical results to direct computation.
	for _, op := range []isa.Op{isa.OpFMul, isa.OpFDiv, isa.OpFSqrt, isa.OpIMul} {
		tab := New(op, Config{Entries: 16, Ways: 2})
		u := NewUnit(tab, NonTrivialOnly, nil)
		ref := hostCompute(op)
		f := func(a, b uint64) bool {
			if op.Unary() {
				b = 0
			}
			got, _ := u.Apply(a, b)
			want := ref(a, b)
			// NaN payload-insensitive compare.
			if isNaNBits(got) && isNaNBits(want) {
				return true
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

func isNaNBits(b uint64) bool { return math.IsNaN(math.Float64frombits(b)) }
