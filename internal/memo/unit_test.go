package memo

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"memotable/internal/isa"
)

func TestUnitTrivialPolicies(t *testing.T) {
	// Sequence: 3*1 (trivial), 3*4 (non-trivial), 3*4 again, 5*0 (trivial).
	type step struct {
		a, b float64
		want Outcome
	}
	cases := []struct {
		policy TrivialPolicy
		steps  []step
	}{
		{NonTrivialOnly, []step{
			{3, 1, Trivial}, {3, 4, Miss}, {3, 4, Hit}, {5, 0, Trivial},
		}},
		{Integrated, []step{
			{3, 1, Trivial}, {3, 4, Miss}, {3, 4, Hit}, {5, 0, Trivial},
		}},
		{CacheAll, []step{
			{3, 1, Miss}, {3, 4, Miss}, {3, 4, Hit}, {3, 1, Hit}, {5, 0, Miss},
		}},
	}
	for _, c := range cases {
		u := NewUnit(New(isa.OpFMul, Paper32x4()), c.policy, nil)
		for i, s := range c.steps {
			res, out := u.FMul(s.a, s.b)
			if out != s.want {
				t.Errorf("%v step %d: outcome %v, want %v", c.policy, i, out, s.want)
			}
			if res != s.a*s.b {
				t.Errorf("%v step %d: result %g, want %g", c.policy, i, res, s.a*s.b)
			}
		}
	}
}

func TestUnitPolicyCounters(t *testing.T) {
	u := NewUnit(New(isa.OpFDiv, Paper32x4()), NonTrivialOnly, nil)
	u.FDiv(6, 1) // trivial
	u.FDiv(6, 2) // miss
	u.FDiv(6, 2) // hit
	u.FDiv(0, 5) // trivial
	if u.TotalOps() != 4 || u.TrivialOps() != 2 {
		t.Fatalf("totals = %d/%d, want 4/2", u.TotalOps(), u.TrivialOps())
	}
	st := u.Table().Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Trivial != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("non-trivial hit ratio = %g, want 0.5", st.HitRatio())
	}
}

func TestUnitIntegratedRatioCountsTrivialAsHits(t *testing.T) {
	u := NewUnit(New(isa.OpFMul, Paper32x4()), Integrated, nil)
	u.FMul(2, 1) // trivial -> counted as hit in integrated ratio
	u.FMul(2, 3) // miss
	u.FMul(2, 3) // hit
	st := u.Table().Stats()
	if got := st.IntegratedHitRatio(); math.Abs(got-2.0/3) > 1e-15 {
		t.Fatalf("integrated ratio = %g, want 2/3", got)
	}
}

func TestUnitWrongOpPanics(t *testing.T) {
	u := NewUnit(New(isa.OpFMul, Paper32x4()), NonTrivialOnly, nil)
	mustPanic(t, func() { u.FDiv(1, 2) })
	mustPanic(t, func() { u.FSqrt(2) })
	mustPanic(t, func() { u.IMul(1, 2) })
}

func TestUnitSqrt(t *testing.T) {
	u := NewUnit(New(isa.OpFSqrt, Paper32x4()), NonTrivialOnly, nil)
	if res, out := u.FSqrt(9); res != 3 || out != Miss {
		t.Fatalf("first sqrt: %g %v", res, out)
	}
	if res, out := u.FSqrt(9); res != 3 || out != Hit {
		t.Fatalf("second sqrt: %g %v", res, out)
	}
	if _, out := u.FSqrt(1); out != Trivial {
		t.Fatalf("sqrt(1) outcome %v", out)
	}
}

func TestUnitIMul(t *testing.T) {
	u := NewUnit(New(isa.OpIMul, Paper32x4()), NonTrivialOnly, nil)
	if res, out := u.IMul(-7, 9); res != -63 || out != Miss {
		t.Fatalf("imul: %d %v", res, out)
	}
	if res, out := u.IMul(9, -7); res != -63 || out != Hit {
		t.Fatalf("commutative imul: %d %v", res, out)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Miss, Hit, Trivial, Bypass} {
		if o.String() == "" || o.String() == "outcome(?)" {
			t.Errorf("bad String for %d", int(o))
		}
	}
	for _, p := range []TrivialPolicy{CacheAll, NonTrivialOnly, Integrated} {
		if p.String() == "" {
			t.Errorf("bad String for policy %d", int(p))
		}
	}
}

// --- Mantissa-only mode ---------------------------------------------------

func TestMantissaOnlyHitsAcrossExponents(t *testing.T) {
	cfg := Paper32x4()
	cfg.MantissaOnly = true
	u := NewUnit(New(isa.OpFMul, cfg), NonTrivialOnly, nil)
	if _, out := u.FMul(1.5, 2.5); out != Miss {
		t.Fatal("first op should miss")
	}
	// Same mantissas, different exponents: full-value tags would miss,
	// mantissa tags hit and the exponent is reconstructed.
	res, out := u.FMul(3.0, 5.0)
	if out != Hit {
		t.Fatalf("scaled operands: outcome %v, want Hit", out)
	}
	if res != 15.0 {
		t.Fatalf("reconstructed result %g, want 15", res)
	}
	// Sign reconstruction.
	res, out = u.FMul(-3.0, 5.0)
	if out != Hit || res != -15.0 {
		t.Fatalf("signed reconstruction: %g %v", res, out)
	}
}

func TestMantissaOnlyDiv(t *testing.T) {
	cfg := Paper32x4()
	cfg.MantissaOnly = true
	u := NewUnit(New(isa.OpFDiv, cfg), NonTrivialOnly, nil)
	u.FDiv(7.0, 2.0)
	res, out := u.FDiv(14.0, 4.0)
	if out != Hit || res != 3.5 {
		t.Fatalf("div reconstruction: %g %v", res, out)
	}
	res, out = u.FDiv(-7.0, 8.0)
	if out != Hit || res != -0.875 {
		t.Fatalf("div sign/exponent reconstruction: %g %v", res, out)
	}
}

func TestMantissaOnlySqrtParity(t *testing.T) {
	cfg := Paper32x4()
	cfg.MantissaOnly = true
	u := NewUnit(New(isa.OpFSqrt, cfg), NonTrivialOnly, nil)
	u.FSqrt(4.0) // mantissa 0, even exponent
	// 2.0 has mantissa 0 but odd exponent relative to 4.0: the parity bit
	// must keep these distinct (sqrt(2) has a different mantissa).
	if _, out := u.FSqrt(2.0); out == Hit {
		t.Fatal("sqrt parity collision: 2.0 hit entry for 4.0")
	}
	// 16.0: mantissa 0, same parity as 4.0 -> reconstructible hit.
	res, out := u.FSqrt(16.0)
	if out != Hit || res != 4.0 {
		t.Fatalf("sqrt reconstruction: %g %v", res, out)
	}
}

func TestMantissaOnlySpecialsBypass(t *testing.T) {
	cfg := Paper32x4()
	cfg.MantissaOnly = true
	u := NewUnit(New(isa.OpFMul, cfg), NonTrivialOnly, nil)
	sub := math.Float64frombits(1)
	res, out := u.FMul(sub, 3)
	if out != Miss {
		t.Fatalf("subnormal operand outcome %v", out)
	}
	if res != sub*3 {
		t.Fatalf("subnormal result %g", res)
	}
	if u.Table().Stats().Bypassed != 1 {
		t.Fatalf("bypassed = %d, want 1", u.Table().Stats().Bypassed)
	}
}

func TestMantissaOnlyRejectsOutOfRangeReconstruction(t *testing.T) {
	cfg := Paper32x4()
	cfg.MantissaOnly = true
	u := NewUnit(New(isa.OpFMul, cfg), NonTrivialOnly, nil)
	u.FMul(1.5, 1.5) // inserts mantissa of 2.25
	// Same mantissas at huge exponents: the true product overflows, so
	// the table must refuse the hit rather than fabricate a normal value.
	big := math.Ldexp(1.5, 1000)
	res, out := u.FMul(big, big)
	if out == Hit {
		t.Fatal("out-of-range reconstruction accepted")
	}
	if !math.IsInf(res, 1) {
		t.Fatalf("result %g, want +Inf", res)
	}
}

func TestMantissaOnlyBitExactProperty(t *testing.T) {
	for _, op := range []isa.Op{isa.OpFMul, isa.OpFDiv, isa.OpFSqrt} {
		cfg := Config{Entries: 16, Ways: 2, MantissaOnly: true}
		u := NewUnit(New(op, cfg), NonTrivialOnly, nil)
		ref := hostCompute(op)
		f := func(a, b uint64) bool {
			if op.Unary() {
				b = 0
			}
			got, _ := u.Apply(a, b)
			want := ref(a, b)
			if isNaNBits(got) && isNaNBits(want) {
				return true
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
			t.Errorf("%v: %v", op, err)
		}
	}
}

func TestSharedTableConcurrentAccess(t *testing.T) {
	sh := NewShared(New(isa.OpFDiv, Paper32x4()), 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a := fbits(float64(i%16) + 2.5)
				b := fbits(2.0)
				sh.Access(a, b, func() uint64 {
					return fbits((float64(i%16) + 2.5) / 2.0)
				})
			}
		}()
	}
	wg.Wait()
	st := sh.Stats()
	if st.Lookups != 4000 {
		t.Fatalf("lookups = %d, want 4000", st.Lookups)
	}
	if st.Hits == 0 {
		t.Fatal("shared table saw no cross-unit reuse")
	}
	if sh.Ports() != 2 {
		t.Fatalf("ports = %d", sh.Ports())
	}
	mustPanic(t, func() { NewShared(nil, 1) })
	mustPanic(t, func() { NewShared(New(isa.OpFMul, Paper32x4()), 0) })
}
