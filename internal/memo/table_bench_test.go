package memo

import (
	"math"
	"testing"

	"memotable/internal/isa"
)

// benchTable drives one table with a deterministic operand stream drawn
// from a pool of the given size: a small pool keeps the table hit-heavy
// (the probe path dominates), a large pool keeps it miss-and-evict-heavy
// (the insert path dominates).
func benchTable(b *testing.B, op isa.Op, cfg Config, pool uint64) {
	benchTableHint(b, op, cfg, pool, false)
}

// benchTableHint is benchTable with the last-hit-way hint switchable, so
// the hint's fast path can be measured against its own ablation on the
// same stream.
func benchTableHint(b *testing.B, op isa.Op, cfg Config, pool uint64, noHint bool) {
	t := New(op, cfg)
	t.noHint = noHint
	const streamLen = 4096
	as := make([]uint64, streamLen)
	bs := make([]uint64, streamLen)
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	for i := range as {
		av, bv := next()%pool, next()%pool
		switch {
		case op == isa.OpIMul:
			as[i], bs[i] = av+2, bv+2
		case op.Unary():
			as[i] = math.Float64bits(1.5 + float64(av*pool+bv))
		default:
			as[i] = math.Float64bits(1.5 + float64(av))
			bs[i] = math.Float64bits(2.5 + float64(bv))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % streamLen
		if _, hit := t.Lookup(as[j], bs[j]); !hit {
			t.Insert(as[j], bs[j], as[j]^bs[j])
		}
	}
}

// BenchmarkTable measures the probe/insert fast paths across the
// geometries the experiment matrix exercises most: the paper's 32/4
// baseline hot and cold, a direct-mapped variant, and the integer
// multiplier's XOR-indexed path.
func BenchmarkTable(b *testing.B) {
	b.Run("fmul-32x4-hot", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 4}, 5)
	})
	b.Run("fmul-32x4-cold", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 4}, 512)
	})
	b.Run("fmul-32x1-hot", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 1}, 5)
	})
	b.Run("fmul-32x1-cold", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 1}, 512)
	})
	b.Run("imul-32x4-hot", func(b *testing.B) {
		benchTable(b, isa.OpIMul, Config{Entries: 32, Ways: 4}, 5)
	})
	b.Run("fsqrt-32x4-hot", func(b *testing.B) {
		benchTable(b, isa.OpFSqrt, Config{Entries: 32, Ways: 4}, 5)
	})
	// Mixed hit/insert traffic is where the last-hit-way hint earns its
	// keep: inserts shift the hot entries deeper, so repeat hits resolve
	// on the hinted way instead of scanning past the fresh inserts.
	b.Run("fmul-32x4-mixed", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 4}, 64)
	})
}

// BenchmarkTableWayHint is the hint's before/after ablation on identical
// streams: the -nohint variants disable the hinted first probe (the
// maintenance writes stay, as they would in a real regression), pinning
// that the hint helps mixed traffic and costs nothing on the hot,
// cold, and 1-way paths.
func BenchmarkTableWayHint(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
		pool uint64
	}{
		{"fmul-32x4-hot", Config{Entries: 32, Ways: 4}, 5},
		{"fmul-32x4-mixed", Config{Entries: 32, Ways: 4}, 64},
		{"fmul-32x4-cold", Config{Entries: 32, Ways: 4}, 512},
		{"fmul-32x1-hot", Config{Entries: 32, Ways: 1}, 5},
		{"fmul-32x1-cold", Config{Entries: 32, Ways: 1}, 512},
	}
	for _, c := range cases {
		b.Run(c.name+"-hint", func(b *testing.B) {
			benchTableHint(b, isa.OpFMul, c.cfg, c.pool, false)
		})
		b.Run(c.name+"-nohint", func(b *testing.B) {
			benchTableHint(b, isa.OpFMul, c.cfg, c.pool, true)
		})
	}
}

// BenchmarkTableWayHintChurn is the hint's best case, isolated: a hot
// key re-hit between bursts of cold inserts into its own set. Each
// burst shifts the hot entry three ways deeper, so the unhinted probe
// scans past three fresh entries on every repeat hit while the hinted
// probe resolves it with one compare — the loop-carried recurrence
// pattern way-memoization targets.
func BenchmarkTableWayHintChurn(b *testing.B) {
	run := func(b *testing.B, noHint bool) {
		tb := New(isa.OpIMul, Config{Entries: 8, Ways: 8})
		tb.noHint = noHint
		const hot = 5
		tb.Insert(hot, hot, 1)
		churn := uint64(100)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%4 == 3 {
				if _, hit := tb.Lookup(hot, hot); !hit {
					b.Fatal("hot key missed")
				}
			} else {
				churn++
				tb.Insert(churn, churn, churn)
			}
		}
	}
	b.Run("hint", func(b *testing.B) { run(b, false) })
	b.Run("nohint", func(b *testing.B) { run(b, true) })
}
