package memo

import (
	"math"
	"testing"

	"memotable/internal/isa"
)

// benchTable drives one table with a deterministic operand stream drawn
// from a pool of the given size: a small pool keeps the table hit-heavy
// (the probe path dominates), a large pool keeps it miss-and-evict-heavy
// (the insert path dominates).
func benchTable(b *testing.B, op isa.Op, cfg Config, pool uint64) {
	t := New(op, cfg)
	const streamLen = 4096
	as := make([]uint64, streamLen)
	bs := make([]uint64, streamLen)
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	for i := range as {
		av, bv := next()%pool, next()%pool
		switch {
		case op == isa.OpIMul:
			as[i], bs[i] = av+2, bv+2
		case op.Unary():
			as[i] = math.Float64bits(1.5 + float64(av*pool+bv))
		default:
			as[i] = math.Float64bits(1.5 + float64(av))
			bs[i] = math.Float64bits(2.5 + float64(bv))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % streamLen
		if _, hit := t.Lookup(as[j], bs[j]); !hit {
			t.Insert(as[j], bs[j], as[j]^bs[j])
		}
	}
}

// BenchmarkTable measures the probe/insert fast paths across the
// geometries the experiment matrix exercises most: the paper's 32/4
// baseline hot and cold, a direct-mapped variant, and the integer
// multiplier's XOR-indexed path.
func BenchmarkTable(b *testing.B) {
	b.Run("fmul-32x4-hot", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 4}, 5)
	})
	b.Run("fmul-32x4-cold", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 4}, 512)
	})
	b.Run("fmul-32x1-hot", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 1}, 5)
	})
	b.Run("fmul-32x1-cold", func(b *testing.B) {
		benchTable(b, isa.OpFMul, Config{Entries: 32, Ways: 1}, 512)
	})
	b.Run("imul-32x4-hot", func(b *testing.B) {
		benchTable(b, isa.OpIMul, Config{Entries: 32, Ways: 4}, 5)
	})
	b.Run("fsqrt-32x4-hot", func(b *testing.B) {
		benchTable(b, isa.OpFSqrt, Config{Entries: 32, Ways: 4}, 5)
	})
}
