package memo

import (
	"math"
	"testing"

	"memotable/internal/isa"
)

// The last-hit-way hint is a pure probe-order optimization: it must
// never change a lookup's result, a hit/miss decision, the statistics,
// or the table's eviction behavior. These tests drive a hinted table and
// its ablation in lockstep over adversarial streams and demand identical
// observable state at every step.

// hintStream runs the same deterministic operation stream against a
// hinted and an unhinted table, comparing every outcome.
func hintStream(t *testing.T, op isa.Op, cfg Config, steps int, mix func(i int, r uint64) (kind int, a, b uint64)) {
	t.Helper()
	hinted := New(op, cfg)
	plain := New(op, cfg)
	plain.noHint = true
	seed := uint64(0x243f6a8885a308d3)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	for i := 0; i < steps; i++ {
		kind, a, b := mix(i, next())
		switch kind {
		case 0: // Lookup
			hv, hh := hinted.Lookup(a, b)
			pv, ph := plain.Lookup(a, b)
			if hv != pv || hh != ph {
				t.Fatalf("step %d: Lookup(%#x, %#x) hinted (%#x, %v) != plain (%#x, %v)",
					i, a, b, hv, hh, pv, ph)
			}
		case 1: // Access
			compute := func() uint64 { return a ^ b ^ 0xabcdef }
			hv, hh := hinted.Access(a, b, compute)
			pv, ph := plain.Access(a, b, compute)
			if hv != pv || hh != ph {
				t.Fatalf("step %d: Access(%#x, %#x) hinted (%#x, %v) != plain (%#x, %v)",
					i, a, b, hv, hh, pv, ph)
			}
		case 2: // Insert — including duplicate tags, the shadowing case
			hinted.Insert(a, b, a+b+uint64(i))
			plain.Insert(a, b, a+b+uint64(i))
		}
		if i%64 == 0 {
			if hinted.Stats() != plain.Stats() {
				t.Fatalf("step %d: stats diverged: hinted %+v plain %+v", i, hinted.Stats(), plain.Stats())
			}
			if hinted.Len() != plain.Len() {
				t.Fatalf("step %d: Len diverged: %d vs %d", i, hinted.Len(), plain.Len())
			}
		}
	}
	if hinted.Stats() != plain.Stats() {
		t.Fatalf("final stats diverged: hinted %+v plain %+v", hinted.Stats(), plain.Stats())
	}
}

// TestWayHintMatchesScan: random mixed traffic over several geometries
// must be observationally identical with and without the hint.
func TestWayHintMatchesScan(t *testing.T) {
	fmulOperand := func(r uint64, pool uint64) uint64 {
		return math.Float64bits(1.5 + float64(r%pool))
	}
	for _, cfg := range []Config{
		{Entries: 32, Ways: 4},
		{Entries: 32, Ways: 8},
		{Entries: 32, Ways: 1},
		{Entries: 8, Ways: 2},
	} {
		mix := func(i int, r uint64) (int, uint64, uint64) {
			return int(r % 3), fmulOperand(r>>8, 48), fmulOperand(r>>24, 48)
		}
		hintStream(t, isa.OpFMul, cfg, 20000, mix)
	}
	// Integer multiply exercises the XOR set index.
	imulMix := func(i int, r uint64) (int, uint64, uint64) {
		return int(r % 3), 2 + r>>8%64, 2 + r>>24%64
	}
	hintStream(t, isa.OpIMul, Config{Entries: 32, Ways: 4}, 20000, imulMix)
}

// TestWayHintDuplicateInsertShadowing pins the one hazardous
// interleaving directly: hit an entry, shift it deeper with unrelated
// inserts (the hint now points past way 0), then Insert the same tag
// again. The hinted probe must return the fresh value, not the stale
// shadowed entry the hint used to track.
func TestWayHintDuplicateInsertShadowing(t *testing.T) {
	// Entries == Ways makes a single set, so every key shares it and the
	// shifts land where the test expects.
	tb := New(isa.OpIMul, Config{Entries: 4, Ways: 4})
	const k = 7
	tb.Insert(k, k, 100)
	if v, hit := tb.Lookup(k, k); !hit || v != 100 {
		t.Fatalf("Lookup(k) = %d, %v; want 100, true", v, hit)
	}
	// Two unrelated inserts shift k's entry to way 2; the hint tracks it.
	tb.Insert(11, 11, 1)
	tb.Insert(13, 13, 2)
	// Shadow it: a fresh value for the same tag lands at way 0.
	tb.Insert(k, k, 200)
	if v, hit := tb.Lookup(k, k); !hit || v != 200 {
		t.Fatalf("Lookup(k) after shadowing = %d, %v; want 200, true", v, hit)
	}
}

// TestWayHintSurvivesReset: Reset must clear hints along with entries.
func TestWayHintSurvivesReset(t *testing.T) {
	tb := New(isa.OpIMul, Config{Entries: 8, Ways: 4})
	tb.Insert(3, 3, 9)
	if _, hit := tb.Lookup(3, 3); !hit {
		t.Fatal("miss before reset")
	}
	tb.Insert(5, 5, 25)
	tb.Reset()
	if v, hit := tb.Lookup(3, 3); hit {
		t.Fatalf("hit after Reset: %d", v)
	}
	for _, h := range tb.hint {
		if h != 0 {
			t.Fatalf("hint survived Reset: %v", tb.hint)
		}
	}
}
