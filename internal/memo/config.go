// Package memo implements the paper's MEMO-TABLE: a cache-like lookup
// table attached to a multi-cycle computation unit. Operands are presented
// to the table and the unit in parallel; a tag hit supplies the result of a
// previous identical computation in a single cycle and the unit's
// computation is aborted, while a miss costs nothing and the unit's result
// is inserted for future reuse (§2 of Citron, Feitelson & Rudolph,
// ASPLOS 1998).
package memo

import (
	"fmt"

	"memotable/internal/isa"
)

// TrivialPolicy selects how trivial operations (multiply by 0/1, divide by
// 1, zero dividend, sqrt of 0/1) interact with the table. Table 9 of the
// paper compares all three.
type TrivialPolicy int

const (
	// CacheAll stores trivial operations in the table like any other
	// (column "all" in Table 9).
	CacheAll TrivialPolicy = iota
	// NonTrivialOnly keeps trivial operations out of the table entirely;
	// they are excluded from the hit ratio (column "non"). This is the
	// paper's default for all experiments outside Table 9.
	NonTrivialOnly
	// Integrated detects trivial operations ahead of the lookup and
	// returns their result immediately; they count as hits but are never
	// inserted (column "intgr").
	Integrated
)

// String names the policy with the paper's column labels.
func (p TrivialPolicy) String() string {
	switch p {
	case CacheAll:
		return "all"
	case NonTrivialOnly:
		return "non"
	case Integrated:
		return "intgr"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config describes a MEMO-TABLE's geometry and tagging scheme.
type Config struct {
	// Entries is the total entry count. Zero means "infinite": the
	// idealized, unbounded fully associative table the paper uses to
	// measure reuse potential.
	Entries int
	// Ways is the set associativity. Zero (or Ways >= Entries) means
	// fully associative. The paper's basic configuration is 32 entries in
	// sets of 4 (8 rows).
	Ways int
	// MantissaOnly tags floating-point operands by their 52 mantissa bits
	// alone (§2.1's first variation, evaluated in Table 10). The table
	// then reconstructs the result's exponent from the requesting
	// operands. Ignored for integer operations.
	MantissaOnly bool
	// NoCommutativeLookup disables the reversed-operand compare for
	// commutative operations (§2.2). Off by default — the paper's tables
	// perform both compares; this switch exists for the ablation bench.
	NoCommutativeLookup bool
}

// Paper32x4 is the paper's basic configuration: 32 entries, 4-way
// associative, full values tagged, non-trivial operations only.
func Paper32x4() Config { return Config{Entries: 32, Ways: 4} }

// Infinite is the idealized unbounded fully associative table.
func Infinite() Config { return Config{} }

// Validate checks geometric consistency: Entries must be a power of two
// (the index hash produces log2(sets) bits) and divisible by Ways.
func (c Config) Validate() error {
	if c.Entries == 0 {
		return nil // infinite table: geometry-free
	}
	if c.Entries < 0 {
		return fmt.Errorf("memo: negative entry count %d", c.Entries)
	}
	if c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("memo: entries %d not a power of two", c.Entries)
	}
	if c.Ways < 0 {
		return fmt.Errorf("memo: negative associativity %d", c.Ways)
	}
	if c.Ways == 0 || c.Ways > c.Entries {
		return nil // fully associative
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("memo: entries %d not divisible by ways %d", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("memo: set count %d not a power of two", sets)
	}
	return nil
}

// sets returns the number of sets and the index bit count.
func (c Config) sets() (n int, bits uint) {
	if c.Entries == 0 {
		return 0, 0
	}
	ways := c.Ways
	if ways == 0 || ways > c.Entries {
		ways = c.Entries
	}
	n = c.Entries / ways
	for s := n; s > 1; s >>= 1 {
		bits++
	}
	return n, bits
}

// Stats accumulates a table's event counts. The paper's two success
// indicators — hit ratio and (via the cycle model) speedup — both derive
// from these.
type Stats struct {
	Lookups   uint64 // operand pairs presented to the tag compare
	Hits      uint64 // tag matches
	Misses    uint64 // failed lookups (result inserted afterwards)
	Trivial   uint64 // operations answered by the trivial-op detectors
	Bypassed  uint64 // operations that skipped the table (policy or specials)
	Inserts   uint64 // entries written
	Evictions uint64 // valid entries displaced
}

// HitRatio is Hits/Lookups — the paper's per-table hit ratio, which
// excludes trivial operations under the NonTrivialOnly policy.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// IntegratedHitRatio counts trivial detections as hits over all
// operations, the "intgr" column of Table 9.
func (s Stats) IntegratedHitRatio() float64 {
	total := s.Lookups + s.Trivial
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Trivial) / float64(total)
}

// Ops is the total operations observed (table lookups + trivial +
// bypassed).
func (s Stats) Ops() uint64 { return s.Lookups + s.Trivial + s.Bypassed }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Lookups += other.Lookups
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Trivial += other.Trivial
	s.Bypassed += other.Bypassed
	s.Inserts += other.Inserts
	s.Evictions += other.Evictions
}

// opName guards against tables built for non-memoizable classes.
func validateOp(op isa.Op) {
	if !op.Memoizable() {
		panic(fmt.Sprintf("memo: op %v is not a multi-cycle memoizable class", op))
	}
}
