package memo

import (
	"math"

	"memotable/internal/arith"
	"memotable/internal/isa"
)

// RecipCache is the reciprocal cache of Oberman & Flynn ("Reducing
// Division Latency with Reciprocal Caches", 1996), the closest prior
// technique the paper cites (§1.1). Instead of memoizing full
// (dividend, divisor) -> quotient tuples, it caches the divisor's
// reciprocal: a hit converts the division a/b into the multiply a*(1/b),
// completing in the multiplier's latency rather than one cycle, and is
// insensitive to the dividend — so its hit ratio upper-bounds any
// divisor-reuse scheme while its per-hit saving is smaller than a
// MEMO-TABLE's.
//
// The reproduction implements it as a comparison baseline with the same
// geometry vocabulary (entries, ways, LRU) as a MEMO-TABLE.
//
// Accuracy note: a*(1/b) can differ from the correctly rounded a/b in the
// last place (double rounding); the hardware proposal pairs the cache
// with a correction step. Apply therefore always returns the correctly
// rounded quotient and reports whether the fast path supplied it, and
// RoundingMismatch counts how often the uncorrected fast path would have
// been off — a measurable cost of the baseline.
type RecipCache struct {
	table            *Table
	divisions        uint64
	trivial          uint64
	roundingMismatch uint64
}

// NewRecipCache builds a reciprocal cache with the given geometry. The
// MantissaOnly and NoCommutativeLookup options do not apply and must be
// unset.
func NewRecipCache(cfg Config) *RecipCache {
	if cfg.MantissaOnly || cfg.NoCommutativeLookup {
		panic("memo: RecipCache supports only plain geometries")
	}
	// The Table machinery is reused with the divisor as the whole key:
	// OpFSqrt gives unary (single-operand) probing semantics.
	return &RecipCache{table: New(isa.OpFSqrt, cfg)}
}

// Apply runs one division through the cache. It returns the correctly
// rounded quotient and whether the reciprocal was supplied by the cache
// (so the operation completes in multiply latency rather than divide
// latency).
func (rc *RecipCache) Apply(a, b float64) (float64, bool) {
	rc.divisions++
	exact := a / b
	if tr, _ := arith.ClassifyFDiv(a, b); tr.Trivial() {
		rc.trivial++
		return exact, false
	}
	bBits := math.Float64bits(b)
	recipBits, hit := rc.table.Access(bBits, 0, func() uint64 {
		return math.Float64bits(1 / b)
	})
	if hit {
		fast := a * math.Float64frombits(recipBits)
		if math.Float64bits(fast) != math.Float64bits(exact) {
			rc.roundingMismatch++
		}
	}
	return exact, hit
}

// Stats exposes the underlying divisor table's counters.
func (rc *RecipCache) Stats() Stats { return rc.table.Stats() }

// HitRatio is the fraction of non-trivial divisions served from the
// cache.
func (rc *RecipCache) HitRatio() float64 { return rc.table.Stats().HitRatio() }

// Divisions returns the number of divisions presented.
func (rc *RecipCache) Divisions() uint64 { return rc.divisions }

// RoundingMismatch returns how many hits would have produced a result
// differing from the correctly rounded quotient without a correction
// step.
func (rc *RecipCache) RoundingMismatch() uint64 { return rc.roundingMismatch }
