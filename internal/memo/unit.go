package memo

import (
	"math"

	"memotable/internal/arith"
	"memotable/internal/isa"
)

// Outcome classifies how an operation presented to a memo-enhanced
// computation unit was satisfied.
type Outcome int

const (
	// Miss: the multi-cycle unit performed the computation (and the
	// result was inserted into the table).
	Miss Outcome = iota
	// Hit: the MEMO-TABLE supplied the result in a single cycle.
	Hit
	// Trivial: the trivial-operand detectors answered (Integrated
	// policy), or the operation was excluded from the table
	// (NonTrivialOnly policy) and computed by its short path.
	Trivial
	// Bypass: the operands cannot be tagged (mantissa-only mode specials)
	// and went straight to the unit.
	Bypass
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Trivial:
		return "trivial"
	case Bypass:
		return "bypass"
	default:
		return "outcome(?)"
	}
}

// Unit is a computation unit with an adjacent MEMO-TABLE, the arrangement
// of Figure 1: operands forwarded in parallel to the unit and the table,
// the unit aborted on a hit. Compute supplies the unit semantics on raw
// bit patterns; if nil, the host FPU is used.
type Unit struct {
	table   *Table
	policy  TrivialPolicy
	compute func(a, b uint64) uint64

	// Counters for the Table 9 policy comparison.
	totalOps   uint64
	trivialOps uint64
}

// NewUnit wires a table to a unit. compute may be nil to use host
// arithmetic (the common case for trace capture; the arith package units
// can be supplied to model real datapaths).
func NewUnit(table *Table, policy TrivialPolicy, compute func(a, b uint64) uint64) *Unit {
	if table == nil {
		panic("memo: NewUnit requires a table")
	}
	u := &Unit{table: table, policy: policy, compute: compute}
	if u.compute == nil {
		u.compute = hostCompute(table.Op())
	}
	return u
}

func hostCompute(op isa.Op) func(a, b uint64) uint64 {
	switch op {
	case isa.OpIMul:
		return func(a, b uint64) uint64 {
			return uint64(int64(a) * int64(b))
		}
	case isa.OpFMul:
		return func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
		}
	case isa.OpFDiv:
		return func(a, b uint64) uint64 {
			return math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b))
		}
	case isa.OpFSqrt:
		return func(a, _ uint64) uint64 {
			return math.Float64bits(math.Sqrt(math.Float64frombits(a)))
		}
	default:
		panic("memo: no host semantics for op " + op.String())
	}
}

// Table returns the unit's MEMO-TABLE.
func (u *Unit) Table() *Table { return u.table }

// Policy returns the unit's trivial-operation policy.
func (u *Unit) Policy() TrivialPolicy { return u.policy }

// TotalOps returns the number of operations presented to the unit.
func (u *Unit) TotalOps() uint64 { return u.totalOps }

// TrivialOps returns how many presented operations were trivial.
func (u *Unit) TrivialOps() uint64 { return u.trivialOps }

// Apply presents an operand pair (raw bit patterns; b must be 0 for unary
// classes) to the unit+table pair and returns the result bits and how they
// were obtained.
func (u *Unit) Apply(a, b uint64) (uint64, Outcome) {
	u.totalOps++
	trivial, trivialResult := u.classify(a, b)
	if trivial {
		u.trivialOps++
		switch u.policy {
		case Integrated:
			// Detected ahead of the table; counted as a table-level
			// trivial answer, never inserted.
			u.table.stats.Trivial++
			return trivialResult, Trivial
		case NonTrivialOnly:
			// Excluded from the table; the short-latency path computes.
			u.table.stats.Trivial++
			return trivialResult, Trivial
		}
		// CacheAll falls through: trivial ops use the table like any op.
	}
	res, hit := u.table.Access(a, b, func() uint64 { return u.compute(a, b) })
	if hit {
		return res, Hit
	}
	return res, Miss
}

// classify runs the trivial-operand detectors for the unit's class.
func (u *Unit) classify(a, b uint64) (bool, uint64) {
	switch u.table.Op() {
	case isa.OpIMul:
		tr, res := arith.ClassifyIMul(int64(a), int64(b))
		return tr.Trivial(), uint64(res)
	case isa.OpFMul:
		tr, res := arith.ClassifyFMul(math.Float64frombits(a), math.Float64frombits(b))
		return tr.Trivial(), math.Float64bits(res)
	case isa.OpFDiv:
		tr, res := arith.ClassifyFDiv(math.Float64frombits(a), math.Float64frombits(b))
		return tr.Trivial(), math.Float64bits(res)
	case isa.OpFSqrt:
		tr, res := arith.ClassifyFSqrt(math.Float64frombits(a))
		return tr.Trivial(), math.Float64bits(res)
	}
	return false, 0
}

// FMul runs a floating-point multiplication through the unit.
func (u *Unit) FMul(a, b float64) (float64, Outcome) {
	u.mustOp(isa.OpFMul)
	r, o := u.Apply(math.Float64bits(a), math.Float64bits(b))
	return math.Float64frombits(r), o
}

// FDiv runs a floating-point division through the unit.
func (u *Unit) FDiv(a, b float64) (float64, Outcome) {
	u.mustOp(isa.OpFDiv)
	r, o := u.Apply(math.Float64bits(a), math.Float64bits(b))
	return math.Float64frombits(r), o
}

// FSqrt runs a floating-point square root through the unit.
func (u *Unit) FSqrt(a float64) (float64, Outcome) {
	u.mustOp(isa.OpFSqrt)
	r, o := u.Apply(math.Float64bits(a), 0)
	return math.Float64frombits(r), o
}

// IMul runs an integer multiplication through the unit.
func (u *Unit) IMul(a, b int64) (int64, Outcome) {
	u.mustOp(isa.OpIMul)
	r, o := u.Apply(uint64(a), uint64(b))
	return int64(r), o
}

func (u *Unit) mustOp(op isa.Op) {
	if u.table.Op() != op {
		panic("memo: unit serves " + u.table.Op().String() + ", not " + op.String())
	}
}
