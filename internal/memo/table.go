package memo

import (
	"math"

	"memotable/internal/arith"
	"memotable/internal/isa"
)

// Table is a MEMO-TABLE: a cache-like lookup table keyed by operand values
// (not instruction addresses — unlike a reuse buffer, a loop-unrolled
// recurrence of the same values still hits, §1.1). One table serves one
// operation class.
//
// Geometry follows §2.1: Entries/Ways sets, each entry holding a large tag
// (the two operand values, or their mantissas) and the one-word result.
// Replacement is LRU within a set. The index hash follows §3.1: integer
// operands XOR their n least significant bits, floating-point operands XOR
// the n most significant bits of their mantissas, where 2^n is the set
// count.
type Table struct {
	op      isa.Op
	cfg     Config
	numSets int
	idxBits uint
	ways    int
	sets    [][]entry // MRU-first within each set
	// hint[s] is the way where set s's last-hit entry now sits — the
	// way-memoization fast path (Ishihara & Fallah): probe it with a
	// single compare before the associative scan. MRU reordering pins a
	// fresh hit at way 0 (where the scan starts anyway), so the hint
	// earns its keep after inserts shift the last-hit entry deeper; it
	// is tracked across those shifts and cleared when the entry is
	// evicted or shadowed. 0 means "no useful hint". nil when ways == 1
	// or in infinite mode, where no scan exists to shortcut.
	hint   []uint16
	noHint bool // ablation switch for the before/after benchmark
	inf    map[tagKey]stored
	stats  Stats
}

type tagKey struct{ a, b uint64 }

type stored struct {
	val uint64
	aux int32 // mantissa-only mode: result exponent displacement
}

type entry struct {
	tag tagKey
	stored
	valid bool
}

// New builds a MEMO-TABLE for the given operation class. It panics if op
// is not memoizable or the configuration is inconsistent, since both are
// programming errors.
func New(op isa.Op, cfg Config) *Table {
	validateOp(op)
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	t := &Table{op: op, cfg: cfg}
	if cfg.Entries == 0 {
		t.inf = make(map[tagKey]stored)
		return t
	}
	t.numSets, t.idxBits = cfg.sets()
	t.ways = cfg.Entries / t.numSets
	t.sets = make([][]entry, t.numSets)
	backing := make([]entry, cfg.Entries)
	for i := range t.sets {
		t.sets[i], backing = backing[:t.ways], backing[t.ways:]
	}
	if t.ways > 1 {
		t.hint = make([]uint16, t.numSets)
	}
	return t
}

// Op returns the operation class the table serves.
func (t *Table) Op() isa.Op { return t.op }

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (t *Table) Stats() Stats { return t.stats }

// Reset clears all entries and statistics.
func (t *Table) Reset() {
	t.stats = Stats{}
	if t.inf != nil {
		t.inf = make(map[tagKey]stored)
		return
	}
	for _, set := range t.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
	for i := range t.hint {
		t.hint[i] = 0
	}
}

// Access performs the full per-operation protocol of §2.2 on raw operand
// bit patterns: present (a, b) to the tag compare; on a hit return the
// stored result in place of the computation; on a miss invoke compute (the
// multi-cycle unit) and insert its result. The returned flag reports a hit.
//
// For unary operations b must be zero. Integer operands are two's
// complement patterns; floating-point operands are IEEE-754 bit patterns.
func (t *Table) Access(a, b uint64, compute func() uint64) (uint64, bool) {
	key, ok := t.key(a, b)
	if !ok {
		// Operand combination the tagging scheme cannot represent
		// (special or subnormal values in mantissa-only mode): the
		// operands skip the table and go straight to the unit.
		t.stats.Bypassed++
		return compute(), false
	}
	t.stats.Lookups++
	if st, hit := t.probe(key); hit {
		if res, ok := t.reconstruct(st, a, b); ok {
			t.stats.Hits++
			return res, true
		}
		// Reconstruction out of range (mantissa-only mode only): the
		// range check in the comparator rejects the hit.
	}
	t.stats.Misses++
	res := compute()
	t.insert(key, a, b, res)
	return res, false
}

// Lookup probes the table without inserting on a miss and without invoking
// any unit. It still updates recency and statistics, making it suitable
// for trace-driven hit-ratio measurement where results are not needed.
func (t *Table) Lookup(a, b uint64) (uint64, bool) {
	key, ok := t.key(a, b)
	if !ok {
		t.stats.Bypassed++
		return 0, false
	}
	t.stats.Lookups++
	if st, hit := t.probe(key); hit {
		if res, ok := t.reconstruct(st, a, b); ok {
			t.stats.Hits++
			return res, true
		}
	}
	t.stats.Misses++
	return 0, false
}

// Insert stores the result for the operand pair, as the unit does when a
// computation completes after a miss (§2.2: "in parallel entered into the
// MEMO-TABLE").
func (t *Table) Insert(a, b, result uint64) {
	key, ok := t.key(a, b)
	if !ok {
		return
	}
	t.insert(key, a, b, result)
}

// key derives the tag for the operand pair, reporting false when the
// tagging scheme cannot represent the pair.
func (t *Table) key(a, b uint64) (tagKey, bool) {
	if !t.mantissaMode() {
		return tagKey{a, b}, true
	}
	// Mantissa-only tags (§2.1 variation 1, Table 10). Specials and
	// subnormals have no hidden-bit-normalized mantissa; they bypass.
	fa, fb := math.Float64frombits(a), math.Float64frombits(b)
	if !normalFinite(fa) || (!t.op.Unary() && !normalFinite(fb)) {
		return tagKey{}, false
	}
	ka := arith.Mantissa(fa)
	if t.op == isa.OpFSqrt {
		// The result mantissa of sqrt depends on the exponent's parity.
		ka |= uint64(arith.Unpack(fa).Exponent&1) << 63
	}
	kb := uint64(0)
	if !t.op.Unary() {
		kb = arith.Mantissa(fb)
	}
	return tagKey{ka, kb}, true
}

func (t *Table) mantissaMode() bool {
	return t.cfg.MantissaOnly && t.op != isa.OpIMul
}

func normalFinite(x float64) bool {
	f := arith.Unpack(x)
	return f.Exponent != 0 && f.Exponent != arith.ExponentMax
}

// probe looks the key up (both operand orders for commutative classes) and
// updates recency on a hit. The swapped key is derived only after the
// presented order misses, keeping the common first-probe hit free of it.
func (t *Table) probe(key tagKey) (stored, bool) {
	if st, ok := t.probeOne(key); ok {
		return st, true
	}
	if t.op.Commutative() && !t.cfg.NoCommutativeLookup && key.a != key.b {
		return t.probeOne(tagKey{key.b, key.a})
	}
	return stored{}, false
}

// probeOne looks up one tag in its set.
func (t *Table) probeOne(key tagKey) (stored, bool) {
	if t.inf != nil {
		st, ok := t.inf[key]
		return st, ok
	}
	si := t.index(key)
	set := t.sets[si]
	if t.ways == 1 {
		// Direct-mapped: single compare, no recency state to maintain.
		if set[0].valid && set[0].tag == key {
			return set[0].stored, true
		}
		return stored{}, false
	}
	if h := int(t.hint[si]); h > 0 && !t.noHint {
		// Way-memoization fast path: the set's last-hit entry is known to
		// sit at way h (insert tracks it through shifts and clears the
		// hint on eviction or shadowing), so one compare resolves a
		// repeat hit without scanning ways 0..h-1. The hint entry is
		// always the newest for its tag, so probing it first returns
		// exactly what the scan would.
		if set[h].valid && set[h].tag == key {
			e := set[h]
			copy(set[1:h+1], set[:h])
			set[0] = e
			t.hint[si] = 0
			return e.stored, true
		}
	}
	for w := range set {
		if set[w].valid && set[w].tag == key {
			st := set[w].stored
			// Move to front: MRU ordering implements LRU eviction.
			e := set[w]
			copy(set[1:w+1], set[:w])
			set[0] = e
			t.hint[si] = 0 // the hit entry now leads the scan itself
			return st, true
		}
	}
	return stored{}, false
}

// insert writes the entry at the MRU position of its set, evicting the LRU
// entry if the set is full.
func (t *Table) insert(key tagKey, a, b, result uint64) {
	st, ok := t.encode(a, b, result)
	if !ok {
		return // result not representable under mantissa-only tagging
	}
	t.stats.Inserts++
	if t.inf != nil {
		t.inf[key] = st
		return
	}
	si := t.index(key)
	set := t.sets[si]
	if set[len(set)-1].valid {
		t.stats.Evictions++
	}
	if t.ways > 1 {
		// Keep the hint pointing at the set's tracked entry as the shift
		// moves it one way deeper. The hint dies when the entry falls off
		// the set's far end, was never valid, or is shadowed by this very
		// insert (a duplicate tag via the public Insert path — the one
		// case where probing the hinted way first could otherwise return
		// a stale result).
		if h := t.hint[si]; int(h) >= t.ways-1 || !set[h].valid || set[h].tag == key {
			t.hint[si] = 0
		} else {
			t.hint[si] = h + 1
		}
		copy(set[1:], set[:len(set)-1])
	}
	set[0] = entry{tag: key, stored: st, valid: true}
}

// index hashes a tag to a set number (§3.1).
func (t *Table) index(key tagKey) int {
	if t.numSets == 1 {
		return 0
	}
	mask := uint64(t.numSets - 1)
	if t.op == isa.OpIMul {
		return int((key.a ^ key.b) & mask)
	}
	if t.mantissaMode() {
		// Tags are already mantissas; take their top stored bits.
		ha := (key.a &^ (1 << 63)) >> (arith.MantissaBits - t.idxBits)
		hb := key.b >> (arith.MantissaBits - t.idxBits)
		return int((ha ^ hb) & mask)
	}
	ha := arith.MantissaMSBs(math.Float64frombits(key.a), t.idxBits)
	hb := arith.MantissaMSBs(math.Float64frombits(key.b), t.idxBits)
	return int((ha ^ hb) & mask)
}

// encode prepares the stored form of a result. In full-value mode this is
// the result itself; in mantissa-only mode it is the result's mantissa
// plus its exponent displacement from the operand exponents, so the hit
// path can rebuild the full value for operands that share mantissas but
// not exponents.
func (t *Table) encode(a, b, result uint64) (stored, bool) {
	if !t.mantissaMode() {
		return stored{val: result}, true
	}
	fr := math.Float64frombits(result)
	if !normalFinite(fr) {
		return stored{}, false
	}
	er := arith.Unpack(fr).Exponent
	return stored{
		val: arith.Mantissa(fr),
		aux: int32(er - t.expBase(a, b)),
	}, true
}

// reconstruct rebuilds the full result on a hit. In mantissa-only mode the
// reconstructed exponent must land in the normal range or the comparator
// rejects the hit (ok == false): this keeps memoized results bit-exact.
func (t *Table) reconstruct(st stored, a, b uint64) (uint64, bool) {
	if !t.mantissaMode() {
		return st.val, true
	}
	er := t.expBase(a, b) + int(st.aux)
	if er <= 0 || er >= arith.ExponentMax {
		return 0, false
	}
	sign := false
	if t.op == isa.OpFMul || t.op == isa.OpFDiv {
		sign = (a^b)&(1<<63) != 0
	}
	return math.Float64bits(arith.Pack(arith.Fields{
		Sign:     sign,
		Exponent: er,
		Mantissa: st.val,
	})), true
}

// expBase combines the operands' biased exponents the way the operation's
// exponent datapath does: sum for multiply, difference for divide, halving
// for square root (all up to the stored displacement).
func (t *Table) expBase(a, b uint64) int {
	ea := arith.Unpack(math.Float64frombits(a)).Exponent
	switch t.op {
	case isa.OpFMul:
		eb := arith.Unpack(math.Float64frombits(b)).Exponent
		return ea + eb - arith.ExponentBias
	case isa.OpFDiv:
		eb := arith.Unpack(math.Float64frombits(b)).Exponent
		return ea - eb + arith.ExponentBias
	case isa.OpFSqrt:
		return (ea-arith.ExponentBias)/2 + arith.ExponentBias
	default:
		return 0
	}
}

// Len returns the number of valid entries (useful for tests and for
// sizing reports).
func (t *Table) Len() int {
	if t.inf != nil {
		return len(t.inf)
	}
	n := 0
	for _, set := range t.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}
