package memo

import (
	"fmt"
	"sync"

	"memotable/internal/isa"
)

// Shared is a multi-ported MEMO-TABLE: one table serving several instances
// of the same computation unit, so recurring calculations dispatched to
// different units still reuse each other's work (§2.3). The paper further
// proposes replacing a second divider with a table port outright; the
// sharedtable example demonstrates that arrangement.
//
// A one-port (or NewShared-built) table serializes every access under a
// single lock, modelling a time-multiplexed array. For the genuinely
// multi-ported case, NewSharedStriped partitions the table's sets across
// independently locked stripes: accesses to different stripes proceed
// concurrently, the way separate banks of a multi-ported SRAM array
// service separate ports. The partition is exact — stripe selection uses
// the table's own set-index hash, so a striped table performs, entry for
// entry and eviction for eviction, the same protocol as the single-lock
// table, and serial feeds produce identical statistics.
type Shared struct {
	ports int
	op    isa.Op
	cfg   Config
	// router derives tag keys and full-geometry set indices for stripe
	// selection; its entry storage is never used. Nil when 1 stripe.
	router *Table
	// subIdxBits is the sub-table index width, used by the integer-class
	// routing (whose set hash takes low bits; see stripeFor).
	subIdxBits uint
	stripes    []sharedStripe
}

// sharedStripe is one independently locked bank of the shared table.
type sharedStripe struct {
	mu    sync.Mutex
	table *Table
}

// NewShared wraps a table for concurrent use through the given number of
// ports behind one lock. It panics on a nil table or non-positive port
// count.
func NewShared(table *Table, ports int) *Shared {
	if table == nil {
		panic("memo: NewShared requires a table")
	}
	if ports <= 0 {
		panic("memo: port count must be positive")
	}
	s := &Shared{ports: ports, op: table.Op(), cfg: table.Config()}
	s.stripes = make([]sharedStripe, 1)
	s.stripes[0].table = table
	return s
}

// NewSharedStriped builds a multi-ported table whose sets are partitioned
// across the given number of independently locked stripes. stripes must
// be a power of two no larger than the configuration's set count (any
// value for the infinite table); stripes <= 0 picks the largest power of
// two not exceeding the port count that the geometry admits. It panics on
// invalid geometry, like New.
func NewSharedStriped(op isa.Op, cfg Config, ports, stripes int) *Shared {
	if ports <= 0 {
		panic("memo: port count must be positive")
	}
	router := New(op, cfg) // validates op and cfg
	numSets, idxBits := cfg.sets()
	maxStripes := numSets
	if cfg.Entries == 0 {
		maxStripes = 1 << 8 // infinite table: stripes are hash banks
	}
	if stripes <= 0 {
		stripes = 1
		for stripes*2 <= ports && stripes*2 <= maxStripes {
			stripes *= 2
		}
	}
	if stripes&(stripes-1) != 0 {
		panic(fmt.Sprintf("memo: stripe count %d not a power of two", stripes))
	}
	if stripes > maxStripes {
		panic(fmt.Sprintf("memo: %d stripes exceed the %d-set geometry", stripes, maxStripes))
	}
	s := &Shared{ports: ports, op: op, cfg: cfg, router: router}
	s.stripes = make([]sharedStripe, stripes)
	if stripes == 1 {
		s.router = nil
		s.stripes[0].table = New(op, cfg)
		return s
	}
	log2 := uint(0)
	for v := stripes; v > 1; v >>= 1 {
		log2++
	}
	s.subIdxBits = idxBits - log2
	subCfg := cfg
	if cfg.Entries > 0 {
		subCfg.Entries = cfg.Entries / stripes
	}
	for i := range s.stripes {
		s.stripes[i].table = New(op, subCfg)
	}
	return s
}

// Ports returns the configured port count.
func (s *Shared) Ports() int { return s.ports }

// Stripes returns the number of independently locked banks.
func (s *Shared) Stripes() int { return len(s.stripes) }

// stripeFor routes an operand pair to its bank. The routing must agree
// with the sub-tables' own set selection so that (stripe, sub-set) is a
// bijection with the full table's set index, and it must be symmetric in
// (a, b) so a commutative class's reversed-operand probe stays inside one
// bank; both hold for every tagging scheme:
//
//   - integer tables hash low operand bits (XOR — symmetric), so the
//     sub-table keeps the low index bits and the stripe takes the high;
//   - fp tables hash mantissa MSBs (XOR of top bits — symmetric), so the
//     sub-table keeps the high index bits and the stripe takes the low;
//   - the infinite table and untaggable mantissa-mode specials have no
//     set index; a symmetric mix of the raw operands picks the bank.
func (s *Shared) stripeFor(a, b uint64) *sharedStripe {
	if len(s.stripes) == 1 {
		return &s.stripes[0]
	}
	mask := uint64(len(s.stripes) - 1)
	if s.cfg.Entries == 0 {
		return &s.stripes[symmetricMix(a, b)&mask]
	}
	key, ok := s.router.key(a, b)
	if !ok {
		return &s.stripes[symmetricMix(a, b)&mask]
	}
	i := uint64(s.router.index(key))
	if s.op == isa.OpIMul {
		return &s.stripes[i>>s.subIdxBits]
	}
	return &s.stripes[i&mask]
}

// symmetricMix hashes an operand pair invariantly under operand swap.
func symmetricMix(a, b uint64) uint64 {
	h := (a ^ b) * 0x9E3779B97F4A7C15
	return h ^ h>>33
}

// Access performs Table.Access under the owning stripe's lock.
func (s *Shared) Access(a, b uint64, compute func() uint64) (uint64, bool) {
	st := s.stripeFor(a, b)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.table.Access(a, b, compute)
}

// Lookup performs Table.Lookup under the owning stripe's lock.
func (s *Shared) Lookup(a, b uint64) (uint64, bool) {
	st := s.stripeFor(a, b)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.table.Lookup(a, b)
}

// Insert performs Table.Insert under the owning stripe's lock.
func (s *Shared) Insert(a, b, result uint64) {
	st := s.stripeFor(a, b)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.table.Insert(a, b, result)
}

// Stats snapshots the table's statistics, summed across stripes.
func (s *Shared) Stats() Stats {
	var total Stats
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		total.Add(s.stripes[i].table.Stats())
		s.stripes[i].mu.Unlock()
	}
	return total
}

// Len returns the number of valid entries across all stripes.
func (s *Shared) Len() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		n += s.stripes[i].table.Len()
		s.stripes[i].mu.Unlock()
	}
	return n
}

// Reset clears every stripe.
func (s *Shared) Reset() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		s.stripes[i].table.Reset()
		s.stripes[i].mu.Unlock()
	}
}
