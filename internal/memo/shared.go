package memo

import "sync"

// Shared is a multi-ported MEMO-TABLE: one table serving several instances
// of the same computation unit, so recurring calculations dispatched to
// different units still reuse each other's work (§2.3). The paper further
// proposes replacing a second divider with a table port outright; the
// sharedtable example demonstrates that arrangement.
//
// Shared serializes access, modelling the multi-ported array; the port
// count is recorded so contention statistics can be derived if desired.
type Shared struct {
	mu    sync.Mutex
	table *Table
	ports int
}

// NewShared wraps a table for concurrent use through the given number of
// ports. It panics on a nil table or non-positive port count.
func NewShared(table *Table, ports int) *Shared {
	if table == nil {
		panic("memo: NewShared requires a table")
	}
	if ports <= 0 {
		panic("memo: port count must be positive")
	}
	return &Shared{table: table, ports: ports}
}

// Ports returns the configured port count.
func (s *Shared) Ports() int { return s.ports }

// Access performs Table.Access under the port lock.
func (s *Shared) Access(a, b uint64, compute func() uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Access(a, b, compute)
}

// Lookup performs Table.Lookup under the port lock.
func (s *Shared) Lookup(a, b uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Lookup(a, b)
}

// Insert performs Table.Insert under the port lock.
func (s *Shared) Insert(a, b, result uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table.Insert(a, b, result)
}

// Stats snapshots the underlying table's statistics.
func (s *Shared) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Stats()
}

// Reset clears the underlying table.
func (s *Shared) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table.Reset()
}
