package memotable_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"memotable"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/workloads"
)

// TestEndToEndCaptureSweep exercises the full public workflow the paper's
// methodology implies: run a real Multi-Media application once, capture
// its operand trace to a file, then replay that one capture through a
// geometry sweep — checking that the paper's Figure 3 monotonicity holds
// through the file format and public API.
func TestEndToEndCaptureSweep(t *testing.T) {
	app, err := workloads.Lookup("vspatial")
	if err != nil {
		t.Fatal(err)
	}
	input := imaging.Find("chroms").Image

	path := filepath.Join(t.TempDir(), "vspatial.mtrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := memotable.Capture(f, func(p *memotable.Probe) {
		as := imaging.NewAddressSpace()
		app.Run(p, as, as.Clone(input))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty capture")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty trace file")
	}

	var prevDiv float64
	for i, entries := range []int{8, 32, 128, 512, 0} {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		ways := 4
		if entries == 0 {
			ways = 0
		}
		stats, err := memotable.Replay(bytes.NewReader(raw),
			memotable.Config{Entries: entries, Ways: ways}, memotable.NonTrivialOnly)
		if err != nil {
			t.Fatal(err)
		}
		div, ok := stats[memotable.FDiv]
		if !ok {
			t.Fatal("vspatial trace lost its divisions")
		}
		hr := div.HitRatio()
		if i > 0 && hr < prevDiv-0.02 {
			t.Errorf("fdiv ratio fell from %.3f to %.3f when growing to %d entries",
				prevDiv, hr, entries)
		}
		prevDiv = hr
	}
	if prevDiv < 0.5 {
		t.Errorf("infinite-table fdiv ratio %.3f; vspatial reuse should be large", prevDiv)
	}
}

// TestEndToEndSpeedupStory checks the paper's headline through the public
// experiment API at tiny scale: memoizing division and multiplication
// yields a positive mean speedup, with division contributing more.
func TestEndToEndSpeedupStory(t *testing.T) {
	for _, name := range []string{"table11", "table13"} {
		out, err := memotable.RunExperiment(name, memotable.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short", name)
		}
	}
}

// TestTraceFileInteroperatesWithUnits replays a hand-built stream and
// cross-checks the memoized results against direct computation, through
// the file round trip.
func TestTraceFileInteroperatesWithUnits(t *testing.T) {
	var buf bytes.Buffer
	_, err := memotable.Capture(&buf, func(p *memotable.Probe) {
		for i := 0; i < 200; i++ {
			p.FSqrt(float64(i % 9))
			p.FMul(float64(i%7), 3.5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := memotable.Replay(&buf, memotable.Paper32x4(), memotable.Integrated)
	if err != nil {
		t.Fatal(err)
	}
	sq := stats[memotable.FSqrt]
	// 9 distinct radicands, two trivial (0, 1): the rest hit after the
	// first pass.
	if sq.Hits == 0 || sq.Trivial == 0 {
		t.Fatalf("sqrt stats %+v", sq)
	}
	if _, ok := stats[isa.OpFDiv]; ok {
		t.Fatal("phantom division stats")
	}
}
