package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"memotable"
	"memotable/internal/experiments"
	"memotable/internal/fleet"
	"memotable/internal/report"
)

// fleetOpts is the coordinator's slice of the CLI flags.
type fleetOpts struct {
	shards       int
	scale        memotable.Scale
	names        []string // raw -run selection (nil = all)
	jsonOut      bool
	keepGoing    bool
	timeout      time.Duration // whole-run budget
	shardTimeout time.Duration // per-attempt budget
	retries      int
	retryBase    time.Duration
	parallel     int
	fanout       int
	traceDir     string
	store        string
	faults       string
}

// runFleet is the -shards coordinator: shard the selection, supervise
// one worker process per shard, merge verified output. Exit codes
// mirror the single-process run: 0 clean; 1 degraded without
// -keep-going (nothing printed); 2 usage errors, and degraded results
// under -keep-going (merged output printed, failures on stderr).
func runFleet(o fleetOpts) int {
	names, err := experiments.Resolve(o.names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	shards := experiments.ShardCount(o.shards, len(names))
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}

	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	cfg := fleet.Config{
		Exe:       exe,
		Shards:    shards,
		Scale:     o.scale,
		Names:     names,
		Timeout:   o.shardTimeout,
		Retries:   o.retries,
		RetryBase: o.retryBase,
		Stderr:    os.Stderr,
		Args:      func(shard int) []string { return workerArgs(o, shard) },
	}
	start := time.Now()
	rep, err := fleet.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	elapsed := time.Since(start)

	exit := 0
	if rep.Degraded() {
		for _, e := range rep.Errors() {
			fmt.Fprintln(os.Stderr, "memosim:", e)
		}
		if !o.keepGoing {
			fmt.Fprintln(os.Stderr, "memosim: aborting on degraded shards (use -keep-going for partial results)")
			return 1
		}
		exit = 2
	}

	if o.jsonOut {
		body, prov, err := rep.MergedJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 1
		}
		out, err := report.AppendProvenance(body, prov)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 1
		}
		_, _ = os.Stdout.Write(out)
		return exit
	}

	texts, err := rep.MergedTexts()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 1
	}
	for _, tr := range texts {
		fmt.Println(tr.Text)
		fmt.Printf("(%s)\n\n", tr.Name)
	}
	attempts := 0
	for i := range rep.Shards {
		attempts += rep.Shards[i].Attempts
	}
	fmt.Printf("fleet: %d experiments across %d shards in %v, %d worker launches\n",
		len(names), shards, elapsed.Round(time.Millisecond), attempts)
	for i := range rep.Shards {
		sr := &rep.Shards[i]
		switch {
		case sr.Manifest != nil:
			fmt.Printf("fleet: shard %d: verified root %s (%d experiments, %d attempts)\n",
				sr.Shard, sr.Manifest.Root, len(sr.Names), sr.Attempts)
		default:
			fmt.Printf("fleet: shard %d: degraded after %d attempts\n", sr.Shard, sr.Attempts)
		}
	}
	fmt.Printf("fleet: combined root %s\n", rep.Root)
	return exit
}

// workerArgs forwards the run-shaping flags to a shard's worker. The
// spill directory is always passed explicitly — per-shard when enabled,
// empty when disabled — because concurrent workers must never share a
// spill directory (each sweeps orphaned temp files on startup), while
// the content-addressed -store is designed for exactly that sharing.
func workerArgs(o fleetOpts, shard int) []string {
	args := []string{"-tracedir", ""}
	if o.traceDir != "" {
		args[1] = filepath.Join(o.traceDir, "shard-"+strconv.Itoa(shard))
	}
	if o.parallel != 0 {
		args = append(args, "-parallel", strconv.Itoa(o.parallel))
	}
	if o.fanout > 0 {
		args = append(args, "-fanout", strconv.Itoa(o.fanout))
	}
	if o.store != "" {
		args = append(args, "-store", o.store)
	}
	if o.faults != "" {
		args = append(args, "-faults", o.faults)
	}
	return args
}

// runWorker is the -worker entry point: run this shard's experiments
// on the already-configured engine and emit a provenance-chained
// manifest on stdout. Exit codes are the worker contract the
// coordinator supervises against: 0 manifest emitted, all cells clean;
// 2 usage or planning error (no manifest); 3 manifest emitted with
// degraded cells; 1 internal failure.
func runWorker(eng *memotable.Engine, scale memotable.Scale, names []string, shardSpec string) int {
	shard, shards, err := fleet.ParseShard(shardSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "memosim: -worker needs an explicit -run selection")
		return 2
	}
	// Workload failures degrade cells, never the worker: the results
	// carry their errors and the manifest marks itself degraded, so the
	// coordinator can merge the clean cells and account for the rest.
	results, _, err := memotable.RunContext(context.Background(), eng, scale, names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	m, err := fleet.BuildManifest(shard, shards, scale.String(), names, results, eng.TraceFingerprints())
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 1
	}
	enc, err := m.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 1
	}
	if _, err := os.Stdout.Write(enc); err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 1
	}
	if m.Degraded {
		return 3
	}
	return 0
}
