package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memotable"
)

// runServe runs the multi-tenant service daemon: one shared engine, the
// HTTP front-end from internal/service, graceful drain on SIGINT or
// SIGTERM. The listen address is announced on stderr (with the resolved
// port, so ":0" is usable in tests), and a final summary — service
// counters plus the shared engine's cache footer — prints on shutdown.
func runServe(addr string, eng *memotable.Engine, cfg memotable.ServiceConfig) int {
	svc := memotable.NewService(eng, cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	srv := &http.Server{Handler: svc.Handler()}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "memosim: serving on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	exit := 0
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "memosim: %v, draining\n", sig)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			exit = 1
		}
		cancel()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			exit = 1
		}
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		exit = 1
	}

	elapsed := time.Since(start)
	ss := svc.Stats()
	fmt.Fprintf(os.Stderr, "service: %d requests from %d tenants in %v (%d runs, %d coalesced, %d rejected)\n",
		ss.Requests, ss.Tenants, elapsed.Round(time.Millisecond),
		ss.RunsStarted, ss.RunsCoalesced, ss.Rejected)
	engineSummary(os.Stderr, eng, eng.Stats(), elapsed)
	return exit
}
