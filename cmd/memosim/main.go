// Command memosim reproduces the paper's evaluation: it runs any (or all)
// of the tables and figures of §3 and prints them in the paper's layout.
//
// Usage:
//
//	memosim [-scale tiny|quick|full] [-run all|table5|...|figure4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"memotable"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "input scale: tiny, quick or full")
	runFlag := flag.String("run", "all", "experiment to run: all, or one of "+
		strings.Join(memotable.Experiments(), ", "))
	flag.Parse()

	var scale memotable.Scale
	switch *scaleFlag {
	case "tiny":
		scale = memotable.Tiny
	case "quick":
		scale = memotable.Quick
	case "full":
		scale = memotable.Full
	default:
		fmt.Fprintf(os.Stderr, "memosim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	names := memotable.Experiments()
	if *runFlag != "all" {
		names = strings.Split(*runFlag, ",")
	}
	for _, name := range names {
		start := time.Now()
		out, err := memotable.RunExperiment(strings.TrimSpace(name), scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			os.Exit(2)
		}
		fmt.Println(out)
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
