// Command memosim reproduces the paper's evaluation: it runs any (or all)
// of the registered tables and figures of §3 and prints them in the
// paper's layout, or as JSON.
//
// Usage:
//
//	memosim -list
//	memosim [-scale tiny|quick|full] [-run all|table5,table6,...|figure4]
//	        [-json] [-parallel N] [-tracedir DIR]
//
// A -run selection is executed as one planned pass: every workload the
// selected experiments demand is captured once and replayed once,
// feeding all their measurement sinks together.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memotable"
)

func main() { os.Exit(run()) }

func run() int {
	listFlag := flag.Bool("list", false, "list the registered experiments and exit")
	scaleFlag := flag.String("scale", "quick", "input scale: tiny, quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiments to run: all, or from "+
		strings.Join(memotable.Experiments(), ", "))
	jsonFlag := flag.Bool("json", false, "emit results as a JSON array instead of text tables")
	parallelFlag := flag.Int("parallel", 0,
		"experiment engine workers: 1 is serial, 0 selects GOMAXPROCS")
	traceDirFlag := flag.String("tracedir", filepath.Join(os.TempDir(), "memosim-traces"),
		"spill directory for operand traces that exceed the in-memory cache budget; empty disables the disk tier")
	flag.Parse()

	if *listFlag {
		for _, e := range memotable.AllExperiments() {
			fmt.Printf("%-18s %s\n", e.Name, e.Title)
		}
		return 0
	}

	var scale memotable.Scale
	switch *scaleFlag {
	case "tiny":
		scale = memotable.Tiny
	case "quick":
		scale = memotable.Quick
	case "full":
		scale = memotable.Full
	default:
		fmt.Fprintf(os.Stderr, "memosim: unknown scale %q\n", *scaleFlag)
		return 2
	}

	var names []string
	if *runFlag != "all" {
		names = strings.Split(*runFlag, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	// One engine for the whole invocation: its trace cache makes workloads
	// shared between experiments run once per process, and its worker pool
	// fans each experiment's cells across -parallel goroutines. Output is
	// bit-identical at any worker count. Over-budget captures spill to
	// -tracedir rather than being re-executed on every replay.
	eng := memotable.NewEngine(*parallelFlag)
	if *traceDirFlag != "" {
		eng.SetTraceDir(*traceDirFlag)
	}
	defer eng.Close()

	// The whole selection runs as one planned pass; the registry reports
	// every unknown name in the list at once, before running anything.
	suiteStart := time.Now()
	results, err := memotable.Run(eng, scale, names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	elapsed := time.Since(suiteStart)

	if *jsonFlag {
		fmt.Println("[")
		for i, r := range results {
			buf, err := memotable.RenderJSON(r)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memosim:", err)
				return 1
			}
			sep := ","
			if i == len(results)-1 {
				sep = ""
			}
			fmt.Printf("%s%s\n", buf, sep)
		}
		fmt.Println("]")
		return 0
	}

	for _, r := range results {
		fmt.Println(memotable.RenderText(r))
		fmt.Printf("(%s)\n\n", r.Name)
	}

	// Engine summary: how much the trace cache and the decoded-block tier
	// saved across the whole invocation.
	evs := eng.ReplayedEvents()
	fmt.Printf("suite: %d experiments in %v, %d workers\n",
		len(results), elapsed.Round(time.Millisecond), eng.Workers())
	fmt.Printf("engine: %d captures, %d replays (%d recaptures, %d traces spilled to disk)\n",
		eng.Captures(), eng.Replays(), eng.Recaptures(), eng.SpilledTraces())
	fmt.Printf("engine: replayed %d events in %v (%.1fM events/sec)\n",
		evs, elapsed.Round(time.Millisecond),
		float64(evs)/elapsed.Seconds()/1e6)
	fmt.Printf("engine: decoded-block cache: %d entries, %.1f MiB, %d decode-once hits\n",
		eng.DecodedEntries(), float64(eng.DecodedBlockBytes())/(1<<20), eng.DecodeOnceHits())
	return 0
}
