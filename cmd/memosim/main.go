// Command memosim reproduces the paper's evaluation: it runs any (or all)
// of the tables and figures of §3 and prints them in the paper's layout.
//
// Usage:
//
//	memosim [-scale tiny|quick|full] [-run all|table5,table6,...|figure4]
//	        [-parallel N] [-tracedir DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"memotable"
)

func main() { os.Exit(run()) }

func run() int {
	scaleFlag := flag.String("scale", "quick", "input scale: tiny, quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiments to run: all, or from "+
		strings.Join(memotable.Experiments(), ", "))
	parallelFlag := flag.Int("parallel", 0,
		"experiment engine workers: 1 is serial, 0 selects GOMAXPROCS")
	traceDirFlag := flag.String("tracedir", filepath.Join(os.TempDir(), "memosim-traces"),
		"spill directory for operand traces that exceed the in-memory cache budget; empty disables the disk tier")
	flag.Parse()

	var scale memotable.Scale
	switch *scaleFlag {
	case "tiny":
		scale = memotable.Tiny
	case "quick":
		scale = memotable.Quick
	case "full":
		scale = memotable.Full
	default:
		fmt.Fprintf(os.Stderr, "memosim: unknown scale %q\n", *scaleFlag)
		return 2
	}

	// Validate the whole -run list before running anything: an unknown
	// name in position k must not waste the k-1 experiments before it.
	names := memotable.Experiments()
	if *runFlag != "all" {
		known := make(map[string]bool, len(names))
		for _, n := range names {
			known[n] = true
		}
		names = strings.Split(*runFlag, ",")
		for i, name := range names {
			names[i] = strings.TrimSpace(name)
			if !known[names[i]] {
				fmt.Fprintf(os.Stderr, "memosim: unknown experiment %q (have %s)\n",
					names[i], strings.Join(memotable.Experiments(), ", "))
				return 2
			}
		}
	}

	// One engine for the whole invocation: its trace cache makes workloads
	// shared between experiments run once per process, and its worker pool
	// fans each experiment's cells across -parallel goroutines. Output is
	// bit-identical at any worker count. Over-budget captures spill to
	// -tracedir rather than being re-executed on every replay.
	eng := memotable.NewEngine(*parallelFlag)
	if *traceDirFlag != "" {
		eng.SetTraceDir(*traceDirFlag)
	}
	defer eng.Close()

	suiteStart := time.Now()
	for _, name := range names {
		start := time.Now()
		out, err := memotable.RunExperimentWith(eng, name, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 2
		}
		fmt.Println(out)
		fmt.Printf("(%s in %v, %d workers)\n\n", name, time.Since(start).Round(time.Millisecond), eng.Workers())
	}

	// Engine summary: how much the trace cache and the decoded-block tier
	// saved across the whole invocation.
	elapsed := time.Since(suiteStart)
	evs := eng.ReplayedEvents()
	fmt.Printf("engine: %d captures, %d replays (%d recaptures, %d traces spilled to disk)\n",
		eng.Captures(), eng.Replays(), eng.Recaptures(), eng.SpilledTraces())
	fmt.Printf("engine: replayed %d events in %v (%.1fM events/sec)\n",
		evs, elapsed.Round(time.Millisecond),
		float64(evs)/elapsed.Seconds()/1e6)
	fmt.Printf("engine: decoded-block cache: %d entries, %.1f MiB, %d decode-once hits\n",
		eng.DecodedEntries(), float64(eng.DecodedBlockBytes())/(1<<20), eng.DecodeOnceHits())
	return 0
}
