// Command memosim reproduces the paper's evaluation: it runs any (or all)
// of the tables and figures of §3 and prints them in the paper's layout.
//
// Usage:
//
//	memosim [-scale tiny|quick|full] [-run all|table5|...|figure4] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"memotable"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "input scale: tiny, quick or full")
	runFlag := flag.String("run", "all", "experiment to run: all, or one of "+
		strings.Join(memotable.Experiments(), ", "))
	parallelFlag := flag.Int("parallel", 0,
		"experiment engine workers: 1 is serial, 0 selects GOMAXPROCS")
	flag.Parse()

	var scale memotable.Scale
	switch *scaleFlag {
	case "tiny":
		scale = memotable.Tiny
	case "quick":
		scale = memotable.Quick
	case "full":
		scale = memotable.Full
	default:
		fmt.Fprintf(os.Stderr, "memosim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	// One engine for the whole invocation: its trace cache makes workloads
	// shared between experiments run once per process, and its worker pool
	// fans each experiment's cells across -parallel goroutines. Output is
	// bit-identical at any worker count.
	eng := memotable.NewEngine(*parallelFlag)

	names := memotable.Experiments()
	if *runFlag != "all" {
		names = strings.Split(*runFlag, ",")
	}
	for _, name := range names {
		start := time.Now()
		out, err := memotable.RunExperimentWith(eng, strings.TrimSpace(name), scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			os.Exit(2)
		}
		fmt.Println(out)
		fmt.Printf("(%s in %v, %d workers)\n\n", name, time.Since(start).Round(time.Millisecond), eng.Workers())
	}
}
