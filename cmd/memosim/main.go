// Command memosim reproduces the paper's evaluation: it runs any (or all)
// of the registered tables and figures of §3 and prints them in the
// paper's layout, or as JSON.
//
// Usage:
//
//	memosim -list
//	memosim [-scale tiny|quick|full] [-run all|table5,table6,...|figure4]
//	        [-json] [-parallel N] [-fanout N] [-tracedir DIR] [-store DIR]
//	        [-timeout D] [-keep-going] [-faults SPEC]
//	        [-shards N] [-shard-timeout D] [-shard-retries R]
//	        [-cpuprofile FILE] [-memprofile FILE]
//	memosim -ingest trace.mtrc
//
// A -run selection is executed as one planned pass: every workload the
// selected experiments demand is captured once and replayed once,
// feeding all their measurement sinks together.
//
// -shards N runs the same selection as a supervised fleet: the
// selection is dealt round-robin into N shards, each executed by a
// `memosim -worker -shard i/N` subprocess whose output carries a
// provenance chain (trace fingerprints + rendered result bytes under a
// Merkle root). The coordinator recomputes every root before merging;
// output that fails verification is rejected and retried, and a shard
// that exhausts its retries degrades only its own cells. Merged output
// is byte-identical to the single-process run, plus one trailing
// provenance line in -json mode. Workers exit 0 (clean manifest), 3
// (manifest with degraded cells), 2 (usage/planning error) or 1
// (internal failure); the coordinator only trusts 0 and 3.
//
// -ingest is the offline comparator for live ingestion: it feeds a v2
// trace file through the same incremental decode path and LiveBank
// instruments a `tracecap -listen` session uses, and prints the same
// final snapshot — so live-streamed results can be diffed against an
// offline replay of the identical bytes. Exit 3 marks a corrupt or torn
// stream, as in tracereplay.
//
// Exit codes: 0 on success; 1 when workloads failed and -keep-going is
// not set (hard failure, no results printed); 2 on usage errors, and on
// partial results under -keep-going (results printed, failed cells
// rendered in an errors section and detailed on stderr).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"memotable"
	"memotable/internal/faults"
)

func main() { os.Exit(run()) }

func run() int {
	listFlag := flag.Bool("list", false, "list the registered experiments and exit")
	scaleFlag := flag.String("scale", "quick", "input scale: tiny, quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiments to run: all, or from "+
		strings.Join(memotable.Experiments(), ", "))
	jsonFlag := flag.Bool("json", false, "emit results as a JSON array instead of text tables")
	parallelFlag := flag.Int("parallel", 0,
		"experiment engine workers: 1 is serial, 0 selects GOMAXPROCS")
	traceDirFlag := flag.String("tracedir", filepath.Join(os.TempDir(), "memosim-traces"),
		"spill directory for operand traces that exceed the in-memory cache budget; empty disables the disk tier")
	storeFlag := flag.String("store", "",
		"persistent trace-store directory shared across runs and processes: workloads already stored there replay without executing, fresh captures are published back (empty disables)")
	timeoutFlag := flag.Duration("timeout", 0,
		"wall-clock budget for the whole run; on expiry the pass cancels cooperatively and remaining cells report as canceled (0 = no limit)")
	keepGoingFlag := flag.Bool("keep-going", false,
		"print partial results and exit 2 when workload cells fail, instead of aborting with exit 1")
	faultsFlag := flag.String("faults", "",
		"fault-injection spec (testing), e.g. 'seed=1;engine.spill.write:p=0.01'; overrides $FAULTS")
	ingestFlag := flag.String("ingest", "",
		"replay a v2 trace file through the live-ingest instruments and print the final snapshot (offline comparator for tracecap -listen)")
	serveFlag := flag.String("serve", "",
		"serve the experiment engine over HTTP on this address (e.g. 127.0.0.1:8080): GET /v1/run responses are byte-identical to -run -json output for the same selection; tenants share one warm trace cache")
	tenantBudgetFlag := flag.Int64("tenant-budget", 0,
		"with -serve: per-tenant trace-cache byte budget, nested under the engine's global limit (0 gives every tenant the global limit)")
	fanoutFlag := flag.Int("fanout", 0,
		"fan-out replay budget: delivery goroutines shared by all concurrently replaying cells; 0 matches the worker count, 1 forces serial delivery")
	shardsFlag := flag.Int("shards", 0,
		"run the selection as a supervised fleet of this many worker processes; merged output is byte-identical to a single-process run plus a trailing provenance line (0 = single process)")
	workerFlag := flag.Bool("worker", false,
		"fleet worker mode (spawned by -shards): run the -shard slice of the selection and emit a provenance-chained shard manifest on stdout")
	shardFlag := flag.String("shard", "",
		"with -worker: this worker's shard assignment as i/N")
	shardTimeoutFlag := flag.Duration("shard-timeout", 5*time.Minute,
		"with -shards: wall-clock budget per shard attempt; a worker that overruns is killed and the shard retried (0 = no limit)")
	shardRetriesFlag := flag.Int("shard-retries", 2,
		"with -shards: extra attempts a failed shard gets, each on a fresh worker with full-jitter backoff")
	cpuProfileFlag := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfileFlag := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Profiling brackets the whole run, so replay hot paths can be
	// inspected without a rebuild: memosim -cpuprofile cpu.pprof, then
	// go tool pprof -top cpu.pprof.
	if *cpuProfileFlag != "" {
		f, err := os.Create(*cpuProfileFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memProfileFlag != "" {
		defer func() {
			f, err := os.Create(*memProfileFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memosim:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memosim:", err)
			}
			_ = f.Close()
		}()
	}

	if *listFlag {
		for _, e := range memotable.AllExperiments() {
			fmt.Printf("%-18s %s\n", e.Name, e.Title)
		}
		return 0
	}

	scale, err := memotable.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}

	// Fault injection: the -faults spec wins over the FAULTS env var, so
	// a test harness can set a process-wide default and override per run.
	spec := *faultsFlag
	if spec == "" {
		spec = os.Getenv("FAULTS")
	}
	if spec != "" {
		plan, err := faults.Parse(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 2
		}
		faults.Activate(plan)
	}

	if *ingestFlag != "" {
		return runOfflineIngest(*ingestFlag)
	}

	var names []string
	if *runFlag != "all" {
		names = strings.Split(*runFlag, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	// Fleet coordinator mode: no engine of its own — the selection runs
	// in supervised worker subprocesses, each with its own engine, and
	// the coordinator only splices their verified bytes.
	if *shardsFlag > 0 && !*workerFlag {
		return runFleet(fleetOpts{
			shards:       *shardsFlag,
			scale:        scale,
			names:        names,
			jsonOut:      *jsonFlag,
			keepGoing:    *keepGoingFlag,
			timeout:      *timeoutFlag,
			shardTimeout: *shardTimeoutFlag,
			retries:      *shardRetriesFlag,
			retryBase:    50 * time.Millisecond,
			parallel:     *parallelFlag,
			fanout:       *fanoutFlag,
			traceDir:     *traceDirFlag,
			store:        *storeFlag,
			faults:       spec,
		})
	}

	// One engine for the whole invocation: its trace cache makes workloads
	// shared between experiments run once per process, and its worker pool
	// fans each experiment's cells across -parallel goroutines. Output is
	// bit-identical at any worker count. Over-budget captures spill to
	// -tracedir rather than being re-executed on every replay.
	eng := memotable.NewEngine(*parallelFlag)
	if *fanoutFlag > 0 {
		eng.SetFanOut(*fanoutFlag)
	}
	if *traceDirFlag != "" {
		eng.SetTraceDir(*traceDirFlag)
	}
	if *storeFlag != "" {
		st, err := memotable.OpenTraceStore(*storeFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 2
		}
		eng.SetStore(st)
	}
	defer func() { _ = eng.Close() }()

	// Fleet worker mode: run this process's shard slice and emit a
	// provenance-chained manifest for the coordinator to verify.
	if *workerFlag {
		return runWorker(eng, scale, names, *shardFlag)
	}

	// Service mode: the same engine, shared by many tenants over HTTP.
	// The run-shaping flags (-scale, -run) don't apply — each request
	// carries its own selection — but -timeout becomes the per-run cap.
	if *serveFlag != "" {
		return runServe(*serveFlag, eng, memotable.ServiceConfig{
			TenantBudget: *tenantBudgetFlag,
			RunTimeout:   *timeoutFlag,
		})
	}

	ctx := context.Background()
	if *timeoutFlag > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeoutFlag)
		defer cancel()
	}

	// The whole selection runs as one planned pass; the registry reports
	// every unknown name in the list at once, before running anything.
	// Workload failures land in the pass report, not the error.
	suiteStart := time.Now()
	results, rep, err := memotable.RunContext(ctx, eng, scale, names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 2
	}
	elapsed := time.Since(suiteStart)

	exit := 0
	if len(rep.Errors) > 0 || rep.Canceled {
		for _, ce := range rep.Errors {
			fmt.Fprintln(os.Stderr, "memosim:", ce)
		}
		if rep.Canceled {
			fmt.Fprintln(os.Stderr, "memosim: run canceled before completion")
		}
		if !*keepGoingFlag {
			fmt.Fprintln(os.Stderr, "memosim: aborting on failed cells (use -keep-going for partial results)")
			return 1
		}
		exit = 2
	}

	if *jsonFlag {
		body, err := memotable.RenderJSONArray(results)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memosim:", err)
			return 1
		}
		_, _ = os.Stdout.Write(body)
		return exit
	}

	for _, r := range results {
		fmt.Println(memotable.RenderText(r))
		fmt.Printf("(%s)\n\n", r.Name)
	}

	// Engine summary: how much the trace cache and the decoded-block tier
	// saved across the whole invocation.
	st := eng.Stats()
	fmt.Printf("suite: %d experiments in %v, %d workers\n",
		len(results), elapsed.Round(time.Millisecond), st.Workers)
	engineSummary(os.Stdout, eng, st, elapsed)
	return exit
}

// engineSummary prints the engine's cache/replay footer from one stats
// snapshot. The -run path and the -serve shutdown path share it, so the
// line formats — which the goldens and CI greps pin — stay in lockstep.
func engineSummary(w io.Writer, eng *memotable.Engine, st memotable.EngineStats, elapsed time.Duration) {
	fmt.Fprintf(w, "engine: %d captures, %d replays (%d recaptures, %d traces spilled to disk)\n",
		st.Captures, st.Replays, st.Recaptures, st.SpilledTraces)
	if s := eng.Store(); s != nil {
		n, _ := s.Len()
		fmt.Fprintf(w, "engine: trace store: %d hits, %d puts (%d entries in %s)\n",
			st.StoreHits, st.StorePuts, n, s.Dir())
	}
	fmt.Fprintf(w, "engine: replayed %d events in %v (%.1fM events/sec)\n",
		st.ReplayedEvents, elapsed.Round(time.Millisecond),
		float64(st.ReplayedEvents)/elapsed.Seconds()/1e6)
	fmt.Fprintf(w, "engine: decoded-block cache: %d entries, %.1f MiB, %d decode-once hits\n",
		st.DecodedEntries, float64(st.DecodedBlockBytes)/(1<<20), st.DecodeOnceHits)
	fmt.Fprintf(w, "engine: fan-out: %d workers, %d fan-out replays, %d ring stalls; %d per-sink events delivered (%.1fM events/sec), %d mask skips\n",
		st.FanOut, st.FanoutReplays, st.RingStalls,
		st.DeliveredEvents, float64(st.DeliveredEvents)/elapsed.Seconds()/1e6,
		st.MaskSkips)
}

// runOfflineIngest feeds a v2 trace file through the identical
// incremental path a live tracecap -listen session uses — stream
// decoder, LiveBank sinks, fixed sketch seed — and prints the final
// snapshot, so its stdout is byte-comparable with the live session's.
func runOfflineIngest(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memosim:", err)
		return 1
	}
	bank := memotable.NewLiveBank(1)
	eng := memotable.NewEngine(1)
	sess := eng.NewIngest("offline", memotable.IngestOptions{Sinks: bank.Sinks()})
	var serr error
	if serr = sess.Feed(data); serr == nil {
		var res memotable.IngestResult
		if res, serr = sess.Seal(); serr == nil {
			fmt.Println(memotable.RenderText(bank.Snapshot(res.Stats)))
			// The engine-level ingest counters equal the session's stats
			// here (one session per invocation); printing from the same
			// Stats snapshot the other paths use keeps one formatter.
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "memosim: replayed %d events in %d frames (%d bytes) from %s\n",
				st.IngestedEvents, st.IngestedFrames, st.IngestedBytes, path)
			return 0
		}
	}
	fmt.Fprintln(os.Stderr, "memosim:", serr)
	if errors.Is(serr, memotable.ErrBadTrace) {
		return 3
	}
	return 1
}
