// Command tracereplay streams a captured operand trace through a
// MEMO-TABLE configuration and reports per-class hit ratios, so one
// capture can evaluate any table geometry — exactly how the paper swept
// sizes and associativities over its Shade traces.
//
// Usage:
//
//	tracereplay -in trace.mtrc [-entries 32] [-ways 4] [-mantissa]
//	            [-policy non|all|intgr]
//
// Exit codes: 0 on success, 1 on I/O failure, 2 on usage errors, 3 when
// the input trace is corrupt or truncated (bad magic, torn frame, CRC
// mismatch).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"memotable"
	"memotable/internal/isa"
)

func main() {
	in := flag.String("in", "", "input trace file (required)")
	entries := flag.Int("entries", 32, "table entries (0 = infinite)")
	ways := flag.Int("ways", 4, "associativity (0 = fully associative)")
	mantissa := flag.Bool("mantissa", false, "tag floating-point operands by mantissa only")
	policy := flag.String("policy", "non", "trivial-op policy: all, non or intgr")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "tracereplay: need -in")
		flag.Usage()
		os.Exit(2)
	}
	var pol memotable.TrivialPolicy
	switch *policy {
	case "all":
		pol = memotable.CacheAll
	case "non":
		pol = memotable.NonTrivialOnly
	case "intgr":
		pol = memotable.Integrated
	default:
		fmt.Fprintf(os.Stderr, "tracereplay: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer func() { _ = f.Close() }()

	cfg := memotable.Config{Entries: *entries, Ways: *ways, MantissaOnly: *mantissa}
	stats, err := memotable.Replay(f, cfg, pol)
	if err != nil {
		fail(err)
	}
	fmt.Printf("table: %d entries, %d ways, mantissa=%v, policy=%s\n",
		*entries, *ways, *mantissa, *policy)
	for _, op := range []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv, isa.OpFSqrt} {
		st, ok := stats[op]
		if !ok {
			continue
		}
		ratio := st.HitRatio()
		if pol == memotable.Integrated {
			ratio = st.IntegratedHitRatio()
		}
		fmt.Printf("%-6s lookups %9d  hits %9d  trivial %9d  hit ratio %.3f\n",
			op, st.Lookups, st.Hits, st.Trivial, ratio)
	}
}

// fail reports to stderr and exits with a code that distinguishes a
// corrupt trace (3) from plain I/O failure (1), so scripted sweeps can
// quarantine bad captures instead of retrying them.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	if errors.Is(err, memotable.ErrBadTrace) {
		os.Exit(3)
	}
	os.Exit(1)
}
