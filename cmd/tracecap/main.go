// Command tracecap captures the operand trace of one workload to a binary
// trace file — the role Shade's instrumented execution played for the
// paper. The file can be replayed through arbitrary MEMO-TABLE
// configurations with tracereplay.
//
// Usage:
//
//	tracecap -out trace.mtrc -app vspatial -input mandrill [-maxdim 128]
//	tracecap -out trace.mtrc -kernel hydro2d [-format v2] [-compress]
//
// Format v2 frames the stream with CRC32C checksums so corruption is
// detected on replay; -compress additionally DEFLATE-compresses each
// frame. tracereplay reads either format.
//
// Exit codes: 0 on success, 1 when writing the trace fails, 2 on usage
// errors (including unknown applications, kernels or inputs).
package main

import (
	"flag"
	"fmt"
	"os"

	"memotable"
	"memotable/internal/imaging"
	"memotable/internal/scientific"
	"memotable/internal/workloads"
)

func main() {
	out := flag.String("out", "", "output trace file (required)")
	app := flag.String("app", "", "Multi-Media application to trace")
	input := flag.String("input", "mandrill", "catalog input image for -app")
	kernel := flag.String("kernel", "", "scientific kernel to trace")
	maxDim := flag.Int("maxdim", 128, "decimate the input to this many pixels per side")
	format := flag.String("format", "v1", "trace format to write: v1, or v2 (CRC-framed)")
	compress := flag.Bool("compress", false, "DEFLATE-compress v2 frames (requires -format v2)")
	flag.Parse()

	if *out == "" || (*app == "") == (*kernel == "") {
		fmt.Fprintln(os.Stderr, "tracecap: need -out and exactly one of -app/-kernel")
		flag.Usage()
		os.Exit(2)
	}
	if *format != "v1" && *format != "v2" {
		fmt.Fprintf(os.Stderr, "tracecap: unknown format %q\n", *format)
		os.Exit(2)
	}
	if *compress && *format != "v2" {
		fmt.Fprintln(os.Stderr, "tracecap: -compress requires -format v2")
		os.Exit(2)
	}

	var run func(*memotable.Probe)
	switch {
	case *app != "":
		a, err := workloads.Lookup(*app)
		if err != nil {
			usage(err)
		}
		in := imaging.Find(*input)
		if in == nil {
			usage(fmt.Errorf("unknown input %q", *input))
		}
		src := in.Image
		run = func(p *memotable.Probe) {
			// Mirror the engine's capture path: decimate the input into a
			// private address space as the run's first allocation, so the
			// trace captured here is byte-identical to the engine's.
			as := imaging.NewAddressSpace()
			a.Run(p, as, as.Decimate(src, *maxDim))
		}
	default:
		k, err := scientific.Lookup(*kernel)
		if err != nil {
			usage(err)
		}
		run = k.Run
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	var n uint64
	if *format == "v2" {
		n, err = memotable.CaptureV2(f, *compress, run)
	} else {
		n, err = memotable.Capture(f, run)
	}
	if err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("captured %d events to %s\n", n, *out)
}

// fail reports a write/capture failure: exit 1.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	os.Exit(1)
}

// usage reports a bad selection (unknown app, kernel or input): exit 2,
// like the flag-validation errors above.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	os.Exit(2)
}
