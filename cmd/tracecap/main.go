// Command tracecap captures the operand trace of one workload to a binary
// trace file — the role Shade's instrumented execution played for the
// paper. The file can be replayed through arbitrary MEMO-TABLE
// configurations with tracereplay.
//
// Usage:
//
//	tracecap -out trace.mtrc -app vspatial -input mandrill [-maxdim 128]
//	tracecap -out trace.mtrc -kernel hydro2d
package main

import (
	"flag"
	"fmt"
	"os"

	"memotable"
	"memotable/internal/imaging"
	"memotable/internal/scientific"
	"memotable/internal/workloads"
)

func main() {
	out := flag.String("out", "", "output trace file (required)")
	app := flag.String("app", "", "Multi-Media application to trace")
	input := flag.String("input", "mandrill", "catalog input image for -app")
	kernel := flag.String("kernel", "", "scientific kernel to trace")
	maxDim := flag.Int("maxdim", 128, "decimate the input to this many pixels per side")
	flag.Parse()

	if *out == "" || (*app == "") == (*kernel == "") {
		fmt.Fprintln(os.Stderr, "tracecap: need -out and exactly one of -app/-kernel")
		flag.Usage()
		os.Exit(2)
	}

	var run func(*memotable.Probe)
	switch {
	case *app != "":
		a, err := workloads.Lookup(*app)
		if err != nil {
			fail(err)
		}
		in := imaging.Find(*input)
		if in == nil {
			fail(fmt.Errorf("unknown input %q", *input))
		}
		img := in.Image.Decimate(*maxDim)
		run = func(p *memotable.Probe) { a.Run(p, img) }
	default:
		k, err := scientific.Lookup(*kernel)
		if err != nil {
			fail(err)
		}
		run = k.Run
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	n, err := memotable.Capture(f, run)
	if err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("captured %d events to %s\n", n, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	os.Exit(1)
}
