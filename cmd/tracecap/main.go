// Command tracecap captures the operand trace of one workload to a binary
// trace file — the role Shade's instrumented execution played for the
// paper — or ingests a live v2 trace stream from an external producer,
// replaying it through MEMO-TABLE banks as the frames arrive.
//
// Usage:
//
//	tracecap -out trace.mtrc -app vspatial -input mandrill [-maxdim 128]
//	tracecap -out trace.mtrc -kernel hydro2d [-format v2] [-compress]
//	tracecap -listen unix:/tmp/cap.sock [-snapshot N] [-store DIR] [-seal KEY]
//	tracecap -stdin [-snapshot N] [-store DIR] [-seal KEY]
//
// Capture mode writes a trace file. Format v2 frames the stream with
// CRC32C checksums so corruption is detected on replay; -compress
// additionally DEFLATE-compresses each frame. tracereplay reads either
// format.
//
// Ingest mode (-listen or -stdin) accepts a self-delimiting CRC-framed
// v2 stream — from one connection on a unix or TCP socket, or from
// standard input — and feeds each complete frame through live
// MEMO-TABLE banks and cycle models as it arrives. -snapshot N prints a
// rolling hit-ratio/speedup snapshot every N events; the final snapshot
// always prints on stdout. With -store DIR, a stream that ends at a
// clean frame boundary is sealed into the persistent trace store under
// the -seal fingerprint, so the live session becomes a warm cache entry
// for later memosim/tracereplay runs. -listen addresses take the forms
// "unix:/path", "tcp:host:port", or a bare filesystem path (unix).
//
// Exit codes: 0 on success, 1 on I/O failure (including a failed
// listen/accept), 2 on usage errors, 3 when the ingested stream is
// corrupt or torn.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"memotable"
	"memotable/internal/faults"
	"memotable/internal/imaging"
	"memotable/internal/scientific"
	"memotable/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	out := flag.String("out", "", "output trace file (capture mode)")
	app := flag.String("app", "", "Multi-Media application to trace")
	input := flag.String("input", "mandrill", "catalog input image for -app")
	kernel := flag.String("kernel", "", "scientific kernel to trace")
	maxDim := flag.Int("maxdim", 128, "decimate the input to this many pixels per side")
	format := flag.String("format", "v1", "trace format to write: v1, or v2 (CRC-framed)")
	compress := flag.Bool("compress", false, "DEFLATE-compress v2 frames (requires -format v2)")
	listen := flag.String("listen", "", "ingest a live v2 stream from one connection on this address (unix:/path, tcp:host:port, or a bare unix socket path)")
	stdinMode := flag.Bool("stdin", false, "ingest a live v2 stream from standard input")
	snapshot := flag.Uint64("snapshot", 0, "ingest mode: print a rolling snapshot every N events (0 = final only)")
	storeDir := flag.String("store", "", "ingest mode: seal the settled stream into this persistent trace store")
	sealKey := flag.String("seal", "live", "ingest mode: workload fingerprint the sealed stream is stored under")
	faultsFlag := flag.String("faults", "", "fault-injection spec (testing), e.g. 'seed=1;ingest.frame:p=0.01'; overrides $FAULTS")
	flag.Parse()

	spec := *faultsFlag
	if spec == "" {
		spec = os.Getenv("FAULTS")
	}
	if spec != "" {
		plan, err := faults.Parse(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecap:", err)
			return 2
		}
		faults.Activate(plan)
	}

	ingesting := *listen != "" || *stdinMode
	if ingesting {
		if *listen != "" && *stdinMode {
			fmt.Fprintln(os.Stderr, "tracecap: -listen and -stdin are mutually exclusive")
			return 2
		}
		if *out != "" || *app != "" || *kernel != "" {
			fmt.Fprintln(os.Stderr, "tracecap: ingest mode takes no capture flags (-out/-app/-kernel)")
			return 2
		}
		if *sealKey == "" {
			fmt.Fprintln(os.Stderr, "tracecap: -seal fingerprint must not be empty")
			return 2
		}
		return runIngest(*listen, *snapshot, *storeDir, *sealKey)
	}

	if *out == "" || (*app == "") == (*kernel == "") {
		fmt.Fprintln(os.Stderr, "tracecap: need -out and exactly one of -app/-kernel (or -listen/-stdin)")
		flag.Usage()
		return 2
	}
	if *format != "v1" && *format != "v2" {
		fmt.Fprintf(os.Stderr, "tracecap: unknown format %q\n", *format)
		return 2
	}
	if *compress && *format != "v2" {
		fmt.Fprintln(os.Stderr, "tracecap: -compress requires -format v2")
		return 2
	}

	var runWorkload func(*memotable.Probe)
	switch {
	case *app != "":
		a, err := workloads.Lookup(*app)
		if err != nil {
			return usage(err)
		}
		in := imaging.Find(*input)
		if in == nil {
			return usage(fmt.Errorf("unknown input %q", *input))
		}
		src := in.Image
		runWorkload = func(p *memotable.Probe) {
			// Mirror the engine's capture path: decimate the input into a
			// private address space as the run's first allocation, so the
			// trace captured here is byte-identical to the engine's.
			as := imaging.NewAddressSpace()
			a.Run(p, as, as.Decimate(src, *maxDim))
		}
	default:
		k, err := scientific.Lookup(*kernel)
		if err != nil {
			return usage(err)
		}
		runWorkload = k.Run
	}

	f, err := os.Create(*out)
	if err != nil {
		return fail(err)
	}
	var n uint64
	if *format == "v2" {
		n, err = memotable.CaptureV2(f, *compress, runWorkload)
	} else {
		n, err = memotable.Capture(f, runWorkload)
	}
	if err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	fmt.Printf("captured %d events to %s\n", n, *out)
	return 0
}

// runIngest drives one live ingest session from a socket or stdin:
// frames replay into a LiveBank as they arrive, rolling snapshots print
// per -snapshot, and a cleanly ended stream seals into the trace store.
func runIngest(addr string, snapshotEvery uint64, storeDir, sealKey string) int {
	src, cleanup, err := ingestSource(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecap:", err)
		return 1
	}
	defer cleanup()

	eng := memotable.NewEngine(1)
	if storeDir != "" {
		st, err := memotable.OpenTraceStore(storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecap:", err)
			return 1
		}
		eng.SetStore(st)
	}

	// Fixed sketch seed: live and offline (memosim -ingest) snapshots of
	// the same stream must render byte-identically.
	bank := memotable.NewLiveBank(1)
	sess := eng.NewIngest(sealKey, memotable.IngestOptions{
		Sinks:         bank.Sinks(),
		SnapshotEvery: snapshotEvery,
		OnSnapshot: func(st memotable.IngestStats) {
			fmt.Println(memotable.RenderText(bank.Snapshot(st)))
		},
	})

	buf := make([]byte, 64<<10)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if ferr := sess.Feed(buf[:n]); ferr != nil {
				return ingestFail(ferr)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "tracecap:", rerr)
			return 1
		}
	}
	res, err := sess.Seal()
	if err != nil {
		return ingestFail(err)
	}
	fmt.Println(memotable.RenderText(bank.Snapshot(res.Stats)))
	fmt.Fprintf(os.Stderr, "tracecap: ingested %d events in %d frames (%d bytes)\n",
		res.Stats.Events, res.Stats.Frames, res.Stats.Bytes)
	if storeDir != "" {
		if res.Published {
			fmt.Fprintf(os.Stderr, "tracecap: sealed stream stored under %q in %s\n", sealKey, storeDir)
		} else {
			fmt.Fprintln(os.Stderr, "tracecap: stream not stored (retain overflow or store failure)")
		}
	}
	return 0
}

// ingestSource resolves the ingest input: stdin for an empty address,
// else one accepted connection on the parsed listen address.
func ingestSource(addr string) (io.Reader, func(), error) {
	if addr == "" {
		return os.Stdin, func() {}, nil
	}
	network, target := "unix", addr
	switch {
	case strings.HasPrefix(addr, "unix:"):
		target = addr[len("unix:"):]
	case strings.HasPrefix(addr, "tcp:"):
		network, target = "tcp", addr[len("tcp:"):]
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "tracecap: listening on %s\n", ln.Addr())
	conn, err := ln.Accept()
	if err != nil {
		_ = ln.Close()
		return nil, nil, err
	}
	return conn, func() {
		_ = conn.Close()
		_ = ln.Close()
	}, nil
}

// ingestFail classifies a broken session: corrupt or torn streams exit
// 3 (tracereplay's corrupt-trace code), everything else exits 1.
func ingestFail(err error) int {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	if errors.Is(err, memotable.ErrBadTrace) {
		return 3
	}
	return 1
}

// fail reports a write/capture failure: exit 1.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	return 1
}

// usage reports a bad selection (unknown app, kernel or input): exit 2,
// like the flag-validation errors above.
func usage(err error) int {
	fmt.Fprintln(os.Stderr, "tracecap:", err)
	return 2
}
