package memotable_test

// The multi-tenant service hammer: 8 concurrent tenant sessions drive
// the full experiment registry through one shared service. The -race
// detector supervises the coalescing and budget paths; the assertions
// pin the service's core economics — every request gets byte-identical
// results, each workload is captured exactly once however many tenants
// ask, and the coalescing counters account for every request.

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"memotable"
)

func TestServiceTenantHammer(t *testing.T) {
	eng := memotable.NewEngine(0)
	svc := memotable.NewService(eng, memotable.ServiceConfig{})
	defer svc.Close()

	type outcome struct {
		body []byte
		err  error
	}
	run := func(tenant string) outcome {
		results, rep, err := svc.Session(tenant).Run(context.Background(), memotable.Tiny)
		if err != nil {
			return outcome{nil, err}
		}
		if err := rep.Err(); err != nil {
			return outcome{nil, fmt.Errorf("degraded cells: %w", err)}
		}
		body, err := memotable.RenderJSONArray(results)
		return outcome{body, err}
	}

	// The leader goes first; once its run is registered, the other seven
	// tenants pile on while it is still in flight, so all of them must
	// coalesce onto the leader's single engine pass.
	const tenants = 8
	outs := make([]outcome, tenants)
	lead := make(chan outcome, 1)
	go func() { lead <- run("tenant-0") }()
	for deadline := time.Now().Add(5 * time.Second); svc.Stats().RunsStarted == 0; {
		if time.Now().After(deadline) {
			t.Fatal("leader run never registered")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 1; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = run(fmt.Sprintf("tenant-%d", i))
		}(i)
	}
	wg.Wait()
	outs[0] = <-lead

	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("tenant-%d: %v", i, o.err)
		}
		if len(o.body) == 0 {
			t.Fatalf("tenant-%d returned no results", i)
		}
		if !bytes.Equal(o.body, outs[0].body) {
			t.Fatalf("tenant-%d bytes differ from tenant-0", i)
		}
	}

	st := svc.Stats()
	if st.Requests != tenants || st.Tenants != tenants {
		t.Fatalf("service saw %d requests from %d tenants, want %d/%d",
			st.Requests, st.Tenants, tenants, tenants)
	}
	if st.RunsStarted != 1 || st.RunsCoalesced != tenants-1 {
		t.Fatalf("runs started %d, coalesced %d — want 1 shared pass with %d joiners",
			st.RunsStarted, st.RunsCoalesced, tenants-1)
	}

	// One capture and one fused replay per workload, tenants
	// notwithstanding; no workload was evicted or degraded.
	est := eng.Stats()
	if est.Captures == 0 || est.Captures != est.Replays {
		t.Fatalf("engine captured %d and replayed %d, want equal and non-zero",
			est.Captures, est.Replays)
	}
	if int(est.Captures) != est.CachedTraces+est.SpilledTraces {
		t.Fatalf("%d captures but %d resident traces: workloads re-captured or evicted",
			est.Captures, est.CachedTraces+est.SpilledTraces)
	}
	if est.DegradedCaptures != 0 {
		t.Fatalf("%d degraded captures in a clean hammer", est.DegradedCaptures)
	}
}
