// Sharedtable: the §2.3 extension. A processor with two fp dividers can
// instead ship one divider plus a multi-ported MEMO-TABLE interface: the
// second "divider" is just a table port, and a miss there stalls until
// the real divider frees up. This example compares three machines on the
// same dual-issue division stream:
//
//  1. two dividers, private MEMO-TABLE each (recurring work computed twice,
//     landing in both tables);
//
//  2. two dividers sharing one multi-ported table;
//
//  3. one divider + one table port (the hardware-saving variant).
//
//     go run ./examples/sharedtable
package main

import (
	"fmt"
	"math"

	"memotable"
	"memotable/internal/imaging"
)

// divLatency is the divider's cycle count (Table 1 mid-range).
const divLatency = 22

// stream builds a dual-issue division workload from quantized image rows:
// even pixels go to unit 0, odd pixels to unit 1, so recurring ratios are
// scattered across both units — the situation §2.3 describes.
func stream() (a, b [][2]float64) {
	img := imaging.Find("airport1").Image.Decimate(96)
	for y := 0; y < img.H; y++ {
		for x := 0; x+1 < img.W; x += 2 {
			den := 1 + img.At(x+1, y, 0)
			a = append(a, [2]float64{img.At(x, y, 0), den})
			b = append(b, [2]float64{img.At(x+1, y, 0), den})
		}
	}
	return a, b
}

func main() {
	evens, odds := stream()

	// Machine 1: private tables.
	t0 := memotable.NewTable(memotable.FDiv, memotable.Paper32x4())
	t1 := memotable.NewTable(memotable.FDiv, memotable.Paper32x4())
	var privCycles uint64
	for i := range evens {
		c0 := access(t0, evens[i])
		c1 := access(t1, odds[i])
		privCycles += maxU(c0, c1) // dual issue: the pair retires together
	}
	priv0, priv1 := t0.Stats(), t1.Stats()

	// Machine 2: one shared multi-ported table, two dividers.
	shared := memotable.NewShared(
		memotable.NewTable(memotable.FDiv, memotable.Config{Entries: 64, Ways: 4}), 2)
	var sharedCycles uint64
	for i := range evens {
		c0 := accessShared(shared, evens[i])
		c1 := accessShared(shared, odds[i])
		sharedCycles += maxU(c0, c1)
	}
	sharedStats := shared.Stats()

	// Machine 3: one divider + one table port. The port's misses queue on
	// the single divider (serialized), hits retire in one cycle.
	one := memotable.NewShared(
		memotable.NewTable(memotable.FDiv, memotable.Config{Entries: 64, Ways: 4}), 2)
	var oneCycles uint64
	for i := range evens {
		c0 := accessShared(one, evens[i]) // the real divider's op
		c1 := accessShared(one, odds[i])  // the port's op
		if c0 == divLatency && c1 == divLatency {
			oneCycles += 2 * divLatency // both missed: serialize on one unit
		} else {
			oneCycles += maxU(c0, c1)
		}
	}
	oneStats := one.Stats()

	fmt.Printf("dual-issue fp division stream, %d pairs, %d-cycle divider\n\n",
		len(evens), divLatency)
	fmt.Printf("%-34s %12s %10s\n", "machine", "cycles", "hit ratio")
	fmt.Printf("%-34s %12d %10.2f\n", "2 dividers, private 32/4 tables",
		privCycles, combined(priv0, priv1))
	fmt.Printf("%-34s %12d %10.2f\n", "2 dividers, shared 64/4 table",
		sharedCycles, sharedStats.HitRatio())
	fmt.Printf("%-34s %12d %10.2f\n", "1 divider + table port (shared)",
		oneCycles, oneStats.HitRatio())
	fmt.Printf("\nsharing gain over private tables: %.1f%% fewer cycles\n",
		100*(1-float64(sharedCycles)/float64(privCycles)))
	fmt.Printf("1-divider machine vs 2-divider private: %.1f%% more cycles,\n",
		100*(float64(oneCycles)/float64(privCycles)-1))
	fmt.Println("but saves an entire SRT divider's area (§2.4: larger than the table).")
}

// access runs one division through a private table, returning its cycles.
func access(t *memotable.Table, pair [2]float64) uint64 {
	a, b := math.Float64bits(pair[0]), math.Float64bits(pair[1])
	_, hit := t.Access(a, b, func() uint64 {
		return math.Float64bits(pair[0] / pair[1])
	})
	if hit {
		return 1
	}
	return divLatency
}

// accessShared is access through a shared table port.
func accessShared(s *memotable.Shared, pair [2]float64) uint64 {
	a, b := math.Float64bits(pair[0]), math.Float64bits(pair[1])
	_, hit := s.Access(a, b, func() uint64 {
		return math.Float64bits(pair[0] / pair[1])
	})
	if hit {
		return 1
	}
	return divLatency
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// combined merges two private tables' statistics into one hit ratio.
func combined(a, b memotable.Stats) float64 {
	lookups := a.Lookups + b.Lookups
	if lookups == 0 {
		return 0
	}
	return float64(a.Hits+b.Hits) / float64(lookups)
}
