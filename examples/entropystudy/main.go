// Entropystudy: generate images across the entropy range and reproduce
// the paper's Figure 2 relation — MEMO-TABLE hit ratios fall roughly
// linearly with image entropy (about 5% per bit).
//
//	go run ./examples/entropystudy
package main

import (
	"fmt"

	"memotable"
	"memotable/internal/fitting"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/probe"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

func main() {
	app, err := workloads.Lookup("vsurf")
	if err != nil {
		panic(err)
	}

	fmt.Println("vsurf (surface normals) over synthetic images, 32/4 fdiv MEMO-TABLE")
	fmt.Printf("%-10s %8s %8s %10s\n", "levels", "entropy", "8x8 ent", "fdiv ratio")

	var xs, ys []float64
	for _, levels := range []int{4, 8, 16, 32, 64, 128, 256} {
		img := imaging.Plasma(96, 96, int64(levels), 0.62)
		img = imaging.Blend(img, imaging.Noise(96, 96, int64(levels)+99), 0.25)
		img.Quantize(levels)
		img.Kind = imaging.Byte

		table := memo.New(isa.OpFDiv, memotable.Paper32x4())
		unit := memo.NewUnit(table, memotable.NonTrivialOnly, nil)
		sink := trace.SinkFunc(func(ev trace.Event) {
			if ev.Op == isa.OpFDiv {
				unit.Apply(ev.A, ev.B)
			}
		})
		as := imaging.NewAddressSpace()
		app.Run(probe.New(sink), as, as.Clone(img))

		e := img.Entropy()
		hr := table.Stats().HitRatio()
		fmt.Printf("%-10d %8.2f %8.2f %10.2f\n", levels, e, img.WindowEntropy(8), hr)
		xs = append(xs, e)
		ys = append(ys, hr)
	}

	p, _, err := fitting.Levenberg(fitting.Line, xs, ys, []float64{0.5, -0.05})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nMarquardt-Levenberg fit: hit ratio = %.3f %+.3f * entropy\n", p[0], p[1])
	fmt.Printf("=> about a %.1f%% hit-ratio decrease per added bit of entropy\n", -100*p[1])
	fmt.Println("   (the paper's Figure 2 observes ~5% per bit)")
}
