// Quickstart: attach a MEMO-TABLE to floating-point division and watch a
// simple kernel's divisions collapse into table hits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"memotable"
)

func main() {
	// The paper's basic table: 32 entries, 4-way associative, trivial
	// operations (x/1, 0/x) detected ahead of the lookup.
	table := memotable.NewTable(memotable.FDiv, memotable.Paper32x4())
	div := memotable.NewUnit(table, memotable.Integrated, nil)

	// An image-processing-shaped kernel: normalize a tile of quantized
	// pixels by their (few distinct) row sums. Quantized data means few
	// distinct operand pairs — the Multi-Media property the paper builds
	// on.
	const w, h = 64, 64
	pixels := make([]float64, w*h)
	for i := range pixels {
		pixels[i] = float64((i*7 + i/w) % 16) // 16 grey levels
	}
	var outcomes [4]int
	for y := 0; y < h; y++ {
		var rowSum float64
		for x := 0; x < w; x++ {
			rowSum += pixels[y*w+x]
		}
		for x := 0; x < w; x++ {
			normalized, outcome := div.FDiv(pixels[y*w+x], rowSum)
			outcomes[outcome]++
			pixels[y*w+x] = normalized
		}
	}

	st := table.Stats()
	fmt.Println("memoized fp division over a 64x64 quantized tile")
	fmt.Printf("  lookups:   %d\n", st.Lookups)
	fmt.Printf("  hits:      %d (ratio %.2f)\n", st.Hits, st.HitRatio())
	fmt.Printf("  trivial:   %d (answered by the detectors)\n", st.Trivial)
	fmt.Printf("  misses:    %d (computed by the divider, inserted)\n", st.Misses)
	fmt.Printf("  outcomes:  %d hit / %d miss / %d trivial\n",
		outcomes[memotable.Hit], outcomes[memotable.Miss], outcomes[memotable.Trivial])

	// With a 13-cycle divider, every hit saves 12 cycles.
	saved := st.Hits * 12
	total := st.Lookups*13 + st.Trivial
	fmt.Printf("  on a 13-cycle divider: %d of %d division cycles avoided (%.0f%%)\n",
		saved, total, 100*float64(saved)/float64(total))
}
