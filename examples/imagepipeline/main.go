// Imagepipeline: run a real image-processing application (the vspatial
// feature extractor) on a synthetic photograph through the full cycle
// model, with and without MEMO-TABLEs, and report the whole-application
// speedup — the paper's Table 11–13 methodology on one workload.
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"

	"memotable"
	"memotable/internal/cpu"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/workloads"
)

func main() {
	input := imaging.Find("mandrill").Image.Decimate(128)
	fmt.Printf("input: mandrill stand-in, %dx%d, entropy %.2f bits\n",
		input.W, input.H, input.Entropy())

	app, err := workloads.Lookup("vspatial")
	if err != nil {
		panic(err)
	}

	// Two machines, one event stream: a baseline and a memo-enhanced
	// in-order core with fmul=3 / fdiv=13 latencies and a two-level
	// cache hierarchy.
	proc := isa.FastFP()
	baseline := cpu.New(proc)
	enhanced := cpu.New(proc,
		memo.NewUnit(memo.New(isa.OpIMul, memo.Paper32x4()), memo.NonTrivialOnly, nil),
		memo.NewUnit(memo.New(isa.OpFMul, memo.Paper32x4()), memo.NonTrivialOnly, nil),
		memo.NewUnit(memo.New(isa.OpFDiv, memo.Paper32x4()), memo.NonTrivialOnly, nil),
	)
	probe := memotable.NewProbe(baseline, enhanced)
	as := imaging.NewAddressSpace()
	out := app.Run(probe, as, as.Clone(input))
	fmt.Printf("output: %dx%dx%d feature planes\n\n", out.W, out.H, out.Bands)

	fmt.Printf("%-22s %14s %14s\n", "", "baseline", "memo-enhanced")
	fmt.Printf("%-22s %14d %14d\n", "total cycles", baseline.Cycles(), enhanced.Cycles())
	for _, op := range []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv} {
		fmt.Printf("%-22s %14d %14d\n", op.String()+" cycles",
			baseline.ClassCycles(op), enhanced.ClassCycles(op))
	}
	fmt.Printf("%-22s %14s %14d\n", "cycles saved", "-", enhanced.SavedCycles())
	fmt.Printf("\nspeedup: %.3f\n",
		float64(baseline.Cycles())/float64(enhanced.Cycles()))

	fmt.Println("\nper-table hit ratios (32 entries, 4-way):")
	for _, op := range []isa.Op{isa.OpIMul, isa.OpFMul, isa.OpFDiv} {
		st := enhanced.Unit(op).Table().Stats()
		fmt.Printf("  %-6s %.2f (%d of %d lookups)\n",
			op, st.HitRatio(), st.Hits, st.Lookups)
	}
	l1, l2 := baseline.L1Stats(), baseline.L2Stats()
	fmt.Printf("\nmemory hierarchy: L1 %.1f%% hits, L2 %.1f%% hits\n",
		100*l1.HitRatio(), 100*l2.HitRatio())
}
