package memotable_test

// Integration tests for the sharded fleet layer: the -shards
// coordinator, the -worker entry point and its exit-code contract, and
// the provenance verification that gates every merge. The soak test
// drives fleet.Run directly so it can force-kill one worker mid-run and
// tamper with another's output — the two failure modes the supervision
// and provenance layers exist to contain.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"memotable"
	"memotable/internal/fleet"
)

var hexRoot = regexp.MustCompile(`^[0-9a-f]{64}$`)

// provenanceBlock is the trailing line `memosim -shards -json` appends
// below the result array.
type provenanceBlock struct {
	Provenance struct {
		Root   string `json:"root"`
		Shards []struct {
			Shard       int      `json:"shard"`
			Experiments []string `json:"experiments"`
			Root        string   `json:"root"`
			Verified    bool     `json:"verified"`
			Degraded    bool     `json:"degraded"`
			Attempts    int      `json:"attempts"`
			Error       string   `json:"error"`
		} `json:"shards"`
	} `json:"provenance"`
}

// splitProvenance separates a fleet run's stdout into the result array
// and its decoded provenance line.
func splitProvenance(t *testing.T, out string) (string, provenanceBlock) {
	t.Helper()
	trimmed := strings.TrimSuffix(out, "\n")
	i := strings.LastIndexByte(trimmed, '\n')
	if i < 0 {
		t.Fatalf("fleet output has no provenance line:\n%s", out)
	}
	body, line := out[:i+1], trimmed[i+1:]
	var p provenanceBlock
	if err := json.Unmarshal([]byte(line), &p); err != nil {
		t.Fatalf("provenance line does not decode: %v\n%s", err, line)
	}
	return body, p
}

// TestFleetMatchesSingleProcess pins the coordinator's headline
// guarantee: a clean 4-shard -json run produces, above the provenance
// line, the exact bytes of the single-process run, and every shard
// verifies.
func TestFleetMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	bin := cliBin(t, "memosim")
	sel := "table1,table5,figure2,figure4,table8,table9"

	single, stderr, code := runCLI(t, nil, bin, "-scale", "tiny", "-run", sel, "-json")
	if code != 0 {
		t.Fatalf("single-process run exited %d: %s", code, stderr)
	}
	fleetOut, stderr, code := runCLI(t, nil, bin,
		"-scale", "tiny", "-run", sel, "-json", "-shards", "4", "-tracedir", t.TempDir())
	if code != 0 {
		t.Fatalf("fleet run exited %d: %s", code, stderr)
	}

	body, p := splitProvenance(t, fleetOut)
	if body != single {
		t.Fatalf("fleet body differs from single-process output\n--- fleet ---\n%s\n--- single ---\n%s", body, single)
	}
	if !hexRoot.MatchString(p.Provenance.Root) {
		t.Fatalf("combined root %q is not 64 hex chars", p.Provenance.Root)
	}
	if len(p.Provenance.Shards) != 4 {
		t.Fatalf("provenance lists %d shards, want 4", len(p.Provenance.Shards))
	}
	names := 0
	for _, sp := range p.Provenance.Shards {
		if !sp.Verified || sp.Degraded || !hexRoot.MatchString(sp.Root) {
			t.Fatalf("shard %d not cleanly verified: %+v", sp.Shard, sp)
		}
		if sp.Attempts != 1 {
			t.Fatalf("clean shard %d took %d attempts", sp.Shard, sp.Attempts)
		}
		names += len(sp.Experiments)
	}
	if names != 6 {
		t.Fatalf("shards cover %d experiments, want 6", names)
	}

	// Text mode reports the per-shard roots and the combined root.
	text, stderr, code := runCLI(t, nil, bin,
		"-scale", "tiny", "-run", "table1,table5", "-shards", "2", "-tracedir", t.TempDir())
	if code != 0 {
		t.Fatalf("fleet text run exited %d: %s", code, stderr)
	}
	if !strings.Contains(text, "(table1)") || !strings.Contains(text, "(table5)") {
		t.Fatalf("fleet text output missing experiment renderings:\n%s", text)
	}
	if !strings.Contains(text, "fleet: combined root ") ||
		!strings.Contains(text, "fleet: shard 0: verified root ") {
		t.Fatalf("fleet text output missing verification summary:\n%s", text)
	}
}

// TestWorkerExitCodes pins the worker side of the supervision contract.
func TestWorkerExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	bin := cliBin(t, "memosim")

	t.Run("clean manifest", func(t *testing.T) {
		stdout, stderr, code := runCLI(t, nil, bin,
			"-worker", "-shard", "0/2", "-scale", "tiny", "-run", "table1,figure4", "-tracedir", "")
		if code != 0 {
			t.Fatalf("clean worker exited %d: %s", code, stderr)
		}
		m, err := fleet.DecodeManifest([]byte(stdout))
		if err != nil {
			t.Fatalf("worker stdout is not a manifest: %v", err)
		}
		if err := fleet.Verify(m, 0, 2, "tiny", []string{"table1", "figure4"}); err != nil {
			t.Fatalf("clean worker manifest fails verification: %v", err)
		}
		if m.Degraded {
			t.Fatal("clean worker marked its manifest degraded")
		}
		if len(m.Traces) == 0 {
			t.Fatal("worker manifest carries no trace fingerprints")
		}
	})

	t.Run("degraded manifest exits 3", func(t *testing.T) {
		// A guaranteed sink panic degrades one cell; the worker must
		// still emit its manifest and signal the degradation by exit code.
		stdout, stderr, code := runCLI(t, nil, bin,
			"-worker", "-shard", "0/1", "-scale", "tiny", "-run", "table5", "-tracedir", "",
			"-faults", "seed=1;engine.sink.emit:count=1:panic")
		if code != 3 {
			t.Fatalf("degraded worker exited %d, want 3 (stderr: %s)", code, stderr)
		}
		m, err := fleet.DecodeManifest([]byte(stdout))
		if err != nil {
			t.Fatalf("degraded worker stdout is not a manifest: %v", err)
		}
		if !m.Degraded {
			t.Fatal("faulted worker did not mark its manifest degraded")
		}
	})

	t.Run("usage errors exit 2", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			args []string
		}{
			{"no selection", []string{"-worker", "-shard", "0/2", "-scale", "tiny"}},
			{"bad shard spec", []string{"-worker", "-shard", "nope", "-scale", "tiny", "-run", "table1"}},
			{"shard out of range", []string{"-worker", "-shard", "5/2", "-scale", "tiny", "-run", "table1"}},
		} {
			stdout, stderr, code := runCLI(t, nil, bin, tc.args...)
			if code != 2 {
				t.Fatalf("%s: exited %d, want 2 (stderr: %s)", tc.name, code, stderr)
			}
			if stdout != "" {
				t.Fatalf("%s: emitted output %q on a usage error", tc.name, stdout)
			}
		}
	})
}

// TestFleetSoak is the supervision-and-provenance soak: one shard's
// worker is force-killed on its first attempt (must recover on a fresh
// process), another's output is bit-flipped on every attempt (must be
// rejected with ErrProvenance and degrade only its own cells), and the
// merged output's clean cells must still be byte-identical to a
// single-process run.
func TestFleetSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	bin := cliBin(t, "memosim")
	names := []string{"table1", "table5", "figure2", "figure4", "table8", "table9"}

	var killOnce sync.Once
	cfg := memotable.FleetConfig{
		Exe:       bin,
		Shards:    3,
		Scale:     memotable.Tiny,
		Names:     names,
		Timeout:   2 * time.Minute,
		Retries:   2,
		RetryBase: time.Millisecond,
		Args:      func(int) []string { return []string{"-tracedir", ""} },
		SpawnHook: func(shard, attempt int, proc *os.Process) {
			if shard == 1 && attempt == 1 {
				killOnce.Do(func() { _ = proc.Kill() })
			}
		},
		Transform: func(shard, attempt int, out []byte) []byte {
			// Flip one byte of a carried result document. The docs ride
			// inside JSON string fields, so their quotes are escaped in
			// the manifest bytes.
			if shard == 2 {
				return bytes.Replace(out, []byte(`\"kind\"`), []byte(`\"kund\"`), 1)
			}
			return out
		},
	}
	rep, err := memotable.RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}

	if rep.Shards[0].Err != nil || rep.Shards[0].Attempts != 1 {
		t.Fatalf("untouched shard 0: attempts=%d err=%v", rep.Shards[0].Attempts, rep.Shards[0].Err)
	}
	if rep.Shards[1].Err != nil || rep.Shards[1].Manifest == nil {
		t.Fatalf("killed shard 1 did not recover: attempts=%d err=%v", rep.Shards[1].Attempts, rep.Shards[1].Err)
	}
	if rep.Shards[1].Attempts < 2 {
		t.Fatalf("killed shard 1 recovered in %d attempts, want a retry", rep.Shards[1].Attempts)
	}
	if !errors.Is(rep.Shards[2].Err, memotable.ErrProvenance) {
		t.Fatalf("tampered shard 2 error = %v, want ErrProvenance", rep.Shards[2].Err)
	}
	if rep.Shards[2].Attempts != 3 {
		t.Fatalf("tampered shard 2 took %d attempts, want the full retry budget of 3", rep.Shards[2].Attempts)
	}
	if !rep.Degraded() || !hexRoot.MatchString(rep.Root) {
		t.Fatalf("degraded=%v root=%q", rep.Degraded(), rep.Root)
	}

	// The merged body: cells owned by shards 0 and 1 byte-identical to
	// the single-process render, shard 2's cells degraded with the
	// provenance failure attributed to the fleet stage.
	eng := memotable.NewEngine(2)
	defer eng.Close()
	results, _, err := memotable.RunContext(context.Background(), eng, memotable.Tiny, names...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := memotable.RenderJSONArray(results)
	if err != nil {
		t.Fatal(err)
	}
	body, prov, err := rep.MergedJSON()
	if err != nil {
		t.Fatalf("MergedJSON: %v", err)
	}
	var gotCells, wantCells []json.RawMessage
	if err := json.Unmarshal(body, &gotCells); err != nil {
		t.Fatalf("merged body does not decode: %v", err)
	}
	if err := json.Unmarshal(want, &wantCells); err != nil {
		t.Fatal(err)
	}
	if len(gotCells) != len(names) || len(wantCells) != len(names) {
		t.Fatalf("merged %d cells, reference %d, want %d", len(gotCells), len(wantCells), len(names))
	}
	for i := range names {
		if i%3 == 2 { // shard 2's cells
			var deg struct {
				Errors []struct {
					Stage string `json:"stage"`
				} `json:"errors"`
			}
			if err := json.Unmarshal(gotCells[i], &deg); err != nil || len(deg.Errors) == 0 {
				t.Fatalf("cell %s: want degraded result with errors, got %s", names[i], gotCells[i])
			}
			if deg.Errors[0].Stage != "fleet" {
				t.Fatalf("cell %s: degraded at stage %q, want fleet", names[i], deg.Errors[0].Stage)
			}
			continue
		}
		if !bytes.Equal(gotCells[i], wantCells[i]) {
			t.Fatalf("clean cell %s differs from single-process render\n--- fleet ---\n%s\n--- single ---\n%s",
				names[i], gotCells[i], wantCells[i])
		}
	}

	if prov == nil || prov.Root != rep.Root {
		t.Fatal("provenance block root disagrees with the report")
	}
	if prov.Shards[2].Verified || prov.Shards[2].Error == "" {
		t.Fatalf("tampered shard's provenance entry: %+v", prov.Shards[2])
	}
}
