package memotable_test

// os/exec test for the memosim -serve daemon: boot it on an ephemeral
// port, check the HTTP surface against the offline CLI byte for byte,
// and verify SIGTERM drains to a clean exit. This is the
// shipped-binary version of the in-process tests in internal/service.

import (
	"bufio"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServeDaemon boots `memosim -serve 127.0.0.1:0` and returns its
// base URL plus the running command. The announced address is read from
// stderr, which keeps draining in the background so the daemon never
// blocks on a full pipe.
func startServeDaemon(t *testing.T, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(cliBin(t, "memosim"),
		append([]string{"-serve", "127.0.0.1:0", "-tracedir", t.TempDir()}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	// One goroutine both finds the announcement and keeps draining, so
	// the daemon never blocks on a full stderr pipe.
	sc := bufio.NewScanner(stderr)
	addr := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "serving on http://"); ok {
				select {
				case addr <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()

	select {
	case a := <-addr:
		return "http://" + a, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never announced its listen address")
		return "", nil
	}
}

func TestServeDaemonMatchesOfflineJSON(t *testing.T) {
	// Offline reference bytes for the same selection.
	offline, stderr, code := runCLI(t, nil, cliBin(t, "memosim"),
		"-scale", "tiny", "-run", "table5,figure4", "-json", "-tracedir", t.TempDir())
	if code != 0 {
		t.Fatalf("offline run exited %d: %s", code, stderr)
	}

	base, cmd := startServeDaemon(t)

	// Cold and warm daemon responses must both match the offline bytes.
	for _, pass := range []string{"cold", "warm"} {
		resp, err := http.Get(base + "/v1/run?run=table5,figure4&scale=tiny&tenant=cli")
		if err != nil {
			t.Fatalf("%s pass: %v", pass, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s pass: %v", pass, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s pass: status %d: %s", pass, resp.StatusCode, body)
		}
		if string(body) != offline {
			t.Fatalf("%s pass: daemon bytes differ from offline -json output", pass)
		}
	}

	// Bad selections are client errors, not daemon failures.
	resp, err := http.Get(base + "/v1/run?run=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment: status %d, want 400", resp.StatusCode)
	}

	// SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
