package memotable_test

// The fault soak: the full experiment registry at 8 workers with a
// spill tier squeezed by a tiny memory budget and a shared persistent
// trace store, under an injected ~1% fault rate on spill writes and on
// every store I/O edge, ~0.5% on both fan-out delivery edges (the ring
// publish and consume points), plus exactly one panicking sink, swept
// over deterministic seeds. The pass must complete (no planning error),
// every faulted cell must appear exactly once in the PassReport, every
// experiment untouched by a fault must render byte-identically to the
// serial goldens, and every degraded experiment must carry the failed
// workloads it demanded. Run under -race this doubles as the
// concurrency soak for the whole hardened path: retry, degradation,
// panic isolation and report assembly all race against 8 workers.
//
// Wall clock: a seed costs roughly one spill-tier matrix run (see
// EXPERIMENTS.md); MEMOTABLE_SOAK_SEEDS widens the sweep in CI.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"memotable"
	"memotable/internal/faults"
)

func TestFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed full-registry soak")
	}
	seeds := 2
	if s := os.Getenv("MEMOTABLE_SOAK_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad MEMOTABLE_SOAK_SEEDS %q", s)
		}
		seeds = n
	}

	// One store directory across every seed: later seeds run against the
	// entries earlier seeds published, so warm hits, faulty reads of good
	// entries, and faulty publishes all occur in the same sweep.
	storeDir := t.TempDir()

	for seed := 1; seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan, err := faults.Parse(fmt.Sprintf(
				"seed=%d;engine.spill.write:p=0.01;engine.sink.emit:count=1:panic;"+
					"replay.fanout.publish:p=0.005;replay.fanout.consume:p=0.005;"+
					"store.read:p=0.01;store.write:p=0.01;store.rename:p=0.01", seed))
			if err != nil {
				t.Fatal(err)
			}
			faults.Activate(plan)
			defer faults.Activate(nil)

			eng := memotable.NewEngine(8)
			defer eng.Close()
			eng.SetCacheLimit(64 << 10) // push most captures through the faulty spill path
			eng.SetTraceDir(t.TempDir())
			eng.SetRetryPolicy(2, 0) // bounded retries, no backoff sleep
			st, err := memotable.OpenTraceStore(storeDir)
			if err != nil {
				t.Fatal(err)
			}
			eng.SetStore(st)

			results, rep, err := memotable.RunContext(context.Background(), eng, memotable.Tiny)
			if err != nil {
				t.Fatalf("planning failed under faults: %v", err)
			}
			if rep.Canceled {
				t.Fatal("report marked canceled without cancellation")
			}

			// Exactly one panicking sink was armed, so the pass records
			// at least that cell; and no workload may appear twice.
			if len(rep.Errors) == 0 {
				t.Fatal("armed sink panic produced no cell error")
			}
			seen := make(map[string]int)
			for _, ce := range rep.Errors {
				seen[ce.Key]++
			}
			for key, n := range seen {
				if n != 1 {
					t.Errorf("faulted cell %q appears %d times in the PassReport, want exactly once", key, n)
				}
			}

			clean := 0
			for _, r := range results {
				if len(r.Errs) > 0 {
					// Degraded: every carried failure must be a cell the
					// pass actually reported.
					for _, re := range r.Errs {
						if seen[re.Workload] != 1 {
							t.Errorf("%s: degraded by %q, which the PassReport does not record", r.Name, re.Workload)
						}
					}
					continue
				}
				// Untouched: byte-identical to the serial golden.
				want, err := os.ReadFile(filepath.Join("testdata", "golden", r.Name+".golden"))
				if err != nil {
					t.Fatalf("missing golden (run `go test -run TestExperimentGoldens -update .`): %v", err)
				}
				if got := memotable.RenderText(r); got != string(want) {
					t.Errorf("%s: non-faulted cell diverged from golden under fault soak\n--- got ---\n%s\n--- want ---\n%s",
						r.Name, got, want)
				}
				clean++
			}
			if clean == 0 {
				t.Error("every experiment degraded; the soak should leave survivors to compare")
			}
			t.Logf("seed %d: %d faulted cells, %d/%d experiments clean, %d spill retries, %d degraded captures, %d store hits, %d store puts, %d faults fired",
				seed, len(rep.Errors), clean, len(results), eng.SpillRetries(), eng.DegradedCaptures(), eng.StoreHits(), eng.StorePuts(), plan.Fired())
		})
	}
}
