module memotable

go 1.22
