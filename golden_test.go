package memotable_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"memotable"
)

var updateGolden = flag.Bool("update", false, "rewrite experiment goldens from the serial reference path")

// TestExperimentGoldens pins every table and figure of the evaluation
// byte for byte. The goldens are written (under -update) by the serial
// reference engine; the routine run produces each experiment on a
// multi-worker engine with a shared trace cache — so a passing run proves
// the parallel engine's output is byte-identical to the serial path.
func TestExperimentGoldens(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		serial := memotable.NewEngine(1)
		for _, name := range memotable.Experiments() {
			out, err := memotable.RunExperimentWith(serial, name, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".golden")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}

	eng := memotable.NewEngine(8)
	for _, name := range memotable.Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := memotable.RunExperimentWith(eng, name, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestExperimentGoldens -update .`): %v", err)
			}
			if out != string(want) {
				t.Errorf("parallel-engine output diverged from the serial golden\n--- got ---\n%s\n--- want ---\n%s",
					out, want)
			}
		})
	}
}

// TestFusedMatrixGoldens runs the whole registry through one fused
// memotable.Run pass — at 1 worker and at 8 — and holds every result's
// text to the same per-experiment goldens. Passing proves the
// cross-experiment planner changes scheduling only, never results, at
// any worker count. The fresh engine also witnesses the planner's
// exactly-once contract across the full matrix: captures == replays,
// no recaptures.
func TestFusedMatrixGoldens(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by the serial reference engine")
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng := memotable.NewEngine(workers)
			results, err := memotable.Run(eng, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			names := memotable.Experiments()
			if len(results) != len(names) {
				t.Fatalf("%d results for %d experiments", len(results), len(names))
			}
			for i, r := range results {
				if r.Name != names[i] {
					t.Fatalf("results[%d].Name = %q, want %q", i, r.Name, names[i])
				}
				want, err := os.ReadFile(filepath.Join("testdata", "golden", r.Name+".golden"))
				if err != nil {
					t.Fatalf("missing golden (run `go test -run TestExperimentGoldens -update .`): %v", err)
				}
				if got := memotable.RenderText(r); got != string(want) {
					t.Errorf("%s: fused-pass output diverged from the serial golden\n--- got ---\n%s\n--- want ---\n%s",
						r.Name, got, want)
				}
			}
			if eng.Captures() == 0 || eng.Captures() != eng.Replays() {
				t.Errorf("fused matrix: captures=%d replays=%d, want equal and nonzero",
					eng.Captures(), eng.Replays())
			}
			if eng.Recaptures() != 0 {
				t.Errorf("fused matrix: %d recaptures", eng.Recaptures())
			}
		})
	}
}

// TestExperimentGoldensWithSpillTier reruns the golden matrix on an
// 8-worker engine whose memory budget is too small for any capture, so
// every workload trace spills to disk and every cell replays through the
// CRC-framed spill files. Output must stay byte-identical to the serial
// goldens: the disk tier is invisible to the experiments.
func TestExperimentGoldensWithSpillTier(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by the serial reference engine")
	}
	eng := memotable.NewEngine(8)
	eng.SetCacheLimit(1)
	eng.SetTraceDir(t.TempDir())
	defer eng.Close()
	for _, name := range memotable.Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := memotable.RunExperimentWith(eng, name, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestExperimentGoldens -update .`): %v", err)
			}
			if out != string(want) {
				t.Errorf("spill-tier output diverged from the serial golden\n--- got ---\n%s\n--- want ---\n%s",
					out, want)
			}
		})
	}
	if eng.SpilledTraces() == 0 {
		t.Error("no capture spilled: the spill tier went unexercised")
	}
	if eng.CachedTraces() != 0 {
		t.Errorf("%d captures in the memory tier despite a 1-byte budget", eng.CachedTraces())
	}
}
