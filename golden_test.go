package memotable_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"memotable"
)

var updateGolden = flag.Bool("update", false, "rewrite experiment goldens from the serial reference path")

// TestExperimentGoldens pins every table and figure of the evaluation
// byte for byte. The goldens are written (under -update) by the serial
// reference engine; the routine run produces each experiment on a
// multi-worker engine with a shared trace cache — so a passing run proves
// the parallel engine's output is byte-identical to the serial path.
func TestExperimentGoldens(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		serial := memotable.NewEngine(1)
		for _, name := range memotable.Experiments() {
			out, err := memotable.RunExperimentWith(serial, name, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".golden")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}

	eng := memotable.NewEngine(8)
	for _, name := range memotable.Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := memotable.RunExperimentWith(eng, name, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", name+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestExperimentGoldens -update .`): %v", err)
			}
			if out != string(want) {
				t.Errorf("parallel-engine output diverged from the serial golden\n--- got ---\n%s\n--- want ---\n%s",
					out, want)
			}
		})
	}
}

// TestExperimentGoldensWithSpillTier reruns the golden matrix on an
// 8-worker engine whose memory budget is too small for any capture, so
// every workload trace spills to disk and every cell replays through the
// CRC-framed spill files. Output must stay byte-identical to the serial
// goldens: the disk tier is invisible to the experiments.
func TestExperimentGoldensWithSpillTier(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are written by the serial reference engine")
	}
	eng := memotable.NewEngine(8)
	eng.SetCacheLimit(1)
	eng.SetTraceDir(t.TempDir())
	defer eng.Close()
	for _, name := range memotable.Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := memotable.RunExperimentWith(eng, name, memotable.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestExperimentGoldens -update .`): %v", err)
			}
			if out != string(want) {
				t.Errorf("spill-tier output diverged from the serial golden\n--- got ---\n%s\n--- want ---\n%s",
					out, want)
			}
		})
	}
	if eng.SpilledTraces() == 0 {
		t.Error("no capture spilled: the spill tier went unexercised")
	}
	if eng.CachedTraces() != 0 {
		t.Errorf("%d captures in the memory tier despite a 1-byte budget", eng.CachedTraces())
	}
}
